#!/usr/bin/env bash
#===-- scripts/ci.sh - Build/test matrix driver --------------------------===#
#
# Part of the Multiprocessor Smalltalk reproduction. MIT license.
#
# Runs the repo's build/test matrix. Each configuration gets its own build
# tree under build-ci/, so rerunning a single configuration is incremental.
#
#   scripts/ci.sh                 # full matrix
#   scripts/ci.sh release tsan    # just those configurations
#   MST_CHAOS_SEED=1337 scripts/ci.sh debug-chaos   # pin the chaos seed
#
# Configurations:
#   release      Release build, quick suite (-L quick) — the tier-1 gate.
#   debug-chaos  Debug build, quick + stress suites with chaos enabled.
#   tsan         ThreadSanitizer + chaos, quick + stress suites. The
#                stress label includes the full-GC chaos storms
#                (FullGCChaosTest), racing parallel mark/sweep against
#                mutator threads under the injected schedules.
#   asan         Address+UB sanitizers, quick + stress suites.
#   smallheap    Debug build, stress suite under memory pressure: a tiny
#                default heap ceiling (MST_MAX_HEAP_BYTES) plus seeded
#                eden-allocation faults (MST_CHAOS_ALLOC_FAIL_PM) pushed
#                into every stress binary, so the pressure-recovery ladder
#                and low-space paths run on every matrix build.
#   snapfuzz     Address+UB sanitizers aimed at the snapshot subsystem:
#                the corruption sweep (truncations + bit flips against
#                saved images) plus the kill-during-save chaos storms with
#                io.write.fail / io.fsync.fail / snapshot.truncate armed
#                from the environment, proving torn and corrupt images are
#                rejected with diagnostics — never a crash — and the
#                atomic-rename protocol keeps the target loadable.
#   serve        ThreadSanitizer build aimed at the serving layer: the
#                functional serve suite (protocol, batching, end-to-end
#                sessions) followed by the ServeChaos storms with the
#                serve.shard.crash fail point armed from the environment
#                (MST_CHAOS_SHARD_CRASH_PM), so shards keep crashing
#                mid-batch under real loopback traffic and must restart
#                from their last committed checkpoint while the rest of
#                the pool keeps serving; then the overload/stall storm
#                with MST_CHAOS_REQUEST_STALL_PM (runaway injection) and
#                MST_CHAOS_ABORT_STUCK_PM (aborts that refuse to land)
#                armed, gating that deadlines abort runaways, stuck
#                aborts escalate to a shard reboot, and no shard wedges.
#   journal-fuzz Address+UB sanitizers aimed at the write-ahead request
#                journal: the WAL unit sweep (record CRC round-trips,
#                torn-tail boundary repair, logical-position-preserving
#                truncation, dedup-table bounds) and the journaled
#                end-to-end tests, then the 200-session kill+tear storm
#                twice — once with journal.tear + append/truncate
#                failures armed (MST_CHAOS_JOURNAL_APPEND_FAIL_PM /
#                MST_CHAOS_JOURNAL_TRUNCATE_FAIL_PM), once with
#                journal.fsync.fail armed and the tear drill pinned off
#                (MST_CHAOS_JOURNAL_FSYNC_FAIL_PM /
#                MST_CHAOS_JOURNAL_TEAR_PM=0). Both gate on the tentpole
#                invariant: zero acknowledged-request loss.
#   profile      ASan+UBSan build with benches ON: bench_table2 runs with
#                --profile, the folded flamegraph export must parse and
#                name at least one Smalltalk selector, and a second
#                profiler-off run gates the sampling overhead. The design
#                target is <1%; CI noise under sanitizers gets headroom up
#                to MST_PROFILE_OVERHEAD_MAX_PCT (default 5) before the
#                lane fails.
#
# The stress binaries print the failing chaos seed in the test output
# (SCOPED_TRACE "chaos-seed=N"); reproduce with MST_CHAOS_SEED=N.
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
# Default seed sweep lives in the tests; export a seed here to override.
CHAOS_SEED=${MST_CHAOS_SEED:-}

# TSan histories are finite; long-lived rings can age out of them. Keep
# reports readable and make second_deadlock_stack available.
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1 second_deadlock_stack=1"}
# verify_asan_link_order inspects /proc/self/maps in *address* order, so
# with ASLR it fails spuriously whenever another DSO lands below libasan
# even though libasan is first in DT_NEEDED; disable the check.
export ASAN_OPTIONS=${ASAN_OPTIONS:-"detect_leaks=0 verify_asan_link_order=0"}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-"print_stacktrace=1 halt_on_error=1"}

banner() { printf '\n=== %s ===\n' "$*"; }

# configure <dir> <build-type> <sanitize>
configure() {
  cmake -B "build-ci/$1" -S . \
    -DCMAKE_BUILD_TYPE="$2" \
    -DMST_SANITIZE="$3" \
    -DMST_BUILD_BENCH=OFF >/dev/null
}

# run_suite <dir> <label> [chaos]
run_suite() {
  local dir=$1 label=$2 chaos=${3:-}
  local env=()
  if [ -n "$chaos" ]; then
    env+=(MST_CHAOS_SEED="${CHAOS_SEED:-1}")
  fi
  env "${env[@]}" ctest --test-dir "build-ci/$dir" -L "$label" \
    --output-on-failure -j "$JOBS"
}

do_release() {
  banner "release: Release, quick suite"
  configure release Release ""
  cmake --build build-ci/release -j "$JOBS"
  run_suite release quick
}

do_debug_chaos() {
  banner "debug-chaos: Debug, quick + stress, chaos on"
  configure debug-chaos Debug ""
  cmake --build build-ci/debug-chaos -j "$JOBS"
  run_suite debug-chaos quick
  run_suite debug-chaos stress chaos
}

do_tsan() {
  banner "tsan: ThreadSanitizer + chaos, quick + stress"
  configure tsan RelWithDebInfo thread
  cmake --build build-ci/tsan -j "$JOBS"
  run_suite tsan quick
  run_suite tsan stress chaos
}

do_asan() {
  banner "asan: Address+UB sanitizers, quick + stress"
  configure asan RelWithDebInfo address,undefined
  cmake --build build-ci/asan -j "$JOBS"
  run_suite asan quick
  run_suite asan stress chaos
}

do_smallheap() {
  banner "smallheap: Debug, stress under tiny heap ceiling + alloc faults"
  configure smallheap Debug ""
  cmake --build build-ci/smallheap -j "$JOBS"
  # ScopedChaos arms the fault points from these variables (armFailFromEnv),
  # and any ObjectMemory built without an explicit ceiling adopts the tiny
  # MST_MAX_HEAP_BYTES one, so every stress test walks the recovery ladder.
  MST_MAX_HEAP_BYTES=$((32 * 1024 * 1024)) \
  MST_CHAOS_ALLOC_FAIL_PM=${MST_CHAOS_ALLOC_FAIL_PM:-60} \
    run_suite smallheap stress chaos
}

do_snapfuzz() {
  banner "snapfuzz: ASan+UBSan, snapshot corruption sweep + save chaos"
  configure snapfuzz RelWithDebInfo address,undefined
  cmake --build build-ci/snapfuzz -j "$JOBS"
  # The corruption sweep: every truncation point and bit-flip position
  # against a saved image must be rejected with a diagnostic, never a
  # crash. ASan/UBSan turn any loader overread into a hard failure.
  ctest --test-dir build-ci/snapfuzz -R 'SnapshotTest' \
    --output-on-failure -j "$JOBS"
  # Kill-during-save storms with the io fault points armed from the
  # environment on top of the tests' own seeded chaos: partial-rate write
  # and fsync failures plus seeded mid-save truncation of the temp file.
  MST_CHAOS_IO_WRITE_FAIL_PM=${MST_CHAOS_IO_WRITE_FAIL_PM:-80} \
  MST_CHAOS_IO_FSYNC_FAIL_PM=${MST_CHAOS_IO_FSYNC_FAIL_PM:-80} \
  MST_CHAOS_SNAPSHOT_TRUNCATE_PM=${MST_CHAOS_SNAPSHOT_TRUNCATE_PM:-80} \
  MST_CHAOS_SEED="${CHAOS_SEED:-1}" \
    ctest --test-dir build-ci/snapfuzz -R 'SnapshotChaos' \
    --output-on-failure -j "$JOBS"
}

do_serve() {
  banner "serve: TSan, serving suite + shard crash storm"
  configure serve RelWithDebInfo thread
  cmake --build build-ci/serve -j "$JOBS" \
    --target test_serve test_serve_stress
  # Functional pass first: protocol, batching, end-to-end serving.
  ctest --test-dir build-ci/serve -R '^Serve|^RequestBatcher' \
    -E '^ServeChaos' --output-on-failure -j "$JOBS"
  # Then the storms with the crash point armed from the environment on
  # top of the tests' own seeded schedule chaos (ScopedChaos arms
  # serve.shard.crash via armFailFromEnv).
  MST_CHAOS_SHARD_CRASH_PM=${MST_CHAOS_SHARD_CRASH_PM:-80} \
  MST_CHAOS_SEED="${CHAOS_SEED:-1}" \
    ctest --test-dir build-ci/serve -R 'ServeChaos' \
    -E 'RequestStallStorm' --output-on-failure -j "$JOBS"
  # Overload/stall storm: serve.request.stall rewrites ~8% of evals into
  # `[true] whileTrue.` runaways and serve.abort.stuck makes some of
  # their aborts refuse to land, so the deadline -> abort -> escalate
  # ladder runs end to end under TSan. The test gates on no wedged
  # shards (every request answers, all shards serving) and on escalated
  # aborts recovering via a shard reboot rather than a hang.
  MST_CHAOS_REQUEST_STALL_PM=${MST_CHAOS_REQUEST_STALL_PM:-80} \
  MST_CHAOS_ABORT_STUCK_PM=${MST_CHAOS_ABORT_STUCK_PM:-150} \
  MST_CHAOS_SEED="${CHAOS_SEED:-1}" \
    ctest --test-dir build-ci/serve -R 'RequestStallStorm' \
    --output-on-failure -j "$JOBS"
}

do_journalfuzz() {
  banner "journal-fuzz: ASan+UBSan, WAL sweep + kill/tear replay storms"
  configure journal-fuzz RelWithDebInfo address,undefined
  cmake --build build-ci/journal-fuzz -j "$JOBS" \
    --target test_serve test_serve_stress
  # Functional sweep: record CRC round-trips, torn-tail repair, logical
  # truncation, dedup bounds, then the journaled end-to-end tests —
  # replay on !kill, dedup answers for bound-session resends, and the
  # checkpoint-commit-vs-truncation ordering regression.
  ctest --test-dir build-ci/journal-fuzz -R 'JournalTest|ServeJournal' \
    --output-on-failure -j "$JOBS"
  # Kill+tear storm: the test arms journal.tear itself (800 permille);
  # armFailFromEnv layers append and truncation failures on top. A
  # failed append must refuse the request without executing it and a
  # failed truncation must never un-commit a checkpoint — the gate stays
  # zero acknowledged-request loss.
  MST_CHAOS_JOURNAL_APPEND_FAIL_PM=${MST_CHAOS_JOURNAL_APPEND_FAIL_PM:-40} \
  MST_CHAOS_JOURNAL_TRUNCATE_FAIL_PM=${MST_CHAOS_JOURNAL_TRUNCATE_FAIL_PM:-80} \
  MST_CHAOS_SEED="${CHAOS_SEED:-1}" \
    ctest --test-dir build-ci/journal-fuzz \
    -R 'JournaledKillAndTearStorm' --output-on-failure -j "$JOBS"
  # Fsync-failure storm: every sync lies (warn-and-continue), which an
  # in-process reboot survives because the bytes are written, just not
  # fsynced. The tear drill is pinned off — with syncs failing, the
  # unsynced window can hold refusal outcomes, and tearing those models
  # a loss the fsync policy explicitly trades away under power loss.
  MST_CHAOS_JOURNAL_FSYNC_FAIL_PM=${MST_CHAOS_JOURNAL_FSYNC_FAIL_PM:-300} \
  MST_CHAOS_JOURNAL_APPEND_FAIL_PM=${MST_CHAOS_JOURNAL_APPEND_FAIL_PM:-40} \
  MST_CHAOS_JOURNAL_TEAR_PM=0 \
  MST_CHAOS_SEED="${CHAOS_SEED:-1}" \
    ctest --test-dir build-ci/journal-fuzz \
    -R 'JournaledKillAndTearStorm' --output-on-failure -j "$JOBS"
}

do_profile() {
  banner "profile: ASan+UBSan benches, bench_table2 --profile + overhead gate"
  cmake -B build-ci/profile -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMST_SANITIZE=address,undefined \
    -DMST_BUILD_BENCH=ON >/dev/null
  cmake --build build-ci/profile -j "$JOBS" \
    --target bench_table2 bench_prewarm
  local out=build-ci/profile/profile-artifacts
  mkdir -p "$out"
  local scale=${MST_PROFILE_BENCH_SCALE:-0.3}
  local folded="$out/table2.folded"

  build-ci/profile/bench/bench_prewarm "$out/prewarmed.image"

  # Profiler on: the folded flamegraph export must exist, parse, and name
  # at least one Smalltalk method frame ("Class>>selector").
  MST_BENCH_SCALE="$scale" build-ci/profile/bench/bench_table2 \
    --image="$out/prewarmed.image" --profile \
    --profile-folded="$folded" --json-out="$out/table2-on.json" \
    >"$out/table2-on.log"
  [ -s "$folded" ] || {
    echo "profile lane: folded output missing or empty" >&2
    exit 1
  }
  awk 'NF {
    if ($NF !~ /^[0-9]+$/ || $0 !~ /;/) {
      print "profile lane: unparseable folded line: " $0 > "/dev/stderr"
      exit 1
    }
  }' "$folded"
  grep -q '>>' "$folded" || {
    echo "profile lane: no Class>>selector frame in $folded" >&2
    exit 1
  }
  echo "profile lane: $(wc -l <"$folded") folded rows," \
    "$(grep -c '>>' "$folded") with Smalltalk frames"

  # Profiler off: same workload, same scale — the throughput baseline.
  MST_BENCH_SCALE="$scale" build-ci/profile/bench/bench_table2 \
    --image="$out/prewarmed.image" --json-out="$out/table2-off.json" \
    >"$out/table2-off.log"

  # Overhead gate on summed per-benchmark CPU seconds. The design target
  # is <1% at the default hz; sanitizer + shared-runner noise gets
  # headroom up to MST_PROFILE_OVERHEAD_MAX_PCT before the lane fails.
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/table2-on.json" "$out/table2-off.json" <<'PYEOF'
import json, os, sys

def total(path):
    with open(path) as f:
        doc = json.load(f)
    return sum(r["cpu_sec"] for s in doc["states"] for r in s["results"]
               if r["ok"])

on, off = total(sys.argv[1]), total(sys.argv[2])
if off <= 0:
    print("profile lane: zero baseline CPU time, skipping overhead gate")
    sys.exit(0)
pct = (on / off - 1.0) * 100.0
limit = float(os.environ.get("MST_PROFILE_OVERHEAD_MAX_PCT", "5"))
print(f"profile lane: cpu on={on:.3f}s off={off:.3f}s "
      f"overhead={pct:+.2f}% (design target <1%, lane limit {limit}%)")
if pct > 1.0:
    print("profile lane: WARNING overhead above the 1% design target "
          "(tolerated up to the lane limit for CI noise)")
if pct > limit:
    print(f"profile lane: overhead {pct:+.2f}% exceeds limit {limit}%",
          file=sys.stderr)
    sys.exit(1)
PYEOF
  else
    echo "profile lane: python3 unavailable, skipping overhead gate"
  fi
}

CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(release debug-chaos tsan asan smallheap snapfuzz serve
    journal-fuzz profile)
fi

for C in "${CONFIGS[@]}"; do
  case "$C" in
  release) do_release ;;
  debug-chaos) do_debug_chaos ;;
  tsan) do_tsan ;;
  asan) do_asan ;;
  smallheap) do_smallheap ;;
  snapfuzz) do_snapfuzz ;;
  serve) do_serve ;;
  journal-fuzz) do_journalfuzz ;;
  profile) do_profile ;;
  *)
    echo "unknown configuration: $C" \
      "(known: release debug-chaos tsan asan smallheap snapfuzz serve" \
      "journal-fuzz profile)" >&2
    exit 2
    ;;
  esac
done

banner "matrix complete: ${CONFIGS[*]}"
