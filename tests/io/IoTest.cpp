//===-- tests/io/IoTest.cpp - Display and event queues --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include <gtest/gtest.h>

#include "io/Display.h"
#include "io/EventQueue.h"

using namespace mst;

namespace {

TEST(DisplayTest, RecordsCommandsInOrder) {
  Display D(true, 4);
  D.submit("a");
  D.submit("b");
  EXPECT_EQ(D.submittedCount(), 2u);
  auto Recent = D.recentCommands();
  ASSERT_EQ(Recent.size(), 2u);
  EXPECT_EQ(Recent[0], "a");
  EXPECT_EQ(Recent[1], "b");
}

TEST(DisplayTest, RingKeepsMostRecent) {
  Display D(true, 3);
  for (int I = 0; I < 10; ++I)
    D.submit(std::to_string(I));
  auto Recent = D.recentCommands();
  ASSERT_EQ(Recent.size(), 3u);
  EXPECT_EQ(Recent[0], "7");
  EXPECT_EQ(Recent[2], "9");
  EXPECT_EQ(D.submittedCount(), 10u);
}

TEST(DisplayTest, ConcurrentSubmissionsAllCounted) {
  Display D(true, 8);
  constexpr int PerThread = 5000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&D] {
      for (int I = 0; I < PerThread; ++I)
        D.submit("x");
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(D.submittedCount(), 4u * PerThread);
}

TEST(EventQueueTest, FifoOrder) {
  EventQueue Q(true);
  InputEvent A{InputEvent::Kind::Key, 65, 0, 1};
  InputEvent B{InputEvent::Kind::MouseMove, 10, 20, 2};
  Q.post(A);
  Q.post(B);
  InputEvent E;
  ASSERT_TRUE(Q.next(E));
  EXPECT_EQ(E.Type, InputEvent::Kind::Key);
  EXPECT_EQ(E.A, 65);
  ASSERT_TRUE(Q.next(E));
  EXPECT_EQ(E.Type, InputEvent::Kind::MouseMove);
  EXPECT_FALSE(Q.next(E));
}

TEST(EventQueueTest, CountsAndPending) {
  EventQueue Q(true);
  for (int I = 0; I < 5; ++I)
    Q.post(InputEvent{});
  EXPECT_EQ(Q.pending(), 5u);
  InputEvent E;
  Q.next(E);
  EXPECT_EQ(Q.pending(), 4u);
  EXPECT_EQ(Q.postedCount(), 5u);
  EXPECT_EQ(Q.consumedCount(), 1u);
}

TEST(EventQueueTest, ProducerConsumerThreads) {
  EventQueue Q(true);
  constexpr int N = 10000;
  std::thread Producer([&Q] {
    for (int I = 0; I < N; ++I) {
      InputEvent E;
      E.A = I;
      Q.post(E);
    }
  });
  int Got = 0;
  long Sum = 0;
  while (Got < N) {
    InputEvent E;
    if (Q.next(E)) {
      Sum += E.A;
      ++Got;
    }
  }
  Producer.join();
  EXPECT_EQ(Sum, static_cast<long>(N) * (N - 1) / 2);
}

} // namespace
