//===-- tests/stress/ChaosScheduleTest.cpp - Chaos engine itself ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos engine's own contract: disabled means inert, same seed means
/// the same perturbation schedule, different seeds diverge, and a thread's
/// decisions depend only on (seed, ordinal) — never on what other threads
/// did. Everything else in the stress suite leans on these properties.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "StressSupport.h"

using namespace mst;
using chaos::Action;

namespace {

/// Records the actions of \p N consecutive hits of one point.
std::vector<Action> record(int N, const char *Point = "chaos.test.point") {
  std::vector<Action> Out;
  Out.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    Out.push_back(chaos::point(Point));
  return Out;
}

TEST(ChaosScheduleTest, DisabledPointDoesNothing) {
  chaos::disable();
  EXPECT_FALSE(chaos::enabled());
  uint64_t Before = chaos::perturbationCount();
  for (Action A : record(100))
    EXPECT_EQ(A, Action::None);
  EXPECT_EQ(chaos::perturbationCount(), Before);
}

TEST(ChaosScheduleTest, SameSeedReplaysIdenticalSchedule) {
  chaos::setThreadOrdinal(5);
  std::vector<Action> First, Second;
  {
    ScopedChaos C(42);
    First = record(300);
  }
  {
    ScopedChaos C(42);
    Second = record(300);
  }
  EXPECT_EQ(First, Second);
  // The schedule is non-trivial: the default config perturbs ~15% of hits.
  int NonNone = 0;
  for (Action A : First)
    NonNone += A != Action::None;
  EXPECT_GT(NonNone, 0);
}

TEST(ChaosScheduleTest, DifferentSeedsDiverge) {
  chaos::setThreadOrdinal(5);
  std::vector<Action> A, B;
  {
    ScopedChaos C(42);
    A = record(300);
  }
  {
    ScopedChaos C(43);
    B = record(300);
  }
  EXPECT_NE(A, B);
}

TEST(ChaosScheduleTest, DecisionsDependOnlyOnSeedAndOrdinal) {
  // Record ordinal 9's schedule on this thread, then replay it from a
  // different thread that drew after this thread consumed part of its own
  // stream — cross-thread timing must not leak into either schedule.
  std::vector<Action> Here, There;
  {
    ScopedChaos C(1234);
    chaos::setThreadOrdinal(9);
    Here = record(200);
    std::thread T([&There] {
      chaos::setThreadOrdinal(9);
      There = record(200);
    });
    T.join();
  }
  EXPECT_EQ(Here, There);
}

TEST(ChaosScheduleTest, DistinctOrdinalsGetDistinctStreams) {
  std::vector<Action> Ord1, Ord2;
  {
    ScopedChaos C(77);
    chaos::setThreadOrdinal(1);
    Ord1 = record(300);
  }
  {
    ScopedChaos C(77);
    chaos::setThreadOrdinal(2);
    Ord2 = record(300);
  }
  EXPECT_NE(Ord1, Ord2);
}

TEST(ChaosScheduleTest, PointCountsTrackEveryHit) {
  ScopedChaos C(3);
  chaos::setThreadOrdinal(1);
  record(50, "chaos.test.counted");
  bool Found = false;
  for (auto &[Name, Hits] : chaos::pointCounts()) {
    if (Name == "chaos.test.counted") {
      Found = true;
      EXPECT_EQ(Hits, 50u);
    }
  }
  EXPECT_TRUE(Found);
  auto Catalog = chaos::pointCatalog();
  EXPECT_NE(std::find(Catalog.begin(), Catalog.end(), "chaos.test.counted"),
            Catalog.end());
}

TEST(ChaosScheduleTest, SaturatedYieldProbabilityAlwaysYields) {
  chaos::Config Cfg;
  Cfg.Seed = 9;
  Cfg.YieldPermille = 1000;
  Cfg.SleepPermille = 0;
  Cfg.DelayPermille = 0;
  ScopedChaos C(Cfg);
  chaos::setThreadOrdinal(1);
  for (Action A : record(100))
    EXPECT_EQ(A, Action::Yield);
  EXPECT_GE(chaos::perturbationCount(), 100u);
}

TEST(ChaosScheduleTest, EnableFromEnvReadsSeedAndOverrides) {
  ASSERT_EQ(setenv("MST_CHAOS_SEED", "0x2a", 1), 0);
  ASSERT_EQ(setenv("MST_CHAOS_YIELD_PM", "250", 1), 0);
  ASSERT_EQ(setenv("MST_CHAOS_MAX_SLEEP_US", "5", 1), 0);
  EXPECT_TRUE(chaos::enableFromEnv());
  chaos::Config Cfg = chaos::config();
  EXPECT_EQ(Cfg.Seed, 42u);
  EXPECT_EQ(Cfg.YieldPermille, 250u);
  EXPECT_EQ(Cfg.MaxSleepMicros, 5u);
  chaos::disable();
  unsetenv("MST_CHAOS_SEED");
  unsetenv("MST_CHAOS_YIELD_PM");
  unsetenv("MST_CHAOS_MAX_SLEEP_US");
  EXPECT_FALSE(chaos::enableFromEnv());
}

TEST(ChaosScheduleTest, ManyThreadsPerturbConcurrently) {
  // Smoke the engine's own thread-safety (this is what the TSan leg of
  // the matrix actually checks): many threads hammering shared points.
  ScopedChaos C(11);
  const int Threads = 8;
  const int Iters = stressScale(2000, 300);
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([Iters] {
      for (int I = 0; I < Iters; ++I)
        chaos::point("chaos.test.concurrent");
    });
  for (auto &T : Ts)
    T.join();
  for (auto &[Name, Hits] : chaos::pointCounts()) {
    if (Name == "chaos.test.concurrent") {
      EXPECT_EQ(Hits, static_cast<uint64_t>(Threads) * Iters);
    }
  }
}

} // namespace
