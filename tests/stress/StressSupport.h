//===-- tests/stress/StressSupport.h - Chaos-suite helpers ------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the schedule-chaos stress suite: seed sweeps, scoped
/// chaos enablement, and sanitizer-aware workload scaling. Every loop over
/// seeds uses SCOPED_TRACE so a failure names the seed that provoked it —
/// rerun with MST_CHAOS_SEED=<seed> to replay that schedule.
///
//===----------------------------------------------------------------------===//

#ifndef MST_TESTS_STRESS_STRESSSUPPORT_H
#define MST_TESTS_STRESS_STRESSSUPPORT_H

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vkernel/Chaos.h"

// Sanitized builds run 10-20x slower; the suite shrinks its iteration
// counts so the full matrix stays in CI budget.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define MST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define MST_UNDER_SANITIZER 1
#endif
#endif

namespace mst {

/// \returns \p Full normally, \p Sanitized under TSan/ASan.
inline int stressScale(int Full, int Sanitized) {
#ifdef MST_UNDER_SANITIZER
  (void)Full;
  return Sanitized;
#else
  (void)Sanitized;
  return Full;
#endif
}

/// The seeds every stress test sweeps. MST_CHAOS_SEED narrows the sweep to
/// one seed — the replay knob a failure report points at.
inline std::vector<uint64_t> chaosSeeds() {
  if (const char *S = std::getenv("MST_CHAOS_SEED"))
    return {std::strtoull(S, nullptr, 0)};
  return {1, 7, 42};
}

/// Enables chaos for one scope; always disables on exit so a failing
/// assertion cannot leak perturbation into the next test.
class ScopedChaos {
public:
  explicit ScopedChaos(uint64_t Seed) {
    chaos::enableSeed(Seed);
    chaos::armFailFromEnv(Seed); // MST_CHAOS_ALLOC_FAIL_PM et al.
  }
  explicit ScopedChaos(const chaos::Config &C) {
    chaos::enable(C);
    chaos::armFailFromEnv(C.Seed);
  }
  ~ScopedChaos() {
    chaos::disable();
    chaos::disarmFail();
  }

  ScopedChaos(const ScopedChaos &) = delete;
  ScopedChaos &operator=(const ScopedChaos &) = delete;
};

/// Trace tag naming the active seed, e.g. "chaos-seed=42".
inline std::string seedTag(uint64_t Seed) {
  return "chaos-seed=" + std::to_string(Seed);
}

} // namespace mst

#endif // MST_TESTS_STRESS_STRESSSUPPORT_H
