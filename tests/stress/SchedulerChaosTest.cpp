//===-- tests/stress/SchedulerChaosTest.cpp - VM macro-chaos --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-VM chaos: bootstrapped images running parallel Smalltalk macro
/// workloads across a seed x interpreter-count sweep, with perturbation at
/// every kernel boundary (locks, IPC, safepoints, dispatch, free-context
/// pools). Afterwards the workload's arithmetic must be exact and the heap
/// must pass the reachability verifier.
///
//===----------------------------------------------------------------------===//

#include "StressSupport.h"
#include "TestVm.h"

using namespace mst;

namespace {

/// Forks \p Workers mutual-exclusion counters plus allocation churn and
/// waits for all of them; returns the final counter value.
intptr_t runMacroWorkload(TestVm &T, int Workers, int PerWorker) {
  unsigned Sig = T.vm().createHostSignal();
  T.eval("Smalltalk at: #Mutex put: Semaphore new. (Smalltalk at: #Mutex) "
         "signal. Smalltalk at: #Counter put: 0 -> 0. ^1");
  for (int W = 0; W < Workers; ++W) {
    std::string Src =
        "| m c | m := Smalltalk at: #Mutex. c := Smalltalk at: #Counter. "
        "1 to: " + std::to_string(PerWorker) +
        " do: [:i | m wait. c value: c value + 1. m signal. "
        "i \\\\ 50 = 0 ifTrue: [OrderedCollection new addAll: (1 to: 20); "
        "yourself]]. nil hostSignal: " + std::to_string(Sig);
    EXPECT_FALSE(
        T.vm().forkDoIt(Src, 5, "chaos" + std::to_string(W)).isNull());
  }
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, static_cast<uint64_t>(Workers),
                                    120.0));
  return T.evalInt("^(Smalltalk at: #Counter) value");
}

void macroChaosSweep(unsigned Interpreters) {
  const int Workers = 4;
  const int PerWorker = stressScale(300, 60);
  VmConfig C = VmConfig::multiprocessor(Interpreters);
  C.Memory.EdenBytes = 512u << 10; // frequent scavenges under the churn
  // Bootstrapping under TSan is the expensive part; build the VM once and
  // sweep the seeds against it.
  TestVm T(C);
  T.vm().startInterpreters();
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    EXPECT_EQ(runMacroWorkload(T, Workers, PerWorker),
              static_cast<intptr_t>(Workers) * PerWorker);
    EXPECT_TRUE(T.vm().errors().empty()) << T.vm().errors().front();
  }
  // Quiesce completely, then verify the heap the storm left behind.
  T.vm().shutdown();
  std::string Error;
  EXPECT_TRUE(T.vm().memory().verifyHeap(&Error)) << Error;
}

TEST(SchedulerChaosTest, MacroWorkloadTwoInterpreters) {
  macroChaosSweep(2);
}

TEST(SchedulerChaosTest, MacroWorkloadFourInterpreters) {
  macroChaosSweep(4);
}

TEST(SchedulerChaosTest, ChaosCrossesTheKernelInjectionPoints) {
  // One perturbed run must actually exercise the seams the engine was
  // threaded through — a threading regression (a dropped chaos::point)
  // shows up here, not as silently weaker stress.
  VmConfig C = VmConfig::multiprocessor(2);
  C.Memory.EdenBytes = 256u << 10;
  TestVm T(C);
  T.vm().startInterpreters();
  {
    ScopedChaos Chaos(chaosSeeds().front());
    EXPECT_GT(runMacroWorkload(T, 2, stressScale(200, 50)), 0);
    // Allocation-heavy forks: enough eden churn to guarantee scavenges
    // (and with them safepoint polls) while other processes run.
    unsigned Sig = T.vm().createHostSignal();
    const int AllocIters = stressScale(400, 150);
    for (int W = 0; W < 2; ++W)
      T.vm().forkDoIt("1 to: " + std::to_string(AllocIters) +
                          " do: [:i | OrderedCollection new addAll: "
                          "(1 to: 100); yourself]. nil hostSignal: " +
                          std::to_string(Sig),
                      5, "alloc" + std::to_string(W));
    ASSERT_TRUE(T.vm().waitHostSignal(Sig, 2, 120.0));
    EXPECT_GT(T.vm().memory().statsSnapshot().Scavenges, 0u);
    auto Counts = chaos::pointCounts();
    auto Saw = [&Counts](const char *Name) {
      for (auto &[N, H] : Counts)
        if (N == Name && H > 0)
          return true;
      return false;
    };
    EXPECT_TRUE(Saw("spinlock.acquire"));
    EXPECT_TRUE(Saw("spinlock.acquired"));
    EXPECT_TRUE(Saw("sched.dispatch"));
    EXPECT_TRUE(Saw("sched.notify"));
    EXPECT_TRUE(Saw("freectx.take"));
    EXPECT_TRUE(Saw("freectx.give"));
    // Every scavenge passes through requestStopTheWorld ("safepoint
    // .request"); "safepoint.poll" alone would be schedule-dependent.
    EXPECT_TRUE(Saw("safepoint.request"));
    EXPECT_TRUE(Saw("scavenge.start"));
    EXPECT_GT(chaos::perturbationCount(), 0u);
  }
}

TEST(SchedulerChaosTest, BaselineBSUnperturbedByChaosPoints) {
  // Chaos enabled but with all probabilities zero: the workload must run
  // exactly as without chaos (the points are crossed, nothing fires).
  chaos::Config Cfg;
  Cfg.Seed = 1;
  Cfg.YieldPermille = 0;
  Cfg.SleepPermille = 0;
  Cfg.DelayPermille = 0;
  ScopedChaos Chaos(Cfg);
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  EXPECT_EQ(runMacroWorkload(T, 2, 100), 200);
  EXPECT_EQ(chaos::perturbationCount(), 0u);
}

} // namespace
