//===-- tests/stress/SafepointChaosTest.cpp - Rendezvous under chaos ------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stop-the-world protocol under perturbed schedules: storms of
/// pollers, blocked regions, and racing coordinators on a bare Safepoint;
/// then allocation storms on a real ObjectMemory, checked afterwards with
/// the reachability-walking heap verifier.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <thread>

#include "StressSupport.h"
#include "objmem/ObjectMemory.h"

using namespace mst;

namespace {

TEST(SafepointChaosTest, CoordinatorStormKeepsBookkeepingConsistent) {
  const int Threads = 4;
  const int Iters = stressScale(300, 50);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    Safepoint Sp;
    std::atomic<uint64_t> Wins{0};
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&Sp, &Wins, T, Iters] {
        chaos::setThreadOrdinal(static_cast<uint64_t>(T) + 1);
        Sp.registerMutator();
        for (int I = 0; I < Iters; ++I) {
          if (Sp.pollNeeded())
            Sp.pollSlow();
          if (I % 16 == T % 16) {
            // This iteration tries to coordinate a pause.
            if (Sp.requestStopTheWorld()) {
              Wins.fetch_add(1, std::memory_order_relaxed);
              Sp.resume();
            }
          } else if (I % 7 == 0) {
            BlockedRegion Region(Sp);
          }
        }
        Sp.unregisterMutator();
      });
    for (auto &T : Ts)
      T.join();
    EXPECT_EQ(Sp.mutatorCount(), 0u);
    EXPECT_EQ(Sp.pauseCount(), Wins.load());
    EXPECT_GT(Sp.pauseCount(), 0u);
    EXPECT_FALSE(Sp.pollNeeded()) << "global flag left raised";
  }
}

TEST(SafepointChaosTest, LateRegistrationsResolveDuringStorm) {
  // Threads keep registering, polling a few times, and unregistering while
  // coordinators run pauses — the rendezvous math must absorb mutators
  // arriving and leaving mid-protocol.
  const int Iters = stressScale(150, 30);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    Safepoint Sp;
    std::atomic<bool> Done{false};
    std::thread Churn([&Sp, &Done, Iters] {
      chaos::setThreadOrdinal(100);
      for (int I = 0; I < Iters && !Done.load(); ++I) {
        Sp.registerMutator();
        for (int P = 0; P < 5; ++P)
          if (Sp.pollNeeded())
            Sp.pollSlow();
        Sp.unregisterMutator();
      }
    });
    std::thread Coordinator([&Sp, Iters] {
      chaos::setThreadOrdinal(200);
      Sp.registerMutator();
      for (int I = 0; I < Iters / 4; ++I) {
        if (Sp.requestStopTheWorld())
          Sp.resume();
      }
      Sp.unregisterMutator();
    });
    Coordinator.join();
    Done.store(true);
    Churn.join();
    EXPECT_EQ(Sp.mutatorCount(), 0u);
    EXPECT_FALSE(Sp.pollNeeded());
  }
}

/// Allocation storm over a bare ObjectMemory; verifyHeap() must hold
/// afterwards for both allocator policies.
void allocationStorm(AllocatorKind Allocator) {
  const int Threads = 4;
  // Not sanitizer-scaled: the storm must allocate more than eden holds or
  // no scavenge ever triggers and the post-conditions below are vacuous.
  const int Iters = 800;
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    MemoryConfig MC;
    MC.EdenBytes = 192 * 1024; // small: the storm scavenges constantly
    MC.SurvivorBytes = 96 * 1024;
    MC.Allocator = Allocator;
    ObjectMemory OM(MC);
    OM.registerMutator("driver");
    Oop Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    Oop Cls = OM.allocateOldPointers(Nil, 0);
    // One old holder per thread, reachable as a root, stored into from the
    // workers so the write barrier and entry table stay busy.
    std::vector<Oop> Roots(Threads);
    for (int T = 0; T < Threads; ++T)
      Roots[static_cast<size_t>(T)] = OM.allocateOldPointers(Cls, 4);
    OM.addRootWalker([&Roots](const ObjectMemory::OopVisitor &V) {
      for (Oop &R : Roots)
        V(&R);
    });

    ScopedChaos Chaos(Seed);
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&OM, &Roots, T, Iters] {
        chaos::setThreadOrdinal(static_cast<uint64_t>(T) + 1);
        OM.registerMutator("storm");
        Oop Holder = Roots[static_cast<size_t>(T)];
        for (int I = 0; I < Iters; ++I) {
          // A small linked pair, protected across the second allocation.
          Handle A(OM.handles(),
                   OM.allocatePointers(Holder.object()->classOop(), 3));
          Oop B = OM.allocatePointers(Holder.object()->classOop(), 2);
          OM.storePointer(A.get(), 0, B);
          OM.storePointer(A.get(), 1, Oop::fromSmallInt(I));
          // Publish into the old holder: exercises remembering.
          OM.storePointer(Holder, static_cast<uint32_t>(I % 4), A.get());
        }
        OM.unregisterMutator();
      });
    {
      // The joining driver is a registered mutator: it must count as safe
      // or the workers' scavenges would wait on it forever.
      BlockedRegion Region(OM.safepoint());
      for (auto &T : Ts)
        T.join();
    }

    std::string Error;
    EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;
    EXPECT_GT(OM.statsSnapshot().Scavenges, 0u);

    // The storm crossed the intended injection points. Every scavenge
    // passes through requestStopTheWorld, so "safepoint.request" is
    // guaranteed; "safepoint.poll" is not (a lucky schedule can find all
    // other mutators already counted safe in blocked regions).
    bool SawSafepoint = false, SawScavenge = false;
    for (auto &[Name, Hits] : chaos::pointCounts()) {
      SawSafepoint |= Name == "safepoint.request";
      SawScavenge |= Name == "scavenge.start";
    }
    EXPECT_TRUE(SawSafepoint);
    EXPECT_TRUE(SawScavenge);
    OM.unregisterMutator();
  }
}

TEST(SafepointChaosTest, AllocationStormSerializedHeapStaysValid) {
  allocationStorm(AllocatorKind::Serialized);
}

TEST(SafepointChaosTest, AllocationStormTlabHeapStaysValid) {
  allocationStorm(AllocatorKind::Tlab);
}

TEST(SafepointChaosTest, VerifierCatchesACookedViolation) {
  // Confidence in the negative direction: hand-build a broken remembered
  // invariant and check the verifier reports it.
  MemoryConfig MC;
  ObjectMemory OM(MC);
  OM.registerMutator("driver");
  Oop Nil = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(Nil);
  Oop Cls = OM.allocateOldPointers(Nil, 0);
  Oop Holder = OM.allocateOldPointers(Cls, 1);
  std::vector<Oop> Roots{Holder};
  OM.addRootWalker([&Roots](const ObjectMemory::OopVisitor &V) {
    for (Oop &R : Roots)
      V(&R);
  });
  std::string Error;
  EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;

  // A raw slot store (no write barrier) of a young object into an old one.
  Oop Young = OM.allocatePointers(Cls, 1);
  Holder.object()->slots()[0] = Young;
  EXPECT_FALSE(OM.verifyHeap(&Error));
  EXPECT_NE(Error.find("not remembered"), std::string::npos) << Error;
  OM.unregisterMutator();
}

} // namespace
