//===-- tests/stress/SnapshotChaosTest.cpp - Crash-consistency storms -----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-consistency storms against the snapshot subsystem: seeded
/// `snapshot.truncate` tears (the simulated kill-during-save) and
/// `io.write.fail`/`io.fsync.fail` storms must never leave the target
/// path unloadable — after every storm the image at the target (or a
/// rotated generation via the recovery ladder) loads and holds the last
/// successfully committed state. The auto-checkpointer runs its periodic
/// stop-the-world saves against live mutators under the same faults.
///
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "TestVm.h"
#include "image/Checkpoint.h"
#include "image/Snapshot.h"
#include "stress/StressSupport.h"

using namespace mst;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

void removeGenerations(const std::string &Path, unsigned Keep) {
  ::unlink(Path.c_str());
  ::unlink((Path + ".panic").c_str());
  for (unsigned G = 1; G <= Keep; ++G)
    ::unlink((Path + "." + std::to_string(G)).c_str());
  // Torn per-save temp files (unique `<name>.tmp.<pid>.<seq>` names) left
  // behind by truncate chaos in earlier rounds.
  size_t Slash = Path.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  std::string Prefix = Path.substr(Slash + 1) + ".tmp";
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D))
      if (std::strncmp(E->d_name, Prefix.c_str(), Prefix.size()) == 0)
        ::unlink((Dir + "/" + E->d_name).c_str());
    ::closedir(D);
  }
}

/// Loads \p Path (ladder allowed) in a fresh VM on its own thread and
/// \returns the #Marker global, or -1 when the load failed.
int loadedMarker(const std::string &Path) {
  int Val = -1;
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    if (!loadSnapshot(VM, Path, Error)) {
      ADD_FAILURE() << "target unloadable: " << Error;
      return;
    }
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    if (M.isSmallInt())
      Val = static_cast<int>(M.smallInt());
  }).join();
  return Val;
}

//===----------------------------------------------------------------------===//
// The simulated kill: snapshot.truncate tears the temp file mid-save
//===----------------------------------------------------------------------===//

TEST(SnapshotChaosTest, KillDuringSaveAlwaysLeavesLoadableTarget) {
  const int Rounds = stressScale(10, 4);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    std::string Path = tempPath("killsave.image");
    removeGenerations(Path, 3);
    int Committed = -1;
    std::thread([&] {
      TestVm T;
      SnapshotOptions Opts;
      Opts.KeepGenerations = 2;
      std::string Error;
      T.eval("Smalltalk at: #Marker put: 100. ^1");
      ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error, Opts)) << Error;
      Committed = 100;

      ScopedChaos Chaos(Seed);
      chaos::armFail("snapshot.truncate", 400, Seed);
      chaos::armFail("io.write.fail", 200, Seed ^ 0x9e37);
      for (int R = 0; R < Rounds; ++R) {
        int Marker = 101 + R;
        T.eval("Smalltalk at: #Marker put: " + std::to_string(Marker) +
               ". ^1");
        if (saveSnapshot(T.vm(), Path, Error, Opts))
          Committed = Marker;
        // A torn save must leave the last committed image loadable
        // *right now*, not merely at the end of the storm.
        else
          ASSERT_FALSE(Error.empty());
      }
    }).join();
    ASSERT_GE(Committed, 100);
    EXPECT_EQ(loadedMarker(Path), Committed);
  }
}

//===----------------------------------------------------------------------===//
// io.write.fail / io.fsync.fail storms
//===----------------------------------------------------------------------===//

TEST(SnapshotChaosTest, WriteAndFsyncFaultStormNeverTearsTheTarget) {
  const int Rounds = stressScale(14, 5);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    std::string Path = tempPath("iostorm.image");
    removeGenerations(Path, 2);
    int Committed = -1;
    std::thread([&] {
      TestVm T;
      SnapshotOptions Opts;
      Opts.KeepGenerations = 1;
      std::string Error;
      ScopedChaos Chaos(Seed);
      chaos::armFail("io.write.fail", 350, Seed);
      chaos::armFail("io.fsync.fail", 350, Seed ^ 0xbeef);
      for (int R = 0; R < Rounds; ++R) {
        int Marker = 500 + R;
        T.eval("Smalltalk at: #Marker put: " + std::to_string(Marker) +
               ". ^1");
        if (saveSnapshot(T.vm(), Path, Error, Opts))
          Committed = Marker;
      }
      // At these rates at least one save statistically commits; if the
      // storm really refused every round, commit one clean image so the
      // loader check below still proves the target is sane.
      if (Committed < 0) {
        chaos::disarmFail();
        T.eval("Smalltalk at: #Marker put: 999. ^1");
        ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error, Opts)) << Error;
        Committed = 999;
      }
    }).join();
    EXPECT_EQ(loadedMarker(Path), Committed);
  }
}

//===----------------------------------------------------------------------===//
// Whole-VM round trips: running workers, seeded schedules, then reload
//===----------------------------------------------------------------------===//

TEST(SnapshotChaosTest, RoundTripsWithRunningWorkersUnderChaos) {
  for (unsigned Workers : {1u, 2u, 4u}) {
    for (uint64_t Seed : chaosSeeds()) {
      SCOPED_TRACE("workers=" + std::to_string(Workers) + " " +
                   seedTag(Seed));
      std::string Path = tempPath("workers.image");
      removeGenerations(Path, 1);
      std::thread([&] {
        ScopedChaos Chaos(Seed);
        TestVm T{VmConfig::multiprocessor(Workers)};
        T.vm().startInterpreters();
        unsigned Sig = T.vm().createHostSignal();
        T.vm().forkDoIt(
            "| s | s := 0. 1 to: 500 do: [:i | s := s + (i * i)]. "
            "Smalltalk at: #Marker put: s \\\\ 1000. nil hostSignal: " +
                std::to_string(Sig),
            5, "churn");
        ASSERT_TRUE(T.vm().waitHostSignal(Sig, 1, 60.0));
        // The snapfuzz lane arms io faults from the environment; retry
        // until a save commits (bounded — the fault rates are partial).
        std::string Error;
        bool Saved = false;
        for (int Attempt = 0; Attempt < 40 && !Saved; ++Attempt)
          Saved = saveSnapshot(T.vm(), Path, Error);
        ASSERT_TRUE(Saved) << Error;
      }).join();

      std::thread([&] {
        VirtualMachine VM(VmConfig::multiprocessor(2));
        std::string Error;
        ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
        // 1²+…+500² = 41791750; the churn Process stored it mod 1000.
        Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
        ASSERT_TRUE(M.isSmallInt());
        EXPECT_EQ(M.smallInt(), 750);
      }).join();
    }
  }
}

//===----------------------------------------------------------------------===//
// Auto-checkpointer against live mutators and injected faults
//===----------------------------------------------------------------------===//

TEST(SnapshotChaosTest, AutoCheckpointerSurvivesFaultsAgainstLiveMutators) {
  const int Evals = stressScale(60, 15);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    std::string Path = tempPath("autochaos.image");
    removeGenerations(Path, 1);
    std::thread([&] {
      ScopedChaos Chaos(Seed);
      chaos::armFail("io.write.fail", 150, Seed);
      TestVm T{VmConfig::multiprocessor(2)};
      T.vm().startInterpreters();
      T.eval("Smalltalk at: #Marker put: 31. ^1");
      Checkpointer::Options Opts;
      Opts.Path = Path;
      Opts.EveryMs = 5;
      Opts.KeepGenerations = 1;
      Opts.EmergencyOnPanic = false;
      {
        Checkpointer Ck(T.vm(), Opts);
        // The driver keeps mutating while the checkpointer stops the
        // world every few milliseconds under injected write faults.
        for (int I = 0; I < Evals; ++I)
          T.evalInt("^(1 to: 40) inject: 0 into: [:a :b | a + b]");
        // Wait (safely parked) for at least one committed checkpoint.
        chaos::disarmFail();
        BlockedRegion B(T.vm().memory().safepoint());
        auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
        while (Ck.checkpointsTaken() < 1 &&
               std::chrono::steady_clock::now() < Deadline)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        EXPECT_GE(Ck.checkpointsTaken(), 1u) << Ck.lastError();
      }
    }).join();
    EXPECT_EQ(loadedMarker(Path), 31);
  }
}

} // namespace
