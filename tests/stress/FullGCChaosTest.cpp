//===-- tests/stress/FullGCChaosTest.cpp - Full GC under chaos ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel mark-sweep collector under perturbed schedules: mutator
/// threads allocate and tenure while a driver runs repeated full
/// collections, then the trigger heuristic is stormed with tenure
/// pressure. Every run ends with the reachability-walking heap verifier
/// (which also audits the free lists the sweep rebuilt).
///
//===----------------------------------------------------------------------===//

#include <thread>

#include "StressSupport.h"
#include "objmem/ObjectMemory.h"

using namespace mst;

namespace {

/// A bare object memory with per-thread old holders, tuned so survivors
/// tenure immediately (maximum old-space churn).
struct StormHeap {
  explicit StormHeap(const MemoryConfig &MC, int Threads) : OM(MC) {
    OM.registerMutator("driver");
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    Cls = OM.allocateOldPointers(Nil, 0);
    Roots.resize(static_cast<size_t>(Threads));
    for (Oop &R : Roots)
      R = OM.allocateOldPointers(Cls, 4);
    OM.addRootWalker([this](const ObjectMemory::OopVisitor &V) {
      for (Oop &R : Roots)
        V(&R);
    });
  }
  ~StormHeap() { OM.unregisterMutator(); }

  ObjectMemory OM;
  Oop Nil, Cls;
  std::vector<Oop> Roots;
};

/// The worker body: allocate linked pairs, publish them into the old
/// holder (write barrier + tenuring traffic), poll safepoints via the
/// allocation slow path. When \p OldGarbageSlots is nonzero each
/// iteration also drops an unreferenced old object, piling up exactly the
/// tenured-garbage pressure the full collector exists to relieve.
void stormWorker(ObjectMemory &OM, Oop Holder, int Ordinal, int Iters,
                 uint32_t OldGarbageSlots) {
  chaos::setThreadOrdinal(static_cast<uint64_t>(Ordinal) + 1);
  OM.registerMutator("storm");
  for (int I = 0; I < Iters; ++I) {
    Handle A(OM.handles(),
             OM.allocatePointers(Holder.object()->classOop(), 3));
    Oop B = OM.allocatePointers(Holder.object()->classOop(), 2);
    OM.storePointer(A.get(), 0, B);
    OM.storePointer(A.get(), 1, Oop::fromSmallInt(I));
    OM.storePointer(Holder, static_cast<uint32_t>(I % 4), A.get());
    if (OldGarbageSlots)
      OM.allocateOldPointers(Holder.object()->classOop(), OldGarbageSlots);
  }
  OM.unregisterMutator();
}

TEST(FullGCChaosTest, MutatorStormDuringRepeatedFullCollections) {
  const int Threads = 3;
  // Not sanitizer-scaled below the scavenge threshold: the storm must
  // out-allocate eden or the collections race nothing.
  const int Iters = stressScale(600, 200);
  const int Collections = stressScale(8, 4);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    MemoryConfig MC;
    MC.EdenBytes = 128 * 1024;
    MC.SurvivorBytes = 64 * 1024;
    MC.OldChunkBytes = 128 * 1024;
    MC.TenureAge = 1; // every survivor tenures: constant old churn
    MC.FullGcEnabled = false; // only the explicit driver collections run
    MC.FullGcWorkers = 3;
    StormHeap H(MC, Threads);

    ScopedChaos Chaos(Seed);
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&H, T, Iters] {
        stormWorker(H.OM, H.Roots[static_cast<size_t>(T)], T, Iters,
                    /*OldGarbageSlots=*/8);
      });
    for (int K = 0; K < Collections; ++K)
      H.OM.fullCollect();
    {
      // The joining driver must count as safe at the workers' scavenges.
      BlockedRegion Region(H.OM.safepoint());
      for (auto &T : Ts)
        T.join();
    }

    std::string Error;
    EXPECT_TRUE(H.OM.verifyHeap(&Error)) << Error;
    FullGcStats F = H.OM.fullGcStatsSnapshot();
    EXPECT_EQ(F.Collections, static_cast<uint64_t>(Collections));

    // The collections crossed the intended injection points. Marking and
    // sweeping are unconditional; stealing is attempted whenever a
    // parallel marker's own stack runs dry, which termination guarantees.
    bool SawStart = false, SawMark = false, SawSweep = false,
         SawSteal = false;
    for (auto &[Name, Hits] : chaos::pointCounts()) {
      SawStart |= Name == "fullgc.start";
      SawMark |= Name == "fullgc.mark";
      SawSweep |= Name == "fullgc.sweep";
      SawSteal |= Name == "fullgc.steal";
    }
    EXPECT_TRUE(SawStart);
    EXPECT_TRUE(SawMark);
    EXPECT_TRUE(SawSweep);
    EXPECT_TRUE(SawSteal);
  }
}

TEST(FullGCChaosTest, AutoTriggerBoundsOldSpaceUnderChaos) {
  const int Threads = 3;
  const int Iters = stressScale(900, 300);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    MemoryConfig MC;
    // Eden small enough that even the sanitizer-scaled storm scavenges
    // several times — scavenges are where the trigger is consulted.
    MC.EdenBytes = 32 * 1024;
    MC.SurvivorBytes = 16 * 1024;
    MC.OldChunkBytes = 128 * 1024;
    MC.TenureAge = 1;
    MC.FullGcThresholdBytes = 96 * 1024; // arm the trigger early
    MC.FullGcWorkers = 2;
    StormHeap H(MC, Threads);

    ScopedChaos Chaos(Seed);
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&H, T, Iters] {
        stormWorker(H.OM, H.Roots[static_cast<size_t>(T)], T, Iters,
                    /*OldGarbageSlots=*/16);
      });
    {
      BlockedRegion Region(H.OM.safepoint());
      for (auto &T : Ts)
        T.join();
    }

    std::string Error;
    EXPECT_TRUE(H.OM.verifyHeap(&Error)) << Error;
    FullGcStats F = H.OM.fullGcStatsSnapshot();
    EXPECT_GE(F.Collections, 1u) << "trigger never fired under chaos";
    EXPECT_GT(F.SweptBytes, 0u);
    // Bounded: the trigger re-arms at live*1.5, so used old space cannot
    // be far past the threshold plus one scavenge's worth of tenuring.
    EXPECT_LT(H.OM.oldSpaceUsed(), MC.FullGcThresholdBytes * 4);
  }
}

} // namespace
