//===-- tests/stress/MemoryChaosTest.cpp - Fault-injection storms ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection against the memory-pressure recovery
/// ladder: seeded alloc.fail storms force the scavenge/divert rungs under
/// concurrent mutators, oldspace.grow.fail forces the full-collection and
/// out-of-memory rungs, and watchdog.stall makes a mutator deliberately
/// late to the rendezvous so the safepoint watchdog must dump-and-name it
/// instead of hanging the suite. After every storm the heap must verify.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "TestVm.h"
#include "objmem/ObjectMemory.h"
#include "stress/StressSupport.h"
#include "support/Panic.h"

using namespace mst;

namespace {

//===----------------------------------------------------------------------===//
// alloc.fail: eden attempts refused at random, multi-threaded
//===----------------------------------------------------------------------===//

TEST(MemoryChaosTest, AllocFaultStormKeepsHeapConsistent) {
  const int PerThread = stressScale(2500, 500);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    MemoryConfig C;
    C.EdenBytes = 256u * 1024;
    C.SurvivorBytes = 64u * 1024;
    ObjectMemory OM(C);
    OM.registerMutator("chaos-main");
    Oop Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    Oop FakeClass = OM.allocateOldPointers(Nil, 0);

    ScopedChaos Chaos(Seed);
    chaos::armFail("alloc.fail", 200, Seed);

    // Without a ceiling every ladder walk ends in old space, so no
    // allocation may ever fail outright — however rudely the eden
    // attempts are refused under the perturbed schedules.
    std::atomic<uint64_t> Nulls{0};
    constexpr unsigned Threads = 3;
    std::vector<std::thread> Ts;
    for (unsigned T = 0; T < Threads; ++T)
      Ts.emplace_back([&OM, &Nulls, FakeClass, PerThread, T] {
        chaos::setThreadOrdinal(T + 1);
        OM.registerMutator("chaos-alloc-" + std::to_string(T));
        for (int I = 0; I < PerThread; ++I) {
          Oop O = I % 7 == 0 ? OM.allocateBytes(FakeClass, 1024)
                             : OM.allocatePointers(FakeClass, 8);
          if (O.isNull())
            Nulls.fetch_add(1, std::memory_order_relaxed);
        }
        OM.unregisterMutator();
      });
    {
      // The joining thread is a registered mutator: it must count as safe
      // while it blocks, or no worker-triggered scavenge could ever start.
      BlockedRegion Blocked(OM.safepoint());
      for (auto &T : Ts)
        T.join();
    }

    EXPECT_EQ(Nulls.load(), 0u);
    EXPECT_GT(chaos::failCount("alloc.fail"), 0u);
    std::string Err;
    EXPECT_TRUE(OM.verifyHeap(&Err)) << Err;
    OM.unregisterMutator();
  }
}

//===----------------------------------------------------------------------===//
// oldspace.grow.fail: growth refused, the fullgc/oom rungs must cope
//===----------------------------------------------------------------------===//

TEST(MemoryChaosTest, GrowthFaultSweepExercisesLowerRungs) {
  const int Allocations = stressScale(120, 40);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    MemoryConfig C;
    C.EdenBytes = 64u * 1024;
    C.SurvivorBytes = 32u * 1024;
    C.OldChunkBytes = 64u * 1024;
    ObjectMemory OM(C);
    OM.registerMutator("chaos-grow");
    Oop Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    Oop FakeClass = OM.allocateOldPointers(Nil, 0);

    ScopedChaos Chaos(Seed);
    chaos::armFail("oldspace.grow.fail", 300, Seed);

    // Oversized requests divert straight into old space; refused growth
    // drops them to the full-collection rung, which reclaims the dead
    // predecessors. An unlucky double refusal surfaces as a null oop —
    // legal — but the heap must stay consistent either way.
    uint64_t Nulls = 0;
    for (int I = 0; I < Allocations; ++I) {
      Oop O = OM.allocateBytes(FakeClass, 48u * 1024);
      if (O.isNull())
        ++Nulls;
    }
    chaos::disarmFail();
    // With the faults disarmed the heap must be fully recovered: the next
    // allocation walks the ladder and succeeds.
    Oop After = OM.allocateBytes(FakeClass, 48u * 1024);
    EXPECT_FALSE(After.isNull());
    EXPECT_LT(Nulls, static_cast<uint64_t>(Allocations));
    std::string Err;
    EXPECT_TRUE(OM.verifyHeap(&Err)) << Err;
    OM.unregisterMutator();
  }
}

//===----------------------------------------------------------------------===//
// watchdog.stall: a mutator late to the rendezvous is dumped, not waited
// on forever
//===----------------------------------------------------------------------===//

TEST(MemoryChaosTest, WatchdogNamesStalledMutatorInsteadOfHanging) {
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  C.WatchdogMillis = 50;
  ObjectMemory OM(C);
  OM.registerMutator("coordinator");
  Oop Nil = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(Nil);

  std::mutex DumpMutex;
  std::vector<std::string> Dumps;
  setPanicHandler([&](const std::string &D) {
    std::lock_guard<std::mutex> Guard(DumpMutex);
    Dumps.push_back(D);
  });

  std::atomic<bool> Stop{false};
  std::thread Laggard([&OM, &Stop] {
    chaos::setThreadOrdinal(7);
    OM.registerMutator("laggard");
    while (!Stop.load(std::memory_order_relaxed)) {
      if (OM.safepoint().pollNeeded())
        OM.safepoint().pollSlow(); // Stalls well past the deadline.
      std::this_thread::yield();
    }
    OM.unregisterMutator();
  });
  while (OM.safepoint().mutatorCount() < 2)
    std::this_thread::yield();

  // Every poll is deliberately late: the laggard sleeps 3x the watchdog
  // deadline before reporting safe, so the coordinator must fire.
  chaos::armFail("watchdog.stall", 1000, 1);
  auto Start = std::chrono::steady_clock::now();
  OM.scavengeNow(); // Completes despite the stall — no hang.
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  chaos::disarmFail();
  Stop.store(true, std::memory_order_relaxed);
  Laggard.join();
  setPanicHandler(nullptr);

  EXPECT_GE(OM.safepoint().watchdogFirings(), 1u);
  // The pause finished once the stall expired; the watchdog reported
  // within its deadline rather than waiting out the full stall silently.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
  std::lock_guard<std::mutex> Guard(DumpMutex);
  ASSERT_FALSE(Dumps.empty());
  EXPECT_NE(Dumps.front().find("safepoint watchdog"), std::string::npos)
      << Dumps.front();
  EXPECT_NE(Dumps.front().find("laggard"), std::string::npos) << Dumps.front();
  // The postmortem carries the registered sections: the heap summary and
  // the safepoint mutator table with the laggard marked unsafe.
  EXPECT_NE(Dumps.front().find("--- heap ---"), std::string::npos);
  EXPECT_NE(Dumps.front().find("--- safepoint ---"), std::string::npos);
  EXPECT_NE(Dumps.front().find("=== VM panic ==="), std::string::npos);
  OM.unregisterMutator();
}

//===----------------------------------------------------------------------===//
// The whole VM under an alloc.fail storm stays responsive
//===----------------------------------------------------------------------===//

TEST(MemoryChaosTest, VmSurvivesAllocFaultStorm) {
  const int Evals = stressScale(30, 8);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    VmConfig Config = VmConfig::multiprocessor(1);
    Config.Memory.EdenBytes = 1u << 20;
    Config.Memory.SurvivorBytes = 256u * 1024;
    TestVm T(Config);
    {
      ScopedChaos Chaos(Seed);
      chaos::armFail("alloc.fail", 100, Seed);
      for (int I = 0; I < Evals; ++I) {
        // May error under injected pressure; the VM itself must survive.
        T.vm().compileAndRun(
            "| a | a := OrderedCollection new. "
            "1 to: 200 do: [:i | a add: i * i]. ^a size");
      }
    }
    // Faults disarmed: full service resumes and the heap verifies.
    EXPECT_EQ(T.evalInt("^6 * 7"), 42);
    std::string Err;
    EXPECT_TRUE(T.vm().memory().verifyHeap(&Err)) << Err;
  }
}

} // namespace
