//===-- tests/stress/IpcChaosTest.cpp - IPC under schedule chaos ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Send/Receive/Reply channel under perturbed schedules: message
/// storms with several senders and receivers, and the shutdown protocol
/// racing blocked senders, blocked receivers, and in-flight replies.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <memory>
#include <thread>

#include "StressSupport.h"
#include "vkernel/IpcChannel.h"

using namespace mst;

namespace {

TEST(IpcChaosTest, MessageStormEveryRequestGetsItsReply) {
  constexpr uint64_t Stop = 0xdeadu;
  const int Senders = 4, Receivers = 2;
  const int PerSender = stressScale(400, 60);
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    IpcChannel Ch;
    std::atomic<uint64_t> Serviced{0};

    std::vector<std::thread> Rs;
    for (int R = 0; R < Receivers; ++R)
      Rs.emplace_back([&Ch, &Serviced] {
        for (;;) {
          uint64_t Req = 0;
          IpcChannel::MessageHandle H = Ch.receive(Req);
          ASSERT_NE(H, nullptr);
          Ch.reply(H, Req == Stop ? Stop : 2 * Req + 1);
          if (Req == Stop)
            return;
          Serviced.fetch_add(1, std::memory_order_relaxed);
        }
      });

    std::vector<std::thread> Ss;
    for (int S = 0; S < Senders; ++S)
      Ss.emplace_back([&Ch, S, PerSender] {
        for (int I = 0; I < PerSender; ++I) {
          uint64_t Req = static_cast<uint64_t>(S) * 1000000 + I;
          EXPECT_EQ(Ch.send(Req), 2 * Req + 1);
        }
      });
    for (auto &T : Ss)
      T.join();
    for (int R = 0; R < Receivers; ++R)
      EXPECT_EQ(Ch.send(Stop), Stop);
    for (auto &T : Rs)
      T.join();
    EXPECT_EQ(Serviced.load(),
              static_cast<uint64_t>(Senders) * PerSender);
    EXPECT_EQ(Ch.pendingSenders(), 0u);
  }
}

TEST(IpcChaosTest, DestroyingChannelReleasesBlockedSenders) {
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    auto Ch = std::make_unique<IpcChannel>();
    const int Senders = 4;
    std::vector<std::thread> Ss;
    for (int S = 0; S < Senders; ++S)
      Ss.emplace_back([&Ch] {
        EXPECT_EQ(Ch->send(7), IpcChannel::ShutdownResponse);
      });
    // All four queued (a sender holds the channel mutex from enqueue until
    // its wait, so observing 4 means all four are parked).
    while (Ch->pendingSenders() != Senders)
      std::this_thread::yield();
    Ch.reset(); // Destructor must wake and drain them, not deadlock.
    for (auto &T : Ss)
      T.join();
  }
}

TEST(IpcChaosTest, DestroyingChannelReleasesBlockedReceivers) {
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    auto Ch = std::make_unique<IpcChannel>();
    std::vector<std::thread> Rs;
    for (int R = 0; R < 3; ++R)
      Rs.emplace_back([&Ch] {
        uint64_t Req = 0;
        EXPECT_EQ(Ch->receive(Req), nullptr);
      });
    // Wait until all three are parked *inside* receive() — a thread that
    // has merely been spawned may still be on its way into the call, and
    // destroying the channel under it would be caller error, not a
    // shutdown-protocol test.
    while (Ch->waiters() != 3)
      std::this_thread::yield();
    Ch.reset();
    for (auto &T : Rs)
      T.join();
  }
}

TEST(IpcChaosTest, ShutdownRacesInFlightReply) {
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    IpcChannel Ch;
    std::thread Sender([&Ch] {
      EXPECT_EQ(Ch.send(5), IpcChannel::ShutdownResponse);
    });
    uint64_t Req = 0;
    IpcChannel::MessageHandle H = Ch.receive(Req);
    ASSERT_NE(H, nullptr);
    EXPECT_EQ(Req, 5u);
    Ch.shutdown(); // Releases the sender before the receiver replies.
    Sender.join(); // Sender's stack Message is gone now.
    Ch.reply(H, 99); // Must be a safe no-op, not a use-after-free.
    EXPECT_TRUE(Ch.isShutdown());
    EXPECT_EQ(Ch.send(1), IpcChannel::ShutdownResponse);
    EXPECT_EQ(Ch.pendingSenders(), 0u);
  }
}

} // namespace
