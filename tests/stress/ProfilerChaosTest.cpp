//===-- tests/stress/ProfilerChaosTest.cpp - Sampler vs mutators ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedule-chaos stress for the sampling profiler: the sampler thread
/// races interpreter send/return publication, allocation-site and
/// cache-miss ring writes, and VM teardown, with the chaos engine
/// perturbing both sides ("profiler.sample" fires on every sampler tick,
/// "profiler.slot.tear" between the slot's field stores). Run under TSan
/// this is the proof that the relaxed-atomic slot protocol is race-free;
/// functionally it checks that torn samples degrade to noise, never to
/// crashes or unresolvable reports.
///
//===----------------------------------------------------------------------===//

#include <string>

#include <gtest/gtest.h>

#include "StressSupport.h"
#include "TestVm.h"
#include "obs/ProfileReport.h"
#include "obs/Profiler.h"

using namespace mst;

namespace {

/// Stops and wipes the process-wide profiler on scope exit.
struct ProfilerGuard {
  ProfilerGuard() {
    Profiler::stop();
    Profiler::reset();
  }
  ~ProfilerGuard() {
    Profiler::stop();
    Profiler::reset();
  }
};

/// Every folded line must be "frames;state count" — split on the last
/// space, count must parse, the stack part must be non-empty.
void expectFoldedParses(const std::string &Folded) {
  size_t Pos = 0, Lines = 0;
  while (Pos < Folded.size()) {
    size_t Eol = Folded.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Folded.size();
    std::string Line = Folded.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.empty())
      continue;
    ++Lines;
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    ASSERT_GT(Sp, 0u) << Line;
    const std::string Count = Line.substr(Sp + 1);
    ASSERT_FALSE(Count.empty()) << Line;
    for (char C : Count)
      ASSERT_TRUE(C >= '0' && C <= '9') << Line;
    EXPECT_NE(Line.find(';'), std::string::npos) << Line;
  }
  EXPECT_GT(Lines, 0u);
}

TEST(ProfilerChaosTest, SamplerRacesSendReturnAcrossInterpreters) {
  for (uint64_t Seed : chaosSeeds()) {
    SCOPED_TRACE(seedTag(Seed));
    ProfilerGuard Guard;
    ScopedChaos Chaos(Seed);

    TestVm T(VmConfig::multiprocessor(3));
    ASSERT_TRUE(startVmProfiler(4000));
    T.vm().startInterpreters();

    // Three worker Processes hammer send/return, allocation, and the
    // method cache while the sampler walks their slots.
    const int N = stressScale(8000, 1500);
    unsigned Sig = T.vm().createHostSignal();
    for (int P = 0; P < 3; ++P) {
      Oop Forked = T.vm().forkDoIt(
          "| s | s := 0. 1 to: " + std::to_string(N) +
              " do: [:i | s := s + (i \\\\ 7). (Array new: 4) size. "
              "(3 + 4) printString]. nil hostSignal: " +
              std::to_string(Sig),
          5, "prof-spinner");
      ASSERT_FALSE(Forked.isNull());
    }
    ASSERT_TRUE(T.vm().waitHostSignal(Sig, 3, 300.0));

    stopVmProfiler();
    ProfileReport R = T.vm().buildProfileReport();
    EXPECT_GT(R.TotalSamples, 0u);
    EXPECT_FALSE(R.render().empty());
    expectFoldedParses(R.folded());
  }
}

TEST(ProfilerChaosTest, SamplerSurvivesVmTeardownAndThreadReuse) {
  // VMs come and go while the sampler keeps running: slots retire at
  // interpreter exit, the driver thread re-registers for each VM, and
  // samples taken against a dead VM's heap must never be dereferenced
  // (they resolve as reclaimed, they don't crash).
  ProfilerGuard Guard;
  ScopedChaos Chaos(7);
  ASSERT_TRUE(startVmProfiler(2000));
  const int Vms = stressScale(3, 2);
  for (int I = 0; I < Vms; ++I) {
    TestVm T(VmConfig::multiprocessor(2));
    T.vm().startInterpreters();
    T.evalInt("| s | s := 0. 1 to: 20000 do: [:i | s := s + i]. ^s");
    ProfileReport R = T.vm().buildProfileReport();
    EXPECT_FALSE(R.render().empty());
    Profiler::reset(); // next VM starts from a clean accumulation
  }
  stopVmProfiler();
}

} // namespace
