//===-- tests/image/BootstrapTest.cpp - Image structural invariants -------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestVm.h"

using namespace mst;

namespace {

class BootstrapTest : public ::testing::Test {
protected:
  TestVm T;
};

TEST_F(BootstrapTest, MetaclassKernelIsWired) {
  ObjectModel &Om = T.om();
  KnownObjects &K = Om.known();
  // Classes are instances of their metaclasses; metaclasses are
  // instances of Metaclass.
  Oop MetaObject = Om.classOf(K.ClassObject);
  EXPECT_EQ(Om.classOf(MetaObject), K.ClassMetaclass);
  EXPECT_EQ(Om.classOf(Om.classOf(K.ClassArray)), K.ClassMetaclass);
  // "Object class" inherits from Class.
  EXPECT_EQ(ObjectMemory::fetchPointer(MetaObject, ClsSuperclass),
            K.ClassClass);
  // Metaclass chains parallel the class chains.
  Oop MetaInteger = Om.classOf(K.ClassInteger);
  EXPECT_EQ(ObjectMemory::fetchPointer(MetaInteger, ClsSuperclass),
            Om.classOf(K.ClassNumber));
}

TEST_F(BootstrapTest, NilTrueFalseHaveProperClasses) {
  ObjectModel &Om = T.om();
  KnownObjects &K = Om.known();
  EXPECT_EQ(Om.classOf(K.NilObj), K.ClassUndefinedObject);
  EXPECT_EQ(Om.classOf(K.TrueObj), K.ClassTrue);
  EXPECT_EQ(Om.classOf(K.FalseObj), K.ClassFalse);
  EXPECT_EQ(Om.classOf(Oop::fromSmallInt(3)), K.ClassSmallInteger);
}

TEST_F(BootstrapTest, InstanceVariableNamesIncludeInherited) {
  // Process inherits nextLink from Link; its ivar array starts with it.
  Oop Process = T.om().known().ClassProcess;
  Oop Names = ObjectMemory::fetchPointer(Process, ClsInstVarNames);
  ASSERT_TRUE(Names.isPointer());
  ASSERT_EQ(Names.object()->SlotCount, ProcessSlotCount);
  EXPECT_EQ(ObjectModel::stringValue(Names.object()->slots()[0]),
            "nextLink");
  EXPECT_EQ(ObjectModel::stringValue(Names.object()->slots()[1]),
            "suspendedContext");
}

TEST_F(BootstrapTest, GlobalsResolveKernelClasses) {
  for (const char *Name :
       {"Object", "Behavior", "Class", "Metaclass", "String", "Symbol",
        "Array", "OrderedCollection", "Dictionary", "Process",
        "Semaphore", "ProcessorScheduler", "WriteStream", "Inspector",
        "Point", "ClassOrganization"}) {
    Oop G = T.om().globalAt(Name);
    EXPECT_TRUE(G.isPointer()) << Name << " missing from Smalltalk";
    EXPECT_TRUE(T.om().isKindOf(G, T.om().known().ClassBehavior))
        << Name << " is not a class";
  }
  EXPECT_EQ(T.om().globalAt("Smalltalk"), T.om().known().SmalltalkDict);
  EXPECT_EQ(T.om().globalAt("Processor"), T.om().known().Processor);
}

TEST_F(BootstrapTest, ToolGlobalsAreInstances) {
  for (const char *Name : {"Display", "Sensor", "Compiler", "Decompiler"}) {
    Oop G = T.om().globalAt(Name);
    ASSERT_TRUE(G.isPointer()) << Name;
    EXPECT_FALSE(T.om().isKindOf(G, T.om().known().ClassBehavior))
        << Name << " should be an instance, not a class";
  }
}

TEST_F(BootstrapTest, OrganizationsAreBuilt) {
  // Every kernel class with methods carries a ClassOrganization whose
  // categories cover its selectors.
  EXPECT_TRUE(T.evalBool("^Object organization notNil"));
  EXPECT_TRUE(T.evalBool(
      "^(Object organization selectorsInCategory: #printing) "
      "includes: #printOn:"));
  EXPECT_TRUE(T.evalBool(
      "^(Behavior organization selectorsInCategory: #browsing) "
      "includes: #definition"));
  // Class-side organizations too.
  EXPECT_TRUE(T.evalBool(
      "^(Character class organization selectorsInCategory: "
      "#'instance creation') includes: #value:"));
}

TEST_F(BootstrapTest, CharacterTableIsInterned) {
  EXPECT_TRUE(T.evalBool("^$a == $a"));
  EXPECT_TRUE(T.evalBool("^(Character value: 97) == $a"));
  EXPECT_EQ(T.evalInt("^$a value"), 97);
}

TEST_F(BootstrapTest, SymbolsAreUnique) {
  EXPECT_TRUE(T.evalBool("^#foo == #foo"));
  EXPECT_TRUE(T.evalBool("^'foo' asSymbol == #foo"));
  EXPECT_FALSE(T.evalBool("^'foo' == 'foo'")); // strings are not interned
  EXPECT_EQ(T.om().intern("bar"), T.om().intern("bar"));
}

TEST_F(BootstrapTest, MethodDictionariesAnswerLookups) {
  ObjectModel &Om = T.om();
  Oop Sel = Om.intern("printOn:");
  ObjectModel::LookupResult R =
      Om.lookupMethod(Om.known().ClassSmallInteger, Sel);
  ASSERT_FALSE(R.Method.isNull());
  // printOn: for integers is defined on Integer, not Object.
  EXPECT_EQ(R.DefiningClass, Om.known().ClassInteger);
  // And an unknown selector misses cleanly.
  EXPECT_TRUE(Om.lookupMethod(Om.known().ClassObject,
                              Om.intern("noSuchSelectorAnywhere"))
                  .Method.isNull());
}

TEST_F(BootstrapTest, DescribeFormats) {
  ObjectModel &Om = T.om();
  EXPECT_EQ(Om.describe(Oop::fromSmallInt(-3)), "-3");
  EXPECT_EQ(Om.describe(Om.known().NilObj), "nil");
  EXPECT_EQ(Om.describe(Om.known().TrueObj), "true");
  EXPECT_EQ(Om.describe(Om.intern("sym")), "#sym");
  EXPECT_EQ(Om.describe(Om.makeString("s", true)), "'s'");
  EXPECT_EQ(Om.describe(Om.known().ClassArray), "Array");
  EXPECT_EQ(Om.describe(Om.characterFor('z')), "$z");
}

TEST_F(BootstrapTest, EveryKernelClassRoundTripsItsDefinition) {
  // definition must be well-formed for every class in the image.
  EXPECT_TRUE(T.evalBool(
      "| ok | ok := true. Smalltalk allClassesDo: [:c | c definition "
      "isEmpty ifTrue: [ok := false]]. ^ok"));
}

} // namespace
