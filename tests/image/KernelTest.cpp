//===-- tests/image/KernelTest.cpp - Kernel class behaviour ---------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural tests of the kernel library the image is made of —
/// booleans, magnitudes, characters, strings, collections, streams —
/// including property-style sweeps against C++ reference models.
///
//===----------------------------------------------------------------------===//

#include <map>

#include "TestVm.h"

#include "support/SplitMix64.h"

using namespace mst;

namespace {

class KernelTest : public ::testing::Test {
protected:
  TestVm T;
};

TEST_F(KernelTest, BooleanProtocol) {
  EXPECT_FALSE(T.evalBool("^true not"));
  EXPECT_TRUE(T.evalBool("^false not"));
  EXPECT_TRUE(T.evalBool("^true & true"));
  EXPECT_FALSE(T.evalBool("^true & false"));
  EXPECT_TRUE(T.evalBool("^false | true"));
  EXPECT_TRUE(T.evalBool("^true xor: false"));
  EXPECT_FALSE(T.evalBool("^true xor: true"));
  EXPECT_EQ(T.evalString("^true printString"), "true");
}

TEST_F(KernelTest, MagnitudeProtocol) {
  EXPECT_EQ(T.evalInt("^3 max: 7"), 7);
  EXPECT_EQ(T.evalInt("^3 min: 7"), 3);
  EXPECT_TRUE(T.evalBool("^5 between: 1 and: 10"));
  EXPECT_FALSE(T.evalBool("^15 between: 1 and: 10"));
  EXPECT_TRUE(T.evalBool("^$a < $b"));
  EXPECT_TRUE(T.evalBool("^'apple' < 'banana'"));
  EXPECT_TRUE(T.evalBool("^'app' < 'apple'"));
}

TEST_F(KernelTest, IntegerProtocol) {
  EXPECT_EQ(T.evalInt("^-7 abs"), 7);
  EXPECT_EQ(T.evalInt("^7 negated"), -7);
  EXPECT_EQ(T.evalInt("^0 sign + 5 sign + -3 sign"), 0);
  EXPECT_TRUE(T.evalBool("^4 even"));
  EXPECT_TRUE(T.evalBool("^7 odd"));
  EXPECT_EQ(T.evalInt("^6 gcd: 15"), 3);
  EXPECT_EQ(T.evalInt("^6 factorial"), 720);
  EXPECT_EQ(T.evalInt("^2 bitShift: 10"), 2048);
  EXPECT_EQ(T.evalInt("^2048 bitShift: -10"), 2);
  EXPECT_EQ(T.evalInt("| n | n := 0. 5 timesRepeat: [n := n + 2]. ^n"),
            10);
  EXPECT_EQ(T.evalInt("| s | s := 0. 10 to: 2 by: -2 do: [:i | s := s + "
                      "i]. ^s"),
            30);
}

TEST_F(KernelTest, CharacterProtocol) {
  EXPECT_TRUE(T.evalBool("^$5 isDigit"));
  EXPECT_FALSE(T.evalBool("^$a isDigit"));
  EXPECT_TRUE(T.evalBool("^$a isLetter"));
  EXPECT_TRUE(T.evalBool("^$e isVowel"));
  EXPECT_FALSE(T.evalBool("^$z isVowel"));
  EXPECT_EQ(T.evalInt("^$a asInteger"), 97);
  EXPECT_EQ(T.evalString("^$q printString"), "$q");
  EXPECT_TRUE(T.evalBool("^65 asCharacter == $A"));
}

TEST_F(KernelTest, StringProtocol) {
  EXPECT_EQ(T.evalInt("^'hello' indexOf: $l"), 3);
  EXPECT_EQ(T.evalInt("^'hello' indexOf: $z"), 0);
  EXPECT_EQ(T.evalString("^'abc' , '' , 'def'"), "abcdef");
  EXPECT_TRUE(T.evalBool("^'' isEmpty"));
  EXPECT_TRUE(T.evalBool("^'abc' = ('abcdef' copyFrom: 1 to: 3)"));
  EXPECT_TRUE(T.evalBool("^'abc' hash = 'abc' hash"));
  EXPECT_EQ(T.evalString("| s | s := WriteStream on: (String new: 3). "
                         "'abc' reverseDo: [:c | s nextPut: c]. "
                         "^s contents"),
            "cba");
}

TEST_F(KernelTest, CollectionEnumeration) {
  EXPECT_EQ(T.evalInt("^#(1 2 3 4) inject: 0 into: [:a :b | a + b]"), 10);
  EXPECT_EQ(T.evalInt("^(#(5 2 9 1) select: [:x | x > 2]) size"), 2);
  EXPECT_EQ(T.evalInt("^(#(5 2 9 1) reject: [:x | x > 2]) size"), 2);
  EXPECT_EQ(T.evalInt("^(#(1 2 3) collect: [:x | x * x]) last"), 9);
  EXPECT_EQ(T.evalInt("^#(4 5 6) detect: [:x | x even] ifNone: [0]"), 4);
  EXPECT_EQ(T.evalInt("^#(1 3 5) detect: [:x | x even] ifNone: [-1]"),
            -1);
  EXPECT_TRUE(T.evalBool("^#(1 2 3) includes: 2"));
  EXPECT_FALSE(T.evalBool("^#(1 2 3) includes: 9"));
  EXPECT_EQ(T.evalInt("| n | n := 0. #(1 2 3) withIndexDo: [:e :i | n := "
                      "n + (e * i)]. ^n"),
            14);
}

TEST_F(KernelTest, OrderedCollectionBehaviour) {
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. 1 to: 100 do: "
                      "[:i | c add: i]. c removeFirst. c removeFirst. "
                      "^c first"),
            3);
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. c addAll: #(7 8 "
                      "9). ^c last"),
            9);
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. c add: 1. c at: "
                      "1 put: 42. ^c at: 1"),
            42);
  EXPECT_EQ(T.evalInt("^(OrderedCollection new addAll: #(1 2 3); "
                      "yourself) asArray size"),
            3);
  // Bounds are checked.
  Oop R = T.vm().compileAndRun(
      "| c | c := OrderedCollection new. ^c at: 1");
  EXPECT_TRUE(R.isNull()) << "out-of-range at: must fail";
}

TEST_F(KernelTest, StreamBehaviour) {
  EXPECT_EQ(T.evalString("| s | s := WriteStream on: (String new: 2). s "
                         "nextPutAll: 'hello'; space; print: 42. "
                         "^s contents"),
            "hello 42");
  EXPECT_EQ(T.evalString("| r | r := ReadStream on: 'ab cd'. r upTo: "
                         "(Character value: 32). ^r upTo: (Character "
                         "value: 32)"),
            "cd");
  EXPECT_TRUE(T.evalBool("| r | r := ReadStream on: ''. ^r atEnd"));
  EXPECT_EQ(T.evalInt("| r n | r := ReadStream on: #(1 2 3). n := 0. "
                      "[r atEnd] whileFalse: [n := n + r next]. ^n"),
            6);
}

TEST_F(KernelTest, AssociationAndPoint) {
  EXPECT_EQ(T.evalString("^(3 -> 'x') printString"), "3 -> 'x'");
  EXPECT_EQ(T.evalInt("^(3 -> 4) key + (3 -> 4) value"), 7);
  EXPECT_TRUE(T.evalBool("^(Point x: 1 y: 2) = (Point x: 1 y: 2)"));
  EXPECT_FALSE(T.evalBool("^(Point x: 1 y: 2) = (Point x: 2 y: 1)"));
  EXPECT_EQ(T.evalString("^((3 @ 4) - (1 @ 1)) printString"), "2 @ 3");
}

TEST_F(KernelTest, ErrorsTerminateCleanly) {
  Oop R = T.vm().compileAndRun("^nil zork");
  EXPECT_TRUE(R.isNull());
  auto Errors = T.vm().errors();
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("zork"), std::string::npos);
  // The VM stays healthy after an error.
  EXPECT_EQ(T.evalInt("^1 + 1"), 2);
}

TEST_F(KernelTest, DoesNotUnderstandIsDispatched) {
  // A user-defined doesNotUnderstand: intercepts unknown sends.
  Oop Cls = defineClass(T.vm(), "Echo", "Object", ClassKind::Fixed, {},
                        "Tests");
  addMethod(T.vm(), Cls, "error handling",
            "doesNotUnderstand: aMessage ^aMessage selector");
  Oop R = T.eval("^Echo new fooBar");
  EXPECT_EQ(R, T.om().intern("fooBar"));
}

/// Property: Smalltalk Dictionary matches a C++ reference map across
/// random operation sequences.
class DictionaryPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DictionaryPropertyTest, MatchesReferenceModel) {
  TestVm T;
  T.eval("Smalltalk at: #D put: Dictionary new. ^1");
  std::map<int, int> Ref;
  SplitMix64 Rng(GetParam());
  for (int Step = 0; Step < 120; ++Step) {
    int K = static_cast<int>(Rng.nextBelow(30));
    if (Rng.nextBelow(3) != 0) {
      int V = static_cast<int>(Rng.nextBelow(1000));
      Ref[K] = V;
      T.evalInt("^(Smalltalk at: #D) at: " + std::to_string(K) +
                " put: " + std::to_string(V));
    } else {
      intptr_t Got = T.evalInt("^(Smalltalk at: #D) at: " +
                               std::to_string(K) + " ifAbsent: [-1]");
      auto It = Ref.find(K);
      EXPECT_EQ(Got, It == Ref.end() ? -1 : It->second)
          << "seed " << GetParam() << " step " << Step << " key " << K;
    }
    if (Step % 20 == 19) {
      EXPECT_EQ(T.evalInt("^(Smalltalk at: #D) size"),
                static_cast<intptr_t>(Ref.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryPropertyTest,
                         ::testing::Values(11u, 22u, 33u));

/// Property: SmallInteger arithmetic agrees with C++ (floored division).
class ArithmeticPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ArithmeticPropertyTest, MatchesHostSemantics) {
  TestVm T;
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 60; ++I) {
    intptr_t A = static_cast<intptr_t>(Rng.nextBelow(20001)) - 10000;
    intptr_t B = static_cast<intptr_t>(Rng.nextBelow(20001)) - 10000;
    if (B == 0)
      B = 7;
    auto S = [](intptr_t V) { return std::to_string(V); };
    EXPECT_EQ(T.evalInt("^" + S(A) + " + " + S(B)), A + B);
    EXPECT_EQ(T.evalInt("^" + S(A) + " * " + S(B)), A * B);
    // Floored division and modulo.
    intptr_t Q = A / B;
    if (A % B != 0 && ((A < 0) != (B < 0)))
      --Q;
    intptr_t M = A % B;
    if (M != 0 && ((M < 0) != (B < 0)))
      M += B;
    EXPECT_EQ(T.evalInt("^" + S(A) + " // " + S(B)), Q);
    EXPECT_EQ(T.evalInt("^" + S(A) + " \\\\ " + S(B)), M);
    EXPECT_EQ(T.evalBool("^" + S(A) + " < " + S(B)), A < B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithmeticPropertyTest,
                         ::testing::Values(5u, 6u));

TEST_F(KernelTest, IntervalProtocol) {
  EXPECT_EQ(T.evalInt("^(1 to: 5) size"), 5);
  EXPECT_EQ(T.evalInt("^(5 to: 1) size"), 0);
  EXPECT_EQ(T.evalInt("^(1 to: 10 by: 3) size"), 4);
  EXPECT_EQ(T.evalInt("^(10 to: 1 by: -2) size"), 5);
  EXPECT_EQ(T.evalInt("^(3 to: 9 by: 2) at: 2"), 5);
  EXPECT_EQ(T.evalInt("^(2 to: 20) first + (2 to: 20) last"), 22);
  EXPECT_EQ(T.evalInt("^(1 to: 100) inject: 0 into: [:a :b | a + b]"),
            5050);
  EXPECT_TRUE(T.evalBool("^(2 to: 10 by: 2) includes: 6"));
  EXPECT_FALSE(T.evalBool("^(2 to: 10 by: 2) includes: 5"));
  EXPECT_EQ(T.evalString("^(1 to: 5) printString"), "1 to: 5");
  EXPECT_EQ(T.evalString("^(1 to: 9 by: 2) printString"), "1 to: 9 by: 2");
  EXPECT_EQ(T.evalInt("^(1 to: 4) asArray size"), 4);
  EXPECT_EQ(T.evalInt("^((1 to: 5) collect: [:x | x * x]) last"), 25);
}

TEST_F(KernelTest, SetProtocol) {
  EXPECT_EQ(T.evalInt("| s | s := Set new. s add: 1; add: 2; add: 1. "
                      "^s size"),
            2);
  EXPECT_TRUE(T.evalBool("| s | s := Set new. s add: 'abc'. ^s "
                         "includes: ('abcdef' copyFrom: 1 to: 3)"));
  EXPECT_FALSE(T.evalBool("| s | s := Set new. s add: 3. ^s includes: 4"));
  // Growth keeps everything findable.
  EXPECT_TRUE(T.evalBool(
      "| s ok | s := Set new. 1 to: 100 do: [:i | s add: i]. ok := s "
      "size = 100. 1 to: 100 do: [:i | (s includes: i) ifFalse: [ok := "
      "false]]. ^ok"));
  EXPECT_EQ(T.evalInt("| s t | s := Set new. s add: 5; add: 7. t := 0. "
                      "s do: [:e | t := t + e]. ^t"),
            12);
}

TEST_F(KernelTest, ErrorBacktracesNameTheCallChain) {
  Oop Cls = defineClass(T.vm(), "Cratered", "Object", ClassKind::Fixed,
                        {}, "Tests");
  addMethod(T.vm(), Cls, "t", "inner ^self error: 'boom'");
  addMethod(T.vm(), Cls, "t", "outer ^self inner");
  Oop R = T.vm().compileAndRun("^Cratered new outer");
  EXPECT_TRUE(R.isNull());
  ASSERT_FALSE(T.vm().errors().empty());
  const std::string E = T.vm().errors().back();
  EXPECT_NE(E.find("boom"), std::string::npos) << E;
  EXPECT_NE(E.find("Cratered>>inner"), std::string::npos) << E;
  EXPECT_NE(E.find("Cratered>>outer"), std::string::npos) << E;
  EXPECT_NE(E.find("UndefinedObject>>doIt"), std::string::npos) << E;
}

TEST_F(KernelTest, ExtendedProtocol) {
  EXPECT_TRUE(T.evalBool("^'x' isString"));
  EXPECT_TRUE(T.evalBool("^#x isSymbol"));
  EXPECT_TRUE(T.evalBool("^#x isString")); // symbols are strings
  EXPECT_TRUE(T.evalBool("^3 isNumber"));
  EXPECT_TRUE(T.evalBool("^$a isCharacter"));
  EXPECT_TRUE(T.evalBool("^Array isClass"));
  EXPECT_FALSE(T.evalBool("^3 isString"));
  EXPECT_TRUE(T.evalBool("^#(1 2 3) anySatisfy: [:x | x even]"));
  EXPECT_FALSE(T.evalBool("^#(1 3 5) anySatisfy: [:x | x even]"));
  EXPECT_TRUE(T.evalBool("^#(2 4 6) allSatisfy: [:x | x even]"));
  EXPECT_EQ(T.evalInt("^#(1 2 3 4 5 6) count: [:x | x odd]"), 3);
  EXPECT_EQ(T.evalInt("^#(1 2 2 3 3 3) asSet size"), 3);
  EXPECT_EQ(T.evalString("^('ab' copyWith: $c)"), "abc");
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. c addAll: #(1 "
                      "2 3). c removeLast. ^c last"),
            2);
  EXPECT_EQ(T.evalString("^'MiXeD 42!' asUppercase"), "MIXED 42!");
  EXPECT_EQ(T.evalString("^'MiXeD 42!' asLowercase"), "mixed 42!");
  EXPECT_TRUE(T.evalBool("^'hello world' startsWith: 'hello'"));
  EXPECT_FALSE(T.evalBool("^'hello' startsWith: 'hello world'"));
}

TEST_F(KernelTest, DictionaryRemoveKey) {
  EXPECT_EQ(T.evalInt("| d | d := Dictionary new. d at: #a put: 1. d "
                      "at: #b put: 2. d removeKey: #a. ^d size"),
            1);
  EXPECT_EQ(T.evalInt("| d | d := Dictionary new. d at: #a put: 7. "
                      "^d removeKey: #a"),
            7);
  EXPECT_EQ(T.evalInt("| d | d := Dictionary new. ^d removeKey: #zork "
                      "ifAbsent: [-1]"),
            -1);
  // Removal does not disturb other probe chains.
  EXPECT_TRUE(T.evalBool(
      "| d ok | d := Dictionary new. 1 to: 40 do: [:i | d at: i put: i "
      "* 2]. 1 to: 40 do: [:i | i even ifTrue: [d removeKey: i]]. ok := "
      "d size = 20. 1 to: 40 do: [:i | i odd ifTrue: [(d at: i ifAbsent: "
      "[-1]) = (i * 2) ifFalse: [ok := false]] ifFalse: [(d includesKey: "
      "i) ifTrue: [ok := false]]]. ^ok"));
}

TEST_F(KernelTest, SystemDictionaryGrowsPastBootstrapTable) {
  // The bootstrap table holds 128 slots with ~50 kernel globals already
  // installed. Before SystemDictionary>>at:put: learned to grow, the
  // 78th eval-side global filled the table completely and the probe
  // loop spun forever (no empty slot, no wrap guard) — a single
  // `Smalltalk at: #X put: 0` wedged a serving shard permanently.
  EXPECT_TRUE(T.evalBool(
      "| ok | 1 to: 300 do: [:i | Smalltalk at: i printString asSymbol "
      "put: i * 3]. ok := true. 1 to: 300 do: [:i | (Smalltalk at: i "
      "printString asSymbol) = (i * 3) ifFalse: [ok := false]]. ^ok"));
  // Growth keeps the probe chains coherent: a lookup that hashed into
  // the old table still lands in the rebuilt one.
  EXPECT_EQ(T.evalInt("^Smalltalk at: 250 printString asSymbol"), 750);
}

TEST_F(KernelTest, ConstructorsAndCollectionMath) {
  EXPECT_EQ(T.evalInt("^(Array with: 7) first"), 7);
  EXPECT_EQ(T.evalInt("^(Array with: 1 with: 2 with: 3) sum"), 6);
  EXPECT_EQ(T.evalInt("^#(4 9 2 7) maxValue"), 9);
  EXPECT_EQ(T.evalInt("^#(4 9 2 7) minValue"), 2);
  EXPECT_EQ(T.evalInt("^(1 to: 10) sum"), 55);
  EXPECT_EQ(T.evalInt("^(OrderedCollection withAll: #(5 6)) sum"), 11);
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection withAll: #(2 3). c "
                      "addFirst: 1. ^c first * 100 + c last"),
            103);
  // addFirst: keeps working past the front of the buffer.
  EXPECT_TRUE(T.evalBool(
      "| c ok | c := OrderedCollection new. 50 to: 1 by: -1 do: [:i | c "
      "addFirst: i]. ok := c size = 50. 1 to: 50 do: [:i | (c at: i) = i "
      "ifFalse: [ok := false]]. ^ok"));
}

TEST_F(KernelTest, IntegerOverflowIsAnError) {
  // No LargeIntegers in this kernel: overflow falls back to the Integer
  // method, which raises a clean error rather than wrapping.
  Oop R = T.vm().compileAndRun("^4611686018427387903 + 1");
  EXPECT_TRUE(R.isNull());
  ASSERT_FALSE(T.vm().errors().empty());
  EXPECT_NE(T.vm().errors().front().find("overflow"), std::string::npos);
}

} // namespace
