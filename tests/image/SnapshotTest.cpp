//===-- tests/image/SnapshotTest.cpp - Image save/load --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "TestVm.h"

#include "image/Checkpoint.h"
#include "image/MacroBenchmarks.h"
#include "image/Snapshot.h"
#include "obs/Telemetry.h"
#include "support/Crc32.h"
#include "support/Panic.h"
#include "vkernel/Chaos.h"

using namespace mst;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

uint64_t counterValue(const char *Name) {
  for (const auto &P : Telemetry::counterTotals())
    if (P.first == Name)
      return P.second;
  return 0;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  std::vector<uint8_t> Bytes;
  if (F) {
    std::fseek(F, 0, SEEK_END);
    Bytes.resize(static_cast<size_t>(std::ftell(F)));
    std::fseek(F, 0, SEEK_SET);
    EXPECT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
    std::fclose(F);
  }
  return Bytes;
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  // Bytes.data() is null for the zero-byte truncation case.
  if (!Bytes.empty()) {
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  }
  std::fclose(F);
}

uint64_t readU64(const std::vector<uint8_t> &B, size_t Off) {
  uint64_t V;
  std::memcpy(&V, B.data() + Off, 8);
  return V;
}

/// Recomputes the whole-file CRC in the trailer so hand-corrupted inner
/// structure reaches the section-level verification.
void fixFileCrc(std::vector<uint8_t> &B) {
  uint32_t Crc = crc32(B.data(), B.size() - 16);
  std::memcpy(B.data() + B.size() - 12, &Crc, 4);
}

/// Recomputes the header CRC (over the 28 bytes before it) so a
/// hand-corrupted count reaches the header plausibility checks.
void fixHeaderCrc(std::vector<uint8_t> &B) {
  uint32_t Crc = crc32(B.data(), 28);
  std::memcpy(B.data() + 28, &Crc, 4);
}

/// Counts per-save temp files (`<name>.tmp*`) next to \p Path. Saves use
/// unique temp names, so residue is measured by prefix, not one name.
int tempFileCount(const std::string &Path) {
  size_t Slash = Path.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  std::string Prefix = Path.substr(Slash + 1) + ".tmp";
  int N = 0;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D))
      if (std::strncmp(E->d_name, Prefix.c_str(), Prefix.size()) == 0)
        ++N;
    ::closedir(D);
  }
  return N;
}

bool fileExists(const std::string &Path) {
  struct stat St {};
  return ::stat(Path.c_str(), &St) == 0;
}

/// Saves a small image with a recognizable marker value.
void saveMarkedImage(const std::string &Path, int Marker,
                     unsigned Keep = 0) {
  TestVm T;
  T.eval("Smalltalk at: #Marker put: " + std::to_string(Marker) + ". ^1");
  std::string Error;
  SnapshotOptions Opts;
  Opts.KeepGenerations = Keep;
  ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error, Opts)) << Error;
}

TEST(SnapshotTest, SaveAndReloadBasicImage) {
  std::string Path = tempPath("basic.image");
  // Build, mutate, and save in one thread; load and verify in another
  // (mutator registration is per-thread, one VM per thread).
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #SnapshotProbe put: 'preserved state'. ^1");
    T.evalInt("^(Smalltalk at: #Counter2 put: 41) + 1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();

  std::thread([&] {
    // A fresh VM, no bootstrap: everything comes from the file.
    VirtualMachine VM(VmConfig::multiprocessor(2));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;

    Oop Probe = VM.compileAndRun("^Smalltalk at: #SnapshotProbe");
    ASSERT_TRUE(Probe.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(Probe), "preserved state");
    // The kernel library still works: sends, collections, printing.
    Oop Sum = VM.compileAndRun(
        "^#(1 2 3) inject: 0 into: [:a :b | a + b]");
    ASSERT_TRUE(Sum.isSmallInt());
    EXPECT_EQ(Sum.smallInt(), 6);
    Oop S = VM.compileAndRun("^42 printString");
    ASSERT_TRUE(S.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(S), "42");
  }).join();
}

TEST(SnapshotTest, JournalMarkSectionRoundTripsAndStaysOptional) {
  std::string Plain = tempPath("plain.image");
  std::string Marked = tempPath("marked.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    // Without the mark the image stays the classic three-section layout.
    ASSERT_TRUE(saveSnapshot(T.vm(), Plain, Error)) << Error;
    SnapshotOptions Opts;
    Opts.HasJournalMark = true;
    Opts.JournalMark = 0xDEADBEEFCAFEull;
    ASSERT_TRUE(saveSnapshot(T.vm(), Marked, Error, Opts)) << Error;
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    SnapshotInfo Info;
    ASSERT_TRUE(loadSnapshot(VM, Plain, Error, &Info)) << Error;
    EXPECT_FALSE(Info.HasJournalMark);
    EXPECT_EQ(Info.JournalMark, 0u);
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    SnapshotInfo Info;
    ASSERT_TRUE(loadSnapshot(VM, Marked, Error, &Info)) << Error;
    EXPECT_TRUE(Info.HasJournalMark);
    EXPECT_EQ(Info.JournalMark, 0xDEADBEEFCAFEull);
    // The image itself is intact either way.
    Oop Sum = VM.compileAndRun("^3 + 4");
    ASSERT_TRUE(Sum.isSmallInt());
    EXPECT_EQ(Sum.smallInt(), 7);
  }).join();

  // Callers that never ask for the info (the whole pre-journal world)
  // still load a marked image.
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Marked, Error)) << Error;
  }).join();
}

TEST(SnapshotTest, RuntimeDefinedClassesSurvive) {
  std::string Path = tempPath("classes.image");
  std::thread([&] {
    TestVm T;
    Oop Cls = defineClass(T.vm(), "Persistent", "Object",
                          ClassKind::Fixed, {"payload"}, "Tests");
    addMethod(T.vm(), Cls, "accessing", "payload ^payload");
    addMethod(T.vm(), Cls, "accessing",
              "payload: anObject payload := anObject");
    T.eval("Smalltalk at: #Inst put: (Persistent new payload: 777). ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop V = VM.compileAndRun("^(Smalltalk at: #Inst) payload");
    ASSERT_TRUE(V.isSmallInt());
    EXPECT_EQ(V.smallInt(), 777);
    // New code compiles against the loaded class (symbol identity holds).
    Oop W = VM.compileAndRun("^Persistent new payload: 1; payload");
    ASSERT_TRUE(W.isSmallInt());
    EXPECT_EQ(W.smallInt(), 1);
  }).join();
}

TEST(SnapshotTest, ActiveProcessSlotIsEmptyAfterSaveAndLoad) {
  std::string Path = tempPath("activeproc.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
    // §3.3: emptied after the snapshot.
    EXPECT_EQ(ObjectMemory::fetchPointer(T.om().known().Processor,
                                         SchedActiveProcess),
              T.om().nil());
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    EXPECT_EQ(ObjectMemory::fetchPointer(VM.model().known().Processor,
                                         SchedActiveProcess),
              VM.model().nil());
  }).join();
}

TEST(SnapshotTest, LoadedImageRunsProcesses) {
  std::string Path = tempPath("procs.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(2));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    VM.startInterpreters();
    unsigned Sig = VM.createHostSignal();
    Oop P = VM.forkDoIt("| s | s := 0. 1 to: 100 do: [:i | s := s + i]. "
                        "s = 5050 ifTrue: [nil hostSignal: " +
                            std::to_string(Sig) + "]",
                        5, "post-load");
    ASSERT_FALSE(P.isNull());
    EXPECT_TRUE(VM.waitHostSignal(Sig, 1, 30.0));
  }).join();
}

TEST(SnapshotTest, SmalltalkCreatedClassesSurvive) {
  std::string Path = tempPath("stclasses.image");
  std::thread([&] {
    TestVm T;
    // Separate doIts: the Sprite global must exist before code that
    // names it compiles.
    T.eval("Object subclass: #Sprite instanceVariableNames: 'pos' "
           "category: 'Game'. ^1");
    T.eval("Compiler compile: 'pos ^pos' into: Sprite. Compiler "
           "compile: 'pos: p pos := p' into: Sprite. Smalltalk at: "
           "#Hero put: (Sprite new pos: 3 @ 4). ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop S = VM.compileAndRun("^(Smalltalk at: #Hero) pos printString");
    ASSERT_TRUE(S.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(S), "3 @ 4");
    // And the class remains subclassable after the reload (two doIts:
    // the Boss global must exist before code naming it compiles).
    VM.compileAndRun("Sprite subclass: #Boss instanceVariableNames: "
                     "'hp' category: 'Game'. ^1");
    Oop R = VM.compileAndRun("^Boss instanceVariableNames size");
    ASSERT_TRUE(R.isSmallInt());
    EXPECT_EQ(R.smallInt(), 2);
  }).join();
}

TEST(SnapshotTest, RejectsGarbageFiles) {
  std::string Path = tempPath("garbage.image");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  std::fputs("this is not an image", F);
  std::fclose(F);
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, Path, Error));
    EXPECT_FALSE(Error.empty());
  }).join();
}

TEST(SnapshotTest, MissingFileFailsCleanly) {
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, "/nonexistent/nowhere.image", Error));
    EXPECT_FALSE(Error.empty());
  }).join();
}

// --- Corruption sweep -----------------------------------------------------

TEST(SnapshotTest, TruncationAtEverySectionBoundaryFailsWithDiagnostics) {
  std::string Path = tempPath("truncsweep.image");
  std::thread([&] { saveMarkedImage(Path, 11); }).join();

  std::thread([&] {
    std::vector<uint8_t> Good = readFile(Path);
    ASSERT_GT(Good.size(), 64u);

    // Cut points derived from the file's own structure: inside the
    // header, at every section-header and section-payload boundary,
    // inside each payload, and through the trailer.
    std::vector<size_t> Cuts = {0, 1, 13, 31, 32};
    size_t Off = 32;
    for (int S = 0; S < 3; ++S) {
      size_t Payload = readU64(Good, Off + 8);
      Cuts.push_back(Off + 1);
      Cuts.push_back(Off + 15);
      Cuts.push_back(Off + 16);
      Cuts.push_back(Off + 16 + Payload / 2);
      Cuts.push_back(Off + 16 + Payload);
      Off += 16 + Payload;
    }
    Cuts.push_back(Good.size() - 16); // trailer gone entirely
    Cuts.push_back(Good.size() - 8);  // trailer torn mid-way
    Cuts.push_back(Good.size() - 1);  // one byte short

    // One VM takes every failed load: a rejected candidate must leave it
    // clean enough to load the pristine image afterwards.
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Trunc = tempPath("truncsweep.cut.image");
    for (size_t Cut : Cuts) {
      SCOPED_TRACE("truncated to " + std::to_string(Cut) + " of " +
                   std::to_string(Good.size()) + " bytes");
      ASSERT_LT(Cut, Good.size());
      writeFile(Trunc,
                std::vector<uint8_t>(Good.begin(), Good.begin() + Cut));
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Trunc, Error));
      EXPECT_FALSE(Error.empty());
    }
    std::string Error;
    ASSERT_TRUE(loadSnapshotExact(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 11);
  }).join();
}

TEST(SnapshotTest, BitFlipSweepIsAlwaysDetected) {
  std::string Path = tempPath("bitflip.image");
  std::thread([&] { saveMarkedImage(Path, 12); }).join();

  std::thread([&] {
    std::vector<uint8_t> Good = readFile(Path);
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Flipped = tempPath("bitflip.cut.image");
    uint64_t CrcBefore = counterValue("img.crc.failures");
    constexpr size_t Positions = 41;
    for (size_t I = 0; I < Positions; ++I) {
      size_t Pos = I * Good.size() / Positions;
      SCOPED_TRACE("bit flip at byte " + std::to_string(Pos));
      std::vector<uint8_t> Bad = Good;
      Bad[Pos] ^= static_cast<uint8_t>(1u << (I % 8));
      writeFile(Flipped, Bad);
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Flipped, Error));
      EXPECT_FALSE(Error.empty());
    }
    // Most flips land in section payloads and die on a CRC check.
    EXPECT_GT(counterValue("img.crc.failures"), CrcBefore);
    std::string Error;
    EXPECT_TRUE(loadSnapshotExact(VM, Path, Error)) << Error;
  }).join();
}

TEST(SnapshotTest, DiagnosticsNameSectionAndOffset) {
  std::string Path = tempPath("diag.image");
  std::thread([&] { saveMarkedImage(Path, 13); }).join();

  std::thread([&] {
    std::vector<uint8_t> Good = readFile(Path);
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Bad = tempPath("diag.bad.image");

    // A payload flip with the file CRC patched up reaches the per-section
    // check, which must name the damaged section.
    {
      std::vector<uint8_t> B = Good;
      size_t ObjsPayload = 32 + 16 + readU64(Good, 40) / 2;
      B[ObjsPayload] ^= 0xff;
      fixFileCrc(B);
      writeFile(Bad, B);
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Bad, Error));
      EXPECT_NE(Error.find("section 'objects' CRC mismatch"),
                std::string::npos)
          << Error;
      EXPECT_NE(Error.find("expected 0x"), std::string::npos) << Error;
    }

    // A wrong section tag (second section starts after the objects
    // payload) is reported as such, with its byte offset.
    {
      std::vector<uint8_t> B = Good;
      size_t RootHdr = 32 + 16 + readU64(Good, 40);
      B[RootHdr] ^= 0xff;
      fixFileCrc(B);
      writeFile(Bad, B);
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Bad, Error));
      EXPECT_NE(Error.find("bad tag"), std::string::npos) << Error;
      EXPECT_NE(Error.find("byte offset " + std::to_string(RootHdr)),
                std::string::npos)
          << Error;
    }
  }).join();
}

TEST(SnapshotTest, ImplausibleHeaderCountsAreRejectedBeforeAllocation) {
  std::string Path = tempPath("hugecount.image");
  std::thread([&] { saveMarkedImage(Path, 14); }).join();

  std::thread([&] {
    std::vector<uint8_t> Good = readFile(Path);
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Bad = tempPath("hugecount.bad.image");
    constexpr uint64_t Huge = 1ull << 60;

    // ObjectCount = 2^60 with every CRC patched valid must die on the
    // count-vs-section plausibility check, not inside a 2^60-record
    // reserve() (std::length_error would terminate the process).
    {
      std::vector<uint8_t> B = Good;
      std::memcpy(B.data() + 8, &Huge, 8);
      fixHeaderCrc(B);
      fixFileCrc(B);
      writeFile(Bad, B);
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Bad, Error));
      EXPECT_NE(Error.find("object count"), std::string::npos) << Error;
      EXPECT_NE(Error.find("impossible"), std::string::npos) << Error;
    }
    // Same for RootCount against the roots section.
    {
      std::vector<uint8_t> B = Good;
      std::memcpy(B.data() + 16, &Huge, 8);
      fixHeaderCrc(B);
      fixFileCrc(B);
      writeFile(Bad, B);
      std::string Error;
      EXPECT_FALSE(loadSnapshotExact(VM, Bad, Error));
      EXPECT_NE(Error.find("root count"), std::string::npos) << Error;
    }
    std::string Error;
    EXPECT_TRUE(loadSnapshotExact(VM, Path, Error)) << Error;
  }).join();
}

TEST(SnapshotTest, ErrorsCarryErrnoTextAndPath) {
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshotExact(VM, "/nonexistent/nowhere.image",
                                   Error));
    EXPECT_NE(Error.find(std::strerror(ENOENT)), std::string::npos)
        << Error;
    EXPECT_NE(Error.find("/nonexistent/nowhere.image"), std::string::npos)
        << Error;
  }).join();

  std::thread([&] {
    TestVm T;
    std::string Error;
    EXPECT_FALSE(
        saveSnapshot(T.vm(), "/nonexistent/dir/out.image", Error));
    EXPECT_NE(Error.find(std::strerror(ENOENT)), std::string::npos)
        << Error;
    EXPECT_NE(Error.find("/nonexistent/dir/out.image.tmp"),
              std::string::npos)
        << Error;
  }).join();
}

// --- Recovery ladder and rotation -----------------------------------------

TEST(SnapshotTest, RecoveryLadderFallsBackThroughGenerations) {
  std::string Path = tempPath("ladder.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    SnapshotOptions Opts;
    Opts.KeepGenerations = 2;
    T.eval("Smalltalk at: #Marker put: 1. ^1");
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error, Opts)) << Error;
    T.eval("Smalltalk at: #Marker put: 2. ^1");
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error, Opts)) << Error;
  }).join();
  ASSERT_TRUE(fileExists(Path));
  ASSERT_TRUE(fileExists(Path + ".1"));

  // Damage the primary: the ladder must fall back to the previous
  // generation (which holds the older marker) and count the fallback.
  std::vector<uint8_t> Primary = readFile(Path);
  Primary[Primary.size() / 2] ^= 0x01;
  writeFile(Path, Primary);

  std::thread([&] {
    uint64_t Before = counterValue("img.load.fallbacks");
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 1);
    EXPECT_GE(counterValue("img.load.fallbacks"), Before + 1);
  }).join();
}

TEST(SnapshotTest, LadderReportsEveryCandidateWhenExhausted) {
  std::string Path = tempPath("exhausted.image");
  std::thread([&] { saveMarkedImage(Path, 3, 1); }).join();
  std::thread([&] { saveMarkedImage(Path, 4, 1); }).join();
  for (const std::string &P : {Path, Path + ".1"}) {
    std::vector<uint8_t> B = readFile(P);
    B[B.size() / 3] ^= 0x10;
    writeFile(P, B);
  }
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, Path, Error));
    EXPECT_NE(Error.find(Path + ":"), std::string::npos) << Error;
    EXPECT_NE(Error.find(Path + ".1:"), std::string::npos) << Error;
  }).join();
}

TEST(SnapshotTest, MaterializeFailureStopsTheLadder) {
  std::string Path = tempPath("matfail.image");
  std::thread([&] { saveMarkedImage(Path, 15, 1); }).join();
  std::thread([&] { saveMarkedImage(Path, 16, 1); }).join();
  ASSERT_TRUE(fileExists(Path + ".1"));

  std::thread([&] {
    uint64_t Before = counterValue("img.load.fallbacks");
    VirtualMachine VM(VmConfig::multiprocessor(1));
    chaos::armFail("snapshot.materialize.fail", 1000, 3);
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, Path, Error));
    chaos::disarmFail();
    // The primary failed mid-materialize, so the VM is no longer freshly
    // constructed: the (perfectly valid) .1 generation must not have been
    // attempted, and the error must say why the ladder stopped.
    EXPECT_NE(Error.find("freshly constructed VM"), std::string::npos)
        << Error;
    EXPECT_EQ(counterValue("img.load.fallbacks"), Before);
  }).join();

  // The same ladder in a fresh VM without the fault loads the primary.
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 16);
  }).join();
}

// --- Chaos-injected I/O faults --------------------------------------------

TEST(SnapshotTest, WriteFailureChaosLeavesTargetIntact) {
  std::string Path = tempPath("chaoswrite.image");
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #Marker put: 7. ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;

    // Arm a certain write failure: the re-save must fail with a located
    // error and must not disturb the target or leave its temp file.
    T.eval("Smalltalk at: #Marker put: 8. ^1");
    int TempsBefore = tempFileCount(Path);
    chaos::enableSeed(99);
    chaos::armFail("io.write.fail", 1000, 99);
    EXPECT_FALSE(saveSnapshot(T.vm(), Path, Error));
    chaos::disarmFail();
    chaos::disable();
    EXPECT_NE(Error.find("io.write.fail"), std::string::npos) << Error;
    EXPECT_NE(Error.find("byte offset"), std::string::npos) << Error;
    EXPECT_EQ(tempFileCount(Path), TempsBefore);
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 7);
  }).join();
}

TEST(SnapshotTest, TruncateChaosNeverTearsTheTarget) {
  std::string Path = tempPath("chaostrunc.image");
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #Marker put: 9. ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
    // A simulated kill mid-save tears only the temp file.
    chaos::enableSeed(5);
    chaos::armFail("snapshot.truncate", 1000, 5);
    EXPECT_FALSE(saveSnapshot(T.vm(), Path, Error));
    chaos::disarmFail();
    chaos::disable();
    EXPECT_NE(Error.find("snapshot.truncate"), std::string::npos)
        << Error;
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 9);
  }).join();
}

TEST(SnapshotTest, DirFsyncFailureAfterRenameStillCommits) {
  std::string Path = tempPath("dirfsync.image");
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #Marker put: 17. ^1");
    uint64_t SavesBefore = counterValue("img.save.snapshots");
    // The rename lands before the directory fsync runs: the image is in
    // place and loadable, so the save must report success (with a
    // warning), count the snapshot, and let the checkpointer count it.
    chaos::armFail("io.dirfsync.fail", 1000, 7);
    std::string Error;
    EXPECT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
    chaos::disarmFail();
    EXPECT_EQ(counterValue("img.save.snapshots"), SavesBefore + 1);
    EXPECT_GE(counterValue("img.save.dirfsync.warnings"), 1u);
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshotExact(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 17);
  }).join();
}

// --- Worker-count matrix under seeded chaos schedules ---------------------

TEST(SnapshotTest, RoundTripsAcrossWorkerConfigsUnderChaos) {
  for (unsigned SaveK : {1u, 4u}) {
    for (uint64_t Seed : {1ull, 7ull}) {
      SCOPED_TRACE("save-workers=" + std::to_string(SaveK) + " seed=" +
                   std::to_string(Seed));
      std::string Path = tempPath("matrix.image");
      std::thread([&] {
        chaos::enableSeed(Seed);
        TestVm T{VmConfig::multiprocessor(SaveK)};
        T.vm().startInterpreters();
        unsigned Sig = T.vm().createHostSignal();
        T.vm().forkDoIt("| s | s := 0. 1 to: 200 do: [:i | s := s + i]. "
                        "Smalltalk at: #Sum put: s. nil hostSignal: " +
                            std::to_string(Sig),
                        5, "warm");
        ASSERT_TRUE(T.vm().waitHostSignal(Sig, 1, 30.0));
        std::string Error;
        bool Saved = saveSnapshot(T.vm(), Path, Error);
        chaos::disable();
        ASSERT_TRUE(Saved) << Error;
      }).join();

      std::thread([&] {
        // Load into the *other* worker count: the image is
        // configuration-independent.
        chaos::enableSeed(Seed);
        VirtualMachine VM(VmConfig::multiprocessor(SaveK == 1 ? 4 : 1));
        std::string Error;
        bool LoadedOk = loadSnapshot(VM, Path, Error);
        if (LoadedOk) {
          VM.startInterpreters();
          unsigned Sig = VM.createHostSignal();
          VM.forkDoIt("(Smalltalk at: #Sum) = 20100 ifTrue: "
                      "[nil hostSignal: " +
                          std::to_string(Sig) + "]",
                      5, "verify");
          EXPECT_TRUE(VM.waitHostSignal(Sig, 1, 30.0));
          VM.shutdown();
        }
        chaos::disable();
        ASSERT_TRUE(LoadedOk) << Error;
      }).join();
    }
  }
}

// --- Auto-checkpoint and the emergency panic snapshot ---------------------

TEST(SnapshotTest, AutoCheckpointerWritesPeriodically) {
  std::string Path = tempPath("autockpt.image");
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #Marker put: 21. ^1");
    Checkpointer::Options Opts;
    Opts.Path = Path;
    Opts.EveryMs = 25;
    Opts.KeepGenerations = 1;
    Opts.EmergencyOnPanic = false;
    Checkpointer Ck(T.vm(), Opts);
    {
      // The driver must count as safe while it sleeps, or the
      // checkpointer's stop-the-world request can never complete.
      BlockedRegion B(T.vm().memory().safepoint());
      auto Deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (Ck.checkpointsTaken() < 2 &&
             std::chrono::steady_clock::now() < Deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(Ck.checkpointsTaken(), 2u) << Ck.lastError();
  }).join();
  ASSERT_TRUE(fileExists(Path));
  ASSERT_TRUE(fileExists(Path + ".1")); // rotation ran on the second save
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 21);
  }).join();
}

TEST(SnapshotTest, ConcurrentCheckpointsNeverTearTheTarget) {
  std::string Path = tempPath("concurrent.image");
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #Marker put: 77. ^1");
    Checkpointer::Options Opts;
    Opts.Path = Path;
    Opts.EveryMs = 1; // the periodic saver hammers the same path...
    Opts.KeepGenerations = 0; // ...with no ladder to hide a torn target
    Opts.EmergencyOnPanic = false;
    Checkpointer Ck(T.vm(), Opts);
    // ...while the driver races it with explicit checkpoints, the repl's
    // exit-time pattern. Every save must publish a complete image.
    std::string Error;
    for (int I = 0; I < 25; ++I)
      EXPECT_TRUE(Ck.checkpointNow(Error)) << Error;
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshotExact(VM, Path, Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 77);
  }).join();
}

TEST(SnapshotTest, EmergencyPanicSnapshotRunsTheMacroWorkload) {
  std::string Path = tempPath("panic.image");
  std::thread([&] {
    TestVm T;
    setupMacroWorkload(T.vm());
    T.eval("Smalltalk at: #Marker put: 23. ^1");
    Checkpointer::Options Opts;
    Opts.Path = Path;
    Checkpointer Ck(T.vm(), Opts);

    std::string Dump;
    setPanicHandler([&Dump](const std::string &D) { Dump = D; });
    EXPECT_TRUE(panicReport("forced panic (snapshot test)"));
    setPanicHandler(nullptr);
    EXPECT_NE(Dump.find("emergency snapshot"), std::string::npos);
    EXPECT_NE(Dump.find("written to " + Path + ".panic"),
              std::string::npos)
        << Dump;
  }).join();
  ASSERT_TRUE(fileExists(Path + ".panic"));

  // The acceptance bar: a fresh VM boots the emergency image and runs a
  // macro benchmark on it.
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(2));
    std::string Error;
    ASSERT_TRUE(loadSnapshotExact(VM, Path + ".panic", Error)) << Error;
    Oop M = VM.compileAndRun("^Smalltalk at: #Marker");
    ASSERT_TRUE(M.isSmallInt());
    EXPECT_EQ(M.smallInt(), 23);
    VM.startInterpreters();
    TimedRun R = runMacroBenchmark(VM, macroBenchmarks()[6], 0.01);
    EXPECT_TRUE(R.Ok);
    VM.shutdown();
  }).join();
}

} // namespace
