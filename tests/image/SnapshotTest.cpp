//===-- tests/image/SnapshotTest.cpp - Image save/load --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <thread>

#include "TestVm.h"

#include "image/Snapshot.h"

using namespace mst;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

TEST(SnapshotTest, SaveAndReloadBasicImage) {
  std::string Path = tempPath("basic.image");
  // Build, mutate, and save in one thread; load and verify in another
  // (mutator registration is per-thread, one VM per thread).
  std::thread([&] {
    TestVm T;
    T.eval("Smalltalk at: #SnapshotProbe put: 'preserved state'. ^1");
    T.evalInt("^(Smalltalk at: #Counter2 put: 41) + 1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();

  std::thread([&] {
    // A fresh VM, no bootstrap: everything comes from the file.
    VirtualMachine VM(VmConfig::multiprocessor(2));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;

    Oop Probe = VM.compileAndRun("^Smalltalk at: #SnapshotProbe");
    ASSERT_TRUE(Probe.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(Probe), "preserved state");
    // The kernel library still works: sends, collections, printing.
    Oop Sum = VM.compileAndRun(
        "^#(1 2 3) inject: 0 into: [:a :b | a + b]");
    ASSERT_TRUE(Sum.isSmallInt());
    EXPECT_EQ(Sum.smallInt(), 6);
    Oop S = VM.compileAndRun("^42 printString");
    ASSERT_TRUE(S.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(S), "42");
  }).join();
}

TEST(SnapshotTest, RuntimeDefinedClassesSurvive) {
  std::string Path = tempPath("classes.image");
  std::thread([&] {
    TestVm T;
    Oop Cls = defineClass(T.vm(), "Persistent", "Object",
                          ClassKind::Fixed, {"payload"}, "Tests");
    addMethod(T.vm(), Cls, "accessing", "payload ^payload");
    addMethod(T.vm(), Cls, "accessing",
              "payload: anObject payload := anObject");
    T.eval("Smalltalk at: #Inst put: (Persistent new payload: 777). ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();

  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop V = VM.compileAndRun("^(Smalltalk at: #Inst) payload");
    ASSERT_TRUE(V.isSmallInt());
    EXPECT_EQ(V.smallInt(), 777);
    // New code compiles against the loaded class (symbol identity holds).
    Oop W = VM.compileAndRun("^Persistent new payload: 1; payload");
    ASSERT_TRUE(W.isSmallInt());
    EXPECT_EQ(W.smallInt(), 1);
  }).join();
}

TEST(SnapshotTest, ActiveProcessSlotIsEmptyAfterSaveAndLoad) {
  std::string Path = tempPath("activeproc.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
    // §3.3: emptied after the snapshot.
    EXPECT_EQ(ObjectMemory::fetchPointer(T.om().known().Processor,
                                         SchedActiveProcess),
              T.om().nil());
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    EXPECT_EQ(ObjectMemory::fetchPointer(VM.model().known().Processor,
                                         SchedActiveProcess),
              VM.model().nil());
  }).join();
}

TEST(SnapshotTest, LoadedImageRunsProcesses) {
  std::string Path = tempPath("procs.image");
  std::thread([&] {
    TestVm T;
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(2));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    VM.startInterpreters();
    unsigned Sig = VM.createHostSignal();
    Oop P = VM.forkDoIt("| s | s := 0. 1 to: 100 do: [:i | s := s + i]. "
                        "s = 5050 ifTrue: [nil hostSignal: " +
                            std::to_string(Sig) + "]",
                        5, "post-load");
    ASSERT_FALSE(P.isNull());
    EXPECT_TRUE(VM.waitHostSignal(Sig, 1, 30.0));
  }).join();
}

TEST(SnapshotTest, SmalltalkCreatedClassesSurvive) {
  std::string Path = tempPath("stclasses.image");
  std::thread([&] {
    TestVm T;
    // Separate doIts: the Sprite global must exist before code that
    // names it compiles.
    T.eval("Object subclass: #Sprite instanceVariableNames: 'pos' "
           "category: 'Game'. ^1");
    T.eval("Compiler compile: 'pos ^pos' into: Sprite. Compiler "
           "compile: 'pos: p pos := p' into: Sprite. Smalltalk at: "
           "#Hero put: (Sprite new pos: 3 @ 4). ^1");
    std::string Error;
    ASSERT_TRUE(saveSnapshot(T.vm(), Path, Error)) << Error;
  }).join();
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    ASSERT_TRUE(loadSnapshot(VM, Path, Error)) << Error;
    Oop S = VM.compileAndRun("^(Smalltalk at: #Hero) pos printString");
    ASSERT_TRUE(S.isPointer());
    EXPECT_EQ(ObjectModel::stringValue(S), "3 @ 4");
    // And the class remains subclassable after the reload (two doIts:
    // the Boss global must exist before code naming it compiles).
    VM.compileAndRun("Sprite subclass: #Boss instanceVariableNames: "
                     "'hp' category: 'Game'. ^1");
    Oop R = VM.compileAndRun("^Boss instanceVariableNames size");
    ASSERT_TRUE(R.isSmallInt());
    EXPECT_EQ(R.smallInt(), 2);
  }).join();
}

TEST(SnapshotTest, RejectsGarbageFiles) {
  std::string Path = tempPath("garbage.image");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  std::fputs("this is not an image", F);
  std::fclose(F);
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, Path, Error));
    EXPECT_FALSE(Error.empty());
  }).join();
}

TEST(SnapshotTest, MissingFileFailsCleanly) {
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    EXPECT_FALSE(loadSnapshot(VM, "/nonexistent/nowhere.image", Error));
    EXPECT_FALSE(Error.empty());
  }).join();
}

} // namespace
