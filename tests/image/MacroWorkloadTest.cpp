//===-- tests/image/MacroWorkloadTest.cpp - Benchmark side-effects ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro benchmarks must *do the work they claim*: these tests check
/// their observable side-effects, so a silently-failing benchmark can
/// never report a flattering time.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "image/MacroBenchmarks.h"

using namespace mst;

namespace {

class MacroWorkloadTest : public ::testing::Test {
protected:
  MacroWorkloadTest() {
    setupMacroWorkload(T.vm());
    T.vm().startInterpreters();
  }
  TestVm T{VmConfig::multiprocessor(2)};
};

TEST_F(MacroWorkloadTest, CompileBenchmarkActuallyInstalls) {
  EXPECT_FALSE(
      T.evalBool("^BenchmarkDummy includesSelector: #dummyMethod"));
  TimedRun R = runMacroBenchmark(T.vm(), macroBenchmarks()[6], 0.01);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(
      T.evalBool("^BenchmarkDummy includesSelector: #dummyMethod"));
  // The compiled dummy is a genuine method (30 iterations of sends).
  EXPECT_TRUE(T.evalBool(
      "^(BenchmarkDummy compiledMethodAt: #dummyMethod) numArgs = 0"));
}

TEST_F(MacroWorkloadTest, OrganizationBenchmarkPreservesStructure) {
  intptr_t Before = T.evalInt(
      "^Dictionary organization categories size");
  TimedRun R = runMacroBenchmark(T.vm(), macroBenchmarks()[0], 0.05);
  ASSERT_TRUE(R.Ok);
  // The benchmark replaces every organization with a parsed copy; the
  // category structure must be intact afterwards.
  EXPECT_EQ(T.evalInt("^Dictionary organization categories size"),
            Before);
  EXPECT_TRUE(T.evalBool(
      "^(Dictionary organization selectorsInCategory: #accessing) "
      "includes: #'at:put:'"));
}

TEST_F(MacroWorkloadTest, InspectorBenchmarkEmitsViews) {
  uint64_t Before = T.vm().display().submittedCount();
  TimedRun R = runMacroBenchmark(T.vm(), macroBenchmarks()[5], 0.01);
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(T.vm().display().submittedCount(), Before + 10);
}

TEST_F(MacroWorkloadTest, SearchBenchmarksFindRealResults) {
  // find-all-calls / find-all-implementors return non-trivial result
  // sets over the image.
  EXPECT_GT(T.evalInt("^(Smalltalk sendersOf: #printOn:) size"), 0);
  EXPECT_GT(T.evalInt("^(Smalltalk implementorsOf: #printOn:) size"),
            10);
}

TEST_F(MacroWorkloadTest, IdleSourceMatchesThePaper) {
  EXPECT_EQ(idleProcessSource(), "[true] whileTrue");
}

TEST_F(MacroWorkloadTest, BusySourceContendForDisplay) {
  unsigned Sig = T.vm().createHostSignal();
  uint64_t Before = T.vm().display().submittedCount();
  forkCompetitors(T.vm(), 2, busyProcessSource(), "BusyProbe");
  // Let them spin briefly via a small foreground workload.
  T.vm().forkDoIt("1 to: 50000 do: [:i | i]. nil hostSignal: " +
                      std::to_string(Sig),
                  5, "pace");
  ASSERT_TRUE(T.vm().waitHostSignal(Sig, 1, 60.0));
  terminateCompetitors(T.vm(), "BusyProbe");
  EXPECT_GT(T.vm().display().submittedCount(), Before)
      << "busy Processes must emit display traffic";
}

TEST_F(MacroWorkloadTest, EveryBenchmarkHasPositiveBaseIterations) {
  for (const MacroBenchmark &B : macroBenchmarks()) {
    EXPECT_GT(B.BaseIterations, 0) << B.Name;
    EXPECT_NE(B.Body.find("%SCALE%"), std::string::npos) << B.Name;
  }
  EXPECT_EQ(macroBenchmarks().size(), 8u) << "Table 2 has eight columns";
}

} // namespace
