//===-- tests/image/BrowsingTest.cpp - System browsing --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The browsing operations behind the macro benchmarks: definitions,
/// hierarchies, organizations (read AND write), senders, implementors,
/// inspectors, runtime compilation and decompilation.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

using namespace mst;

namespace {

class BrowsingTest : public ::testing::Test {
protected:
  TestVm T;
};

TEST_F(BrowsingTest, DefinitionFormat) {
  EXPECT_EQ(T.evalString("^Point definition"),
            "Object subclass: #Point instanceVariableNames: 'x y' "
            "category: 'Graphics-Basic'");
  EXPECT_EQ(T.evalString("^Object definition"),
            "nil subclass: #Object instanceVariableNames: '' category: "
            "'Kernel-Objects'");
}

TEST_F(BrowsingTest, HierarchyContainsSubtree) {
  std::string H = T.evalString("^Magnitude printHierarchy");
  EXPECT_NE(H.find("Magnitude"), std::string::npos);
  EXPECT_NE(H.find("  Number"), std::string::npos);
  EXPECT_NE(H.find("    Integer"), std::string::npos);
  EXPECT_NE(H.find("      SmallInteger"), std::string::npos);
  EXPECT_NE(H.find("  Character"), std::string::npos);
  EXPECT_EQ(H.find("Collection"), std::string::npos);
}

TEST_F(BrowsingTest, OrganizationRoundTrip) {
  // The "read and write class organization" benchmark's core: print an
  // organization, parse it back, and get the same classification.
  EXPECT_TRUE(T.evalBool(
      "| org text org2 | org := OrderedCollection organization. text := "
      "org printString. org2 := ClassOrganization fromString: text. "
      "^(org2 selectorsInCategory: #adding) includes: #add:"));
  // The category structure survives a round trip (iteration order may
  // legally differ, so compare contents, not text).
  EXPECT_TRUE(T.evalBool(
      "| org org2 ok | org := Dictionary organization. org2 := "
      "ClassOrganization fromString: org printString. ok := org "
      "categories size = org2 categories size. org categories keysDo: "
      "[:cat | (org selectorsInCategory: cat) do: [:sel | ((org2 "
      "selectorsInCategory: cat) includes: sel) ifFalse: [ok := "
      "false]]]. ^ok"));
}

TEST_F(BrowsingTest, ImplementorsFindsDefiners) {
  // printOn: is implemented by Integer but not by SmallInteger.
  EXPECT_TRUE(T.evalBool(
      "^(Smalltalk implementorsOf: #printOn:) includes: Integer"));
  EXPECT_FALSE(T.evalBool(
      "^(Smalltalk implementorsOf: #printOn:) includes: SmallInteger"));
  EXPECT_EQ(T.evalInt("^(Smalltalk implementorsOf: "
                      "#noSuchSelectorAnywhere) size"),
            0);
}

TEST_F(BrowsingTest, SendersScanLiteralFrames) {
  // Add a method with a distinctive literal selector and find it.
  Oop Cls = defineClass(T.vm(), "SenderProbe", "Object", ClassKind::Fixed,
                        {}, "Tests");
  addMethod(T.vm(), Cls, "probing",
            "probe ^self perform: #veryUniqueTargetSelector");
  EXPECT_EQ(T.evalInt("^(Smalltalk sendersOf: "
                      "#veryUniqueTargetSelector) size"),
            1);
  EXPECT_TRUE(T.evalBool(
      "^(Smalltalk sendersOf: #veryUniqueTargetSelector) first "
      "selector == #probe"));
}

TEST_F(BrowsingTest, SendersSeeNestedArrayLiterals) {
  Oop Cls = defineClass(T.vm(), "ArrayProbe", "Object", ClassKind::Fixed,
                        {}, "Tests");
  addMethod(T.vm(), Cls, "probing",
            "table ^#(alpha uniqueNestedSelector beta)");
  EXPECT_EQ(
      T.evalInt("^(Smalltalk sendersOf: #uniqueNestedSelector) size"), 1);
}

TEST_F(BrowsingTest, InspectorFields) {
  EXPECT_EQ(T.evalInt("^(Inspector on: (Point x: 9 y: 8)) fields size"),
            3); // self + x + y
  EXPECT_TRUE(T.evalBool(
      "| f | f := (Inspector on: (Point x: 9 y: 8)) fields. ^(f at: 2) "
      "value = '9'"));
  // Inspecting writes a view description to the display.
  uint64_t Before = T.vm().display().submittedCount();
  T.eval("^(Inspector on: 3 -> 4) show");
  EXPECT_GT(T.vm().display().submittedCount(), Before);
}

TEST_F(BrowsingTest, RuntimeCompilationInstallsAndRuns) {
  Oop Cls = defineClass(T.vm(), "Crunch", "Object", ClassKind::Fixed, {},
                        "Tests");
  (void)Cls;
  Oop Sel = T.eval("^Compiler compile: 'triple: n ^n * 3' into: Crunch");
  EXPECT_EQ(Sel, T.om().intern("triple:"));
  EXPECT_EQ(T.evalInt("^Crunch new triple: 14"), 42);
  // Redefinition replaces the method.
  T.eval("^Compiler compile: 'triple: n ^n * 30' into: Crunch");
  EXPECT_EQ(T.evalInt("^Crunch new triple: 14"), 420);
}

TEST_F(BrowsingTest, CompileErrorAnswersNil) {
  EXPECT_EQ(T.eval("^Compiler compile: 'broken ^((' into: Point"),
            T.om().nil());
}

TEST_F(BrowsingTest, SelectorsAndMethodAccess) {
  EXPECT_TRUE(T.evalBool("^Point selectors includes: #x"));
  EXPECT_TRUE(T.evalBool("^(Point compiledMethodAt: #x) numArgs = 0"));
  EXPECT_TRUE(T.evalBool("^(Point compiledMethodAt: #nope) isNil"));
  EXPECT_TRUE(T.evalBool("^Point includesSelector: #setX:y:"));
  EXPECT_FALSE(T.evalBool("^Point includesSelector: #zork"));
}

TEST_F(BrowsingTest, AllBehaviorsCoverMetaclasses) {
  intptr_t Classes = T.evalInt(
      "| n | n := 0. Smalltalk allClassesDo: [:c | n := n + 1]. ^n");
  intptr_t Behaviors = T.evalInt(
      "| n | n := 0. Smalltalk allBehaviorsDo: [:c | n := n + 1]. ^n");
  EXPECT_EQ(Behaviors, Classes * 2);
  EXPECT_GE(Classes, 40);
}

TEST_F(BrowsingTest, SubclassCreationFromSmalltalk) {
  // The browser's accept action: evaluate a definition string.
  Oop Cls = T.eval("^Object subclass: #Vec3 instanceVariableNames: 'dx "
                   "dy dz' category: 'Examples-Geometry'");
  ASSERT_TRUE(Cls.isPointer());
  EXPECT_TRUE(T.om().isKindOf(Cls, T.om().known().ClassBehavior));
  EXPECT_EQ(T.om().fixedFieldsOf(Cls), 3u);
  EXPECT_EQ(T.evalString("^Vec3 name asString"), "Vec3");
  // Compile methods into it and use them.
  T.eval("^Compiler compile: 'mag2 ^dx * dx + (dy * dy) + (dz * dz)' "
         "into: Vec3");
  T.eval("^Compiler compile: 'setDx: a dy: b dz: c dx := a. dy := b. dz "
         ":= c' into: Vec3");
  EXPECT_EQ(T.evalInt("| v | v := Vec3 new. v setDx: 1 dy: 2 dz: 2. ^v "
                      "mag2"),
            9);
  // Its own definition is an executable near-round-trip.
  EXPECT_EQ(T.evalString("^Vec3 definition"),
            "Object subclass: #Vec3 instanceVariableNames: 'dx dy dz' "
            "category: 'Examples-Geometry'");
  // Subclass the new class from Smalltalk too: inheritance carries over.
  T.eval("^Vec3 subclass: #Vec4 instanceVariableNames: 'dw' category: "
         "'Examples-Geometry'");
  EXPECT_EQ(T.evalInt("^Vec4 instanceVariableNames size"), 4);
  EXPECT_TRUE(T.evalBool("^Vec4 new isKindOf: Vec3"));
  // Definitions show up in the hierarchy browser.
  EXPECT_NE(T.evalString("^Object printHierarchy").find("Vec4"),
            std::string::npos);
}

TEST_F(BrowsingTest, SubclassValidation) {
  // Byte-indexable classes cannot gain named instance variables.
  Oop R = T.vm().compileAndRun(
      "^String subclass: #Tagged instanceVariableNames: 'tag' category: "
      "'X'");
  EXPECT_TRUE(R.isNull());
}

} // namespace
