//===-- tests/vkernel/VKernelTest.cpp - Lightweight processes -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <atomic>

#include <gtest/gtest.h>

#include "vkernel/VKernel.h"

using namespace mst;

namespace {

TEST(VKernelTest, RunsProcesses) {
  VKernel K(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 4; ++I)
    K.createProcess("p" + std::to_string(I), [&Ran] { ++Ran; });
  K.joinAll();
  EXPECT_EQ(Ran.load(), 4);
  EXPECT_EQ(K.numProcesses(), 4u);
}

TEST(VKernelTest, StaticRoundRobinAssignment) {
  // "V processes are statically assigned to processors" (paper §3.2):
  // creation order maps round-robin onto the virtual processors.
  VKernel K(3);
  std::vector<VProcess *> Ps;
  for (int I = 0; I < 7; ++I)
    Ps.push_back(K.createProcess("p", [] {}));
  K.joinAll();
  for (int I = 0; I < 7; ++I)
    EXPECT_EQ(Ps[I]->processor(), static_cast<unsigned>(I % 3));
  EXPECT_EQ(K.processesOnProcessor(0).size(), 3u);
  EXPECT_EQ(K.processesOnProcessor(1).size(), 2u);
  EXPECT_EQ(K.processesOnProcessor(2).size(), 2u);
}

TEST(VKernelTest, ProcessIdsAreDense) {
  VKernel K(5);
  VProcess *A = K.createProcess("a", [] {});
  VProcess *B = K.createProcess("b", [] {});
  K.joinAll();
  EXPECT_EQ(A->id(), 0u);
  EXPECT_EQ(B->id(), 1u);
  EXPECT_EQ(A->name(), "a");
}

TEST(VKernelTest, JoinAllIsIdempotent) {
  VKernel K(1);
  K.createProcess("p", [] {});
  K.joinAll();
  K.joinAll(); // must not crash or hang
}

} // namespace
