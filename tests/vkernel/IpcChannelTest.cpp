//===-- tests/vkernel/IpcChannelTest.cpp - Send/Receive/Reply -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vkernel/IpcChannel.h"

using namespace mst;

namespace {

TEST(IpcChannelTest, SendBlocksUntilReply) {
  IpcChannel Chan;
  std::thread Server([&] {
    uint64_t Req;
    IpcChannel::MessageHandle H = Chan.receive(Req);
    EXPECT_EQ(Req, 41u);
    Chan.reply(H, Req + 1);
  });
  uint64_t R = Chan.send(41);
  EXPECT_EQ(R, 42u);
  Server.join();
}

TEST(IpcChannelTest, TryReceiveEmpty) {
  IpcChannel Chan;
  uint64_t Req;
  EXPECT_EQ(Chan.tryReceive(Req), nullptr);
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

TEST(IpcChannelTest, ManySendersOneReceiver) {
  IpcChannel Chan;
  constexpr unsigned N = 8;
  std::vector<std::thread> Senders;
  std::vector<uint64_t> Replies(N);
  for (unsigned I = 0; I < N; ++I)
    Senders.emplace_back([&Chan, &Replies, I] {
      Replies[I] = Chan.send(I);
    });
  // The receiver replies with request * 2, in whatever order they arrive.
  for (unsigned I = 0; I < N; ++I) {
    uint64_t Req;
    IpcChannel::MessageHandle H = Chan.receive(Req);
    Chan.reply(H, Req * 2);
  }
  for (auto &T : Senders)
    T.join();
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Replies[I], uint64_t(I) * 2);
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

TEST(IpcChannelTest, RendezvousStyleGathering) {
  // The scavenge-rendezvous shape: N mutators send, a coordinator gathers
  // all of them (holding replies), does its work, then releases everyone.
  IpcChannel Chan;
  constexpr unsigned N = 4;
  std::atomic<unsigned> Released{0};
  std::vector<std::thread> Mutators;
  for (unsigned I = 0; I < N; ++I)
    Mutators.emplace_back([&] {
      Chan.send(1);
      Released.fetch_add(1);
    });
  std::vector<IpcChannel::MessageHandle> Parked;
  uint64_t Req;
  for (unsigned I = 0; I < N; ++I)
    Parked.push_back(Chan.receive(Req));
  // World stopped: nobody released yet.
  EXPECT_EQ(Released.load(), 0u);
  for (auto H : Parked)
    Chan.reply(H, 0);
  for (auto &T : Mutators)
    T.join();
  EXPECT_EQ(Released.load(), N);
}

TEST(IpcChannelTest, DestructionWakesBlockedReceiver) {
  // Regression: destroying a channel while a receiver is parked in
  // receive() used to leave it blocked forever (and the destructor tore
  // the condvar out from under it). The receiver must wake with nullptr.
  auto Chan = std::make_unique<IpcChannel>();
  std::thread Receiver([&Chan] {
    uint64_t Req = 0;
    EXPECT_EQ(Chan->receive(Req), nullptr);
  });
  // Wait until the receiver is parked *inside* receive(); destroying the
  // channel under a thread still on its way in would be caller error.
  while (Chan->waiters() != 1)
    std::this_thread::yield();
  Chan.reset();
  Receiver.join();
}

TEST(IpcChannelTest, ShutdownReleasesBlockedSenderWithStatus) {
  IpcChannel Chan;
  std::thread Sender([&Chan] {
    EXPECT_EQ(Chan.send(9), IpcChannel::ShutdownResponse);
  });
  while (Chan.pendingSenders() == 0)
    std::this_thread::yield();
  Chan.shutdown();
  Sender.join();
  EXPECT_TRUE(Chan.isShutdown());
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

TEST(IpcChannelTest, SendAfterShutdownReturnsShutdownResponse) {
  IpcChannel Chan;
  Chan.shutdown();
  EXPECT_EQ(Chan.send(1), IpcChannel::ShutdownResponse);
  uint64_t Req = 0;
  EXPECT_EQ(Chan.receive(Req), nullptr);
  EXPECT_EQ(Chan.tryReceive(Req), nullptr);
}

TEST(IpcChannelTest, ReplyAfterShutdownIsSafeNoOp) {
  // A receiver that gathered a message before shutdown may still try to
  // reply afterwards; the sender has already been released and its stack
  // message reclaimed, so the reply must touch nothing.
  IpcChannel Chan;
  std::thread Sender([&Chan] {
    EXPECT_EQ(Chan.send(3), IpcChannel::ShutdownResponse);
  });
  uint64_t Req = 0;
  IpcChannel::MessageHandle H = Chan.receive(Req);
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(Req, 3u);
  Chan.shutdown();
  Sender.join();
  Chan.reply(H, 123); // no-op, not a use-after-free
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

} // namespace
