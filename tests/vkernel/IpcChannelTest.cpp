//===-- tests/vkernel/IpcChannelTest.cpp - Send/Receive/Reply -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vkernel/IpcChannel.h"

using namespace mst;

namespace {

TEST(IpcChannelTest, SendBlocksUntilReply) {
  IpcChannel Chan;
  std::thread Server([&] {
    uint64_t Req;
    IpcChannel::MessageHandle H = Chan.receive(Req);
    EXPECT_EQ(Req, 41u);
    Chan.reply(H, Req + 1);
  });
  uint64_t R = Chan.send(41);
  EXPECT_EQ(R, 42u);
  Server.join();
}

TEST(IpcChannelTest, TryReceiveEmpty) {
  IpcChannel Chan;
  uint64_t Req;
  EXPECT_EQ(Chan.tryReceive(Req), nullptr);
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

TEST(IpcChannelTest, ManySendersOneReceiver) {
  IpcChannel Chan;
  constexpr unsigned N = 8;
  std::vector<std::thread> Senders;
  std::vector<uint64_t> Replies(N);
  for (unsigned I = 0; I < N; ++I)
    Senders.emplace_back([&Chan, &Replies, I] {
      Replies[I] = Chan.send(I);
    });
  // The receiver replies with request * 2, in whatever order they arrive.
  for (unsigned I = 0; I < N; ++I) {
    uint64_t Req;
    IpcChannel::MessageHandle H = Chan.receive(Req);
    Chan.reply(H, Req * 2);
  }
  for (auto &T : Senders)
    T.join();
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Replies[I], uint64_t(I) * 2);
  EXPECT_EQ(Chan.pendingSenders(), 0u);
}

TEST(IpcChannelTest, RendezvousStyleGathering) {
  // The scavenge-rendezvous shape: N mutators send, a coordinator gathers
  // all of them (holding replies), does its work, then releases everyone.
  IpcChannel Chan;
  constexpr unsigned N = 4;
  std::atomic<unsigned> Released{0};
  std::vector<std::thread> Mutators;
  for (unsigned I = 0; I < N; ++I)
    Mutators.emplace_back([&] {
      Chan.send(1);
      Released.fetch_add(1);
    });
  std::vector<IpcChannel::MessageHandle> Parked;
  uint64_t Req;
  for (unsigned I = 0; I < N; ++I)
    Parked.push_back(Chan.receive(Req));
  // World stopped: nobody released yet.
  EXPECT_EQ(Released.load(), 0u);
  for (auto H : Parked)
    Chan.reply(H, 0);
  for (auto &T : Mutators)
    T.join();
  EXPECT_EQ(Released.load(), N);
}

} // namespace
