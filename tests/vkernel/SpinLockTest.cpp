//===-- tests/vkernel/SpinLockTest.cpp - Spin lock semantics --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vkernel/SpinLock.h"

using namespace mst;

namespace {

/// Iteration budget scaled for sanitized builds (TSan runs ~10x slower;
/// the suite asserts counter identities, never wall-clock, so shrinking
/// the workload loses nothing).
int perThreadIters() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return 3000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return 3000;
#else
  return 20000;
#endif
#else
  return 20000;
#endif
}

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock L(true);
  L.lock();
  L.unlock();
  EXPECT_EQ(L.acquisitions(), 1u);
  EXPECT_EQ(L.contendedAcquisitions(), 0u);
}

TEST(SpinLockTest, TryLock) {
  SpinLock L(true);
  EXPECT_TRUE(L.tryLock());
  EXPECT_FALSE(L.tryLock()); // already held
  L.unlock();
  EXPECT_TRUE(L.tryLock());
  L.unlock();
}

TEST(SpinLockTest, DisabledIsNoOp) {
  SpinLock L(false);
  L.lock();
  L.lock(); // would deadlock if the lock were real
  EXPECT_TRUE(L.tryLock());
  L.unlock();
  EXPECT_FALSE(L.isEnabled());
}

TEST(SpinLockTest, MutualExclusionUnderThreads) {
  SpinLock L(true);
  int64_t Counter = 0;
  const int PerThread = perThreadIters();
  constexpr int NumThreads = 4;
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumThreads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        SpinLockGuard Guard(L);
        // Racy read-modify-write, safe only under the lock.
        int64_t V = Counter;
        Counter = V + 1;
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, int64_t(PerThread) * NumThreads);
  EXPECT_GE(L.acquisitions(), uint64_t(PerThread) * NumThreads);
}

TEST(SpinLockTest, ContentionShowsUpInCountersNotTiming) {
  // Counter identities only — nothing here depends on how long the
  // contended phase takes, so the test is immune to sanitizer slowdowns.
  SpinLock L(true, "testlock");
  const int PerThread = perThreadIters() / 4;
  constexpr int NumThreads = 4;
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        SpinLockGuard Guard(L);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(L.acquisitions(), uint64_t(PerThread) * NumThreads);
  // Contended acquisitions are a subset of acquisitions; delays only
  // happen on contended ones.
  EXPECT_LE(L.contendedAcquisitions(), L.acquisitions());
  EXPECT_EQ(L.name(), std::string("testlock"));
}

TEST(SpinLockTest, CountersResettable) {
  SpinLock L(true);
  L.lock();
  L.unlock();
  L.resetCounters();
  EXPECT_EQ(L.acquisitions(), 0u);
  EXPECT_EQ(L.contendedAcquisitions(), 0u);
  EXPECT_EQ(L.delays(), 0u);
}

} // namespace
