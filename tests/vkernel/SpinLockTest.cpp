//===-- tests/vkernel/SpinLockTest.cpp - Spin lock semantics --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vkernel/SpinLock.h"

using namespace mst;

namespace {

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock L(true);
  L.lock();
  L.unlock();
  EXPECT_EQ(L.acquisitions(), 1u);
  EXPECT_EQ(L.contendedAcquisitions(), 0u);
}

TEST(SpinLockTest, TryLock) {
  SpinLock L(true);
  EXPECT_TRUE(L.tryLock());
  EXPECT_FALSE(L.tryLock()); // already held
  L.unlock();
  EXPECT_TRUE(L.tryLock());
  L.unlock();
}

TEST(SpinLockTest, DisabledIsNoOp) {
  SpinLock L(false);
  L.lock();
  L.lock(); // would deadlock if the lock were real
  EXPECT_TRUE(L.tryLock());
  L.unlock();
  EXPECT_FALSE(L.isEnabled());
}

TEST(SpinLockTest, MutualExclusionUnderThreads) {
  SpinLock L(true);
  int64_t Counter = 0;
  constexpr int PerThread = 20000;
  constexpr int NumThreads = 4;
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumThreads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        SpinLockGuard Guard(L);
        // Racy read-modify-write, safe only under the lock.
        int64_t V = Counter;
        Counter = V + 1;
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, int64_t(PerThread) * NumThreads);
  EXPECT_GE(L.acquisitions(), uint64_t(PerThread) * NumThreads);
}

TEST(SpinLockTest, CountersResettable) {
  SpinLock L(true);
  L.lock();
  L.unlock();
  L.resetCounters();
  EXPECT_EQ(L.acquisitions(), 0u);
  EXPECT_EQ(L.contendedAcquisitions(), 0u);
  EXPECT_EQ(L.delays(), 0u);
}

} // namespace
