//===-- tests/vm/ObjectModelTest.cpp - Object model C++ API ----------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "vm/Compiler.h"

using namespace mst;

namespace {

class ObjectModelTest : public ::testing::Test {
protected:
  TestVm T;
};

TEST_F(ObjectModelTest, MethodDictionaryGrowthKeepsAllEntries) {
  // Regression: the first implementation of the dictionary grow path
  // copied keys into the value slots, turning every method into its own
  // selector. Install enough methods to force several growths and verify
  // every single lookup.
  Oop Cls = defineClass(T.vm(), "Crowded", "Object", ClassKind::Fixed, {},
                        "Tests");
  ObjectModel &Om = T.om();
  constexpr int N = 40; // default capacity is 8: multiple growths
  for (int I = 0; I < N; ++I) {
    std::string Sel = "answer" + std::to_string(I);
    mustCompile(Om, &T.vm().cache(), Cls,
                Sel + " ^" + std::to_string(I * 100));
  }
  for (int I = 0; I < N; ++I) {
    Oop Sel = Om.intern("answer" + std::to_string(I));
    ObjectModel::LookupResult R = Om.lookupMethod(Cls, Sel);
    ASSERT_FALSE(R.Method.isNull()) << "answer" << I << " lost in growth";
    EXPECT_EQ(Om.classOf(R.Method), Om.known().ClassCompiledMethod);
    EXPECT_EQ(ObjectMemory::fetchPointer(R.Method, MthSelector), Sel);
  }
  // And they all run.
  EXPECT_EQ(T.evalInt("^Crowded new answer7"), 700);
  EXPECT_EQ(T.evalInt("^Crowded new answer39"), 3900);
}

TEST_F(ObjectModelTest, MethodRedefinitionReplacesInPlace) {
  Oop Cls = defineClass(T.vm(), "Redefined", "Object", ClassKind::Fixed,
                        {}, "Tests");
  mustCompile(T.om(), &T.vm().cache(), Cls, "v ^1");
  EXPECT_EQ(T.evalInt("^Redefined new v"), 1);
  mustCompile(T.om(), &T.vm().cache(), Cls, "v ^2");
  EXPECT_EQ(T.evalInt("^Redefined new v"), 2);
  // Redefinition must not grow the tally.
  Oop Md = ObjectMemory::fetchPointer(Cls, ClsMethodDict);
  EXPECT_EQ(ObjectMemory::fetchPointer(Md, MdTally).smallInt(), 1);
}

TEST_F(ObjectModelTest, GlobalDictionaryGrowth) {
  // Push the system dictionary through several growths; every binding
  // must remain reachable from both C++ and Smalltalk.
  ObjectModel &Om = T.om();
  for (int I = 0; I < 300; ++I)
    Om.globalPut("TestGlobal" + std::to_string(I), Oop::fromSmallInt(I));
  for (int I = 0; I < 300; ++I) {
    Oop V = Om.globalAt("TestGlobal" + std::to_string(I));
    ASSERT_TRUE(V.isSmallInt());
    EXPECT_EQ(V.smallInt(), I);
  }
  EXPECT_EQ(T.evalInt("^TestGlobal237"), 237);
  EXPECT_EQ(T.evalInt("^Smalltalk at: #TestGlobal0"), 0);
}

TEST_F(ObjectModelTest, MakeClassInheritsLayout) {
  Oop Base = defineClass(T.vm(), "LayoutBase", "Object", ClassKind::Fixed,
                         {"alpha", "beta"}, "Tests");
  Oop Sub = defineClass(T.vm(), "LayoutSub", "LayoutBase",
                        ClassKind::Fixed, {"gamma"}, "Tests");
  EXPECT_EQ(T.om().fixedFieldsOf(Base), 2u);
  EXPECT_EQ(T.om().fixedFieldsOf(Sub), 3u);
  Oop Names = ObjectMemory::fetchPointer(Sub, ClsInstVarNames);
  ASSERT_EQ(Names.object()->SlotCount, 3u);
  EXPECT_EQ(ObjectModel::stringValue(Names.object()->slots()[0]),
            "alpha");
  EXPECT_EQ(ObjectModel::stringValue(Names.object()->slots()[2]),
            "gamma");
  // Inherited accessors see subclass instances' inherited slots.
  addMethod(T.vm(), Base, "accessing", "alpha ^alpha");
  addMethod(T.vm(), Base, "accessing", "alpha: v alpha := v");
  addMethod(T.vm(), Sub, "accessing", "gamma: v gamma := v");
  EXPECT_EQ(T.evalInt("| s | s := LayoutSub new. s alpha: 5. s gamma: "
                      "90. ^s alpha"),
            5);
}

TEST_F(ObjectModelTest, IndexableClassKinds) {
  Oop Words = defineClass(T.vm(), "WordVector", "Object",
                          ClassKind::IdxPointers, {}, "Tests");
  (void)Words;
  EXPECT_EQ(T.evalInt("^(WordVector new: 7) size"), 7);
  EXPECT_EQ(T.evalInt("| v | v := WordVector new: 3. v at: 2 put: 99. "
                      "^v at: 2"),
            99);
  Oop Bytes = defineClass(T.vm(), "Blob", "Object", ClassKind::IdxBytes,
                          {}, "Tests");
  (void)Bytes;
  EXPECT_EQ(T.evalInt("| b | b := Blob new: 4. b at: 1 put: 255. ^b at: "
                      "1"),
            255);
}

TEST_F(ObjectModelTest, LookupHonorsOverridesAlongTheChain) {
  Oop Base = defineClass(T.vm(), "Speak", "Object", ClassKind::Fixed, {},
                         "Tests");
  Oop Sub = defineClass(T.vm(), "Shout", "Speak", ClassKind::Fixed, {},
                        "Tests");
  addMethod(T.vm(), Base, "t", "noise ^'quiet'");
  addMethod(T.vm(), Sub, "t", "noise ^'LOUD, ', super noise");
  EXPECT_EQ(T.evalString("^Speak new noise"), "quiet");
  EXPECT_EQ(T.evalString("^Shout new noise"), "LOUD, quiet");
  ObjectModel::LookupResult R =
      T.om().lookupMethod(Sub, T.om().intern("noise"));
  EXPECT_EQ(R.DefiningClass, Sub);
}

TEST_F(ObjectModelTest, CacheInvalidationOnRedefinition) {
  // Warm the cache through real sends, redefine, and expect the new
  // method immediately (flushSelector on install).
  Oop Cls = defineClass(T.vm(), "Hotswap", "Object", ClassKind::Fixed, {},
                        "Tests");
  mustCompile(T.om(), &T.vm().cache(), Cls, "probe ^111");
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(T.evalInt("^Hotswap new probe"), 111);
  mustCompile(T.om(), &T.vm().cache(), Cls, "probe ^222");
  EXPECT_EQ(T.evalInt("^Hotswap new probe"), 222);
}

} // namespace
