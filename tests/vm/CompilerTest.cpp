//===-- tests/vm/CompilerTest.cpp - Bytecode generation --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler tests, including the paper's §4 claim about the idle Process:
/// `[true] whileTrue` must compile to bytecode "which neither looks up
/// messages nor allocates memory".
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "vm/Bytecode.h"
#include "vm/Compiler.h"

using namespace mst;

namespace {

class CompilerTest : public ::testing::Test {
protected:
  TestVm T;

  /// Compiles a doIt and returns its bytecodes.
  std::vector<uint8_t> bytecodesFor(const std::string &Src) {
    CompileResult R = compileDoItSource(
        T.om(), T.om().known().ClassUndefinedObject, Src);
    EXPECT_TRUE(R.ok()) << R.Error << " for: " << Src;
    if (!R.ok())
      return {};
    Oop Bytes = ObjectMemory::fetchPointer(R.Method, MthBytecodes);
    const uint8_t *P = Bytes.object()->bytes();
    return std::vector<uint8_t>(P, P + Bytes.object()->ByteLength);
  }

  /// Counts occurrences of opcode \p O in \p Code (operand-aware walk).
  static unsigned countOp(const std::vector<uint8_t> &Code, Op O) {
    unsigned N = 0;
    for (uint32_t Ip = 0; Ip < Code.size();
         Ip += instructionLength(Code.data(), Ip))
      if (static_cast<Op>(Code[Ip]) == O)
        ++N;
    return N;
  }
};

TEST_F(CompilerTest, IdleProcessHasNoSendsNoAllocations) {
  // Paper §4: the idle Process `[true] whileTrue` is "translated by the
  // compiler into bytecode which neither looks up messages nor allocates
  // memory" — no sends of any kind, and no block creation.
  auto Code = bytecodesFor("[true] whileTrue");
  ASSERT_FALSE(Code.empty());
  EXPECT_EQ(countOp(Code, Op::Send), 0u);
  EXPECT_EQ(countOp(Code, Op::SendSuper), 0u);
  EXPECT_EQ(countOp(Code, Op::SendSpecial), 0u);
  EXPECT_EQ(countOp(Code, Op::BlockCopy), 0u);
  EXPECT_GE(countOp(Code, Op::Jump) + countOp(Code, Op::JumpIfFalse) +
                countOp(Code, Op::JumpIfTrue),
            1u);
}

TEST_F(CompilerTest, ConditionalsAreInlined) {
  auto Code = bytecodesFor("^1 < 2 ifTrue: [3] ifFalse: [4]");
  EXPECT_EQ(countOp(Code, Op::Send), 0u);
  EXPECT_EQ(countOp(Code, Op::BlockCopy), 0u);
  EXPECT_EQ(countOp(Code, Op::JumpIfFalse), 1u);
}

TEST_F(CompilerTest, ToDoIsInlined) {
  auto Code = bytecodesFor("| s | s := 0. 1 to: 10 do: [:i | s := s + "
                           "i]. ^s");
  EXPECT_EQ(countOp(Code, Op::Send), 0u);
  EXPECT_EQ(countOp(Code, Op::BlockCopy), 0u);
}

TEST_F(CompilerTest, NonLiteralBlockFallsBackToRealSend) {
  // A block held in a temporary cannot be inlined.
  auto Code = bytecodesFor("| b | b := [1]. ^b value");
  EXPECT_EQ(countOp(Code, Op::BlockCopy), 1u);
  EXPECT_GE(countOp(Code, Op::Send), 1u);
}

TEST_F(CompilerTest, BlocksWithTempsFallBackForWhile) {
  // Block-local temps defeat the whileTrue: inliner (home-frame layout);
  // the send form must be emitted instead.
  auto Code = bytecodesFor(
      "| n | n := 0. [n < 3] whileTrue: [ | x | x := 1. n := n + x]. ^n");
  EXPECT_GE(countOp(Code, Op::BlockCopy), 2u);
  EXPECT_GE(countOp(Code, Op::Send), 1u);
}

TEST_F(CompilerTest, SpecialSelectorsUseSpecialSends) {
  auto Code = bytecodesFor("^3 + 4 * 5 - (1 bitAnd: 3)");
  EXPECT_EQ(countOp(Code, Op::Send), 0u);
  EXPECT_EQ(countOp(Code, Op::SendSpecial), 4u);
}

TEST_F(CompilerTest, SmallIntegerImmediates) {
  auto Code = bytecodesFor("^100 + 200");
  EXPECT_EQ(countOp(Code, Op::PushSmallInt), 1u);  // 100 fits in s8
  EXPECT_EQ(countOp(Code, Op::PushLiteral), 1u);   // 200 does not
}

TEST_F(CompilerTest, MethodMetadata) {
  CompileResult R = compileMethodSource(
      T.om(), T.om().known().ClassObject,
      "foo: a bar: b | t1 t2 t3 | t1 := a. ^t1");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(ObjectMemory::fetchPointer(R.Method, MthNumArgs).smallInt(), 2);
  EXPECT_EQ(ObjectMemory::fetchPointer(R.Method, MthNumTemps).smallInt(),
            5);
  EXPECT_EQ(ObjectMemory::fetchPointer(R.Method, MthPrimitive).smallInt(),
            0);
  EXPECT_GE(ObjectMemory::fetchPointer(R.Method, MthFrameSize).smallInt(),
            5);
  Oop Sel = ObjectMemory::fetchPointer(R.Method, MthSelector);
  EXPECT_EQ(ObjectModel::stringValue(Sel), "foo:bar:");
  EXPECT_TRUE(R.Method.object()->isOld());
}

TEST_F(CompilerTest, LiteralsAreDeduplicated) {
  CompileResult R = compileDoItSource(
      T.om(), T.om().known().ClassUndefinedObject,
      "^#foo == #foo"); // same symbol twice
  ASSERT_TRUE(R.ok());
  Oop Lits = ObjectMemory::fetchPointer(R.Method, MthLiterals);
  EXPECT_EQ(Lits.object()->SlotCount, 1u);
}

TEST_F(CompilerTest, UndeclaredVariableIsAnError) {
  CompileResult R = compileDoItSource(
      T.om(), T.om().known().ClassUndefinedObject, "^frobnicate");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undeclared"), std::string::npos);
}

TEST_F(CompilerTest, StatementsAfterReturnAreAnError) {
  CompileResult R = compileDoItSource(
      T.om(), T.om().known().ClassUndefinedObject, "^1. ^2");
  EXPECT_FALSE(R.ok());
}

TEST_F(CompilerTest, InstanceVariableResolution) {
  // Point has ivars x and y; a method on Point resolves them to
  // PushInstVar, not globals.
  Oop Point = T.om().globalAt("Point");
  CompileResult R = compileMethodSource(T.om(), Point, "sum ^x + y");
  ASSERT_TRUE(R.ok()) << R.Error;
  Oop Bytes = ObjectMemory::fetchPointer(R.Method, MthBytecodes);
  const uint8_t *P = Bytes.object()->bytes();
  std::vector<uint8_t> Code(P, P + Bytes.object()->ByteLength);
  unsigned IvarPushes = 0;
  for (uint32_t Ip = 0; Ip < Code.size();
       Ip += instructionLength(Code.data(), Ip))
    if (static_cast<Op>(Code[Ip]) == Op::PushInstVar)
      ++IvarPushes;
  EXPECT_EQ(IvarPushes, 2u);
}

TEST_F(CompilerTest, SuperSendsEmitSendSuper) {
  Oop Sym = T.om().globalAt("Symbol");
  CompileResult R =
      compileMethodSource(T.om(), Sym, "probe ^super printString");
  ASSERT_TRUE(R.ok()) << R.Error;
  Oop Bytes = ObjectMemory::fetchPointer(R.Method, MthBytecodes);
  const uint8_t *P = Bytes.object()->bytes();
  bool FoundSuper = false;
  for (uint32_t Ip = 0; Ip < Bytes.object()->ByteLength;
       Ip += instructionLength(P, Ip))
    if (static_cast<Op>(P[Ip]) == Op::SendSuper)
      FoundSuper = true;
  EXPECT_TRUE(FoundSuper);
}

TEST_F(CompilerTest, CascadeUsesDup) {
  auto Code = bytecodesFor(
      "| c | c := OrderedCollection new. c add: 1; add: 2. ^c");
  EXPECT_GE(countOp(Code, Op::Dup), 1u);
}

} // namespace
