//===-- tests/vm/InterpreterTest.cpp - Interpreter behaviour --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestVm.h"

using namespace mst;

namespace {

class InterpreterTest : public ::testing::Test {
protected:
  TestVm T;
};

TEST_F(InterpreterTest, SmallIntegerArithmetic) {
  EXPECT_EQ(T.evalInt("^3 + 4"), 7);
  EXPECT_EQ(T.evalInt("^10 - 15"), -5);
  EXPECT_EQ(T.evalInt("^6 * 7"), 42);
  EXPECT_EQ(T.evalInt("^17 // 5"), 3);
  EXPECT_EQ(T.evalInt("^17 \\\\ 5"), 2);
  EXPECT_EQ(T.evalInt("^-17 // 5"), -4);  // floored division
  EXPECT_EQ(T.evalInt("^-17 \\\\ 5"), 3); // floored modulo
  EXPECT_EQ(T.evalInt("^3 + 4 * 2"), 14); // left-to-right binaries
}

TEST_F(InterpreterTest, Comparisons) {
  EXPECT_TRUE(T.evalBool("^3 < 4"));
  EXPECT_FALSE(T.evalBool("^4 < 3"));
  EXPECT_TRUE(T.evalBool("^4 >= 4"));
  EXPECT_TRUE(T.evalBool("^3 ~= 4"));
  EXPECT_TRUE(T.evalBool("^nil isNil"));
  EXPECT_TRUE(T.evalBool("^nil == nil"));
  EXPECT_FALSE(T.evalBool("^3 == 4"));
}

TEST_F(InterpreterTest, ControlFlowInlining) {
  EXPECT_EQ(T.evalInt("^true ifTrue: [1] ifFalse: [2]"), 1);
  EXPECT_EQ(T.evalInt("^false ifTrue: [1] ifFalse: [2]"), 2);
  EXPECT_EQ(T.evalInt("^3 < 4 ifTrue: [10]"), 10);
  EXPECT_EQ(T.eval("^4 < 3 ifTrue: [10]"), T.om().nil());
  EXPECT_TRUE(T.evalBool("^true and: [true]"));
  EXPECT_FALSE(T.evalBool("^false and: [true]"));
  EXPECT_TRUE(T.evalBool("^false or: [true]"));
  EXPECT_EQ(T.evalInt("| n | n := 0. [n < 10] whileTrue: [n := n + 1]. ^n"),
            10);
  EXPECT_EQ(T.evalInt("| s | s := 0. 1 to: 5 do: [:i | s := s + i]. ^s"),
            15);
}

TEST_F(InterpreterTest, Blocks) {
  EXPECT_EQ(T.evalInt("^[42] value"), 42);
  EXPECT_EQ(T.evalInt("^[:x | x * 2] value: 21"), 42);
  EXPECT_EQ(T.evalInt("^[:a :b | a + b] value: 40 value: 2"), 42);
  EXPECT_EQ(T.evalInt("| b | b := [:x | x + 1]. ^(b value: 1) + "
                      "(b value: 2)"),
            5);
}

TEST_F(InterpreterTest, NonLocalReturn) {
  EXPECT_EQ(T.evalInt("^5 factorial"), 120);
  // detect:ifNone: relies on ^ inside a block unwinding to the method's
  // sender.
  EXPECT_EQ(
      T.evalInt("| c | c := OrderedCollection new. c add: 1; add: 7; add: "
                "3. ^c detect: [:e | e > 5] ifNone: [0]"),
      7);
}

TEST_F(InterpreterTest, Strings) {
  EXPECT_EQ(T.evalInt("^'hello' size"), 5);
  EXPECT_EQ(T.evalString("^'foo', 'bar'"), "foobar");
  EXPECT_TRUE(T.evalBool("^'abc' = 'abc'"));
  EXPECT_FALSE(T.evalBool("^'abc' = 'abd'"));
  EXPECT_EQ(T.evalString("^'hello' copyFrom: 2 to: 4"), "ell");
  EXPECT_EQ(T.evalString("^42 printString"), "42");
  EXPECT_EQ(T.evalString("^-7 printString"), "-7");
  EXPECT_EQ(T.evalString("^#foo printString"), "#foo");
  EXPECT_EQ(T.evalString("^'hi' printString"), "'hi'");
  EXPECT_EQ(T.evalString("^nil printString"), "nil");
  EXPECT_EQ(T.evalString("^(3 @ 4) printString"), "3 @ 4");
}

TEST_F(InterpreterTest, Collections) {
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. 1 to: 100 do: "
                      "[:i | c add: i]. ^c size"),
            100);
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. 1 to: 10 do: [:i "
                      "| c add: i * i]. ^c inject: 0 into: [:a :b | a + "
                      "b]"),
            385);
  EXPECT_EQ(T.evalInt("| d | d := Dictionary new. d at: #a put: 1. d at: "
                      "#b put: 2. d at: #a put: 10. ^(d at: #a) + (d at: "
                      "#b)"),
            12);
  EXPECT_EQ(T.evalInt("| d | d := Dictionary new. 1 to: 50 do: [:i | d "
                      "at: i put: i * 2]. ^d size"),
            50);
  EXPECT_TRUE(T.evalBool("^#(1 2 3) = #(1 2 3)"));
  EXPECT_EQ(T.evalInt("^#(3 1 4 1 5) size"), 5);
}

TEST_F(InterpreterTest, ClassesAndMessages) {
  EXPECT_EQ(T.evalString("^3 class name asString"), "SmallInteger");
  EXPECT_EQ(T.evalString("^'x' class name asString"), "String");
  EXPECT_TRUE(T.evalBool("^3 isKindOf: Integer"));
  EXPECT_TRUE(T.evalBool("^3 isKindOf: Magnitude"));
  EXPECT_FALSE(T.evalBool("^3 isKindOf: String"));
  EXPECT_EQ(T.evalInt("^(Array new: 5) size"), 5);
  EXPECT_EQ(T.evalInt("| a | a := Array new: 1. a at: 1 put: 4. ^3 "
                      "perform: #+ withArguments: a"),
            7);
}

TEST_F(InterpreterTest, SuperSends) {
  // Symbol inherits printString machinery but overrides printOn:.
  EXPECT_EQ(T.evalString("^#abc asString"), "abc");
  EXPECT_EQ(T.evalString("^#abc printString"), "#abc");
}

TEST_F(InterpreterTest, Cascades) {
  EXPECT_EQ(T.evalInt("| c | c := OrderedCollection new. c add: 1; add: "
                      "2; add: 3. ^c size"),
            3);
  EXPECT_EQ(T.evalString("| s | s := WriteStream on: (String new: 4). s "
                         "nextPutAll: 'ab'; nextPutAll: 'cd'. ^s "
                         "contents"),
            "abcd");
}

} // namespace
