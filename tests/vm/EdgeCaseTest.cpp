//===-- tests/vm/EdgeCaseTest.cpp - Interpreter edge cases -----------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The awkward corners: wrong-arity blocks, non-boolean conditions, deep
/// recursion, large frames, thisContext, copying, sensor events, and the
/// failure paths that must degrade into clean Smalltalk errors rather
/// than VM corruption.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

using namespace mst;

namespace {

class EdgeCaseTest : public ::testing::Test {
protected:
  TestVm T;

  /// Expects \p Src to fail with an error containing \p Needle, and the
  /// VM to stay usable afterwards.
  void expectError(const std::string &Src, const std::string &Needle) {
    size_t Before = T.vm().errors().size();
    Oop R = T.vm().compileAndRun(Src);
    EXPECT_TRUE(R.isNull()) << Src;
    auto Errors = T.vm().errors();
    ASSERT_GT(Errors.size(), Before) << Src;
    EXPECT_NE(Errors.back().find(Needle), std::string::npos)
        << "wanted '" << Needle << "' in: " << Errors.back();
    EXPECT_EQ(T.evalInt("^6 * 7"), 42) << "VM unusable after error";
  }
};

TEST_F(EdgeCaseTest, BlockArityMismatch) {
  expectError("^[:x | x] value", "argument count");
  expectError("^[42] value: 1", "argument count");
  expectError("^[:a :b | a] value: 1", "argument count");
}

TEST_F(EdgeCaseTest, NonBooleanConditionals) {
  expectError("^3 ifTrue: [1]", "mustBeBoolean");
  expectError("^nil and: [true]", "mustBeBoolean");
  expectError("| n | [n] whileTrue. ^1", "mustBeBoolean");
}

TEST_F(EdgeCaseTest, DivisionByZero) {
  expectError("^5 // 0", "division by zero");
  expectError("^5 \\\\ 0", "division by zero");
}

TEST_F(EdgeCaseTest, IndexOutOfRange) {
  expectError("^#(1 2 3) at: 4", "out of range");
  expectError("^#(1 2 3) at: 0", "out of range");
  expectError("^'abc' at: 99", "out of range");
  expectError("| a | a := Array new: 2. a at: 3 put: 0. ^a",
              "out of range");
}

TEST_F(EdgeCaseTest, DeepRecursionChurnsContexts) {
  // ~40k activations, far more than any free list holds at once.
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "countDown: n n = 0 ifTrue: [^0]. ^1 + (self countDown: n - "
            "1)");
  EXPECT_EQ(T.evalInt("^nil countDown: 40000"), 40000);
  EXPECT_GT(T.vm().contextPool().reuses(), 1000u);
}

TEST_F(EdgeCaseTest, ManyTemporariesLargeFrame) {
  // Forces a large (not small) context allocation.
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "wide | a b c d e f g h i j k l m n o p q r s t u v w x y z "
            "aa bb cc dd | a := 1. b := 2. c := 3. d := 4. e := 5. f := "
            "6. g := 7. h := 8. i := 9. j := 10. k := 11. l := 12. m := "
            "13. n := 14. o := 15. p := 16. q := 17. r := 18. s := 19. t "
            ":= 20. u := 21. v := 22. w := 23. x := 24. y := 25. z := "
            "26. aa := 27. bb := 28. cc := 29. dd := 30. ^a + b + c + d "
            "+ e + f + g + h + i + j + k + l + m + n + o + p + q + r + s "
            "+ t + u + v + w + x + y + z + aa + bb + cc + dd");
  EXPECT_EQ(T.evalInt("^nil wide"), 30 * 31 / 2);
}

TEST_F(EdgeCaseTest, ThisContextIsAContext) {
  EXPECT_TRUE(T.evalBool("^thisContext class == MethodContext"));
  // Pushing thisContext marks the frame escaped: it must not be recycled
  // into a later activation while still referenced.
  EXPECT_TRUE(T.evalBool(
      "| ctx | ctx := thisContext. 1 to: 100 do: [:i | i printString]. "
      "^ctx class == MethodContext"));
}

TEST_F(EdgeCaseTest, ShallowCopySemantics) {
  EXPECT_EQ(T.evalInt("^42 copy"), 42); // immediates
  EXPECT_TRUE(T.evalBool("| p q | p := Point x: 1 y: 2. q := p copy. q "
                         "setX: 9 y: 9. ^p x = 1"));
  EXPECT_TRUE(T.evalBool("| s t | s := 'abc' copy. t := s copy. t at: 1 "
                         "put: $z. ^s = 'abc'"));
  EXPECT_FALSE(T.evalBool("| a | a := Array new: 3. ^a == a copy"));
  // Shallow means shared references.
  EXPECT_TRUE(T.evalBool(
      "| inner a b | inner := OrderedCollection new. a := Array new: 1. "
      "a at: 1 put: inner. b := a copy. ^(a at: 1) == (b at: 1)"));
}

TEST_F(EdgeCaseTest, SensorEventsFlowIntoSmalltalk) {
  T.vm().events().post({InputEvent::Kind::Key, 65, 0, 1000});
  T.vm().events().post({InputEvent::Kind::MouseMove, 10, 20, 2000});
  // Each event arrives as a 4-element Array: type, a, b, milliseconds.
  EXPECT_EQ(T.evalInt("| e | e := Sensor nextEvent. ^e at: 2"), 65);
  EXPECT_EQ(T.evalInt("| e | e := Sensor nextEvent. ^(e at: 2) + (e at: "
                      "3)"),
            30);
  EXPECT_TRUE(T.evalBool("^Sensor nextEvent isNil"));
}

TEST_F(EdgeCaseTest, DisplayShowRequiresAString) {
  expectError("^Display show: 42", "display show: needs a string");
  T.eval("^Display show: 'fine'");
  EXPECT_GE(T.vm().display().submittedCount(), 1u);
}

TEST_F(EdgeCaseTest, CascadeOnExpressionResult) {
  EXPECT_EQ(T.evalString("| s | s := WriteStream on: (String new: 4). s "
                         "nextPut: $a; nextPut: $b; nextPutAll: 'cd'. "
                         "^s contents"),
            "abcd");
}

TEST_F(EdgeCaseTest, BlocksSeeHomeTempMutations) {
  // Blue-book blocks share the home frame: mutations are visible both
  // ways, even after other calls intervene.
  EXPECT_EQ(T.evalInt("| n b | n := 1. b := [n * 10]. n := 7. "
                      "^b value"),
            70);
  EXPECT_EQ(T.evalInt("| n b | n := 1. b := [n := n + 1]. b value. b "
                      "value. ^n"),
            3);
}

TEST_F(EdgeCaseTest, NestedBlocksShareOutermostHome) {
  EXPECT_EQ(T.evalInt("| acc | acc := 0. #(1 2 3) do: [:x | #(10 20) "
                      "do: [:y | acc := acc + (x * y)]]. ^acc"),
            (1 + 2 + 3) * 30);
}

TEST_F(EdgeCaseTest, WhileLoopWithSideEffectsInCondition) {
  EXPECT_EQ(T.evalInt("| n | n := 0. [n := n + 1. n < 5] whileTrue. ^n"),
            5);
}

TEST_F(EdgeCaseTest, YieldInsideDriverDoItIsHarmless) {
  EXPECT_EQ(T.evalInt("Processor yield. ^9"), 9);
}

TEST_F(EdgeCaseTest, RecursiveBlockViaMethodIsSafe) {
  // Blue-book blocks are non-reentrant; recursion must go through
  // methods. This pins the supported pattern.
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "sumTo: n ^n = 0 ifTrue: [0] ifFalse: [n + (self sumTo: n - "
            "1)]");
  EXPECT_EQ(T.evalInt("^nil sumTo: 100"), 5050);
}

TEST_F(EdgeCaseTest, ContextIntrospection) {
  // thisContext exposes the activation chain, debugger-style.
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "whoCalledMe ^thisContext sender method selector");
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "callerProbe ^self whoCalledMe");
  EXPECT_EQ(T.eval("^nil callerProbe"), T.om().intern("callerProbe"));
  EXPECT_TRUE(T.evalBool("^thisContext receiver isNil")); // doIt on nil
  EXPECT_NE(T.evalString("^thisContext printString").find("doIt"),
            std::string::npos);
}

TEST_F(EdgeCaseTest, WhileFalseVariants) {
  EXPECT_EQ(T.evalInt("| n | n := 0. [n >= 5] whileFalse: [n := n + 1]. "
                      "^n"),
            5);
  EXPECT_EQ(T.evalInt("| n | n := 0. [n := n + 1. n >= 3] whileFalse. "
                      "^n"),
            3);
}

TEST_F(EdgeCaseTest, SnapshotOfSmalltalkCreatedClass) {
  // A class defined *from Smalltalk* (primitive 55) must survive the
  // snapshot round trip like any bootstrap class.
  // (Save/load must run on separate threads: one VM per thread.)
  SUCCEED(); // placeholder; covered in SnapshotTest below
}

} // namespace
