//===-- tests/vm/CompilerRobustnessTest.cpp - Fuzz-lite compiler input ----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler is user-facing (the "compile dummy method" path takes
/// arbitrary strings at run time), so it must reject any input with an
/// error, never crash. These sweeps feed it token soup, truncations of
/// valid methods, and adversarial near-misses.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "support/SplitMix64.h"
#include "vm/Compiler.h"

using namespace mst;

namespace {

class CompilerRobustnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CompilerRobustnessTest, TokenSoupNeverCrashes) {
  TestVm T;
  static const char *Atoms[] = {
      "foo",  "at:",   "put:", "x",    "^",   ".",    "|",     "[",
      "]",    "(",     ")",    ":=",   "+",   "-",    "3",     "42",
      "'s'",  "#sym",  "$a",   ";",    ":",   "self", "super", "nil",
      "#(",   "true",  "<",    ">",    "primitive:", "\"c\"",  "->",
  };
  SplitMix64 Rng(GetParam());
  for (int Case = 0; Case < 300; ++Case) {
    std::string Src;
    size_t Len = 1 + Rng.nextBelow(20);
    for (size_t I = 0; I < Len; ++I) {
      Src += Atoms[Rng.nextBelow(sizeof(Atoms) / sizeof(Atoms[0]))];
      Src += ' ';
    }
    // Must produce a method or a clean error, never abort.
    CompileResult R = compileMethodSource(
        T.om(), T.om().known().ClassObject, Src);
    if (!R.ok()) {
      EXPECT_FALSE(R.Error.empty()) << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerRobustnessTest,
                         ::testing::Values(101u, 202u, 303u));

TEST(CompilerTruncationTest, EveryPrefixOfAValidMethodIsHandled) {
  TestVm T;
  const std::string Valid =
      "classify: aSelector under: aCategory | list | list := categories "
      "at: aCategory ifAbsent: [nil]. list isNil ifTrue: [list := "
      "OrderedCollection new. categories at: aCategory put: list]. "
      "(list includes: aSelector) ifFalse: [list add: aSelector]";
  for (size_t Cut = 0; Cut <= Valid.size(); ++Cut) {
    CompileResult R = compileMethodSource(
        T.om(), T.om().globalAt("ClassOrganization"),
        Valid.substr(0, Cut));
    // Either outcome is fine; the process must survive and errors must
    // carry text.
    if (!R.ok()) {
      EXPECT_FALSE(R.Error.empty()) << "cut at " << Cut;
    }
  }
  // The full text still compiles.
  CompileResult Full = compileMethodSource(
      T.om(), T.om().globalAt("ClassOrganization"), Valid);
  EXPECT_TRUE(Full.ok()) << Full.Error;
}

TEST(CompilerAdversarialTest, NearMisses) {
  TestVm T;
  const char *Cases[] = {
      "m ^",                       // return without value
      "m ^^1",                     // double caret
      "m [",                       // dangling block
      "m ]",                       // stray close
      "m 1. . 2",                  // empty statement
      "m | | ^1",                  // empty temps (legal)
      "m | a a | ^a",              // duplicate temp (legal here)
      "m ^#()",                    // empty literal array
      "m ^'unterminated",          // lexer error
      "m <primitive: 99999> ^1",   // absurd primitive index (legal)
      "m: m ^m",                   // keyword pattern shadowing nothing
      "m ^[:a :b :c :d :e | a]",   // many block params
      "at: at ^at",                // parameter named like selector word
      "m ^3 + + 4",                // missing operand? '+ +4' parses oddly
      "m ^(((((1)))))",            // deep parens
  };
  for (const char *Src : Cases) {
    CompileResult R = compileMethodSource(
        T.om(), T.om().known().ClassObject, Src);
    if (!R.ok()) {
      EXPECT_FALSE(R.Error.empty()) << Src;
    }
  }
  // An absurd-but-legal primitive index simply fails at run time and
  // falls through to the body.
  Oop Cls = defineClass(T.vm(), "PrimProbe", "Object", ClassKind::Fixed,
                        {}, "Tests");
  mustCompile(T.om(), &T.vm().cache(), Cls,
              "probe <primitive: 9999> ^'fell through'");
  EXPECT_EQ(T.evalString("^PrimProbe new probe"), "fell through");
}

} // namespace
