//===-- tests/vm/MethodCacheTest.cpp - Method cache policies ---------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include <gtest/gtest.h>

#include "objmem/ObjectHeader.h"
#include "vm/MethodCache.h"

using namespace mst;

namespace {

/// Fake oops from aligned headers (the cache only compares identities).
struct FakeObjects {
  alignas(8) ObjectHeader H[8];
  Oop oop(int I) { return Oop::fromObject(&H[I]); }
};

TEST(MethodCacheTest, MissThenHit) {
  MethodCache C(MethodCacheKind::Replicated, 2, true);
  FakeObjects F;
  Oop M, D;
  EXPECT_FALSE(C.lookup(0, F.oop(0), F.oop(1), M, D));
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  ASSERT_TRUE(C.lookup(0, F.oop(0), F.oop(1), M, D));
  EXPECT_EQ(M, F.oop(2));
  EXPECT_EQ(D, F.oop(3));
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(MethodCacheTest, ReplicatedTablesAreIndependent) {
  // The §3.2 point: each interpreter owns its cache; filling one does not
  // warm another.
  MethodCache C(MethodCacheKind::Replicated, 3, true);
  FakeObjects F;
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  Oop M, D;
  EXPECT_TRUE(C.lookup(0, F.oop(0), F.oop(1), M, D));
  EXPECT_FALSE(C.lookup(1, F.oop(0), F.oop(1), M, D));
  EXPECT_FALSE(C.lookup(2, F.oop(0), F.oop(1), M, D));
}

TEST(MethodCacheTest, GlobalCacheIsShared) {
  MethodCache C(MethodCacheKind::GlobalLocked, 3, true);
  FakeObjects F;
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  Oop M, D;
  EXPECT_TRUE(C.lookup(1, F.oop(0), F.oop(1), M, D));
  EXPECT_TRUE(C.lookup(2, F.oop(0), F.oop(1), M, D));
}

TEST(MethodCacheTest, FlushAllEmptiesEverything) {
  MethodCache C(MethodCacheKind::Replicated, 2, true);
  FakeObjects F;
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  C.insert(1, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  C.flushAll();
  Oop M, D;
  EXPECT_FALSE(C.lookup(0, F.oop(0), F.oop(1), M, D));
  EXPECT_FALSE(C.lookup(1, F.oop(0), F.oop(1), M, D));
}

TEST(MethodCacheTest, FlushSelectorIsTargeted) {
  MethodCache C(MethodCacheKind::Replicated, 1, true);
  FakeObjects F;
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3)); // selector oop(1)
  C.insert(0, F.oop(0), F.oop(4), F.oop(5), F.oop(3)); // selector oop(4)
  C.flushSelector(F.oop(1));
  Oop M, D;
  EXPECT_FALSE(C.lookup(0, F.oop(0), F.oop(1), M, D));
  EXPECT_TRUE(C.lookup(0, F.oop(0), F.oop(4), M, D));
}

TEST(MethodCacheTest, MissCountersBreakDownByKindAndAgree) {
  // Every miss bumps exactly one per-kind counter, so the global total
  // always equals the sum of the breakdown — the invariant the profiler's
  // selector-keyed miss profile cross-checks against.
  {
    MethodCache C(MethodCacheKind::Replicated, 2, true);
    FakeObjects F;
    Oop M, D;
    EXPECT_FALSE(C.lookup(0, F.oop(0), F.oop(1), M, D));
    EXPECT_FALSE(C.lookup(1, F.oop(0), F.oop(1), M, D));
    C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
    EXPECT_TRUE(C.lookup(0, F.oop(0), F.oop(1), M, D)); // hit: no miss bump
    EXPECT_EQ(C.misses(), 2u);
    EXPECT_EQ(C.missesReplicated(), 2u);
    EXPECT_EQ(C.missesGlobal(), 0u);
    EXPECT_EQ(C.misses(), C.missesReplicated() + C.missesGlobal());
  }
  {
    MethodCache C(MethodCacheKind::GlobalLocked, 2, true);
    FakeObjects F;
    Oop M, D;
    EXPECT_FALSE(C.lookup(0, F.oop(0), F.oop(1), M, D));
    EXPECT_FALSE(C.lookup(1, F.oop(4), F.oop(1), M, D));
    EXPECT_FALSE(C.lookup(0, F.oop(4), F.oop(5), M, D));
    C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
    EXPECT_TRUE(C.lookup(1, F.oop(0), F.oop(1), M, D));
    EXPECT_EQ(C.misses(), 3u);
    EXPECT_EQ(C.missesGlobal(), 3u);
    EXPECT_EQ(C.missesReplicated(), 0u);
    EXPECT_EQ(C.misses(), C.missesReplicated() + C.missesGlobal());
  }
}

TEST(MethodCacheTest, DifferentClassesDoNotCollideSemantically) {
  MethodCache C(MethodCacheKind::Replicated, 1, true);
  FakeObjects F;
  C.insert(0, F.oop(0), F.oop(1), F.oop(2), F.oop(3));
  Oop M, D;
  // Same selector, different class: must miss (or at worst return only
  // exact matches — never the wrong entry).
  EXPECT_FALSE(C.lookup(0, F.oop(4), F.oop(1), M, D));
}

TEST(RwSpinLockTest, ReadersShareWritersExclude) {
  RwSpinLock L(true);
  L.lockShared();
  L.lockShared(); // a second reader may enter
  L.unlockShared();
  L.unlockShared();
  L.lockExclusive();
  L.unlockExclusive();

  // Concurrent increments under the exclusive lock stay consistent while
  // readers hammer the shared side.
  std::atomic<bool> Stop{false};
  int64_t Shared = 0;
  std::thread Reader([&] {
    while (!Stop.load()) {
      L.lockShared();
      int64_t V = Shared;
      (void)V;
      L.unlockShared();
    }
  });
  for (int I = 0; I < 20000; ++I) {
    L.lockExclusive();
    ++Shared;
    L.unlockExclusive();
  }
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(Shared, 20000);
}

} // namespace
