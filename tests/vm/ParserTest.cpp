//===-- tests/vm/ParserTest.cpp - Method grammar ---------------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "vm/Parser.h"

using namespace mst;

namespace {

MethodNode parseOk(const std::string &Src) {
  Parser P(Src);
  MethodNode M;
  EXPECT_TRUE(P.parseMethod(M)) << P.errorMessage() << " for: " << Src;
  return M;
}

TEST(ParserTest, UnaryPattern) {
  MethodNode M = parseOk("size ^0");
  EXPECT_EQ(M.Selector, "size");
  EXPECT_TRUE(M.Params.empty());
  ASSERT_EQ(M.Body.size(), 1u);
  EXPECT_EQ(M.Body[0]->K, ExprNode::Kind::Return);
}

TEST(ParserTest, BinaryPattern) {
  MethodNode M = parseOk("+ other ^other");
  EXPECT_EQ(M.Selector, "+");
  ASSERT_EQ(M.Params.size(), 1u);
  EXPECT_EQ(M.Params[0], "other");
}

TEST(ParserTest, KeywordPattern) {
  MethodNode M = parseOk("at: i put: v ^v");
  EXPECT_EQ(M.Selector, "at:put:");
  ASSERT_EQ(M.Params.size(), 2u);
  EXPECT_EQ(M.Params[0], "i");
  EXPECT_EQ(M.Params[1], "v");
}

TEST(ParserTest, PrimitivePragma) {
  MethodNode M = parseOk("size <primitive: 3> ^self error: 'x'");
  EXPECT_EQ(M.PrimitiveIndex, 3);
  EXPECT_EQ(M.Body.size(), 1u);
}

TEST(ParserTest, Temporaries) {
  MethodNode M = parseOk("foo | a b c | a := 1. ^a");
  ASSERT_EQ(M.Temps.size(), 3u);
  EXPECT_EQ(M.Temps[1], "b");
  EXPECT_EQ(M.Body.size(), 2u);
  EXPECT_EQ(M.Body[0]->K, ExprNode::Kind::Assign);
}

TEST(ParserTest, KeywordMessageGrouping) {
  // a foo: b bar baz: c qux  ==>  a foo:baz: with unary-refined args.
  MethodNode M = parseOk("m ^a foo: b bar baz: c qux");
  // Will fail name resolution at codegen, but the parse shape matters.
  const ExprNode &Ret = *M.Body[0];
  const ExprNode &Send = *Ret.Args[0];
  EXPECT_EQ(Send.K, ExprNode::Kind::Send);
  EXPECT_EQ(Send.Message.Selector, "foo:baz:");
  ASSERT_EQ(Send.Message.Args.size(), 2u);
  EXPECT_EQ(Send.Message.Args[0]->K, ExprNode::Kind::Send); // b bar
  EXPECT_EQ(Send.Message.Args[0]->Message.Selector, "bar");
}

TEST(ParserTest, BinaryLeftAssociative) {
  MethodNode M = parseOk("m ^1 + 2 * 3");
  const ExprNode &Send = *M.Body[0]->Args[0];
  EXPECT_EQ(Send.Message.Selector, "*");
  EXPECT_EQ(Send.Receiver->Message.Selector, "+");
}

TEST(ParserTest, Cascade) {
  MethodNode M = parseOk("m c add: 1; add: 2; yourself");
  const ExprNode &Casc = *M.Body[0];
  EXPECT_EQ(Casc.K, ExprNode::Kind::Cascade);
  ASSERT_EQ(Casc.Cascades.size(), 3u);
  EXPECT_EQ(Casc.Cascades[0].Selector, "add:");
  EXPECT_EQ(Casc.Cascades[2].Selector, "yourself");
  EXPECT_EQ(Casc.Receiver->Text, "c");
}

TEST(ParserTest, Blocks) {
  MethodNode M = parseOk("m ^[:x :y | | t | t := x. t + y]");
  const ExprNode &B = *M.Body[0]->Args[0];
  EXPECT_EQ(B.K, ExprNode::Kind::Block);
  ASSERT_EQ(B.BlockParams.size(), 2u);
  EXPECT_EQ(B.BlockParams[1], "y");
  ASSERT_EQ(B.BlockTemps.size(), 1u);
  EXPECT_EQ(B.Body.size(), 2u);
}

TEST(ParserTest, EmptyBlock) {
  MethodNode M = parseOk("m ^[]");
  EXPECT_EQ(M.Body[0]->Args[0]->K, ExprNode::Kind::Block);
  EXPECT_TRUE(M.Body[0]->Args[0]->Body.empty());
}

TEST(ParserTest, ArrayLiterals) {
  MethodNode M = parseOk("m ^#(1 'two' $3 four five: (6 7))");
  const ExprNode &A = *M.Body[0]->Args[0];
  EXPECT_EQ(A.K, ExprNode::Kind::ArrayLit);
  ASSERT_EQ(A.Elements.size(), 6u);
  EXPECT_EQ(A.Elements[0]->K, ExprNode::Kind::IntLit);
  EXPECT_EQ(A.Elements[1]->K, ExprNode::Kind::StrLit);
  EXPECT_EQ(A.Elements[2]->K, ExprNode::Kind::CharLit);
  EXPECT_EQ(A.Elements[3]->K, ExprNode::Kind::SymLit);
  EXPECT_EQ(A.Elements[4]->K, ExprNode::Kind::SymLit);
  EXPECT_EQ(A.Elements[5]->K, ExprNode::Kind::ArrayLit);
}

TEST(ParserTest, DoItWrapsLastExpression) {
  Parser P("3 + 4. 5 + 6");
  MethodNode M;
  ASSERT_TRUE(P.parseDoIt(M));
  EXPECT_EQ(M.Selector, "doIt");
  ASSERT_EQ(M.Body.size(), 2u);
  EXPECT_EQ(M.Body[1]->K, ExprNode::Kind::Return);
}

TEST(ParserTest, Errors) {
  auto Fails = [](const std::string &Src) {
    Parser P(Src);
    MethodNode M;
    EXPECT_FALSE(P.parseMethod(M)) << "should fail: " << Src;
    EXPECT_FALSE(P.errorMessage().empty());
  };
  Fails("");                    // no pattern
  Fails("at: ^1");              // keyword pattern missing parameter
  Fails("m ^(1 + 2");           // unbalanced paren
  Fails("m ^[:x 1]");           // block params without |
  Fails("m | a ^1");            // unterminated temporaries
  Fails("m 1 + 2 3");           // missing period
  Fails("m <primitive: x> ^1"); // bad pragma
  Fails("m ^1. junk ^2 extra"); // junk after body... (missing period)
}

TEST(ParserTest, StatementsAfterReturnRejectedByCodegenNotParser) {
  // The parser accepts trailing code after ^ only as separate statements;
  // code generation rejects them. Here we just pin the parse.
  Parser P("m ^1. ^2");
  MethodNode M;
  EXPECT_TRUE(P.parseMethod(M));
  EXPECT_EQ(M.Body.size(), 2u);
}

} // namespace
