//===-- tests/vm/LexerTest.cpp - Tokenizer ---------------------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "vm/Lexer.h"

using namespace mst;

namespace {

std::vector<Token> lexAll(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  for (;;) {
    Token T = L.next();
    if (T.Kind == TokenKind::End)
      break;
    Out.push_back(T);
  }
  return Out;
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Ts = lexAll("foo at: bar42 put: _x");
  ASSERT_EQ(Ts.size(), 5u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Ts[0].Text, "foo");
  EXPECT_EQ(Ts[1].Kind, TokenKind::Keyword);
  EXPECT_EQ(Ts[1].Text, "at:");
  EXPECT_EQ(Ts[2].Text, "bar42");
  EXPECT_EQ(Ts[3].Text, "put:");
  EXPECT_EQ(Ts[4].Text, "_x");
}

TEST(LexerTest, Integers) {
  // Note: "-7" after another integer lexes as binary minus (Smalltalk
  // reads "123 -7" as a subtraction), so the negative comes first here.
  auto Ts = lexAll("-7 0 123 16rFF 2r1010");
  ASSERT_EQ(Ts.size(), 5u);
  EXPECT_EQ(Ts[0].IntValue, -7);
  EXPECT_EQ(Ts[1].IntValue, 0);
  EXPECT_EQ(Ts[2].IntValue, 123);
  EXPECT_EQ(Ts[3].IntValue, 255);
  EXPECT_EQ(Ts[4].IntValue, 10);
}

TEST(LexerTest, MinusIsBinaryAfterOperand) {
  // After an operand (identifier, integer, ')'), '-' is a subtraction.
  for (const char *Src : {"a -1", "3 - 4", "(a) -1"}) {
    auto Ts = lexAll(Src);
    bool SawBinaryMinus = false;
    for (const Token &T : Ts)
      if (T.Kind == TokenKind::BinarySel && T.Text == "-")
        SawBinaryMinus = true;
    EXPECT_TRUE(SawBinaryMinus) << Src;
  }
  // In argument position (after a keyword), "-1" is a negative literal.
  auto Ts = lexAll("at: -1");
  ASSERT_EQ(Ts.size(), 2u);
  EXPECT_EQ(Ts[1].Kind, TokenKind::Integer);
  EXPECT_EQ(Ts[1].IntValue, -1);
}

TEST(LexerTest, StringsWithEscapes) {
  auto Ts = lexAll("'hello' 'it''s'");
  ASSERT_EQ(Ts.size(), 2u);
  EXPECT_EQ(Ts[0].Text, "hello");
  EXPECT_EQ(Ts[1].Text, "it's");
}

TEST(LexerTest, CharacterLiterals) {
  auto Ts = lexAll("$a $  $$ $'");
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, " ");
  EXPECT_EQ(Ts[2].Text, "$");
  EXPECT_EQ(Ts[3].Text, "'");
}

TEST(LexerTest, Symbols) {
  auto Ts = lexAll("#foo #at:put: #+ #'with space' #(1 2)");
  ASSERT_GE(Ts.size(), 5u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::SymbolLit);
  EXPECT_EQ(Ts[0].Text, "foo");
  EXPECT_EQ(Ts[1].Text, "at:put:");
  EXPECT_EQ(Ts[2].Text, "+");
  EXPECT_EQ(Ts[3].Text, "with space");
  EXPECT_EQ(Ts[4].Kind, TokenKind::ArrayStart);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Ts = lexAll("a \"this is a comment\" b \"with \"\"quote\"\"\" c");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "b");
  EXPECT_EQ(Ts[2].Text, "c");
}

TEST(LexerTest, PunctuationAndOperators) {
  auto Ts = lexAll("^ x := y. ; | [ ] ( ) <= -> :");
  ASSERT_GE(Ts.size(), 13u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Caret);
  EXPECT_EQ(Ts[2].Kind, TokenKind::Assign);
  EXPECT_EQ(Ts[4].Kind, TokenKind::Period);
  EXPECT_EQ(Ts[5].Kind, TokenKind::Semicolon);
  EXPECT_EQ(Ts[6].Kind, TokenKind::VBar);
  EXPECT_EQ(Ts[7].Kind, TokenKind::LBracket);
  EXPECT_EQ(Ts[8].Kind, TokenKind::RBracket);
  EXPECT_EQ(Ts[11].Text, "<=");
  EXPECT_EQ(Ts[12].Text, "->");
}

TEST(LexerTest, ErrorsAreReported) {
  Lexer L1("'unterminated");
  EXPECT_TRUE(L1.hadError());
  Lexer L2("\"unterminated comment");
  EXPECT_TRUE(L2.hadError());
  Lexer L3("7rZZ"); // radix literal without digits
  EXPECT_TRUE(L3.hadError());
}

TEST(LexerTest, PeekDoesNotConsume) {
  Lexer L("a b");
  EXPECT_EQ(L.peek().Text, "a");
  EXPECT_EQ(L.peek(1).Text, "b");
  EXPECT_EQ(L.next().Text, "a");
  EXPECT_EQ(L.peek().Text, "b");
}

} // namespace
