//===-- tests/vm/VirtualMachineTest.cpp - VM facade ------------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <thread>

#include "TestVm.h"
#include "obs/Telemetry.h"

using namespace mst;

namespace {

TEST(VirtualMachineTest, ConfigPresets) {
  VmConfig BS = VmConfig::baselineBS();
  EXPECT_EQ(BS.Interpreters, 1u);
  EXPECT_FALSE(BS.MpSupport);
  EXPECT_FALSE(BS.Memory.MpSupport);

  VmConfig MS = VmConfig::multiprocessor(4);
  EXPECT_EQ(MS.Interpreters, 4u);
  EXPECT_TRUE(MS.MpSupport);
  EXPECT_EQ(MS.CacheKind, MethodCacheKind::Replicated);
  EXPECT_EQ(MS.FreeCtxKind, FreeContextKind::Replicated);
}

TEST(VirtualMachineTest, CompileErrorsAreLoggedNotFatal) {
  TestVm T;
  EXPECT_TRUE(T.vm().compileAndRun("^((").isNull());
  EXPECT_TRUE(T.vm().forkDoIt("^((", 5, "broken").isNull());
  auto Errors = T.vm().errors();
  ASSERT_GE(Errors.size(), 2u);
  EXPECT_NE(Errors[0].find("compile error"), std::string::npos);
  EXPECT_EQ(T.evalInt("^1"), 1);
}

TEST(VirtualMachineTest, HostSignalTimeoutAndCounting) {
  TestVm T;
  unsigned Sig = T.vm().createHostSignal();
  EXPECT_FALSE(T.vm().waitHostSignal(Sig, 1, 0.05)) << "nothing signals";
  T.vm().hostSignal(Sig);
  T.vm().hostSignal(Sig);
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 2, 1.0));
  EXPECT_FALSE(T.vm().waitHostSignal(Sig, 3, 0.05));
  // Unknown ids are ignored, not fatal.
  T.vm().hostSignal(12345);
}

TEST(VirtualMachineTest, MillisecondClockAdvances) {
  TestVm T;
  intptr_t A = T.evalInt("^nil millisecondClock");
  intptr_t B = T.evalInt("| n | n := 0. 1 to: 200000 do: [:i | n := n + "
                         "1]. ^nil millisecondClock");
  EXPECT_GE(B, A);
  EXPECT_GE(T.vm().millisecondClock(), B);
}

TEST(VirtualMachineTest, BytecodeCountingGrows) {
  TestVm T;
  uint64_t A = T.vm().totalBytecodes();
  T.evalInt("| n | n := 0. 1 to: 10000 do: [:i | n := n + 1]. ^n");
  EXPECT_GT(T.vm().totalBytecodes(), A + 10000);
}

TEST(VirtualMachineTest, ShutdownIsIdempotent) {
  VirtualMachine VM(VmConfig::multiprocessor(2));
  bootstrapImage(VM);
  VM.startInterpreters();
  VM.shutdown();
  VM.shutdown(); // second call must be a no-op
  EXPECT_TRUE(VM.stopping());
}

TEST(VirtualMachineTest, ShutdownWithRunningProcesses) {
  // Infinite Processes must not prevent shutdown (the stop flag is
  // checked inside the bytecode loop).
  VirtualMachine VM(VmConfig::multiprocessor(2));
  bootstrapImage(VM);
  VM.startInterpreters();
  VM.forkDoIt("[true] whileTrue", 5, "immortal-1");
  VM.forkDoIt("[true] whileTrue: [Point x: 1 y: 2]", 5, "immortal-2");
  VM.shutdown(); // must return promptly (joinAll inside)
  SUCCEED();
}

TEST(VirtualMachineTest, StatisticsReportOnFreshVm) {
  TestVm T;
  std::string R = T.vm().statisticsReport();
  EXPECT_NE(R.find("instrumentation report"), std::string::npos);
  EXPECT_NE(R.find("method cache"), std::string::npos);
}

TEST(VirtualMachineTest, EvalWithDeadlineAbortsRunaway) {
  TestVm T;
  uint64_t Deadline = Telemetry::nowNs() + 200ull * 1000 * 1000;
  auto R = T.vm().evalWithDeadline("[true] whileTrue.", Deadline);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_NE(R.Value.find("RequestTimeout"), std::string::npos) << R.Value;
  // The abort fired at a bytecode boundary: the heap and scheduler are
  // intact and the VM keeps answering.
  auto After = T.vm().evaluate("3 + 4");
  EXPECT_TRUE(After.Ok) << After.Value;
  EXPECT_EQ(After.Value, "7");
  EXPECT_FALSE(After.TimedOut);
}

TEST(VirtualMachineTest, EvalWithDeadlineLeavesQuickEvalsAlone) {
  TestVm T;
  uint64_t Deadline = Telemetry::nowNs() + 30ull * 1000 * 1000 * 1000;
  auto R = T.vm().evalWithDeadline("6 * 7", Deadline);
  EXPECT_TRUE(R.Ok) << R.Value;
  EXPECT_EQ(R.Value, "42");
  EXPECT_FALSE(R.TimedOut);
  // The deadline does not leak into the next (undeadlined) evaluation.
  auto Next = T.vm().evaluate("1 + 1");
  EXPECT_TRUE(Next.Ok);
  EXPECT_FALSE(Next.TimedOut);
}

TEST(VirtualMachineTest, RequestAbortFromAnotherThreadUnwinds) {
  TestVm T;
  std::thread Watchdog([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    T.vm().requestAbort();
  });
  auto R = T.vm().evaluate("[true] whileTrue");
  Watchdog.join();
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_NE(R.Value.find("RequestTimeout"), std::string::npos) << R.Value;
  auto After = T.vm().evaluate("2 + 2");
  EXPECT_TRUE(After.Ok) << After.Value;
  EXPECT_EQ(After.Value, "4");
}

TEST(VirtualMachineTest, ClearAbortDropsAPendingAbort) {
  TestVm T;
  // An abort requested between requests must not kill the next one.
  T.vm().requestAbort();
  T.vm().clearAbort();
  auto R = T.vm().evaluate("5 * 5");
  EXPECT_TRUE(R.Ok) << R.Value;
  EXPECT_EQ(R.Value, "25");
  EXPECT_FALSE(R.TimedOut);
}

TEST(VirtualMachineTest, DriverRootsAreGcSafe) {
  // A doIt result referencing fresh objects must survive a forced
  // scavenge triggered from within the same doIt.
  TestVm T;
  EXPECT_EQ(T.evalString("| s | s := 'keep', 'me'. nil forceScavenge. "
                         "^s"),
            "keepme");
}

} // namespace
