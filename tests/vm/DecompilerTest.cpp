//===-- tests/vm/DecompilerTest.cpp - Decompilation ------------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "vm/Compiler.h"

#include "vm/Bytecode.h"
#include "vm/Compiler.h"
#include "vm/Decompiler.h"

using namespace mst;

namespace {

class DecompilerTest : public ::testing::Test {
protected:
  TestVm T;

  std::string decompile(const std::string &MethodSrc) {
    CompileResult R = compileMethodSource(
        T.om(), T.om().globalAt("Point"), MethodSrc);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.ok() ? decompileMethod(T.om(), R.Method) : "";
  }

  /// Compiles \p Src, decompiles it, recompiles the result, and expects
  /// identical bytecodes — the strong round-trip property for
  /// straight-line methods.
  void roundTrip(const std::string &Src) {
    CompileResult A = compileMethodSource(
        T.om(), T.om().globalAt("Point"), Src);
    ASSERT_TRUE(A.ok()) << A.Error;
    std::string Decompiled = decompileMethod(T.om(), A.Method);
    CompileResult B = compileMethodSource(
        T.om(), T.om().globalAt("Point"), Decompiled);
    ASSERT_TRUE(B.ok()) << B.Error << "\ndecompiled source:\n"
                        << Decompiled;
    Oop BytesA = ObjectMemory::fetchPointer(A.Method, MthBytecodes);
    Oop BytesB = ObjectMemory::fetchPointer(B.Method, MthBytecodes);
    ASSERT_EQ(BytesA.object()->ByteLength, BytesB.object()->ByteLength)
        << "round trip changed code size for:\n"
        << Src << "\ndecompiled:\n"
        << Decompiled;
    EXPECT_EQ(0, memcmp(BytesA.object()->bytes(), BytesB.object()->bytes(),
                        BytesA.object()->ByteLength))
        << "round trip changed bytecode for:\n"
        << Src;
  }
};

TEST_F(DecompilerTest, SimpleAccessorsRoundTrip) {
  roundTrip("x ^x");
  roundTrip("setX: ax x := ax");
  roundTrip("double ^x + x");
  roundTrip("sum ^x + y");
}

TEST_F(DecompilerTest, SendsRoundTrip) {
  roundTrip("report ^x printString , y printString");
  roundTrip("norm2 ^(x * x) + (y * y)");
  roundTrip("asPointString ^Point x: y y: x");
}

TEST_F(DecompilerTest, TempsAndStatementsRoundTrip) {
  roundTrip("swap | t | t := x. x := y. y := t. ^self");
}

TEST_F(DecompilerTest, PatternReconstruction) {
  std::string Out = decompile("at: i put: v ^v");
  EXPECT_NE(Out.find("at: arg1 put: arg2"), std::string::npos) << Out;
}

TEST_F(DecompilerTest, ControlFlowFallsBackToListing) {
  std::string Out = decompile("probe ^x > 0 ifTrue: ['pos'] ifFalse: "
                              "['neg']");
  EXPECT_NE(Out.find("decompiled listing"), std::string::npos) << Out;
  EXPECT_NE(Out.find("JumpIfFalse"), std::string::npos) << Out;
  // Literals are resolved in the listing.
  EXPECT_NE(Out.find("'pos'"), std::string::npos) << Out;
}

TEST_F(DecompilerTest, BlockRoundTrips) {
  roundTrip("adder ^[:n | n + x]");
  roundTrip("twoArg ^[:a :b | a + b]");
  roundTrip("thunk ^[x]");
  roundTrip("emptyThunk ^[]");
}

TEST_F(DecompilerTest, BlocksReconstruct) {
  std::string Out = decompile("adder ^[:n | n + x]");
  EXPECT_NE(Out.find("[:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("+"), std::string::npos) << Out;
}

TEST_F(DecompilerTest, WorksThroughThePrimitive) {
  // The Decompiler global drives primitive 51.
  std::string Out = T.evalString(
      "^Decompiler decompile: (Point compiledMethodAt: #x)");
  EXPECT_NE(Out.find("^x"), std::string::npos) << Out;
}

TEST(BytecodeTest, InstructionLengths) {
  uint8_t Code[8] = {};
  Code[0] = static_cast<uint8_t>(Op::PushSelf);
  EXPECT_EQ(instructionLength(Code, 0), 1u);
  Code[0] = static_cast<uint8_t>(Op::PushTemp);
  EXPECT_EQ(instructionLength(Code, 0), 2u);
  Code[0] = static_cast<uint8_t>(Op::Send);
  EXPECT_EQ(instructionLength(Code, 0), 3u);
  Code[0] = static_cast<uint8_t>(Op::BlockCopy);
  EXPECT_EQ(instructionLength(Code, 0), 5u);
}

TEST(BytecodeTest, DisassembleFormats) {
  uint8_t Code[8] = {};
  Code[0] = static_cast<uint8_t>(Op::Send);
  Code[1] = 3;
  Code[2] = 2;
  EXPECT_NE(disassembleOne(Code, 0).find("Send lit3 argc2"),
            std::string::npos);
  Code[0] = static_cast<uint8_t>(Op::PushSmallInt);
  Code[1] = static_cast<uint8_t>(-5);
  EXPECT_NE(disassembleOne(Code, 0).find("-5"), std::string::npos);
  Code[0] = static_cast<uint8_t>(Op::SendSpecial);
  Code[1] = static_cast<uint8_t>(SpecialSelector::Add);
  EXPECT_NE(disassembleOne(Code, 0).find("+"), std::string::npos);
}

TEST(BytecodeTest, SpecialSelectorNamesAreDistinct) {
  for (size_t I = 0;
       I < static_cast<size_t>(SpecialSelector::NumSpecialSelectors); ++I)
    for (size_t J = I + 1;
         J < static_cast<size_t>(SpecialSelector::NumSpecialSelectors);
         ++J)
      EXPECT_STRNE(
          specialSelectorName(static_cast<SpecialSelector>(I)),
          specialSelectorName(static_cast<SpecialSelector>(J)));
}

} // namespace
