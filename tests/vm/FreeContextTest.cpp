//===-- tests/vm/FreeContextTest.cpp - Free context list -------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "vm/FreeContextList.h"

using namespace mst;

namespace {

/// Direct pool behaviour on raw context objects.
class FreeContextPoolTest : public ::testing::Test {
protected:
  FreeContextPoolTest() : OM(MemoryConfig{}) {
    OM.registerMutator("test");
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    Cls = OM.allocateOldPointers(Nil, 0);
  }
  ~FreeContextPoolTest() override { OM.unregisterMutator(); }

  Oop makeCtx(uint32_t Slots) {
    Oop C = OM.allocateContextObject(Cls, Slots);
    C.object()->slots()[ContextSpSlotIndex] = Oop::fromSmallInt(2);
    return C;
  }

  ObjectMemory OM;
  Oop Nil, Cls;
};

TEST_F(FreeContextPoolTest, TakeFromEmptyIsNull) {
  FreeContextPool P(FreeContextKind::Shared, 1, true);
  EXPECT_TRUE(P.take(0, SmallContextSlots).isNull());
}

TEST_F(FreeContextPoolTest, GiveThenTakeRoundTrips) {
  FreeContextPool P(FreeContextKind::Shared, 1, true);
  Oop C = makeCtx(SmallContextSlots);
  P.give(0, C);
  EXPECT_EQ(P.returns(), 1u);
  Oop Back = P.take(0, 10);
  EXPECT_EQ(Back, C);
  EXPECT_EQ(P.reuses(), 1u);
  EXPECT_TRUE(P.take(0, 10).isNull());
}

TEST_F(FreeContextPoolTest, SizeBinsAreSeparate) {
  FreeContextPool P(FreeContextKind::Shared, 1, true);
  P.give(0, makeCtx(SmallContextSlots));
  // A request too big for the small bin must not receive the small one.
  EXPECT_TRUE(P.take(0, SmallContextSlots + 1).isNull());
  P.give(0, makeCtx(LargeContextSlots));
  EXPECT_FALSE(P.take(0, LargeContextSlots).isNull());
}

TEST_F(FreeContextPoolTest, ReplicatedListsAreIndependent) {
  FreeContextPool P(FreeContextKind::Replicated, 2, true);
  P.give(0, makeCtx(SmallContextSlots));
  EXPECT_TRUE(P.take(1, 10).isNull()) << "interpreter 1 has its own list";
  EXPECT_FALSE(P.take(0, 10).isNull());
}

TEST_F(FreeContextPoolTest, SharedListIsShared) {
  FreeContextPool P(FreeContextKind::Shared, 2, true);
  P.give(0, makeCtx(SmallContextSlots));
  EXPECT_FALSE(P.take(1, 10).isNull());
}

TEST_F(FreeContextPoolTest, FlushEmptiesAllBins) {
  FreeContextPool P(FreeContextKind::Replicated, 2, true);
  P.give(0, makeCtx(SmallContextSlots));
  P.give(1, makeCtx(LargeContextSlots));
  P.flushAll();
  EXPECT_TRUE(P.take(0, 10).isNull());
  EXPECT_TRUE(P.take(1, LargeContextSlots).isNull());
}

TEST_F(FreeContextPoolTest, OldContextsAreNotPooled) {
  FreeContextPool P(FreeContextKind::Shared, 1, true);
  Oop C = makeCtx(SmallContextSlots);
  C.object()->setOld();
  P.give(0, C);
  EXPECT_TRUE(P.take(0, 10).isNull());
}

/// End-to-end: running Smalltalk recycles method contexts through the
/// pool, and escaped contexts stay out.
TEST(FreeContextIntegrationTest, MethodReturnsRecycleContexts) {
  TestVm T(VmConfig::multiprocessor(1));
  uint64_t Before = T.vm().contextPool().returns();
  T.evalInt("^10 factorial");
  EXPECT_GT(T.vm().contextPool().returns(), Before)
      << "returning method contexts must feed the free list";
}

TEST(FreeContextIntegrationTest, CapturedHomeIsNotRecycled) {
  TestVm T(VmConfig::multiprocessor(1));
  // makeAdder's home context is captured by the returned block; running
  // the block afterwards must still see its temps (so the home cannot
  // have been recycled into another activation).
  addMethod(T.vm(), T.om().known().ClassObject, "testing",
            "makeAdder: n ^[:x | x + n]");
  EXPECT_EQ(T.evalInt("| b | b := nil makeAdder: 5. nil makeAdder: 100. "
                      "1 to: 50 do: [:i | i printString]. ^b value: 2"),
            7);
}

} // namespace
