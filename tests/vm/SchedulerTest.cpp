//===-- tests/vm/SchedulerTest.cpp - Process scheduling --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduler semantics, including the paper's §3.3 reorganization: a
/// running Process is NOT removed from the ready queue, canRun: replaces
/// isActive:, and the activeProcess slot is only used around snapshots.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "vm/Compiler.h"

using namespace mst;

namespace {

class SchedulerTest : public ::testing::Test {
protected:
  SchedulerTest() : T(VmConfig::multiprocessor(2)) {}

  /// A suspended process with a trivial context. NOTE: the returned oop
  /// is GC-fragile; these tests stay within one eden's worth of
  /// allocation (no scavenge), which the huge default eden guarantees.
  Oop makeProcess(int Priority) {
    Oop Ctx = T.vm().buildBottomContext(doItMethod(), T.om().nil());
    return T.vm().scheduler().createProcess(Ctx, Priority, "test");
  }

  Oop doItMethod() {
    if (CachedMethod.isNull()) {
      CompileResult R = compileDoItSource(
          T.om(), T.om().known().ClassUndefinedObject, "^nil");
      CachedMethod = R.Method;
    }
    return CachedMethod;
  }

  TestVm T;
  Oop CachedMethod; // old-space: stable
};

TEST_F(SchedulerTest, CreateProcessStartsSuspended) {
  Oop P = makeProcess(5);
  EXPECT_FALSE(T.vm().scheduler().canRun(P));
  EXPECT_EQ(ObjectMemory::fetchPointer(P, ProcPriority).smallInt(), 5);
  EXPECT_EQ(ObjectMemory::fetchPointer(P, ProcMyList), T.om().nil());
}

TEST_F(SchedulerTest, AddReadyMakesRunnable) {
  Oop P = makeProcess(5);
  T.vm().scheduler().addReadyProcess(P);
  EXPECT_TRUE(T.vm().scheduler().canRun(P));
  EXPECT_EQ(T.vm().scheduler().readyCount(), 1u);
}

TEST_F(SchedulerTest, PickMarksRunningAndKeepsInQueue) {
  // §3.3: "the MS system does not remove a Process from the ready queue
  // when it is made active".
  Oop P = makeProcess(5);
  T.vm().scheduler().addReadyProcess(P);
  Oop Picked = T.vm().scheduler().pickProcessToRun();
  EXPECT_EQ(Picked, P);
  EXPECT_EQ(ObjectMemory::fetchPointer(P, ProcRunning).smallInt(), 1);
  EXPECT_TRUE(T.vm().scheduler().canRun(P))
      << "a running Process still answers canRun:";
  EXPECT_EQ(T.vm().scheduler().readyCount(), 1u)
      << "running Processes stay in the ready queue";
  // And it cannot be picked twice.
  EXPECT_TRUE(T.vm().scheduler().pickProcessToRun().isNull());
}

TEST_F(SchedulerTest, HigherPriorityWinsThePick) {
  Oop Low = makeProcess(3);
  Oop High = makeProcess(7);
  T.vm().scheduler().addReadyProcess(Low);
  T.vm().scheduler().addReadyProcess(High);
  EXPECT_EQ(T.vm().scheduler().pickProcessToRun(), High);
  EXPECT_EQ(T.vm().scheduler().pickProcessToRun(), Low);
}

TEST_F(SchedulerTest, YieldRotatesWithinPriority) {
  Oop A = makeProcess(5);
  Oop B = makeProcess(5);
  T.vm().scheduler().addReadyProcess(A);
  T.vm().scheduler().addReadyProcess(B);
  Oop First = T.vm().scheduler().pickProcessToRun();
  EXPECT_EQ(First, A);
  T.vm().scheduler().yieldProcess(A);
  // After the rotation B is at the front.
  EXPECT_EQ(T.vm().scheduler().pickProcessToRun(), B);
  EXPECT_EQ(T.vm().scheduler().pickProcessToRun(), A);
}

TEST_F(SchedulerTest, SemaphoreExcessSignals) {
  Oop Sem = T.vm().compileAndRun("Smalltalk at: #S put: Semaphore new. "
                                 "^Smalltalk at: #S");
  ASSERT_FALSE(Sem.isNull());
  T.vm().scheduler().semaphoreSignal(Sem);
  T.vm().scheduler().semaphoreSignal(Sem);
  EXPECT_EQ(ObjectMemory::fetchPointer(Sem, SemExcessSignals).smallInt(),
            2);
  // A wait consumes an excess signal without blocking.
  Oop P = makeProcess(5);
  T.vm().scheduler().addReadyProcess(P);
  EXPECT_FALSE(T.vm().scheduler().semaphoreWait(Sem, P));
  EXPECT_EQ(ObjectMemory::fetchPointer(Sem, SemExcessSignals).smallInt(),
            1);
}

TEST_F(SchedulerTest, SemaphoreBlocksAndWakesFifo) {
  Oop Sem = T.vm().compileAndRun("Smalltalk at: #S2 put: Semaphore new. "
                                 "^Smalltalk at: #S2");
  Oop A = makeProcess(5);
  Oop B = makeProcess(5);
  T.vm().scheduler().addReadyProcess(A);
  T.vm().scheduler().addReadyProcess(B);
  EXPECT_TRUE(T.vm().scheduler().semaphoreWait(Sem, A));
  EXPECT_TRUE(T.vm().scheduler().semaphoreWait(Sem, B));
  EXPECT_FALSE(T.vm().scheduler().canRun(A));
  EXPECT_FALSE(T.vm().scheduler().canRun(B));
  // First signal wakes the longest waiter: A.
  T.vm().scheduler().semaphoreSignal(Sem);
  EXPECT_TRUE(T.vm().scheduler().canRun(A));
  EXPECT_FALSE(T.vm().scheduler().canRun(B));
  T.vm().scheduler().semaphoreSignal(Sem);
  EXPECT_TRUE(T.vm().scheduler().canRun(B));
}

TEST_F(SchedulerTest, SuspendRemovesFromAnyList) {
  Oop P = makeProcess(5);
  T.vm().scheduler().addReadyProcess(P);
  T.vm().scheduler().suspendProcess(P);
  EXPECT_FALSE(T.vm().scheduler().canRun(P));
  EXPECT_EQ(T.vm().scheduler().readyCount(), 0u);
  T.vm().scheduler().resumeProcess(P);
  EXPECT_TRUE(T.vm().scheduler().canRun(P));
  // Resuming an already-ready process is a no-op.
  T.vm().scheduler().resumeProcess(P);
  EXPECT_EQ(T.vm().scheduler().readyCount(), 1u);
}

TEST_F(SchedulerTest, TerminateClearsContext) {
  Oop P = makeProcess(5);
  T.vm().scheduler().addReadyProcess(P);
  T.vm().scheduler().terminateProcess(P);
  EXPECT_FALSE(T.vm().scheduler().canRun(P));
  EXPECT_EQ(ObjectMemory::fetchPointer(P, ProcSuspendedContext),
            T.om().nil());
}

TEST_F(SchedulerTest, ActiveProcessSlotOnlyForSnapshots) {
  // §3.3: "The only requirement is to fill in the activeProcess slot
  // before taking a snapshot and to empty it afterwards."
  Oop Processor = T.om().known().Processor;
  EXPECT_EQ(ObjectMemory::fetchPointer(Processor, SchedActiveProcess),
            T.om().nil());
  Oop P = makeProcess(5);
  T.vm().scheduler().fillActiveProcessSlot(P);
  EXPECT_EQ(ObjectMemory::fetchPointer(Processor, SchedActiveProcess), P);
  T.vm().scheduler().emptyActiveProcessSlot();
  EXPECT_EQ(ObjectMemory::fetchPointer(Processor, SchedActiveProcess),
            T.om().nil());
}

TEST_F(SchedulerTest, ReadyQueueIsSmalltalkVisible) {
  // The queue is made of image-level objects: Smalltalk code can walk it
  // (the visibility the paper both exploits and criticizes in §3.3).
  Oop P = makeProcess(4);
  T.vm().scheduler().addReadyProcess(P);
  EXPECT_EQ(T.evalInt("| lists n | lists := Processor "
                      "quiescentProcessLists. n := 0. 1 to: lists size "
                      "do: [:i | (lists at: i) do: [:p | n := n + 1]]. "
                      "^n"),
            1);
}

} // namespace
