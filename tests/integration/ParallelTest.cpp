//===-- tests/integration/ParallelTest.cpp - Multiprocessor behaviour -----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the replicated interpreter: Smalltalk Processes
/// running in parallel on several interpreter processes, semaphores,
/// scheduling, and the reorganized canRun:/thisProcess queries.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"
#include "obs/Telemetry.h"
#include "obs/TraceBuffer.h"
#include "vkernel/Delay.h"

using namespace mst;

namespace {

/// Sleeps briefly while counted as GC-safe, so workers can scavenge.
void safeSleep(VirtualMachine &VM, uint64_t Micros) {
  BlockedRegion Region(VM.memory().safepoint());
  vkDelay(Micros);
}

TEST(ParallelTest, ForkedProcessRunsAndSignals) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  std::string Src = "| n | n := 0. 1 to: 1000 do: [:i | n := n + i]. "
                    "n = 500500 ifTrue: [nil hostSignal: " +
                    std::to_string(Sig) + "]";
  Oop Proc = T.vm().forkDoIt(Src, 5, "worker");
  ASSERT_FALSE(Proc.isNull());
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 20.0));
}

TEST(ParallelTest, ManyProcessesAllComplete) {
  TestVm T(VmConfig::multiprocessor(4));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  constexpr int N = 16;
  for (int I = 0; I < N; ++I) {
    std::string Src =
        "| c | c := OrderedCollection new. 1 to: 200 do: [:i | c add: i * "
        + std::to_string(I + 1) +
        "]. c size = 200 ifTrue: [nil hostSignal: " + std::to_string(Sig) +
        "]";
    ASSERT_FALSE(T.vm().forkDoIt(Src, 5, "w" + std::to_string(I)).isNull());
  }
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, N, 60.0));
  EXPECT_TRUE(T.vm().errors().empty()) << T.vm().errors().front();
}

TEST(ParallelTest, SemaphoreHandshake) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  T.eval("Smalltalk at: #TestSem put: Semaphore new. ^1");

  // Consumer waits 5 times, then reports.
  Oop Consumer = T.vm().forkDoIt(
      "| sem | sem := Smalltalk at: #TestSem. 1 to: 5 do: [:i | sem "
      "wait]. nil hostSignal: " + std::to_string(Sig),
      5, "consumer");
  ASSERT_FALSE(Consumer.isNull());
  // Producer signals 5 times.
  Oop Producer = T.vm().forkDoIt(
      "| sem | sem := Smalltalk at: #TestSem. 1 to: 5 do: [:i | sem "
      "signal. Processor yield]",
      5, "producer");
  ASSERT_FALSE(Producer.isNull());
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 30.0));
}

TEST(ParallelTest, MutualExclusionWithSemaphore) {
  TestVm T(VmConfig::multiprocessor(4));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  // A binary semaphore guards a shared counter in an Association; four
  // workers each add 500. With correct mutual exclusion the final count
  // is exactly 2000 despite the racy read-modify-write.
  T.eval("Smalltalk at: #Mutex put: Semaphore new. (Smalltalk at: #Mutex) "
         "signal. Smalltalk at: #Counter put: 0 -> 0. ^1");
  for (int I = 0; I < 4; ++I) {
    T.vm().forkDoIt(
        "| m c | m := Smalltalk at: #Mutex. c := Smalltalk at: #Counter. "
        "1 to: 500 do: [:i | m wait. c value: c value + 1. m signal]. nil "
        "hostSignal: " + std::to_string(Sig),
        5, "adder");
  }
  ASSERT_TRUE(T.vm().waitHostSignal(Sig, 4, 60.0));
  EXPECT_EQ(T.evalInt("^(Smalltalk at: #Counter) value"), 2000);
}

TEST(ParallelTest, CanRunAndThisProcess) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  // Inside a running process, thisProcess is non-nil and canRun: answers
  // true — the process stays in the ready queue while running (§3.3).
  Oop P = T.vm().forkDoIt(
      "| me | me := Processor thisProcess. (me notNil and: [Processor "
      "canRun: me]) ifTrue: [nil hostSignal: " + std::to_string(Sig) + "]",
      5, "introspector");
  ASSERT_FALSE(P.isNull());
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 20.0));

  // Compatibility fall-through (§3.3): activeProcess succeeds via the new
  // primitive under MS; on the driver (no Smalltalk Process) it is nil.
  EXPECT_EQ(T.eval("^Processor activeProcess"), T.om().nil());
}

TEST(ParallelTest, IdleProcessesDoNotBlockOthers) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  // Two infinite idle Processes ([true] whileTrue) plus one worker: the
  // worker must still complete (timeslicing, multiple interpreters).
  T.vm().forkDoIt("[true] whileTrue", 5, "idle1");
  T.vm().forkDoIt("[true] whileTrue", 5, "idle2");
  Oop W = T.vm().forkDoIt("| s | s := 0. 1 to: 10000 do: [:i | s := s + "
                          "1]. nil hostSignal: " + std::to_string(Sig),
                          5, "worker");
  ASSERT_FALSE(W.isNull());
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 30.0));
}

TEST(ParallelTest, SuspendAndResume) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();

  // A process suspends itself; the driver resumes it; it then signals.
  Oop P = T.vm().forkDoIt("Smalltalk at: #SuspendMe put: Processor "
                          "thisProcess. Processor thisProcess suspend. "
                          "nil hostSignal: " + std::to_string(Sig),
                          5, "sleeper");
  ASSERT_FALSE(P.isNull());
  // Wait for it to have parked itself. Oops are refetched after every
  // sleep: the sleep is a GC-safe region, so objects may move during it.
  bool Parked = false;
  for (int Tries = 0; Tries < 500 && !Parked; ++Tries) {
    Oop Sleeper = T.om().globalAt("SuspendMe");
    Parked = !Sleeper.isNull() && Sleeper != T.om().nil() &&
             !T.vm().scheduler().canRun(Sleeper);
    if (!Parked)
      safeSleep(T.vm(), 10000);
  }
  ASSERT_TRUE(Parked);
  T.vm().scheduler().resumeProcess(T.om().globalAt("SuspendMe"));
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 20.0));
}

TEST(ParallelTest, BaselineBSStillRunsProcesses) {
  // The no-MP build must still execute a single Smalltalk Process
  // correctly (one interpreter, all locks disabled).
  TestVm T(VmConfig::baselineBS());
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();
  Oop P = T.vm().forkDoIt("| s | s := 0. 1 to: 100 do: [:i | s := s + i]. "
                          "s = 5050 ifTrue: [nil hostSignal: " +
                              std::to_string(Sig) + "]",
                          5, "solo");
  ASSERT_FALSE(P.isNull());
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 20.0));
}

TEST(ParallelTest, HigherPriorityProcessesFinishFirst) {
  // One interpreter: strict priority order is observable. Fork a low
  // priority process first; a later high-priority process must still
  // complete before it, because picks always prefer the higher queue.
  TestVm T(VmConfig::multiprocessor(1));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();
  T.eval("Smalltalk at: #Order put: OrderedCollection new. ^1");

  // Big enough that neither finishes in one slice.
  const char *WorkFmt =
      "| n | n := 0. 1 to: 300000 do: [:i | n := n + 1]. (Smalltalk at: "
      "#Order) add: %s. nil hostSignal: ";
  std::string Low = WorkFmt;
  Low.replace(Low.find("%s"), 2, "#low");
  std::string High = WorkFmt;
  High.replace(High.find("%s"), 2, "#high");
  T.vm().forkDoIt(Low + std::to_string(Sig), 3, "low");
  T.vm().forkDoIt(High + std::to_string(Sig), 7, "high");
  ASSERT_TRUE(T.vm().waitHostSignal(Sig, 2, 60.0));
  EXPECT_EQ(T.eval("^(Smalltalk at: #Order) first"),
            T.om().intern("high"));
}

TEST(ParallelTest, TracingRecordsScavengeSpansFromWorkers) {
  // With tracing on, a four-worker allocation-heavy run must record at
  // least one trace span per scavenge that actually happened, and the
  // telemetry report must surface the pause histogram.
  clearTrace();
  Telemetry::setTracingEnabled(true);
  uint64_t Scavenges = 0;
  {
    VmConfig C = VmConfig::multiprocessor(4);
    C.Memory.EdenBytes = 256u << 10; // small eden → frequent scavenges
    TestVm T(C);
    T.vm().startInterpreters();
    unsigned Sig = T.vm().createHostSignal();
    for (int I = 0; I < 4; ++I)
      T.vm().forkDoIt(
          "1 to: 400 do: [:i | OrderedCollection new addAll: (1 to: 100); "
          "yourself]. nil hostSignal: " + std::to_string(Sig),
          5, "alloc" + std::to_string(I));
    ASSERT_TRUE(T.vm().waitHostSignal(Sig, 4, 60.0));
    Scavenges = T.vm().memory().statsSnapshot().Scavenges;
    EXPECT_GE(Scavenges, 1u);
    // Each performScavenge brackets itself in a "scavenge" span.
    EXPECT_GE(countTraceSpans("scavenge"), Scavenges);
    // The report carries the pause quantiles fed by those scavenges.
    std::string Report = T.vm().telemetryReport();
    EXPECT_NE(Report.find("gc.scavenge.pause"), std::string::npos)
        << Report;
    EXPECT_EQ(T.vm().memory().pauseHistogram().count(), Scavenges);
  }
  Telemetry::setTracingEnabled(false);
  clearTrace();
}

TEST(InstrumentationTest, ReportCoversEverySubsystem) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();
  T.vm().forkDoIt("1 to: 200 do: [:i | (Inspector on: i -> i) show]. "
                  "nil hostSignal: " + std::to_string(Sig),
                  5, "worker");
  ASSERT_TRUE(T.vm().waitHostSignal(Sig, 1, 30.0));
  std::string R = T.vm().statisticsReport();
  for (const char *Expect :
       {"allocation", "scheduling", "entry table", "display",
        "method cache", "free contexts", "scavenges", "driver"})
    EXPECT_NE(R.find(Expect), std::string::npos) << R;
  // Display commands were actually counted.
  EXPECT_GE(T.vm().display().submittedCount(), 200u);
}

} // namespace
