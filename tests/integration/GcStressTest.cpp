//===-- tests/integration/GcStressTest.cpp - Scavenging under load --------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation Scavenging under allocation pressure: a small eden (the
/// paper ran with s = 80K bytes) forces frequent stop-the-world scavenges
/// while several interpreter processes allocate concurrently. Data
/// integrity after many collections is the pass criterion.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "image/MacroBenchmarks.h"

using namespace mst;

namespace {

VmConfig smallEden(unsigned K) {
  VmConfig C = VmConfig::multiprocessor(K);
  C.Memory.EdenBytes = 256 * 1024; // force frequent scavenges
  C.Memory.SurvivorBytes = 128 * 1024;
  return C;
}

TEST(GcStressTest, SurvivorsKeepTheirContents) {
  TestVm T(smallEden(1));
  // Build a long-lived structure, churn garbage through many scavenges,
  // then verify the structure.
  intptr_t R = T.evalInt(
      "| keep sum | keep := OrderedCollection new. 1 to: 100 do: [:i | "
      "keep add: i printString]. 1 to: 20000 do: [:i | (Array new: 40) "
      "at: 1 put: i]. sum := 0. keep do: [:s | sum := sum + s size]. "
      "^sum");
  // 1..9 -> 9 chars, 10..99 -> 180, 100 -> 3.
  EXPECT_EQ(R, 9 + 180 + 3);
  EXPECT_GT(T.vm().memory().statsSnapshot().Scavenges, 0u);
}

TEST(GcStressTest, ExplicitScavengePreservesGraph) {
  TestVm T(smallEden(1));
  intptr_t R = T.evalInt(
      "| d total | d := Dictionary new. 1 to: 64 do: [:i | d at: i put: "
      "(Array new: i)]. nil forceScavenge. nil forceScavenge. total := 0. "
      "d do: [:a | total := total + a size]. ^total");
  EXPECT_EQ(R, 64 * 65 / 2);
  EXPECT_GE(T.vm().memory().statsSnapshot().Scavenges, 2u);
}

TEST(GcStressTest, ParallelAllocationWithScavenges) {
  TestVm T(smallEden(4));
  T.vm().startInterpreters();
  unsigned Sig = T.vm().createHostSignal();
  constexpr int N = 8;
  for (int I = 0; I < N; ++I) {
    T.vm().forkDoIt(
        "| keep ok | keep := OrderedCollection new. 1 to: 50 do: [:i | "
        "keep add: i * i]. 1 to: 30000 do: [:i | Array new: 16]. ok := "
        "true. 1 to: 50 do: [:i | (keep at: i) = (i * i) ifFalse: [ok := "
        "false]]. ok ifTrue: [nil hostSignal: " + std::to_string(Sig) +
        "]",
        5, "churner");
  }
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, N, 120.0));
  EXPECT_GT(T.vm().memory().statsSnapshot().Scavenges, 0u);
  EXPECT_TRUE(T.vm().errors().empty())
      << "first error: " << T.vm().errors().front();
}

TEST(GcStressTest, TenuredObjectsRememberYoung) {
  TestVm T(smallEden(1));
  // An old object (the system dictionary's association values are old;
  // instead: age an array until tenured, then store young data into it
  // and scavenge — the entry table must keep the young data alive).
  intptr_t R = T.evalInt(
      "| holder | holder := Array new: 4. nil forceScavenge. nil "
      "forceScavenge. nil forceScavenge. holder at: 1 put: 'young "
      "string'. nil forceScavenge. ^(holder at: 1) size");
  EXPECT_EQ(R, 12);
}

TEST(GcStressTest, ParallelScavengeWorkers) {
  VmConfig C = smallEden(2);
  C.Memory.ScavengeWorkers = 4;
  TestVm T(C);
  intptr_t R = T.evalInt(
      "| keep | keep := OrderedCollection new. 1 to: 200 do: [:i | keep "
      "add: i printString]. 1 to: 30000 do: [:i | Array new: 32]. ^keep "
      "size");
  EXPECT_EQ(R, 200);
  EXPECT_GT(T.vm().memory().statsSnapshot().Scavenges, 0u);
}

TEST(GcStressTest, MacroBenchmarkUnderTinyEdenAndBusyCompetition) {
  // The everything-at-once stress: paper-sized eden (close to the 80 KB
  // MS ran with), four interpreters, four busy competitors, and the
  // heaviest macro benchmark — with correctness asserted afterwards.
  VmConfig C = VmConfig::multiprocessor(4);
  C.Memory.EdenBytes = 128 * 1024;
  C.Memory.SurvivorBytes = 64 * 1024;
  TestVm T(C);
  setupMacroWorkload(T.vm());
  T.vm().startInterpreters();
  forkCompetitors(T.vm(), 4, busyProcessSource(), "StressGroup");
  TimedRun Run = runMacroBenchmark(T.vm(), macroBenchmarks()[0],
                                   /*Scale=*/0.25, 300.0);
  terminateCompetitors(T.vm(), "StressGroup");
  EXPECT_TRUE(Run.Ok);
  EXPECT_GT(T.vm().memory().statsSnapshot().Scavenges, 10u);
  EXPECT_TRUE(T.vm().errors().empty())
      << "first error: " << T.vm().errors().front();
  // The image is still coherent after hundreds of stop-the-world pauses
  // under competition.
  EXPECT_EQ(T.evalInt("^(1 to: 100) sum"), 5050);
  EXPECT_TRUE(T.evalBool("^(Smalltalk implementorsOf: #printOn:) "
                         "notEmpty"));
}

} // namespace
