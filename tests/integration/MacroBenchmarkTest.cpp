//===-- tests/integration/MacroBenchmarkTest.cpp - Table 2 workloads ------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each Table 2 macro benchmark must run to completion without VM errors
/// in every system state the paper measures: baseline BS, MS, MS with
/// idle competition, and MS with busy competition.
///
//===----------------------------------------------------------------------===//

#include "TestVm.h"

#include "image/MacroBenchmarks.h"

using namespace mst;

namespace {

class MacroBenchmarkTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(MacroBenchmarkTest, RunsCleanlyOnMs) {
  const MacroBenchmark &B = macroBenchmarks()[GetParam()];
  TestVm T(VmConfig::multiprocessor(2));
  setupMacroWorkload(T.vm());
  T.vm().startInterpreters();
  TimedRun Run = runMacroBenchmark(T.vm(), B, /*Scale=*/0.2, 180.0);
  EXPECT_TRUE(Run.Ok) << "benchmark failed: " << B.Name;
  EXPECT_GE(Run.CpuSec, 0.0);
  EXPECT_TRUE(T.vm().errors().empty())
      << B.Name << " first error: " << T.vm().errors().front();
}

TEST_P(MacroBenchmarkTest, RunsCleanlyOnBaselineBS) {
  const MacroBenchmark &B = macroBenchmarks()[GetParam()];
  TestVm T(VmConfig::baselineBS());
  setupMacroWorkload(T.vm());
  T.vm().startInterpreters();
  TimedRun Run = runMacroBenchmark(T.vm(), B, /*Scale=*/0.2, 180.0);
  EXPECT_TRUE(Run.Ok) << "benchmark failed: " << B.Name;
  EXPECT_TRUE(T.vm().errors().empty())
      << B.Name << " first error: " << T.vm().errors().front();
}

INSTANTIATE_TEST_SUITE_P(AllEight, MacroBenchmarkTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const auto &Info) {
                           std::string N =
                               macroBenchmarks()[Info.param].Name;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(MacroCompetitionTest, BusyCompetitionStillCompletes) {
  TestVm T(VmConfig::multiprocessor(2));
  setupMacroWorkload(T.vm());
  T.vm().startInterpreters();
  forkCompetitors(T.vm(), 4, busyProcessSource(), "BusyGroup");
  TimedRun Run =
      runMacroBenchmark(T.vm(), macroBenchmarks()[2], 0.2, 180.0);
  terminateCompetitors(T.vm(), "BusyGroup");
  EXPECT_TRUE(Run.Ok);
  EXPECT_GT(T.vm().display().submittedCount(), 0u)
      << "busy processes must contend for the display";
}

TEST(MacroCompetitionTest, IdleCompetitionStillCompletes) {
  TestVm T(VmConfig::multiprocessor(2));
  setupMacroWorkload(T.vm());
  T.vm().startInterpreters();
  forkCompetitors(T.vm(), 4, idleProcessSource(), "IdleGroup");
  TimedRun Run =
      runMacroBenchmark(T.vm(), macroBenchmarks()[2], 0.2, 180.0);
  terminateCompetitors(T.vm(), "IdleGroup");
  EXPECT_TRUE(Run.Ok);
}

TEST(TimedRunTest, CpuTimeIsBoundedByWallTime) {
  TestVm T(VmConfig::multiprocessor(2));
  T.vm().startInterpreters();
  TimedRun R = runTimedWorkload(
      T.vm(), "| n | n := 0. 1 to: 200000 do: [:i | n := n + 1]", 120.0);
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.CpuSec, 0.0);
  // Attributed processor time can never exceed elapsed time (plus timer
  // granularity slack).
  EXPECT_LE(R.CpuSec, R.WallSec * 1.25 + 0.01);
}

} // namespace
