//===-- tests/integration/ConfigMatrixTest.cpp - Table 3 policy matrix ----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3 as an executable matrix: every combination of the strategy
/// policies — method cache (serialized/replicated), free contexts
/// (serialized/replicated), allocation (serialized/replicated TLABs),
/// and MP support on/off — must run the same workload to the same answer.
///
//===----------------------------------------------------------------------===//

#include <tuple>

#include "TestVm.h"

using namespace mst;

namespace {

using Combo = std::tuple<MethodCacheKind, FreeContextKind, AllocatorKind,
                         bool /*MpSupport*/>;

class ConfigMatrixTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ConfigMatrixTest, WorkloadIsPolicyInvariant) {
  auto [Cache, FreeCtx, Alloc, Mp] = GetParam();
  VmConfig C = Mp ? VmConfig::multiprocessor(2) : VmConfig::baselineBS();
  C.CacheKind = Cache;
  C.FreeCtxKind = FreeCtx;
  C.Memory.Allocator = Alloc;
  C.Memory.EdenBytes = 512 * 1024; // force scavenges through every policy
  TestVm T(C);

  // A mixed workload touching sends, contexts, allocation, and GC.
  EXPECT_EQ(T.evalInt(
                "| c | c := OrderedCollection new. 1 to: 500 do: [:i | c "
                "add: i printString]. ^c inject: 0 into: [:a :s | a + s "
                "size]"),
            9 * 1 + 90 * 2 + 401 * 3); // digit counts of 1..500
  EXPECT_EQ(T.evalInt("^12 factorial // 11 factorial"), 12);
  EXPECT_TRUE(T.vm().errors().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ConfigMatrixTest,
    ::testing::Combine(
        ::testing::Values(MethodCacheKind::GlobalLocked,
                          MethodCacheKind::Replicated),
        ::testing::Values(FreeContextKind::Shared,
                          FreeContextKind::Replicated),
        ::testing::Values(AllocatorKind::Serialized, AllocatorKind::Tlab),
        ::testing::Bool()),
    [](const auto &Info) {
      // NOTE: no structured bindings here — the preprocessor would split
      // the macro argument on the commas inside the brackets.
      std::string N;
      N += std::get<0>(Info.param) == MethodCacheKind::GlobalLocked
               ? "LockedCache"
               : "ReplCache";
      N += std::get<1>(Info.param) == FreeContextKind::Shared
               ? "SharedCtx"
               : "ReplCtx";
      N += std::get<2>(Info.param) == AllocatorKind::Serialized
               ? "SerialAlloc"
               : "TlabAlloc";
      N += std::get<3>(Info.param) ? "Mp" : "NoMp";
      return N;
    });

/// Table 1 in executable form: the structural relations between the
/// Smalltalk level and the interpreter level.
TEST(LayersTest, ProcessAndInterpreterRelationships) {
  VmConfig C = VmConfig::multiprocessor(3);
  TestVm T(C);
  T.vm().startInterpreters();

  // "Execution process is ... lightweight process": one V process per
  // interpreter, statically assigned to the kernel's processors.
  EXPECT_EQ(T.vm().kernel().numProcesses(), 3u);
  EXPECT_EQ(T.vm().kernel().numProcessors(), C.Processors);

  // "Compiled code consists of byte code ... resides in object memory":
  // a CompiledMethod's bytecodes are an image-level ByteArray.
  EXPECT_TRUE(T.evalBool(
      "^(Point compiledMethodAt: #x) literals class == Array"));
  EXPECT_TRUE(T.evalBool("^(Point compiledMethodAt: #x) class == "
                         "CompiledMethod"));

  // "Execution scheduler is ... ProcessorScheduler": Smalltalk Processes
  // queue on the image-visible Processor object.
  unsigned Sig = T.vm().createHostSignal();
  T.vm().forkDoIt("nil hostSignal: " + std::to_string(Sig), 5, "probe");
  EXPECT_TRUE(T.vm().waitHostSignal(Sig, 1, 20.0));
}

} // namespace
