//===-- tests/objmem/SafepointTest.cpp - Stop-the-world rendezvous --------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "objmem/Safepoint.h"
#include "vkernel/Delay.h"

using namespace mst;

namespace {

TEST(SafepointTest, SoloCoordinatorStopsAndResumes) {
  Safepoint Sp;
  Sp.registerMutator();
  EXPECT_FALSE(Sp.pollNeeded());
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  EXPECT_EQ(Sp.pauseCount(), 1u);
  Sp.unregisterMutator();
}

TEST(SafepointTest, MutatorsParkAtPolls) {
  Safepoint Sp;
  Sp.registerMutator(); // coordinator (this thread)

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Iterations{0};
  std::thread Mutator([&] {
    Sp.registerMutator();
    while (!Stop.load()) {
      if (Sp.pollNeeded())
        Sp.pollSlow();
      Iterations.fetch_add(1);
    }
    Sp.unregisterMutator();
  });

  // Let it spin, then stop the world: the mutator must stall.
  while (Iterations.load() < 1000)
    vkDelay(100);
  ASSERT_TRUE(Sp.requestStopTheWorld());
  // requestStopTheWorld returning true means every mutator is parked, so
  // the iteration counter must be frozen — a counter identity, not a
  // wall-clock bound, so arbitrary (sanitizer) slowdowns can't flake it.
  uint64_t At = Iterations.load();
  for (int I = 0; I < 1000; ++I)
    std::this_thread::yield();
  EXPECT_EQ(Iterations.load(), At) << "mutator ran during the pause";
  Sp.resume();
  while (Iterations.load() < At + 1000)
    vkDelay(100);
  Stop.store(true);
  Mutator.join();
  Sp.unregisterMutator();
}

TEST(SafepointTest, BlockedRegionsCountAsSafe) {
  Safepoint Sp;
  Sp.registerMutator();

  std::atomic<bool> Entered{false}, Release{false};
  std::thread Sleeper([&] {
    Sp.registerMutator();
    {
      BlockedRegion Region(Sp);
      Entered.store(true);
      while (!Release.load())
        vkDelay(100);
      // Leaving the region must wait out any pause in progress.
    }
    Sp.unregisterMutator();
  });
  while (!Entered.load())
    vkDelay(100);
  // The sleeper never polls, but the stop must succeed anyway.
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  Release.store(true);
  Sleeper.join();
  Sp.unregisterMutator();
}

TEST(SafepointTest, ReentrantBlockedRegionsStaySafe) {
  // A blocked region nested inside a blocked region (e.g. a wait inside a
  // wait): both levels count the thread safe, and leaving unwinds in
  // order without corrupting the safe-mutator count.
  Safepoint Sp;
  Sp.registerMutator();

  std::atomic<bool> Inner{false}, Release{false};
  std::thread Sleeper([&] {
    Sp.registerMutator();
    {
      BlockedRegion Outer(Sp);
      {
        BlockedRegion Nested(Sp);
        Inner.store(true);
        while (!Release.load())
          vkDelay(100);
      }
    }
    Sp.unregisterMutator();
  });
  while (!Inner.load())
    vkDelay(100);
  // Two pauses back to back while the sleeper sits in the nested region.
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  Release.store(true);
  Sleeper.join();
  EXPECT_EQ(Sp.pauseCount(), 2u);
  EXPECT_EQ(Sp.mutatorCount(), 1u);
  // The count must be balanced: a third pause still works.
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  Sp.unregisterMutator();
}

TEST(SafepointTest, RacingCoordinatorsExactlyOneWinsEachRound) {
  // Two threads released simultaneously into requestStopTheWorld: one
  // becomes coordinator, the loser parks as safe and is told to retry.
  Safepoint Sp;
  constexpr int Rounds = 20;
  std::atomic<int> Wins{0}, Losses{0};
  std::atomic<int> Ready{0};
  std::atomic<int> Round{-1};
  auto Racer = [&](int Id) {
    Sp.registerMutator();
    for (int R = 0; R < Rounds; ++R) {
      Ready.fetch_add(1);
      while (Round.load() < R) {
        if (Sp.pollNeeded())
          Sp.pollSlow();
        std::this_thread::yield();
      }
      if (Sp.requestStopTheWorld()) {
        Wins.fetch_add(1);
        Sp.resume();
      } else {
        Losses.fetch_add(1);
      }
    }
    (void)Id;
    Sp.unregisterMutator();
  };
  std::thread A(Racer, 0), B(Racer, 1);
  for (int R = 0; R < Rounds; ++R) {
    while (Ready.load() < 2 * (R + 1))
      std::this_thread::yield();
    Round.store(R); // both racers enter the request together
  }
  A.join();
  B.join();
  EXPECT_EQ(Wins.load() + Losses.load(), 2 * Rounds);
  EXPECT_GT(Wins.load(), 0);
  EXPECT_EQ(Sp.pauseCount(), static_cast<uint64_t>(Wins.load()));
  EXPECT_EQ(Sp.mutatorCount(), 0u);
  EXPECT_FALSE(Sp.pollNeeded());
}

TEST(SafepointTest, MutatorRegisteringMidRendezvousIsGathered) {
  // A thread registers while a pause is pending. The rendezvous must not
  // complete without it — and must complete once it reaches its first
  // poll (mutators always poll before touching the heap).
  Safepoint Sp;
  Sp.registerMutator(); // coordinator

  std::atomic<bool> SpinnerUp{false}, Stop{false};
  std::thread Spinner([&] {
    Sp.registerMutator();
    SpinnerUp.store(true);
    while (!Stop.load()) {
      if (Sp.pollNeeded())
        Sp.pollSlow();
    }
    Sp.unregisterMutator();
  });
  while (!SpinnerUp.load())
    vkDelay(100);

  std::atomic<bool> LateParked{false};
  std::thread Late([&] {
    // Wait for the global flag: the pause is pending by then.
    while (!Sp.pollNeeded())
      std::this_thread::yield();
    Sp.registerMutator();
    // First poll parks us until the pause completes.
    if (Sp.pollNeeded())
      Sp.pollSlow();
    LateParked.store(true);
    Sp.unregisterMutator();
  });

  ASSERT_TRUE(Sp.requestStopTheWorld());
  // World is stopped. The late mutator either registered before we won
  // (then it is parked in its first poll) or registers afterwards and
  // parks at that poll until resume. Either way resume() releases it.
  Sp.resume();
  Late.join();
  EXPECT_TRUE(LateParked.load());
  Stop.store(true);
  Spinner.join();
  EXPECT_EQ(Sp.pauseCount(), 1u);
  EXPECT_EQ(Sp.mutatorCount(), 1u);
  Sp.unregisterMutator();
}

TEST(SafepointTest, CompetingRequestersSerialize) {
  Safepoint Sp;
  constexpr unsigned N = 4;
  std::atomic<unsigned> Coordinated{0};
  std::atomic<unsigned> Deferred{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < N; ++I) {
    Ts.emplace_back([&] {
      Sp.registerMutator();
      for (int R = 0; R < 50; ++R) {
        if (Sp.pollNeeded())
          Sp.pollSlow();
        if (Sp.requestStopTheWorld()) {
          Coordinated.fetch_add(1);
          Sp.resume();
        } else {
          Deferred.fetch_add(1); // someone else's pause ran
        }
      }
      Sp.unregisterMutator();
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Coordinated.load() + Deferred.load(), N * 50);
  EXPECT_GT(Coordinated.load(), 0u);
  EXPECT_EQ(Sp.pauseCount(), Coordinated.load());
}

} // namespace
