//===-- tests/objmem/SafepointTest.cpp - Stop-the-world rendezvous --------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "objmem/Safepoint.h"
#include "vkernel/Delay.h"

using namespace mst;

namespace {

TEST(SafepointTest, SoloCoordinatorStopsAndResumes) {
  Safepoint Sp;
  Sp.registerMutator();
  EXPECT_FALSE(Sp.pollNeeded());
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  EXPECT_EQ(Sp.pauseCount(), 1u);
  Sp.unregisterMutator();
}

TEST(SafepointTest, MutatorsParkAtPolls) {
  Safepoint Sp;
  Sp.registerMutator(); // coordinator (this thread)

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Iterations{0};
  std::thread Mutator([&] {
    Sp.registerMutator();
    while (!Stop.load()) {
      if (Sp.pollNeeded())
        Sp.pollSlow();
      Iterations.fetch_add(1);
    }
    Sp.unregisterMutator();
  });

  // Let it spin, then stop the world: the mutator must stall.
  while (Iterations.load() < 1000)
    vkDelay(100);
  ASSERT_TRUE(Sp.requestStopTheWorld());
  uint64_t At = Iterations.load();
  vkDelay(20000);
  // A few iterations may land between the flag and the park; the mutator
  // must not still be running free.
  EXPECT_LE(Iterations.load(), At + 2);
  Sp.resume();
  while (Iterations.load() < At + 1000)
    vkDelay(100);
  Stop.store(true);
  Mutator.join();
  Sp.unregisterMutator();
}

TEST(SafepointTest, BlockedRegionsCountAsSafe) {
  Safepoint Sp;
  Sp.registerMutator();

  std::atomic<bool> Entered{false}, Release{false};
  std::thread Sleeper([&] {
    Sp.registerMutator();
    {
      BlockedRegion Region(Sp);
      Entered.store(true);
      while (!Release.load())
        vkDelay(100);
      // Leaving the region must wait out any pause in progress.
    }
    Sp.unregisterMutator();
  });
  while (!Entered.load())
    vkDelay(100);
  // The sleeper never polls, but the stop must succeed anyway.
  ASSERT_TRUE(Sp.requestStopTheWorld());
  Sp.resume();
  Release.store(true);
  Sleeper.join();
  Sp.unregisterMutator();
}

TEST(SafepointTest, CompetingRequestersSerialize) {
  Safepoint Sp;
  constexpr unsigned N = 4;
  std::atomic<unsigned> Coordinated{0};
  std::atomic<unsigned> Deferred{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < N; ++I) {
    Ts.emplace_back([&] {
      Sp.registerMutator();
      for (int R = 0; R < 50; ++R) {
        if (Sp.pollNeeded())
          Sp.pollSlow();
        if (Sp.requestStopTheWorld()) {
          Coordinated.fetch_add(1);
          Sp.resume();
        } else {
          Deferred.fetch_add(1); // someone else's pause ran
        }
      }
      Sp.unregisterMutator();
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Coordinated.load() + Deferred.load(), N * 50);
  EXPECT_GT(Coordinated.load(), 0u);
  EXPECT_EQ(Sp.pauseCount(), Coordinated.load());
}

} // namespace
