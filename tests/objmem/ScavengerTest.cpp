//===-- tests/objmem/ScavengerTest.cpp - Generation Scavenging ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include <gtest/gtest.h>

#include "objmem/ObjectMemory.h"
#include "support/SplitMix64.h"

using namespace mst;

namespace {

/// Raw object-memory fixture with one registered external root cell.
class ScavengerTest : public ::testing::Test {
protected:
  ScavengerTest() : OM(config()) {
    OM.registerMutator("test");
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    FakeClass = OM.allocateOldPointers(Nil, 0);
    OM.addRootWalker([this](const ObjectMemory::OopVisitor &V) {
      for (Oop &R : Roots)
        V(&R);
    });
  }
  ~ScavengerTest() override { OM.unregisterMutator(); }

  static MemoryConfig config() {
    MemoryConfig C;
    C.EdenBytes = 256 * 1024;
    C.SurvivorBytes = 128 * 1024;
    return C;
  }

  Oop newObj(uint32_t Slots) { return OM.allocatePointers(FakeClass, Slots); }

  ObjectMemory OM;
  Oop Nil, FakeClass;
  std::vector<Oop> Roots = std::vector<Oop>(8);
};

TEST_F(ScavengerTest, RootedObjectSurvivesAndMoves) {
  Oop O = newObj(3);
  O.object()->slots()[0] = Oop::fromSmallInt(99);
  ObjectHeader *Before = O.object();
  Roots[0] = O;
  OM.scavengeNow();
  EXPECT_NE(Roots[0].object(), Before) << "survivor must have moved";
  EXPECT_EQ(Roots[0].object()->slots()[0].smallInt(), 99);
  EXPECT_FALSE(Roots[0].object()->isOld());
  EXPECT_EQ(Roots[0].object()->Age, 1);
}

TEST_F(ScavengerTest, UnrootedObjectIsCollected) {
  newObj(64);
  size_t Used = OM.edenUsed();
  EXPECT_GT(Used, 0u);
  OM.scavengeNow();
  ScavengeStats S = OM.statsSnapshot();
  EXPECT_EQ(S.Scavenges, 1u);
  EXPECT_EQ(S.ObjectsCopied + S.ObjectsTenured, 0u);
  EXPECT_EQ(OM.edenUsed(), 0u);
}

TEST_F(ScavengerTest, GraphsSurviveWithIdentityPreserved) {
  // A <-> B shared structure: identity (sharing) must survive the copy.
  Oop A = newObj(2);
  Roots[0] = A;
  Oop B = newObj(2);
  OM.storePointer(Roots[0], 0, B);
  OM.storePointer(Roots[0], 1, B);
  OM.scavengeNow();
  ObjectHeader *NewA = Roots[0].object();
  EXPECT_EQ(NewA->slots()[0], NewA->slots()[1]) << "sharing broken";
  EXPECT_NE(NewA->slots()[0], B) << "stale pointer survived";
}

TEST_F(ScavengerTest, CyclesSurvive) {
  Oop A = newObj(1);
  Roots[0] = A;
  Oop B = newObj(1);
  OM.storePointer(Roots[0], 0, B);
  OM.storePointer(B, 0, Roots[0]);
  OM.scavengeNow();
  ObjectHeader *NewA = Roots[0].object();
  Oop NewB = NewA->slots()[0];
  EXPECT_EQ(NewB.object()->slots()[0].object(), NewA);
}

TEST_F(ScavengerTest, TenuringAfterThresholdScavenges) {
  Oop O = newObj(2);
  Roots[0] = O;
  EXPECT_FALSE(Roots[0].object()->isOld());
  OM.scavengeNow(); // age 1
  EXPECT_FALSE(Roots[0].object()->isOld());
  OM.scavengeNow(); // age 2 = TenureAge -> old space
  EXPECT_TRUE(Roots[0].object()->isOld());
  ObjectHeader *Tenured = Roots[0].object();
  OM.scavengeNow(); // old objects do not move again
  EXPECT_EQ(Roots[0].object(), Tenured);
}

TEST_F(ScavengerTest, RememberedSetKeepsYoungAliveFromOld) {
  Oop Old = OM.allocateOldPointers(FakeClass, 1);
  Oop Young = newObj(1);
  Young.object()->slots()[0] = Oop::fromSmallInt(7);
  OM.storePointer(Old, 0, Young);
  // No root references Young except through Old.
  OM.scavengeNow();
  Oop Moved = ObjectMemory::fetchPointer(Old, 0);
  EXPECT_TRUE(Moved.isPointer());
  EXPECT_EQ(Moved.object()->slots()[0].smallInt(), 7);
}

TEST_F(ScavengerTest, RememberedFlagClearsWhenNoYoungRefsRemain) {
  Oop Old = OM.allocateOldPointers(FakeClass, 1);
  Oop Young = newObj(1);
  OM.storePointer(Old, 0, Young);
  EXPECT_TRUE(Old.object()->isRemembered());
  // Overwrite with a SmallInteger: after the next scavenge the old object
  // no longer refers to the young generation.
  OM.storePointer(Old, 0, Oop::fromSmallInt(1));
  OM.scavengeNow();
  EXPECT_FALSE(Old.object()->isRemembered());
  EXPECT_EQ(OM.rememberedSet().size(), 0u);
}

TEST_F(ScavengerTest, TenuredObjectWithYoungRefsEntersRememberedSet) {
  // Age an object holding a young ref until it tenures; the promoted
  // object must land in the entry table so its young ref stays traced.
  Oop Holder = newObj(1);
  Roots[0] = Holder;
  OM.scavengeNow();
  OM.scavengeNow(); // Holder tenures
  ASSERT_TRUE(Roots[0].object()->isOld());
  Oop Young = newObj(1);
  Young.object()->slots()[0] = Oop::fromSmallInt(5);
  OM.storePointer(Roots[0], 0, Young);
  OM.scavengeNow();
  Oop Kept = ObjectMemory::fetchPointer(Roots[0], 0);
  EXPECT_EQ(Kept.object()->slots()[0].smallInt(), 5);
  EXPECT_TRUE(Roots[0].object()->isRemembered());
}

TEST_F(ScavengerTest, ContextsScanOnlyToStackPointer) {
  // Slots beyond the context's sp hold stale junk and must not be
  // treated as live references.
  Oop Ctx = OM.allocateContextObject(FakeClass, 10);
  Roots[0] = Ctx;
  Oop Live = newObj(1);
  Live.object()->slots()[0] = Oop::fromSmallInt(11);
  Oop Dead = newObj(1);
  ObjectHeader *H = Ctx.object();
  H->slots()[ContextSpSlotIndex] = Oop::fromSmallInt(4);
  H->slots()[3] = Live;  // within sp=4: live
  H->slots()[4] = Live;
  H->slots()[7] = Dead;  // beyond sp: dead junk
  OM.scavengeNow();
  ObjectHeader *N = Roots[0].object();
  EXPECT_EQ(N->slots()[3].object()->slots()[0].smallInt(), 11);
  ScavengeStats S = OM.statsSnapshot();
  // Exactly two live objects: the context and Live (shared slot).
  EXPECT_EQ(S.ObjectsCopied + S.ObjectsTenured, 2u);
}

TEST_F(ScavengerTest, ByteObjectsAreNotScanned) {
  Oop Bytes = OM.allocateBytes(FakeClass, 64);
  // Fill with bit patterns that would look like pointers.
  for (int I = 0; I < 64; ++I)
    Bytes.object()->bytes()[I] = 0xAB;
  Roots[0] = Bytes;
  OM.scavengeNow();
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Roots[0].object()->bytes()[I], 0xAB);
}

TEST_F(ScavengerTest, HandlesAreUpdated) {
  Oop O = newObj(1);
  O.object()->slots()[0] = Oop::fromSmallInt(13);
  Handle H(OM.handles(), O);
  OM.scavengeNow();
  EXPECT_NE(H.get(), O) << "handle should hold the relocated oop";
  EXPECT_EQ(H.get().object()->slots()[0].smallInt(), 13);
}

TEST_F(ScavengerTest, PreScavengeHooksRun) {
  int Calls = 0;
  OM.addPreScavengeHook([&Calls] { ++Calls; });
  OM.scavengeNow();
  OM.scavengeNow();
  EXPECT_EQ(Calls, 2);
}

TEST_F(ScavengerTest, SurvivorOverflowTenuresEarly) {
  // More live data than a survivor space holds: overflow must tenure, not
  // crash or drop objects. Runs on its own thread: mutator registration
  // is per-thread and the fixture already registered this one.
  std::thread([] {
  MemoryConfig C;
  C.EdenBytes = 512 * 1024;
  C.SurvivorBytes = 8 * 1024;
  ObjectMemory Small(C);
  Small.registerMutator("overflow");
  Oop N2 = Small.allocateOldPointers(Oop(), 0);
  Small.setNil(N2);
  Oop Cls = Small.allocateOldPointers(N2, 0);
  std::vector<Oop> Keep(1, Oop());
  Small.addRootWalker([&Keep](const ObjectMemory::OopVisitor &V) {
    for (Oop &R : Keep)
      V(&R);
  });
  // A linked list of ~64KB live data.
  Oop HeadObj = Small.allocatePointers(Cls, 16);
  Keep[0] = HeadObj;
  for (int I = 0; I < 500; ++I) {
    Oop Next = Small.allocatePointers(Cls, 16);
    Small.storePointer(Next, 0, Keep[0]);
    Keep[0] = Next;
  }
  Small.scavengeNow();
  ScavengeStats S = Small.statsSnapshot();
  EXPECT_GT(S.ObjectsTenured, 0u) << "overflow should tenure early";
  // The whole chain is intact: 501 links ending at nil.
  int Count = 0;
  for (Oop Cur = Keep[0]; Cur.isPointer() && Cur != N2 && Count < 1000;
       Cur = ObjectMemory::fetchPointer(Cur, 0))
    ++Count;
  EXPECT_EQ(Count, 501);
  Small.unregisterMutator();
  }).join();
}

/// Parallel scavenging must preserve exactly the same live set as serial.
class ParallelScavengeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelScavengeTest, RandomGraphSurvivesIntact) {
  std::thread([this] {
  MemoryConfig C;
  C.EdenBytes = 1024 * 1024;
  C.SurvivorBytes = 1024 * 1024;
  C.ScavengeWorkers = GetParam();
  ObjectMemory OM(C);
  OM.registerMutator("par");
  Oop Nil = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(Nil);
  Oop Cls = OM.allocateOldPointers(Nil, 0);
  std::vector<Oop> Roots(4, Oop());
  OM.addRootWalker([&Roots](const ObjectMemory::OopVisitor &V) {
    for (Oop &R : Roots)
      V(&R);
  });

  // Build a random graph of 2000 nodes, each tagged with its index.
  SplitMix64 Rng(99);
  std::vector<Oop> Nodes;
  for (int I = 0; I < 2000; ++I) {
    Oop N = OM.allocatePointers(Cls, 4);
    N.object()->slots()[3] = Oop::fromSmallInt(I);
    Nodes.push_back(N);
    // Note: allocation cannot scavenge here (eden is large enough), so
    // holding raw oops in Nodes is safe within this test.
  }
  for (int I = 0; I < 2000; ++I)
    for (int E = 0; E < 3; ++E)
      OM.storePointer(Nodes[I], E,
                      Nodes[Rng.nextBelow(2000)]);
  Roots[0] = Nodes[0];
  Roots[1] = Nodes[1999];

  OM.scavengeNow();

  // Walk the surviving graph: every reachable node keeps its tag and
  // valid edges.
  std::vector<Oop> Stack = {Roots[0], Roots[1]};
  std::vector<Oop> Seen;
  size_t Checked = 0;
  while (!Stack.empty() && Checked < 10000) {
    Oop N = Stack.back();
    Stack.pop_back();
    bool Dup = false;
    for (Oop S : Seen)
      if (S == N)
        Dup = true;
    if (Dup)
      continue;
    Seen.push_back(N);
    ++Checked;
    ASSERT_TRUE(N.isPointer());
    Oop Tag = N.object()->slots()[3];
    ASSERT_TRUE(Tag.isSmallInt());
    ASSERT_GE(Tag.smallInt(), 0);
    ASSERT_LT(Tag.smallInt(), 2000);
    for (int E = 0; E < 3 && Seen.size() < 200; ++E)
      Stack.push_back(N.object()->slots()[E]);
  }
  EXPECT_GE(Seen.size(), 2u);
  OM.unregisterMutator();
  }).join();
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelScavengeTest,
                         ::testing::Values(1u, 2u, 4u));

} // namespace
