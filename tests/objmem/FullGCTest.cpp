//===-- tests/objmem/FullGCTest.cpp - Mark-sweep full collection ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include <gtest/gtest.h>

#include "TestVm.h"
#include "objmem/ObjectMemory.h"
#include "obs/Telemetry.h"

using namespace mst;

namespace {

/// Raw object-memory fixture with registered external root cells.
class FullGCTest : public ::testing::Test {
protected:
  FullGCTest() : OM(config()) {
    OM.registerMutator("test");
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    FakeClass = OM.allocateOldPointers(Nil, 0);
    OM.addRootWalker([this](const ObjectMemory::OopVisitor &V) {
      for (Oop &R : Roots)
        V(&R);
    });
  }
  ~FullGCTest() override { OM.unregisterMutator(); }

  static MemoryConfig config() {
    MemoryConfig C;
    C.EdenBytes = 256 * 1024;
    C.SurvivorBytes = 128 * 1024;
    C.OldChunkBytes = 256 * 1024;
    C.FullGcWorkers = 2;
    return C;
  }

  Oop oldObj(uint32_t Slots) {
    return OM.allocateOldPointers(FakeClass, Slots);
  }

  ObjectMemory OM;
  Oop Nil, FakeClass;
  std::vector<Oop> Roots = std::vector<Oop>(8);
};

TEST_F(FullGCTest, CollectsUnreachableOldCycles) {
  // An unreachable cycle in old space defeats any refcount-style scheme
  // and the scavenger never looks at old space at all: only the full
  // collector can reclaim it.
  Oop A = oldObj(2);
  Oop B = oldObj(2);
  OM.storePointer(A, 0, B);
  OM.storePointer(B, 0, A);
  size_t UsedBefore = OM.oldSpaceUsed();

  OM.fullCollect();

  EXPECT_LT(OM.oldSpaceUsed(), UsedBefore) << "cycle should be reclaimed";
  EXPECT_GT(OM.oldSpaceFree(), 0u) << "swept bytes should hit free lists";
  FullGcStats F = OM.fullGcStatsSnapshot();
  EXPECT_EQ(F.Collections, 1u);
  EXPECT_GE(F.SweptBytes, 2 * (sizeof(ObjectHeader) + 2 * sizeof(Oop)));
  std::string Error;
  EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;
}

TEST_F(FullGCTest, PreservesReachableAndRebuildsRemset) {
  // A live old holder of a young object must stay in the rebuilt entry
  // table; a dead remembered old object must be dropped from it.
  Oop Holder = oldObj(1);
  Oop Young = OM.allocatePointers(FakeClass, 1);
  Young.object()->slots()[0] = Oop::fromSmallInt(7);
  OM.storePointer(Holder, 0, Young);
  Roots[0] = Holder;

  Oop DeadHolder = oldObj(1);
  OM.storePointer(DeadHolder, 0, OM.allocatePointers(FakeClass, 1));
  ASSERT_TRUE(DeadHolder.object()->isRemembered());
  DeadHolder = Oop(); // now unreachable, but still in the entry table

  OM.fullCollect();

  EXPECT_TRUE(Roots[0].object()->isRemembered());
  EXPECT_EQ(OM.rememberedSet().size(), 1u)
      << "only the live holder may survive the rebuild";
  Oop Kept = ObjectMemory::fetchPointer(Roots[0], 0);
  ASSERT_TRUE(Kept.isPointer());
  EXPECT_FALSE(Kept.object()->isOld());
  EXPECT_EQ(Kept.object()->slots()[0].smallInt(), 7);
  std::string Error;
  EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;
}

TEST_F(FullGCTest, FreeListsSatisfyAllocations) {
  // Pin live objects on both sides of a dead one so its block cannot
  // coalesce; the next same-size allocation must reuse it exactly.
  Oop A = oldObj(16);
  Oop B = oldObj(16);
  Oop C = oldObj(16);
  Roots[0] = A;
  Roots[1] = C;
  ObjectHeader *Freed = B.object();
  B = Oop();
  size_t CapBefore = OM.oldSpaceCapacity();

  OM.fullCollect();
  EXPECT_GE(OM.oldSpaceFree(), sizeof(ObjectHeader) + 16 * sizeof(Oop));

  Oop D = oldObj(16);
  EXPECT_EQ(D.object(), Freed) << "allocation should reuse the swept block";
  EXPECT_EQ(OM.oldSpaceCapacity(), CapBefore) << "no new chunk needed";
  std::string Error;
  EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;
}

TEST_F(FullGCTest, UsedAccountingFallsAndRises) {
  size_t Baseline = OM.oldSpaceUsed();
  std::vector<ObjectHeader *> Garbage;
  for (int I = 0; I < 64; ++I)
    Garbage.push_back(oldObj(8).object());
  size_t Peak = OM.oldSpaceUsed();
  ASSERT_GT(Peak, Baseline);

  OM.fullCollect();
  EXPECT_LE(OM.oldSpaceUsed(), Baseline)
      << "used() must fall when garbage is swept";

  // Reuse raises it again without growing capacity.
  size_t Cap = OM.oldSpaceCapacity();
  for (int I = 0; I < 64; ++I)
    Roots[0] = oldObj(8); // all garbage except the last, which is rooted
  EXPECT_GT(OM.oldSpaceUsed(), Baseline);
  EXPECT_EQ(OM.oldSpaceCapacity(), Cap);
}

TEST_F(FullGCTest, VerifierCatchesCorruptFreeList) {
  Oop A = oldObj(16);
  Oop B = oldObj(16);
  Roots[0] = A;
  ObjectHeader *Dead = B.object();
  B = Oop();
  OM.fullCollect();
  ASSERT_GT(OM.oldSpaceFree(), 0u);
  std::string Error;
  ASSERT_TRUE(OM.verifyHeap(&Error)) << Error;

  // A stray store into swept memory must be caught by the zap check.
  reinterpret_cast<uint64_t *>(Dead + 1)[0] = 0x1234;
  EXPECT_FALSE(OM.verifyHeap(&Error));
  EXPECT_NE(Error.find("zap"), std::string::npos) << Error;
}

TEST_F(FullGCTest, TriggerHeuristicBoundsOldSpace) {
  // A workload that tenures cyclic garbage forever: with the trigger
  // armed, old space stays bounded; with full GC off, it only grows.
  // This is the issue's acceptance scenario.
  auto RunWorkload = [](bool FullGcOn) {
    size_t PeakOld = 0;
    std::thread([&PeakOld, FullGcOn] {
      MemoryConfig C;
      C.EdenBytes = 64 * 1024;
      C.SurvivorBytes = 64 * 1024;
      C.OldChunkBytes = 128 * 1024;
      C.TenureAge = 1; // every surviving object tenures immediately
      C.FullGcEnabled = FullGcOn;
      C.FullGcThresholdBytes = 512 * 1024;
      C.FullGcWorkers = 2;
      ObjectMemory OM(C);
      OM.registerMutator("tenure-pressure");
      Oop Nil = OM.allocateOldPointers(Oop(), 0);
      OM.setNil(Nil);
      Oop Cls = OM.allocateOldPointers(Nil, 0);
      std::vector<Oop> Window(256, Oop());
      OM.addRootWalker([&Window](const ObjectMemory::OopVisitor &V) {
        for (Oop &R : Window)
          V(&R);
      });
      for (int Round = 0; Round < 40; ++Round) {
        // Each pair is a cycle, rooted through the round's window. The
        // scavenge tenures the whole window (TenureAge=1); the eviction
        // then strands the cycles in old space, where only the full
        // collector can reclaim them.
        for (size_t I = 0; I < Window.size(); ++I) {
          Oop A = OM.allocatePointers(Cls, 8);
          Handle HA(OM.handles(), A);
          Oop B = OM.allocatePointers(Cls, 8);
          OM.storePointer(HA.get(), 0, B);
          OM.storePointer(B, 0, HA.get());
          Window[I] = HA.get();
        }
        OM.scavengeNow();
        for (Oop &W : Window)
          W = Oop();
        if (OM.oldSpaceUsed() > PeakOld)
          PeakOld = OM.oldSpaceUsed();
      }
      std::string Error;
      EXPECT_TRUE(OM.verifyHeap(&Error)) << Error;
      if (FullGcOn) {
        FullGcStats F = OM.fullGcStatsSnapshot();
        EXPECT_GE(F.Collections, 1u) << "trigger never fired";
        EXPECT_GT(F.SweptBytes, 0u);
      }
      OM.unregisterMutator();
    }).join();
    return PeakOld;
  };

  size_t BoundedPeak = RunWorkload(true);
  size_t UnboundedPeak = RunWorkload(false);
  // With the collector the peak hovers near the trigger; without it, the
  // tenured garbage accumulates far past it.
  EXPECT_LT(BoundedPeak, UnboundedPeak / 2)
      << "full GC failed to bound old-space growth (bounded peak "
      << BoundedPeak << ", unbounded " << UnboundedPeak << ")";
}

TEST_F(FullGCTest, TenuredBytesCounterTracksOldPressure) {
  uint64_t Before = 0, After = 0;
  for (const auto &[Name, V] : Telemetry::snapshot().Counters)
    if (Name == "gc.tenured.bytes")
      Before = V;
  // Tenure a rooted object (age reaches the threshold after two
  // scavenges with the default TenureAge=2).
  Roots[0] = OM.allocatePointers(FakeClass, 4);
  OM.scavengeNow();
  OM.scavengeNow();
  ASSERT_TRUE(Roots[0].object()->isOld());
  for (const auto &[Name, V] : Telemetry::snapshot().Counters)
    if (Name == "gc.tenured.bytes")
      After = V;
  EXPECT_GE(After - Before, sizeof(ObjectHeader) + 4 * sizeof(Oop));
}

TEST(FullGCPrimitive, FullCollectRunsAndReports) {
  TestVm T;
  EXPECT_EQ(T.evalInt("nil fullCollect. ^1"), 1);
  FullGcStats F;
  {
    // The primitive must have run a real collection.
    F = T.vm().memory().fullGcStatsSnapshot();
  }
  EXPECT_GE(F.Collections, 1u);
  std::string Report = T.vm().telemetryReport();
  EXPECT_NE(Report.find("gc.full.pause"), std::string::npos) << Report;
  EXPECT_NE(Report.find("gc.full.collections"), std::string::npos)
      << Report;
  std::string Stats = T.vm().statisticsReport();
  EXPECT_NE(Stats.find("full collections: 1"), std::string::npos) << Stats;
}

} // namespace
