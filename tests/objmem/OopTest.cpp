//===-- tests/objmem/OopTest.cpp - Tagged pointer encoding ----------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "objmem/ObjectHeader.h"
#include "objmem/Oop.h"
#include "support/SplitMix64.h"

using namespace mst;

namespace {

TEST(OopTest, NullOop) {
  Oop O;
  EXPECT_TRUE(O.isNull());
  EXPECT_FALSE(O.isSmallInt());
  EXPECT_FALSE(O.isPointer());
}

TEST(OopTest, SmallIntRoundTrip) {
  for (intptr_t V : {intptr_t(0), intptr_t(1), intptr_t(-1),
                     intptr_t(123456789), SmallIntMax, SmallIntMin}) {
    Oop O = Oop::fromSmallInt(V);
    EXPECT_TRUE(O.isSmallInt());
    EXPECT_FALSE(O.isPointer());
    EXPECT_EQ(O.smallInt(), V);
  }
}

/// Property sweep: random values round-trip through the tag encoding.
class OopPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OopPropertyTest, RandomSmallIntsRoundTrip) {
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 10000; ++I) {
    // Constrain to the representable 63-bit range.
    intptr_t V = static_cast<intptr_t>(Rng.next()) >> 1;
    Oop O = Oop::fromSmallInt(V);
    ASSERT_TRUE(O.isSmallInt());
    ASSERT_EQ(O.smallInt(), V);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OopPropertyTest,
                         ::testing::Values(3u, 17u, 2026u));

TEST(OopTest, PointerRoundTrip) {
  alignas(8) ObjectHeader H{};
  Oop O = Oop::fromObject(&H);
  EXPECT_TRUE(O.isPointer());
  EXPECT_FALSE(O.isSmallInt());
  EXPECT_EQ(O.object(), &H);
}

TEST(OopTest, IdentityComparison) {
  alignas(8) ObjectHeader A{}, B{};
  EXPECT_EQ(Oop::fromObject(&A), Oop::fromObject(&A));
  EXPECT_NE(Oop::fromObject(&A), Oop::fromObject(&B));
  EXPECT_NE(Oop::fromSmallInt(1), Oop::fromSmallInt(2));
  EXPECT_EQ(Oop::fromSmallInt(7), Oop::fromSmallInt(7));
}

TEST(OopTest, FitsSmallInt) {
  EXPECT_TRUE(fitsSmallInt(0));
  EXPECT_TRUE(fitsSmallInt(SmallIntMax));
  EXPECT_TRUE(fitsSmallInt(SmallIntMin));
  EXPECT_FALSE(fitsSmallInt(SmallIntMax + 1));
  EXPECT_FALSE(fitsSmallInt(SmallIntMin - 1));
}

TEST(ObjectHeaderTest, ForwardingEncoding) {
  alignas(8) ObjectHeader A{}, B{};
  A.setClassOop(Oop::fromObject(&B));
  EXPECT_FALSE(A.isForwarded());
  EXPECT_EQ(A.classOop().object(), &B);

  alignas(8) ObjectHeader Copy{};
  EXPECT_TRUE(A.tryForwardTo(&Copy));
  EXPECT_TRUE(A.isForwarded());
  EXPECT_EQ(A.forwardee(), &Copy);
  // Second forwarding attempt loses the race.
  alignas(8) ObjectHeader Other{};
  EXPECT_FALSE(A.tryForwardTo(&Other));
  EXPECT_EQ(A.forwardee(), &Copy);
}

TEST(ObjectHeaderTest, FlagOperations) {
  ObjectHeader H{};
  EXPECT_FALSE(H.isOld());
  EXPECT_FALSE(H.isRemembered());
  EXPECT_FALSE(H.isEscaped());
  H.setOld();
  H.setRemembered(true);
  H.setEscaped();
  EXPECT_TRUE(H.isOld() && H.isRemembered() && H.isEscaped());
  H.setRemembered(false);
  EXPECT_FALSE(H.isRemembered());
  EXPECT_TRUE(H.isOld() && H.isEscaped());
}

TEST(ObjectHeaderTest, SlotsForBytes) {
  EXPECT_EQ(slotsForBytes(0), 0u);
  EXPECT_EQ(slotsForBytes(1), 1u);
  EXPECT_EQ(slotsForBytes(8), 1u);
  EXPECT_EQ(slotsForBytes(9), 2u);
  EXPECT_EQ(slotsForBytes(16), 2u);
}

} // namespace
