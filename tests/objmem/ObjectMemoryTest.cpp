//===-- tests/objmem/ObjectMemoryTest.cpp - Allocation and barriers -------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include <gtest/gtest.h>

#include "objmem/ObjectMemory.h"

using namespace mst;

namespace {

/// Raw-memory fixture: no VM on top, classes faked with old objects.
class ObjectMemoryTest : public ::testing::Test {
protected:
  ObjectMemoryTest() : OM(MemoryConfig{}) {
    OM.registerMutator("test");
    // A fake nil and a fake class, both old.
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    FakeClass = OM.allocateOldPointers(Nil, 0);
  }
  ~ObjectMemoryTest() override { OM.unregisterMutator(); }

  ObjectMemory OM;
  Oop Nil, FakeClass;
};

TEST_F(ObjectMemoryTest, PointerObjectsAreNilFilled) {
  Oop O = OM.allocatePointers(FakeClass, 5);
  ObjectHeader *H = O.object();
  EXPECT_EQ(H->SlotCount, 5u);
  EXPECT_EQ(H->Format, ObjectFormat::Pointers);
  EXPECT_FALSE(H->isOld());
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(H->slots()[I], Nil);
  EXPECT_EQ(H->classOop(), FakeClass);
}

TEST_F(ObjectMemoryTest, ByteObjectsAreZeroFilled) {
  Oop O = OM.allocateBytes(FakeClass, 13);
  ObjectHeader *H = O.object();
  EXPECT_EQ(H->Format, ObjectFormat::Bytes);
  EXPECT_EQ(H->ByteLength, 13u);
  EXPECT_EQ(H->SlotCount, 2u); // 13 bytes -> 2 slots
  for (uint32_t I = 0; I < 13; ++I)
    EXPECT_EQ(H->bytes()[I], 0u);
}

TEST_F(ObjectMemoryTest, IdentityHashesAreAssigned) {
  Oop A = OM.allocatePointers(FakeClass, 1);
  Oop B = OM.allocatePointers(FakeClass, 1);
  EXPECT_NE(A.object()->Hash, B.object()->Hash);
}

TEST_F(ObjectMemoryTest, OldAllocationIsMarkedOld) {
  Oop O = OM.allocateOldPointers(FakeClass, 3);
  EXPECT_TRUE(O.object()->isOld());
  Oop B = OM.allocateOldBytes(FakeClass, 10);
  EXPECT_TRUE(B.object()->isOld());
  EXPECT_EQ(B.object()->ByteLength, 10u);
}

TEST_F(ObjectMemoryTest, WriteBarrierRemembersOldToYoung) {
  Oop Old = OM.allocateOldPointers(FakeClass, 2);
  Oop Young = OM.allocatePointers(FakeClass, 1);
  EXPECT_EQ(OM.rememberedSet().size(), 0u);
  OM.storePointer(Old, 0, Young);
  EXPECT_TRUE(Old.object()->isRemembered());
  EXPECT_EQ(OM.rememberedSet().size(), 1u);
  // Storing again does not duplicate the entry.
  OM.storePointer(Old, 1, Young);
  EXPECT_EQ(OM.rememberedSet().size(), 1u);
}

TEST_F(ObjectMemoryTest, BarrierIgnoresYoungHolders) {
  Oop YoungA = OM.allocatePointers(FakeClass, 1);
  Oop YoungB = OM.allocatePointers(FakeClass, 1);
  OM.storePointer(YoungA, 0, YoungB);
  EXPECT_EQ(OM.rememberedSet().size(), 0u);
}

TEST_F(ObjectMemoryTest, BarrierIgnoresOldValuesAndSmallInts) {
  Oop Old = OM.allocateOldPointers(FakeClass, 2);
  Oop OldVal = OM.allocateOldPointers(FakeClass, 0);
  OM.storePointer(Old, 0, OldVal);
  OM.storePointer(Old, 1, Oop::fromSmallInt(42));
  EXPECT_EQ(OM.rememberedSet().size(), 0u);
}

TEST_F(ObjectMemoryTest, StoringContextsMarksThemEscaped) {
  Oop Ctx = OM.allocateContextObject(FakeClass, 8);
  Ctx.object()->slots()[ContextSpSlotIndex] = Oop::fromSmallInt(2);
  EXPECT_FALSE(Ctx.object()->isEscaped());
  Oop Holder = OM.allocatePointers(FakeClass, 1);
  OM.storePointer(Holder, 0, Ctx);
  EXPECT_TRUE(Ctx.object()->isEscaped());
}

TEST_F(ObjectMemoryTest, NoEscapeStoreKeepsContextsRecyclable) {
  Oop Ctx = OM.allocateContextObject(FakeClass, 8);
  Ctx.object()->slots()[ContextSpSlotIndex] = Oop::fromSmallInt(2);
  Oop Holder = OM.allocatePointers(FakeClass, 1);
  OM.storePointerNoEscape(Holder, 0, Ctx);
  EXPECT_FALSE(Ctx.object()->isEscaped());
}

TEST_F(ObjectMemoryTest, HandlesAreLifo) {
  HandleStack &HS = OM.handles();
  Oop A = OM.allocatePointers(FakeClass, 1);
  {
    Handle H1(HS, A);
    {
      Handle H2(HS, Nil);
      EXPECT_EQ(HS.cells().size(), 2u);
    }
    EXPECT_EQ(HS.cells().size(), 1u);
    EXPECT_EQ(H1.get(), A);
  }
  EXPECT_TRUE(HS.cells().empty());
}

TEST_F(ObjectMemoryTest, OversizedAllocationFallsToOldSpace) {
  // Mutator registration is per-thread, so the second memory gets its
  // own thread.
  std::thread([&] {
    MemoryConfig C;
    C.EdenBytes = 64 * 1024;
    ObjectMemory Small(C);
    Small.registerMutator("small");
    Oop N2 = Small.allocateOldPointers(Oop(), 0);
    Small.setNil(N2);
    // A request bigger than eden/4 goes straight to old space.
    Oop Big = Small.allocatePointers(N2, 8192);
    EXPECT_TRUE(Big.object()->isOld());
    Small.unregisterMutator();
  }).join();
}

TEST_F(ObjectMemoryTest, EdenUsageGrowsAndStatsStartClean) {
  size_t Before = OM.edenUsed();
  OM.allocatePointers(FakeClass, 100);
  EXPECT_GT(OM.edenUsed(), Before);
  EXPECT_EQ(OM.statsSnapshot().Scavenges, 0u);
}

TEST(OldSpaceTest, GrowsByChunks) {
  OldSpace Old(4096, true);
  // Allocations larger than a chunk still succeed.
  uint8_t *P = Old.allocate(16384);
  ASSERT_NE(P, nullptr);
  uint8_t *Q = Old.allocate(64);
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(Old.used(), 16384u + 64u);
}

TEST(LinearSpaceTest, BumpAndReset) {
  LinearSpace S;
  S.init(1024);
  uint8_t *A = S.tryBumpAtomic(512);
  ASSERT_NE(A, nullptr);
  uint8_t *B = S.tryBumpAtomic(512);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(S.tryBumpAtomic(8), nullptr); // full
  EXPECT_TRUE(S.contains(A));
  EXPECT_EQ(S.used(), 1024u);
  S.reset();
  EXPECT_EQ(S.used(), 0u);
  EXPECT_NE(S.tryBumpAtomic(512), nullptr);
}

} // namespace
