//===-- tests/objmem/MemoryPressureTest.cpp - Recovery-ladder tests -------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-pressure recovery ladder under a heap ceiling: oversized
/// requests divert to old space instead of spinning, exhaustion walks
/// scavenge → full collection → bounded growth, every rung bumps its
/// telemetry counter, the low-space watermark fires edge-triggered, and a
/// whole VM surfaces exhaustion as a catchable OutOfMemoryError in the
/// allocating process while staying responsive.
///
//===----------------------------------------------------------------------===//

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "TestVm.h"
#include "objmem/ObjectMemory.h"
#include "vkernel/Chaos.h"

using namespace mst;

namespace {

uint64_t counterOf(const std::string &Name) {
  for (const auto &[N, V] : Telemetry::snapshot().Counters)
    if (N == Name)
      return V;
  return 0;
}

/// Raw-memory fixture with a caller-chosen configuration; registers the
/// test thread as a mutator and fakes nil + a class with old objects.
struct PressureHeap {
  explicit PressureHeap(const MemoryConfig &C) : OM(C) {
    OM.registerMutator("pressure-test");
    Nil = OM.allocateOldPointers(Oop(), 0);
    OM.setNil(Nil);
    FakeClass = OM.allocateOldPointers(Nil, 0);
  }
  ~PressureHeap() { OM.unregisterMutator(); }

  ObjectMemory OM;
  Oop Nil, FakeClass;
};

/// A small config with a tight ceiling: 64K eden, 32K survivors, 64K old
/// chunks, and 128K of old space under the ceiling.
MemoryConfig tinyCeilingConfig() {
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  C.OldChunkBytes = 64u * 1024;
  C.MaxHeapBytes = C.EdenBytes + 2 * C.SurvivorBytes + 128u * 1024;
  C.LowSpaceWatermarkBytes = 0; // Individual tests opt in.
  return C;
}

/// Deltas of the ladder counters across one test's allocations. The
/// registry aggregates by name across all live memories, so read deltas,
/// not absolutes.
struct LadderDeltas {
  uint64_t Scavenge0 = counterOf("mem.pressure.ladder.scavenge");
  uint64_t FullGc0 = counterOf("mem.pressure.ladder.fullgc");
  uint64_t Grow0 = counterOf("mem.pressure.ladder.grow");
  uint64_t Oom0 = counterOf("mem.pressure.ladder.oom");

  uint64_t scavenge() const {
    return counterOf("mem.pressure.ladder.scavenge") - Scavenge0;
  }
  uint64_t fullGc() const {
    return counterOf("mem.pressure.ladder.fullgc") - FullGc0;
  }
  uint64_t grow() const {
    return counterOf("mem.pressure.ladder.grow") - Grow0;
  }
  uint64_t oom() const {
    return counterOf("mem.pressure.ladder.oom") - Oom0;
  }
};

//===----------------------------------------------------------------------===//
// Oversized requests must never enter the scavenge-retry loop
//===----------------------------------------------------------------------===//

TEST(MemoryPressureTest, BiggerThanEdenAllocationDivertsToOldSpace) {
  // Regression: a request larger than eden used to spin forever in the
  // scavenge-retry loop — no number of scavenges can make it fit.
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  PressureHeap H(C);
  LadderDeltas D;
  Oop Big = H.OM.allocateBytes(H.FakeClass, 128u * 1024);
  ASSERT_FALSE(Big.isNull());
  EXPECT_TRUE(Big.object()->isOld());
  EXPECT_EQ(Big.object()->ByteLength, 128u * 1024);
  // The divert happened without a single pressure scavenge and without
  // counting the grow rung (nothing failed — the size alone diverted it).
  EXPECT_EQ(H.OM.statsSnapshot().Scavenges, 0u);
  EXPECT_EQ(D.scavenge(), 0u);
  EXPECT_EQ(D.grow(), 0u);
}

TEST(MemoryPressureTest, TlabRefillLargerThanEdenFallsBackToDirectBump) {
  // Regression: a TLAB refill size beyond eden's capacity used to make
  // every small allocation scavenge fruitlessly forever.
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  C.Allocator = AllocatorKind::Tlab;
  C.TlabBytes = 256u * 1024; // 4x eden: every refill must fail.
  PressureHeap H(C);
  Oop O = H.OM.allocatePointers(H.FakeClass, 4);
  ASSERT_FALSE(O.isNull());
  EXPECT_FALSE(O.object()->isOld());
  EXPECT_EQ(H.OM.statsSnapshot().Scavenges, 0u);
}

//===----------------------------------------------------------------------===//
// The ceiling and the ladder's rungs
//===----------------------------------------------------------------------===//

TEST(MemoryPressureTest, CeilingBoundsOldSpaceAndEndsInNullOop) {
  PressureHeap H(tinyCeilingConfig());
  LadderDeltas D;
  // Retain every allocation so neither the full-GC rung nor the growth
  // rung can ever recover; the ladder must bottom out at a null oop.
  std::vector<std::unique_ptr<Handle>> Live;
  bool SawNull = false;
  for (int I = 0; I < 20 && !SawNull; ++I) {
    Oop O = H.OM.allocateBytes(H.FakeClass, 32u * 1024);
    if (O.isNull())
      SawNull = true;
    else
      Live.push_back(std::make_unique<Handle>(H.OM.handles(), O));
  }
  EXPECT_TRUE(SawNull);
  EXPECT_GE(Live.size(), 2u); // The ceiling fits a few before refusing.
  // Old space never grew past its share of the ceiling.
  EXPECT_LE(H.OM.oldSpaceCapacity(), 128u * 1024);
  // The refusal ran the full-collection rung first and only then reported
  // out-of-memory.
  EXPECT_GE(D.fullGc(), 1u);
  EXPECT_GE(D.oom(), 1u);
  // The heap survives the refusal intact.
  std::string Err;
  EXPECT_TRUE(H.OM.verifyHeap(&Err)) << Err;
  while (!Live.empty())
    Live.pop_back(); // Handles are LIFO.
}

TEST(MemoryPressureTest, FullGcRungReclaimsDeadTenuredGarbage) {
  PressureHeap H(tinyCeilingConfig());
  LadderDeltas D;
  // Drop every allocation: each time old space fills, the full-collection
  // rung sweeps the dead tenured garbage and the allocation succeeds.
  for (int I = 0; I < 20; ++I) {
    Oop O = H.OM.allocateBytes(H.FakeClass, 32u * 1024);
    ASSERT_FALSE(O.isNull()) << "allocation " << I
                             << " failed although all prior garbage is dead";
  }
  EXPECT_GE(D.fullGc(), 1u);
  EXPECT_EQ(D.oom(), 0u);
  EXPECT_GE(H.OM.fullGcStatsSnapshot().Collections, 1u);
  std::string Err;
  EXPECT_TRUE(H.OM.verifyHeap(&Err)) << Err;
}

TEST(MemoryPressureTest, PressureScavengeRungRecyclesEden) {
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  PressureHeap H(C);
  LadderDeltas D;
  // Allocate several edens' worth of immediately dead objects: rung 1
  // scavenges recycle eden and every request stays young.
  for (int I = 0; I < 300; ++I) {
    Oop O = H.OM.allocateBytes(H.FakeClass, 1024);
    ASSERT_FALSE(O.isNull());
  }
  EXPECT_GE(H.OM.statsSnapshot().Scavenges, 2u);
  EXPECT_GE(D.scavenge(), 2u);
  EXPECT_EQ(D.oom(), 0u);
}

TEST(MemoryPressureTest, InjectedAllocFaultsWalkScavengeThenGrowRungs) {
  // With every eden attempt failing by injection, one allocation must walk
  // exactly three pressure scavenges, then divert into old space.
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  PressureHeap H(C);
  LadderDeltas D;
  chaos::armFail("alloc.fail", 1000, /*Seed=*/1);
  Oop O = H.OM.allocatePointers(H.FakeClass, 4);
  chaos::disarmFail();
  ASSERT_FALSE(O.isNull());
  EXPECT_TRUE(O.object()->isOld()); // Diverted, not eden-allocated.
  EXPECT_EQ(D.scavenge(), 3u);
  EXPECT_EQ(D.grow(), 1u);
  EXPECT_EQ(D.oom(), 0u);
  EXPECT_GT(chaos::failCount("alloc.fail"), 0u);
}

TEST(MemoryPressureTest, CeilingOvershootIsBoundedAndDrainsAfterRelease) {
  // Retained *small* objects reach the ceiling through tenuring, which
  // can refuse mid-evacuation — the scavenger then overshoots the
  // ceiling rather than wedge. The overshoot must stay bounded by the
  // young generation, the ladder must still end in an orderly null oop,
  // and releasing the data must let the rescue full collection drain the
  // overshoot so allocation works again.
  MemoryConfig C = tinyCeilingConfig();
  PressureHeap H(C);
  LadderDeltas D;
  std::vector<std::unique_ptr<Handle>> Live;
  bool SawNull = false;
  for (int I = 0; I < 100000 && !SawNull; ++I) {
    Oop O = H.OM.allocatePointers(H.FakeClass, 32);
    if (O.isNull())
      SawNull = true;
    else
      Live.push_back(std::make_unique<Handle>(H.OM.handles(), O));
  }
  EXPECT_TRUE(SawNull);
  EXPECT_GE(D.oom(), 1u);
  // Bounded overshoot: old space's 128K share, at most one young
  // generation evacuated past it, plus chunk-granularity slack — far
  // from unbounded growth.
  EXPECT_LE(H.OM.oldSpaceCapacity(),
            128u * 1024 + C.EdenBytes + 2 * C.SurvivorBytes +
                2 * C.OldChunkBytes);
  std::string Err;
  EXPECT_TRUE(H.OM.verifyHeap(&Err)) << Err;

  // Release everything: the rescue rung's full collection reclaims the
  // dead data (draining any overshoot) and the same heap serves a large
  // allocation again.
  while (!Live.empty())
    Live.pop_back(); // Handles are LIFO.
  Oop After = H.OM.allocateBytes(H.FakeClass, 32u * 1024);
  EXPECT_FALSE(After.isNull());
  EXPECT_LE(H.OM.oldSpaceUsed(), 128u * 1024);
  EXPECT_TRUE(H.OM.verifyHeap(&Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Low-space watermark
//===----------------------------------------------------------------------===//

TEST(MemoryPressureTest, LowSpaceCallbackFiresOncePerCrossing) {
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  C.OldChunkBytes = 64u * 1024;
  C.MaxHeapBytes = C.EdenBytes + 2 * C.SurvivorBytes + 256u * 1024;
  C.LowSpaceWatermarkBytes = 128u * 1024;
  PressureHeap H(C);
  int Fired = 0;
  H.OM.setLowSpaceCallback([&Fired] { ++Fired; });

  // Sink 6 x 24K of live old data (two per 64K chunk): headroom falls
  // below the 128K watermark. The check runs at scavenge end, not at
  // allocation.
  std::vector<std::unique_ptr<Handle>> Live;
  auto SinkLiveData = [&] {
    for (int I = 0; I < 6; ++I) {
      Oop O = H.OM.allocateBytes(H.FakeClass, 24u * 1024);
      ASSERT_FALSE(O.isNull());
      Live.push_back(std::make_unique<Handle>(H.OM.handles(), O));
    }
  };
  SinkLiveData();
  ASSERT_LT(H.OM.headroomBytes(), C.LowSpaceWatermarkBytes);
  EXPECT_EQ(Fired, 0); // Not yet: no scavenge has run.
  H.OM.scavengeNow();
  EXPECT_EQ(Fired, 1);
  // Still below the watermark: edge-triggered, so no repeat.
  H.OM.scavengeNow();
  EXPECT_EQ(Fired, 1);

  // Recovery re-arms the trigger...
  while (!Live.empty())
    Live.pop_back();
  H.OM.fullCollect();
  H.OM.scavengeNow(); // Sees the recovered headroom; re-arms.
  ASSERT_GE(H.OM.headroomBytes(), C.LowSpaceWatermarkBytes);
  EXPECT_EQ(Fired, 1);

  // ...so the next crossing fires again.
  SinkLiveData();
  H.OM.scavengeNow();
  EXPECT_EQ(Fired, 2);
  while (!Live.empty())
    Live.pop_back();
}

//===----------------------------------------------------------------------===//
// The whole VM: exhaustion is an error in one process, not a VM death
//===----------------------------------------------------------------------===//

TEST(MemoryPressureTest, RunawayAllocationSignalsLowSpaceThenRaisesOom) {
  // The acceptance scenario: under a tight MaxHeapBytes a runaway
  // allocator must observe, in order, (1) the low-space semaphore signal,
  // (2) a catchable OutOfMemoryError terminating only the allocating
  // process, and (3) a VM that still answers afterwards.
  VmConfig Config = VmConfig::multiprocessor(1);
  Config.Memory.EdenBytes = 1u << 20;
  Config.Memory.SurvivorBytes = 256u * 1024;
  Config.Memory.MaxHeapBytes = 48u << 20;
  Config.Memory.LowSpaceWatermarkBytes = 16u << 20;
  TestVm T(Config);

  // Register the low-space semaphore (primitive 65), then allocate
  // without bound: each lap retains a 512K array (oversized — lands in
  // old space) and churns eden with short-lived arrays so scavenges run
  // and the watermark is checked as headroom declines.
  Oop R = T.vm().compileAndRun("| sem all |\n"
                               "sem := Semaphore new.\n"
                               "Smalltalk at: #LowSem put: sem.\n"
                               "nil lowSpaceSemaphore: sem.\n"
                               "all := OrderedCollection new.\n"
                               "[true] whileTrue: [\n"
                               "  all add: (Array new: 65536).\n"
                               "  1 to: 50 do: [:i | Array new: 256]]");
  EXPECT_TRUE(R.isNull()) << "runaway allocation terminated without error";
  std::string AllErrors;
  for (const std::string &E : T.vm().errors())
    AllErrors += E + "\n";
  EXPECT_NE(AllErrors.find("OutOfMemoryError"), std::string::npos)
      << "errors were:\n"
      << AllErrors;

  // (1) happened before (2): the semaphore collected its excess signal
  // while the runaway process was still allocating.
  EXPECT_GE(T.evalInt("^(Smalltalk at: #LowSem) excessSignals"), 1);

  // (3) the VM remains responsive — the dead process released its
  // retained garbage, so ordinary evaluation proceeds.
  EXPECT_EQ(T.evalInt("^3 + 4"), 7);
  EXPECT_EQ(T.evalInt("| s | s := 0. 1 to: 100 do: [:i | s := s + i]. ^s"),
            5050);
}

} // namespace
