//===-- tests/support/FormatTest.cpp - Text formatting --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "support/Format.h"

using namespace mst;

namespace {

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.5, 2), "1.50");
  EXPECT_EQ(formatDouble(0.0, 0), "0");
  EXPECT_EQ(formatDouble(-3.14159, 3), "-3.142");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef"); // never truncates
  EXPECT_EQ(padRight("", 2), "  ");
}

TEST(FormatTest, TextTableAlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23456"});
  std::string Out = T.render();
  // Header, separator, two rows.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
  // First column left-aligned, second right-aligned.
  EXPECT_NE(Out.find("x       "), std::string::npos);
  EXPECT_NE(Out.find("    1"), std::string::npos);
  size_t Lines = 0;
  for (char C : Out)
    if (C == '\n')
      ++Lines;
  EXPECT_EQ(Lines, 4u);
}

TEST(FormatTest, TextTableWithoutHeader) {
  TextTable T;
  T.addRow({"a", "b"});
  EXPECT_EQ(T.render(), "a  b\n");
}

TEST(FormatTest, AsciiBar) {
  EXPECT_EQ(asciiBar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(asciiBar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(asciiBar(0.0, 1.0, 10), "");
  EXPECT_EQ(asciiBar(2.0, 1.0, 10), "##########"); // clamped
  EXPECT_EQ(asciiBar(1.0, 0.0, 10), "");           // degenerate max
}

} // namespace
