//===-- tests/support/StatsTest.cpp - Running statistics ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/SplitMix64.h"
#include "support/Stats.h"

using namespace mst;

namespace {

TEST(StatsTest, Empty) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, SingleSample) {
  RunningStats S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.mean(), 42.0);
  EXPECT_EQ(S.min(), 42.0);
  EXPECT_EQ(S.max(), 42.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, KnownSequence) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
  // Sample stddev of that sequence is sqrt(32/7).
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, PercentilesOnUniformDistribution) {
  RunningStats S;
  for (int I = 1; I <= 1000; ++I)
    S.add(static_cast<double>(I));
  // The backing histogram is log-linear with 16 sub-buckets, so the
  // relative quantile error is bounded (~6%); gate at 10%.
  EXPECT_NEAR(S.p50(), 500.0, 50.0);
  EXPECT_NEAR(S.p95(), 950.0, 95.0);
  EXPECT_NEAR(S.p99(), 990.0, 99.0);
  EXPECT_NEAR(S.percentile(100.0), 1000.0, 1.0);
}

TEST(StatsTest, PercentilesOnConstantAndSmallSamples) {
  RunningStats S;
  EXPECT_EQ(S.p50(), 0.0); // no samples
  for (int I = 0; I < 8; ++I)
    S.add(2.5);
  EXPECT_NEAR(S.p50(), 2.5, 0.25);
  EXPECT_NEAR(S.p99(), 2.5, 0.25);

  RunningStats One;
  One.add(7.0);
  EXPECT_NEAR(One.p50(), 7.0, 0.7);
  EXPECT_NEAR(One.p99(), 7.0, 0.7);
}

TEST(StatsTest, PercentilesOnSkewedDistribution) {
  // 99 fast samples and one slow outlier: p50 stays near the bulk while
  // p99+ surfaces the outlier — the pause-time-reporting use case.
  RunningStats S;
  for (int I = 0; I < 99; ++I)
    S.add(1.0);
  S.add(1000.0);
  EXPECT_NEAR(S.p50(), 1.0, 0.1);
  EXPECT_NEAR(S.percentile(100.0), 1000.0, 100.0);
  // Negative samples clamp to zero rather than corrupting the histogram.
  RunningStats Neg;
  Neg.add(-5.0);
  EXPECT_EQ(Neg.p50(), 0.0);
  EXPECT_EQ(Neg.min(), -5.0); // Welford min still sees the raw value
}

/// Property: Welford accumulation matches the two-pass reference on
/// random samples, across several seeds.
class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, MatchesTwoPassReference) {
  SplitMix64 Rng(GetParam());
  std::vector<double> Xs;
  RunningStats S;
  size_t N = 100 + Rng.nextBelow(400);
  for (size_t I = 0; I < N; ++I) {
    double X = Rng.nextDouble() * 2000.0 - 1000.0;
    Xs.push_back(X);
    S.add(X);
  }
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  double Mean = Sum / static_cast<double>(N);
  double Var = 0;
  for (double X : Xs)
    Var += (X - Mean) * (X - Mean);
  Var /= static_cast<double>(N - 1);
  EXPECT_EQ(S.count(), N);
  EXPECT_NEAR(S.mean(), Mean, 1e-9);
  EXPECT_NEAR(S.stddev(), std::sqrt(Var), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(SplitMixTest, DeterministicAcrossInstances) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMixTest, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

} // namespace
