//===-- tests/support/StatsTest.cpp - Running statistics ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/SplitMix64.h"
#include "support/Stats.h"

using namespace mst;

namespace {

TEST(StatsTest, Empty) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, SingleSample) {
  RunningStats S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.mean(), 42.0);
  EXPECT_EQ(S.min(), 42.0);
  EXPECT_EQ(S.max(), 42.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, KnownSequence) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
  // Sample stddev of that sequence is sqrt(32/7).
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

/// Property: Welford accumulation matches the two-pass reference on
/// random samples, across several seeds.
class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, MatchesTwoPassReference) {
  SplitMix64 Rng(GetParam());
  std::vector<double> Xs;
  RunningStats S;
  size_t N = 100 + Rng.nextBelow(400);
  for (size_t I = 0; I < N; ++I) {
    double X = Rng.nextDouble() * 2000.0 - 1000.0;
    Xs.push_back(X);
    S.add(X);
  }
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  double Mean = Sum / static_cast<double>(N);
  double Var = 0;
  for (double X : Xs)
    Var += (X - Mean) * (X - Mean);
  Var /= static_cast<double>(N - 1);
  EXPECT_EQ(S.count(), N);
  EXPECT_NEAR(S.mean(), Mean, 1e-9);
  EXPECT_NEAR(S.stddev(), std::sqrt(Var), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(SplitMixTest, DeterministicAcrossInstances) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMixTest, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

} // namespace
