//===-- tests/TestVm.h - Shared test fixture helpers ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suite: build a bootstrapped VM and evaluate
/// Smalltalk snippets with convenient assertions.
///
//===----------------------------------------------------------------------===//

#ifndef MST_TESTS_TESTVM_H
#define MST_TESTS_TESTVM_H

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "image/Bootstrap.h"
#include "vm/VirtualMachine.h"

namespace mst {

/// A bootstrapped VM for tests. Construct on the test's main thread.
class TestVm {
public:
  explicit TestVm(VmConfig Config = VmConfig::multiprocessor(2)) {
    VM = std::make_unique<VirtualMachine>(Config);
    bootstrapImage(*VM);
  }

  VirtualMachine &vm() { return *VM; }
  ObjectModel &om() { return VM->model(); }

  /// Evaluates \p Source; fails the test (with the VM error log) when the
  /// execution errored.
  Oop eval(const std::string &Source) {
    Oop R = VM->compileAndRun(Source);
    if (R.isNull()) {
      std::string All;
      for (const std::string &E : VM->errors())
        All += E + "\n";
      ADD_FAILURE() << "eval failed for: " << Source << "\nerrors:\n"
                    << All;
    }
    return R;
  }

  /// Evaluates \p Source and expects a SmallInteger result.
  intptr_t evalInt(const std::string &Source) {
    Oop R = eval(Source);
    if (!R.isSmallInt()) {
      ADD_FAILURE() << "expected SmallInteger from: " << Source << ", got "
                    << om().describe(R);
      return INTPTR_MIN;
    }
    return R.smallInt();
  }

  /// Evaluates \p Source and expects a String/Symbol result.
  std::string evalString(const std::string &Source) {
    Oop R = eval(Source);
    if (!R.isPointer() ||
        R.object()->Format != ObjectFormat::Bytes) {
      ADD_FAILURE() << "expected a string from: " << Source << ", got "
                    << om().describe(R);
      return "";
    }
    return ObjectModel::stringValue(R);
  }

  /// Evaluates \p Source and expects a Boolean result.
  bool evalBool(const std::string &Source) {
    Oop R = eval(Source);
    if (R == om().known().TrueObj)
      return true;
    if (R == om().known().FalseObj)
      return false;
    ADD_FAILURE() << "expected a Boolean from: " << Source << ", got "
                  << om().describe(R);
    return false;
  }

private:
  std::unique_ptr<VirtualMachine> VM;
};

} // namespace mst

#endif // MST_TESTS_TESTVM_H
