//===-- tests/serve/BatcherTest.cpp - Request batching unit tests ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestBatcher.h"

#include <thread>

#include <gtest/gtest.h>

using namespace mst;
using namespace mst::serve;

namespace {
QueuedRequest req(uint64_t Session, uint64_t Seq) {
  QueuedRequest Q;
  Q.SessionId = Session;
  Q.Seq = Seq;
  Q.Source = std::to_string(Seq);
  return Q;
}
} // namespace

TEST(RequestBatcher, DrainsEverythingQueuedAsOneBatchInFifoOrder) {
  RequestBatcher B;
  for (uint64_t I = 0; I < 5; ++I)
    ASSERT_TRUE(B.push(req(1, I)));
  EXPECT_EQ(B.depth(), 5u);

  Batch Out;
  ASSERT_TRUE(B.takeBatch(Out, 256));
  ASSERT_EQ(Out.size(), 5u);
  for (uint64_t I = 0; I < 5; ++I)
    EXPECT_EQ(Out[I].Seq, I);
  EXPECT_EQ(B.depth(), 0u);
}

TEST(RequestBatcher, MaxBatchSplits) {
  RequestBatcher B;
  for (uint64_t I = 0; I < 7; ++I)
    ASSERT_TRUE(B.push(req(1, I)));
  Batch Out;
  ASSERT_TRUE(B.takeBatch(Out, 4));
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0].Seq, 0u);
  ASSERT_TRUE(B.takeBatch(Out, 4));
  ASSERT_EQ(Out.size(), 3u); // remainder, still FIFO
  EXPECT_EQ(Out[0].Seq, 4u);
}

TEST(RequestBatcher, TakeBatchBlocksUntilPush) {
  RequestBatcher B;
  Batch Out;
  std::thread Producer([&] { B.push(req(9, 1)); });
  ASSERT_TRUE(B.takeBatch(Out, 256)); // blocks until the producer pushes
  Producer.join();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].SessionId, 9u);
}

TEST(RequestBatcher, CloseDrainsThenRefuses) {
  RequestBatcher B;
  ASSERT_TRUE(B.push(req(1, 0)));
  B.close();
  EXPECT_FALSE(B.push(req(1, 1))); // refused after close

  Batch Out;
  ASSERT_TRUE(B.takeBatch(Out, 256)); // pre-close request still delivered
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FALSE(B.takeBatch(Out, 256)); // closed and drained
  B.close();                           // idempotent
}

TEST(RequestBatcher, CloseWakesBlockedCourier) {
  RequestBatcher B;
  Batch Out;
  std::thread Closer([&] { B.close(); });
  EXPECT_FALSE(B.takeBatch(Out, 256));
  Closer.join();
}

TEST(RequestBatcher, OldestEnqueueNsTracksTheQueueFront) {
  RequestBatcher B;
  EXPECT_EQ(B.oldestEnqueueNs(), 0u); // empty queue: no waiting request

  QueuedRequest A = req(1, 0);
  A.EnqueueNs = 1000;
  QueuedRequest C = req(1, 1);
  C.EnqueueNs = 2000;
  ASSERT_TRUE(B.push(A));
  ASSERT_TRUE(B.push(C));
  EXPECT_EQ(B.oldestEnqueueNs(), 1000u); // FIFO front is the oldest

  Batch Out;
  ASSERT_TRUE(B.takeBatch(Out, 256));
  EXPECT_EQ(B.oldestEnqueueNs(), 0u); // drained
}
