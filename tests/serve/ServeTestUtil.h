//===-- tests/serve/ServeTestUtil.h - Serving test helpers ------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared serving-test plumbing: a bootstrapped base image built once per
/// test binary (bootstrap is the expensive step; every shard then boots
/// from this snapshot in milliseconds) and a ready-to-start ServerConfig.
///
//===----------------------------------------------------------------------===//

#ifndef MST_TESTS_SERVE_SERVETESTUTIL_H
#define MST_TESTS_SERVE_SERVETESTUTIL_H

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "image/Bootstrap.h"
#include "image/Snapshot.h"
#include "serve/Server.h"
#include "vm/VirtualMachine.h"

namespace mst {
namespace serve_test {

inline std::string makeTempDir() {
  char Buf[] = "/tmp/mst-serve-test-XXXXXX";
  const char *D = mkdtemp(Buf);
  EXPECT_NE(D, nullptr);
  return D ? D : "/tmp";
}

/// The prewarmed base image, bootstrapped once per test binary.
inline const std::string &baseImage() {
  static const std::string Path = [] {
    std::string P = makeTempDir() + "/base.image";
    VirtualMachine VM(VmConfig::multiprocessor(1));
    bootstrapImage(VM);
    std::string Error;
    if (!saveSnapshot(VM, P, Error)) {
      ADD_FAILURE() << "cannot build base image: " << Error;
      P.clear();
    }
    return P;
  }();
  return Path;
}

/// A server config sized for the test host: \p Shards shards booting
/// from the shared base image, checkpointing into \p DataDir.
inline serve::ServerConfig testServerConfig(unsigned Shards,
                                            const std::string &DataDir) {
  serve::ServerConfig C;
  C.Pool.Shards = Shards;
  C.Pool.BaseImage = baseImage();
  C.Pool.DataDir = DataDir;
  C.Pool.Vm = VmConfig::multiprocessor(1);
  C.DrainTimeoutSec = 60.0;
  return C;
}

} // namespace serve_test
} // namespace mst

#endif // MST_TESTS_SERVE_SERVETESTUTIL_H
