//===-- tests/serve/ServeChaosTest.cpp - Serving under fault storms -------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's stress suite: session churn and real traffic while
/// the `serve.shard.crash` fail point (or an admin kill storm) keeps
/// tearing shards down mid-batch. Invariants under fire:
///
///  - a crashed shard's queued requests answer ERR, never vanish;
///  - every other shard keeps serving while the victim reboots;
///  - the victim comes back from its last committed checkpoint and
///    serves again;
///  - the server survives the whole storm and still drains cleanly.
///
/// The CI `serve` lane reruns this binary under TSan with the fail point
/// armed from the environment (MST_CHAOS_SHARD_CRASH_PM).
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/ServeTestUtil.h"
#include "stress/StressSupport.h"
#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;
using namespace mst::serve_test;

namespace {

uint64_t restartTotal(const std::vector<Shard::Health> &H) {
  uint64_t N = 0;
  for (const auto &S : H)
    N += S.Restarts;
  return N;
}

/// Runs traffic through one churning session: connect, a handful of
/// evals, disconnect, repeat. Crash-window ERR responses are expected;
/// transport failures are not (the server must never drop a connection
/// because a *shard* died).
void churn(uint16_t Port, int Rounds, std::atomic<uint64_t> &Oks,
           std::atomic<uint64_t> &Errs, std::atomic<bool> &Failed) {
  for (int R = 0; R < Rounds && !Failed; ++R) {
    Client C;
    if (!C.connect(Port)) {
      Failed = true;
      return;
    }
    for (int I = 0; I < 8; ++I) {
      bool Ok = false;
      std::string Value;
      if (!C.eval(std::to_string(I) + " + " + std::to_string(R), Ok, Value,
                  240.0)) {
        Failed = true; // transport failure or timeout
        return;
      }
      if (Ok) {
        if (Value != std::to_string(I + R)) {
          ADD_FAILURE() << "wrong answer: " << Value;
          Failed = true;
          return;
        }
        ++Oks;
      } else {
        ++Errs; // caught a crash window
      }
    }
  }
}

TEST(ServeChaos, SessionChurnSurvivesShardCrashStorm) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Server S(Config);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  // Seed each shard's checkpoint so crash recovery has something
  // committed to reboot from.
  {
    Client C;
    ASSERT_TRUE(C.connect(S.port()));
    ASSERT_TRUE(C.sendLine("!checkpoint"));
    for (unsigned I = 0; I < Config.Pool.Shards; ++I) {
      std::string Line;
      ASSERT_TRUE(C.recvLine(Line, 240.0));
    }
  }

  std::atomic<uint64_t> Oks{0}, Errs{0};
  std::atomic<bool> Failed{false};
  uint64_t Crashes = 0;
  {
    // Schedule chaos + env-armed fail points (the CI serve lane exports
    // MST_CHAOS_SHARD_CRASH_PM); standalone runs arm the crash point
    // themselves. ~8% of requests crash their shard mid-batch — across
    // the ~100+ requests below, a crash-free (vacuous) run is vanishingly
    // unlikely.
    uint64_t Seed = chaosSeeds().front();
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    if (!std::getenv("MST_CHAOS_SHARD_CRASH_PM"))
      chaos::armFail("serve.shard.crash", 80, Seed);

    std::vector<std::thread> Workers;
    for (int W = 0; W < 3; ++W)
      Workers.emplace_back([&, W] {
        churn(S.port(), stressScale(6, 4) + W, Oks, Errs, Failed);
      });
    for (auto &T : Workers)
      T.join();
    Crashes = chaos::failCount("serve.shard.crash");
  } // chaos off and disarmed before the recovery checks below

  EXPECT_FALSE(Failed) << "a session saw a transport failure";
  EXPECT_GT(Oks.load(), 0u);

  // The storm must actually have crashed shards (otherwise this test
  // proves nothing) and every shard must be serving again.
  EXPECT_GT(Crashes, 0u);
  uint64_t Restarts = restartTotal(S.pool().health());
  EXPECT_GT(Restarts, 0u);

  // Post-storm: both shards answer fresh sessions.
  for (int I = 0; I < 2; ++I) {
    Client C;
    ASSERT_TRUE(C.connect(S.port()));
    bool Ok = false;
    std::string Value;
    ASSERT_TRUE(C.eval("6 * 7", Ok, Value, 240.0));
    EXPECT_TRUE(Ok) << Value;
    EXPECT_EQ(Value, "42");
  }
  for (const auto &H : S.pool().health())
    EXPECT_EQ(H.State, "serving");

  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

TEST(ServeChaos, StuckAbortEscalatesToShardReboot) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Config.Pool.AbortGraceMs = 300;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port())); // session 0 -> shard 0
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #S put: 7", Ok, Value, 240.0));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(C.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_TRUE(C.recvLine(Line, 240.0));
  }

  // Simulate a primitive that never reaches a bytecode boundary: the
  // abort cannot land, so after the grace period the watchdog escalates
  // and the shard walks the crash ladder instead of staying wedged.
  chaos::armFail("serve.abort.stuck", 1000, 42);
  ASSERT_TRUE(C.eval("@?deadline=200 [true] whileTrue.", Ok, Value,
                     240.0));
  chaos::disarmFail();
  EXPECT_FALSE(Ok);
  EXPECT_NE(Value.find("abort not honored"), std::string::npos) << Value;

  // The reboot restored the committed checkpoint and the shard serves.
  ASSERT_TRUE(C.eval("Smalltalk at: #S", Ok, Value, 240.0));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "7");

  auto Health = S.pool().health();
  EXPECT_EQ(Health[0].Restarts, 1u);
  EXPECT_EQ(Health[0].AbortsEscalated, 1u);
  EXPECT_EQ(Health[1].Restarts, 0u);
  for (const auto &H : Health)
    EXPECT_EQ(H.State, "serving");
  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

TEST(ServeChaos, RequestStallStormAbortsRunawaysAndKeepsServing) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Config.RequestDeadlineMs = 300;  // default deadline for every eval
  Config.Pool.AbortGraceMs = 2000; // aborts land; escalation is backup
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  {
    Client C;
    ASSERT_TRUE(C.connect(S.port()));
    ASSERT_TRUE(C.sendLine("!checkpoint"));
    for (unsigned I = 0; I < 2; ++I) {
      std::string Line;
      ASSERT_TRUE(C.recvLine(Line, 240.0));
    }
  }

  std::atomic<uint64_t> Oks{0}, Errs{0};
  std::atomic<bool> Failed{false};
  uint64_t Stalls = 0;
  {
    // The CI serve lane arms MST_CHAOS_REQUEST_STALL_PM (and optionally
    // MST_CHAOS_ABORT_STUCK_PM, exercising the escalation ladder);
    // standalone runs arm the stall point themselves: ~8% of evals are
    // rewritten into `[true] whileTrue.` runaways that must be aborted
    // by the deadline machinery, never wedging their shard.
    uint64_t Seed = chaosSeeds().front();
    SCOPED_TRACE(seedTag(Seed));
    ScopedChaos Chaos(Seed);
    if (!std::getenv("MST_CHAOS_REQUEST_STALL_PM"))
      chaos::armFail("serve.request.stall", 80, Seed);

    std::vector<std::thread> Workers;
    for (int W = 0; W < 3; ++W)
      Workers.emplace_back([&, W] {
        churn(S.port(), stressScale(6, 4) + W, Oks, Errs, Failed);
      });
    for (auto &T : Workers)
      T.join();
    Stalls = chaos::failCount("serve.request.stall");
  }

  EXPECT_FALSE(Failed) << "a session saw a transport failure or wedged";
  EXPECT_GT(Oks.load(), 0u);
  EXPECT_GT(Stalls, 0u) << "the storm never injected a runaway";
  EXPECT_GT(Errs.load(), 0u) << "stalled evals must answer ERR";

  // No shard is wedged: every shard serves fresh sessions, and the
  // deadline machinery (not luck) is what killed the runaways.
  uint64_t Expired = 0, Escalated = 0;
  for (const auto &H : S.pool().health()) {
    EXPECT_EQ(H.State, "serving");
    Expired += H.DeadlineExpired;
    Escalated += H.AbortsEscalated;
  }
  EXPECT_GT(Expired, 0u);
  if (std::getenv("MST_CHAOS_ABORT_STUCK_PM") && Stalls > 0) {
    EXPECT_GT(Escalated, 0u) << "stuck aborts must escalate, not wedge";
  }

  for (int I = 0; I < 2; ++I) {
    Client C;
    ASSERT_TRUE(C.connect(S.port()));
    bool Ok = false;
    std::string Value;
    ASSERT_TRUE(C.eval("6 * 7", Ok, Value, 240.0));
    EXPECT_TRUE(Ok) << Value;
    EXPECT_EQ(Value, "42");
  }
  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

// Satellite: the circuit breaker's half-open probe racing fresh deadline
// expiries. Runaway evals trip the breaker; while it is open/half-open,
// more runaways and good requests keep arriving, so probe completions and
// new expiries interleave arbitrarily. The breaker must keep cycling
// open -> half-open -> (closed | open) without ever wedging the shard
// queue: every request answers, and after the storm the shard serves.
TEST(ServeChaos, BreakerHalfOpenProbeRacesDeadlineExpiries) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.BreakerThreshold = 2;
  Config.BreakerOpenMs = 60; // reopen fast: many half-open windows
  Config.QueueBudget = 0;
  Config.Pool.AbortGraceMs = 10000; // aborts land; no reboots
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  std::atomic<uint64_t> Oks{0}, Timeouts{0}, Shed{0};
  std::atomic<bool> Failed{false};
  const int Workers = 3;
  const int Rounds = stressScale(8, 5);
  std::vector<std::thread> Pool;
  for (int W = 0; W < Workers; ++W)
    Pool.emplace_back([&, W] {
      Client C;
      if (!C.connect(S.port())) {
        Failed = true;
        return;
      }
      for (int R = 0; R < Rounds && !Failed; ++R) {
        bool Ok = false;
        std::string Value;
        // A runaway that will expire (feeding ConsecTimeouts and, when
        // it lands on a half-open probe, re-opening the breaker)...
        if (!C.eval("@?deadline=80 [true] whileTrue.", Ok, Value,
                    240.0)) {
          Failed = true;
          return;
        }
        if (!Ok && Value.find("RequestTimeout") != std::string::npos)
          ++Timeouts;
        else if (!Ok && Value.find("overloaded") != std::string::npos)
          ++Shed;
        // ...then a good request retried through the open window — its
        // attempt often *is* the half-open probe.
        if (!C.evalRetry(std::to_string(W) + " + " + std::to_string(R),
                         Ok, Value, 240.0, 10, 15)) {
          Failed = true;
          return;
        }
        if (Ok) {
          if (Value != std::to_string(W + R)) {
            ADD_FAILURE() << "wrong answer: " << Value;
            Failed = true;
            return;
          }
          ++Oks;
        } else if (Value.find("overloaded") != std::string::npos) {
          ++Shed; // breaker never gave way this round — legal
        }
      }
    });
  for (auto &T : Pool)
    T.join();

  EXPECT_FALSE(Failed) << "transport failure or a wedged request";
  EXPECT_GT(Oks.load(), 0u) << "the breaker never closed back";
  EXPECT_GT(Timeouts.load(), 0u) << "no expiries: the race never ran";
  EXPECT_GE(S.stats().BreakerOpen.value(), 1u) << "breaker never tripped";

  // The queue is not wedged and the breaker recloses: a retried request
  // succeeds, the shard never rebooted, and health converges to closed.
  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.evalRetry("6 * 7", Ok, Value, 240.0, 12, 30));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "42");
  auto Health = S.pool().health();
  EXPECT_EQ(Health[0].Restarts, 0u);
  EXPECT_EQ(Health[0].State, "serving");
  EXPECT_EQ(Health[0].QueueDepth, 0u);
  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

// The tentpole acceptance storm: journaled shards under a kill + torn-
// tail barrage, 1000 bound sessions each running seq'd increments on its
// own counter. The invariant under fire is exactly-once for every
// acknowledged request: at session end the counter equals the number of
// OK-acknowledged increments — a lost acknowledged write reads low, a
// double-applied replay reads high. Checkpoints run throughout, so
// truncation, the JPOS mark, and multi-generation replay all cycle under
// the same storm.
TEST(ServeChaos, JournaledKillAndTearStormLosesNoAcknowledgedRequest) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Config.Pool.Journal = true;
  Config.Pool.CheckpointEveryMs = 400; // truncation cycles mid-storm
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  const int Workers = 8;
  const int PerWorker = stressScale(125, 25); // 8 x 125 = 1000 sessions
  const int Increments = 3;
  std::atomic<bool> Failed{false};
  std::atomic<uint64_t> AckedTotal{0}, Sessions{0};

  uint64_t Seed = chaosSeeds().front();
  SCOPED_TRACE(seedTag(Seed));
  // CI lanes layer extra journal fault points on top via the
  // MST_CHAOS_JOURNAL_*_PM variables (armFailFromEnv). The tear drill
  // defaults on; an explicit MST_CHAOS_JOURNAL_TEAR_PM (including 0, for
  // the fsync-failure pass where tearing unsynced-but-written refusals
  // would be a genuine loss) takes over.
  chaos::armFailFromEnv(Seed);
  const char *TearEnv = std::getenv("MST_CHAOS_JOURNAL_TEAR_PM");
  const bool TearArmed =
      !TearEnv || std::strtoul(TearEnv, nullptr, 0) > 0;
  if (!TearEnv)
    chaos::armFail("journal.tear", 800, Seed); // tear tails on most reboots

  std::atomic<bool> StopKiller{false};
  std::thread Killer([&] {
    Client K;
    if (!K.connect(S.port()))
      return;
    bool Ok = false;
    std::string Value;
    unsigned Victim = 0;
    while (!StopKiller) {
      if (!K.eval("!kill " + std::to_string(Victim % 2), Ok, Value,
                  240.0))
        return;
      ++Victim;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  std::vector<std::thread> Pool;
  for (int W = 0; W < Workers; ++W)
    Pool.emplace_back([&, W] {
      for (int R = 0; R < PerWorker && !Failed; ++R) {
        uint64_t Id = 1000 + static_cast<uint64_t>(W) * 10000 +
                      static_cast<uint64_t>(R);
        std::string Var = "#J" + std::to_string(Id);
        Client C;
        if (!C.connect(S.port()) || !C.bindSession(Id)) {
          Failed = true;
          return;
        }
        bool Ok = false;
        std::string Value;
        if (!C.evalRetry("Smalltalk at: " + Var + " put: 0", Ok, Value,
                         240.0, 12, 10)) {
          Failed = true;
          return;
        }
        if (!Ok)
          continue; // init shed on every attempt: skip this session
        uint64_t Acked = 0;
        for (int I = 0; I < Increments; ++I) {
          if (!C.evalRetry("Smalltalk at: " + Var +
                               " put: (Smalltalk at: " + Var + ") + 1",
                           Ok, Value, 240.0, 12, 10)) {
            Failed = true;
            return;
          }
          if (Ok)
            ++Acked;
          // ERR (shed / crashed-out-of-batch) = not executed: the
          // convergence check below catches it if that ever lies.
        }
        if (!C.evalRetry("Smalltalk at: " + Var, Ok, Value, 240.0, 12,
                         10)) {
          Failed = true;
          return;
        }
        if (Ok && Value != std::to_string(Acked)) {
          ADD_FAILURE() << "client " << Id << ": acknowledged " << Acked
                        << " increments but counter reads " << Value;
          Failed = true;
          return;
        }
        AckedTotal += Acked;
        ++Sessions;
      }
    });
  for (auto &T : Pool)
    T.join();
  StopKiller = true;
  Killer.join();
  uint64_t Tears = chaos::failCount("journal.tear");
  chaos::disarmFail();

  EXPECT_FALSE(Failed) << "a session saw a transport failure";
  EXPECT_GT(Sessions.load(), 0u);
  EXPECT_GT(AckedTotal.load(), 0u);

  // The storm must actually have exercised the machinery.
  auto Health = S.pool().health();
  uint64_t Restarts = 0, Replayed = 0;
  for (const auto &H : Health) {
    Restarts += H.Restarts;
    Replayed += H.Replayed;
    EXPECT_EQ(H.State, "serving");
  }
  EXPECT_GT(Restarts, 0u) << "the kill storm never landed";
  EXPECT_GT(Replayed, 0u) << "no reboot ever replayed the journal";
  if (TearArmed && Restarts > 2) {
    EXPECT_GT(Tears, 0u) << "the tear drill never fired";
  }

  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

TEST(ServeChaos, AdminKillStormKeepsOtherShardServing) {
  std::string DataDir = makeTempDir();
  Server S(testServerConfig(2, DataDir));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  // Victim state on shard 0, committed; shard 1 serves throughout.
  Client Admin;
  ASSERT_TRUE(Admin.connect(S.port())); // session 0 -> shard 0
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(Admin.eval("Smalltalk at: #Survive put: 123", Ok, Value));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(Admin.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_TRUE(Admin.recvLine(Line, 240.0));
  }

  Client Other;
  ASSERT_TRUE(Other.connect(S.port())); // session 1 -> shard 1
  std::atomic<bool> StopTraffic{false};
  std::atomic<uint64_t> OtherOks{0};
  std::thread Traffic([&] {
    bool TOk = false;
    std::string TValue;
    while (!StopTraffic) {
      if (!Other.eval("2 + 3", TOk, TValue, 240.0))
        break;
      if (TOk && TValue == "5")
        ++OtherOks;
    }
  });

  // Kill shard 0 over and over; every reboot must restore #Survive.
  for (int Round = 0; Round < 3; ++Round) {
    ASSERT_TRUE(Admin.eval("!kill 0", Ok, Value, 240.0));
    EXPECT_TRUE(Ok) << Value;
    ASSERT_TRUE(Admin.eval("Smalltalk at: #Survive", Ok, Value, 240.0));
    ASSERT_TRUE(Ok) << Value;
    EXPECT_EQ(Value, "123");
  }
  StopTraffic = true;
  Traffic.join();

  EXPECT_GT(OtherOks.load(), 0u); // shard 1 served during the storm
  auto Health = S.pool().health();
  EXPECT_EQ(Health[0].Restarts, 3u);
  EXPECT_EQ(Health[1].Restarts, 0u);
  for (const auto &H : Health)
    EXPECT_EQ(H.State, "serving");

  S.stop();
  EXPECT_TRUE(S.waitStopped(240.0));
}

} // namespace
