//===-- tests/serve/ProtocolTest.cpp - Wire protocol unit tests -----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <gtest/gtest.h>

using namespace mst;
using namespace mst::serve;

TEST(ServeProtocol, EscapeRoundTrip) {
  std::string S = "a\nb\\c\rd";
  std::string E = escapeLine(S);
  EXPECT_EQ(E.find('\n'), std::string::npos);
  EXPECT_EQ(E.find('\r'), std::string::npos);
  EXPECT_EQ(unescapeLine(E), S);
  EXPECT_EQ(escapeLine(""), "");
  EXPECT_EQ(unescapeLine("plain"), "plain");
}

TEST(ServeProtocol, ParseEval) {
  Request R = parseRequestLine("3 + 4 * 2");
  EXPECT_EQ(R.K, Request::Kind::Eval);
  EXPECT_EQ(R.Source, "3 + 4 * 2");
  EXPECT_TRUE(R.Tag.empty());
}

TEST(ServeProtocol, ParseTaggedEval) {
  Request R = parseRequestLine("@t42 1 + 1");
  EXPECT_EQ(R.K, Request::Kind::Eval);
  EXPECT_EQ(R.Tag, "@t42"); // tags keep their sigil for the echo
  EXPECT_EQ(R.Source, "1 + 1");
}

TEST(ServeProtocol, ParseDeadlineOption) {
  Request R = parseRequestLine("@t7?deadline=50 3 + 4");
  EXPECT_EQ(R.K, Request::Kind::Eval);
  EXPECT_EQ(R.Tag, "@t7"); // the option is stripped from the echo tag
  EXPECT_EQ(R.DeadlineMs, 50u);
  EXPECT_EQ(R.Source, "3 + 4");

  // Anonymous deadline: `@?deadline=MS` carries no echo tag.
  Request A = parseRequestLine("@?deadline=120 1 + 1");
  EXPECT_EQ(A.K, Request::Kind::Eval);
  EXPECT_TRUE(A.Tag.empty());
  EXPECT_EQ(A.DeadlineMs, 120u);

  // No option: DeadlineMs stays 0 (server default applies).
  Request N = parseRequestLine("@t1 2 + 2");
  EXPECT_EQ(N.DeadlineMs, 0u);
}

TEST(ServeProtocol, ParseSeqOptionAndCombinations) {
  Request R = parseRequestLine("@t7?seq=12 3 + 4");
  EXPECT_EQ(R.K, Request::Kind::Eval);
  EXPECT_EQ(R.Tag, "@t7");
  EXPECT_TRUE(R.HasSeq);
  EXPECT_EQ(R.Seq, 12u);
  EXPECT_EQ(R.DeadlineMs, 0u);

  Request Both = parseRequestLine("@t7?deadline=50&seq=12 3 + 4");
  EXPECT_EQ(Both.K, Request::Kind::Eval);
  EXPECT_EQ(Both.Tag, "@t7");
  EXPECT_EQ(Both.DeadlineMs, 50u);
  EXPECT_TRUE(Both.HasSeq);
  EXPECT_EQ(Both.Seq, 12u);

  // Anonymous seq (the Client's evalRetry wire form).
  Request Anon = parseRequestLine("@?seq=3 1 + 1");
  EXPECT_EQ(Anon.K, Request::Kind::Eval);
  EXPECT_TRUE(Anon.Tag.empty());
  EXPECT_TRUE(Anon.HasSeq);
  EXPECT_EQ(Anon.Seq, 3u);

  // seq=0 is a legal explicit sequence number.
  Request Zero = parseRequestLine("@?seq=0 1 + 1");
  EXPECT_TRUE(Zero.HasSeq);
  EXPECT_EQ(Zero.Seq, 0u);

  // No option: HasSeq stays off.
  EXPECT_FALSE(parseRequestLine("@t1 2 + 2").HasSeq);

  EXPECT_EQ(parseRequestLine("@t7?seq= 1 + 1").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("@t7?seq=abc 1 + 1").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("@t7?deadline=50&nope=1 1 + 1").K,
            Request::Kind::Bad);
}

TEST(ServeProtocol, ParseSessionBind) {
  Request R = parseRequestLine("!session 41");
  EXPECT_EQ(R.K, Request::Kind::Session);
  EXPECT_EQ(R.SessionBind, 41u);
  Request T = parseRequestLine("@s !session 7");
  EXPECT_EQ(T.K, Request::Kind::Session);
  EXPECT_EQ(T.Tag, "@s");
  EXPECT_EQ(T.SessionBind, 7u);
  EXPECT_EQ(parseRequestLine("!session").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("!session x7").K, Request::Kind::Bad);
}

TEST(ServeProtocol, ParseDeadlineOptionMalformed) {
  EXPECT_EQ(parseRequestLine("@t7?deadline= 1 + 1").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("@t7?deadline=abc 1 + 1").K,
            Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("@t7?foo=1 1 + 1").K, Request::Kind::Bad);
  EXPECT_FALSE(parseRequestLine("@t7?foo=1 1 + 1").Error.empty());
}

TEST(ServeProtocol, ParseEscapedEvalSource) {
  // A multi-line doIt travels escaped and parses back to real newlines.
  Request R = parseRequestLine("| x |\\n x := 3.\\n ^x");
  EXPECT_EQ(R.K, Request::Kind::Eval);
  EXPECT_NE(R.Source.find('\n'), std::string::npos);
}

TEST(ServeProtocol, ParseAdmin) {
  EXPECT_EQ(parseRequestLine("!health").K, Request::Kind::Health);
  EXPECT_EQ(parseRequestLine("!checkpoint").K, Request::Kind::Checkpoint);
  EXPECT_EQ(parseRequestLine("!drain").K, Request::Kind::Drain);
  EXPECT_EQ(parseRequestLine("!quit").K, Request::Kind::Quit);
  Request K = parseRequestLine("!kill 3");
  EXPECT_EQ(K.K, Request::Kind::Kill);
  EXPECT_EQ(K.KillShard, 3u);
  Request T = parseRequestLine("@k !kill 0");
  EXPECT_EQ(T.K, Request::Kind::Kill);
  EXPECT_EQ(T.Tag, "@k");
}

TEST(ServeProtocol, ParseBad) {
  EXPECT_EQ(parseRequestLine("!kill").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("!kill x").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("!nosuch").K, Request::Kind::Bad);
  EXPECT_EQ(parseRequestLine("@tagonly").K, Request::Kind::Bad);
  EXPECT_FALSE(parseRequestLine("!nosuch").Error.empty());
}

TEST(ServeProtocol, ResponseRoundTrip) {
  bool Ok = false;
  std::string Tag, Value;
  ASSERT_TRUE(parseResponseLine("OK @t7 14", Ok, Tag, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Tag, "@t7");
  EXPECT_EQ(Value, "14");

  std::string Line = formatResponse(false, "@x", "boom\nbang");
  EXPECT_EQ(Line.back(), '\n');
  Line.pop_back();
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Tag, "@x");
  EXPECT_EQ(Value, "boom\nbang");

  EXPECT_FALSE(parseResponseLine("NOPE", Ok, Tag, Value));
  EXPECT_FALSE(parseResponseLine("", Ok, Tag, Value));
}

TEST(ServeProtocol, NextLineFraming) {
  std::string Buf = "one\r\ntwo\nthr";
  std::string Line;
  bool TooLong = false;
  ASSERT_TRUE(nextLine(Buf, Line, 1024, TooLong));
  EXPECT_EQ(Line, "one"); // \r stripped
  ASSERT_TRUE(nextLine(Buf, Line, 1024, TooLong));
  EXPECT_EQ(Line, "two");
  EXPECT_FALSE(nextLine(Buf, Line, 1024, TooLong));
  EXPECT_FALSE(TooLong);
  EXPECT_EQ(Buf, "thr"); // partial tail kept

  Buf += "ee\n";
  ASSERT_TRUE(nextLine(Buf, Line, 1024, TooLong));
  EXPECT_EQ(Line, "three");
}

TEST(ServeProtocol, NextLineTooLong) {
  std::string Buf(100, 'x'); // unterminated, past the cap
  std::string Line;
  bool TooLong = false;
  EXPECT_FALSE(nextLine(Buf, Line, 10, TooLong));
  EXPECT_TRUE(TooLong);
}
