//===-- tests/serve/JournalTest.cpp - Write-ahead journal unit tests ------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the per-shard write-ahead request journal: record
/// framing and round trips, torn-tail repair on reopen, logical-position
/// preservation across truncateBelow() compaction, the tearTail() chaos
/// hook, and the bounded DedupTable.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/Journal.h"
#include "serve/ServeTestUtil.h"

using namespace mst;
using namespace mst::serve;
using namespace mst::serve_test;

namespace {

std::vector<Journal::Entry> mustScan(const Journal &J, uint64_t From) {
  std::vector<Journal::Entry> Out;
  std::string Error;
  EXPECT_TRUE(J.scan(From, Out, Error)) << Error;
  return Out;
}

TEST(JournalTest, IntentOutcomeRoundTripAcrossReopen) {
  std::string Path = makeTempDir() + "/shard.journal";
  std::string Error;
  uint64_t Id1 = 0, Id2 = 0, Id3 = 0;
  {
    Journal J;
    ASSERT_TRUE(J.open(Path, Error)) << Error;
    ASSERT_TRUE(J.appendIntent(7, 1, true, "3 + 4", Id1, Error)) << Error;
    ASSERT_TRUE(J.appendIntent(7, 2, true, "#x printString", Id2, Error));
    ASSERT_TRUE(J.appendIntent(9, 0, false, "1/0", Id3, Error));
    ASSERT_TRUE(J.sync(Error)) << Error;
    ASSERT_TRUE(J.appendOutcome(Id1, 7, 1, true, Journal::Outcome::Executed,
                                true, "7", Error));
    ASSERT_TRUE(J.appendOutcome(Id3, 9, 0, false,
                                Journal::Outcome::TimedOut, false,
                                "RequestTimeout", Error));
    ASSERT_TRUE(J.sync(Error)) << Error;
  } // close; reopen must see everything

  Journal J;
  ASSERT_TRUE(J.open(Path, Error)) << Error;
  EXPECT_EQ(J.tornRepairs(), 0u);
  std::vector<Journal::Entry> E = mustScan(J, 0);
  ASSERT_EQ(E.size(), 3u);

  EXPECT_EQ(E[0].RecordId, Id1);
  EXPECT_EQ(E[0].ClientId, 7u);
  EXPECT_EQ(E[0].Seq, 1u);
  EXPECT_TRUE(E[0].HasSeq);
  EXPECT_EQ(E[0].Source, "3 + 4");
  EXPECT_EQ(E[0].Out, Journal::Outcome::Executed);
  EXPECT_TRUE(E[0].Ok);
  EXPECT_EQ(E[0].Value, "7");

  EXPECT_EQ(E[1].RecordId, Id2);
  EXPECT_EQ(E[1].Out, Journal::Outcome::None); // no outcome: torn/crash
  EXPECT_EQ(E[1].Source, "#x printString");

  EXPECT_EQ(E[2].RecordId, Id3);
  EXPECT_FALSE(E[2].HasSeq);
  EXPECT_EQ(E[2].Out, Journal::Outcome::TimedOut);
  EXPECT_FALSE(E[2].Ok);
  EXPECT_EQ(E[2].Value, "RequestTimeout");

  // New ids never collide with replayed ones.
  uint64_t Id4 = 0;
  ASSERT_TRUE(J.appendIntent(1, 0, false, "x", Id4, Error));
  EXPECT_GT(Id4, Id3);

  // Positions are monotonically increasing and scan(FromPos) honors them.
  EXPECT_LT(E[0].Pos, E[1].Pos);
  EXPECT_LT(E[1].Pos, E[2].Pos);
  std::vector<Journal::Entry> Tail = mustScan(J, E[1].Pos);
  ASSERT_EQ(Tail.size(), 3u); // Id2, Id3, Id4
  EXPECT_EQ(Tail[0].RecordId, Id2);
}

TEST(JournalTest, TornTailIsRepairedOnOpen) {
  std::string Path = makeTempDir() + "/shard.journal";
  std::string Error;
  uint64_t Id = 0;
  uint64_t GoodEnd = 0;
  {
    Journal J;
    ASSERT_TRUE(J.open(Path, Error)) << Error;
    ASSERT_TRUE(J.appendIntent(1, 0, false, "'whole record'", Id, Error));
    GoodEnd = J.bytes();
    ASSERT_TRUE(J.appendIntent(1, 0, false, "'this one tears'", Id, Error));
    ASSERT_TRUE(J.sync(Error));
  }
  // Tear the last record in half, like a power cut mid-write.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Data((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(Data.size(), GoodEnd + 4);
    std::ofstream OutF(Path, std::ios::binary | std::ios::trunc);
    OutF.write(Data.data(),
               static_cast<std::streamsize>(GoodEnd + 4));
  }

  Journal J;
  ASSERT_TRUE(J.open(Path, Error)) << Error;
  EXPECT_EQ(J.tornRepairs(), 1u);
  std::vector<Journal::Entry> E = mustScan(J, 0);
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0].Source, "'whole record'");

  // The repaired journal keeps appending cleanly.
  ASSERT_TRUE(J.appendIntent(2, 0, false, "'after repair'", Id, Error));
  ASSERT_TRUE(J.sync(Error));
  EXPECT_EQ(mustScan(J, 0).size(), 2u);
}

TEST(JournalTest, GarbageFileIsRecreatedNotFatal) {
  std::string Path = makeTempDir() + "/shard.journal";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "this is not a journal";
  }
  // A file shorter than the header is treated as torn and recreated.
  Journal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, Error)) << Error;
  EXPECT_GE(J.tornRepairs(), 1u);
  EXPECT_TRUE(mustScan(J, 0).empty());
}

TEST(JournalTest, TruncateBelowPreservesLogicalPositions) {
  std::string Path = makeTempDir() + "/shard.journal";
  std::string Error;
  Journal J;
  ASSERT_TRUE(J.open(Path, Error)) << Error;
  uint64_t Ids[4];
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(J.appendIntent(1, static_cast<uint64_t>(I), true,
                               "src" + std::to_string(I), Ids[I], Error));
  ASSERT_TRUE(J.sync(Error));
  std::vector<Journal::Entry> All = mustScan(J, 0);
  ASSERT_EQ(All.size(), 4u);
  uint64_t SizeBefore = J.bytes();

  // Compact away the first two records (a checkpoint covered them).
  uint64_t Mark = All[2].Pos;
  ASSERT_TRUE(J.truncateBelow(Mark, Error)) << Error;
  EXPECT_LT(J.bytes(), SizeBefore);

  // The survivors keep their ids AND their logical positions.
  std::vector<Journal::Entry> Kept = mustScan(J, 0);
  ASSERT_EQ(Kept.size(), 2u);
  EXPECT_EQ(Kept[0].RecordId, Ids[2]);
  EXPECT_EQ(Kept[0].Pos, All[2].Pos);
  EXPECT_EQ(Kept[1].RecordId, Ids[3]);
  EXPECT_EQ(Kept[1].Pos, All[3].Pos);

  // endPos is unchanged by compaction and appends continue past it.
  uint64_t End = J.endPos();
  EXPECT_GT(End, All[3].Pos);
  uint64_t Id = 0;
  ASSERT_TRUE(J.appendIntent(1, 9, true, "after", Id, Error));
  std::vector<Journal::Entry> After = mustScan(J, End);
  ASSERT_EQ(After.size(), 1u);
  EXPECT_EQ(After[0].Source, "after");

  // A reopen of the compacted file agrees about positions.
  J.close();
  Journal J2;
  ASSERT_TRUE(J2.open(Path, Error)) << Error;
  std::vector<Journal::Entry> Re = mustScan(J2, All[3].Pos);
  ASSERT_EQ(Re.size(), 2u);
  EXPECT_EQ(Re[0].RecordId, Ids[3]);

  // Truncating above the end is refused; at/below base is a no-op.
  EXPECT_FALSE(J2.truncateBelow(J2.endPos() + 999, Error));
  EXPECT_TRUE(J2.truncateBelow(0, Error));
}

TEST(JournalTest, TearTailOnlyCutsUnsyncedBytesAndSelfRepairs) {
  std::string Path = makeTempDir() + "/shard.journal";
  std::string Error;
  Journal J;
  ASSERT_TRUE(J.open(Path, Error)) << Error;
  uint64_t Id = 0;
  ASSERT_TRUE(J.appendIntent(1, 0, false, "'synced'", Id, Error));
  ASSERT_TRUE(J.sync(Error));

  // Nothing unsynced: the tear can't touch durable records.
  EXPECT_EQ(J.tearTail(256, 12345u), 0u);

  ASSERT_TRUE(J.appendIntent(1, 0, false, "'unsynced tail'", Id, Error));
  uint64_t Cut = J.tearTail(1u << 20, 12345u);
  EXPECT_GT(Cut, 0u);

  // After the tear the journal is immediately consistent: whole records
  // only, and appends keep working.
  std::vector<Journal::Entry> E = mustScan(J, 0);
  ASSERT_GE(E.size(), 1u);
  EXPECT_EQ(E[0].Source, "'synced'");
  ASSERT_TRUE(J.appendIntent(1, 0, false, "'post-tear'", Id, Error));
  ASSERT_TRUE(J.sync(Error));
  E = mustScan(J, 0);
  EXPECT_EQ(E.back().Source, "'post-tear'");
}

TEST(JournalTest, DedupTableCachesBoundsAndTracksInFlight) {
  DedupTable D(/*MaxClients=*/2, /*MaxPerClient=*/3);
  DedupTable::Response R;

  EXPECT_FALSE(D.lookup(1, 1, R));
  D.insert(1, 1, {true, false, "one"});
  ASSERT_TRUE(D.lookup(1, 1, R));
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Value, "one");

  // Re-insert overwrites (replay after crash records the same seq).
  D.insert(1, 1, {false, true, "timeout"});
  ASSERT_TRUE(D.lookup(1, 1, R));
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.TimedOut);

  // Per-client FIFO bound: seq 1 (oldest) falls out at the 4th insert.
  D.insert(1, 2, {true, false, "two"});
  D.insert(1, 3, {true, false, "three"});
  D.insert(1, 4, {true, false, "four"});
  EXPECT_FALSE(D.lookup(1, 1, R));
  EXPECT_TRUE(D.lookup(1, 4, R));
  EXPECT_EQ(D.size(), 3u);

  // Client FIFO bound: the 3rd client evicts the oldest client wholesale.
  D.insert(2, 1, {true, false, "c2"});
  D.insert(3, 1, {true, false, "c3"});
  EXPECT_FALSE(D.lookup(1, 4, R)) << "oldest client must be evicted";
  EXPECT_TRUE(D.lookup(2, 1, R));
  EXPECT_TRUE(D.lookup(3, 1, R));

  // In-flight tracking: second mark refused until cleared.
  EXPECT_TRUE(D.markInFlight(9, 1));
  EXPECT_FALSE(D.markInFlight(9, 1));
  EXPECT_TRUE(D.markInFlight(9, 2)); // distinct seq unaffected
  D.clearInFlight(9, 1);
  EXPECT_TRUE(D.markInFlight(9, 1));
}

} // namespace
