//===-- tests/serve/ServeTest.cpp - End-to-end serving tests --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the serving layer: a real Server (2 shards booted
/// from a shared base snapshot) serving real loopback TCP clients. Covers
/// the request/response protocol, shard pinning + state isolation, FIFO
/// pipelining, the admin surface, and crash/checkpoint recovery.
///
//===----------------------------------------------------------------------===//

#include <unistd.h>

#include <gtest/gtest.h>

#include "image/Snapshot.h"
#include "serve/Admin.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/ServeTestUtil.h"

using namespace mst;
using namespace mst::serve;
using namespace mst::serve_test;

namespace {

class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    DataDir = makeTempDir();
    S = std::make_unique<Server>(testServerConfig(2, DataDir));
    std::string Error;
    ASSERT_TRUE(S->start(Error)) << Error;
  }

  void TearDown() override {
    if (S)
      S->stop();
  }

  Client connect() {
    Client C;
    EXPECT_TRUE(C.connect(S->port()));
    return C;
  }

  std::string DataDir;
  std::unique_ptr<Server> S;
};

TEST_F(ServeTest, EvalRoundTrip) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("3 + 4 * 2", Ok, Value));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "14");
}

TEST_F(ServeTest, EvalErrorIsReported) {
  Client C = connect();
  bool Ok = true;
  std::string Value;
  ASSERT_TRUE(C.eval("this is ))) not smalltalk", Ok, Value));
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Value.empty());

  // The session survives an error and keeps serving.
  ASSERT_TRUE(C.eval("1 + 1", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "2");
}

TEST_F(ServeTest, TagsEchoOnResponses) {
  Client C = connect();
  ASSERT_TRUE(C.sendLine("@first 10 * 10"));
  std::string Line, Tag, Value;
  bool Ok = false;
  ASSERT_TRUE(C.recvLine(Line));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Tag, "@first");
  EXPECT_EQ(Value, "100");
}

TEST_F(ServeTest, SessionsPinToDistinctShardsAndImagesAreIsolated) {
  // Session ids are sequential, so with 2 shards consecutive sessions
  // land on different shards.
  Client A = connect();
  Client B = connect();
  bool Ok = false;
  std::string ShardA, ShardB, Value;
  ASSERT_TRUE(A.eval("Smalltalk at: #ShardId", Ok, ShardA));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(B.eval("Smalltalk at: #ShardId", Ok, ShardB));
  ASSERT_TRUE(Ok);
  EXPECT_NE(ShardA, ShardB);

  // A's global mutation is invisible in B's image...
  ASSERT_TRUE(A.eval("Smalltalk at: #Pin put: 777", Ok, Value));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(B.eval("Smalltalk includesKey: #Pin", Ok, Value));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "false");

  // ...but persists across A's own requests (same pinned image).
  ASSERT_TRUE(A.eval("Smalltalk at: #Pin", Ok, Value));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "777");
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrder) {
  Client C = connect();
  const int N = 20;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine("@r" + std::to_string(I) + " " +
                           std::to_string(I) + " + 1"));
  for (int I = 0; I < N; ++I) {
    std::string Line, Tag, Value;
    bool Ok = false;
    ASSERT_TRUE(C.recvLine(Line));
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Tag, "@r" + std::to_string(I)); // strict FIFO
    EXPECT_EQ(Value, std::to_string(I + 1));
  }
}

TEST_F(ServeTest, MultiLineSourceAndResult) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("| x |\nx := 5.\n^(x * x) printString", Ok, Value));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "25");
}

TEST_F(ServeTest, HealthReportsEveryShardServing) {
  Client C = connect();
  bool Ok = false;
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"shards\":[{\"id\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"state\":\"serving\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.requests\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.sessions.active\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.batch.size\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.latency\""), std::string::npos);
}

TEST_F(ServeTest, CheckpointWritesEveryShardImage) {
  Client C = connect();
  ASSERT_TRUE(C.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) { // one response per shard
    std::string Line, Tag, Value;
    bool Ok = false;
    ASSERT_TRUE(C.recvLine(Line, 120.0));
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    EXPECT_TRUE(Ok) << Value;
  }
  EXPECT_EQ(access(shardImagePath(DataDir, 0).c_str(), F_OK), 0);
  EXPECT_EQ(access(shardImagePath(DataDir, 1).c_str(), F_OK), 0);
}

TEST_F(ServeTest, KillRestartsShardFromLastCommittedCheckpoint) {
  Client C = connect(); // session 0 -> shard 0
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 42", Ok, Value));
  ASSERT_TRUE(Ok);

  // Commit #K=42, then mutate past the checkpoint.
  ASSERT_TRUE(C.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_TRUE(C.recvLine(Line, 120.0));
  }
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 99", Ok, Value));
  ASSERT_TRUE(Ok);

  // Crash this session's own shard. FIFO on the shard queue makes the
  // post-kill eval deterministic: it runs on the rebooted image.
  ASSERT_TRUE(C.eval("!kill 0", Ok, Value, 120.0));
  EXPECT_TRUE(Ok) << Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "42"); // the uncheckpointed 99 rolled back

  // Health shows the crash/recovery.
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"restarts\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"state\":\"serving\""), std::string::npos);
}

TEST_F(ServeTest, OtherShardKeepsServingWhileVictimReboots) {
  Client A = connect(); // shard 0
  Client B = connect(); // shard 1
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(B.sendLine("!kill 1")); // crash B's shard, don't wait
  for (int I = 0; I < 10; ++I) {
    ASSERT_TRUE(A.eval(std::to_string(I) + " + 1", Ok, Value, 120.0));
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Value, std::to_string(I + 1));
  }
  std::string Line;
  ASSERT_TRUE(B.recvLine(Line, 120.0)); // kill ack
  ASSERT_TRUE(B.eval("2 + 2", Ok, Value, 120.0));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "4"); // victim is back
}

TEST_F(ServeTest, QuitFlushesPipelinedResponsesFirst) {
  Client C = connect();
  const int N = 5;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine(std::to_string(I) + " + 0"));
  ASSERT_TRUE(C.sendLine("!quit"));
  int Evals = 0;
  bool SawBye = false;
  std::string Line, Tag, Value;
  bool Ok = false;
  // `bye` answers out of band; all N eval responses must still arrive
  // before the server closes the socket.
  while (C.recvLine(Line, 60.0)) {
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    if (Value == "bye")
      SawBye = true;
    else
      ++Evals;
  }
  EXPECT_EQ(Evals, N);
  EXPECT_TRUE(SawBye);
}

TEST_F(ServeTest, DrainStopsTheServerAndCheckpointsShards) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("!drain", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_TRUE(S->waitStopped(120.0));
  // The drain path checkpoints every shard on the way out.
  EXPECT_EQ(access(shardImagePath(DataDir, 0).c_str(), F_OK), 0);
  EXPECT_EQ(access(shardImagePath(DataDir, 1).c_str(), F_OK), 0);
}

TEST_F(ServeTest, ProtocolErrorsAnswerWithoutKillingTheServer) {
  Client C = connect();
  bool Ok = true;
  std::string Value;
  ASSERT_TRUE(C.eval("!kill 99", Ok, Value));
  EXPECT_FALSE(Ok);
  ASSERT_TRUE(C.eval("!nosuch", Ok, Value));
  EXPECT_FALSE(Ok);
  ASSERT_TRUE(C.eval("41 + 1", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "42");
}

} // namespace
