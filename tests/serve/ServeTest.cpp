//===-- tests/serve/ServeTest.cpp - End-to-end serving tests --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the serving layer: a real Server (2 shards booted
/// from a shared base snapshot) serving real loopback TCP clients. Covers
/// the request/response protocol, shard pinning + state isolation, FIFO
/// pipelining, the admin surface, and crash/checkpoint recovery.
///
//===----------------------------------------------------------------------===//

#include <unistd.h>

#include <chrono>

#include <gtest/gtest.h>

#include "image/Snapshot.h"
#include "serve/Admin.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/ServeTestUtil.h"
#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;
using namespace mst::serve_test;

namespace {

class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    DataDir = makeTempDir();
    S = std::make_unique<Server>(testServerConfig(2, DataDir));
    std::string Error;
    ASSERT_TRUE(S->start(Error)) << Error;
  }

  void TearDown() override {
    if (S)
      S->stop();
  }

  Client connect() {
    Client C;
    EXPECT_TRUE(C.connect(S->port()));
    return C;
  }

  std::string DataDir;
  std::unique_ptr<Server> S;
};

TEST_F(ServeTest, EvalRoundTrip) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("3 + 4 * 2", Ok, Value));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "14");
}

TEST_F(ServeTest, EvalErrorIsReported) {
  Client C = connect();
  bool Ok = true;
  std::string Value;
  ASSERT_TRUE(C.eval("this is ))) not smalltalk", Ok, Value));
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Value.empty());

  // The session survives an error and keeps serving.
  ASSERT_TRUE(C.eval("1 + 1", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "2");
}

TEST_F(ServeTest, TagsEchoOnResponses) {
  Client C = connect();
  ASSERT_TRUE(C.sendLine("@first 10 * 10"));
  std::string Line, Tag, Value;
  bool Ok = false;
  ASSERT_TRUE(C.recvLine(Line));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Tag, "@first");
  EXPECT_EQ(Value, "100");
}

TEST_F(ServeTest, SessionsPinToDistinctShardsAndImagesAreIsolated) {
  // Session ids are sequential, so with 2 shards consecutive sessions
  // land on different shards.
  Client A = connect();
  Client B = connect();
  bool Ok = false;
  std::string ShardA, ShardB, Value;
  ASSERT_TRUE(A.eval("Smalltalk at: #ShardId", Ok, ShardA));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(B.eval("Smalltalk at: #ShardId", Ok, ShardB));
  ASSERT_TRUE(Ok);
  EXPECT_NE(ShardA, ShardB);

  // A's global mutation is invisible in B's image...
  ASSERT_TRUE(A.eval("Smalltalk at: #Pin put: 777", Ok, Value));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(B.eval("Smalltalk includesKey: #Pin", Ok, Value));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "false");

  // ...but persists across A's own requests (same pinned image).
  ASSERT_TRUE(A.eval("Smalltalk at: #Pin", Ok, Value));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "777");
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrder) {
  Client C = connect();
  const int N = 20;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine("@r" + std::to_string(I) + " " +
                           std::to_string(I) + " + 1"));
  for (int I = 0; I < N; ++I) {
    std::string Line, Tag, Value;
    bool Ok = false;
    ASSERT_TRUE(C.recvLine(Line));
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Tag, "@r" + std::to_string(I)); // strict FIFO
    EXPECT_EQ(Value, std::to_string(I + 1));
  }
}

TEST_F(ServeTest, MultiLineSourceAndResult) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("| x |\nx := 5.\n^(x * x) printString", Ok, Value));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "25");
}

TEST_F(ServeTest, HealthReportsEveryShardServing) {
  Client C = connect();
  bool Ok = false;
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"shards\":[{\"id\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"state\":\"serving\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.requests\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.sessions.active\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.batch.size\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.latency\""), std::string::npos);
  // Overload-control surface: per-shard gate + deadline counters plus
  // the new telemetry instruments.
  EXPECT_NE(Json.find("\"breaker\":\"closed\""), std::string::npos);
  EXPECT_NE(Json.find("\"outstanding\":"), std::string::npos);
  EXPECT_NE(Json.find("\"oldest_queued_ms\":"), std::string::npos);
  EXPECT_NE(Json.find("\"deadline_expired\":"), std::string::npos);
  EXPECT_NE(Json.find("\"aborts\":"), std::string::npos);
  EXPECT_NE(Json.find("\"aborts_escalated\":"), std::string::npos);
  EXPECT_NE(Json.find("\"serve.queue.depth\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.queue.wait\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.shed\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.deadline.expired\""), std::string::npos);
}

TEST_F(ServeTest, CheckpointWritesEveryShardImage) {
  Client C = connect();
  ASSERT_TRUE(C.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) { // one response per shard
    std::string Line, Tag, Value;
    bool Ok = false;
    ASSERT_TRUE(C.recvLine(Line, 120.0));
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    EXPECT_TRUE(Ok) << Value;
  }
  EXPECT_EQ(access(shardImagePath(DataDir, 0).c_str(), F_OK), 0);
  EXPECT_EQ(access(shardImagePath(DataDir, 1).c_str(), F_OK), 0);
}

TEST_F(ServeTest, KillRestartsShardFromLastCommittedCheckpoint) {
  Client C = connect(); // session 0 -> shard 0
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 42", Ok, Value));
  ASSERT_TRUE(Ok);

  // Commit #K=42, then mutate past the checkpoint.
  ASSERT_TRUE(C.sendLine("!checkpoint"));
  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_TRUE(C.recvLine(Line, 120.0));
  }
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 99", Ok, Value));
  ASSERT_TRUE(Ok);

  // Crash this session's own shard. FIFO on the shard queue makes the
  // post-kill eval deterministic: it runs on the rebooted image.
  ASSERT_TRUE(C.eval("!kill 0", Ok, Value, 120.0));
  EXPECT_TRUE(Ok) << Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "42"); // the uncheckpointed 99 rolled back

  // Health shows the crash/recovery.
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"restarts\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"state\":\"serving\""), std::string::npos);
}

TEST_F(ServeTest, OtherShardKeepsServingWhileVictimReboots) {
  Client A = connect(); // shard 0
  Client B = connect(); // shard 1
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(B.sendLine("!kill 1")); // crash B's shard, don't wait
  for (int I = 0; I < 10; ++I) {
    ASSERT_TRUE(A.eval(std::to_string(I) + " + 1", Ok, Value, 120.0));
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Value, std::to_string(I + 1));
  }
  std::string Line;
  ASSERT_TRUE(B.recvLine(Line, 120.0)); // kill ack
  ASSERT_TRUE(B.eval("2 + 2", Ok, Value, 120.0));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "4"); // victim is back
}

TEST_F(ServeTest, QuitFlushesPipelinedResponsesFirst) {
  Client C = connect();
  const int N = 5;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine(std::to_string(I) + " + 0"));
  ASSERT_TRUE(C.sendLine("!quit"));
  int Evals = 0;
  bool SawBye = false;
  std::string Line, Tag, Value;
  bool Ok = false;
  // `bye` answers out of band; all N eval responses must still arrive
  // before the server closes the socket.
  while (C.recvLine(Line, 60.0)) {
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    if (Value == "bye")
      SawBye = true;
    else
      ++Evals;
  }
  EXPECT_EQ(Evals, N);
  EXPECT_TRUE(SawBye);
}

TEST_F(ServeTest, DrainStopsTheServerAndCheckpointsShards) {
  Client C = connect();
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("!drain", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_TRUE(S->waitStopped(120.0));
  // The drain path checkpoints every shard on the way out.
  EXPECT_EQ(access(shardImagePath(DataDir, 0).c_str(), F_OK), 0);
  EXPECT_EQ(access(shardImagePath(DataDir, 1).c_str(), F_OK), 0);
}

TEST_F(ServeTest, ProtocolErrorsAnswerWithoutKillingTheServer) {
  Client C = connect();
  bool Ok = true;
  std::string Value;
  ASSERT_TRUE(C.eval("!kill 99", Ok, Value));
  EXPECT_FALSE(Ok);
  ASSERT_TRUE(C.eval("!nosuch", Ok, Value));
  EXPECT_FALSE(Ok);
  ASSERT_TRUE(C.eval("41 + 1", Ok, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "42");
}

// --- Deadlines, runaway abort, and overload control ----------------------

TEST(ServeDeadline, RunawayAnswersErrWithinTwiceTheDeadline) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Config.Pool.AbortGraceMs = 10000; // abort must win, never escalation
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client A, B, C;
  ASSERT_TRUE(A.connect(S.port())); // session 0 -> shard 0
  ASSERT_TRUE(B.connect(S.port())); // session 1 -> shard 1
  ASSERT_TRUE(C.connect(S.port())); // session 2 -> shard 0, like A

  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(A.sendLine("@r?deadline=500 [true] whileTrue."));
  ASSERT_TRUE(C.sendLine("@c 6 * 7")); // queues behind the runaway

  // The other shard serves while shard 0 burns its runaway.
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(B.eval("10 * 10", Ok, Value, 240.0));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "100");

  // Acceptance: the runaway answers ERR within 2x its deadline.
  std::string Line, Tag;
  ASSERT_TRUE(A.recvLine(Line, 240.0));
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Tag, "@r");
  EXPECT_NE(Value.find("RequestTimeout"), std::string::npos) << Value;
  EXPECT_LT(ElapsedMs, 1000) << "abort overshot 2x the 500ms deadline";

  // The same shard keeps serving: C's queued request answers, and both
  // sessions stay usable — no shard reboot happened.
  ASSERT_TRUE(C.recvLine(Line, 240.0));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "42");
  ASSERT_TRUE(A.eval("1 + 1", Ok, Value, 240.0));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, "2");

  auto Health = S.pool().health();
  EXPECT_EQ(Health[0].Restarts, 0u);
  EXPECT_GE(Health[0].DeadlineExpired, 1u);
  S.stop();
}

TEST(ServeOverload, QueueBudgetShedsAndRetrySucceeds) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.QueueBudget = 2;
  Config.BreakerThreshold = 0; // isolate admission control
  Config.Pool.AbortGraceMs = 10000;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));

  // Wedge the shard, then overflow the 2-deep budget: the overflow must
  // fast-fail ERR overloaded instead of queueing without bound.
  ASSERT_TRUE(C.sendLine("@r?deadline=800 [true] whileTrue."));
  const int N = 6;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine("@q" + std::to_string(I) + " 1 + " +
                           std::to_string(I)));

  int Shed = 0, Served = 0, TimedOut = 0;
  for (int I = 0; I < N + 1; ++I) {
    std::string Line, Tag, Value;
    bool Ok = false;
    ASSERT_TRUE(C.recvLine(Line, 240.0));
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    if (Ok)
      ++Served;
    else if (Value.find("overloaded") != std::string::npos)
      ++Shed;
    else if (Value.find("RequestTimeout") != std::string::npos)
      ++TimedOut;
  }
  EXPECT_EQ(TimedOut, 1); // the runaway
  EXPECT_GE(Shed, 1) << "budget never shed";
  EXPECT_GE(Served, 1) << "admitted requests must still answer";
  EXPECT_GE(S.stats().Shed.value(), 1u);

  // Once the shard drains, a backoff-retried request gets through.
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.evalRetry("2 + 2", Ok, Value, 240.0));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "4");
  EXPECT_EQ(S.pool().health()[0].Restarts, 0u);
  S.stop();
}

TEST(ServeOverload, BreakerOpensAfterConsecutiveExpiriesAndRecloses) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.BreakerThreshold = 2;
  Config.BreakerOpenMs = 400;
  Config.QueueBudget = 0; // isolate the breaker
  Config.Pool.AbortGraceMs = 10000;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  bool Ok = false;
  std::string Value;

  // Two consecutive deadline expiries trip the breaker.
  for (int I = 0; I < 2; ++I) {
    ASSERT_TRUE(C.eval("@?deadline=150 [true] whileTrue.", Ok, Value,
                       240.0));
    EXPECT_FALSE(Ok);
    EXPECT_NE(Value.find("RequestTimeout"), std::string::npos) << Value;
  }

  // Open: evaluations shed instantly, and health says so.
  ASSERT_TRUE(C.eval("1 + 1", Ok, Value, 240.0));
  EXPECT_FALSE(Ok);
  EXPECT_NE(Value.find("circuit breaker open"), std::string::npos)
      << Value;
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"breaker\":\"open\""), std::string::npos);

  // evalRetry backs off past the open window; its attempt becomes the
  // half-open probe, succeeds, and recloses the breaker.
  ASSERT_TRUE(C.evalRetry("2 + 3", Ok, Value, 240.0, 12, 20));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "5");
  ASSERT_TRUE(C.eval("3 + 4", Ok, Value, 240.0));
  EXPECT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "7");
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"breaker\":\"closed\""), std::string::npos);
  EXPECT_GE(S.stats().BreakerOpen.value(), 1u);
  S.stop();
}

// --- Durability: write-ahead journal + replay ----------------------------

TEST(ServeJournal, KillPreservesAcknowledgedUncheckpointedState) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.Pool.Journal = true;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 42", Ok, Value));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(C.eval("!checkpoint", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;

  // Acknowledged after the checkpoint: without the journal this is
  // exactly the state KillRestartsShardFromLastCommittedCheckpoint
  // proves gets rolled back.
  ASSERT_TRUE(C.eval("Smalltalk at: #K put: 99", Ok, Value));
  ASSERT_TRUE(Ok);

  ASSERT_TRUE(C.eval("!kill 0", Ok, Value, 120.0));
  EXPECT_TRUE(Ok) << Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #K", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;
  EXPECT_EQ(Value, "99") << "acknowledged write lost across the crash";

  auto Health = S.pool().health();
  EXPECT_GE(Health[0].Replayed, 1u);
  EXPECT_GT(Health[0].JournalBytes, 0u);

  // The health JSON carries the journal surface.
  std::string Json;
  ASSERT_TRUE(C.eval("!health", Ok, Json));
  ASSERT_TRUE(Ok);
  EXPECT_NE(Json.find("\"journal_bytes\":"), std::string::npos);
  EXPECT_NE(Json.find("\"replayed\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dedup_size\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dedup_hits\":"), std::string::npos);
  S.stop();
}

TEST(ServeJournal, BoundSessionResendIsAnsweredFromDedupNotReExecuted) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(2, DataDir);
  Config.Pool.Journal = true;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  ASSERT_TRUE(C.bindSession(41)); // pins to shard 41 % 2 = 1
  EXPECT_TRUE(C.bound());

  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #Cnt put: 0", Ok, Value));
  ASSERT_TRUE(Ok);

  // An explicit seq'd increment, then a manual resend of the SAME seq:
  // the dedup table must answer with the original response and the
  // increment must not run twice.
  const std::string Inc =
      "Smalltalk at: #Cnt put: (Smalltalk at: #Cnt) + 1";
  ASSERT_TRUE(C.sendLine("@?seq=700 " + Inc));
  std::string Line, Tag, First;
  ASSERT_TRUE(C.recvLine(Line, 120.0));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, First));
  ASSERT_TRUE(Ok) << First;

  ASSERT_TRUE(C.sendLine("@?seq=700 " + Inc));
  ASSERT_TRUE(C.recvLine(Line, 120.0));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Value, First) << "resend must replay the cached response";

  ASSERT_TRUE(C.eval("Smalltalk at: #Cnt", Ok, Value));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "1") << "dedup failed: the increment ran twice";
  EXPECT_GE(S.stats().DedupHits.value(), 1u);

  // ?seq= without a bound session is refused (a fresh connection's
  // implicit identity would silently collide across reconnects).
  Client U;
  ASSERT_TRUE(U.connect(S.port()));
  ASSERT_TRUE(U.sendLine("@?seq=1 1 + 1"));
  ASSERT_TRUE(U.recvLine(Line, 120.0));
  ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
  EXPECT_FALSE(Ok);
  EXPECT_NE(Value.find("!session"), std::string::npos) << Value;
  S.stop();
}

TEST(ServeJournal, EvalRetryReconnectsRebindsAndDedups) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.Pool.Journal = true;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  ASSERT_TRUE(C.bindSession(7));
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.evalRetry("Smalltalk at: #R put: 5", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;

  // Sever the transport under the client's feet: evalRetry must
  // reconnect, rebind the same identity, and still serve exactly-once.
  C.disconnect();
  ASSERT_TRUE(
      C.evalRetry("Smalltalk at: #R put: (Smalltalk at: #R) + 1", Ok,
                  Value, 120.0));
  EXPECT_TRUE(Ok) << Value;
  ASSERT_TRUE(C.evalRetry("Smalltalk at: #R", Ok, Value, 120.0));
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Value, "6");
  S.stop();
}

// Satellite regression: checkpoint commit vs journal truncation ordering.
// A crash in the window between the checkpoint rename landing and the
// journal truncation (here: the truncation failing outright, which leaves
// the same on-disk state) must replay to exactly the acknowledged state —
// no lost writes, no double-applied increments from below-mark records.
TEST(ServeJournal, KillBetweenCheckpointCommitAndTruncationConverges) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.Pool.Journal = true;
  Config.Pool.KeepGenerations = 0; // first commit truncates for real
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));
  bool Ok = false;
  std::string Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #C put: 0", Ok, Value));
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(
      C.eval("Smalltalk at: #C put: (Smalltalk at: #C) + 1", Ok, Value));
  ASSERT_TRUE(Ok); // C = 1, journaled below the mark

  chaos::armFail("journal.truncate.fail", 1000, 99);
  ASSERT_TRUE(C.eval("!checkpoint", Ok, Value, 120.0));
  EXPECT_TRUE(Ok) << Value; // rename landed; truncation injected-failed
  EXPECT_GE(chaos::failCount("journal.truncate.fail"), 1u);
  chaos::disarmFail();

  ASSERT_TRUE(
      C.eval("Smalltalk at: #C put: (Smalltalk at: #C) + 1", Ok, Value));
  ASSERT_TRUE(Ok); // C = 2, journaled past the mark

  ASSERT_TRUE(C.eval("!kill 0", Ok, Value, 120.0));
  EXPECT_TRUE(Ok) << Value;
  ASSERT_TRUE(C.eval("Smalltalk at: #C", Ok, Value, 120.0));
  ASSERT_TRUE(Ok) << Value;
  // Below-mark intents (put 0, first increment) must NOT re-apply on top
  // of the checkpoint that already contains them.
  EXPECT_EQ(Value, "2") << "replay double-applied or lost an increment";
  S.stop();
}

TEST(ServeDrainDeadline, QueuedRequestsGetCleanErrAtTheDrainDeadline) {
  std::string DataDir = makeTempDir();
  ServerConfig Config = testServerConfig(1, DataDir);
  Config.DrainTimeoutSec = 1.0;
  Config.Pool.AbortGraceMs = 10000;
  Server S(std::move(Config));
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Client C;
  ASSERT_TRUE(C.connect(S.port()));

  // Wedge the shard past the drain deadline, queue work behind it, then
  // drain: the unanswerable requests must get a clean ERR (not a dropped
  // connection) and the server must still exit.
  ASSERT_TRUE(C.sendLine("@r?deadline=2500 [true] whileTrue."));
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(C.sendLine("@q" + std::to_string(I) + " 1 + 1"));
  ASSERT_TRUE(C.sendLine("!drain"));

  int DrainAcks = 0, Expired = 0, Other = 0;
  std::string Line, Tag, Value;
  bool Ok = false;
  while (C.recvLine(Line, 240.0)) {
    ASSERT_TRUE(parseResponseLine(Line, Ok, Tag, Value));
    if (Ok && Value == "draining")
      ++DrainAcks;
    else if (!Ok && Value.find("draining") != std::string::npos)
      ++Expired;
    else
      ++Other;
  }
  EXPECT_EQ(DrainAcks, 1);
  EXPECT_EQ(Expired, 4) << "runaway + 3 queued requests";
  EXPECT_EQ(Other, 0);
  EXPECT_TRUE(S.waitStopped(240.0));
  S.stop();
}

} // namespace
