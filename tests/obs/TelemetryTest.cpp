//===-- tests/obs/TelemetryTest.cpp - Telemetry/tracing unit tests --------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the observability layer: striped counter aggregation
/// across threads, gauge sampling, log-linear histogram quantiles, trace
/// ring-buffer wraparound, Chrome-trace JSON well-formedness, and the
/// zero-cost guarantees when telemetry is off.
///
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/Histogram.h"
#include "obs/Telemetry.h"
#include "obs/TraceBuffer.h"
#include "objmem/ObjectMemory.h"
#include "support/Panic.h"
#include "vkernel/Chaos.h"
#include "vkernel/SpinLock.h"

using namespace mst;

namespace {

/// Looks up \p Name in a snapshot's counter list. \returns 0 when absent.
uint64_t counterOf(const Telemetry::Snapshot &S, const std::string &Name) {
  for (const auto &[N, V] : S.Counters)
    if (N == Name)
      return V;
  return 0;
}

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker, enough to reject anything a
// strict parser (or Perfetto's trace importer) would choke on.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == S.size();
  }

private:
  const std::string &S;
  size_t P = 0;

  void skipWs() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(P, N, L) != 0)
      return false;
    P += N;
    return true;
  }
  bool value() {
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P < S.size() && S[P] == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P >= S.size() || S[P] != ':')
        return false;
      ++P;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P >= S.size() || S[P] != '}')
      return false;
    ++P;
    return true;
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P < S.size() && S[P] == ']') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P >= S.size() || S[P] != ']')
      return false;
    ++P;
    return true;
  }
  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size() && S[P] != '"') {
      unsigned char C = static_cast<unsigned char>(S[P]);
      if (C < 0x20)
        return false; // raw control character — must be escaped
      if (S[P] == '\\') {
        ++P;
        if (P >= S.size())
          return false;
        char E = S[P];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[P])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++P;
    }
    if (P >= S.size())
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '.' ||
            S[P] == 'e' || S[P] == 'E' || S[P] == '+' || S[P] == '-'))
      ++P;
    return P > Start;
  }
};

//===----------------------------------------------------------------------===//
// Counters and gauges
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, CounterAggregatesAcrossThreads) {
  Counter C("test.threads");
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 10000;
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < Threads; ++I)
    Ts.emplace_back([&C] {
      for (uint64_t K = 0; K < PerThread; ++K)
        C.add();
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(counterOf(Telemetry::snapshot(), "test.threads"),
            Threads * PerThread);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(TelemetryTest, DuplicateCounterNamesSumInRegistry) {
  // Several VM instances register counters under the same name; the
  // registry reports their sum (and drops them once destroyed).
  {
    Counter A("test.dup"), B("test.dup");
    A.add(3);
    B.add(4);
    EXPECT_EQ(counterOf(Telemetry::snapshot(), "test.dup"), 7u);
  }
  EXPECT_EQ(counterOf(Telemetry::snapshot(), "test.dup"), 0u);
}

TEST(TelemetryTest, UnnamedCounterStaysOutOfRegistry) {
  Counter C;
  C.add(99);
  EXPECT_EQ(C.value(), 99u);
  for (const auto &[N, V] : Telemetry::snapshot().Counters)
    EXPECT_FALSE(N.empty());
}

TEST(TelemetryTest, GaugeSamplesItsCallback) {
  uint64_t Backing = 17;
  Gauge G("test.gauge", [&Backing] { return Backing; });
  auto S = Telemetry::snapshot();
  uint64_t Got = 0;
  for (const auto &[N, V] : S.Gauges)
    if (N == "test.gauge")
      Got = V;
  EXPECT_EQ(Got, 17u);
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, HistogramQuantilesOnUniform) {
  Histogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 1000u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 1000u);
  // Log-linear buckets with 16 sub-buckets bound relative error ~6%; use
  // a generous 10% gate.
  EXPECT_NEAR(H.percentile(50.0), 500.0, 50.0);
  EXPECT_NEAR(H.percentile(95.0), 950.0, 95.0);
  EXPECT_NEAR(H.percentile(99.0), 990.0, 99.0);
  EXPECT_EQ(H.percentile(100.0), 1000.0);
}

TEST(TelemetryTest, HistogramSummariesMergeByName) {
  Histogram A("test.hist"), B("test.hist");
  A.record(100);
  B.record(300);
  auto S = Telemetry::snapshot();
  bool Found = false;
  for (const auto &HS : S.Histograms)
    if (HS.Name == "test.hist") {
      Found = true;
      EXPECT_EQ(HS.Count, 2u);
      EXPECT_EQ(HS.Max, 300u);
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Trace ring buffers
//===----------------------------------------------------------------------===//

class TracingTest : public ::testing::Test {
protected:
  void SetUp() override {
    clearTrace();
    Telemetry::setTracingEnabled(true);
  }
  void TearDown() override {
    Telemetry::setTracingEnabled(false);
    clearTrace();
  }
};

TEST_F(TracingTest, SpansAndInstantsAreRecorded) {
  {
    TraceSpan S("test.span", "test");
    S.setArg(42);
  }
  traceInstant("test.instant", "test");
  EXPECT_EQ(countTraceSpans("test.span"), 1u);
  EXPECT_GE(traceEventCount(), 2u);
}

TEST_F(TracingTest, RingBufferWrapsKeepingNewestEvents) {
  for (size_t I = 0; I < TraceRingCapacity + 100; ++I)
    traceInstant("test.flood", "test", I);
  // The ring holds exactly the newest TraceRingCapacity events; older
  // ones were overwritten.
  EXPECT_EQ(traceEventCount(), TraceRingCapacity);
  // And the merged export is still well-formed JSON.
  std::string Json = chromeTraceJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
}

TEST_F(TracingTest, DroppedCounterCountsRingOverwrites) {
  // Each append past the ring's capacity overwrites the oldest event and
  // bumps vm.trace.dropped; the .current gauge reports how far live rings
  // have currently wrapped.
  const uint64_t Before =
      counterOf(Telemetry::snapshot(), "vm.trace.dropped");
  for (size_t I = 0; I < TraceRingCapacity + 250; ++I)
    traceInstant("test.dropflood", "test", I);
  EXPECT_EQ(counterOf(Telemetry::snapshot(), "vm.trace.dropped"),
            Before + 250);

  bool Found = false;
  uint64_t Current = 0;
  for (const auto &[N, V] : Telemetry::snapshot().Gauges)
    if (N == "vm.trace.dropped.current") {
      Found = true;
      Current = V;
    }
  EXPECT_TRUE(Found);
  EXPECT_GE(Current, 250u);
}

TEST_F(TracingTest, ChromeTraceJsonSchema) {
  setTraceThreadInfo("tester", 2);
  {
    TraceSpan S("test \"quoted\"\nspan", "test");
    (void)S;
  }
  traceInstant("test.mark", "test", 7);
  std::string Json = chromeTraceJson();
  ASSERT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
  // Chrome trace-event format essentials: the event array, complete and
  // instant phases, thread metadata, and our processor-based pid.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("vp 2"), std::string::npos);
  // The raw quote/newline in the span name must have been escaped.
  EXPECT_NE(Json.find("test \\\"quoted\\\"\\nspan"), std::string::npos);
}

TEST(TelemetryTest, TracingDisabledRecordsNothing) {
  Telemetry::setTracingEnabled(false);
  clearTrace();
  {
    TraceSpan S("test.off", "test");
    EXPECT_FALSE(S.active());
  }
  traceInstant("test.off.instant", "test");
  EXPECT_EQ(traceEventCount(), 0u);
  EXPECT_EQ(countTraceSpans("test.off"), 0u);
}

TEST(TelemetryTest, SnapshotJsonIsWellFormed) {
  Counter C("test.json \"tricky\"");
  C.add(5);
  Histogram H("test.json.hist");
  H.record(1234);
  std::string Json = Telemetry::toJson(Telemetry::snapshot());
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Telemetry under schedule chaos
//===----------------------------------------------------------------------===//

/// Enables the chaos engine for one scope, restoring the quiet default on
/// the way out (aggressive probabilities: telemetry ops are cheap, so a
/// high perturbation rate still finishes quickly).
class ChaosScope {
public:
  ChaosScope() {
    chaos::Config Cfg;
    Cfg.Seed = 42;
    Cfg.YieldPermille = 300;
    Cfg.SleepPermille = 100;
    Cfg.MaxSleepMicros = 20;
    chaos::enable(Cfg);
  }
  ~ChaosScope() { chaos::disable(); }
};

TEST(TelemetryTest, CountersStayExactUnderChaos) {
  // Striped counters must lose no increments however rudely the threads
  // are interleaved between their updates.
  ChaosScope Chaos;
  Counter C("test.chaos.counter");
  Histogram H("test.chaos.hist");
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 2000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&C, &H, T] {
      chaos::setThreadOrdinal(T + 1);
      for (uint64_t K = 0; K < PerThread; ++K) {
        chaos::point("test.telemetry.tick");
        C.add();
        H.record(K + 1);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(counterOf(Telemetry::snapshot(), "test.chaos.counter"),
            Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.max(), PerThread);
}

TEST_F(TracingTest, RingWrapUnderChaosKeepsExportWellFormed) {
  // Several perturbed threads flood their trace rings past wraparound
  // while a counter tracks how many events were written; the merged
  // export must stay parseable and the rings must hold exactly their
  // capacity — a torn wrap would show up as either.
  ChaosScope Chaos;
  Counter Written("test.chaos.traced");
  constexpr unsigned Threads = 3;
  const size_t PerThread = TraceRingCapacity + 64;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&Written, T, PerThread] {
      chaos::setThreadOrdinal(T + 10);
      setTraceThreadInfo("chaos", T);
      for (size_t I = 0; I < PerThread; ++I) {
        if (I % 3 == 0) {
          TraceSpan S("test.chaos.span", "test");
          S.setArg(I);
        } else {
          traceInstant("test.chaos.instant", "test", I);
        }
        chaos::point("test.telemetry.trace");
        Written.add();
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Written.value(), uint64_t(Threads) * PerThread);
  // Each thread's ring wrapped and kept the newest TraceRingCapacity.
  EXPECT_EQ(traceEventCount(), Threads * TraceRingCapacity);
  std::string Json = chromeTraceJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
}

//===----------------------------------------------------------------------===//
// Zero-cost-when-off guarantees
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, DisabledSpinLockIsZeroCost) {
  // Baseline-BS mode: a disabled lock does no atomic work at all — not
  // even counting — so the uniprocessor configuration pays nothing for
  // the instrumentation.
  SpinLock L(false, "testdisabled");
  for (int I = 0; I < 100; ++I) {
    L.lock();
    L.unlock();
    EXPECT_TRUE(L.tryLock());
    L.unlock();
  }
  EXPECT_EQ(L.acquisitions(), 0u);
  EXPECT_EQ(L.contendedAcquisitions(), 0u);
  EXPECT_EQ(L.delays(), 0u);
  EXPECT_EQ(counterOf(Telemetry::snapshot(),
                      "lock.testdisabled.acquisitions"),
            0u);
}

TEST_F(TracingTest, ContendedSpinLockRecordsWaitSpan) {
  // A contended acquisition of a named lock shows up in the trace as a
  // span named after the lock, in the "lock" category.
  SpinLock L(true, "testcontend");
  L.lock();
  std::thread Waiter([&L] {
    L.lock(); // blocks until the main thread releases
    L.unlock();
  });
  while (L.contendedAcquisitions() == 0)
    std::this_thread::yield();
  L.unlock();
  Waiter.join();
  EXPECT_GE(countTraceSpans("testcontend"), 1u);
  EXPECT_NE(chromeTraceJson().find("\"cat\":\"lock\""), std::string::npos);
}

TEST(TelemetryTest, EnabledSpinLockCountsAcquisitions) {
  SpinLock L(true, "testenabled");
  for (int I = 0; I < 10; ++I) {
    L.lock();
    L.unlock();
  }
  EXPECT_TRUE(L.tryLock());
  EXPECT_FALSE(L.tryLock()); // already held → contended, not acquired
  L.unlock();
  EXPECT_EQ(L.acquisitions(), 12u);
  EXPECT_EQ(L.contendedAcquisitions(), 1u);
  EXPECT_EQ(counterOf(Telemetry::snapshot(),
                      "lock.testenabled.acquisitions"),
            12u);
}

//===----------------------------------------------------------------------===//
// Memory-pressure instrumentation: the ladder counters, the low-space
// signal counter, the headroom gauge, and the vm.panic counter
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, RecoveryLadderCountersReportEveryRungByName) {
  MemoryConfig C;
  C.EdenBytes = 64u * 1024;
  C.SurvivorBytes = 32u * 1024;
  C.OldChunkBytes = 64u * 1024;
  C.MaxHeapBytes = C.EdenBytes + 2 * C.SurvivorBytes + 128u * 1024;
  C.LowSpaceWatermarkBytes = 64u * 1024;
  ObjectMemory OM(C);
  OM.registerMutator("telemetry-pressure");
  Oop Nil = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(Nil);
  Oop FakeClass = OM.allocateOldPointers(Nil, 0);

  auto Ctr = [](const char *Name) {
    return counterOf(Telemetry::snapshot(), Name);
  };
  const uint64_t Scavenge0 = Ctr("mem.pressure.ladder.scavenge");
  const uint64_t FullGc0 = Ctr("mem.pressure.ladder.fullgc");
  const uint64_t Grow0 = Ctr("mem.pressure.ladder.grow");
  const uint64_t Oom0 = Ctr("mem.pressure.ladder.oom");
  const uint64_t LowSpace0 = Ctr("gc.lowspace.signals");

  // Rungs 1 and 3: with every eden attempt refused by injection, one
  // allocation runs exactly three pressure scavenges and one divert.
  chaos::armFail("alloc.fail", 1000, 1);
  Oop Diverted = OM.allocatePointers(FakeClass, 4);
  chaos::disarmFail();
  ASSERT_FALSE(Diverted.isNull());
  EXPECT_EQ(Ctr("mem.pressure.ladder.scavenge"), Scavenge0 + 3);
  EXPECT_EQ(Ctr("mem.pressure.ladder.grow"), Grow0 + 1);

  // Rungs 2 and 4: retained oversized allocations exhaust the ceiling —
  // the full-collection rung runs, fails to help, and the walk ends in
  // the out-of-memory rung. On the way down, headroom crosses the
  // watermark and the low-space signal fires.
  std::vector<std::unique_ptr<Handle>> Live;
  bool SawNull = false;
  for (int I = 0; I < 20 && !SawNull; ++I) {
    Oop O = OM.allocateBytes(FakeClass, 32u * 1024);
    if (O.isNull())
      SawNull = true;
    else
      Live.push_back(std::make_unique<Handle>(OM.handles(), O));
  }
  EXPECT_TRUE(SawNull);
  EXPECT_GE(Ctr("mem.pressure.ladder.fullgc"), FullGc0 + 1);
  EXPECT_GE(Ctr("mem.pressure.ladder.oom"), Oom0 + 1);
  EXPECT_GE(Ctr("gc.lowspace.signals"), LowSpace0 + 1);

  // The headroom gauge is registered under its exact name.
  bool FoundHeadroom = false;
  for (const auto &[N, V] : Telemetry::snapshot().Gauges)
    if (N == "mem.headroom") {
      FoundHeadroom = true;
      EXPECT_EQ(V, OM.headroomBytes());
    }
  EXPECT_TRUE(FoundHeadroom);

  while (!Live.empty())
    Live.pop_back();
  OM.unregisterMutator();
}

TEST(TelemetryTest, PanicReportBumpsVmPanicCounterAndBuildsDump) {
  const uint64_t Before = counterOf(Telemetry::snapshot(), "vm.panic");
  std::string Captured;
  setPanicHandler([&Captured](const std::string &D) { Captured = D; });
  // With a handler installed panicReport returns instead of aborting.
  EXPECT_TRUE(panicReport("telemetry probe"));
  setPanicHandler(nullptr);
  EXPECT_EQ(counterOf(Telemetry::snapshot(), "vm.panic"), Before + 1);
  EXPECT_EQ(panicCount(), Before + 1);
  EXPECT_NE(Captured.find("=== VM panic ==="), std::string::npos);
  EXPECT_NE(Captured.find("reason: telemetry probe"), std::string::npos);
  // The dump embeds the counter snapshot, vm.panic itself included.
  EXPECT_NE(Captured.find("--- telemetry ---"), std::string::npos);
  EXPECT_NE(Captured.find("vm.panic"), std::string::npos);
  EXPECT_NE(Captured.find("=== end panic dump ==="), std::string::npos);
}

} // namespace
