//===-- tests/obs/ProfilerTest.cpp - Sampling profiler tests --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional tests for the sampling profiler: a deterministic hot method
/// must rank first with >= 90% sample attribution, and a VM run with the
/// profiler disabled must leave the profiler completely cold (no ticks,
/// no samples, no site events).
///
//===----------------------------------------------------------------------===//

#include <string>

#include <gtest/gtest.h>

#include "TestVm.h"
#include "obs/ProfileReport.h"
#include "obs/Profiler.h"

using namespace mst;

namespace {

/// Stops and wipes the process-wide profiler on scope exit, so a failing
/// assertion cannot leak a running sampler into the next test.
struct ProfilerGuard {
  ProfilerGuard() {
    Profiler::stop();
    Profiler::reset();
  }
  ~ProfilerGuard() {
    Profiler::stop();
    Profiler::reset();
  }
};

TEST(ProfilerTest, DisabledProfilerStaysCold) {
  ProfilerGuard Guard;
  ASSERT_FALSE(Profiler::enabled());

  TestVm T;
  EXPECT_EQ(T.evalInt("| s | s := 0. 1 to: 5000 do: [:i | s := s + i. "
                      "Array new: 4]. ^s"),
            12502500);

  // No sampler ran: no ticks, and every slot's accumulation is empty —
  // the per-send publication store must not create samples by itself.
  EXPECT_FALSE(Profiler::enabled());
  EXPECT_EQ(Profiler::ticks(), 0u);
  for (const Profiler::VprocData &V : Profiler::data().Vprocs) {
    EXPECT_TRUE(V.Samples.empty()) << V.Name;
    EXPECT_TRUE(V.AllocSites.empty()) << V.Name;
    EXPECT_TRUE(V.MissSites.empty()) << V.Name;
  }
  EXPECT_TRUE(T.vm().buildProfileReport().empty());
}

TEST(ProfilerTest, HotMethodRanksFirstWithHighAttribution) {
  ProfilerGuard Guard;
  TestVm T;
  // One deterministic hot spot: an arithmetic spin installed as a real
  // method, so the profiler must attribute it as "Integer>>profilerSpin".
  addMethod(T.vm(), T.om().globalAt("Integer"), "profiling",
            "profilerSpin | s | s := 0. 1 to: 200000 do: [:i | s := s + "
            "i]. ^s");

  ASSERT_TRUE(startVmProfiler(4000));
  ASSERT_TRUE(Profiler::enabled());

  // Run the hot method until the sampler has a solid population (bounded
  // by rounds so a starved host still terminates).
  ProfileReport R;
  for (int Round = 0; Round < 200; ++Round) {
    T.evalInt("^3 profilerSpin");
    R = T.vm().buildProfileReport();
    if (R.TotalSamples >= 200)
      break;
  }
  stopVmProfiler();
  R = T.vm().buildProfileReport();

  ASSERT_GE(R.TotalSamples, 50u);
  EXPECT_GT(R.Ticks, 0u);

  // The acceptance bar: >= 90% of samples attribute to a named method or
  // a non-running state.
  EXPECT_GE(R.AttributedSamples * 10, R.TotalSamples * 9)
      << "attributed " << R.AttributedSamples << " of " << R.TotalSamples;

  // The spin method is the top running frame.
  std::string Top;
  uint64_t Best = 0;
  for (const ProfileReport::SampleRow &S : R.Samples)
    if (S.State == "running" && S.Count > Best) {
      Best = S.Count;
      Top = S.Frame;
    }
  EXPECT_EQ(Top, "Integer>>profilerSpin");

  // It shows up in every export format.
  EXPECT_NE(R.render().find("Integer>>profilerSpin"), std::string::npos);
  EXPECT_NE(R.folded().find("Integer>>profilerSpin;running "),
            std::string::npos);
  EXPECT_NE(R.toJson().find("Integer>>profilerSpin"), std::string::npos);
}

TEST(ProfilerTest, StateScopesNestAndRestore) {
  ProfilerGuard Guard;
  ProfileSlot *S = Profiler::registerThread("state-test", -1);
  ASSERT_NE(S, nullptr);
  S->State.store(static_cast<uint8_t>(ProfState::Running),
                 std::memory_order_relaxed);
  {
    ProfStateScope Outer(ProfState::Safepoint);
    EXPECT_EQ(S->State.load(std::memory_order_relaxed),
              static_cast<uint8_t>(ProfState::Safepoint));
    {
      ProfStateScope Inner(ProfState::Scavenge);
      EXPECT_EQ(S->State.load(std::memory_order_relaxed),
                static_cast<uint8_t>(ProfState::Scavenge));
    }
    EXPECT_EQ(S->State.load(std::memory_order_relaxed),
              static_cast<uint8_t>(ProfState::Safepoint));
  }
  EXPECT_EQ(S->State.load(std::memory_order_relaxed),
            static_cast<uint8_t>(ProfState::Running));
  Profiler::retireThread();
}

TEST(ProfilerTest, ReportsMergeAndFoldedFormatIsStable) {
  ProfileReport A, B;
  A.Samples.push_back({"vp0", "running", "Foo>>bar", 3});
  A.TotalSamples = 3;
  A.AttributedSamples = 3;
  B.Samples.push_back({"vp0", "running", "Foo>>bar", 2});
  B.Samples.push_back({"vp1", "lock-wait", "Foo>>baz", 1});
  B.MissSites.push_back({"Foo>>bar", "#baz", 7});
  B.TotalSamples = 3;
  B.AttributedSamples = 3;
  A.merge(B);
  EXPECT_EQ(A.TotalSamples, 6u);
  // Identical rows coalesced: vp0 Foo>>bar is now one row of 5.
  uint64_t BarCount = 0;
  for (const ProfileReport::SampleRow &S : A.Samples)
    if (S.Vproc == "vp0" && S.Frame == "Foo>>bar")
      BarCount += S.Count;
  EXPECT_EQ(BarCount, 5u);
  EXPECT_EQ(A.Samples.size(), 2u);
  EXPECT_EQ(A.MissSites.size(), 1u);
  EXPECT_NE(A.folded().find("vp1;Foo>>baz;lock-wait 1"),
            std::string::npos);
}

} // namespace
