//===-- examples/browser_session.cpp - An interactive-environment tour ----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive programming environment the paper's macro benchmarks
/// model (§4): browse the class hierarchy, read a class definition and
/// organization, find senders and implementors of a selector, compile a
/// method at runtime, and decompile it back — everything a Smalltalk-80
/// system browser does, here driven from C++ through doIts.
///
///   ./examples/browser_session
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "image/Bootstrap.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main() {
  VirtualMachine VM(VmConfig::multiprocessor(1));
  bootstrapImage(VM);

  auto Show = [&VM](const char *Title, const char *Src) {
    Oop R = VM.compileAndRun(Src);
    std::printf("--- %s\n", Title);
    if (R.isPointer() && R.object()->Format == ObjectFormat::Bytes)
      std::printf("%s\n\n", ObjectModel::stringValue(R).c_str());
    else
      std::printf("%s\n\n", VM.model().describe(R).c_str());
  };

  Show("class hierarchy under Collection",
       "^Collection printHierarchy");
  Show("definition of Dictionary", "^Dictionary definition");
  Show("organization of OrderedCollection",
       "^OrderedCollection organization printString");
  Show("implementors of printOn:",
       "^(Smalltalk implementorsOf: #printOn:) printString");
  Show("senders of value: (first few)",
       "| s | s := Smalltalk sendersOf: #classify:under:. "
       "^s printString");

  std::printf("--- compile a method into Point, then decompile it\n");
  Oop Sel = VM.compileAndRun(
      "^Compiler compile: 'dist2 ^x * x + (y * y)' into: Point");
  std::printf("compiled selector: %s\n", VM.model().describe(Sel).c_str());
  Show("it works", "^(Point x: 3 y: 4) dist2 printString");
  Show("decompiled", "^(Point compiledMethodAt: #dist2) decompile");

  Show("inspect a point",
       "| i s | i := Inspector on: (Point x: 3 y: 4). s := WriteStream "
       "on: (String new: 32). i fields do: [:a | s nextPutAll: a key; "
       "nextPutAll: ' = '; nextPutAll: a value; cr]. ^s contents");

  std::printf("--- display controller saw %llu commands\n",
              static_cast<unsigned long long>(
                  VM.display().submittedCount()));
  for (const std::string &E : VM.errors())
    std::fprintf(stderr, "error: %s\n", E.c_str());
  return VM.errors().empty() ? 0 : 1;
}
