//===-- examples/parallel_workers.cpp - User-level parallelism ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario MS was built for (paper §1): exploiting a multiprocessor
/// from an unchanged user-level environment. A prime-counting job is
/// split across Smalltalk Processes — the basic mechanisms remain the
/// Process and the Semaphore — while the host merely watches.
///
///   ./examples/parallel_workers [workers]
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "image/Bootstrap.h"
#include "support/Timer.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main(int Argc, char **Argv) {
  unsigned Workers = Argc > 1 ? static_cast<unsigned>(atoi(Argv[1])) : 4;
  if (Workers < 1 || Workers > 16)
    Workers = 4;

  VirtualMachine VM(VmConfig::multiprocessor(Workers));
  bootstrapImage(VM);

  // The work: count primes in [2, Limit), split into per-worker strides.
  // Everything below the fork is plain Smalltalk-80-style code.
  defineClass(VM, "PrimeJob", "Object", ClassKind::Fixed, {}, "Examples");
  addMethod(VM, VM.model().globalAt("PrimeJob"), "computing",
            "isPrime: n | d | n < 2 ifTrue: [^false]. d := 2. [d * d <= "
            "n] whileTrue: [n \\\\ d = 0 ifTrue: [^false]. d := d + 1]. "
            "^true");
  addMethod(VM, VM.model().globalAt("PrimeJob"), "computing",
            "countFrom: start to: limit by: stride | n i | n := 0. i := "
            "start. [i < limit] whileTrue: [(self isPrime: i) ifTrue: [n "
            ":= n + 1]. i := i + stride]. ^n");

  VM.startInterpreters();
  unsigned Done = VM.createHostSignal();

  int Limit = 30000;
  std::printf("Counting primes below %d with %u Smalltalk Processes on "
              "%u interpreter processes...\n",
              Limit, Workers, Workers);

  // Results flow through a shared OrderedCollection guarded by a
  // semaphore; a counting semaphore announces each completion.
  VM.compileAndRun("Smalltalk at: #Results put: OrderedCollection new. "
                   "Smalltalk at: #ResultLock put: Semaphore new. "
                   "(Smalltalk at: #ResultLock) signal");

  Stopwatch Watch;
  for (unsigned W = 0; W < Workers; ++W) {
    std::string Src =
        "| n lock | n := PrimeJob new countFrom: " +
        std::to_string(2 + W) + " to: " + std::to_string(Limit) +
        " by: " + std::to_string(Workers) +
        ". lock := Smalltalk at: #ResultLock. lock wait. (Smalltalk at: "
        "#Results) add: n. lock signal. nil hostSignal: " +
        std::to_string(Done);
    VM.forkDoIt(Src, 5, "prime-worker-" + std::to_string(W));
  }

  if (!VM.waitHostSignal(Done, Workers, 300.0)) {
    std::fprintf(stderr, "workers did not finish\n");
    return 1;
  }
  double Elapsed = Watch.seconds();

  Oop Total = VM.compileAndRun(
      "^(Smalltalk at: #Results) inject: 0 into: [:a :b | a + b]");
  std::printf("primes below %d: %s (reference: 3245 below 30000)\n",
              Limit, VM.model().describe(Total).c_str());
  std::printf("elapsed %.3f s across %u workers\n", Elapsed, Workers);

  std::printf("\n%s", VM.statisticsReport().c_str());
  for (const std::string &E : VM.errors())
    std::fprintf(stderr, "error: %s\n", E.c_str());
  return VM.errors().empty() ? 0 : 1;
}
