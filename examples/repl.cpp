//===-- examples/repl.cpp - An interactive Smalltalk listener -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "interactive programming environment" itself, in miniature: a
/// read-eval-print listener over the bootstrapped image. Each line is
/// compiled as a doIt and evaluated; `printString` renders the answer.
///
///   ./examples/repl
///   > 3 + 4 * 2
///   14
///   > Smalltalk at: #Counter put: 0
///   > Smalltalk at: #Counter put: (Smalltalk at: #Counter) + 1
///   > (Smalltalk at: #Counter) printString
///   '1'
///
/// Also usable non-interactively: `echo '^42 factorial' | ./examples/repl`
/// (note: 42 factorial overflows SmallInteger — you get the clean error
/// and a Smalltalk backtrace, which is rather the point).
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "image/Bootstrap.h"
#include "obs/TraceBuffer.h"
#include "vkernel/Chaos.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main(int argc, char **argv) {
  bool TelemetryReport = false;
  std::string TraceOut;
  VmConfig Config = VmConfig::multiprocessor(1);
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--telemetry") == 0) {
      TelemetryReport = true;
    } else if (std::strncmp(A, "--trace-out=", 12) == 0) {
      TraceOut = A + 12;
      Telemetry::setTracingEnabled(true);
    } else if (std::strncmp(A, "--chaos-seed=", 13) == 0) {
      chaos::enableSeed(std::strtoull(A + 13, nullptr, 0));
    } else if (std::strncmp(A, "--fullgc-threshold=", 19) == 0) {
      Config.Memory.FullGcThresholdBytes =
          std::strtoull(A + 19, nullptr, 0);
    } else if (std::strcmp(A, "--fullgc-off") == 0) {
      Config.Memory.FullGcEnabled = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--telemetry] [--trace-out=PATH] "
                   "[--chaos-seed=N] [--fullgc-threshold=BYTES] "
                   "[--fullgc-off]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!chaos::enabled())
    chaos::enableFromEnv(); // MST_CHAOS_SEED et al.

  VirtualMachine VM(Config);
  bootstrapImage(VM);
  std::printf("Multiprocessor Smalltalk listener — empty line or EOF "
              "quits.\n");

  std::string Line;
  size_t Shown = 0;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, Line)) {
    if (Line.empty())
      break;
    // Expressions without an explicit return answer their value.
    std::string Src = Line;
    if (Src[0] != '^' && Src[0] != '|')
      Src = "^(" + Src + ") printString";
    Oop R = VM.compileAndRun(Src);
    if (R.isNull()) {
      auto Errors = VM.errors();
      for (size_t I = Shown; I < Errors.size(); ++I)
        std::printf("error: %s\n", Errors[I].c_str());
      Shown = Errors.size();
      continue;
    }
    if (R.isPointer() && R.object()->Format == ObjectFormat::Bytes)
      std::printf("%s\n", ObjectModel::stringValue(R).c_str());
    else
      std::printf("%s\n", VM.model().describe(R).c_str());
  }
  if (TelemetryReport)
    std::printf("\n%s", VM.telemetryReport().c_str());
  if (!TraceOut.empty()) {
    if (writeChromeTrace(TraceOut))
      std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                  TraceOut.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   TraceOut.c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
