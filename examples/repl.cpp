//===-- examples/repl.cpp - An interactive Smalltalk listener -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "interactive programming environment" itself, in miniature: a
/// read-eval-print listener over the bootstrapped image. Each line is
/// compiled as a doIt and evaluated; `printString` renders the answer.
///
///   ./examples/repl
///   > 3 + 4 * 2
///   14
///   > Smalltalk at: #Counter put: 0
///   > Smalltalk at: #Counter put: (Smalltalk at: #Counter) + 1
///   > (Smalltalk at: #Counter) printString
///   '1'
///
/// Also usable non-interactively: `echo '^42 factorial' | ./examples/repl`
/// (note: 42 factorial overflows SmallInteger — you get the clean error
/// and a Smalltalk backtrace, which is rather the point).
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "image/Bootstrap.h"
#include "image/Checkpoint.h"
#include "image/Snapshot.h"
#include "obs/TraceBuffer.h"
#include "vkernel/Chaos.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main(int argc, char **argv) {
  bool TelemetryReport = false;
  std::string TraceOut;
  std::string SnapshotPath; // --snapshot=: save on exit + checkpoint target
  std::string LoadPath;     // --load=: boot from an image, skip bootstrap
  uint64_t SnapshotEveryMs = 0;
  unsigned SnapshotKeep = 0;
  bool Profile = false;        // --profile: sampling profiler
  uint32_t ProfileHz = 0;      // --profile-hz=N (0 = default rate)
  std::string ProfileFolded;   // --profile-folded=PATH: collapsed stacks
  VmConfig Config = VmConfig::multiprocessor(1);
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--telemetry") == 0) {
      TelemetryReport = true;
    } else if (std::strncmp(A, "--trace-out=", 12) == 0) {
      TraceOut = A + 12;
      Telemetry::setTracingEnabled(true);
    } else if (std::strncmp(A, "--chaos-seed=", 13) == 0) {
      chaos::enableSeed(std::strtoull(A + 13, nullptr, 0));
    } else if (std::strncmp(A, "--fullgc-threshold=", 19) == 0) {
      Config.Memory.FullGcThresholdBytes =
          std::strtoull(A + 19, nullptr, 0);
    } else if (std::strcmp(A, "--fullgc-off") == 0) {
      Config.Memory.FullGcEnabled = false;
    } else if (std::strncmp(A, "--max-heap=", 11) == 0) {
      // Heap ceiling in bytes (eden + survivors + old space). Exhaustion
      // walks the recovery ladder and ends in a catchable
      // OutOfMemoryError instead of growing without bound.
      Config.Memory.MaxHeapBytes = std::strtoull(A + 11, nullptr, 0);
    } else if (std::strncmp(A, "--watchdog-ms=", 14) == 0) {
      // Safepoint-rendezvous deadline; a stall past it produces a
      // postmortem dump naming the unresponsive thread.
      Config.Memory.WatchdogMillis = std::strtoull(A + 14, nullptr, 0);
    } else if (std::strncmp(A, "--snapshot=", 11) == 0) {
      SnapshotPath = A + 11;
    } else if (std::strncmp(A, "--load=", 7) == 0) {
      LoadPath = A + 7;
    } else if (std::strncmp(A, "--snapshot-every=", 17) == 0) {
      SnapshotEveryMs = std::strtoull(A + 17, nullptr, 0);
    } else if (std::strncmp(A, "--snapshot-keep=", 16) == 0) {
      SnapshotKeep =
          static_cast<unsigned>(std::strtoul(A + 16, nullptr, 0));
    } else if (std::strcmp(A, "--profile") == 0) {
      Profile = true;
    } else if (std::strncmp(A, "--profile-hz=", 13) == 0) {
      Profile = true;
      ProfileHz = static_cast<uint32_t>(std::strtoul(A + 13, nullptr, 0));
    } else if (std::strncmp(A, "--profile-folded=", 17) == 0) {
      Profile = true;
      ProfileFolded = A + 17;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--telemetry] [--trace-out=PATH] "
                   "[--chaos-seed=N] [--fullgc-threshold=BYTES] "
                   "[--fullgc-off] [--max-heap=BYTES] [--watchdog-ms=N] "
                   "[--snapshot=PATH] [--load=PATH] [--snapshot-every=MS] "
                   "[--snapshot-keep=N] [--profile] [--profile-hz=N] "
                   "[--profile-folded=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (SnapshotEveryMs && SnapshotPath.empty()) {
    std::fprintf(stderr, "--snapshot-every requires --snapshot=PATH\n");
    return 2;
  }
  if (!chaos::enabled())
    chaos::enableFromEnv(); // MST_CHAOS_SEED et al.
  if (Profile)
    startVmProfiler(ProfileHz);

  if (Config.Memory.MaxHeapBytes) {
    // Keep the young generation evacuable under the ceiling: a scavenge
    // must be able to move a full eden into survivor + old space, or a
    // fully-retained eden wedges the collector instead of surfacing an
    // orderly OutOfMemoryError. Require fixed + eden + survivor <= max,
    // i.e. 2*eden + 3*survivor <= max, shrinking the defaults to fit.
    size_t &Eden = Config.Memory.EdenBytes;
    size_t &Surv = Config.Memory.SurvivorBytes;
    while (Eden > 64u * 1024 &&
           2 * Eden + 3 * Surv > Config.Memory.MaxHeapBytes) {
      Eden /= 2;
      Surv = Eden / 4 > 32u * 1024 ? Eden / 4 : 32u * 1024;
    }
  }

  VirtualMachine VM(Config);
  if (!LoadPath.empty()) {
    // Boot from an image: the recovery ladder falls back through rotated
    // generations when the primary fails verification.
    std::string Error;
    if (!loadSnapshot(VM, LoadPath, Error)) {
      std::fprintf(stderr, "cannot load image: %s\n", Error.c_str());
      return 1;
    }
  } else {
    bootstrapImage(VM);
  }

  Checkpointer::Options CkOpts;
  CkOpts.Path = SnapshotPath;
  CkOpts.EveryMs = SnapshotEveryMs;
  CkOpts.KeepGenerations = SnapshotKeep;
  Checkpointer Checkpoints(VM, CkOpts);

  std::printf("Multiprocessor Smalltalk listener — empty line or EOF "
              "quits.\n");

  std::string Line;
  size_t Shown = 0;
  for (;;) {
    std::printf("> ");
    std::fflush(stdout);
    bool GotLine;
    {
      // Waiting for input counts as safe: the auto-checkpointer (and any
      // worker GC) can stop the world while the listener sits at the
      // prompt.
      BlockedRegion B(VM.memory().safepoint());
      GotLine = static_cast<bool>(std::getline(std::cin, Line));
    }
    if (!GotLine || Line.empty())
      break;
    // Expressions without an explicit return answer their value.
    std::string Src = Line;
    if (Src[0] != '^' && Src[0] != '|')
      Src = "^(" + Src + ") printString";
    Oop R = VM.compileAndRun(Src);
    if (R.isNull()) {
      auto Errors = VM.errors();
      for (size_t I = Shown; I < Errors.size(); ++I)
        std::printf("error: %s\n", Errors[I].c_str());
      Shown = Errors.size();
      continue;
    }
    if (R.isPointer() && R.object()->Format == ObjectFormat::Bytes)
      std::printf("%s\n", ObjectModel::stringValue(R).c_str());
    else
      std::printf("%s\n", VM.model().describe(R).c_str());
  }
  if (!SnapshotPath.empty()) {
    std::string Error;
    if (!Checkpoints.checkpointNow(Error))
      std::fprintf(stderr, "snapshot failed: %s\n", Error.c_str());
    else
      std::printf("image saved to %s\n", SnapshotPath.c_str());
  }
  if (TelemetryReport)
    std::printf("\n%s", VM.telemetryReport().c_str());
  if (Profile) {
    // Resolve against the live heap before the VM goes away.
    stopVmProfiler();
    ProfileReport R = VM.buildProfileReport();
    std::printf("\n%s", R.render().c_str());
    if (!ProfileFolded.empty()) {
      if (R.writeFolded(ProfileFolded))
        std::printf("folded stacks written to %s (feed to flamegraph.pl)\n",
                    ProfileFolded.c_str());
      else
        std::fprintf(stderr, "failed to write folded stacks to %s\n",
                     ProfileFolded.c_str());
    }
  }
  if (!TraceOut.empty()) {
    if (writeChromeTrace(TraceOut))
      std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                  TraceOut.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   TraceOut.c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
