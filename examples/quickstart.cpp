//===-- examples/quickstart.cpp - Hello, Multiprocessor Smalltalk ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: boot a VM, bootstrap the image, evaluate
/// Smalltalk expressions, define a class with methods at runtime, and
/// watch Generation Scavenging statistics.
///
///   ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "image/Bootstrap.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main() {
  // One interpreter, full multiprocessor support (locks enabled), and a
  // small allocation space so the scavenger demo below has work to do
  // (the paper's MS ran with s = 80K bytes).
  VmConfig Config = VmConfig::multiprocessor(1);
  Config.Memory.EdenBytes = 512 * 1024;
  VirtualMachine VM(Config);
  bootstrapImage(VM);

  auto Eval = [&VM](const char *Src) {
    Oop R = VM.compileAndRun(Src);
    std::printf("  %-58s => %s\n", Src, VM.model().describe(R).c_str());
  };

  std::printf("Expressions:\n");
  Eval("^3 + 4 * 2");
  Eval("^10 factorial");
  Eval("^'multiprocessor ', 'smalltalk'");
  Eval("^#(3 1 4 1 5) inject: 0 into: [:a :b | a + b]");
  Eval("^((Point x: 3 y: 4) + (Point x: 1 y: 1)) printString");
  Eval("^42 printString , ' is ' , (42 even ifTrue: ['even'] ifFalse: "
       "['odd'])");

  std::printf("\nDefine a class and methods at runtime:\n");
  Oop Account = defineClass(VM, "Account", "Object", ClassKind::Fixed,
                            {"balance"}, "Examples");
  addMethod(VM, Account, "initialization", "init balance := 0");
  addMethod(VM, Account, "accessing", "balance ^balance");
  addMethod(VM, Account, "transactions",
            "deposit: amount balance := balance + amount. ^self");
  addMethod(VM, Account, "printing",
            "printOn: aStream aStream nextPutAll: 'Account('. aStream "
            "print: balance. aStream nextPut: $)");
  Eval("| a | a := Account new init. a deposit: 100; deposit: 42. "
       "^a printString");

  std::printf("\nBrowse it:\n");
  Eval("^Account definition");
  Eval("^(Account compiledMethodAt: #deposit:) decompile");

  std::printf("\nGeneration Scavenging at work:\n");
  Eval("| keep | keep := OrderedCollection new. 1 to: 20000 do: [:i | "
       "keep add: i printString. keep size > 100 ifTrue: [keep "
       "removeFirst]]. ^keep size");
  ScavengeStats S = VM.memory().statsSnapshot();
  std::printf("  scavenges: %llu, total pause %.3f ms, copied %llu "
              "bytes, tenured %llu bytes\n",
              static_cast<unsigned long long>(S.Scavenges),
              S.TotalPauseSec * 1000.0,
              static_cast<unsigned long long>(S.BytesCopied),
              static_cast<unsigned long long>(S.BytesTenured));

  std::printf("\nErrors logged: %zu\n", VM.errors().size());
  for (const std::string &E : VM.errors())
    std::printf("  %s\n", E.c_str());
  return 0;
}
