//===-- examples/producer_consumer.cpp - Processes and Semaphores ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's constraint §1.2: "We have not changed the existing
/// Smalltalk abstractions for dealing with concurrency. The basic
/// mechanisms remain the Process and the Semaphore." A classic bounded
/// buffer built from exactly those two abstractions, running across
/// parallel interpreter processes.
///
///   ./examples/producer_consumer
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "image/Bootstrap.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main() {
  VirtualMachine VM(VmConfig::multiprocessor(2));
  bootstrapImage(VM);

  // A bounded buffer in pure Smalltalk: mutex + item-count + space-count
  // semaphores around an OrderedCollection used as a queue.
  Oop Buffer = defineClass(VM, "SharedQueue", "Object", ClassKind::Fixed,
                           {"items", "mutex", "available", "space"},
                           "Examples");
  addMethod(VM, Buffer, "initialization",
            "initCapacity: n items := OrderedCollection new. mutex := "
            "Semaphore new. mutex signal. available := Semaphore new. "
            "space := Semaphore new. 1 to: n do: [:i | space signal]");
  addMethod(VM, Buffer, "accessing",
            "put: anObject space wait. mutex wait. items add: anObject. "
            "mutex signal. available signal. ^anObject");
  addMethod(VM, Buffer, "accessing",
            "take | v | available wait. mutex wait. v := items "
            "removeFirst. mutex signal. space signal. ^v");

  VM.startInterpreters();
  unsigned Done = VM.createHostSignal();

  VM.compileAndRun("Smalltalk at: #Queue put: (SharedQueue new "
                   "initCapacity: 8). Smalltalk at: #Consumed put: 0 -> 0");

  constexpr int Items = 500;
  // Producer: pushes 1..Items then a -1 sentinel.
  VM.forkDoIt("| q | q := Smalltalk at: #Queue. 1 to: " +
                  std::to_string(Items) +
                  " do: [:i | q put: i]. q put: -1",
              5, "producer");
  // Consumer: drains until the sentinel, summing.
  VM.forkDoIt("| q c v | q := Smalltalk at: #Queue. c := Smalltalk at: "
              "#Consumed. [v := q take. v >= 0] whileTrue: [c value: c "
              "value + v]. nil hostSignal: " + std::to_string(Done),
              5, "consumer");

  if (!VM.waitHostSignal(Done, 1, 120.0)) {
    std::fprintf(stderr, "consumer did not finish\n");
    return 1;
  }
  Oop Sum = VM.compileAndRun("^(Smalltalk at: #Consumed) value");
  long Expect = static_cast<long>(Items) * (Items + 1) / 2;
  std::printf("consumed sum: %s (expected %ld)\n",
              VM.model().describe(Sum).c_str(), Expect);
  bool Ok = Sum.isSmallInt() && Sum.smallInt() == Expect &&
            VM.errors().empty();
  for (const std::string &E : VM.errors())
    std::fprintf(stderr, "error: %s\n", E.c_str());
  std::printf("%s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
