//===-- examples/snapshot_roundtrip.cpp - Image snapshots -----------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Save a live image — classes defined at runtime, globals, state — and
/// resurrect it in a brand-new VM, the Smalltalk way of ending a session.
/// The §3.3 ritual (fill the activeProcess slot before the snapshot,
/// empty it after) happens inside saveSnapshot.
///
///   ./examples/snapshot_roundtrip [path]
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <thread>

#include "image/Bootstrap.h"
#include "image/Snapshot.h"
#include "vm/VirtualMachine.h"

using namespace mst;

int main(int Argc, char **Argv) {
  std::string Path = Argc > 1 ? Argv[1] : "/tmp/mst-demo.image";
  bool Ok = true;

  // Session 1: build a world and snapshot it.
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    bootstrapImage(VM);
    Oop Counter = defineClass(VM, "ClickCounter", "Object",
                              ClassKind::Fixed, {"clicks"}, "Demo");
    addMethod(VM, Counter, "accessing", "clicks ^clicks");
    addMethod(VM, Counter, "accessing",
              "click clicks := (clicks isNil ifTrue: [0] ifFalse: "
              "[clicks]) + 1. ^clicks");
    VM.compileAndRun("Smalltalk at: #TheCounter put: ClickCounter new. "
                     "1 to: 41 do: [:i | (Smalltalk at: #TheCounter) "
                     "click]");
    std::string Error;
    if (!saveSnapshot(VM, Path, Error)) {
      std::fprintf(stderr, "save failed: %s\n", Error.c_str());
      Ok = false;
      return;
    }
    std::printf("session 1: counter at %s, image saved to %s\n",
                VM.model()
                    .describe(VM.compileAndRun(
                        "^(Smalltalk at: #TheCounter) clicks"))
                    .c_str(),
                Path.c_str());
  }).join();
  if (!Ok)
    return 1;

  // Session 2: a fresh VM resumes exactly where session 1 stopped.
  std::thread([&] {
    VirtualMachine VM(VmConfig::multiprocessor(1));
    std::string Error;
    if (!loadSnapshot(VM, Path, Error)) {
      std::fprintf(stderr, "load failed: %s\n", Error.c_str());
      Ok = false;
      return;
    }
    Oop N = VM.compileAndRun("^(Smalltalk at: #TheCounter) click");
    std::printf("session 2: one more click -> %s\n",
                VM.model().describe(N).c_str());
    Ok = N.isSmallInt() && N.smallInt() == 42;
  }).join();

  std::printf("%s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
