# Empty compiler generated dependencies file for mst_vm.
# This may be replaced when dependencies are built.
