
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Bytecode.cpp" "src/vm/CMakeFiles/mst_vm.dir/Bytecode.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Bytecode.cpp.o.d"
  "/root/repo/src/vm/CodeGen.cpp" "src/vm/CMakeFiles/mst_vm.dir/CodeGen.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/CodeGen.cpp.o.d"
  "/root/repo/src/vm/Compiler.cpp" "src/vm/CMakeFiles/mst_vm.dir/Compiler.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Compiler.cpp.o.d"
  "/root/repo/src/vm/Decompiler.cpp" "src/vm/CMakeFiles/mst_vm.dir/Decompiler.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Decompiler.cpp.o.d"
  "/root/repo/src/vm/FreeContextList.cpp" "src/vm/CMakeFiles/mst_vm.dir/FreeContextList.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/FreeContextList.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/vm/CMakeFiles/mst_vm.dir/Interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Lexer.cpp" "src/vm/CMakeFiles/mst_vm.dir/Lexer.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Lexer.cpp.o.d"
  "/root/repo/src/vm/MethodCache.cpp" "src/vm/CMakeFiles/mst_vm.dir/MethodCache.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/MethodCache.cpp.o.d"
  "/root/repo/src/vm/ObjectModel.cpp" "src/vm/CMakeFiles/mst_vm.dir/ObjectModel.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/ObjectModel.cpp.o.d"
  "/root/repo/src/vm/Parser.cpp" "src/vm/CMakeFiles/mst_vm.dir/Parser.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Parser.cpp.o.d"
  "/root/repo/src/vm/Primitives.cpp" "src/vm/CMakeFiles/mst_vm.dir/Primitives.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Primitives.cpp.o.d"
  "/root/repo/src/vm/Scheduler.cpp" "src/vm/CMakeFiles/mst_vm.dir/Scheduler.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/Scheduler.cpp.o.d"
  "/root/repo/src/vm/SymbolTable.cpp" "src/vm/CMakeFiles/mst_vm.dir/SymbolTable.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/SymbolTable.cpp.o.d"
  "/root/repo/src/vm/VirtualMachine.cpp" "src/vm/CMakeFiles/mst_vm.dir/VirtualMachine.cpp.o" "gcc" "src/vm/CMakeFiles/mst_vm.dir/VirtualMachine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objmem/CMakeFiles/mst_objmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vkernel/CMakeFiles/mst_vkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
