file(REMOVE_RECURSE
  "CMakeFiles/mst_vm.dir/Bytecode.cpp.o"
  "CMakeFiles/mst_vm.dir/Bytecode.cpp.o.d"
  "CMakeFiles/mst_vm.dir/CodeGen.cpp.o"
  "CMakeFiles/mst_vm.dir/CodeGen.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Compiler.cpp.o"
  "CMakeFiles/mst_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Decompiler.cpp.o"
  "CMakeFiles/mst_vm.dir/Decompiler.cpp.o.d"
  "CMakeFiles/mst_vm.dir/FreeContextList.cpp.o"
  "CMakeFiles/mst_vm.dir/FreeContextList.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/mst_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Lexer.cpp.o"
  "CMakeFiles/mst_vm.dir/Lexer.cpp.o.d"
  "CMakeFiles/mst_vm.dir/MethodCache.cpp.o"
  "CMakeFiles/mst_vm.dir/MethodCache.cpp.o.d"
  "CMakeFiles/mst_vm.dir/ObjectModel.cpp.o"
  "CMakeFiles/mst_vm.dir/ObjectModel.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Parser.cpp.o"
  "CMakeFiles/mst_vm.dir/Parser.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Primitives.cpp.o"
  "CMakeFiles/mst_vm.dir/Primitives.cpp.o.d"
  "CMakeFiles/mst_vm.dir/Scheduler.cpp.o"
  "CMakeFiles/mst_vm.dir/Scheduler.cpp.o.d"
  "CMakeFiles/mst_vm.dir/SymbolTable.cpp.o"
  "CMakeFiles/mst_vm.dir/SymbolTable.cpp.o.d"
  "CMakeFiles/mst_vm.dir/VirtualMachine.cpp.o"
  "CMakeFiles/mst_vm.dir/VirtualMachine.cpp.o.d"
  "libmst_vm.a"
  "libmst_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
