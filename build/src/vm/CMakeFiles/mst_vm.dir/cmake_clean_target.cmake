file(REMOVE_RECURSE
  "libmst_vm.a"
)
