# Empty compiler generated dependencies file for mst_support.
# This may be replaced when dependencies are built.
