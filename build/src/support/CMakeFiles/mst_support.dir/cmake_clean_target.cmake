file(REMOVE_RECURSE
  "libmst_support.a"
)
