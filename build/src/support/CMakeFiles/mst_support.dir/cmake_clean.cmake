file(REMOVE_RECURSE
  "CMakeFiles/mst_support.dir/Format.cpp.o"
  "CMakeFiles/mst_support.dir/Format.cpp.o.d"
  "CMakeFiles/mst_support.dir/Stats.cpp.o"
  "CMakeFiles/mst_support.dir/Stats.cpp.o.d"
  "CMakeFiles/mst_support.dir/Timer.cpp.o"
  "CMakeFiles/mst_support.dir/Timer.cpp.o.d"
  "libmst_support.a"
  "libmst_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
