# Empty dependencies file for mst_image.
# This may be replaced when dependencies are built.
