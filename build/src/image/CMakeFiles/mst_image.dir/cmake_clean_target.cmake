file(REMOVE_RECURSE
  "libmst_image.a"
)
