file(REMOVE_RECURSE
  "CMakeFiles/mst_image.dir/Bootstrap.cpp.o"
  "CMakeFiles/mst_image.dir/Bootstrap.cpp.o.d"
  "CMakeFiles/mst_image.dir/KernelSource.cpp.o"
  "CMakeFiles/mst_image.dir/KernelSource.cpp.o.d"
  "CMakeFiles/mst_image.dir/MacroBenchmarks.cpp.o"
  "CMakeFiles/mst_image.dir/MacroBenchmarks.cpp.o.d"
  "CMakeFiles/mst_image.dir/Snapshot.cpp.o"
  "CMakeFiles/mst_image.dir/Snapshot.cpp.o.d"
  "libmst_image.a"
  "libmst_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
