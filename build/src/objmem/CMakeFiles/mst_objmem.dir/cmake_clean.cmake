file(REMOVE_RECURSE
  "CMakeFiles/mst_objmem.dir/ObjectMemory.cpp.o"
  "CMakeFiles/mst_objmem.dir/ObjectMemory.cpp.o.d"
  "CMakeFiles/mst_objmem.dir/Safepoint.cpp.o"
  "CMakeFiles/mst_objmem.dir/Safepoint.cpp.o.d"
  "CMakeFiles/mst_objmem.dir/Scavenger.cpp.o"
  "CMakeFiles/mst_objmem.dir/Scavenger.cpp.o.d"
  "CMakeFiles/mst_objmem.dir/Spaces.cpp.o"
  "CMakeFiles/mst_objmem.dir/Spaces.cpp.o.d"
  "libmst_objmem.a"
  "libmst_objmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_objmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
