
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objmem/ObjectMemory.cpp" "src/objmem/CMakeFiles/mst_objmem.dir/ObjectMemory.cpp.o" "gcc" "src/objmem/CMakeFiles/mst_objmem.dir/ObjectMemory.cpp.o.d"
  "/root/repo/src/objmem/Safepoint.cpp" "src/objmem/CMakeFiles/mst_objmem.dir/Safepoint.cpp.o" "gcc" "src/objmem/CMakeFiles/mst_objmem.dir/Safepoint.cpp.o.d"
  "/root/repo/src/objmem/Scavenger.cpp" "src/objmem/CMakeFiles/mst_objmem.dir/Scavenger.cpp.o" "gcc" "src/objmem/CMakeFiles/mst_objmem.dir/Scavenger.cpp.o.d"
  "/root/repo/src/objmem/Spaces.cpp" "src/objmem/CMakeFiles/mst_objmem.dir/Spaces.cpp.o" "gcc" "src/objmem/CMakeFiles/mst_objmem.dir/Spaces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vkernel/CMakeFiles/mst_vkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
