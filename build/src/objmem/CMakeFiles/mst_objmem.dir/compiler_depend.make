# Empty compiler generated dependencies file for mst_objmem.
# This may be replaced when dependencies are built.
