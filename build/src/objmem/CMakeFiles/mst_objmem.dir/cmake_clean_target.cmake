file(REMOVE_RECURSE
  "libmst_objmem.a"
)
