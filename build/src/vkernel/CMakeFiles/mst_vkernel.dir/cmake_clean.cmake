file(REMOVE_RECURSE
  "CMakeFiles/mst_vkernel.dir/Delay.cpp.o"
  "CMakeFiles/mst_vkernel.dir/Delay.cpp.o.d"
  "CMakeFiles/mst_vkernel.dir/IpcChannel.cpp.o"
  "CMakeFiles/mst_vkernel.dir/IpcChannel.cpp.o.d"
  "CMakeFiles/mst_vkernel.dir/SpinLock.cpp.o"
  "CMakeFiles/mst_vkernel.dir/SpinLock.cpp.o.d"
  "CMakeFiles/mst_vkernel.dir/VKernel.cpp.o"
  "CMakeFiles/mst_vkernel.dir/VKernel.cpp.o.d"
  "libmst_vkernel.a"
  "libmst_vkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_vkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
