file(REMOVE_RECURSE
  "libmst_vkernel.a"
)
