
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vkernel/Delay.cpp" "src/vkernel/CMakeFiles/mst_vkernel.dir/Delay.cpp.o" "gcc" "src/vkernel/CMakeFiles/mst_vkernel.dir/Delay.cpp.o.d"
  "/root/repo/src/vkernel/IpcChannel.cpp" "src/vkernel/CMakeFiles/mst_vkernel.dir/IpcChannel.cpp.o" "gcc" "src/vkernel/CMakeFiles/mst_vkernel.dir/IpcChannel.cpp.o.d"
  "/root/repo/src/vkernel/SpinLock.cpp" "src/vkernel/CMakeFiles/mst_vkernel.dir/SpinLock.cpp.o" "gcc" "src/vkernel/CMakeFiles/mst_vkernel.dir/SpinLock.cpp.o.d"
  "/root/repo/src/vkernel/VKernel.cpp" "src/vkernel/CMakeFiles/mst_vkernel.dir/VKernel.cpp.o" "gcc" "src/vkernel/CMakeFiles/mst_vkernel.dir/VKernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
