# Empty compiler generated dependencies file for mst_vkernel.
# This may be replaced when dependencies are built.
