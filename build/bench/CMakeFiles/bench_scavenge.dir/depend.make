# Empty dependencies file for bench_scavenge.
# This may be replaced when dependencies are built.
