file(REMOVE_RECURSE
  "CMakeFiles/bench_scavenge.dir/bench_scavenge.cpp.o"
  "CMakeFiles/bench_scavenge.dir/bench_scavenge.cpp.o.d"
  "bench_scavenge"
  "bench_scavenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scavenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
