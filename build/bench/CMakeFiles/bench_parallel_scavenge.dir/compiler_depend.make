# Empty compiler generated dependencies file for bench_parallel_scavenge.
# This may be replaced when dependencies are built.
