file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_scavenge.dir/bench_parallel_scavenge.cpp.o"
  "CMakeFiles/bench_parallel_scavenge.dir/bench_parallel_scavenge.cpp.o.d"
  "bench_parallel_scavenge"
  "bench_parallel_scavenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_scavenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
