# Empty dependencies file for bench_free_contexts.
# This may be replaced when dependencies are built.
