file(REMOVE_RECURSE
  "CMakeFiles/bench_free_contexts.dir/bench_free_contexts.cpp.o"
  "CMakeFiles/bench_free_contexts.dir/bench_free_contexts.cpp.o.d"
  "bench_free_contexts"
  "bench_free_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_free_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
