# Empty compiler generated dependencies file for bench_spinlock.
# This may be replaced when dependencies are built.
