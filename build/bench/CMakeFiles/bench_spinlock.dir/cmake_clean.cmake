file(REMOVE_RECURSE
  "CMakeFiles/bench_spinlock.dir/bench_spinlock.cpp.o"
  "CMakeFiles/bench_spinlock.dir/bench_spinlock.cpp.o.d"
  "bench_spinlock"
  "bench_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
