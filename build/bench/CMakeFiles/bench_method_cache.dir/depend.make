# Empty dependencies file for bench_method_cache.
# This may be replaced when dependencies are built.
