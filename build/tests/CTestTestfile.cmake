# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_vkernel[1]_include.cmake")
include("/root/repo/build/tests/test_objmem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
