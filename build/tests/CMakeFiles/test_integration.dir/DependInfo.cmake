
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/ConfigMatrixTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/ConfigMatrixTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/ConfigMatrixTest.cpp.o.d"
  "/root/repo/tests/integration/GcStressTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/GcStressTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/GcStressTest.cpp.o.d"
  "/root/repo/tests/integration/MacroBenchmarkTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/MacroBenchmarkTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/MacroBenchmarkTest.cpp.o.d"
  "/root/repo/tests/integration/ParallelTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/ParallelTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/ParallelTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/mst_image.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mst_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/objmem/CMakeFiles/mst_objmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vkernel/CMakeFiles/mst_vkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
