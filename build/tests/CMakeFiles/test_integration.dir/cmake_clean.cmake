file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/ConfigMatrixTest.cpp.o"
  "CMakeFiles/test_integration.dir/integration/ConfigMatrixTest.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/GcStressTest.cpp.o"
  "CMakeFiles/test_integration.dir/integration/GcStressTest.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/MacroBenchmarkTest.cpp.o"
  "CMakeFiles/test_integration.dir/integration/MacroBenchmarkTest.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/ParallelTest.cpp.o"
  "CMakeFiles/test_integration.dir/integration/ParallelTest.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
