
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/CompilerRobustnessTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/CompilerRobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/CompilerRobustnessTest.cpp.o.d"
  "/root/repo/tests/vm/CompilerTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/CompilerTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/CompilerTest.cpp.o.d"
  "/root/repo/tests/vm/DecompilerTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/DecompilerTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/DecompilerTest.cpp.o.d"
  "/root/repo/tests/vm/EdgeCaseTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/EdgeCaseTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/EdgeCaseTest.cpp.o.d"
  "/root/repo/tests/vm/FreeContextTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/FreeContextTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/FreeContextTest.cpp.o.d"
  "/root/repo/tests/vm/InterpreterTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/InterpreterTest.cpp.o.d"
  "/root/repo/tests/vm/LexerTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/LexerTest.cpp.o.d"
  "/root/repo/tests/vm/MethodCacheTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/MethodCacheTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/MethodCacheTest.cpp.o.d"
  "/root/repo/tests/vm/ObjectModelTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/ObjectModelTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/ObjectModelTest.cpp.o.d"
  "/root/repo/tests/vm/ParserTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/ParserTest.cpp.o.d"
  "/root/repo/tests/vm/SchedulerTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/SchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/SchedulerTest.cpp.o.d"
  "/root/repo/tests/vm/VirtualMachineTest.cpp" "tests/CMakeFiles/test_vm.dir/vm/VirtualMachineTest.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/VirtualMachineTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/mst_image.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mst_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/objmem/CMakeFiles/mst_objmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vkernel/CMakeFiles/mst_vkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
