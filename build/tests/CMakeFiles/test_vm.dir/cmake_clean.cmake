file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/vm/CompilerRobustnessTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/CompilerRobustnessTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/CompilerTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/CompilerTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/DecompilerTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/DecompilerTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/EdgeCaseTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/EdgeCaseTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/FreeContextTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/FreeContextTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/InterpreterTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/InterpreterTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/LexerTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/LexerTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/MethodCacheTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/MethodCacheTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/ObjectModelTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/ObjectModelTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/ParserTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/ParserTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/SchedulerTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/SchedulerTest.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/VirtualMachineTest.cpp.o"
  "CMakeFiles/test_vm.dir/vm/VirtualMachineTest.cpp.o.d"
  "test_vm"
  "test_vm.pdb"
  "test_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
