file(REMOVE_RECURSE
  "CMakeFiles/test_image.dir/image/BootstrapTest.cpp.o"
  "CMakeFiles/test_image.dir/image/BootstrapTest.cpp.o.d"
  "CMakeFiles/test_image.dir/image/BrowsingTest.cpp.o"
  "CMakeFiles/test_image.dir/image/BrowsingTest.cpp.o.d"
  "CMakeFiles/test_image.dir/image/KernelTest.cpp.o"
  "CMakeFiles/test_image.dir/image/KernelTest.cpp.o.d"
  "CMakeFiles/test_image.dir/image/MacroWorkloadTest.cpp.o"
  "CMakeFiles/test_image.dir/image/MacroWorkloadTest.cpp.o.d"
  "CMakeFiles/test_image.dir/image/SnapshotTest.cpp.o"
  "CMakeFiles/test_image.dir/image/SnapshotTest.cpp.o.d"
  "test_image"
  "test_image.pdb"
  "test_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
