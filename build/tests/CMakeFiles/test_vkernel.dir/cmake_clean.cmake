file(REMOVE_RECURSE
  "CMakeFiles/test_vkernel.dir/vkernel/IpcChannelTest.cpp.o"
  "CMakeFiles/test_vkernel.dir/vkernel/IpcChannelTest.cpp.o.d"
  "CMakeFiles/test_vkernel.dir/vkernel/SpinLockTest.cpp.o"
  "CMakeFiles/test_vkernel.dir/vkernel/SpinLockTest.cpp.o.d"
  "CMakeFiles/test_vkernel.dir/vkernel/VKernelTest.cpp.o"
  "CMakeFiles/test_vkernel.dir/vkernel/VKernelTest.cpp.o.d"
  "test_vkernel"
  "test_vkernel.pdb"
  "test_vkernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
