# Empty compiler generated dependencies file for test_vkernel.
# This may be replaced when dependencies are built.
