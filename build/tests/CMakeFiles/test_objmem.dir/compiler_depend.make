# Empty compiler generated dependencies file for test_objmem.
# This may be replaced when dependencies are built.
