file(REMOVE_RECURSE
  "CMakeFiles/test_objmem.dir/objmem/ObjectMemoryTest.cpp.o"
  "CMakeFiles/test_objmem.dir/objmem/ObjectMemoryTest.cpp.o.d"
  "CMakeFiles/test_objmem.dir/objmem/OopTest.cpp.o"
  "CMakeFiles/test_objmem.dir/objmem/OopTest.cpp.o.d"
  "CMakeFiles/test_objmem.dir/objmem/SafepointTest.cpp.o"
  "CMakeFiles/test_objmem.dir/objmem/SafepointTest.cpp.o.d"
  "CMakeFiles/test_objmem.dir/objmem/ScavengerTest.cpp.o"
  "CMakeFiles/test_objmem.dir/objmem/ScavengerTest.cpp.o.d"
  "test_objmem"
  "test_objmem.pdb"
  "test_objmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
