file(REMOVE_RECURSE
  "CMakeFiles/parallel_workers.dir/parallel_workers.cpp.o"
  "CMakeFiles/parallel_workers.dir/parallel_workers.cpp.o.d"
  "parallel_workers"
  "parallel_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
