
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_workers.cpp" "examples/CMakeFiles/parallel_workers.dir/parallel_workers.cpp.o" "gcc" "examples/CMakeFiles/parallel_workers.dir/parallel_workers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/mst_image.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mst_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/objmem/CMakeFiles/mst_objmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vkernel/CMakeFiles/mst_vkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
