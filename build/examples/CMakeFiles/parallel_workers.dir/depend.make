# Empty dependencies file for parallel_workers.
# This may be replaced when dependencies are built.
