file(REMOVE_RECURSE
  "CMakeFiles/snapshot_roundtrip.dir/snapshot_roundtrip.cpp.o"
  "CMakeFiles/snapshot_roundtrip.dir/snapshot_roundtrip.cpp.o.d"
  "snapshot_roundtrip"
  "snapshot_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
