# Empty compiler generated dependencies file for snapshot_roundtrip.
# This may be replaced when dependencies are built.
