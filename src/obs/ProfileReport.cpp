//===-- obs/ProfileReport.cpp - Resolved profile reports ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/ProfileReport.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>
#include <unordered_map>

using namespace mst;

namespace {

std::string placeholderFrame(uintptr_t MethodBits) {
  return MethodBits == 0 ? "(no method)" : "(reclaimed method)";
}

std::string resolveOr(const std::function<std::string(uintptr_t)> &F,
                      uintptr_t Bits, const std::string &Fallback) {
  if (F) {
    std::string S = F(Bits);
    if (!S.empty())
      return S;
  }
  return Fallback;
}

void jsonEscapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

double pct(uint64_t Part, uint64_t Whole) {
  return Whole ? 100.0 * double(Part) / double(Whole) : 0.0;
}

void appendLine(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
  Out += '\n';
}

/// The state column order used by every table.
const ProfState TableStates[] = {
    ProfState::Running,  ProfState::LookupMiss, ProfState::LockWait,
    ProfState::Safepoint, ProfState::Scavenge,  ProfState::FullGc,
    ProfState::IpcBlocked, ProfState::Idle,
};

} // namespace

void ProfileReport::merge(const ProfileReport &O) {
  std::map<std::tuple<std::string, std::string, std::string>, uint64_t>
      Buckets;
  for (const SampleRow &R : Samples)
    Buckets[{R.Vproc, R.State, R.Frame}] += R.Count;
  for (const SampleRow &R : O.Samples)
    Buckets[{R.Vproc, R.State, R.Frame}] += R.Count;
  Samples.clear();
  for (const auto &[K, V] : Buckets)
    Samples.push_back({std::get<0>(K), std::get<1>(K), std::get<2>(K), V});

  auto mergeSites = [](std::vector<SiteRow> &Mine,
                       const std::vector<SiteRow> &Theirs) {
    std::map<std::pair<std::string, std::string>, uint64_t> B;
    for (const SiteRow &R : Mine)
      B[{R.A, R.B}] += R.Count;
    for (const SiteRow &R : Theirs)
      B[{R.A, R.B}] += R.Count;
    Mine.clear();
    for (const auto &[K, V] : B)
      Mine.push_back({K.first, K.second, V});
  };
  mergeSites(MissSites, O.MissSites);
  mergeSites(AllocSites, O.AllocSites);

  Ticks += O.Ticks;
  TotalSamples += O.TotalSamples;
  AttributedSamples += O.AttributedSamples;
  AllocDropped += O.AllocDropped;
  MissDropped += O.MissDropped;
  if (!SampleHz)
    SampleHz = O.SampleHz;
  if (!AllocSamplePeriod)
    AllocSamplePeriod = O.AllocSamplePeriod;
}

std::string ProfileReport::render() const {
  std::string Out;
  appendLine(Out, "=== profile: %llu samples over %llu ticks @ %u Hz ===",
             (unsigned long long)TotalSamples, (unsigned long long)Ticks,
             SampleHz);
  if (TotalSamples)
    appendLine(Out, "attributed: %llu (%.1f%%)",
               (unsigned long long)AttributedSamples,
               pct(AttributedSamples, TotalSamples));

  // --- per-vproc state breakdown: where each vproc's wall time went.
  appendLine(Out, "%s", "");
  appendLine(Out, "--- time breakdown per vproc (%% of that vproc's samples)");
  appendLine(Out,
             "%-12s %9s  %7s %7s %7s %7s %7s %7s %7s %7s", "vproc",
             "samples", "run", "miss", "lock", "safept", "scav", "fullgc",
             "ipc", "idle");
  std::map<std::string, std::vector<uint64_t>> PerVp;
  for (const SampleRow &R : Samples) {
    auto &Row = PerVp[R.Vproc];
    if (Row.empty())
      Row.assign(NumProfStates + 1, 0);
    Row[NumProfStates] += R.Count;
    for (unsigned I = 0; I < NumProfStates; ++I)
      if (R.State == profStateName(TableStates[I]))
        Row[I] += R.Count;
  }
  for (const auto &[Vp, Row] : PerVp) {
    uint64_t T = Row[NumProfStates];
    appendLine(Out,
               "%-12s %9llu  %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
               "%6.1f%% %6.1f%% %6.1f%%",
               Vp.c_str(), (unsigned long long)T, pct(Row[0], T),
               pct(Row[1], T), pct(Row[2], T), pct(Row[3], T),
               pct(Row[4], T), pct(Row[5], T), pct(Row[6], T),
               pct(Row[7], T));
  }

  // --- method hot spots: self samples across all vprocs, split by state.
  struct Hot {
    uint64_t Total = 0;
    uint64_t Running = 0;
    uint64_t Other = 0;
  };
  std::unordered_map<std::string, Hot> ByFrame;
  for (const SampleRow &R : Samples) {
    if (R.State == "idle")
      continue; // idle has no meaningful frame
    Hot &H = ByFrame[R.Frame];
    H.Total += R.Count;
    if (R.State == "running")
      H.Running += R.Count;
    else
      H.Other += R.Count;
  }
  std::vector<std::pair<std::string, Hot>> HotRows(ByFrame.begin(),
                                                   ByFrame.end());
  std::sort(HotRows.begin(), HotRows.end(),
            [](const auto &A, const auto &B) {
              return A.second.Total > B.second.Total;
            });
  appendLine(Out, "%s", "");
  appendLine(Out, "--- hot methods (self samples; %% of all samples)");
  appendLine(Out, "%9s %7s %9s %9s  %s", "samples", "%wall", "running",
             "waiting", "method");
  size_t Shown = 0;
  for (const auto &[Frame, H] : HotRows) {
    if (++Shown > 25)
      break;
    appendLine(Out, "%9llu %6.1f%% %9llu %9llu  %s",
               (unsigned long long)H.Total, pct(H.Total, TotalSamples),
               (unsigned long long)H.Running, (unsigned long long)H.Other,
               Frame.c_str());
  }

  // --- method-cache miss profile, keyed by selector then call site.
  if (!MissSites.empty()) {
    std::map<std::string, uint64_t> BySel;
    for (const SiteRow &R : MissSites)
      BySel[R.B] += R.Count;
    std::vector<std::pair<std::string, uint64_t>> Sel(BySel.begin(),
                                                      BySel.end());
    std::sort(Sel.begin(), Sel.end(), [](const auto &A, const auto &B) {
      return A.second > B.second;
    });
    appendLine(Out, "%s", "");
    appendLine(Out, "--- method-cache misses by selector (dropped: %llu)",
               (unsigned long long)MissDropped);
    Shown = 0;
    for (const auto &[S, N] : Sel) {
      if (++Shown > 15)
        break;
      appendLine(Out, "%9llu  #%s", (unsigned long long)N, S.c_str());
    }
  }

  // --- allocation sites (sampled every Nth allocation).
  if (!AllocSites.empty()) {
    std::vector<SiteRow> Rows = AllocSites;
    std::sort(Rows.begin(), Rows.end(),
              [](const SiteRow &A, const SiteRow &B) {
                return A.Count > B.Count;
              });
    appendLine(Out, "%s", "");
    appendLine(Out,
               "--- allocation sites (1-in-%u sampled; dropped: %llu)",
               AllocSamplePeriod, (unsigned long long)AllocDropped);
    appendLine(Out, "%9s  %-28s %s", "samples", "class", "allocated in");
    Shown = 0;
    for (const SiteRow &R : Rows) {
      if (++Shown > 20)
        break;
      appendLine(Out, "%9llu  %-28s %s", (unsigned long long)R.Count,
                 R.B.c_str(), R.A.c_str());
    }
  }
  return Out;
}

std::string ProfileReport::folded() const {
  // "vp0;Bag>>add:;lock-wait 42" — vproc at the root, current method in
  // the middle, the state as the leaf, so a flamegraph shows each vproc's
  // wall time split by method and, within a method, by what it was doing.
  std::string Out;
  for (const SampleRow &R : Samples) {
    Out += R.Vproc;
    Out += ';';
    Out += R.Frame;
    Out += ';';
    Out += R.State;
    Out += ' ';
    Out += std::to_string(R.Count);
    Out += '\n';
  }
  return Out;
}

bool ProfileReport::writeFolded(const std::string &Path) const {
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os << folded();
  return static_cast<bool>(Os);
}

std::string ProfileReport::toJson() const {
  std::string Out = "{";
  Out += "\"ticks\":" + std::to_string(Ticks);
  Out += ",\"sample_hz\":" + std::to_string(SampleHz);
  Out += ",\"total_samples\":" + std::to_string(TotalSamples);
  Out += ",\"attributed_samples\":" + std::to_string(AttributedSamples);
  Out += ",\"alloc_sample_period\":" + std::to_string(AllocSamplePeriod);
  Out += ",\"alloc_dropped\":" + std::to_string(AllocDropped);
  Out += ",\"miss_dropped\":" + std::to_string(MissDropped);

  Out += ",\"samples\":[";
  bool First = true;
  for (const SampleRow &R : Samples) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"vproc\":\"";
    jsonEscapeTo(Out, R.Vproc);
    Out += "\",\"state\":\"";
    jsonEscapeTo(Out, R.State);
    Out += "\",\"frame\":\"";
    jsonEscapeTo(Out, R.Frame);
    Out += "\",\"count\":" + std::to_string(R.Count) + "}";
  }
  Out += "]";

  auto sitesJson = [](const std::vector<SiteRow> &Rows, const char *AName,
                      const char *BName) {
    std::string S = "[";
    bool Fst = true;
    for (const SiteRow &R : Rows) {
      if (!Fst)
        S += ',';
      Fst = false;
      S += "{\"";
      S += AName;
      S += "\":\"";
      jsonEscapeTo(S, R.A);
      S += "\",\"";
      S += BName;
      S += "\":\"";
      jsonEscapeTo(S, R.B);
      S += "\",\"count\":" + std::to_string(R.Count) + "}";
    }
    S += "]";
    return S;
  };
  Out += ",\"cache_misses\":" + sitesJson(MissSites, "site", "selector");
  Out += ",\"alloc_sites\":" + sitesJson(AllocSites, "site", "class");
  Out += "}";
  return Out;
}

ProfileReport mst::resolveProfile(const Profiler::Data &D,
                                  const ProfileResolver &R) {
  ProfileReport Rep;
  Rep.Ticks = D.Ticks;
  Rep.SampleHz = D.SampleHz;
  Rep.AllocSamplePeriod = D.AllocSamplePeriod;

  // Memoize resolution per bits value: the same method shows up in many
  // tuples and the validation walk is not free.
  std::unordered_map<uintptr_t, std::string> MethodNames, ClassNames,
      SelectorNames;
  auto methodFor = [&](uintptr_t Bits) -> const std::string & {
    auto It = MethodNames.find(Bits);
    if (It == MethodNames.end())
      It = MethodNames
               .emplace(Bits, resolveOr(R.MethodName, Bits,
                                        placeholderFrame(Bits)))
               .first;
    return It->second;
  };
  auto classFor = [&](uintptr_t Bits) -> const std::string & {
    auto It = ClassNames.find(Bits);
    if (It == ClassNames.end())
      It = ClassNames.emplace(Bits, resolveOr(R.ClassName, Bits, "?"))
               .first;
    return It->second;
  };
  auto selectorFor = [&](uintptr_t Bits) -> const std::string & {
    auto It = SelectorNames.find(Bits);
    if (It == SelectorNames.end())
      It = SelectorNames.emplace(Bits, resolveOr(R.SelectorName, Bits, "?"))
               .first;
    return It->second;
  };

  for (const Profiler::VprocData &V : D.Vprocs) {
    std::string Vp = !V.Name.empty() ? V.Name
                     : V.Vproc >= 0  ? "vp" + std::to_string(V.Vproc)
                                     : "host";
    std::map<std::tuple<std::string, std::string>, uint64_t> Buckets;
    for (const auto &[K, N] : V.Samples) {
      auto St = static_cast<ProfState>(
          K.State < NumProfStates ? K.State
                                  : uint8_t(ProfState::Running));
      const std::string &Frame = St == ProfState::Idle
                                     ? std::string("(idle)")
                                     : methodFor(K.Method);
      Rep.TotalSamples += N;
      bool Named = Frame[0] != '(' && Frame[0] != '?';
      if (Named || St != ProfState::Running)
        Rep.AttributedSamples += N;
      Buckets[{std::string(profStateName(St)), Frame}] += N;
    }
    for (const auto &[K, N] : Buckets)
      Rep.Samples.push_back({Vp, std::get<0>(K), std::get<1>(K), N});

    for (const auto &[K, N] : V.MissSites)
      Rep.MissSites.push_back({methodFor(K.A), selectorFor(K.B), N});
    for (const auto &[K, N] : V.AllocSites)
      Rep.AllocSites.push_back({methodFor(K.A), classFor(K.B), N});
    Rep.AllocDropped += V.AllocDropped;
    Rep.MissDropped += V.MissDropped;
  }

  // Coalesce cross-vproc duplicate site rows.
  ProfileReport Empty;
  std::swap(Empty.MissSites, Rep.MissSites);
  std::swap(Empty.AllocSites, Rep.AllocSites);
  Rep.merge(Empty);
  // merge() double-counted nothing: Empty had zero counts elsewhere.
  return Rep;
}
