//===-- obs/Profiler.h - Signal-free sampling profiler ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead sampling profiler for the replicated interpreter. Each
/// vproc's interpreter thread publishes a tiny *profile slot* — the
/// current CompiledMethod oop, the receiver's class, the bytecode pc, and
/// a state tag (running / lookup-miss / lock-wait / safepoint / scavenge /
/// fullgc / ipc-blocked / idle) — through relaxed atomic stores on
/// send/return and state transitions. A dedicated sampler thread wakes at
/// a configurable hz, walks the registered slots, and accumulates
/// (method, receiver class, state) tuples into per-vproc hash tables.
///
/// Design constraints, in order:
///  - **Mutators never take a lock or a signal.** Publication is plain
///    relaxed stores into the thread's own slot; the sampler reads them
///    with relaxed loads. No handshake, no SIGPROF, no unwinding.
///  - **Torn samples are tolerated, not prevented.** The (method, class,
///    pc, state) tuple is not updated atomically as a unit, so the
///    sampler can observe a method from send N and a class from send N+1.
///    Each field is individually valid (it was published by *some* recent
///    send), so the worst case is one sample attributed to a neighbouring
///    call — noise well below sampling error at any sane hz. This is why
///    the slot needs no seqlock: readers never crash (oop bits are only
///    *resolved* later, against a live heap, with full validation) and
///    mis-pairing decays as 1/samples.
///  - **Disabled means free.** When the profiler is off the interpreter
///    pays exactly one relaxed store per send (the method publication);
///    everything richer is gated behind one relaxed load of the enabled
///    flag. No allocation ever happens on a mutator path.
///
/// The sampler accumulates *raw oop bits*; it never dereferences the heap.
/// Resolution to "Class>>selector" strings happens at report time in the
/// VM layer (see VirtualMachine::buildProfileReport), which validates that
/// the bits still name a live old-space CompiledMethod before touching it.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_PROFILER_H
#define MST_OBS_PROFILER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mst {

/// What a vproc is doing at the instant of a sample. Running is the
/// default between explicit transition scopes; everything else is entered
/// through a ProfStateScope on the (cold) transition paths.
enum class ProfState : uint8_t {
  Idle = 0,   ///< no runnable Smalltalk Process (Scheduler::waitForWork)
  Running,    ///< executing bytecodes
  LookupMiss, ///< full method lookup after a cache miss
  LockWait,   ///< spinning on a contended SpinLock
  Safepoint,  ///< parked at a stop-the-world rendezvous
  Scavenge,   ///< coordinating a scavenge
  FullGc,     ///< coordinating a full mark-sweep collection
  IpcBlocked, ///< blocked in a synchronous IPC send/receive
};

inline constexpr unsigned NumProfStates = 8;

/// \returns the lowercase report name of \p S ("lock-wait", ...).
const char *profStateName(ProfState S);

/// One thread's publication slot plus its sampler-side accumulation.
/// Mutator-owned fields are written with relaxed stores only; the
/// Stats side is touched only under the profiler registry mutex (sampler
/// tick, data snapshot, reset).
struct ProfileSlot {
  /// A (method, class) or (method, selector) event for the single-
  /// producer rings below. The two words are individually-relaxed
  /// atomics so a sampler racing a lapping producer reads torn pairs,
  /// never UB — same tolerance argument as the sample tuple.
  struct PairEvent {
    std::atomic<uintptr_t> A{0};
    std::atomic<uintptr_t> B{0};
  };
  static constexpr uint32_t EventRingCap = 256; // power of two

  // --- published by the owning mutator (relaxed stores) -----------------
  std::atomic<uintptr_t> Method{0};    ///< current CompiledMethod oop bits
  std::atomic<uintptr_t> RecvClass{0}; ///< receiver class oop bits
  std::atomic<uint32_t> Pc{0};         ///< bytecode ip at last publication
  std::atomic<uint8_t> State{0};       ///< ProfState
  std::atomic<bool> Active{false};     ///< sampled only while true

  /// Allocation-site events: (instantiating method, instantiated class),
  /// written every Nth allocation. Overwrite ring — the producer never
  /// blocks; the sampler drains and counts what it lost.
  PairEvent AllocRing[EventRingCap];
  std::atomic<uint64_t> AllocWrite{0};

  /// Method-cache-miss events: (missing method = call site, selector).
  PairEvent MissRing[EventRingCap];
  std::atomic<uint64_t> MissWrite{0};

  /// Owner-only countdown to the next allocation sample.
  uint32_t AllocCountdown = 1;

  // --- sampler-side accumulation (registry mutex) -----------------------
  struct TupleKey {
    uintptr_t Method;
    uintptr_t RecvClass;
    uint8_t State;
    bool operator==(const TupleKey &O) const {
      return Method == O.Method && RecvClass == O.RecvClass &&
             State == O.State;
    }
  };
  struct TupleHash {
    size_t operator()(const TupleKey &K) const {
      uintptr_t H = K.Method * 0x9E3779B97F4A7C15ull;
      H ^= K.RecvClass + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
      return static_cast<size_t>(H ^ K.State);
    }
  };
  struct PairKey {
    uintptr_t A;
    uintptr_t B;
    bool operator==(const PairKey &O) const { return A == O.A && B == O.B; }
  };
  struct PairHash {
    size_t operator()(const PairKey &K) const {
      uintptr_t H = K.A * 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(H ^ (K.B + (H << 6) + (H >> 2)));
    }
  };

  std::unordered_map<TupleKey, uint64_t, TupleHash> Samples;
  std::unordered_map<PairKey, uint64_t, PairHash> AllocSites;
  std::unordered_map<PairKey, uint64_t, PairHash> MissSites;
  uint64_t AllocRead = 0; ///< drain cursor
  uint64_t MissRead = 0;
  uint64_t AllocDropped = 0; ///< ring overruns (producer lapped the drain)
  uint64_t MissDropped = 0;

  std::string Name; ///< registry mutex
  int Vproc = -1;   ///< registry mutex; -1 = host/service thread
};

namespace profdetail {
/// The calling thread's slot, or nullptr before registration. Exposed so
/// the per-send publication inlines to a TLS load + relaxed store.
extern thread_local ProfileSlot *SlotTL;
} // namespace profdetail

struct ProfilerOptions {
  /// Sampling rate. A prime default avoids phase-locking with the
  /// millisecond timeslice clock and other round-number periodic work.
  uint32_t SampleHz = 997;
  /// Record one allocation-site event every N allocations.
  uint32_t AllocSamplePeriod = 64;
  /// Called once per sampler tick before the slot walk. The fault-
  /// injection harness hangs a chaos point here (the obs layer itself
  /// stays below the chaos engine); tests may use it as a tick hook.
  void (*TickHook)() = nullptr;
};

/// Static facade over the process-wide profiler: slot registry, sampler
/// thread lifecycle, and raw-data snapshots. Slots are leaked like trace
/// rings — created on first registration, reused when the same thread
/// drives a second VM, kept after thread exit so reports can still read
/// their accumulated tables.
class Profiler {
public:
  /// One relaxed load; the gate for every optional mutator-side cost.
  static bool enabled() {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Starts the sampler thread. \returns false if already running.
  static bool start(const ProfilerOptions &O = {});

  /// Stops and joins the sampler thread. Accumulated data survives until
  /// reset(). Safe to call when not running.
  static void stop();

  /// Clears all accumulated samples/sites and the tick count.
  static void reset();

  /// \returns sampler ticks since start/reset (each tick samples every
  /// active slot once).
  static uint64_t ticks();

  static uint32_t allocSamplePeriod() {
    return AllocPeriod.load(std::memory_order_relaxed);
  }

  /// Registers (or re-activates) the calling thread's slot. \p Vproc is
  /// the virtual-processor / interpreter id, or -1 for service threads.
  static ProfileSlot *registerThread(std::string Name, int Vproc);

  /// Marks the calling thread's slot inactive: the sampler stops reading
  /// it, its accumulated tables remain until reset().
  static void retireThread();

  static ProfileSlot *slot() { return profdetail::SlotTL; }

  /// A deep copy of one slot's accumulation plus its identity.
  struct VprocData {
    std::string Name;
    int Vproc = -1;
    std::unordered_map<ProfileSlot::TupleKey, uint64_t,
                       ProfileSlot::TupleHash>
        Samples;
    std::unordered_map<ProfileSlot::PairKey, uint64_t,
                       ProfileSlot::PairHash>
        AllocSites;
    std::unordered_map<ProfileSlot::PairKey, uint64_t,
                       ProfileSlot::PairHash>
        MissSites;
    uint64_t AllocDropped = 0;
    uint64_t MissDropped = 0;
  };

  struct Data {
    std::vector<VprocData> Vprocs;
    uint64_t Ticks = 0;
    uint32_t SampleHz = 0;
    uint32_t AllocSamplePeriod = 0;
  };

  /// Snapshot of everything accumulated so far (running or stopped).
  static Data data();

private:
  friend void profNoteAllocation(uintptr_t);
  friend void profNoteCacheMiss(uintptr_t, uintptr_t);

  static std::atomic<bool> Enabled;
  static std::atomic<uint32_t> AllocPeriod;
};

/// RAII state-tag transition for the cold paths (lock acquisition, GC,
/// safepoint parks, idle waits, IPC). Two relaxed stores into the calling
/// thread's own slot; a no-op on unregistered threads. Unconditional —
/// not gated on enabled() — so state tags are correct the instant the
/// sampler starts mid-run.
class ProfStateScope {
public:
  explicit ProfStateScope(ProfState St) : S(profdetail::SlotTL) {
    if (S) {
      Prev = S->State.load(std::memory_order_relaxed);
      S->State.store(static_cast<uint8_t>(St), std::memory_order_relaxed);
    }
  }
  ~ProfStateScope() {
    if (S)
      S->State.store(Prev, std::memory_order_relaxed);
  }
  ProfStateScope(const ProfStateScope &) = delete;
  ProfStateScope &operator=(const ProfStateScope &) = delete;

private:
  ProfileSlot *S;
  uint8_t Prev = 0;
};

/// The per-send publication: exactly one relaxed store when the profiler
/// is disabled. Callers publish the richer tuple (class, pc, state)
/// themselves behind Profiler::enabled() — see Interpreter::reloadFrame.
inline void profNoteMethod(uintptr_t MethodBits) {
  if (ProfileSlot *S = profdetail::SlotTL)
    S->Method.store(MethodBits, std::memory_order_relaxed);
}

/// Allocation-site sampling hook: records (current method, \p ClsBits)
/// every allocSamplePeriod() calls. Caller gates on Profiler::enabled().
inline void profNoteAllocation(uintptr_t ClsBits) {
  ProfileSlot *S = profdetail::SlotTL;
  if (!S)
    return;
  if (--S->AllocCountdown != 0)
    return;
  S->AllocCountdown = Profiler::allocSamplePeriod();
  uint64_t W = S->AllocWrite.load(std::memory_order_relaxed);
  ProfileSlot::PairEvent &E =
      S->AllocRing[W & (ProfileSlot::EventRingCap - 1)];
  E.A.store(S->Method.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
  E.B.store(ClsBits, std::memory_order_relaxed);
  S->AllocWrite.store(W + 1, std::memory_order_release);
}

/// Method-cache-miss hook: records (call-site method, selector). The miss
/// path already pays a full lookup, so every miss is recorded, not
/// sampled. Caller gates on Profiler::enabled().
inline void profNoteCacheMiss(uintptr_t MethodBits, uintptr_t SelectorBits) {
  ProfileSlot *S = profdetail::SlotTL;
  if (!S)
    return;
  uint64_t W = S->MissWrite.load(std::memory_order_relaxed);
  ProfileSlot::PairEvent &E =
      S->MissRing[W & (ProfileSlot::EventRingCap - 1)];
  E.A.store(MethodBits, std::memory_order_relaxed);
  E.B.store(SelectorBits, std::memory_order_relaxed);
  S->MissWrite.store(W + 1, std::memory_order_release);
}

} // namespace mst

#endif // MST_OBS_PROFILER_H
