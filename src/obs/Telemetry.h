//===-- obs/Telemetry.h - Counter and gauge registry ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM-wide telemetry registry: named counters, gauges, and histograms
/// that any subsystem can register and a report can aggregate on demand.
/// This is the unified form of the instrumentation the paper plans in §6 —
/// instead of each shared resource keeping ad-hoc atomics, every lock,
/// cache, and allocator owns registry counters, and one snapshot shows
/// where serialization eats the parallel speedup.
///
/// Design constraints:
///  - Counting must be cheap under heavy multiprocessor use, so a Counter
///    is *striped*: cache-line-padded per-thread-slot cells incremented
///    with relaxed atomics, summed only when read. A single shared
///    fetch_add would itself be a serialization point — precisely the
///    disease this layer exists to measure.
///  - Multiple VirtualMachine instances may coexist (the test suite builds
///    dozens); the registry therefore aggregates *by name*, summing
///    duplicates, and entries unregister themselves on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_TELEMETRY_H
#define MST_OBS_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mst {

class Histogram;

namespace obsdetail {
/// \returns a small dense slot index for the calling thread, used to pick
/// a counter stripe. Assigned once per thread, never reused.
unsigned nextThreadSlot();

inline unsigned threadSlot() {
  thread_local unsigned Slot = nextThreadSlot();
  return Slot;
}
} // namespace obsdetail

/// A monotonically increasing event counter. Safe to increment from any
/// thread; increments are striped across cache-line-padded cells so
/// concurrent counting never bounces a shared line.
class Counter {
public:
  /// \param Name registry name; empty = private (not aggregated).
  explicit Counter(std::string Name = {});
  ~Counter();

  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  /// Adds \p N to the counter. Relaxed; never a synchronization point.
  void add(uint64_t N = 1) {
    Stripes[obsdetail::threadSlot() & (NumStripes - 1)].V.fetch_add(
        N, std::memory_order_relaxed);
  }

  /// \returns the current total (sum over stripes; racy but monotonic).
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Stripe &S : Stripes)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  /// Zeroes every stripe. Only meaningful while writers are quiescent.
  void reset() {
    for (Stripe &S : Stripes)
      S.V.store(0, std::memory_order_relaxed);
  }

  const std::string &name() const { return Name; }

private:
  static constexpr unsigned NumStripes = 8; // power of two

  struct alignas(64) Stripe {
    std::atomic<uint64_t> V{0};
  };

  Stripe Stripes[NumStripes];
  std::string Name;
};

/// A named read-through gauge: reports the current value of some quantity
/// (heap usage, queue depth) by invoking a callback at snapshot time.
class Gauge {
public:
  Gauge(std::string Name, std::function<uint64_t()> Read);
  ~Gauge();

  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

  uint64_t read() const { return Read ? Read() : 0; }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::function<uint64_t()> Read;
};

/// Static facade over the process-wide registry.
class Telemetry {
public:
  /// One histogram's summary, in the histogram's native unit (ns for the
  /// pause-time histograms; the serving layer records request counts).
  struct HistogramSummary {
    std::string Name;
    std::string Unit = "ns";
    uint64_t Count = 0;
    uint64_t P50 = 0;
    uint64_t P95 = 0;
    uint64_t P99 = 0;
    uint64_t Max = 0;
  };

  /// A full point-in-time copy of the registry's aggregates. Taken before
  /// a VM shuts down, it survives the destruction of the underlying
  /// counters (benchmark JSON needs exactly this).
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, uint64_t>> Gauges;
    std::vector<HistogramSummary> Histograms;
  };

  /// \returns totals of all registered counters, aggregated by name and
  /// sorted lexicographically.
  static std::vector<std::pair<std::string, uint64_t>> counterTotals();

  /// \returns current values of all registered gauges (duplicates summed).
  static std::vector<std::pair<std::string, uint64_t>> gaugeValues();

  /// \returns summaries of all registered histograms (duplicates merged by
  /// keeping each instance as its own entry is wrong for replicas, so
  /// same-name histograms are merged bucket-wise).
  static std::vector<HistogramSummary> histogramSummaries();

  /// \returns the whole registry state at once.
  static Snapshot snapshot();

  /// Serializes \p S as a JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,p50_ns,p95_ns,p99_ns,max_ns}}}.
  static std::string toJson(const Snapshot &S);

  /// Zeroes every registered counter and histogram (benchmark harness use,
  /// between warmup and the measured region).
  static void resetAll();

  /// --- Tracing master switch ---------------------------------------------
  /// The tracing fast path is a single relaxed load of this flag; when
  /// false, spans and instants compile down to a test-and-branch.

  static bool tracingEnabled() {
    return TracingOn.load(std::memory_order_relaxed);
  }
  static void setTracingEnabled(bool On) {
    TracingOn.store(On, std::memory_order_relaxed);
  }

  /// \returns nanoseconds since the process's trace epoch (first use).
  static uint64_t nowNs();

private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  static void registerCounter(Counter *C);
  static void unregisterCounter(Counter *C);
  static void registerGauge(Gauge *G);
  static void unregisterGauge(Gauge *G);
  static void registerHistogram(Histogram *H);
  static void unregisterHistogram(Histogram *H);

  static std::atomic<bool> TracingOn;
};

} // namespace mst

#endif // MST_OBS_TELEMETRY_H
