//===-- obs/Profiler.cpp - Signal-free sampling profiler ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

using namespace mst;

thread_local ProfileSlot *mst::profdetail::SlotTL = nullptr;

std::atomic<bool> Profiler::Enabled{false};
std::atomic<uint32_t> Profiler::AllocPeriod{64};

const char *mst::profStateName(ProfState S) {
  switch (S) {
  case ProfState::Idle:
    return "idle";
  case ProfState::Running:
    return "running";
  case ProfState::LookupMiss:
    return "lookup-miss";
  case ProfState::LockWait:
    return "lock-wait";
  case ProfState::Safepoint:
    return "safepoint";
  case ProfState::Scavenge:
    return "scavenge";
  case ProfState::FullGc:
    return "fullgc";
  case ProfState::IpcBlocked:
    return "ipc-blocked";
  }
  return "?";
}

namespace {

/// Intentionally leaked, like the trace-ring registry: slots are created
/// lazily, survive their owning thread, and stay valid for report code
/// that runs after the workers have exited.
struct ProfRegistry {
  std::mutex M;
  std::vector<std::unique_ptr<ProfileSlot>> Slots;

  // Sampler lifecycle, guarded by M except the atomics.
  std::thread Sampler;
  bool Running = false;
  std::atomic<bool> StopRequested{false};
  std::atomic<uint64_t> Ticks{0};
  uint32_t SampleHz = 0;
  void (*TickHook)() = nullptr;
};

ProfRegistry &preg() {
  static ProfRegistry *R = new ProfRegistry;
  return *R;
}

/// Drains [Read, Write) of an overwrite ring into \p Into, counting what
/// the producer overwrote before we got to it. Registry mutex held.
void drainRing(ProfileSlot::PairEvent (&Ring)[ProfileSlot::EventRingCap],
               std::atomic<uint64_t> &Write, uint64_t &Read,
               std::unordered_map<ProfileSlot::PairKey, uint64_t,
                                  ProfileSlot::PairHash> &Into,
               uint64_t &Dropped) {
  uint64_t W = Write.load(std::memory_order_acquire);
  if (W - Read > ProfileSlot::EventRingCap) {
    Dropped += (W - Read) - ProfileSlot::EventRingCap;
    Read = W - ProfileSlot::EventRingCap;
  }
  for (; Read < W; ++Read) {
    const ProfileSlot::PairEvent &E =
        Ring[Read & (ProfileSlot::EventRingCap - 1)];
    ProfileSlot::PairKey K{E.A.load(std::memory_order_relaxed),
                           E.B.load(std::memory_order_relaxed)};
    ++Into[K];
  }
}

void sampleOnce(ProfRegistry &R) {
  std::lock_guard<std::mutex> G(R.M);
  for (auto &SlotPtr : R.Slots) {
    ProfileSlot &S = *SlotPtr;
    if (!S.Active.load(std::memory_order_relaxed))
      continue;
    ProfileSlot::TupleKey K{S.Method.load(std::memory_order_relaxed),
                            S.RecvClass.load(std::memory_order_relaxed),
                            S.State.load(std::memory_order_relaxed)};
    ++S.Samples[K];
    drainRing(S.AllocRing, S.AllocWrite, S.AllocRead, S.AllocSites,
              S.AllocDropped);
    drainRing(S.MissRing, S.MissWrite, S.MissRead, S.MissSites,
              S.MissDropped);
  }
  R.Ticks.fetch_add(1, std::memory_order_relaxed);
}

void samplerMain(uint32_t Hz, void (*TickHook)()) {
  ProfRegistry &R = preg();
  const auto Period =
      std::chrono::nanoseconds(uint64_t(1000000000ull / std::max(1u, Hz)));
  auto Next = std::chrono::steady_clock::now();
  while (!R.StopRequested.load(std::memory_order_acquire)) {
    Next += Period;
    auto Now = std::chrono::steady_clock::now();
    if (Next > Now)
      std::this_thread::sleep_until(Next);
    else // Fell behind (debugger, overload): resync instead of bursting.
      Next = Now;
    if (R.StopRequested.load(std::memory_order_acquire))
      break;
    if (TickHook)
      TickHook();
    sampleOnce(R);
  }
}

} // namespace

bool Profiler::start(const ProfilerOptions &O) {
  ProfRegistry &R = preg();
  std::lock_guard<std::mutex> G(R.M);
  if (R.Running)
    return false;
  R.SampleHz = O.SampleHz ? O.SampleHz : ProfilerOptions().SampleHz;
  AllocPeriod.store(std::max(1u, O.AllocSamplePeriod),
                    std::memory_order_relaxed);
  R.TickHook = O.TickHook;
  R.StopRequested.store(false, std::memory_order_release);
  Enabled.store(true, std::memory_order_relaxed);
  R.Sampler = std::thread(samplerMain, R.SampleHz, R.TickHook);
  R.Running = true;
  return true;
}

void Profiler::stop() {
  ProfRegistry &R = preg();
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> G(R.M);
    if (!R.Running)
      return;
    Enabled.store(false, std::memory_order_relaxed);
    R.StopRequested.store(true, std::memory_order_release);
    ToJoin = std::move(R.Sampler);
    R.Running = false;
  }
  // Join outside the mutex: the sampler's final tick needs it.
  ToJoin.join();
}

void Profiler::reset() {
  ProfRegistry &R = preg();
  std::lock_guard<std::mutex> G(R.M);
  for (auto &SlotPtr : R.Slots) {
    ProfileSlot &S = *SlotPtr;
    S.Samples.clear();
    S.AllocSites.clear();
    S.MissSites.clear();
    S.AllocDropped = S.MissDropped = 0;
    // Skip, rather than count, anything already in the rings.
    S.AllocRead = S.AllocWrite.load(std::memory_order_acquire);
    S.MissRead = S.MissWrite.load(std::memory_order_acquire);
  }
  R.Ticks.store(0, std::memory_order_relaxed);
}

uint64_t Profiler::ticks() {
  return preg().Ticks.load(std::memory_order_relaxed);
}

ProfileSlot *Profiler::registerThread(std::string Name, int Vproc) {
  ProfRegistry &R = preg();
  ProfileSlot *S = profdetail::SlotTL;
  std::lock_guard<std::mutex> G(R.M);
  if (!S) {
    auto Owned = std::make_unique<ProfileSlot>();
    S = Owned.get();
    R.Slots.push_back(std::move(Owned));
    profdetail::SlotTL = S;
  }
  S->Name = std::move(Name);
  S->Vproc = Vproc;
  S->Method.store(0, std::memory_order_relaxed);
  S->RecvClass.store(0, std::memory_order_relaxed);
  S->Pc.store(0, std::memory_order_relaxed);
  S->State.store(static_cast<uint8_t>(ProfState::Idle),
                 std::memory_order_relaxed);
  S->AllocCountdown = 1;
  S->Active.store(true, std::memory_order_relaxed);
  return S;
}

void Profiler::retireThread() {
  if (ProfileSlot *S = profdetail::SlotTL)
    S->Active.store(false, std::memory_order_relaxed);
}

Profiler::Data Profiler::data() {
  ProfRegistry &R = preg();
  Data D;
  std::lock_guard<std::mutex> G(R.M);
  D.Ticks = R.Ticks.load(std::memory_order_relaxed);
  D.SampleHz = R.SampleHz;
  D.AllocSamplePeriod = AllocPeriod.load(std::memory_order_relaxed);
  for (auto &SlotPtr : R.Slots) {
    ProfileSlot &S = *SlotPtr;
    if (S.Samples.empty() && S.AllocSites.empty() && S.MissSites.empty())
      continue;
    VprocData V;
    V.Name = S.Name;
    V.Vproc = S.Vproc;
    V.Samples = S.Samples;
    V.AllocSites = S.AllocSites;
    V.MissSites = S.MissSites;
    V.AllocDropped = S.AllocDropped;
    V.MissDropped = S.MissDropped;
    D.Vprocs.push_back(std::move(V));
  }
  return D;
}
