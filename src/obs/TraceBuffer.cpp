//===-- obs/TraceBuffer.cpp - Per-thread trace rings & export -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceBuffer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

using namespace mst;

namespace {

/// One thread's ring. The owning thread writes events and bumps WriteIdx
/// with a release store; the merger reads the index with acquire and then
/// the events. Once the ring wraps, the oldest events are overwritten in
/// place — the merger reads at most the last TraceRingCapacity events.
struct Ring {
  TraceEvent Events[TraceRingCapacity];
  std::atomic<uint64_t> WriteIdx{0};
  std::string ThreadName; // guarded by the trace registry mutex
  int Processor = -1;     // guarded by the trace registry mutex
  unsigned Id = 0;
};

/// Intentionally leaked (see Telemetry.cpp's registry for the rationale).
/// Rings are created lazily, live for the rest of the process, and keep
/// their events after the owning thread exits — merging happens after a
/// run, when the worker threads are long gone.
struct TraceRegistry {
  std::mutex M;
  std::vector<std::unique_ptr<Ring>> Rings;
  /// Events overwritten by ring wrap-around since process start. A Chrome
  /// trace merged from wrapped rings silently shows only the most recent
  /// window; this counter makes the truncation detectable.
  Counter Dropped{"vm.trace.dropped"};
  /// Overwritten events currently unrecoverable from the live rings
  /// (resets with clearTrace, unlike the cumulative counter).
  Gauge DroppedNow{"vm.trace.dropped.current", [this] {
                     uint64_t N = 0;
                     std::lock_guard<std::mutex> G(M);
                     for (const auto &R : Rings) {
                       uint64_t W =
                           R->WriteIdx.load(std::memory_order_relaxed);
                       if (W > TraceRingCapacity)
                         N += W - TraceRingCapacity;
                     }
                     return N;
                   }};
};

TraceRegistry &treg() {
  static TraceRegistry *R = new TraceRegistry;
  return *R;
}

struct PendingThreadInfo {
  std::string Name;
  int Processor = -1;
  bool Set = false;
};

thread_local PendingThreadInfo PendingTL;
thread_local Ring *RingTL = nullptr;

Ring &myRing() {
  if (RingTL)
    return *RingTL;
  TraceRegistry &R = treg();
  std::lock_guard<std::mutex> G(R.M);
  auto Owned = std::make_unique<Ring>();
  Ring *P = Owned.get();
  P->Id = static_cast<unsigned>(R.Rings.size());
  if (PendingTL.Set) {
    P->ThreadName = PendingTL.Name;
    P->Processor = PendingTL.Processor;
  }
  R.Rings.push_back(std::move(Owned));
  RingTL = P;
  return *P;
}

void append(const TraceEvent &E) {
  Ring &R = myRing();
  uint64_t W = R.WriteIdx.load(std::memory_order_relaxed);
  if (W >= TraceRingCapacity)
    treg().Dropped.add(); // overwriting the oldest event
  R.Events[W & (TraceRingCapacity - 1)] = E;
  R.WriteIdx.store(W + 1, std::memory_order_release);
}

void jsonEscapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Ns) / 1000.0);
  Out += Buf;
}

int ringPid(const Ring &R) { return R.Processor >= 0 ? R.Processor + 1 : 0; }

} // namespace

void mst::obsdetail::recordComplete(const char *Name, const char *Cat,
                                    uint64_t StartNs, uint64_t DurNs,
                                    uint64_t Arg, bool HasArg) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.Arg = Arg;
  E.HasArg = HasArg;
  E.Phase = TracePhase::Complete;
  append(E);
}

void mst::obsdetail::recordInstant(const char *Name, const char *Cat,
                                   uint64_t Arg, bool HasArg) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.StartNs = Telemetry::nowNs();
  E.Arg = Arg;
  E.HasArg = HasArg;
  E.Phase = TracePhase::Instant;
  append(E);
}

void mst::setTraceThreadInfo(std::string Name, int Processor) {
  PendingTL.Name = std::move(Name);
  PendingTL.Processor = Processor;
  PendingTL.Set = true;
  if (RingTL) {
    TraceRegistry &R = treg();
    std::lock_guard<std::mutex> G(R.M);
    RingTL->ThreadName = PendingTL.Name;
    RingTL->Processor = Processor;
  }
}

void mst::setTraceThreadName(std::string Name) {
  PendingTL.Name = std::move(Name);
  PendingTL.Set = true;
  if (RingTL) {
    TraceRegistry &R = treg();
    std::lock_guard<std::mutex> G(R.M);
    RingTL->ThreadName = PendingTL.Name;
  }
}

std::string mst::chromeTraceJson() {
  std::string Out;
  Out.reserve(1 << 16);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto comma = [&] {
    if (!First)
      Out += ',';
    First = false;
  };

  TraceRegistry &R = treg();
  std::lock_guard<std::mutex> G(R.M);

  // Process metadata: one process per virtual processor, plus pid 0 for
  // host/service threads.
  std::vector<int> Pids;
  for (const auto &Ring : R.Rings)
    Pids.push_back(ringPid(*Ring));
  std::sort(Pids.begin(), Pids.end());
  Pids.erase(std::unique(Pids.begin(), Pids.end()), Pids.end());
  for (int Pid : Pids) {
    comma();
    Out += "{\"ph\":\"M\",\"pid\":" + std::to_string(Pid) +
           ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    if (Pid == 0)
      Out += "host";
    else
      Out += "vp " + std::to_string(Pid - 1);
    Out += "\"}}";
  }

  for (const auto &RingPtr : R.Rings) {
    const Ring &B = *RingPtr;
    int Pid = ringPid(B);
    std::string Tid = std::to_string(B.Id);
    if (!B.ThreadName.empty()) {
      comma();
      Out += "{\"ph\":\"M\",\"pid\":" + std::to_string(Pid) +
             ",\"tid\":" + Tid +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      jsonEscapeTo(Out, B.ThreadName);
      Out += "\"}}";
    }
    uint64_t W = B.WriteIdx.load(std::memory_order_acquire);
    uint64_t Count = std::min<uint64_t>(W, TraceRingCapacity);
    for (uint64_t I = W - Count; I < W; ++I) {
      const TraceEvent &E = B.Events[I & (TraceRingCapacity - 1)];
      comma();
      Out += "{\"name\":\"";
      jsonEscapeTo(Out, E.Name ? E.Name : "?");
      Out += "\",\"cat\":\"";
      jsonEscapeTo(Out, E.Cat ? E.Cat : "mst");
      Out += "\",\"ph\":\"";
      Out += E.Phase == TracePhase::Complete ? "X" : "i";
      Out += "\",\"pid\":" + std::to_string(Pid) + ",\"tid\":" + Tid +
             ",\"ts\":";
      appendMicros(Out, E.StartNs);
      if (E.Phase == TracePhase::Complete) {
        Out += ",\"dur\":";
        appendMicros(Out, E.DurNs);
      } else {
        Out += ",\"s\":\"t\"";
      }
      if (E.HasArg)
        Out += ",\"args\":{\"value\":" + std::to_string(E.Arg) + "}";
      Out += "}";
    }
  }
  Out += "]}";
  return Out;
}

bool mst::writeChromeTrace(const std::string &Path) {
  std::string Json = chromeTraceJson();
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os << Json;
  return static_cast<bool>(Os);
}

void mst::clearTrace() {
  TraceRegistry &R = treg();
  std::lock_guard<std::mutex> G(R.M);
  for (const auto &RingPtr : R.Rings)
    RingPtr->WriteIdx.store(0, std::memory_order_release);
}

size_t mst::countTraceSpans(const char *Name) {
  size_t N = 0;
  TraceRegistry &R = treg();
  std::lock_guard<std::mutex> G(R.M);
  for (const auto &RingPtr : R.Rings) {
    const Ring &B = *RingPtr;
    uint64_t W = B.WriteIdx.load(std::memory_order_acquire);
    uint64_t Count = std::min<uint64_t>(W, TraceRingCapacity);
    for (uint64_t I = W - Count; I < W; ++I) {
      const TraceEvent &E = B.Events[I & (TraceRingCapacity - 1)];
      if (E.Phase == TracePhase::Complete && E.Name &&
          std::strcmp(E.Name, Name) == 0)
        ++N;
    }
  }
  return N;
}

size_t mst::traceEventCount() {
  size_t N = 0;
  TraceRegistry &R = treg();
  std::lock_guard<std::mutex> G(R.M);
  for (const auto &RingPtr : R.Rings)
    N += static_cast<size_t>(
        std::min<uint64_t>(RingPtr->WriteIdx.load(std::memory_order_acquire),
                           TraceRingCapacity));
  return N;
}
