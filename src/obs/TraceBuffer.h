//===-- obs/TraceBuffer.h - Per-thread trace rings & spans ------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event tracing: each thread that records gets its own fixed-size ring
/// buffer (single producer, no locks on the hot path), and a merger folds
/// every ring into one Chrome trace-event JSON document that Perfetto or
/// chrome://tracing can open. Events are attributed to *virtual
/// processors* — the paper's unit of parallelism — via the pid field, so
/// the timeline shows directly how work interleaves across processors and
/// where the scavenger stops the world.
///
/// The whole layer is gated on Telemetry::tracingEnabled(): when off, a
/// TraceSpan is one relaxed load and a branch, and no buffer is ever
/// allocated.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_TRACEBUFFER_H
#define MST_OBS_TRACEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/Telemetry.h"
#include "obs/TraceEvent.h"

namespace mst {

namespace obsdetail {
/// Slow paths, only reached while tracing is enabled. Each appends to the
/// calling thread's ring, creating it on first use.
void recordComplete(const char *Name, const char *Cat, uint64_t StartNs,
                    uint64_t DurNs, uint64_t Arg, bool HasArg);
void recordInstant(const char *Name, const char *Cat, uint64_t Arg,
                   bool HasArg);
} // namespace obsdetail

/// Names the calling thread for trace attribution. \p Processor is the
/// virtual processor the thread runs on, or -1 for host/service threads.
/// Cheap enough to call unconditionally at thread start; remembered even
/// if tracing is enabled later.
void setTraceThreadInfo(std::string Name, int Processor);

/// Renames the calling thread without touching its processor attribution
/// (mutator registration knows the name; the kernel knows the processor).
void setTraceThreadName(std::string Name);

/// Records an instant event ("i" phase) on the calling thread's timeline.
inline void traceInstant(const char *Name, const char *Cat) {
  if (Telemetry::tracingEnabled())
    obsdetail::recordInstant(Name, Cat, 0, false);
}
inline void traceInstant(const char *Name, const char *Cat, uint64_t Arg) {
  if (Telemetry::tracingEnabled())
    obsdetail::recordInstant(Name, Cat, Arg, true);
}

/// RAII scope that records a complete span ("X" phase) from construction
/// to destruction. \p Name and \p Cat must be string literals.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) : Name(Name), Cat(Cat) {
    if (Telemetry::tracingEnabled()) {
      Active = true;
      StartNs = Telemetry::nowNs();
    }
  }

  ~TraceSpan() {
    if (Active)
      obsdetail::recordComplete(Name, Cat, StartNs,
                                Telemetry::nowNs() - StartNs, Arg, HasArg);
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a numeric argument (bytes copied, message id, ...) shown in
  /// the trace viewer's detail pane.
  void setArg(uint64_t A) {
    Arg = A;
    HasArg = true;
  }

  bool active() const { return Active; }

private:
  const char *Name;
  const char *Cat;
  uint64_t StartNs = 0;
  uint64_t Arg = 0;
  bool Active = false;
  bool HasArg = false;
};

/// \returns the merged trace as a Chrome trace-event JSON document.
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path. \returns false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Discards all recorded events (ring indices reset; buffers stay
/// allocated so concurrent recorders keep valid pointers).
void clearTrace();

/// \returns how many complete spans named \p Name are currently recorded
/// across all rings (test support).
size_t countTraceSpans(const char *Name);

/// \returns the total number of events currently held across all rings.
size_t traceEventCount();

/// Ring capacity per thread, in events (power of two). When a ring wraps,
/// the oldest events are overwritten — tracing keeps the most recent
/// window, it never blocks or allocates on overflow.
inline constexpr size_t TraceRingCapacity = 8192;

} // namespace mst

#endif // MST_OBS_TRACEBUFFER_H
