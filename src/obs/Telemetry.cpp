//===-- obs/Telemetry.cpp - Counter and gauge registry --------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "obs/Histogram.h"

using namespace mst;

std::atomic<bool> Telemetry::TracingOn{false};

namespace {

/// The process-wide registry. Intentionally leaked: counters with static
/// storage duration may outlive any function-local static, and a dangling
/// registry in their destructors would be worse than 200 bytes at exit.
struct Registry {
  std::mutex M;
  std::vector<Counter *> Counters;
  std::vector<Gauge *> Gauges;
  std::vector<Histogram *> Histograms;
};

Registry &reg() {
  static Registry *R = new Registry;
  return *R;
}

template <typename T> void eraseOne(std::vector<T *> &V, T *P) {
  auto It = std::find(V.begin(), V.end(), P);
  if (It != V.end())
    V.erase(It);
}

} // namespace

unsigned mst::obsdetail::nextThreadSlot() {
  static std::atomic<unsigned> Next{0};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Counter::Counter(std::string Name) : Name(std::move(Name)) {
  if (!this->Name.empty())
    Telemetry::registerCounter(this);
}

Counter::~Counter() {
  if (!Name.empty())
    Telemetry::unregisterCounter(this);
}

Gauge::Gauge(std::string Name, std::function<uint64_t()> Read)
    : Name(std::move(Name)), Read(std::move(Read)) {
  Telemetry::registerGauge(this);
}

Gauge::~Gauge() { Telemetry::unregisterGauge(this); }

void Telemetry::registerCounter(Counter *C) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  R.Counters.push_back(C);
}

void Telemetry::unregisterCounter(Counter *C) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  eraseOne(R.Counters, C);
}

void Telemetry::registerGauge(Gauge *G) {
  Registry &R = reg();
  std::lock_guard<std::mutex> L(R.M);
  R.Gauges.push_back(G);
}

void Telemetry::unregisterGauge(Gauge *G) {
  Registry &R = reg();
  std::lock_guard<std::mutex> L(R.M);
  eraseOne(R.Gauges, G);
}

void Telemetry::registerHistogram(Histogram *H) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  R.Histograms.push_back(H);
}

void Telemetry::unregisterHistogram(Histogram *H) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  eraseOne(R.Histograms, H);
}

std::vector<std::pair<std::string, uint64_t>> Telemetry::counterTotals() {
  std::map<std::string, uint64_t> Totals;
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  for (Counter *C : R.Counters)
    Totals[C->name()] += C->value();
  return {Totals.begin(), Totals.end()};
}

std::vector<std::pair<std::string, uint64_t>> Telemetry::gaugeValues() {
  std::map<std::string, uint64_t> Values;
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  for (Gauge *Gg : R.Gauges)
    Values[Gg->name()] += Gg->read();
  return {Values.begin(), Values.end()};
}

std::vector<Telemetry::HistogramSummary> Telemetry::histogramSummaries() {
  // Same-name replicas (one pause histogram per VM instance, say) merge
  // bucket-wise into an unregistered scratch copy before summarizing.
  std::map<std::string, Histogram> Merged;
  {
    Registry &R = reg();
    std::lock_guard<std::mutex> G(R.M);
    for (Histogram *H : R.Histograms) {
      auto It = Merged.find(H->name());
      if (It == Merged.end())
        Merged.emplace(H->name(), *H);
      else
        It->second.merge(*H);
    }
  }
  std::vector<HistogramSummary> Out;
  Out.reserve(Merged.size());
  for (auto &[Name, H] : Merged) {
    HistogramSummary S;
    S.Name = Name;
    S.Unit = H.unit();
    S.Count = H.count();
    S.P50 = H.percentile(50.0);
    S.P95 = H.percentile(95.0);
    S.P99 = H.percentile(99.0);
    S.Max = H.max();
    Out.push_back(std::move(S));
  }
  return Out;
}

Telemetry::Snapshot Telemetry::snapshot() {
  Snapshot S;
  S.Counters = counterTotals();
  S.Gauges = gaugeValues();
  S.Histograms = histogramSummaries();
  return S;
}

std::string Telemetry::toJson(const Snapshot &S) {
  auto EscapeTo = [](std::string &Out, const std::string &Str) {
    for (char C : Str) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
  };
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    EscapeTo(Out, Name);
    Out += "\":" + std::to_string(V);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : S.Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    EscapeTo(Out, Name);
    Out += "\":" + std::to_string(V);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &H : S.Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    EscapeTo(Out, H.Name);
    const std::string &U = H.Unit;
    Out += "\":{\"count\":" + std::to_string(H.Count) +
           ",\"p50_" + U + "\":" + std::to_string(H.P50) +
           ",\"p95_" + U + "\":" + std::to_string(H.P95) +
           ",\"p99_" + U + "\":" + std::to_string(H.P99) +
           ",\"max_" + U + "\":" + std::to_string(H.Max) + "}";
  }
  Out += "}}";
  return Out;
}

void Telemetry::resetAll() {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  for (Counter *C : R.Counters)
    C->reset();
  for (Histogram *H : R.Histograms)
    H->reset();
}

uint64_t Telemetry::nowNs() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}
