//===-- obs/ProfileReport.h - Resolved profile reports ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resolved, human-consumable side of the sampling profiler. The
/// Profiler accumulates raw oop bits; this layer turns a Profiler::Data
/// snapshot into named rows via a caller-supplied resolver (the VM layer
/// provides one that validates bits against the live heap and renders
/// "Class>>selector" through the SymbolTable), producing:
///
///   - a method hot-spot table (self samples, % of wall, per state),
///   - a per-vproc state breakdown (running vs lock-wait vs GC ...),
///   - a selector-keyed method-cache-miss profile,
///   - an allocation-site profile (method x instantiated class),
///   - collapsed-stack text ("vp0;Class>>selector;lock-wait 42") for
///     standard flamegraph tooling, and
///   - a JSON object merged into the telemetry export.
///
/// Reports are string-keyed and mergeable, so a benchmark that builds one
/// VM per system state can resolve each run against its own heap and fold
/// the results into a single profile.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_PROFILEREPORT_H
#define MST_OBS_PROFILEREPORT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/Profiler.h"

namespace mst {

/// Turns raw oop bits into names. Every callback returns "" for bits it
/// cannot (or can no longer) resolve; resolveProfile substitutes the
/// placeholder spelling. Callbacks must not assume the bits are valid —
/// a sampled method may have been swept by a full collection since.
struct ProfileResolver {
  std::function<std::string(uintptr_t)> MethodName;   ///< "Class>>selector"
  std::function<std::string(uintptr_t)> ClassName;    ///< receiver class
  std::function<std::string(uintptr_t)> SelectorName; ///< selector symbol
};

class ProfileReport {
public:
  /// One resolved (vproc, state, frame) sample bucket.
  struct SampleRow {
    std::string Vproc; ///< "vp0", "driver", ...
    std::string State; ///< profStateName spelling
    std::string Frame; ///< "Class>>selector" or a placeholder
    uint64_t Count = 0;
  };

  /// One resolved two-part site row (miss and allocation profiles).
  struct SiteRow {
    std::string A; ///< call-site method / instantiating method
    std::string B; ///< selector / instantiated class
    uint64_t Count = 0;
  };

  std::vector<SampleRow> Samples;
  std::vector<SiteRow> MissSites;  ///< (call-site method, selector)
  std::vector<SiteRow> AllocSites; ///< (method, instantiated class)

  uint64_t Ticks = 0;              ///< sampler wakeups
  uint64_t TotalSamples = 0;       ///< slot-samples (ticks x active slots)
  uint64_t AttributedSamples = 0;  ///< named method or non-running state
  uint64_t AllocDropped = 0;
  uint64_t MissDropped = 0;
  uint32_t SampleHz = 0;
  uint32_t AllocSamplePeriod = 0;

  bool empty() const { return Samples.empty() && MissSites.empty() &&
                              AllocSites.empty(); }

  /// Folds \p O into this report, coalescing identical rows.
  void merge(const ProfileReport &O);

  /// Human-readable report: hot-spot table, per-vproc state breakdown,
  /// miss profile, allocation profile.
  std::string render() const;

  /// Collapsed-stack text, one "frame;frame;frame count" line per bucket,
  /// consumable by flamegraph.pl / inferno / speedscope.
  std::string folded() const;

  /// \returns a JSON object (not a document) for the telemetry export.
  std::string toJson() const;

  /// Writes folded() to \p Path. \returns false on I/O failure.
  bool writeFolded(const std::string &Path) const;
};

/// Resolves a raw profiler snapshot into a report. Placeholders:
/// "(reclaimed method)" for method bits the resolver rejects, "(no
/// method)" for null bits, "?" for unresolvable classes/selectors. A
/// sample counts as attributed when its frame is a real method name or
/// its state is anything but running — the acceptance bar is that >= 90%
/// of samples attribute on a busy workload.
ProfileReport resolveProfile(const Profiler::Data &D,
                             const ProfileResolver &R);

} // namespace mst

#endif // MST_OBS_PROFILEREPORT_H
