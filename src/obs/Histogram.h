//===-- obs/Histogram.h - Log-bucketed pause-time histogram -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-linear histogram for pause times and other latency-like samples:
/// power-of-two major buckets, each split into 16 linear sub-buckets, so
/// the relative quantile error is bounded by 1/16 (~6%) across the full
/// uint64 range while the whole structure stays a fixed 8 KB of relaxed
/// atomics. The scavenger and safepoint record stop-the-world pauses here;
/// the report prints p50/p95/p99/max — the numbers the multicore-GC
/// literature (Auhagen et al.) uses to locate rendezvous bottlenecks.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_HISTOGRAM_H
#define MST_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <string>

namespace mst {

/// Thread-safe log-linear histogram over non-negative integer samples
/// (typically nanoseconds).
class Histogram {
public:
  /// \param Name registry name; empty = private (not aggregated).
  /// \param Unit the unit samples are recorded in ("ns" for the pause
  /// histograms; "reqs" for the serving layer's batch sizes). Purely
  /// descriptive: it names the percentile keys in the telemetry JSON.
  explicit Histogram(std::string Name = {}, std::string Unit = "ns");
  ~Histogram();

  /// Copies values only; the copy is always unregistered (a registered
  /// copy would double-count its original in the registry).
  Histogram(const Histogram &Other);
  Histogram &operator=(const Histogram &Other);

  /// Records one sample.
  void record(uint64_t Value);

  /// \returns the number of recorded samples.
  uint64_t count() const {
    return N.load(std::memory_order_relaxed);
  }

  /// \returns the sum of all samples.
  uint64_t sum() const { return Total.load(std::memory_order_relaxed); }

  /// \returns the exact largest sample, or 0 when empty.
  uint64_t max() const { return MaxV.load(std::memory_order_relaxed); }

  /// \returns the exact smallest sample, or 0 when empty.
  uint64_t min() const {
    uint64_t M = MinV.load(std::memory_order_relaxed);
    return M == UINT64_MAX ? 0 : M;
  }

  /// \returns the arithmetic mean, or 0 when empty.
  double mean() const {
    uint64_t C = count();
    return C ? static_cast<double>(sum()) / static_cast<double>(C) : 0.0;
  }

  /// \returns the value at quantile \p P in [0,100], interpolated inside
  /// its bucket; relative error is bounded by the sub-bucket width (~6%).
  /// 0 when empty.
  uint64_t percentile(double P) const;

  /// Merges \p Other's samples into this histogram (registry aggregation
  /// of same-name replicas).
  void merge(const Histogram &Other);

  /// Zeroes all buckets. Only meaningful while writers are quiescent.
  void reset();

  const std::string &name() const { return Name; }
  const std::string &unit() const { return Unit; }

  /// Number of buckets (exposed for the white-box tests).
  static constexpr unsigned SubBucketBits = 4;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  static constexpr unsigned NumBuckets = 1024;

private:
  static unsigned bucketIndex(uint64_t V);
  /// \returns the inclusive lower bound and width of bucket \p Idx.
  static void bucketRange(unsigned Idx, uint64_t &Low, uint64_t &Width);

  void copyFrom(const Histogram &Other);

  std::atomic<uint64_t> Buckets[NumBuckets];
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> MaxV{0};
  std::atomic<uint64_t> MinV{UINT64_MAX};
  std::string Name;
  std::string Unit = "ns";
};

} // namespace mst

#endif // MST_OBS_HISTOGRAM_H
