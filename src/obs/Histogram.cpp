//===-- obs/Histogram.cpp - Log-bucketed pause-time histogram -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

#include <bit>
#include <cmath>

#include "obs/Telemetry.h"

using namespace mst;

namespace {
void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}
} // namespace

Histogram::Histogram(std::string Name, std::string Unit)
    : Name(std::move(Name)), Unit(std::move(Unit)) {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  if (!this->Name.empty())
    Telemetry::registerHistogram(this);
}

Histogram::~Histogram() {
  if (!Name.empty())
    Telemetry::unregisterHistogram(this);
}

Histogram::Histogram(const Histogram &Other) { copyFrom(Other); }

Histogram &Histogram::operator=(const Histogram &Other) {
  if (this == &Other)
    return *this;
  // An assigned-to histogram keeps its (possibly registered) identity but
  // takes the other's values; simplest correct behaviour for the
  // value-semantics use in RunningStats, which never registers.
  copyFrom(Other);
  return *this;
}

void Histogram::copyFrom(const Histogram &Other) {
  Unit = Other.Unit;
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I].store(Other.Buckets[I].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  N.store(Other.N.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
  Total.store(Other.Total.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  MaxV.store(Other.MaxV.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  MinV.store(Other.MinV.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

unsigned Histogram::bucketIndex(uint64_t V) {
  if (V < SubBuckets)
    return static_cast<unsigned>(V);
  unsigned Msb = 63u - static_cast<unsigned>(std::countl_zero(V));
  unsigned Shift = Msb - SubBucketBits;
  unsigned Idx = ((Msb - SubBucketBits + 1) << SubBucketBits) +
                 static_cast<unsigned>((V >> Shift) & (SubBuckets - 1));
  return Idx < NumBuckets ? Idx : NumBuckets - 1;
}

void Histogram::bucketRange(unsigned Idx, uint64_t &Low, uint64_t &Width) {
  if (Idx < SubBuckets) {
    Low = Idx;
    Width = 1;
    return;
  }
  unsigned Major = Idx >> SubBucketBits;
  unsigned Sub = Idx & (SubBuckets - 1);
  unsigned Msb = Major + SubBucketBits - 1;
  Width = 1ull << (Msb - SubBucketBits);
  Low = (1ull << Msb) + Sub * Width;
}

void Histogram::record(uint64_t Value) {
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Total.fetch_add(Value, std::memory_order_relaxed);
  atomicMax(MaxV, Value);
  atomicMin(MinV, Value);
}

uint64_t Histogram::percentile(double P) const {
  uint64_t C = count();
  if (C == 0)
    return 0;
  if (P >= 100.0)
    return max();
  if (P < 0.0)
    P = 0.0;
  uint64_t Target =
      static_cast<uint64_t>(std::ceil(P / 100.0 * static_cast<double>(C)));
  if (Target == 0)
    Target = 1;
  uint64_t Cum = 0;
  for (unsigned Idx = 0; Idx < NumBuckets; ++Idx) {
    uint64_t B = Buckets[Idx].load(std::memory_order_relaxed);
    if (Cum + B >= Target) {
      uint64_t Low, Width;
      bucketRange(Idx, Low, Width);
      double Frac = static_cast<double>(Target - Cum) /
                    static_cast<double>(B);
      uint64_t V = Low + static_cast<uint64_t>(
                             static_cast<double>(Width) * Frac);
      // The exact extremes are tracked; never report outside them.
      if (V > max())
        V = max();
      if (V < min())
        V = min();
      return V;
    }
    Cum += B;
  }
  return max();
}

void Histogram::merge(const Histogram &Other) {
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (uint64_t B = Other.Buckets[I].load(std::memory_order_relaxed))
      Buckets[I].fetch_add(B, std::memory_order_relaxed);
  N.fetch_add(Other.N.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  Total.fetch_add(Other.Total.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  atomicMax(MaxV, Other.MaxV.load(std::memory_order_relaxed));
  atomicMin(MinV, Other.MinV.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Total.store(0, std::memory_order_relaxed);
  MaxV.store(0, std::memory_order_relaxed);
  MinV.store(UINT64_MAX, std::memory_order_relaxed);
}
