//===-- obs/TraceEvent.h - One recorded trace event -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef MST_OBS_TRACEEVENT_H
#define MST_OBS_TRACEEVENT_H

#include <cstdint>

namespace mst {

/// The Chrome trace-event phases we emit: "X" (a complete span with start
/// and duration) and "i" (an instant marker).
enum class TracePhase : uint8_t {
  Complete,
  Instant,
};

/// One event slot in a per-thread ring buffer. Name and category must be
/// string literals (or otherwise immortal): events outlive the scopes that
/// record them and are only stringified at export time.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint64_t Arg = 0;
  TracePhase Phase = TracePhase::Complete;
  bool HasArg = false;
};

} // namespace mst

#endif // MST_OBS_TRACEEVENT_H
