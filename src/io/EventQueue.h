//===-- io/EventQueue.h - Serialized input events ---------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input side of the I/O system: "the interpreter places input events
/// on a queue which is shared (potentially) by several processes ...
/// access to the shared resource is for very brief intervals" (paper
/// §3.1), so serialization with a spin lock is the right strategy.
///
/// On the Firefly the events came from keyboard and mouse; here a test or
/// workload generator injects them.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IO_EVENTQUEUE_H
#define MST_IO_EVENTQUEUE_H

#include <cstdint>
#include <deque>

#include "vkernel/SpinLock.h"

namespace mst {

/// One input event (keystroke, mouse motion, button).
struct InputEvent {
  enum class Kind : uint8_t { Key, MouseMove, MouseButton };
  Kind Type = Kind::Key;
  int32_t A = 0; ///< key code / x coordinate / button index
  int32_t B = 0; ///< modifiers / y coordinate / press(1)-release(0)
  uint64_t TimeMicros = 0;
};

/// Spin-lock-serialized queue of input events.
class EventQueue {
public:
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  explicit EventQueue(bool LocksEnabled) : Lock(LocksEnabled, "events") {}

  /// Enqueues an event (producer side: the "interpreter" device layer or a
  /// test driver).
  void post(const InputEvent &E) {
    SpinLockGuard Guard(Lock);
    Events.push_back(E);
    ++Posted;
  }

  /// Dequeues the oldest event. \returns false when the queue is empty.
  bool next(InputEvent &E) {
    SpinLockGuard Guard(Lock);
    if (Events.empty())
      return false;
    E = Events.front();
    Events.pop_front();
    ++Consumed;
    return true;
  }

  /// \returns the number of queued events.
  size_t pending() {
    SpinLockGuard Guard(Lock);
    return Events.size();
  }

  uint64_t postedCount() {
    SpinLockGuard Guard(Lock);
    return Posted;
  }
  uint64_t consumedCount() {
    SpinLockGuard Guard(Lock);
    return Consumed;
  }

  /// \returns lock instrumentation for contention analysis.
  SpinLock &lock() { return Lock; }

private:
  SpinLock Lock;
  std::deque<InputEvent> Events;
  uint64_t Posted = 0;
  uint64_t Consumed = 0;
};

} // namespace mst

#endif // MST_IO_EVENTQUEUE_H
