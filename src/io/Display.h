//===-- io/Display.h - Serialized display output queue ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output side of the I/O system: "there is also an output queue
/// associated with the display controller, into which display commands are
/// placed" (paper §3.1). Access is brief, so the queue is serialized with
/// a spin lock — and it is exactly what the paper's *busy* background
/// Process contends for ("... and also contends for the display", §4).
///
/// The display controller here is simulated: commands accumulate in a
/// bounded ring (the "screen" keeps the most recent lines) and are
/// counted; there is no real frame buffer to damage.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IO_DISPLAY_H
#define MST_IO_DISPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "vkernel/SpinLock.h"

namespace mst {

/// The simulated display controller with its serialized command queue.
class Display {
public:
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  /// \param RingCapacity how many recent commands the "screen" retains.
  explicit Display(bool LocksEnabled, size_t RingCapacity = 64)
      : Lock(LocksEnabled, "display"), Ring(RingCapacity) {}

  /// Enqueues a display command (e.g. "show: 'some text'").
  void submit(const std::string &Command) {
    SpinLockGuard Guard(Lock);
    Ring[Next % Ring.size()] = Command;
    ++Next;
    ++Submitted;
    // Simulate the controller touching shared state per command: a short
    // critical section, as on the Firefly's display path.
    Checksum += Command.size();
  }

  /// \returns total commands ever submitted.
  uint64_t submittedCount() {
    SpinLockGuard Guard(Lock);
    return Submitted;
  }

  /// \returns the most recent commands, oldest first.
  std::vector<std::string> recentCommands() {
    SpinLockGuard Guard(Lock);
    std::vector<std::string> Out;
    size_t N = Next < Ring.size() ? Next : Ring.size();
    for (size_t I = 0; I < N; ++I)
      Out.push_back(Ring[(Next - N + I) % Ring.size()]);
    return Out;
  }

  /// \returns lock instrumentation for contention analysis.
  SpinLock &lock() { return Lock; }

private:
  SpinLock Lock;
  std::vector<std::string> Ring;
  size_t Next = 0;
  uint64_t Submitted = 0;
  uint64_t Checksum = 0;
};

} // namespace mst

#endif // MST_IO_DISPLAY_H
