//===-- image/Bootstrap.cpp - The virtual image -----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Bootstrap.h"

#include <cctype>
#include <cstdio>
#include <map>

#include "support/Assert.h"
#include "vm/Compiler.h"

using namespace mst;

namespace {

/// Image-level classes beyond the VM kernel, defined at bootstrap.
struct ClassDef {
  const char *Name;
  const char *Super;
  ClassKind Kind;
  std::vector<const char *> Ivars;
  const char *Category;
};

const std::vector<ClassDef> &imageClasses() {
  static const std::vector<ClassDef> Defs = {
      {"OrderedCollection", "SequenceableCollection", ClassKind::Fixed,
       {"array", "firstIndex", "lastIndex"}, "Collections-Sequenceable"},
      {"Dictionary", "Collection", ClassKind::Fixed, {"tally", "table"},
       "Collections-Unordered"},
      {"WriteStream", "Object", ClassKind::Fixed,
       {"collection", "position"}, "Collections-Streams"},
      {"ReadStream", "Object", ClassKind::Fixed,
       {"collection", "position"}, "Collections-Streams"},
      {"ClassOrganization", "Object", ClassKind::Fixed, {"categories"},
       "Kernel-Classes"},
      {"DisplayScreen", "Object", ClassKind::Fixed, {}, "Graphics-Display"},
      {"InputSensor", "Object", ClassKind::Fixed, {}, "Graphics-Display"},
      {"CompilerTool", "Object", ClassKind::Fixed, {}, "System-Compiler"},
      {"DecompilerTool", "Object", ClassKind::Fixed, {},
       "System-Compiler"},
      {"Inspector", "Object", ClassKind::Fixed, {"object", "fields"},
       "Interface-Inspector"},
      {"Point", "Object", ClassKind::Fixed, {"x", "y"}, "Graphics-Basic"},
      {"Interval", "SequenceableCollection", ClassKind::Fixed,
       {"start", "stop", "step"}, "Collections-Sequenceable"},
      {"Set", "Collection", ClassKind::Fixed, {"tally", "table"},
       "Collections-Unordered"},
  };
  return Defs;
}

} // namespace

Oop mst::defineClass(VirtualMachine &VM, const std::string &Name,
                     const std::string &SuperName, ClassKind Kind,
                     const std::vector<std::string> &InstVarNames,
                     const std::string &Category) {
  ObjectModel &Om = VM.model();
  Oop Super = Om.globalAt(SuperName);
  if (Super.isNull())
    panic("defineClass: unknown superclass " + SuperName);
  Oop Cls = Om.makeClass(Super, Name, Kind, InstVarNames, Category);
  Om.globalPut(Name, Cls);
  return Cls;
}

void mst::addMethod(VirtualMachine &VM, Oop Cls, const std::string &Category,
                    const std::string &Source) {
  ObjectModel &Om = VM.model();
  Oop Method = mustCompile(Om, &VM.cache(), Cls, Source);
  // Classify it in the class organization, if one has been built.
  Oop Org = ObjectMemory::fetchPointer(Cls, ClsOrganization);
  if (Org == Om.nil())
    return;
  Oop Selector = ObjectMemory::fetchPointer(Method, MthSelector);
  std::string SelText = ObjectModel::stringValue(Selector);
  std::string CatSym = Category.empty() ? "as yet unclassified" : Category;
  // Run the classification through Smalltalk so the organization objects
  // stay purely image-level.
  std::string DoIt = "(Smalltalk at: #" + Om.className(Cls) +
                     ") organization classify: #" + SelText + " under: #'" +
                     CatSym + "'";
  VM.compileAndRun(DoIt);
}

void mst::bootstrapImage(VirtualMachine &VM) {
  ObjectModel &Om = VM.model();

  // 1. Image-level classes.
  for (const ClassDef &D : imageClasses()) {
    std::vector<std::string> Ivars(D.Ivars.begin(), D.Ivars.end());
    defineClass(VM, D.Name, D.Super, D.Kind, Ivars, D.Category);
  }

  // 2. Tool globals: the simulated display/sensor and the compiler and
  //    decompiler front doors. These exist before the kernel methods
  //    compile, because method bodies reference them.
  Om.globalPut("Display",
               Om.instantiate(Om.globalAt("DisplayScreen"), 0, true));
  Om.globalPut("Sensor",
               Om.instantiate(Om.globalAt("InputSensor"), 0, true));
  Om.globalPut("Compiler",
               Om.instantiate(Om.globalAt("CompilerTool"), 0, true));
  Om.globalPut("Decompiler",
               Om.instantiate(Om.globalAt("DecompilerTool"), 0, true));

  // 3. Kernel methods.
  for (const MethodDef &M : kernelMethods()) {
    Oop Cls = Om.globalAt(M.ClassName);
    if (Cls.isNull())
      panic("bootstrap: unknown class " + std::string(M.ClassName));
    if (M.Meta)
      Cls = Om.classOf(Cls);
    mustCompile(Om, &VM.cache(), Cls, M.Source);
  }

  // 4. Class organizations: build one ClassOrganization per class from the
  //    kernel method table's categories, running real Smalltalk code so
  //    the benchmark sees genuine image-level structures.
  std::map<std::string, std::map<bool, std::vector<const MethodDef *>>>
      ByClass;
  for (const MethodDef &M : kernelMethods())
    ByClass[M.ClassName][M.Meta].push_back(&M);

  for (const auto &[ClassName, Sides] : ByClass) {
    for (const auto &[Meta, Defs] : Sides) {
      std::string DoIt = "| org |\norg := ClassOrganization new.\n";
      for (const MethodDef *D : Defs) {
        // Selector = pattern's keywords/identifier; recover it by
        // compiling? The compiled methods are installed already; use the
        // source's leading token(s). Simplest robust route: ask the
        // class. We instead classify from Smalltalk by scanning the
        // method dictionary is wrong (loses categories), so parse the
        // selector out of the source text here.
        std::string Sel;
        const char *S = D->Source;
        // Skip leading spaces.
        while (*S == ' ' || *S == '\n')
          ++S;
        if (!isalpha(static_cast<unsigned char>(*S)) && *S != '_') {
          // Binary selector pattern.
          while (*S && *S != ' ')
            Sel += *S++;
        } else {
          // Unary or keyword pattern: collect ident / every keyword.
          const char *P = S;
          std::string First;
          while (isalnum(static_cast<unsigned char>(*P)) || *P == '_')
            First += *P++;
          if (*P == ':') {
            // Keyword pattern: scan "kw: arg" pairs.
            const char *Q = S;
            for (;;) {
              std::string Kw;
              while (isalnum(static_cast<unsigned char>(*Q)) || *Q == '_')
                Kw += *Q++;
              if (*Q != ':')
                break;
              ++Q;
              Sel += Kw + ":";
              // Skip " arg " (spaces + identifier).
              while (*Q == ' ')
                ++Q;
              while (isalnum(static_cast<unsigned char>(*Q)) || *Q == '_')
                ++Q;
              while (*Q == ' ')
                ++Q;
            }
          } else {
            Sel = First;
          }
        }
        DoIt += "org classify: #'" + Sel + "' under: #'" +
                std::string(D->Category) + "'.\n";
      }
      DoIt += "(Smalltalk at: #" + ClassName + ")" +
              (Meta ? std::string(" class") : std::string("")) +
              " organization: org";
      Oop R = VM.compileAndRun(DoIt);
      if (R.isNull()) {
        std::string Msg =
            "bootstrap: organization doIt failed for " + ClassName;
        for (const std::string &E : VM.errors())
          Msg += "\n  error: " + E;
        panic(Msg);
      }
    }
  }
}
