//===-- image/KernelSource.cpp - Embedded kernel Smalltalk code -----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel class library in Smalltalk source, compiled into the image
/// at bootstrap. It supplies what the macro benchmarks traverse and what
/// user programs need: printing, collections, streams, class browsing
/// (definitions, hierarchies, senders, implementors, organizations),
/// processes and semaphores — the user-visible environment MS left
/// unchanged (paper §1.2).
///
//===----------------------------------------------------------------------===//

#include "image/Bootstrap.h"

using namespace mst;

const std::vector<MethodDef> &mst::kernelMethods() {
  static const std::vector<MethodDef> Table = {

      /// --- Object ---------------------------------------------------------
      {"Object", false, "comparing", "= other ^self == other"},
      {"Object", false, "comparing", "~= other ^(self = other) not"},
      {"Object", false, "comparing",
       "identityHash <primitive: 7> ^0"},
      {"Object", false, "comparing", "hash ^self identityHash"},
      {"Object", false, "testing", "isNil ^false"},
      {"Object", false, "testing", "notNil ^true"},
      {"Object", false, "testing",
       "isKindOf: aClass | c | c := self class. [c notNil] whileTrue: [c "
       "== aClass ifTrue: [^true]. c := c superclass]. ^false"},
      {"Object", false, "testing",
       "isMemberOf: aClass ^self class == aClass"},
      {"Object", false, "accessing",
       "class <primitive: 6> ^self error: 'class primitive failed'"},
      {"Object", false, "accessing",
       "at: index <primitive: 1> ^self error: 'at: index out of range'"},
      {"Object", false, "accessing",
       "at: index put: value <primitive: 2> ^self error: 'at:put: index "
       "out of range'"},
      {"Object", false, "accessing",
       "size <primitive: 3> ^self error: 'size primitive failed'"},
      {"Object", false, "accessing",
       "basicSize <primitive: 3> ^0"},
      {"Object", false, "accessing",
       "instVarAt: index <primitive: 16> ^self error: 'instVarAt: out of "
       "range'"},
      {"Object", false, "accessing",
       "instVarAt: index put: value <primitive: 17> ^self error: "
       "'instVarAt:put: out of range'"},
      {"Object", false, "accessing", "yourself ^self"},
      {"Object", false, "accessing", "species ^self class"},
      {"Object", false, "converting",
       "-> anObject ^Association basicNew setKey: self value: anObject"},
      {"Object", false, "copying",
       "shallowCopy <primitive: 8> ^self error: 'cannot copy this "
       "object'"},
      {"Object", false, "copying", "copy ^self shallowCopy"},
      {"Object", false, "printing",
       "printString | stream | stream := WriteStream on: (String new: "
       "16). self printOn: stream. ^stream contents"},
      {"Object", false, "printing",
       "printOn: aStream | n | n := self class name asString. aStream "
       "nextPutAll: ((n isEmpty not and: [(n at: 1) isVowel]) ifTrue: "
       "['an '] ifFalse: ['a ']). aStream nextPutAll: n"},
      {"Object", false, "error handling",
       "error: aString <primitive: 63> ^nil"},
      {"Object", false, "error handling",
       "doesNotUnderstand: aMessage ^self error: 'does not understand ', "
       "aMessage selector asString"},
      {"Object", false, "error handling",
       "subclassResponsibility ^self error: 'subclass responsibility'"},
      {"Object", false, "error handling",
       "shouldNotImplement ^self error: 'should not implement'"},
      {"Object", false, "message handling",
       "perform: aSelector withArguments: anArray <primitive: 70> ^self "
       "error: 'perform failed'"},
      {"Object", false, "message handling",
       "perform: aSelector ^self perform: aSelector withArguments: (Array "
       "new: 0)"},
      {"Object", false, "user interface",
       "inspect ^Inspector on: self"},
      {"Object", false, "system",
       "hostSignal: anInteger <primitive: 60> ^self error: 'host signal "
       "failed'"},
      {"Object", false, "system",
       "forceScavenge <primitive: 62> ^self error: 'scavenge failed'"},
      {"Object", false, "system",
       "fullCollect <primitive: 64> ^self error: 'full collection failed'"},
      {"Object", false, "system",
       "lowSpaceSemaphore: aSemaphore <primitive: 65> ^self error: "
       "'low-space registration failed'"},
      {"Object", false, "system",
       "millisecondClock <primitive: 42> ^self error: 'clock failed'"},

      /// --- UndefinedObject --------------------------------------------
      {"UndefinedObject", false, "testing", "isNil ^true"},
      {"UndefinedObject", false, "testing", "notNil ^false"},
      {"UndefinedObject", false, "printing",
       "printOn: aStream aStream nextPutAll: 'nil'"},

      /// --- Boolean / True / False ------------------------------------------
      {"Boolean", false, "logic", "xor: aBoolean ^self == aBoolean not"},
      {"True", false, "logic", "not ^false"},
      {"True", false, "logic", "& aBoolean ^aBoolean"},
      {"True", false, "logic", "| aBoolean ^true"},
      {"True", false, "controlling", "ifTrue: aBlock ^aBlock value"},
      {"True", false, "controlling", "ifFalse: aBlock ^nil"},
      {"True", false, "controlling",
       "ifTrue: tBlock ifFalse: fBlock ^tBlock value"},
      {"True", false, "controlling", "and: aBlock ^aBlock value"},
      {"True", false, "controlling", "or: aBlock ^true"},
      {"True", false, "printing",
       "printOn: aStream aStream nextPutAll: 'true'"},
      {"False", false, "logic", "not ^true"},
      {"False", false, "logic", "& aBoolean ^false"},
      {"False", false, "logic", "| aBoolean ^aBoolean"},
      {"False", false, "controlling", "ifTrue: aBlock ^nil"},
      {"False", false, "controlling", "ifFalse: aBlock ^aBlock value"},
      {"False", false, "controlling",
       "ifTrue: tBlock ifFalse: fBlock ^fBlock value"},
      {"False", false, "controlling", "and: aBlock ^false"},
      {"False", false, "controlling", "or: aBlock ^aBlock value"},
      {"False", false, "printing",
       "printOn: aStream aStream nextPutAll: 'false'"},

      /// --- Magnitude -----------------------------------------------------
      {"Magnitude", false, "comparing",
       "< other ^self subclassResponsibility"},
      {"Magnitude", false, "comparing", "> other ^other < self"},
      {"Magnitude", false, "comparing", "<= other ^(other < self) not"},
      {"Magnitude", false, "comparing", ">= other ^(self < other) not"},
      {"Magnitude", false, "comparing",
       "max: other ^self > other ifTrue: [self] ifFalse: [other]"},
      {"Magnitude", false, "comparing",
       "min: other ^self < other ifTrue: [self] ifFalse: [other]"},
      {"Magnitude", false, "comparing",
       "between: lo and: hi ^lo <= self and: [self <= hi]"},

      /// --- Integer / SmallInteger ------------------------------------------
      {"Integer", false, "arithmetic",
       "+ other ^self error: 'SmallInteger overflow or bad + argument'"},
      {"Integer", false, "arithmetic",
       "- other ^self error: 'SmallInteger overflow or bad - argument'"},
      {"Integer", false, "arithmetic",
       "* other ^self error: 'SmallInteger overflow or bad * argument'"},
      {"Integer", false, "arithmetic",
       "// other ^self error: 'division by zero or bad // argument'"},
      {"Integer", false, "arithmetic",
       "\\\\ other ^self error: 'division by zero or bad \\\\ argument'"},
      {"Integer", false, "arithmetic", "abs ^self < 0 ifTrue: [0 - self] "
                                       "ifFalse: [self]"},
      {"Integer", false, "arithmetic", "negated ^0 - self"},
      {"Integer", false, "arithmetic",
       "sign self > 0 ifTrue: [^1]. self < 0 ifTrue: [^-1]. ^0"},
      {"Integer", false, "testing", "isZero ^self = 0"},
      {"Integer", false, "testing", "even ^(self \\\\ 2) = 0"},
      {"Integer", false, "testing", "odd ^(self \\\\ 2) = 1"},
      {"Integer", false, "mathematics",
       "factorial self < 2 ifTrue: [^1]. ^self * (self - 1) factorial"},
      {"Integer", false, "mathematics",
       "gcd: other | a b t | a := self abs. b := other abs. [b > 0] "
       "whileTrue: [t := a \\\\ b. a := b. b := t]. ^a"},
      {"Integer", false, "iterating",
       "to: limit do: aBlock | i | i := self. [i <= limit] whileTrue: "
       "[aBlock value: i. i := i + 1]. ^self"},
      {"Integer", false, "iterating",
       "to: limit by: step do: aBlock | i | i := self. step > 0 ifTrue: "
       "[[i <= limit] whileTrue: [aBlock value: i. i := i + step]] "
       "ifFalse: [[i >= limit] whileTrue: [aBlock value: i. i := i + "
       "step]]. ^self"},
      {"Integer", false, "iterating",
       "timesRepeat: aBlock | n | n := self. [n > 0] whileTrue: [aBlock "
       "value. n := n - 1]. ^self"},
      {"Integer", false, "converting",
       "asCharacter ^Character value: self"},
      {"Integer", false, "printing",
       "printOn: aStream ^self printOn: aStream base: 10"},
      {"Integer", false, "printing",
       "printOn: aStream base: b | n digits i | n := self. n = 0 ifTrue: "
       "[aStream nextPut: $0. ^self]. n < 0 ifTrue: [aStream nextPut: $-. "
       "n := 0 - n]. digits := String new: 32. i := 0. [n > 0] whileTrue: "
       "[i := i + 1. digits at: i put: (Character value: 48 + (n \\\\ "
       "b)). n := n // b]. [i > 0] whileTrue: [aStream nextPut: (digits "
       "at: i). i := i - 1]"},

      /// --- Character -----------------------------------------------------
      {"Character", false, "accessing", "value ^value"},
      {"Character", false, "converting", "asInteger ^value"},
      {"Character", false, "converting", "asCharacter ^self"},
      {"Character", false, "comparing", "< other ^value < other value"},
      {"Character", false, "comparing", "= other ^self == other"},
      {"Character", false, "testing",
       "isDigit ^value >= 48 and: [value <= 57]"},
      {"Character", false, "testing",
       "isLetter ^(value >= 65 and: [value <= 90]) or: [value >= 97 and: "
       "[value <= 122]]"},
      {"Character", false, "testing",
       "isVowel ^self == $A or: [self == $E or: [self == $I or: [self == "
       "$O or: [self == $U or: [self == $a or: [self == $e or: [self == "
       "$i or: [self == $o or: [self == $u]]]]]]]]]"},
      {"Character", false, "printing",
       "printOn: aStream aStream nextPut: $$. aStream nextPut: self"},
      {"Character", true, "instance creation",
       "value: anInteger <primitive: 13> ^self error: 'bad character "
       "value'"},
      {"Character", true, "constants", "cr ^Character value: 10"},
      {"Character", true, "constants", "space ^Character value: 32"},
      {"Character", true, "constants", "tab ^Character value: 9"},

      /// --- Behavior (classes) ----------------------------------------------
      {"Behavior", false, "instance creation",
       "basicNew <primitive: 4> ^self error: 'cannot instantiate'"},
      {"Behavior", false, "instance creation",
       "basicNew: size <primitive: 5> ^self error: 'cannot instantiate "
       "with size'"},
      {"Behavior", false, "instance creation", "new ^self basicNew"},
      {"Behavior", false, "instance creation",
       "new: size ^self basicNew: size"},
      {"Behavior", false, "accessing", "name ^name"},
      {"Behavior", false, "accessing", "superclass ^superclass"},
      {"Behavior", false, "accessing", "methodDict ^methodDict"},
      {"Behavior", false, "accessing",
       "instanceVariableNames ^instVarNames"},
      {"Behavior", false, "accessing", "category ^category"},
      {"Behavior", false, "accessing", "comment ^comment"},
      {"Behavior", false, "accessing", "organization ^organization"},
      {"Behavior", false, "accessing",
       "organization: anOrganization organization := anOrganization"},
      {"Behavior", false, "testing",
       "includesSelector: aSelector self selectorsDo: [:s | s == "
       "aSelector ifTrue: [^true]]. ^false"},
      {"Behavior", false, "enumerating",
       "selectorsDo: aBlock methodDict isNil ifTrue: [^self]. methodDict "
       "keysAndValuesDo: [:k :v | aBlock value: k]"},
      {"Behavior", false, "enumerating",
       "selectors | c | c := OrderedCollection new. self selectorsDo: [:s "
       "| c add: s]. ^c"},
      {"Behavior", false, "accessing",
       "compiledMethodAt: aSelector methodDict isNil ifTrue: [^nil]. "
       "methodDict keysAndValuesDo: [:k :v | k == aSelector ifTrue: "
       "[^v]]. ^nil"},
      {"Behavior", false, "enumerating",
       "subclassesDo: aBlock Smalltalk allClassesDo: [:c | c superclass "
       "== self ifTrue: [aBlock value: c]]"},
      {"Behavior", false, "printing",
       "printOn: aStream aStream nextPutAll: name asString"},
      {"Behavior", false, "browsing",
       "definition | s | s := WriteStream on: (String new: 64). "
       "superclass isNil ifTrue: [s nextPutAll: 'nil'] ifFalse: [s "
       "nextPutAll: superclass name asString]. s nextPutAll: ' subclass: "
       "#'; nextPutAll: name asString. s nextPutAll: ' "
       "instanceVariableNames: '''. instVarNames isNil ifFalse: [1 to: "
       "instVarNames size do: [:i | s nextPutAll: (instVarNames at: i) "
       "asString. i < instVarNames size ifTrue: [s nextPut: $ ]]]. s "
       "nextPutAll: ''' category: '''. category isNil ifFalse: [s "
       "nextPutAll: category]. s nextPutAll: ''''. ^s contents"},
      {"Behavior", false, "browsing",
       "printHierarchy | s | s := WriteStream on: (String new: 128). self "
       "printHierarchyOn: s indent: 0. ^s contents"},
      {"Behavior", false, "browsing",
       "printHierarchyOn: aStream indent: n 1 to: n do: [:i | aStream "
       "nextPutAll: '  ']. aStream nextPutAll: name asString. aStream "
       "nextPut: Character cr. self subclassesDo: [:c | c "
       "printHierarchyOn: aStream indent: n + 1]"},

      {"Class", false, "subclass creation",
       "subclass: aSymbol instanceVariableNames: ivarString category: "
       "catString | cls | cls := self basicSubclass: aSymbol "
       "instanceVariableNames: ivarString category: catString. cls "
       "organization: ClassOrganization new. ^cls"},
      {"Class", false, "subclass creation",
       "basicSubclass: aSymbol instanceVariableNames: ivarString "
       "category: catString <primitive: 55> ^self error: 'subclass "
       "creation failed'"},

      /// --- MethodDictionary ---------------------------------------------
      {"MethodDictionary", false, "accessing", "size ^tally"},
      {"MethodDictionary", false, "enumerating",
       "keysAndValuesDo: aBlock | i k | i := 1. [i < table size] "
       "whileTrue: [k := table at: i. k isNil ifFalse: [aBlock value: k "
       "value: (table at: i + 1)]. i := i + 2]"},

      /// --- CompiledMethod ------------------------------------------------
      {"CompiledMethod", false, "accessing", "selector ^selector"},
      {"CompiledMethod", false, "accessing", "numArgs ^numArgs"},
      {"CompiledMethod", false, "accessing", "literals ^literals"},
      {"CompiledMethod", false, "accessing", "methodClass ^methodClass"},
      {"CompiledMethod", false, "accessing", "sourceText ^sourceText"},
      {"CompiledMethod", false, "testing",
       "hasLiteral: anObject literals isNil ifTrue: [^false]. 1 to: "
       "literals size do: [:i | | lit | lit := literals at: i. lit == "
       "anObject ifTrue: [^true]. (lit isKindOf: Array) ifTrue: [(lit "
       "includes: anObject) ifTrue: [^true]]]. ^false"},
      {"CompiledMethod", false, "decompiling",
       "decompile ^Decompiler decompile: self"},
      {"CompiledMethod", false, "printing",
       "printOn: aStream aStream nextPutAll: methodClass name asString. "
       "aStream nextPutAll: '>>'. aStream nextPutAll: selector asString"},

      /// --- Collection ------------------------------------------------------
      {"Collection", false, "enumerating",
       "do: aBlock ^self subclassResponsibility"},
      {"Collection", false, "accessing",
       "size | n | n := 0. self do: [:e | n := n + 1]. ^n"},
      {"Collection", false, "testing", "isEmpty ^self size = 0"},
      {"Collection", false, "testing", "notEmpty ^self isEmpty not"},
      {"Collection", false, "testing",
       "includes: anObject self do: [:e | e = anObject ifTrue: [^true]]. "
       "^false"},
      {"Collection", false, "enumerating",
       "detect: aBlock ifNone: noneBlock self do: [:e | (aBlock value: e) "
       "ifTrue: [^e]]. ^noneBlock value"},
      {"Collection", false, "enumerating",
       "select: aBlock | c | c := OrderedCollection new. self do: [:e | "
       "(aBlock value: e) ifTrue: [c add: e]]. ^c"},
      {"Collection", false, "enumerating",
       "reject: aBlock | c | c := OrderedCollection new. self do: [:e | "
       "(aBlock value: e) ifFalse: [c add: e]]. ^c"},
      {"Collection", false, "enumerating",
       "collect: aBlock | c | c := OrderedCollection new. self do: [:e | "
       "c add: (aBlock value: e)]. ^c"},
      {"Collection", false, "enumerating",
       "inject: initial into: aBlock | acc | acc := initial. self do: [:e "
       "| acc := aBlock value: acc value: e]. ^acc"},
      {"Collection", false, "converting",
       "asOrderedCollection | c | c := OrderedCollection new. self do: "
       "[:e | c add: e]. ^c"},
      {"Collection", false, "printing",
       "printOn: aStream aStream nextPutAll: self class name asString. "
       "aStream nextPutAll: ' ('. self do: [:e | aStream print: e. "
       "aStream nextPut: $ ]. aStream nextPut: $)"},

      /// --- SequenceableCollection ----------------------------------------
      {"SequenceableCollection", false, "enumerating",
       "do: aBlock 1 to: self size do: [:i | aBlock value: (self at: i)]"},
      {"SequenceableCollection", false, "enumerating",
       "withIndexDo: aBlock 1 to: self size do: [:i | aBlock value: (self "
       "at: i) value: i]"},
      {"SequenceableCollection", false, "enumerating",
       "reverseDo: aBlock | i | i := self size. [i >= 1] whileTrue: "
       "[aBlock value: (self at: i). i := i - 1]"},
      {"SequenceableCollection", false, "accessing", "first ^self at: 1"},
      {"SequenceableCollection", false, "accessing",
       "last ^self at: self size"},
      {"SequenceableCollection", false, "accessing",
       "indexOf: anObject 1 to: self size do: [:i | (self at: i) = "
       "anObject ifTrue: [^i]]. ^0"},
      {"SequenceableCollection", false, "comparing",
       "= other (other isKindOf: SequenceableCollection) ifFalse: "
       "[^false]. self size = other size ifFalse: [^false]. 1 to: self "
       "size do: [:i | (self at: i) = (other at: i) ifFalse: [^false]]. "
       "^true"},
      {"SequenceableCollection", false, "copying",
       "copyFrom: start to: stop | n c | n := stop - start + 1. n < 0 "
       "ifTrue: [n := 0]. c := self species new: n. c replaceFrom: 1 to: "
       "n with: self startingAt: start. ^c"},
      {"SequenceableCollection", false, "copying",
       ", other | c | c := self species new: self size + other size. c "
       "replaceFrom: 1 to: self size with: self startingAt: 1. c "
       "replaceFrom: self size + 1 to: c size with: other startingAt: 1. "
       "^c"},

      /// --- ArrayedCollection ----------------------------------------------
      {"ArrayedCollection", false, "accessing",
       "size <primitive: 3> ^0"},
      {"ArrayedCollection", false, "copying",
       "replaceFrom: start to: stop with: src startingAt: srcStart "
       "<primitive: 9> start to: stop do: [:i | self at: i put: (src at: "
       "srcStart + i - start)]. ^self"},

      /// --- String / Symbol ----------------------------------------------
      {"String", false, "comparing",
       "= other <primitive: 18> ^self == other"},
      {"String", false, "comparing",
       "< other | n i | n := self size min: other size. i := 1. [i <= n] "
       "whileTrue: [(self at: i) value < (other at: i) value ifTrue: "
       "[^true]. (self at: i) value > (other at: i) value ifTrue: "
       "[^false]. i := i + 1]. ^self size < other size"},
      {"String", false, "comparing",
       "hash | h | h := self size. 1 to: self size do: [:i | h := h * 31 "
       "+ (self at: i) value \\\\ 1073741823]. ^h"},
      {"String", false, "converting",
       "asSymbol <primitive: 10> ^self error: 'asSymbol failed'"},
      {"String", false, "converting", "asString ^self"},
      {"String", false, "printing",
       "printOn: aStream aStream nextPut: $'. aStream nextPutAll: self. "
       "aStream nextPut: $'"},
      {"Symbol", false, "converting",
       "asString <primitive: 11> ^self error: 'asString failed'"},
      {"Symbol", false, "converting", "asSymbol ^self"},
      {"Symbol", false, "comparing", "= other ^self == other"},
      {"Symbol", false, "comparing", "hash ^self identityHash"},
      {"Symbol", false, "printing",
       "printOn: aStream aStream nextPut: $#. aStream nextPutAll: self"},

      /// --- Association ---------------------------------------------------
      {"Association", false, "accessing", "key ^key"},
      {"Association", false, "accessing", "value ^value"},
      {"Association", false, "accessing", "value: anObject value := "
                                          "anObject"},
      {"Association", false, "private",
       "setKey: aKey value: aValue key := aKey. value := aValue"},
      {"Association", false, "printing",
       "printOn: aStream aStream print: key. aStream nextPutAll: ' -> '. "
       "aStream print: value"},

      /// --- OrderedCollection ----------------------------------------------
      {"OrderedCollection", true, "instance creation",
       "new ^self basicNew initCollection"},
      {"OrderedCollection", false, "private",
       "initCollection array := Array new: 8. firstIndex := 1. lastIndex "
       ":= 0"},
      {"OrderedCollection", false, "private",
       "grow | n | n := Array new: array size * 2. n replaceFrom: 1 to: "
       "array size with: array startingAt: 1. array := n"},
      {"OrderedCollection", false, "adding",
       "add: anObject lastIndex = array size ifTrue: [self grow]. "
       "lastIndex := lastIndex + 1. array at: lastIndex put: anObject. "
       "^anObject"},
      {"OrderedCollection", false, "adding",
       "addLast: anObject ^self add: anObject"},
      {"OrderedCollection", false, "adding",
       "addAll: aCollection aCollection do: [:e | self add: e]. "
       "^aCollection"},
      {"OrderedCollection", false, "removing",
       "removeFirst | v | self isEmpty ifTrue: [^self error: 'collection "
       "is empty']. v := array at: firstIndex. array at: firstIndex put: "
       "nil. firstIndex := firstIndex + 1. ^v"},
      {"OrderedCollection", false, "accessing",
       "size ^lastIndex - firstIndex + 1"},
      {"OrderedCollection", false, "accessing",
       "at: index (index < 1 or: [index > self size]) ifTrue: [^self "
       "error: 'index out of range']. ^array at: firstIndex + index - 1"},
      {"OrderedCollection", false, "accessing",
       "at: index put: anObject (index < 1 or: [index > self size]) "
       "ifTrue: [^self error: 'index out of range']. ^array at: "
       "firstIndex + index - 1 put: anObject"},
      {"OrderedCollection", false, "enumerating",
       "do: aBlock firstIndex to: lastIndex do: [:i | aBlock value: "
       "(array at: i)]"},
      {"OrderedCollection", false, "converting",
       "asArray | a | a := Array new: self size. 1 to: self size do: [:i "
       "| a at: i put: (self at: i)]. ^a"},

      /// --- Dictionary ------------------------------------------------------
      {"Dictionary", true, "instance creation",
       "new ^self basicNew initSize: 8"},
      {"Dictionary", false, "private",
       "initSize: n table := Array new: n. tally := 0"},
      {"Dictionary", false, "private",
       "grow | old | old := table. table := Array new: old size * 2. "
       "tally := 0. 1 to: old size do: [:j | | a | a := old at: j. a "
       "isNil ifFalse: [self at: a key put: a value]]"},
      {"Dictionary", false, "accessing", "size ^tally"},
      {"Dictionary", false, "private",
       "associationAt: key | i start a | i := key identityHash \\\\ table "
       "size + 1. start := i. [true] whileTrue: [a := table at: i. a "
       "isNil ifTrue: [^nil]. a key == key ifTrue: [^a]. i := i = table "
       "size ifTrue: [1] ifFalse: [i + 1]. i = start ifTrue: [^nil]]"},
      {"Dictionary", false, "accessing",
       "at: key ifAbsent: aBlock | a | a := self associationAt: key. a "
       "isNil ifTrue: [^aBlock value]. ^a value"},
      {"Dictionary", false, "accessing",
       "at: key ^self at: key ifAbsent: [self error: 'key not found']"},
      {"Dictionary", false, "accessing",
       "at: key put: value | i a | tally * 2 >= table size ifTrue: [self "
       "grow]. i := key identityHash \\\\ table size + 1. [true] "
       "whileTrue: [a := table at: i. a isNil ifTrue: [table at: i put: "
       "(Association basicNew setKey: key value: value). tally := tally + "
       "1. ^value]. a key == key ifTrue: [a value: value. ^value]. i := i "
       "= table size ifTrue: [1] ifFalse: [i + 1]]"},
      {"Dictionary", false, "testing",
       "includesKey: key ^(self associationAt: key) notNil"},
      {"Dictionary", false, "enumerating",
       "associationsDo: aBlock 1 to: table size do: [:i | (table at: i) "
       "isNil ifFalse: [aBlock value: (table at: i)]]"},
      {"Dictionary", false, "enumerating",
       "keysDo: aBlock self associationsDo: [:a | aBlock value: a key]"},
      {"Dictionary", false, "enumerating",
       "do: aBlock self associationsDo: [:a | aBlock value: a value]"},
      {"Dictionary", false, "accessing",
       "keys | c | c := OrderedCollection new. self keysDo: [:k | c add: "
       "k]. ^c"},
      {"Dictionary", false, "printing",
       "printOn: aStream aStream nextPutAll: self class name asString. "
       "aStream nextPutAll: ' ('. self associationsDo: [:a | aStream "
       "print: a. aStream nextPut: $ ]. aStream nextPut: $)"},

      /// --- Streams --------------------------------------------------------
      {"WriteStream", true, "instance creation",
       "on: aCollection ^self basicNew setCollection: aCollection"},
      {"WriteStream", false, "private",
       "setCollection: aCollection collection := aCollection. position := "
       "0"},
      {"WriteStream", false, "private",
       "growTo: n | c | c := collection species new: n. c replaceFrom: 1 "
       "to: collection size with: collection startingAt: 1. collection := "
       "c"},
      {"WriteStream", false, "writing",
       "nextPut: anObject position = collection size ifTrue: [self "
       "growTo: collection size * 2 + 8]. position := position + 1. "
       "collection at: position put: anObject. ^anObject"},
      {"WriteStream", false, "writing",
       "nextPutAll: aCollection 1 to: aCollection size do: [:i | self "
       "nextPut: (aCollection at: i)]. ^aCollection"},
      {"WriteStream", false, "writing",
       "print: anObject self nextPutAll: anObject printString"},
      {"WriteStream", false, "writing", "cr self nextPut: Character cr"},
      {"WriteStream", false, "writing",
       "space self nextPut: Character space"},
      {"WriteStream", false, "writing", "tab self nextPut: Character tab"},
      {"WriteStream", false, "accessing",
       "contents ^collection copyFrom: 1 to: position"},
      {"ReadStream", true, "instance creation",
       "on: aCollection ^self basicNew setCollection: aCollection"},
      {"ReadStream", false, "private",
       "setCollection: aCollection collection := aCollection. position := "
       "0"},
      {"ReadStream", false, "testing",
       "atEnd ^position >= collection size"},
      {"ReadStream", false, "reading",
       "next self atEnd ifTrue: [^nil]. position := position + 1. "
       "^collection at: position"},
      {"ReadStream", false, "reading",
       "peek self atEnd ifTrue: [^nil]. ^collection at: position + 1"},
      {"ReadStream", false, "reading",
       "upTo: anObject | start c | start := position + 1. [self atEnd] "
       "whileFalse: [c := self next. c = anObject ifTrue: [^collection "
       "copyFrom: start to: position - 1]]. ^collection copyFrom: start "
       "to: position"},

      /// --- ClassOrganization ----------------------------------------------
      {"ClassOrganization", true, "instance creation",
       "new ^self basicNew initOrganization"},
      {"ClassOrganization", false, "private",
       "initOrganization categories := Dictionary new"},
      {"ClassOrganization", false, "accessing",
       "categories ^categories"},
      {"ClassOrganization", false, "accessing",
       "classify: aSelector under: aCategory | list | list := categories "
       "at: aCategory ifAbsent: [nil]. list isNil ifTrue: [list := "
       "OrderedCollection new. categories at: aCategory put: list]. (list "
       "includes: aSelector) ifFalse: [list add: aSelector]"},
      {"ClassOrganization", false, "accessing",
       "selectorsInCategory: aCategory ^categories at: aCategory "
       "ifAbsent: [OrderedCollection new]"},
      {"ClassOrganization", false, "printing",
       "printOn: aStream categories associationsDo: [:a | aStream "
       "nextPutAll: a key asString. aStream nextPut: Character cr. a "
       "value do: [:sel | aStream nextPutAll: '    '. aStream nextPutAll: "
       "sel asString. aStream nextPut: Character cr]]"},
      {"ClassOrganization", true, "instance creation",
       "fromString: aString | org stream line current | org := self new. "
       "stream := ReadStream on: aString. [stream atEnd] whileFalse: "
       "[line := stream upTo: Character cr. line isEmpty ifFalse: [(line "
       "at: 1) == Character space ifTrue: [current isNil ifFalse: [org "
       "classify: (line copyFrom: 5 to: line size) asSymbol under: "
       "current]] ifFalse: [current := line asSymbol]]]. ^org"},

      /// --- LinkedList / Link ------------------------------------------
      {"Link", false, "accessing", "nextLink ^nextLink"},
      {"LinkedList", false, "accessing", "first ^firstLink"},
      {"LinkedList", false, "testing", "isEmpty ^firstLink isNil"},
      {"LinkedList", false, "enumerating",
       "do: aBlock | cur | cur := firstLink. [cur notNil] whileTrue: "
       "[aBlock value: cur. cur := cur nextLink]"},

      /// --- Process ---------------------------------------------------------
      {"Process", false, "accessing", "priority ^priority"},
      {"Process", false, "accessing", "name ^name"},
      {"Process", false, "accessing",
       "suspendedContext ^suspendedContext"},
      {"Process", false, "accessing",
       "accumulatedMicroseconds ^accumulatedMicroseconds"},
      {"Process", false, "changing",
       "resume <primitive: 26> ^self error: 'resume failed'"},
      {"Process", false, "changing",
       "suspend <primitive: 27> ^self error: 'suspend failed'"},
      {"Process", false, "changing",
       "terminate <primitive: 28> ^self error: 'terminate failed'"},
      {"Process", false, "printing",
       "printOn: aStream aStream nextPutAll: 'a Process('. name isNil "
       "ifFalse: [aStream nextPutAll: name]. aStream nextPutAll: ' pri '. "
       "aStream print: priority. aStream nextPut: $)"},

      /// --- Semaphore -----------------------------------------------------
      {"Semaphore", true, "instance creation",
       "new ^self basicNew initSignals"},
      {"Semaphore", false, "private", "initSignals excessSignals := 0"},
      {"Semaphore", false, "accessing",
       "excessSignals ^excessSignals"},
      {"Semaphore", false, "communication",
       "signal <primitive: 30> ^self error: 'signal failed'"},
      {"Semaphore", false, "communication",
       "wait <primitive: 31> ^self error: 'wait failed'"},

      /// --- ProcessorScheduler (the §3.3 reorganization) ---------------------
      {"ProcessorScheduler", false, "processes",
       "yield <primitive: 29> ^self"},
      {"ProcessorScheduler", false, "processes",
       "thisProcess <primitive: 36> ^self error: 'thisProcess failed'"},
      {"ProcessorScheduler", false, "processes",
       "canRun: aProcess <primitive: 35> ^self error: 'canRun: failed'"},
      // The compatibility fall-through the paper describes: under MS the
      // new primitive answers; on an old interpreter the primitive is
      // unimplemented and control falls through to the old slot read.
      {"ProcessorScheduler", false, "processes",
       "activeProcess <primitive: 36> ^activeProcess"},
      {"ProcessorScheduler", false, "processes",
       "activePriority | p | p := self thisProcess. ^p isNil ifTrue: [5] "
       "ifFalse: [p priority]"},
      {"ProcessorScheduler", false, "accessing",
       "quiescentProcessLists ^quiescentProcessLists"},

      /// --- BlockContext ---------------------------------------------------
      {"BlockContext", false, "evaluating",
       "value <primitive: 20> ^self error: 'block argument count "
       "mismatch'"},
      {"BlockContext", false, "evaluating",
       "value: a <primitive: 20> ^self error: 'block argument count "
       "mismatch'"},
      {"BlockContext", false, "evaluating",
       "value: a value: b <primitive: 20> ^self error: 'block argument "
       "count mismatch'"},
      {"BlockContext", false, "evaluating",
       "value: a value: b value: c <primitive: 20> ^self error: 'block "
       "argument count mismatch'"},
      {"BlockContext", false, "accessing", "numArgs ^numArgs"},
      {"BlockContext", false, "accessing", "home ^home"},
      {"BlockContext", false, "controlling",
       "whileTrue: aBlock [self value] whileTrue: [aBlock value]. ^nil"},
      {"BlockContext", false, "controlling",
       "whileFalse: aBlock [self value] whileFalse: [aBlock value]. "
       "^nil"},
      {"BlockContext", false, "controlling",
       "whileTrue ^self whileTrue: []"},
      {"BlockContext", false, "controlling",
       "whileFalse ^self whileFalse: []"},
      {"BlockContext", false, "controlling",
       "repeat [true] whileTrue: [self value]"},
      {"BlockContext", false, "scheduling",
       "newProcessAt: priority <primitive: 25> ^self error: 'newProcess "
       "failed (blocks forked as processes take no arguments)'"},
      {"BlockContext", false, "scheduling",
       "newProcess ^self newProcessAt: 5"},
      {"BlockContext", false, "scheduling",
       "forkAt: priority ^(self newProcessAt: priority) resume"},
      {"BlockContext", false, "scheduling", "fork ^self forkAt: 5"},

      /// --- MethodContext (debugger-style introspection) -----------------
      {"MethodContext", false, "accessing", "sender ^sender"},
      {"MethodContext", false, "accessing", "method ^method"},
      {"MethodContext", false, "accessing", "receiver ^receiver"},
      {"MethodContext", false, "printing",
       "printOn: aStream method isNil ifTrue: [aStream nextPutAll: 'a "
       "MethodContext'. ^self]. aStream print: method"},

      /// --- Message ---------------------------------------------------------
      {"Message", false, "accessing", "selector ^selector"},
      {"Message", false, "accessing", "arguments ^arguments"},
      {"Message", false, "printing",
       "printOn: aStream aStream nextPutAll: selector asString"},

      /// --- SystemDictionary -------------------------------------------
      {"SystemDictionary", false, "accessing", "size ^tally"},
      {"SystemDictionary", false, "private",
       "associationAt: key | i start a | i := key identityHash \\\\ table "
       "size + 1. start := i. [true] whileTrue: [a := table at: i. a "
       "isNil ifTrue: [^nil]. a key == key ifTrue: [^a]. i := i = table "
       "size ifTrue: [1] ifFalse: [i + 1]. i = start ifTrue: [^nil]]"},
      {"SystemDictionary", false, "accessing",
       "at: key ifAbsent: aBlock | a | a := self associationAt: key. a "
       "isNil ifTrue: [^aBlock value]. ^a value"},
      {"SystemDictionary", false, "accessing",
       "at: key ^self at: key ifAbsent: [self error: 'global not "
       "found']"},
      {"SystemDictionary", false, "private",
       "grow | old | old := table. table := Array new: old size * 2. "
       "tally := 0. 1 to: old size do: [:j | | a | a := old at: j. a "
       "isNil ifFalse: [self at: a key put: a value]]"},
      // The grow check keeps the table at most half full; without it the
      // probe loop below has no empty slot to stop on once the 78th
      // eval-side global fills the 128-slot bootstrap table, and a plain
      // `Smalltalk at: #X put: 0` spins the VM forever.
      {"SystemDictionary", false, "accessing",
       "at: key put: value | i a | tally * 2 >= table size ifTrue: "
       "[self grow]. i := key identityHash \\\\ table size + 1. [true] "
       "whileTrue: [a := table at: i. a isNil ifTrue: [table at: i put: "
       "(Association basicNew setKey: key value: value). tally := tally "
       "+ 1. ^value]. a key == key ifTrue: [a value: value. ^value]. i "
       ":= i = table size ifTrue: [1] ifFalse: [i + 1]]"},
      {"SystemDictionary", false, "testing",
       "includesKey: key ^(self associationAt: key) notNil"},
      {"SystemDictionary", false, "enumerating",
       "associationsDo: aBlock 1 to: table size do: [:i | (table at: i) "
       "isNil ifFalse: [aBlock value: (table at: i)]]"},
      {"SystemDictionary", false, "enumerating",
       "allClassesDo: aBlock self associationsDo: [:a | (a value isKindOf: "
       "Behavior) ifTrue: [aBlock value: a value]]"},
      {"SystemDictionary", false, "enumerating",
       "allBehaviorsDo: aBlock self allClassesDo: [:c | aBlock value: c. "
       "aBlock value: c class]"},
      {"SystemDictionary", false, "browsing",
       "sendersOf: aSelector | results | results := OrderedCollection "
       "new. self allBehaviorsDo: [:cls | cls methodDict isNil ifFalse: "
       "[cls methodDict keysAndValuesDo: [:sel :m | (m hasLiteral: "
       "aSelector) ifTrue: [results add: m]]]]. ^results"},
      {"SystemDictionary", false, "browsing",
       "implementorsOf: aSelector | results | results := "
       "OrderedCollection new. self allBehaviorsDo: [:cls | (cls "
       "includesSelector: aSelector) ifTrue: [results add: cls]]. "
       "^results"},
      {"SystemDictionary", false, "printing",
       "printOn: aStream aStream nextPutAll: 'Smalltalk'"},

      /// --- Tools: Display / Sensor / Compiler / Decompiler --------------
      {"DisplayScreen", false, "displaying",
       "show: aString <primitive: 40> ^self error: 'display show: needs "
       "a string'"},
      {"InputSensor", false, "accessing",
       "nextEvent <primitive: 41> ^nil"},
      {"CompilerTool", false, "compiling",
       "compile: sourceString into: aClass <primitive: 50> ^self error: "
       "'compilation primitive failed'"},
      {"DecompilerTool", false, "decompiling",
       "decompile: aMethod <primitive: 51> ^self error: 'decompilation "
       "primitive failed'"},

      /// --- Inspector -----------------------------------------------------
      {"Inspector", true, "instance creation",
       "on: anObject ^self basicNew setObject: anObject"},
      {"Inspector", false, "private",
       "setObject: anObject | names | object := anObject. fields := "
       "OrderedCollection new. fields add: 'self' -> object printString. "
       "names := object class instanceVariableNames. names isNil ifFalse: "
       "[1 to: names size do: [:i | fields add: (names at: i) asString -> "
       "(object instVarAt: i) printString]]"},
      {"Inspector", false, "accessing", "object ^object"},
      {"Inspector", false, "accessing", "fields ^fields"},
      {"Inspector", false, "displaying",
       "show | s | s := WriteStream on: (String new: 32). s nextPutAll: "
       "'inspect: '. fields do: [:a | s nextPutAll: a key. s nextPutAll: "
       "'='. s nextPutAll: a value. s space]. Display show: s contents. "
       "^self"},

      /// --- class-side constructors and collection math ---------------------
      {"Array", true, "instance creation",
       "with: a | r | r := self new: 1. r at: 1 put: a. ^r"},
      {"Array", true, "instance creation",
       "with: a with: b | r | r := self new: 2. r at: 1 put: a. r at: 2 "
       "put: b. ^r"},
      {"Array", true, "instance creation",
       "with: a with: b with: c | r | r := self new: 3. r at: 1 put: a. "
       "r at: 2 put: b. r at: 3 put: c. ^r"},
      {"OrderedCollection", true, "instance creation",
       "withAll: aCollection | c | c := self new. c addAll: aCollection. "
       "^c"},
      {"Collection", false, "statistics",
       "sum ^self inject: 0 into: [:a :b | a + b]"},
      {"Collection", false, "statistics",
       "maxValue | m | m := nil. self do: [:e | (m isNil or: [e > m]) "
       "ifTrue: [m := e]]. ^m"},
      {"Collection", false, "statistics",
       "minValue | m | m := nil. self do: [:e | (m isNil or: [e < m]) "
       "ifTrue: [m := e]]. ^m"},
      {"OrderedCollection", false, "adding",
       "addFirst: anObject firstIndex = 1 ifTrue: [self makeRoomFirst]. "
       "firstIndex := firstIndex - 1. array at: firstIndex put: "
       "anObject. ^anObject"},
      {"OrderedCollection", false, "private",
       "makeRoomFirst | n shift | shift := array size max: 4. n := Array "
       "new: array size + shift. n replaceFrom: firstIndex + shift to: "
       "lastIndex + shift with: array startingAt: firstIndex. firstIndex "
       ":= firstIndex + shift. lastIndex := lastIndex + shift. array := "
       "n"},

      /// --- additional Object / testing protocol ---------------------------
      {"Object", false, "testing", "isString ^false"},
      {"Object", false, "testing", "isSymbol ^false"},
      {"Object", false, "testing", "isNumber ^false"},
      {"Object", false, "testing", "isCharacter ^false"},
      {"Object", false, "testing", "isClass ^false"},
      {"String", false, "testing", "isString ^true"},
      {"Symbol", false, "testing", "isSymbol ^true"},
      {"Number", false, "testing", "isNumber ^true"},
      {"Character", false, "testing", "isCharacter ^true"},
      {"Behavior", false, "testing", "isClass ^true"},
      {"Collection", false, "testing",
       "anySatisfy: aBlock self do: [:e | (aBlock value: e) ifTrue: "
       "[^true]]. ^false"},
      {"Collection", false, "testing",
       "allSatisfy: aBlock self do: [:e | (aBlock value: e) ifFalse: "
       "[^false]]. ^true"},
      {"Collection", false, "enumerating",
       "count: aBlock | n | n := 0. self do: [:e | (aBlock value: e) "
       "ifTrue: [n := n + 1]]. ^n"},
      {"Collection", false, "converting",
       "asSet | s | s := Set new. self do: [:e | s add: e]. ^s"},
      {"SequenceableCollection", false, "copying",
       "copyWith: anObject | c | c := self species new: self size + 1. c "
       "replaceFrom: 1 to: self size with: self startingAt: 1. c at: c "
       "size put: anObject. ^c"},
      {"OrderedCollection", false, "removing",
       "removeLast | v | self isEmpty ifTrue: [^self error: 'collection "
       "is empty']. v := array at: lastIndex. array at: lastIndex put: "
       "nil. lastIndex := lastIndex - 1. ^v"},
      {"Dictionary", false, "removing",
       "removeKey: key ifAbsent: aBlock | a | a := self associationAt: "
       "key. a isNil ifTrue: [^aBlock value]. ^self rebuildWithout: key"},
      {"Dictionary", false, "private",
       "rebuildWithout: key | old removed | old := table. table := Array "
       "new: old size. tally := 0. removed := nil. 1 to: old size do: "
       "[:j | | a | a := old at: j. a isNil ifFalse: [a key == key "
       "ifTrue: [removed := a value] ifFalse: [self at: a key put: a "
       "value]]]. ^removed"},
      {"Dictionary", false, "removing",
       "removeKey: key ^self removeKey: key ifAbsent: [self error: 'key "
       "not found']"},
      {"String", false, "converting",
       "asUppercase | c | c := self copy. 1 to: c size do: [:i | | v | v "
       ":= (c at: i) value. (v between: 97 and: 122) ifTrue: [c at: i "
       "put: (Character value: v - 32)]]. ^c"},
      {"String", false, "converting",
       "asLowercase | c | c := self copy. 1 to: c size do: [:i | | v | v "
       ":= (c at: i) value. (v between: 65 and: 90) ifTrue: [c at: i "
       "put: (Character value: v + 32)]]. ^c"},
      {"String", false, "testing",
       "startsWith: aString aString size > self size ifTrue: [^false]. 1 "
       "to: aString size do: [:i | (self at: i) == (aString at: i) "
       "ifFalse: [^false]]. ^true"},

      /// --- Interval --------------------------------------------------------
      {"Interval", true, "instance creation",
       "from: start to: stop by: step ^self basicNew setFrom: start to: "
       "stop by: step"},
      {"Interval", false, "private",
       "setFrom: a to: b by: c start := a. stop := b. step := c"},
      {"Interval", false, "accessing",
       "size step > 0 ifTrue: [stop < start ifTrue: [^0]. ^stop - start "
       "// step + 1]. start < stop ifTrue: [^0]. ^start - stop // (0 - "
       "step) + 1"},
      {"Interval", false, "accessing",
       "at: index (index < 1 or: [index > self size]) ifTrue: [^self "
       "error: 'index out of range']. ^start + (step * (index - 1))"},
      {"Interval", false, "accessing", "first ^start"},
      {"Interval", false, "accessing", "last ^start + (step * (self size "
                                       "- 1))"},
      {"Interval", false, "enumerating",
       "do: aBlock | i | i := start. step > 0 ifTrue: [[i <= stop] "
       "whileTrue: [aBlock value: i. i := i + step]] ifFalse: [[i >= "
       "stop] whileTrue: [aBlock value: i. i := i + step]]"},
      {"Interval", false, "testing",
       "includes: aNumber (aNumber isKindOf: Integer) ifFalse: [^false]. "
       "step > 0 ifTrue: [(aNumber < start or: [aNumber > stop]) ifTrue: "
       "[^false]] ifFalse: [(aNumber > start or: [aNumber < stop]) "
       "ifTrue: [^false]]. ^(aNumber - start) \\\\ step = 0"},
      {"Interval", false, "converting",
       "asArray | a n | n := self size. a := Array new: n. 1 to: n do: "
       "[:i | a at: i put: (self at: i)]. ^a"},
      {"Interval", false, "printing",
       "printOn: aStream aStream print: start. aStream nextPutAll: ' to: "
       "'. aStream print: stop. step = 1 ifFalse: [aStream nextPutAll: ' "
       "by: '. aStream print: step]"},
      {"Number", false, "intervals",
       "to: stop ^Interval from: self to: stop by: 1"},
      {"Number", false, "intervals",
       "to: stop by: step ^Interval from: self to: stop by: step"},

      /// --- Set ------------------------------------------------------------
      {"Set", true, "instance creation", "new ^self basicNew initSet: 8"},
      {"Set", false, "private",
       "initSet: n table := Array new: n. tally := 0"},
      {"Set", false, "private",
       "growSet | old | old := table. table := Array new: old size * 2. "
       "tally := 0. 1 to: old size do: [:j | | e | e := old at: j. e "
       "isNil ifFalse: [self add: e]]"},
      {"Set", false, "private",
       "scanFor: anObject | i start e | i := anObject hash \\\\ table "
       "size + 1. start := i. [true] whileTrue: [e := table at: i. (e "
       "isNil or: [e = anObject]) ifTrue: [^i]. i := i = table size "
       "ifTrue: [1] ifFalse: [i + 1]. i = start ifTrue: [^0]]"},
      {"Set", false, "adding",
       "add: anObject | i | anObject isNil ifTrue: [^self error: 'sets "
       "cannot hold nil']. tally * 2 >= table size ifTrue: [self "
       "growSet]. i := self scanFor: anObject. (table at: i) isNil "
       "ifTrue: [table at: i put: anObject. tally := tally + 1]. "
       "^anObject"},
      {"Set", false, "testing",
       "includes: anObject | i | anObject isNil ifTrue: [^false]. i := "
       "self scanFor: anObject. i = 0 ifTrue: [^false]. ^(table at: i) "
       "notNil"},
      {"Set", false, "accessing", "size ^tally"},
      {"Set", false, "enumerating",
       "do: aBlock 1 to: table size do: [:i | (table at: i) isNil "
       "ifFalse: [aBlock value: (table at: i)]]"},

      /// --- Point (a small user-level class for examples) ----------------
      {"Point", true, "instance creation",
       "x: ax y: ay ^self basicNew setX: ax y: ay"},
      {"Point", false, "private", "setX: ax y: ay x := ax. y := ay"},
      {"Point", false, "accessing", "x ^x"},
      {"Point", false, "accessing", "y ^y"},
      {"Point", false, "arithmetic",
       "+ aPoint ^Point x: x + aPoint x y: y + aPoint y"},
      {"Point", false, "arithmetic",
       "- aPoint ^Point x: x - aPoint x y: y - aPoint y"},
      {"Point", false, "comparing",
       "= aPoint (aPoint isKindOf: Point) ifFalse: [^false]. ^x = aPoint "
       "x and: [y = aPoint y]"},
      {"Point", false, "comparing", "hash ^x * 31 + y"},
      {"Point", false, "printing",
       "printOn: aStream aStream print: x. aStream nextPutAll: ' @ '. "
       "aStream print: y"},
      {"Object", false, "converting",
       "@ aNumber ^Point x: self y: aNumber"},
  };
  return Table;
}
