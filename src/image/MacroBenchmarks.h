//===-- image/MacroBenchmarks.h - The Smalltalk-80 macro suite --*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight "macro" benchmarks of Table 2 (a subset of the standard
/// Smalltalk-80 benchmarks, McCall 1983): typical user activities such as
/// compiling code or searching for definitions or uses of a particular
/// message selector. Each is a Smalltalk doIt executed as a Smalltalk
/// Process; the host times fork-to-completion.
///
/// Also provides the competition workloads of §4:
///  - the **idle Process**: `[true] whileTrue` — compiled to bytecode that
///    neither looks up messages nor allocates memory;
///  - the **busy Process**: modeled on the "sweep hand" background
///    Process — message sends, object allocations, and display
///    contention.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IMAGE_MACROBENCHMARKS_H
#define MST_IMAGE_MACROBENCHMARKS_H

#include <string>
#include <vector>

#include "vm/VirtualMachine.h"

namespace mst {

/// One macro benchmark: a named Smalltalk workload.
struct MacroBenchmark {
  /// Table 2 column name.
  std::string Name;
  /// The workload body (no completion signalling; the runner appends it).
  /// %SCALE% is replaced with the iteration count.
  std::string Body;
  /// Default iteration count at Scale = 1.
  int BaseIterations;
};

/// \returns the eight Table 2 benchmarks, in column order.
const std::vector<MacroBenchmark> &macroBenchmarks();

/// Installs benchmark support into the image (the BenchmarkDummy class the
/// compile benchmark compiles into, and its seed methods).
void setupMacroWorkload(VirtualMachine &VM);

/// The §4 idle Process source: minimum possible interference.
std::string idleProcessSource();

/// The §4 busy Process source: maximum interference — sends, allocations,
/// and display contention.
std::string busyProcessSource();

/// Result of one timed workload run.
struct TimedRun {
  bool Ok = false;
  /// Wall-clock fork-to-completion seconds. On a host with as many CPUs
  /// as interpreters this matches the paper's elapsed time; on a smaller
  /// host it is inflated by OS time-sharing.
  double WallSec = -1.0;
  /// Processor time attributed to the workload's own Smalltalk Process
  /// (thread-CPU time across its slices). This is the host-independent
  /// analogue of the paper's per-benchmark seconds: the Firefly gave each
  /// Process its own processor, so elapsed == processor time there.
  double CpuSec = -1.0;
};

/// Runs \p BodyStatements (no trailing period) as a priority-5 Smalltalk
/// Process and waits for completion.
TimedRun runTimedWorkload(VirtualMachine &VM,
                          const std::string &BodyStatements,
                          double TimeoutSec = 300.0);

/// Runs \p B at \p Scale (multiplies the iteration count).
TimedRun runMacroBenchmark(VirtualMachine &VM, const MacroBenchmark &B,
                           double Scale = 1.0, double TimeoutSec = 300.0);

/// Forks \p N competitor Processes running \p Source at priority 5 and
/// records them in the Smalltalk global \p GroupGlobal (oops must live in
/// the image: C++-held process oops would go stale across scavenges).
void forkCompetitors(VirtualMachine &VM, unsigned N,
                     const std::string &Source,
                     const std::string &GroupGlobal);

/// Terminates every Process recorded under \p GroupGlobal.
void terminateCompetitors(VirtualMachine &VM,
                          const std::string &GroupGlobal);

} // namespace mst

#endif // MST_IMAGE_MACROBENCHMARKS_H
