//===-- image/Bootstrap.h - The virtual image -------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the virtual image: the kernel class library (collections,
/// streams, printing, processes, browsing support) compiled from embedded
/// Smalltalk source into a freshly-booted VM. This plays the role of the
/// ParcPlace VI2.1 image that BS/MS interpreted (paper §2), at a smaller
/// scale but with the same structures the macro benchmarks traverse:
/// method dictionaries, literal frames, class organizations, and the
/// scheduler's Smalltalk-visible queues.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IMAGE_BOOTSTRAP_H
#define MST_IMAGE_BOOTSTRAP_H

#include <string>
#include <vector>

#include "vm/VirtualMachine.h"

namespace mst {

/// One kernel method definition.
struct MethodDef {
  const char *ClassName; ///< target class (resolved via globals)
  bool Meta;             ///< compile into the metaclass (class-side)
  const char *Category;  ///< organization category
  const char *Source;    ///< full method source
};

/// \returns the kernel method table (image/KernelSource.cpp).
const std::vector<MethodDef> &kernelMethods();

/// Builds the complete image into \p VM: kernel classes, kernel methods,
/// class organizations, and the Display/Sensor/Compiler/Decompiler
/// globals. Must run on the driver thread before interpreters start.
void bootstrapImage(VirtualMachine &VM);

/// Defines a new class at runtime (examples and benches use this).
/// \returns the class oop.
Oop defineClass(VirtualMachine &VM, const std::string &Name,
                const std::string &SuperName, ClassKind Kind,
                const std::vector<std::string> &InstVarNames,
                const std::string &Category);

/// Compiles and installs \p Source on \p Cls, classifying it under
/// \p Category in the class organization. Aborts on compile errors.
void addMethod(VirtualMachine &VM, Oop Cls, const std::string &Category,
               const std::string &Source);

} // namespace mst

#endif // MST_IMAGE_BOOTSTRAP_H
