//===-- image/MacroBenchmarks.cpp - The Smalltalk-80 macro suite ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/MacroBenchmarks.h"

#include "image/Bootstrap.h"
#include "support/Timer.h"

using namespace mst;

const std::vector<MacroBenchmark> &mst::macroBenchmarks() {
  static const std::vector<MacroBenchmark> Suite = {
      {"read and write class organization",
       "1 to: %SCALE% do: [:r | Smalltalk allClassesDo: [:c | | org text "
       "| org := c organization. org isNil ifFalse: [text := org "
       "printString. c organization: (ClassOrganization fromString: "
       "text)]]]",
       16},
      {"print class definition",
       "1 to: %SCALE% do: [:r | Smalltalk allClassesDo: [:c | c "
       "definition]]",
       50},
      {"print class hierarchy",
       "1 to: %SCALE% do: [:r | Object printHierarchy]", 20},
      {"find all calls",
       "1 to: %SCALE% do: [:r | Smalltalk sendersOf: #printOn:]", 60},
      {"find all implementors",
       "1 to: %SCALE% do: [:r | Smalltalk implementorsOf: #printOn:]", 200},
      {"create inspector view",
       "1 to: %SCALE% do: [:r | (Inspector on: (Point x: 3 y: 4)) show. "
       "(Inspector on: (1 -> 'one')) show. (Inspector on: (WriteStream "
       "on: (String new: 4))) show]",
       800},
      {"compile dummy method",
       "1 to: %SCALE% do: [:r | Compiler compile: 'dummyMethod | a b | a "
       ":= 3. b := a + 4. 1 to: 10 do: [:i | b := b + (a someWork: i)]. "
       "^a * b' into: BenchmarkDummy]",
       3000},
      {"decompile class",
       "1 to: %SCALE% do: [:r | Behavior selectorsDo: [:s | (Behavior "
       "compiledMethodAt: s) decompile]]",
       300},
  };
  return Suite;
}

void mst::setupMacroWorkload(VirtualMachine &VM) {
  if (VM.model().globalAt("BenchmarkDummy").isNull())
    defineClass(VM, "BenchmarkDummy", "Object", ClassKind::Fixed, {},
                "Benchmarks");
  VM.compileAndRun("Smalltalk at: #BusyTick put: 0");
}

std::string mst::idleProcessSource() { return "[true] whileTrue"; }

std::string mst::busyProcessSource() {
  // Modeled on the "sweep hand" background Process: message sends, object
  // allocations, and contention for the display (paper §4).
  return "[true] whileTrue: [ | s p | p := Point x: 3 y: 4. s := "
         "WriteStream on: (String new: 8). s print: p x + p y. Display "
         "show: s contents]";
}

static std::string replaceScale(std::string Body, int Iters) {
  const std::string Tag = "%SCALE%";
  for (size_t Pos = Body.find(Tag); Pos != std::string::npos;
       Pos = Body.find(Tag, Pos))
    Body.replace(Pos, Tag.size(), std::to_string(Iters));
  return Body;
}

TimedRun mst::runTimedWorkload(VirtualMachine &VM,
                               const std::string &BodyStatements,
                               double TimeoutSec) {
  unsigned Sig = VM.createHostSignal();
  // Fork from Smalltalk so the Process oop lives in the image (a C++-held
  // oop would go stale across scavenges); read back its attributed
  // processor time afterwards.
  std::string Fork = "| p |\np := [" + BodyStatements +
                     ". nil hostSignal: " + std::to_string(Sig) +
                     "] newProcessAt: 5.\nSmalltalk at: #TimedWorkload "
                     "put: p.\np resume";
  TimedRun R;
  Stopwatch Watch;
  if (VM.compileAndRun(Fork).isNull())
    return R;
  if (!VM.waitHostSignal(Sig, 1, TimeoutSec))
    return R;
  R.WallSec = Watch.seconds();
  Oop Us = VM.compileAndRun(
      "^(Smalltalk at: #TimedWorkload) accumulatedMicroseconds");
  if (Us.isSmallInt())
    R.CpuSec = static_cast<double>(Us.smallInt()) / 1e6;
  R.Ok = R.CpuSec >= 0.0;
  return R;
}

TimedRun mst::runMacroBenchmark(VirtualMachine &VM,
                                const MacroBenchmark &B, double Scale,
                                double TimeoutSec) {
  int Iters = static_cast<int>(B.BaseIterations * Scale);
  if (Iters < 1)
    Iters = 1;
  return runTimedWorkload(VM, replaceScale(B.Body, Iters), TimeoutSec);
}

void mst::forkCompetitors(VirtualMachine &VM, unsigned N,
                          const std::string &Source,
                          const std::string &GroupGlobal) {
  std::string DoIt = "| list |\nlist := Array new: " + std::to_string(N) +
                     ".\n1 to: " + std::to_string(N) +
                     " do: [:i | list at: i put: ([" + Source +
                     "] forkAt: 5)].\nSmalltalk at: #" + GroupGlobal +
                     " put: list";
  VM.compileAndRun(DoIt);
}

void mst::terminateCompetitors(VirtualMachine &VM,
                               const std::string &GroupGlobal) {
  VM.compileAndRun("(Smalltalk at: #" + GroupGlobal +
                   ") do: [:p | p terminate]. Smalltalk at: #" +
                   GroupGlobal + " put: nil");
}
