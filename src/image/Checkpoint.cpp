//===-- image/Checkpoint.cpp - Auto- and emergency checkpoints ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Checkpoint.h"

#include <chrono>

#include "obs/Telemetry.h"
#include "support/Panic.h"

using namespace mst;

namespace {
Counter &emergencyCtr() {
  static Counter C{"img.save.emergency"};
  return C;
}
Counter &autoCtr() {
  static Counter C{"img.save.auto"};
  return C;
}
} // namespace

Checkpointer::Checkpointer(VirtualMachine &VM, Options O)
    : VM(VM), Opts(std::move(O)) {
  if (Opts.Path.empty())
    return;
  if (Opts.EmergencyOnPanic)
    PanicSection = panicRegisterSection(
        "emergency snapshot", [this] { return emergencySnapshot(); });
  if (Opts.EveryMs > 0)
    Thread = std::thread([this] { threadMain(); });
}

Checkpointer::~Checkpointer() {
  // Unregister the panic section first: once the periodic thread is gone
  // and the caller starts tearing down the VM, an emergency snapshot
  // would walk a dying heap.
  if (PanicSection >= 0)
    panicUnregisterSection(PanicSection);
  if (Thread.joinable()) {
    {
      std::lock_guard<std::mutex> L(Mutex);
      Stop = true;
    }
    Cv.notify_all();
    // The periodic thread may be mid-checkpoint, waiting for every other
    // mutator — including this one — to reach a safepoint. Joining from
    // inside a blocked region keeps the caller safe so that rendezvous
    // can complete.
    Safepoint &Sp = VM.memory().safepoint();
    if (Sp.currentThreadRegistered()) {
      BlockedRegion B(Sp);
      Thread.join();
    } else {
      Thread.join();
    }
  }
}

bool Checkpointer::checkpointNow(std::string &Error) {
  SnapshotOptions SO;
  SO.KeepGenerations = Opts.KeepGenerations;
  uint64_t Mark = 0;
  if (Opts.JournalMark && Opts.JournalMark(Mark)) {
    SO.HasJournalMark = true;
    SO.JournalMark = Mark;
  }
  if (!saveSnapshot(VM, Opts.Path, Error, SO)) {
    std::lock_guard<std::mutex> G(ErrMutex);
    LastError = Error;
    return false;
  }
  Taken.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string Checkpointer::lastError() {
  std::lock_guard<std::mutex> G(ErrMutex);
  return LastError;
}

void Checkpointer::threadMain() {
  // The periodic thread is a registered mutator so its stop-the-world
  // request participates in the rendezvous arithmetic; while sleeping it
  // sits in a blocked region so it never stalls anyone else's pause.
  VM.memory().registerMutator("checkpointer");
  for (;;) {
    bool StopNow = false;
    {
      BlockedRegion B(VM.memory().safepoint());
      std::unique_lock<std::mutex> L(Mutex);
      Cv.wait_for(L, std::chrono::milliseconds(Opts.EveryMs),
                  [this] { return Stop; });
      StopNow = Stop;
    }
    if (StopNow)
      break;
    std::string Error;
    if (checkpointNow(Error))
      autoCtr().add();
  }
  VM.memory().unregisterMutator();
}

std::string Checkpointer::emergencySnapshot() {
  // Best-effort by design: this runs on whatever thread panicked. Skip
  // when a stop-the-world request could never complete (a pause is
  // already in progress — e.g. a heap-verification panic mid-GC) or
  // would corrupt the rendezvous count (unregistered thread).
  Safepoint &Sp = VM.memory().safepoint();
  if (Sp.pollNeeded())
    return "skipped: a stop-the-world pause is in progress\n";
  if (!Sp.currentThreadRegistered())
    return "skipped: panicking thread is not a registered mutator\n";
  std::string Target = Opts.Path + ".panic";
  std::string Error;
  if (!saveSnapshot(VM, Target, Error))
    return "failed: " + Error + "\n";
  emergencyCtr().add();
  return "written to " + Target + "\n";
}
