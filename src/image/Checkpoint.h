//===-- image/Checkpoint.h - Auto- and emergency checkpoints ----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint policy layer on top of image/Snapshot: a periodic
/// auto-snapshot thread (`--snapshot-every=ms`) and a best-effort
/// emergency snapshot wired into the Panic funnel, so a panicking VM
/// leaves a restartable image next to its postmortem dump.
///
/// Lives in the image library (not the VM) because it calls saveSnapshot;
/// mst_image links mst_vm, never the other way around.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IMAGE_CHECKPOINT_H
#define MST_IMAGE_CHECKPOINT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "image/Snapshot.h"

namespace mst {

/// Periodic and emergency checkpointing for one VM. Construct after the
/// VM, destroy before it.
class Checkpointer {
public:
  struct Options {
    /// Target image path; rotation and the `.panic` emergency image hang
    /// off this name. Empty disables the checkpointer entirely.
    std::string Path;
    /// Auto-snapshot interval in milliseconds; 0 disables the periodic
    /// thread (checkpointNow and the panic section still work).
    uint64_t EveryMs = 0;
    /// Rotated generations to keep per snapshot (SnapshotOptions).
    unsigned KeepGenerations = 0;
    /// Register a Panic-funnel section that writes a best-effort
    /// emergency image to `<Path>.panic` when the VM panics.
    bool EmergencyOnPanic = true;
    /// When set and it returns true, checkpointNow stamps the returned
    /// request-journal high-water mark into the image (the JPOS section)
    /// so the serving layer can replay past it and truncate below it.
    /// The provider runs on the checkpointing thread; the serving layer
    /// only installs it on shards whose periodic thread is disabled, so
    /// the mark is always read at a batch boundary.
    std::function<bool(uint64_t &)> JournalMark;
  };

  Checkpointer(VirtualMachine &VM, Options Opts);
  ~Checkpointer();

  Checkpointer(const Checkpointer &) = delete;
  Checkpointer &operator=(const Checkpointer &) = delete;

  /// Takes a checkpoint right now on the calling thread, which must be a
  /// registered mutator (the driver, or the checkpointer's own thread).
  bool checkpointNow(std::string &Error);

  /// \returns how many checkpoints have been written successfully.
  uint64_t checkpointsTaken() const {
    return Taken.load(std::memory_order_relaxed);
  }

  /// \returns the most recent checkpoint failure, or empty.
  std::string lastError();

private:
  void threadMain();
  std::string emergencySnapshot();

  VirtualMachine &VM;
  Options Opts;

  std::thread Thread;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Stop = false; // guarded by Mutex

  std::atomic<uint64_t> Taken{0};

  std::mutex ErrMutex;
  std::string LastError; // guarded by ErrMutex

  int PanicSection = -1;
};

} // namespace mst

#endif // MST_IMAGE_CHECKPOINT_H
