//===-- image/Snapshot.cpp - Virtual image save/load ----------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "support/Assert.h"

using namespace mst;

namespace {

constexpr uint32_t SnapshotMagic = 0x4d535431; // "MST1"
constexpr uint32_t SnapshotVersion = 2;

/// One serialized object record (fixed part).
struct RecordHeader {
  uint64_t ClassRef;   // encoded reference (see encodeRef)
  uint32_t SlotCount;
  uint32_t ByteLength;
  uint32_t Hash;
  uint8_t Format;
  uint8_t Escaped;
  uint8_t Pad[2];
};

/// Reference encoding within a snapshot:
///   0                -> the null oop
///   (v << 1) | 1     -> SmallInteger v
///   (id + 1) << 1    -> object with the given table id
uint64_t encodeRef(Oop O,
                   const std::unordered_map<uintptr_t, uint64_t> &Ids) {
  if (O.isNull())
    return 0;
  if (O.isSmallInt())
    return (static_cast<uint64_t>(O.smallInt()) << 1) | 1u;
  auto It = Ids.find(O.bits());
  assert(It != Ids.end() && "reference to an unserialized object");
  return (It->second + 1) << 1;
}

class Writer {
public:
  Writer(VirtualMachine &VM, std::FILE *Out) : VM(VM), Out(Out) {}

  bool run(std::string &Error) {
    collect();
    if (!writeHeader() || !writeObjects() || !writeRootTable() ||
        !writeSymbolTable()) {
      Error = "snapshot write failed (disk full?)";
      return false;
    }
    return true;
  }

private:
  /// Breadth-first closure over everything reachable from the well-known
  /// objects and the symbol table.
  void collect() {
    auto Enqueue = [this](Oop O) {
      if (!O.isPointer() || Ids.count(O.bits()))
        return;
      Ids.emplace(O.bits(), Objects.size());
      Objects.push_back(O);
    };
    KnownObjects &K = VM.model().known();
    K.visitRoots([&](Oop *Cell) {
      Enqueue(*Cell);
      RootCells.push_back(Cell);
    });
    VM.model().symbols().visitRoots([&](Oop *Cell) { Enqueue(*Cell); });

    for (size_t Scan = 0; Scan < Objects.size(); ++Scan) {
      ObjectHeader *H = Objects[Scan].object();
      Enqueue(H->classOop());
      if (H->Format == ObjectFormat::Bytes)
        continue;
      // Contexts are serialized in full (dead slots are nil or smallint
      // in practice once the interpreter has saved its state; scanning
      // conservatively to SlotCount would risk junk, so respect sp).
      uint32_t Live = H->SlotCount;
      if (H->Format == ObjectFormat::Context) {
        Oop Sp = H->slots()[ContextSpSlotIndex];
        if (Sp.isSmallInt() && Sp.smallInt() >= 0)
          Live = std::min<uint32_t>(
              H->SlotCount, static_cast<uint32_t>(Sp.smallInt()) + 1);
      }
      for (uint32_t I = 0; I < Live; ++I)
        Enqueue(H->slots()[I]);
    }
  }

  bool put(const void *P, size_t N) { return std::fwrite(P, 1, N, Out) == N; }
  bool putU32(uint32_t V) { return put(&V, 4); }
  bool putU64(uint64_t V) { return put(&V, 8); }

  bool writeHeader() {
    return putU32(SnapshotMagic) && putU32(SnapshotVersion) &&
           putU64(Objects.size()) && putU64(RootCells.size());
  }

  bool writeObjects() {
    for (Oop O : Objects) {
      ObjectHeader *H = O.object();
      RecordHeader R{};
      R.ClassRef = encodeRef(H->classOop(), Ids);
      R.SlotCount = H->SlotCount;
      R.ByteLength = H->ByteLength;
      R.Hash = H->Hash;
      R.Format = static_cast<uint8_t>(H->Format);
      R.Escaped = H->isEscaped() ? 1 : 0;
      if (!put(&R, sizeof(R)))
        return false;
      if (H->Format == ObjectFormat::Bytes) {
        if (H->ByteLength && !put(H->bytes(), H->ByteLength))
          return false;
        continue;
      }
      uint32_t Live = H->SlotCount;
      if (H->Format == ObjectFormat::Context) {
        Oop Sp = H->slots()[ContextSpSlotIndex];
        if (Sp.isSmallInt() && Sp.smallInt() >= 0)
          Live = std::min<uint32_t>(
              H->SlotCount, static_cast<uint32_t>(Sp.smallInt()) + 1);
      }
      if (!putU32(Live))
        return false;
      for (uint32_t I = 0; I < Live; ++I)
        if (!putU64(encodeRef(H->slots()[I], Ids)))
          return false;
    }
    return true;
  }

  bool writeRootTable() {
    for (Oop *Cell : RootCells)
      if (!putU64(encodeRef(*Cell, Ids)))
        return false;
    return true;
  }

  bool writeSymbolTable() {
    // Symbols are identified by their object ids; spellings come from the
    // byte bodies at load time.
    std::vector<uint64_t> SymbolIds;
    VM.model().symbols().visitRoots([&](Oop *Cell) {
      if (Cell->isPointer()) {
        auto It = Ids.find(Cell->bits());
        if (It != Ids.end())
          SymbolIds.push_back(It->second);
      }
    });
    // The last visited cell is the symbol class itself; keep it — the
    // loader just skips non-Symbol spellings being re-adopted twice.
    if (!putU64(SymbolIds.size()))
      return false;
    for (uint64_t Id : SymbolIds)
      if (!putU64(Id))
        return false;
    return true;
  }

  VirtualMachine &VM;
  std::FILE *Out;
  std::unordered_map<uintptr_t, uint64_t> Ids;
  std::vector<Oop> Objects;
  std::vector<Oop *> RootCells;
};

class Loader {
public:
  Loader(VirtualMachine &VM, std::FILE *In) : VM(VM), In(In) {}

  bool run(std::string &Error) {
    uint32_t Magic = 0, Version = 0;
    uint64_t ObjectCount = 0, RootCount = 0;
    if (!getU32(Magic) || !getU32(Version) || !getU64(ObjectCount) ||
        !getU64(RootCount)) {
      Error = "snapshot truncated (header)";
      return false;
    }
    if (Magic != SnapshotMagic || Version != SnapshotVersion) {
      Error = "not a compatible snapshot file";
      return false;
    }
    if (!readObjects(ObjectCount, Error))
      return false;
    if (!rebindRoots(RootCount, Error))
      return false;
    if (!rebindSymbols(Error))
      return false;
    return true;
  }

private:
  bool get(void *P, size_t N) { return std::fread(P, 1, N, In) == N; }
  bool getU32(uint32_t &V) { return get(&V, 4); }
  bool getU64(uint64_t &V) { return get(&V, 8); }

  Oop decodeRef(uint64_t R, bool &Ok) const {
    if (R == 0)
      return Oop();
    if (R & 1)
      return Oop::fromSmallInt(static_cast<intptr_t>(R) >> 1);
    uint64_t Id = (R >> 1) - 1;
    if (Id >= Loaded.size()) {
      Ok = false;
      return Oop();
    }
    return Loaded[Id];
  }

  bool readObjects(uint64_t Count, std::string &Error) {
    ObjectMemory &OM = VM.memory();
    std::vector<RecordHeader> Headers(Count);
    std::vector<std::vector<uint64_t>> Bodies(Count);
    std::vector<std::vector<uint8_t>> Bytes(Count);
    uint32_t MaxHash = 0;

    // Pass 1: read records and allocate shells (class fixed up later; a
    // temporary null class is fine while the world is single-threaded).
    for (uint64_t I = 0; I < Count; ++I) {
      RecordHeader &R = Headers[I];
      if (!get(&R, sizeof(R))) {
        Error = "snapshot truncated (record " + std::to_string(I) + ")";
        return false;
      }
      MaxHash = std::max(MaxHash, R.Hash);
      Oop Shell;
      switch (static_cast<ObjectFormat>(R.Format)) {
      case ObjectFormat::Bytes: {
        Bytes[I].resize(R.ByteLength);
        if (R.ByteLength && !get(Bytes[I].data(), R.ByteLength)) {
          Error = "snapshot truncated (bytes)";
          return false;
        }
        Shell = OM.allocateOldBytes(Oop(), R.ByteLength);
        std::memcpy(Shell.object()->bytes(), Bytes[I].data(),
                    R.ByteLength);
        break;
      }
      case ObjectFormat::Pointers:
      case ObjectFormat::Context: {
        uint32_t Live = 0;
        if (!getU32(Live) || Live > R.SlotCount) {
          Error = "snapshot corrupt (live slots)";
          return false;
        }
        Bodies[I].resize(Live);
        for (uint32_t S = 0; S < Live; ++S)
          if (!getU64(Bodies[I][S])) {
            Error = "snapshot truncated (slots)";
            return false;
          }
        Shell = static_cast<ObjectFormat>(R.Format) ==
                        ObjectFormat::Context
                    ? OM.allocateOldContextObject(Oop(), R.SlotCount)
                    : OM.allocateOldPointers(Oop(), R.SlotCount);
        break;
      }
      default:
        Error = "snapshot corrupt (format)";
        return false;
      }
      Shell.object()->Hash = R.Hash;
      if (R.Escaped)
        Shell.object()->setEscaped();
      Loaded.push_back(Shell);
    }
    OM.ensureHashCounterAbove(MaxHash);

    // Pass 2: patch classes and slots.
    bool Ok = true;
    for (uint64_t I = 0; I < Count; ++I) {
      ObjectHeader *H = Loaded[I].object();
      H->setClassOop(decodeRef(Headers[I].ClassRef, Ok));
      for (uint32_t S = 0; S < Bodies[I].size(); ++S)
        H->slots()[S] = decodeRef(Bodies[I][S], Ok);
      // Unserialized context slots (beyond sp) become nil after rebind;
      // defer until the known nil exists (rebindRoots), recorded here.
      if (H->Format != ObjectFormat::Bytes &&
          Bodies[I].size() < H->SlotCount)
        NeedsNilFill.push_back(Loaded[I]);
    }
    if (!Ok) {
      Error = "snapshot corrupt (dangling reference)";
      return false;
    }
    return true;
  }

  bool rebindRoots(uint64_t Count, std::string &Error) {
    std::vector<Oop *> Cells;
    VM.model().known().visitRoots(
        [&Cells](Oop *Cell) { Cells.push_back(Cell); });
    if (Cells.size() != Count) {
      Error = "snapshot root table mismatch (" +
              std::to_string(Cells.size()) + " vs " +
              std::to_string(Count) + ")";
      return false;
    }
    bool Ok = true;
    for (Oop *Cell : Cells) {
      uint64_t R = 0;
      if (!getU64(R)) {
        Error = "snapshot truncated (roots)";
        return false;
      }
      *Cell = decodeRef(R, Ok);
    }
    if (!Ok) {
      Error = "snapshot corrupt (root reference)";
      return false;
    }
    VM.memory().setNil(VM.model().known().NilObj);
    Oop Nil = VM.model().known().NilObj;
    for (Oop O : NeedsNilFill) {
      ObjectHeader *H = O.object();
      uint32_t Live = H->SlotCount;
      Oop Sp = H->slots()[ContextSpSlotIndex];
      if (Sp.isSmallInt() && Sp.smallInt() >= 0)
        Live = std::min<uint32_t>(
            H->SlotCount, static_cast<uint32_t>(Sp.smallInt()) + 1);
      for (uint32_t S = Live; S < H->SlotCount; ++S)
        H->slots()[S] = Nil;
    }
    return true;
  }

  bool rebindSymbols(std::string &Error) {
    uint64_t N = 0;
    if (!getU64(N)) {
      Error = "snapshot truncated (symbol table)";
      return false;
    }
    std::vector<std::pair<std::string, Oop>> Syms;
    Oop SymbolClass = VM.model().known().ClassSymbol;
    for (uint64_t I = 0; I < N; ++I) {
      uint64_t Id = 0;
      if (!getU64(Id)) {
        Error = "snapshot truncated (symbol ids)";
        return false;
      }
      if (Id >= Loaded.size()) {
        Error = "snapshot corrupt (symbol id)";
        return false;
      }
      Oop Sym = Loaded[Id];
      if (!Sym.isPointer() ||
          Sym.object()->Format != ObjectFormat::Bytes ||
          Sym.object()->classOop() != SymbolClass)
        continue; // the trailing symbol-class cell, not a symbol
      Syms.emplace_back(ObjectModel::stringValue(Sym), Sym);
    }
    VM.model().symbols().adoptLoadedSymbols(Syms);
    VM.model().symbols().setSymbolClass(SymbolClass);
    return true;
  }

  VirtualMachine &VM;
  std::FILE *In;
  std::vector<Oop> Loaded;
  std::vector<Oop> NeedsNilFill;
};

} // namespace

bool mst::saveSnapshot(VirtualMachine &VM, const std::string &Path,
                       std::string &Error) {
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  // §3.3: fill the activeProcess slot before the snapshot, empty it
  // afterwards (the VM itself never reads it).
  VM.scheduler().fillActiveProcessSlot(
      VM.driver().roots().ActiveProcess.isNull()
          ? VM.model().nil()
          : VM.driver().roots().ActiveProcess);

  // Stop the world so the object graph is frozen while we walk it.
  while (!VM.memory().safepoint().requestStopTheWorld()) {
  }
  Writer W(VM, Out);
  bool Ok = W.run(Error);
  VM.memory().safepoint().resume();

  VM.scheduler().emptyActiveProcessSlot();
  if (std::fclose(Out) != 0 && Ok) {
    Error = "close failed for " + Path;
    Ok = false;
  }
  return Ok;
}

bool mst::loadSnapshot(VirtualMachine &VM, const std::string &Path,
                       std::string &Error) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    Error = "cannot open " + Path + " for reading";
    return false;
  }
  Loader L(VM, In);
  bool Ok = L.run(Error);
  std::fclose(In);
  if (Ok) {
    // Loaded code may differ from whatever warmed the caches.
    VM.cache().flushAll();
    VM.contextPool().flushAll();
    // §3.3 again: the slot is only meaningful inside the file.
    VM.scheduler().emptyActiveProcessSlot();
  }
  return Ok;
}
