//===-- image/Snapshot.cpp - Crash-consistent image save/load -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Format v2 ("MST2") layout. All integers are host-endian (an image is a
/// machine-local checkpoint, not an interchange format).
///
///   FileHeader   32 B: magic, version, object count, root count,
///                      section count, header CRC-32
///   Section * 3      : 16 B header (tag, payload CRC-32, payload length)
///                      followed by the payload
///       'OBJS' object graph   — one record per reachable object
///       'ROOT' well-known table — one encoded ref per root cell
///       'SYMB' symbol table   — count + object ids of interned symbols
///   FileTrailer  16 B: magic, whole-file CRC-32 (all bytes before the
///                      trailer), total file length (trailer included)
///
/// The writer serializes with the world stopped, then assembles and
/// writes the file with the world running: serialize → a per-save unique
/// temp file (`<path>.tmp.<pid>.<seq>`) → fsync(file) → rotate
/// generations → rename over `<path>` → fsync(directory). Saves to the
/// same target path are serialized by a per-path mutex so rotation and
/// rename never interleave, and the whole file phase runs inside a
/// safepoint blocked region (it touches only host memory), so a slow disk
/// or a saver waiting on the lock never stalls another thread's pause.
/// The loader verifies trailer, header, and every section CRC, then
/// structurally validates the whole graph against the section bounds
/// *before* allocating the first object — a corrupt file reports a
/// diagnostic (section, offset, expected vs. actual) and leaves the VM
/// untouched.
///
//===----------------------------------------------------------------------===//

#include "image/Snapshot.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "objmem/Safepoint.h"
#include "obs/Histogram.h"
#include "obs/Telemetry.h"
#include "support/Assert.h"
#include "support/Crc32.h"
#include "vkernel/Chaos.h"

using namespace mst;

namespace {

constexpr uint32_t SnapshotMagic = 0x4d535432;  // "MST2"
constexpr uint32_t SnapshotVersion = 2;
constexpr uint32_t TrailerMagic = 0x4d535445;   // "MSTE"
constexpr uint32_t SecObjectsTag = 0x4f424a53;  // "OBJS"
constexpr uint32_t SecRootsTag = 0x524f4f54;    // "ROOT"
constexpr uint32_t SecSymbolsTag = 0x53594d42;  // "SYMB"
constexpr uint32_t SecJournalTag = 0x4a504f53;  // "JPOS"
constexpr uint32_t SectionCount = 3;    // mandatory sections
constexpr uint32_t MaxSectionCount = 4; // + the optional journal mark

/// Slot-count ceiling for a single record. Contexts are the only format
/// whose SlotCount may exceed the serialized live slots; no legitimate
/// context is anywhere near this, so a larger value in a CRC-valid file
/// is corruption, not data — refuse before asking the allocator for it.
constexpr uint32_t MaxContextSlots = 1u << 20;

struct FileHeader {
  uint32_t Magic;
  uint32_t Version;
  uint64_t ObjectCount;
  uint64_t RootCount;
  uint32_t Sections;
  uint32_t Crc; ///< CRC-32 of the 28 bytes above
};
static_assert(sizeof(FileHeader) == 32, "snapshot header layout");

struct SectionHeader {
  uint32_t Tag;
  uint32_t Crc; ///< CRC-32 of the payload
  uint64_t PayloadBytes;
};
static_assert(sizeof(SectionHeader) == 16, "snapshot section layout");

struct FileTrailer {
  uint32_t Magic;
  uint32_t FileCrc;    ///< CRC-32 of every byte before the trailer
  uint64_t TotalBytes; ///< whole file, trailer included
};
static_assert(sizeof(FileTrailer) == 16, "snapshot trailer layout");

/// One serialized object record (fixed part).
struct RecordHeader {
  uint64_t ClassRef;   // encoded reference (see encodeRef)
  uint32_t SlotCount;
  uint32_t ByteLength;
  uint32_t Hash;
  uint8_t Format;
  uint8_t Escaped;
  uint8_t Pad[2];
};
static_assert(sizeof(RecordHeader) == 24, "snapshot record layout");

/// --- Telemetry ----------------------------------------------------------
/// Static-lifetime registry entries, the Panic-counter pattern: the image
/// layer has no single owning object, and load/save events are rare.

Counter &crcFailures() {
  static Counter C{"img.crc.failures"};
  return C;
}
Counter &loadFallbacks() {
  static Counter C{"img.load.fallbacks"};
  return C;
}
Counter &saveBytesCtr() {
  static Counter C{"img.save.bytes"};
  return C;
}
Counter &savesCtr() {
  static Counter C{"img.save.snapshots"};
  return C;
}
Histogram &savePauseHist() {
  static Histogram H{"img.save.pause"}; // ns, the stop-the-world window
  return H;
}
Histogram &loadMillisHist() {
  static Histogram H{"img.load.millis"}; // whole-load wall milliseconds
  return H;
}
Counter &dirFsyncWarnCtr() {
  static Counter C{"img.save.dirfsync.warnings"};
  return C;
}

std::string errnoText() { return std::strerror(errno); }

/// Reference encoding within a snapshot:
///   0                -> the null oop
///   (v << 1) | 1     -> SmallInteger v
///   (id + 1) << 1    -> object with the given table id
uint64_t encodeRef(Oop O,
                   const std::unordered_map<uintptr_t, uint64_t> &Ids) {
  if (O.isNull())
    return 0;
  if (O.isSmallInt())
    return (static_cast<uint64_t>(O.smallInt()) << 1) | 1u;
  auto It = Ids.find(O.bits());
  assert(It != Ids.end() && "reference to an unserialized object");
  return (It->second + 1) << 1;
}

/// An append-only byte buffer (one section payload).
class Buf {
public:
  void put(const void *P, size_t N) {
    const auto *B = static_cast<const uint8_t *>(P);
    V.insert(V.end(), B, B + N);
  }
  void putU32(uint32_t X) { put(&X, 4); }
  void putU64(uint64_t X) { put(&X, 8); }

  std::vector<uint8_t> V;
};

/// --- Writer -------------------------------------------------------------

class Writer {
public:
  explicit Writer(VirtualMachine &VM) : VM(VM) {}

  /// Serializes the image into the three section payloads. Runs with the
  /// world stopped; writes only to memory, so it cannot fail.
  void run(Buf &Objects, Buf &Roots, Buf &Symbols) {
    collect();
    writeObjects(Objects);
    writeRoots(Roots);
    writeSymbols(Symbols);
  }

  uint64_t objectCount() const { return Objects.size(); }
  uint64_t rootCount() const { return RootCells.size(); }

private:
  /// Breadth-first closure over everything reachable from the well-known
  /// objects and the symbol table.
  void collect() {
    auto Enqueue = [this](Oop O) {
      if (!O.isPointer() || Ids.count(O.bits()))
        return;
      Ids.emplace(O.bits(), Objects.size());
      Objects.push_back(O);
    };
    KnownObjects &K = VM.model().known();
    K.visitRoots([&](Oop *Cell) {
      Enqueue(*Cell);
      RootCells.push_back(Cell);
    });
    VM.model().symbols().visitRoots([&](Oop *Cell) { Enqueue(*Cell); });

    for (size_t Scan = 0; Scan < Objects.size(); ++Scan) {
      ObjectHeader *H = Objects[Scan].object();
      Enqueue(H->classOop());
      if (H->Format == ObjectFormat::Bytes)
        continue;
      for (uint32_t I = 0; I < liveSlots(H); ++I)
        Enqueue(H->slots()[I]);
    }
  }

  /// Contexts are serialized only up to their stack pointer (dead slots
  /// may hold junk the interpreter never cleared); everything else in
  /// full.
  static uint32_t liveSlots(ObjectHeader *H) {
    uint32_t Live = H->SlotCount;
    if (H->Format == ObjectFormat::Context) {
      Oop Sp = H->slots()[ContextSpSlotIndex];
      if (Sp.isSmallInt() && Sp.smallInt() >= 0)
        Live = std::min<uint32_t>(
            H->SlotCount, static_cast<uint32_t>(Sp.smallInt()) + 1);
    }
    return Live;
  }

  void writeObjects(Buf &B) {
    for (Oop O : Objects) {
      ObjectHeader *H = O.object();
      RecordHeader R{};
      R.ClassRef = encodeRef(H->classOop(), Ids);
      R.SlotCount = H->SlotCount;
      R.ByteLength = H->ByteLength;
      R.Hash = H->Hash;
      R.Format = static_cast<uint8_t>(H->Format);
      R.Escaped = H->isEscaped() ? 1 : 0;
      B.put(&R, sizeof(R));
      if (H->Format == ObjectFormat::Bytes) {
        if (H->ByteLength)
          B.put(H->bytes(), H->ByteLength);
        continue;
      }
      uint32_t Live = liveSlots(H);
      B.putU32(Live);
      for (uint32_t I = 0; I < Live; ++I)
        B.putU64(encodeRef(H->slots()[I], Ids));
    }
  }

  void writeRoots(Buf &B) {
    for (Oop *Cell : RootCells)
      B.putU64(encodeRef(*Cell, Ids));
  }

  void writeSymbols(Buf &B) {
    // Symbols are identified by their object ids; spellings come from the
    // byte bodies at load time.
    std::vector<uint64_t> SymbolIds;
    VM.model().symbols().visitRoots([&](Oop *Cell) {
      if (Cell->isPointer()) {
        auto It = Ids.find(Cell->bits());
        if (It != Ids.end())
          SymbolIds.push_back(It->second);
      }
    });
    // The last visited cell is the symbol class itself; keep it — the
    // loader just skips non-Symbol spellings being re-adopted twice.
    B.putU64(SymbolIds.size());
    for (uint64_t Id : SymbolIds)
      B.putU64(Id);
  }

  VirtualMachine &VM;
  std::unordered_map<uintptr_t, uint64_t> Ids;
  std::vector<Oop> Objects;
  std::vector<Oop *> RootCells;
};

/// --- Atomic durability protocol -----------------------------------------

/// One mutex per target path string, never reclaimed (the set of snapshot
/// paths a process writes is tiny and fixed). Held across the temp-file
/// write, rotation, and rename, it serializes concurrent saves to the
/// same path — the periodic checkpointer racing an exit-time
/// checkpointNow must not interleave two rotations or publish over each
/// other mid-protocol.
std::mutex &savePathLock(const std::string &Path) {
  static std::mutex RegistryMu;
  static auto &Locks = *new std::map<std::string, std::mutex>();
  std::lock_guard<std::mutex> G(RegistryMu);
  return Locks[Path];
}

/// A temp name no other save (thread or process) is writing: two savers
/// sharing one `<path>.tmp` would interleave writes into a torn file that
/// one of them then renames over the target.
std::string uniqueTmpName(const std::string &Path) {
  static std::atomic<uint64_t> Seq{0};
  return Path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(Seq.fetch_add(1, std::memory_order_relaxed) + 1);
}

/// fsyncs the directory containing \p Path so the rename itself is
/// durable. \returns false with \p Error set on failure.
bool fsyncDirectoryOf(const std::string &Path, std::string &Error) {
  if (chaos::failPoint("io.dirfsync.fail")) {
    Error = "fsync failed for directory of " + Path +
            " (chaos io.dirfsync.fail)";
    return false;
  }
  size_t Slash = Path.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0) {
    Error = "cannot open directory " + Dir + " for fsync: " + errnoText();
    return false;
  }
  bool Ok = ::fsync(Fd) == 0;
  if (!Ok)
    Error = "fsync failed for directory " + Dir + ": " + errnoText();
  ::close(Fd);
  return Ok;
}

/// Slides the rotated generations up one slot: `<path>.N-1` → `<path>.N`,
/// …, `<path>` → `<path>.1`. ENOENT at any rung is normal (fewer
/// generations exist than the cap); other failures are ignored too —
/// rotation is a retention nicety, never a correctness requirement.
void rotateGenerations(const std::string &Path, unsigned Keep) {
  if (Keep == 0)
    return;
  (void)::unlink((Path + "." + std::to_string(Keep)).c_str());
  for (unsigned G = Keep; G > 1; --G)
    (void)::rename((Path + "." + std::to_string(G - 1)).c_str(),
                   (Path + "." + std::to_string(G)).c_str());
  (void)::rename(Path.c_str(), (Path + ".1").c_str());
}

/// Writes \p Image to \p Path via a unique temp file + fsync + rename;
/// the caller holds the per-path save lock. The target is replaced
/// atomically or not at all; a failure (real or chaos-injected) leaves at
/// worst a torn `.tmp.*` file that no loader ever reads.
bool writeAtomically(const std::string &Path,
                     const std::vector<uint8_t> &Image,
                     const SnapshotOptions &Opts, std::string &Error) {
  std::string Tmp = uniqueTmpName(Path);
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    Error = "cannot create " + Tmp + ": " + errnoText();
    return false;
  }
  auto FailAt = [&](const std::string &What, size_t Off) {
    Error = What + " for " + Tmp + " at byte offset " +
            std::to_string(Off) + " of " + std::to_string(Image.size());
    ::close(Fd);
    (void)::unlink(Tmp.c_str());
    return false;
  };
  constexpr size_t Chunk = 1u << 20;
  size_t Off = 0;
  while (Off < Image.size()) {
    if (chaos::failPoint("io.write.fail"))
      return FailAt("write failed (chaos io.write.fail)", Off);
    size_t N = std::min(Chunk, Image.size() - Off);
    ssize_t W = ::write(Fd, Image.data() + Off, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return FailAt("write failed: " + errnoText(), Off);
    }
    Off += static_cast<size_t>(W);
  }
  if (chaos::failPoint("snapshot.truncate")) {
    // Simulated kill mid-save: tear the temp file at a seeded offset and
    // stop before the rename — exactly what a crash or power cut leaves.
    // The torn file stays behind on purpose; the target is untouched.
    uint64_t Cut =
        Image.empty() ? 0
                      : (chaos::failCount("snapshot.truncate") *
                         0x9e3779b97f4a7c15ULL) %
                            Image.size();
    (void)::ftruncate(Fd, static_cast<off_t>(Cut));
    ::close(Fd);
    Error = "simulated crash during save (chaos snapshot.truncate): " +
            Tmp + " torn at byte offset " + std::to_string(Cut) +
            "; target not replaced";
    return false;
  }
  if (chaos::failPoint("io.fsync.fail"))
    return FailAt("fsync failed (chaos io.fsync.fail)", Off);
  if (::fsync(Fd) != 0)
    return FailAt("fsync failed: " + errnoText(), Off);
  if (::close(Fd) != 0) {
    Error = "close failed for " + Tmp + ": " + errnoText();
    (void)::unlink(Tmp.c_str());
    return false;
  }
  rotateGenerations(Path, Opts.KeepGenerations);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "rename " + Tmp + " -> " + Path + " failed: " + errnoText();
    (void)::unlink(Tmp.c_str());
    return false;
  }
  // The rename has landed: the target now holds the complete new image
  // and loads. A directory-fsync failure past this point only weakens
  // durability of the rename itself across power loss — count the save,
  // warn, and report success rather than telling callers a committed
  // checkpoint failed.
  saveBytesCtr().add(Image.size());
  savesCtr().add();
  std::string DirError;
  if (!fsyncDirectoryOf(Path, DirError)) {
    dirFsyncWarnCtr().add();
    std::fprintf(stderr,
                 "mst: warning: snapshot %s is committed but %s; the "
                 "rename may not survive a power loss\n",
                 Path.c_str(), DirError.c_str());
  }
  return true;
}

/// --- Loader -------------------------------------------------------------

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Error = "cannot open " + Path + " for reading: " + errnoText();
    return false;
  }
  struct stat St {};
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    Error = "cannot stat " + Path + " (not a regular file?): " +
            errnoText();
    ::close(Fd);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t R = ::read(Fd, Out.data() + Off, Out.size() - Off);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Error = "read failed for " + Path + " at byte offset " +
              std::to_string(Off) + ": " + errnoText();
      ::close(Fd);
      return false;
    }
    if (R == 0)
      break; // concurrent truncation; the length checks below catch it
    Off += static_cast<size_t>(R);
  }
  Out.resize(Off);
  ::close(Fd);
  return true;
}

/// Bounds-checked cursor over one section payload. Every read names the
/// section and the failing offset, so a truncated or corrupt payload that
/// somehow passed its CRC still fails with a diagnostic, never a crash.
class SectionReader {
public:
  SectionReader(const char *Section, const uint8_t *Data, size_t Len)
      : Section(Section), Data(Data), Len(Len) {}

  bool get(void *Out, size_t N, std::string &Error) {
    if (N > Len - Off) {
      Error = "section '" + std::string(Section) + "' truncated at offset " +
              std::to_string(Off) + ": need " + std::to_string(N) +
              " bytes, " + std::to_string(Len - Off) + " remain";
      return false;
    }
    std::memcpy(Out, Data + Off, N);
    Off += N;
    return true;
  }
  bool getU32(uint32_t &V, std::string &Error) {
    return get(&V, 4, Error);
  }
  bool getU64(uint64_t &V, std::string &Error) {
    return get(&V, 8, Error);
  }
  /// Skips \p N bytes, returning their start offset in \p At.
  bool skip(size_t N, size_t &At, std::string &Error) {
    At = Off;
    if (N > Len - Off) {
      Error = "section '" + std::string(Section) + "' truncated at offset " +
              std::to_string(Off) + ": need " + std::to_string(N) +
              " bytes, " + std::to_string(Len - Off) + " remain";
      return false;
    }
    Off += N;
    return true;
  }
  size_t offset() const { return Off; }
  size_t remaining() const { return Len - Off; }

private:
  const char *Section;
  const uint8_t *Data;
  size_t Len;
  size_t Off = 0;
};

uint64_t readU64At(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

class Loader {
public:
  Loader(VirtualMachine &VM, const std::vector<uint8_t> &File)
      : VM(VM), File(File) {}

  /// Phase 1: checksum verification and full structural validation. Reads
  /// only the file buffer (plus the VM's root-cell count); does not touch
  /// the heap, so a failure leaves the VM exactly as constructed.
  bool verifyAndParse(std::string &Error) {
    return verifyEnvelope(Error) && parseObjects(Error) &&
           parseRoots(Error) && parseSymbols(Error);
  }

  /// Phase 2: allocate shells, patch references, rebind roots and
  /// symbols. Only runs after verifyAndParse; the only failure left is
  /// allocation (heap ceiling), reported without retry.
  bool materialize(std::string &Error);

private:
  bool verifyEnvelope(std::string &Error);
  bool parseObjects(std::string &Error);
  bool parseRoots(std::string &Error);
  bool parseSymbols(std::string &Error);

  /// Validates one encoded reference against the object table size.
  bool checkRef(uint64_t R, const char *Section, size_t Offset,
                std::string &Error) const {
    if (R == 0 || (R & 1))
      return true;
    uint64_t Id = (R >> 1) - 1;
    if (Id < Header.ObjectCount)
      return true;
    Error = "section '" + std::string(Section) + "' corrupt at offset " +
            std::to_string(Offset) + ": object reference " +
            std::to_string(Id) + " out of range (have " +
            std::to_string(Header.ObjectCount) + " objects)";
    return false;
  }

  Oop decodeRef(uint64_t R) const {
    if (R == 0)
      return Oop();
    if (R & 1)
      return Oop::fromSmallInt(static_cast<intptr_t>(R) >> 1);
    return Loaded[(R >> 1) - 1];
  }

  struct Rec {
    RecordHeader H;
    uint32_t Live = 0;   // serialized slot refs (pointer formats)
    size_t SlotsOff = 0; // offset of the refs within the OBJS payload
    size_t BytesOff = 0; // offset of the raw bytes within the payload
  };

  struct Span {
    const uint8_t *Data = nullptr;
    size_t Len = 0;
  };

  VirtualMachine &VM;
  const std::vector<uint8_t> &File;
  FileHeader Header{};
  Span Sections[MaxSectionCount]; // OBJS, ROOT, SYMB [, JPOS]
  std::vector<Rec> Records;
  std::vector<uint64_t> RootRefs;
  std::vector<uint64_t> SymbolIds;
  std::vector<Oop> Loaded;

public:
  /// Journal high-water mark from the optional JPOS section.
  bool HasJournalMark = false;
  uint64_t JournalMark = 0;
};

bool Loader::verifyEnvelope(std::string &Error) {
  constexpr size_t MinLen = sizeof(FileHeader) + sizeof(FileTrailer) +
                            SectionCount * sizeof(SectionHeader);
  if (File.size() < MinLen) {
    Error = "snapshot too short: " + std::to_string(File.size()) +
            " bytes, a v2 image needs at least " + std::to_string(MinLen) +
            " (truncated or not an image)";
    return false;
  }

  // Trailer first: it proves the file's tail survived, which is where a
  // torn write lands.
  FileTrailer Trailer;
  size_t TrailerOff = File.size() - sizeof(FileTrailer);
  std::memcpy(&Trailer, File.data() + TrailerOff, sizeof(Trailer));
  if (Trailer.Magic != TrailerMagic) {
    Error = "bad trailer magic at byte offset " +
            std::to_string(TrailerOff) + ": expected 0x" +
            [](uint32_t V) {
              char B[16];
              std::snprintf(B, sizeof(B), "%08x", V);
              return std::string(B);
            }(TrailerMagic) +
            " — file truncated mid-save or not an MST2 image";
    return false;
  }
  if (Trailer.TotalBytes != File.size()) {
    Error = "trailer length mismatch: file is " +
            std::to_string(File.size()) + " bytes, trailer records " +
            std::to_string(Trailer.TotalBytes) + " (truncated save)";
    return false;
  }
  uint32_t FileCrc = crc32(File.data(), TrailerOff);
  if (FileCrc != Trailer.FileCrc) {
    crcFailures().add();
    char B[64];
    std::snprintf(B, sizeof(B), "expected 0x%08x, got 0x%08x",
                  Trailer.FileCrc, FileCrc);
    Error = std::string("whole-file CRC mismatch: ") + B +
            " — image is bit-damaged";
    return false;
  }

  std::memcpy(&Header, File.data(), sizeof(Header));
  if (Header.Magic != SnapshotMagic || Header.Version != SnapshotVersion) {
    Error = "not a compatible snapshot file (header magic/version " +
            std::to_string(Header.Magic) + "/" +
            std::to_string(Header.Version) + ")";
    return false;
  }
  uint32_t HeaderCrc =
      crc32(File.data(), sizeof(FileHeader) - sizeof(uint32_t));
  if (HeaderCrc != Header.Crc) {
    crcFailures().add();
    Error = "header CRC mismatch";
    return false;
  }
  if (Header.Sections != SectionCount &&
      Header.Sections != MaxSectionCount) {
    Error = "header corrupt: " + std::to_string(Header.Sections) +
            " sections, expected " + std::to_string(SectionCount) + " or " +
            std::to_string(MaxSectionCount);
    return false;
  }

  static const struct {
    uint32_t Tag;
    const char *Name;
  } Expected[MaxSectionCount] = {{SecObjectsTag, "objects"},
                                 {SecRootsTag, "roots"},
                                 {SecSymbolsTag, "symbols"},
                                 {SecJournalTag, "journal-mark"}};
  size_t Off = sizeof(FileHeader);
  for (unsigned I = 0; I < Header.Sections; ++I) {
    if (Off + sizeof(SectionHeader) > TrailerOff) {
      Error = "section table truncated at byte offset " +
              std::to_string(Off);
      return false;
    }
    SectionHeader SH;
    std::memcpy(&SH, File.data() + Off, sizeof(SH));
    Off += sizeof(SH);
    if (SH.Tag != Expected[I].Tag) {
      Error = "section " + std::to_string(I) + " at byte offset " +
              std::to_string(Off - sizeof(SH)) + ": bad tag, expected '" +
              Expected[I].Name + "'";
      return false;
    }
    if (SH.PayloadBytes > TrailerOff - Off) {
      Error = "section '" + std::string(Expected[I].Name) +
              "' length " + std::to_string(SH.PayloadBytes) +
              " overruns the file at byte offset " + std::to_string(Off);
      return false;
    }
    uint32_t Crc = crc32(File.data() + Off, SH.PayloadBytes);
    if (Crc != SH.Crc) {
      crcFailures().add();
      char B[64];
      std::snprintf(B, sizeof(B), "expected 0x%08x, got 0x%08x", SH.Crc,
                    Crc);
      Error = "section '" + std::string(Expected[I].Name) +
              "' CRC mismatch: " + B;
      return false;
    }
    Sections[I] = {File.data() + Off, SH.PayloadBytes};
    Off += SH.PayloadBytes;
  }
  if (Off != TrailerOff) {
    Error = "file has " + std::to_string(TrailerOff - Off) +
            " unaccounted bytes after the last section";
    return false;
  }
  if (Header.Sections == MaxSectionCount) {
    if (Sections[3].Len != 8) {
      Error = "section 'journal-mark' has " +
              std::to_string(Sections[3].Len) + " bytes, expected 8";
      return false;
    }
    std::memcpy(&JournalMark, Sections[3].Data, 8);
    HasJournalMark = true;
  }
  // Counts claimed by the (CRC-valid) header must be achievable within
  // the sections that carry them, or a crafted count like 2^60 would
  // drive the parsers' reserve()/resize() into std::length_error before
  // any per-record bounds check runs.
  if (Header.ObjectCount > Sections[0].Len / sizeof(RecordHeader)) {
    Error = "header corrupt: object count " +
            std::to_string(Header.ObjectCount) + " impossible for a " +
            std::to_string(Sections[0].Len) +
            "-byte objects section (each record needs at least " +
            std::to_string(sizeof(RecordHeader)) + " bytes)";
    return false;
  }
  if (Header.RootCount > Sections[1].Len / 8) {
    Error = "header corrupt: root count " +
            std::to_string(Header.RootCount) + " impossible for a " +
            std::to_string(Sections[1].Len) + "-byte roots section";
    return false;
  }
  return true;
}

bool Loader::parseObjects(std::string &Error) {
  SectionReader R("objects", Sections[0].Data, Sections[0].Len);
  Records.reserve(Header.ObjectCount);
  for (uint64_t I = 0; I < Header.ObjectCount; ++I) {
    Rec Rc;
    size_t RecOff = R.offset();
    if (!R.get(&Rc.H, sizeof(Rc.H), Error))
      return false;
    auto Corrupt = [&](const std::string &What) {
      Error = "section 'objects' corrupt at offset " +
              std::to_string(RecOff) + " (record " + std::to_string(I) +
              "): " + What;
      return false;
    };
    if (!checkRef(Rc.H.ClassRef, "objects", RecOff, Error))
      return false;
    switch (static_cast<ObjectFormat>(Rc.H.Format)) {
    case ObjectFormat::Bytes:
      if (!R.skip(Rc.H.ByteLength, Rc.BytesOff, Error))
        return false;
      break;
    case ObjectFormat::Pointers:
    case ObjectFormat::Context: {
      if (!R.getU32(Rc.Live, Error))
        return false;
      if (Rc.Live > Rc.H.SlotCount)
        return Corrupt("live slot count " + std::to_string(Rc.Live) +
                       " exceeds slot count " +
                       std::to_string(Rc.H.SlotCount));
      bool IsCtx =
          static_cast<ObjectFormat>(Rc.H.Format) == ObjectFormat::Context;
      if (!IsCtx && Rc.Live != Rc.H.SlotCount)
        return Corrupt("pointer object serialized " +
                       std::to_string(Rc.Live) + " of " +
                       std::to_string(Rc.H.SlotCount) + " slots");
      if (IsCtx && (Rc.H.SlotCount > MaxContextSlots ||
                    Rc.H.SlotCount <= ContextSpSlotIndex))
        return Corrupt("implausible context slot count " +
                       std::to_string(Rc.H.SlotCount));
      if (!R.skip(size_t(Rc.Live) * 8, Rc.SlotsOff, Error))
        return false;
      for (uint32_t S = 0; S < Rc.Live; ++S)
        if (!checkRef(readU64At(Sections[0].Data + Rc.SlotsOff + 8u * S),
                      "objects", Rc.SlotsOff + 8u * S, Error))
          return false;
      break;
    }
    default:
      return Corrupt("invalid object format " +
                     std::to_string(Rc.H.Format));
    }
    Records.push_back(Rc);
  }
  if (R.remaining() != 0) {
    Error = "section 'objects' has " + std::to_string(R.remaining()) +
            " trailing bytes after the last record";
    return false;
  }
  return true;
}

bool Loader::parseRoots(std::string &Error) {
  size_t CellCount = 0;
  VM.model().known().visitRoots([&CellCount](Oop *) { ++CellCount; });
  if (Header.RootCount != CellCount) {
    Error = "root table mismatch: image has " +
            std::to_string(Header.RootCount) + " well-known roots, this "
            "VM expects " + std::to_string(CellCount) +
            " (image from an incompatible build?)";
    return false;
  }
  SectionReader R("roots", Sections[1].Data, Sections[1].Len);
  RootRefs.resize(Header.RootCount);
  for (uint64_t I = 0; I < Header.RootCount; ++I) {
    size_t Off = R.offset();
    if (!R.getU64(RootRefs[I], Error))
      return false;
    if (!checkRef(RootRefs[I], "roots", Off, Error))
      return false;
  }
  if (R.remaining() != 0) {
    Error = "section 'roots' has " + std::to_string(R.remaining()) +
            " trailing bytes";
    return false;
  }
  return true;
}

bool Loader::parseSymbols(std::string &Error) {
  SectionReader R("symbols", Sections[2].Data, Sections[2].Len);
  uint64_t N = 0;
  if (!R.getU64(N, Error))
    return false;
  if (N > R.remaining() / 8) {
    Error = "section 'symbols' corrupt at offset 0: claims " +
            std::to_string(N) + " symbols, payload holds at most " +
            std::to_string(R.remaining() / 8);
    return false;
  }
  SymbolIds.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    size_t Off = R.offset();
    if (!R.getU64(SymbolIds[I], Error))
      return false;
    if (SymbolIds[I] >= Header.ObjectCount) {
      Error = "section 'symbols' corrupt at offset " +
              std::to_string(Off) + ": symbol id " +
              std::to_string(SymbolIds[I]) + " out of range";
      return false;
    }
  }
  if (R.remaining() != 0) {
    Error = "section 'symbols' has " + std::to_string(R.remaining()) +
            " trailing bytes";
    return false;
  }
  return true;
}

bool Loader::materialize(std::string &Error) {
  ObjectMemory &OM = VM.memory();
  const uint8_t *Payload = Sections[0].Data;
  uint32_t MaxHash = 0;
  Loaded.reserve(Records.size());

  // Pass 1: allocate shells (class fixed up in pass 2; a temporary null
  // class is fine while the world is single-threaded).
  for (size_t I = 0; I < Records.size(); ++I) {
    const Rec &Rc = Records[I];
    MaxHash = std::max(MaxHash, Rc.H.Hash);
    if (chaos::failPoint("snapshot.materialize.fail")) {
      // Deterministic stand-in for allocation failure mid-materialize
      // (allocateOld overshoots the heap ceiling, so real OOM here needs
      // the OS to refuse memory): proves the ladder stops once the VM is
      // no longer fresh.
      Error = "out of memory materializing snapshot object " +
              std::to_string(I) + " of " + std::to_string(Records.size()) +
              " (chaos snapshot.materialize.fail)";
      return false;
    }
    Oop Shell;
    switch (static_cast<ObjectFormat>(Rc.H.Format)) {
    case ObjectFormat::Bytes:
      Shell = OM.allocateOldBytes(Oop(), Rc.H.ByteLength);
      if (!Shell.isNull() && Rc.H.ByteLength)
        std::memcpy(Shell.object()->bytes(), Payload + Rc.BytesOff,
                    Rc.H.ByteLength);
      break;
    case ObjectFormat::Context:
      Shell = OM.allocateOldContextObject(Oop(), Rc.H.SlotCount);
      break;
    default:
      Shell = OM.allocateOldPointers(Oop(), Rc.H.SlotCount);
      break;
    }
    if (Shell.isNull()) {
      Error = "out of memory materializing snapshot object " +
              std::to_string(I) + " of " + std::to_string(Records.size());
      return false;
    }
    Shell.object()->Hash = Rc.H.Hash;
    if (Rc.H.Escaped)
      Shell.object()->setEscaped();
    Loaded.push_back(Shell);
  }
  OM.ensureHashCounterAbove(MaxHash);

  // Pass 2: patch classes and slots (all references pre-validated).
  std::vector<Oop> NeedsNilFill;
  for (size_t I = 0; I < Records.size(); ++I) {
    const Rec &Rc = Records[I];
    ObjectHeader *H = Loaded[I].object();
    H->setClassOop(decodeRef(Rc.H.ClassRef));
    for (uint32_t S = 0; S < Rc.Live; ++S)
      H->slots()[S] = decodeRef(readU64At(Payload + Rc.SlotsOff + 8u * S));
    // Unserialized context slots (beyond sp) become nil once the known
    // nil exists (after the roots rebind below).
    if (H->Format != ObjectFormat::Bytes && Rc.Live < H->SlotCount)
      NeedsNilFill.push_back(Loaded[I]);
  }

  // Rebind the well-known table, then nil-fill the dead context slots.
  {
    std::vector<Oop *> Cells;
    VM.model().known().visitRoots(
        [&Cells](Oop *Cell) { Cells.push_back(Cell); });
    assert(Cells.size() == RootRefs.size() && "validated in parseRoots");
    for (size_t I = 0; I < Cells.size(); ++I)
      *Cells[I] = decodeRef(RootRefs[I]);
  }
  OM.setNil(VM.model().known().NilObj);
  Oop Nil = VM.model().known().NilObj;
  for (Oop O : NeedsNilFill) {
    ObjectHeader *H = O.object();
    uint32_t Live = H->SlotCount;
    Oop Sp = H->slots()[ContextSpSlotIndex];
    if (Sp.isSmallInt() && Sp.smallInt() >= 0)
      Live = std::min<uint32_t>(
          H->SlotCount, static_cast<uint32_t>(Sp.smallInt()) + 1);
    for (uint32_t S = Live; S < H->SlotCount; ++S)
      H->slots()[S] = Nil;
  }

  // Rebind the symbol table from the serialized ids.
  std::vector<std::pair<std::string, Oop>> Syms;
  Oop SymbolClass = VM.model().known().ClassSymbol;
  for (uint64_t Id : SymbolIds) {
    Oop Sym = Loaded[Id];
    if (!Sym.isPointer() || Sym.object()->Format != ObjectFormat::Bytes ||
        Sym.object()->classOop() != SymbolClass)
      continue; // the trailing symbol-class cell, not a symbol
    Syms.emplace_back(ObjectModel::stringValue(Sym), Sym);
  }
  VM.model().symbols().adoptLoadedSymbols(Syms);
  VM.model().symbols().setSymbolClass(SymbolClass);
  return true;
}

} // namespace

bool mst::saveSnapshot(VirtualMachine &VM, const std::string &Path,
                       std::string &Error, const SnapshotOptions &Opts) {
  // §3.3: fill the activeProcess slot before the snapshot, empty it
  // afterwards (the VM itself never reads it).
  VM.scheduler().fillActiveProcessSlot(VM.snapshotActiveProcess());

  // Serialize with the world stopped so the object graph is frozen while
  // we walk it; everything below is memory-only, so the pause excludes
  // all file I/O.
  Buf Objects, Roots, Symbols;
  uint64_t ObjectCount, RootCount;
  while (!VM.memory().safepoint().requestStopTheWorld()) {
  }
  uint64_t PauseStart = Telemetry::nowNs();
  {
    Writer W(VM);
    W.run(Objects, Roots, Symbols);
    ObjectCount = W.objectCount();
    RootCount = W.rootCount();
  }
  savePauseHist().record(Telemetry::nowNs() - PauseStart);
  VM.memory().safepoint().resume();
  VM.scheduler().emptyActiveProcessSlot();

  // Everything below touches only host memory and the filesystem, so the
  // world may treat this thread as parked: a slow disk — or waiting on
  // the per-path save lock while another saver writes — must never stall
  // someone else's stop-the-world pause.
  BlockedRegion Parked(VM.memory().safepoint());

  // Assemble the checksummed file image.
  FileHeader Header{};
  Header.Magic = SnapshotMagic;
  Header.Version = SnapshotVersion;
  Header.ObjectCount = ObjectCount;
  Header.RootCount = RootCount;
  Header.Sections = Opts.HasJournalMark ? MaxSectionCount : SectionCount;
  Header.Crc = crc32(&Header, sizeof(Header) - sizeof(uint32_t));

  Buf JournalPos;
  if (Opts.HasJournalMark)
    JournalPos.put(&Opts.JournalMark, sizeof(Opts.JournalMark));

  Buf Image;
  Image.put(&Header, sizeof(Header));
  const struct {
    uint32_t Tag;
    const Buf *Payload;
  } Sections[MaxSectionCount] = {{SecObjectsTag, &Objects},
                                 {SecRootsTag, &Roots},
                                 {SecSymbolsTag, &Symbols},
                                 {SecJournalTag, &JournalPos}};
  for (unsigned I = 0; I < Header.Sections; ++I) {
    const auto &S = Sections[I];
    SectionHeader SH{};
    SH.Tag = S.Tag;
    SH.PayloadBytes = S.Payload->V.size();
    SH.Crc = crc32(S.Payload->V.data(), S.Payload->V.size());
    Image.put(&SH, sizeof(SH));
    Image.put(S.Payload->V.data(), S.Payload->V.size());
  }
  FileTrailer Trailer{};
  Trailer.Magic = TrailerMagic;
  Trailer.FileCrc = crc32(Image.V.data(), Image.V.size());
  Trailer.TotalBytes = Image.V.size() + sizeof(Trailer);
  Image.put(&Trailer, sizeof(Trailer));

  std::lock_guard<std::mutex> SaveLock(savePathLock(Path));
  return writeAtomically(Path, Image.V, Opts, Error);
}

bool mst::loadSnapshotExact(VirtualMachine &VM, const std::string &Path,
                            std::string &Error,
                            SnapshotLoadFailure *Failure,
                            SnapshotInfo *Info) {
  auto FailedAs = [&](SnapshotLoadFailure F) {
    if (Failure)
      *Failure = F;
    return false;
  };
  if (Failure)
    *Failure = SnapshotLoadFailure::None;
  if (Info)
    *Info = SnapshotInfo();
  uint64_t Start = Telemetry::nowNs();
  std::vector<uint8_t> File;
  if (!readWholeFile(Path, File, Error))
    return FailedAs(SnapshotLoadFailure::CleanVm);
  Loader L(VM, File);
  if (!L.verifyAndParse(Error))
    return FailedAs(SnapshotLoadFailure::CleanVm); // VM not touched
  if (!L.materialize(Error))
    return FailedAs(SnapshotLoadFailure::VmMutated);
  if (Info) {
    Info->HasJournalMark = L.HasJournalMark;
    Info->JournalMark = L.JournalMark;
  }
  // Loaded code may differ from whatever warmed the caches.
  VM.cache().flushAll();
  VM.contextPool().flushAll();
  // §3.3 again: the slot is only meaningful inside the file.
  VM.scheduler().emptyActiveProcessSlot();
  loadMillisHist().record((Telemetry::nowNs() - Start) / 1000000u);
  return true;
}

bool mst::loadSnapshot(VirtualMachine &VM, const std::string &Path,
                       std::string &Error, SnapshotInfo *Info) {
  // The recovery ladder: the primary image, then each rotated generation
  // in order. A candidate that fails verification never mutates the VM,
  // so the next rung starts from a clean slate; a candidate that fails
  // *materializing* has already allocated into the VM, so the ladder
  // stops there — retrying the rest needs a freshly constructed VM.
  constexpr unsigned MaxGenerations = 16;
  std::string Diagnostics;
  for (unsigned G = 0; G <= MaxGenerations; ++G) {
    std::string Candidate =
        G == 0 ? Path : Path + "." + std::to_string(G);
    if (G > 0) {
      struct stat St {};
      if (::stat(Candidate.c_str(), &St) != 0)
        break; // ladder exhausted
      loadFallbacks().add();
    }
    std::string E;
    SnapshotLoadFailure F = SnapshotLoadFailure::None;
    if (loadSnapshotExact(VM, Candidate, E, &F, Info))
      return true;
    Diagnostics += "  " + Candidate + ": " + E + "\n";
    if (F == SnapshotLoadFailure::VmMutated) {
      Error = "snapshot load aborted: materializing " + Candidate +
              " failed after mutating the VM; remaining generations need "
              "a freshly constructed VM:\n" + Diagnostics;
      if (Error.back() == '\n')
        Error.pop_back();
      return false;
    }
  }
  Error = "no loadable snapshot generation for " + Path + ":\n" +
          Diagnostics;
  if (!Error.empty() && Error.back() == '\n')
    Error.pop_back();
  return false;
}

std::string mst::shardImagePath(const std::string &Dir, unsigned Shard) {
  char Buf[16];
  std::snprintf(Buf, sizeof Buf, "shard%03u", Shard);
  std::string Out = Dir;
  if (!Out.empty() && Out.back() != '/')
    Out += '/';
  return Out + Buf + ".image";
}
