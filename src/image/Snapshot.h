//===-- image/Snapshot.h - Virtual image save/load --------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Image snapshots: "a static representation or 'snapshot' of the
/// compiled code, class descriptions, etc." (paper footnote 2). The §3.3
/// reorganization touches exactly this path: because MS ignores the
/// ProcessorScheduler's activeProcess slot at run time, "the only
/// requirement is to fill in the activeProcess slot before taking a
/// snapshot and to empty it afterwards" — which saveSnapshot does.
///
/// The writer serializes every object reachable from the well-known
/// objects (classes, methods, globals, processes — the whole image) with
/// identity hashes preserved, so method-dictionary probing works
/// unchanged after a load. The loader materializes everything into the
/// non-moving old generation of a *fresh* VM and rebinds the well-known
/// table and the symbol table.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IMAGE_SNAPSHOT_H
#define MST_IMAGE_SNAPSHOT_H

#include <string>

#include "vm/VirtualMachine.h"

namespace mst {

/// Writes \p VM's image to \p Path. Must run on the driver thread with
/// the world effectively idle (take it before startInterpreters, or after
/// all Smalltalk Processes have settled): the writer stops the world for
/// the duration. \returns false with \p Error set on failure.
bool saveSnapshot(VirtualMachine &VM, const std::string &Path,
                  std::string &Error);

/// Loads the image at \p Path into \p VM, which must be freshly
/// constructed (no bootstrapImage, no interpreters started). The core
/// objects created by VM construction are abandoned in old space; every
/// well-known binding and the symbol table are rebound to the loaded
/// graph. \returns false with \p Error set on failure.
bool loadSnapshot(VirtualMachine &VM, const std::string &Path,
                  std::string &Error);

} // namespace mst

#endif // MST_IMAGE_SNAPSHOT_H
