//===-- image/Snapshot.h - Crash-consistent image save/load -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Image snapshots: "a static representation or 'snapshot' of the
/// compiled code, class descriptions, etc." (paper footnote 2). The §3.3
/// reorganization touches exactly this path: because MS ignores the
/// ProcessorScheduler's activeProcess slot at run time, "the only
/// requirement is to fill in the activeProcess slot before taking a
/// snapshot and to empty it afterwards" — which saveSnapshot does.
///
/// The snapshot is the VM's only durability mechanism, so this layer is
/// built crash-consistent:
///
///  - **Format v2** ("MST2"): a fixed header, then length-prefixed
///    sections (object graph, well-known root table, symbol table) each
///    carrying its own CRC-32, then a trailer with the total file length
///    and a whole-file CRC-32. Every corruption class — truncation, bit
///    flips, a torn tail, an unrelated file — is detectable before any
///    byte is decoded.
///  - **Atomic durability**: the writer serializes to a per-save unique
///    temp file (`<path>.tmp.<pid>.<seq>`), fsyncs it, then renames over
///    the target and fsyncs the directory. The target path never holds a
///    torn image; a crash at any point leaves either the old image or the
///    new one, and concurrent saves to the same path are serialized so
///    rotation and rename never interleave. With
///    SnapshotOptions::KeepGenerations = N, the previous images rotate to
///    `<path>.1` … `<path>.N` before the rename.
///  - **Hardened loader**: every read is bounds-checked against its
///    section, every section CRC-verified before decoding, and the whole
///    object graph is structurally validated (reference ranges, formats,
///    live-slot counts) before the first shell is allocated — so a bad
///    file fails with a diagnostic naming the section and byte offset,
///    never a crash, and leaves the VM untouched.
///  - **Recovery ladder**: when the primary image fails verification,
///    loadSnapshot falls back through the rotated generations
///    (`<path>.1`, `<path>.2`, …), counting each step in the
///    `img.load.fallbacks` telemetry counter.
///
/// Chaos fail points `io.write.fail`, `io.fsync.fail`, and
/// `snapshot.truncate` (armed via MST_CHAOS_IO_WRITE_FAIL_PM /
/// MST_CHAOS_IO_FSYNC_FAIL_PM / MST_CHAOS_SNAPSHOT_TRUNCATE_PM) inject
/// write errors and simulated mid-save crashes so the stress suite can
/// prove the target path always loads.
///
/// The writer serializes every object reachable from the well-known
/// objects (classes, methods, globals, processes — the whole image) with
/// identity hashes preserved, so method-dictionary probing works
/// unchanged after a load. The loader materializes everything into the
/// non-moving old generation of a *fresh* VM and rebinds the well-known
/// table and the symbol table.
///
//===----------------------------------------------------------------------===//

#ifndef MST_IMAGE_SNAPSHOT_H
#define MST_IMAGE_SNAPSHOT_H

#include <string>

#include "vm/VirtualMachine.h"

namespace mst {

/// Durability policy for saveSnapshot.
struct SnapshotOptions {
  /// Number of rotated previous generations to keep: before the new image
  /// is renamed into place, the current `<path>` moves to `<path>.1`,
  /// `<path>.1` to `<path>.2`, and so on up to `<path>.N`. 0 keeps none
  /// (the previous image is replaced atomically but not preserved).
  unsigned KeepGenerations = 0;

  /// When set, the image carries an optional fourth section ("JPOS")
  /// recording the request-journal high-water mark this snapshot covers:
  /// every journaled request with a logical position below JournalMark
  /// has its effects inside this image, so replay-on-reboot starts at
  /// the mark and journal truncation may (after the rename lands) drop
  /// everything below it. Images written without the mark stay
  /// three-section and byte-identical to the pre-journal format.
  bool HasJournalMark = false;
  uint64_t JournalMark = 0;
};

/// Out-of-band facts about a loaded image that are not part of the object
/// graph. Filled by loadSnapshot/loadSnapshotExact when requested.
struct SnapshotInfo {
  /// Journal high-water mark from the image's JPOS section, when present.
  bool HasJournalMark = false;
  uint64_t JournalMark = 0;
};

/// Writes \p VM's image to \p Path using the atomic tmp+fsync+rename
/// protocol. Must run on a thread registered as a mutator with \p VM's
/// object memory (the driver thread, or a checkpointer thread that
/// registered itself): the writer stops the world while it serializes,
/// then performs the file I/O with the world running. Concurrent saves to
/// the same \p Path string (the periodic checkpointer racing an exit-time
/// checkpoint) are serialized internally, and every save writes through
/// its own unique temp file, so each rename publishes a complete image.
/// \returns false with \p Error set (including errno text and the failing
/// byte offset for I/O errors) on failure; the target path is never left
/// torn. Once the rename has landed the save reports success even if the
/// trailing directory fsync fails (the image is in place and loadable; a
/// warning notes the rename may not survive power loss).
bool saveSnapshot(VirtualMachine &VM, const std::string &Path,
                  std::string &Error,
                  const SnapshotOptions &Opts = SnapshotOptions());

/// How a failed load left the VM. Verification runs entirely against the
/// file buffer, so everything up to and including it fails with the VM
/// untouched; materialization allocates into the heap from its first
/// step, so a failure there leaves the VM mutated (shells allocated, hash
/// counter raised) and no longer "freshly constructed".
enum class SnapshotLoadFailure {
  None,      ///< the load succeeded
  CleanVm,   ///< failed before touching the VM (I/O, verification)
  VmMutated, ///< failed during materialization; the VM is not fresh
};

/// Loads the image at \p Path into \p VM, which must be freshly
/// constructed (no bootstrapImage, no interpreters started). The core
/// objects created by VM construction are abandoned in old space; every
/// well-known binding and the symbol table are rebound to the loaded
/// graph. When \p Path fails verification, falls back through the rotated
/// generations `<path>.1`, `<path>.2`, … (each fallback counted in
/// `img.load.fallbacks`). A file that fails verification never mutates
/// the VM, so a later generation loads into a clean slate — but a
/// candidate that fails while *materializing* has already mutated the VM,
/// so the ladder stops there: retrying the remaining generations needs a
/// freshly constructed VM. \returns false with \p Error set to the
/// per-candidate diagnostics (section, offset, expected vs. actual) when
/// no generation loads.
bool loadSnapshot(VirtualMachine &VM, const std::string &Path,
                  std::string &Error, SnapshotInfo *Info = nullptr);

/// Loads exactly \p Path — no generation fallback. The primitive the
/// ladder is built from; corruption tests call it directly. \p Failure,
/// when non-null, reports whether a failed load left the VM untouched
/// (safe to try another candidate) or already mutated. \p Info, when
/// non-null, receives the image's journal mark (JPOS section) if it has
/// one.
bool loadSnapshotExact(VirtualMachine &VM, const std::string &Path,
                       std::string &Error,
                       SnapshotLoadFailure *Failure = nullptr,
                       SnapshotInfo *Info = nullptr);

/// The canonical per-shard checkpoint path for the serving layer: shard
/// \p Shard of a pool rooted at \p Dir checkpoints to
/// `<Dir>/shard<NNN>.image` (zero-padded so a directory listing sorts).
/// Rotated generations and the `.panic` emergency image hang off this
/// name exactly as for any other snapshot path.
std::string shardImagePath(const std::string &Dir, unsigned Shard);

} // namespace mst

#endif // MST_IMAGE_SNAPSHOT_H
