//===-- serve/Admin.h - Aggregate health/telemetry report -------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `!health` report: one JSON object aggregating the whole serving
/// process — per-shard state (generation, restarts, requests, queue
/// depth, checkpoints), session counts, the sampling profiler's per-shard
/// state breakdown (running / lock-wait / gc / ipc-wait sample counts,
/// resolvable without touching any shard's heap), and the full telemetry
/// registry snapshot (serve.* counters, gc pause histograms, everything
/// else). Rendered on the event-loop thread; it reads only atomics,
/// registry aggregates, and profiler sample tables, never a VM.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_ADMIN_H
#define MST_SERVE_ADMIN_H

#include <string>
#include <vector>

#include "serve/ServeStats.h"
#include "serve/Shard.h"
#include "serve/ShardPool.h"

namespace mst {
namespace serve {

/// The front-end's per-shard admission view, rendered into the health
/// report next to the shard's own counters (the Server fills these from
/// its event-loop-owned gates).
struct ShardGateView {
  const char *Breaker = "closed"; ///< "closed" | "open" | "half-open"
  uint64_t Outstanding = 0;       ///< submitted, not yet answered
  uint64_t ConsecTimeouts = 0;
};

/// Renders the one-line aggregate health JSON. \p Gates, when non-null,
/// is indexed by shard id (the caller guarantees one entry per shard).
std::string buildHealthJson(ShardPool &Pool, ServeStats &Stats,
                            const std::vector<ShardGateView> *Gates =
                                nullptr);

} // namespace serve
} // namespace mst

#endif // MST_SERVE_ADMIN_H
