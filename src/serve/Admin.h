//===-- serve/Admin.h - Aggregate health/telemetry report -------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `!health` report: one JSON object aggregating the whole serving
/// process — per-shard state (generation, restarts, requests, queue
/// depth, checkpoints), session counts, the sampling profiler's per-shard
/// state breakdown (running / lock-wait / gc / ipc-wait sample counts,
/// resolvable without touching any shard's heap), and the full telemetry
/// registry snapshot (serve.* counters, gc pause histograms, everything
/// else). Rendered on the event-loop thread; it reads only atomics,
/// registry aggregates, and profiler sample tables, never a VM.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_ADMIN_H
#define MST_SERVE_ADMIN_H

#include <string>

#include "serve/ServeStats.h"
#include "serve/Shard.h"
#include "serve/ShardPool.h"

namespace mst {
namespace serve {

/// Renders the one-line aggregate health JSON.
std::string buildHealthJson(ShardPool &Pool, ServeStats &Stats);

} // namespace serve
} // namespace mst

#endif // MST_SERVE_ADMIN_H
