//===-- serve/ServeMain.cpp - The mst_serve daemon ------------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving daemon: boots a shard pool of Smalltalk images and serves
/// the line protocol on a loopback TCP port until SIGTERM/SIGINT, which
/// triggers a graceful drain (in-flight requests finish, every shard
/// checkpoints). Try it:
///
///   ./src/serve/mst_serve --port=7777 --shards=4 --data-dir=/tmp/mst &
///   printf '3 + 4 * 2\n!health\n!quit\n' | nc localhost 7777
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/Profiler.h"
#include "serve/Server.h"
#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;

namespace {
volatile std::sig_atomic_t StopRequested = 0;
void onSignal(int) { StopRequested = 1; }
} // namespace

int main(int argc, char **argv) {
  ServerConfig Config;
  Config.Pool.CheckpointEveryMs = 0;
  bool Profile = false;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--port=", 7) == 0) {
      Config.Port = static_cast<uint16_t>(std::strtoul(A + 7, nullptr, 0));
    } else if (std::strncmp(A, "--shards=", 9) == 0) {
      Config.Pool.Shards =
          static_cast<unsigned>(std::strtoul(A + 9, nullptr, 0));
    } else if (std::strncmp(A, "--image=", 8) == 0) {
      Config.Pool.BaseImage = A + 8;
    } else if (std::strncmp(A, "--data-dir=", 11) == 0) {
      Config.Pool.DataDir = A + 11;
    } else if (std::strncmp(A, "--snapshot-every=", 17) == 0) {
      Config.Pool.CheckpointEveryMs = std::strtoull(A + 17, nullptr, 0);
    } else if (std::strncmp(A, "--snapshot-keep=", 16) == 0) {
      Config.Pool.KeepGenerations =
          static_cast<unsigned>(std::strtoul(A + 16, nullptr, 0));
    } else if (std::strcmp(A, "--journal") == 0) {
      Config.Pool.Journal = true;
    } else if (std::strncmp(A, "--replay-deadline-ms=", 21) == 0) {
      Config.Pool.ReplayDeadlineMs = std::strtoull(A + 21, nullptr, 0);
    } else if (std::strncmp(A, "--max-batch=", 12) == 0) {
      Config.Pool.MaxBatch = std::strtoull(A + 12, nullptr, 0);
    } else if (std::strncmp(A, "--max-pipeline=", 15) == 0) {
      Config.MaxPipeline = std::strtoull(A + 15, nullptr, 0);
    } else if (std::strncmp(A, "--drain-timeout=", 16) == 0) {
      Config.DrainTimeoutSec = std::strtod(A + 16, nullptr);
    } else if (std::strncmp(A, "--request-deadline-ms=", 22) == 0) {
      Config.RequestDeadlineMs = std::strtoull(A + 22, nullptr, 0);
    } else if (std::strncmp(A, "--queue-budget=", 15) == 0) {
      Config.QueueBudget = std::strtoull(A + 15, nullptr, 0);
    } else if (std::strncmp(A, "--breaker-threshold=", 20) == 0) {
      Config.BreakerThreshold =
          static_cast<unsigned>(std::strtoul(A + 20, nullptr, 0));
    } else if (std::strncmp(A, "--breaker-open-ms=", 18) == 0) {
      Config.BreakerOpenMs = std::strtoull(A + 18, nullptr, 0);
    } else if (std::strncmp(A, "--abort-grace-ms=", 17) == 0) {
      Config.Pool.AbortGraceMs = std::strtoull(A + 17, nullptr, 0);
    } else if (std::strncmp(A, "--chaos-seed=", 13) == 0) {
      chaos::enableSeed(std::strtoull(A + 13, nullptr, 0));
    } else if (std::strcmp(A, "--profile") == 0) {
      Profile = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--shards=N] [--image=PATH] "
                   "[--data-dir=DIR] [--snapshot-every=MS] "
                   "[--snapshot-keep=N] [--journal] "
                   "[--replay-deadline-ms=MS] "
                   "[--max-batch=N] [--max-pipeline=N] "
                   "[--drain-timeout=SEC] [--request-deadline-ms=MS] "
                   "[--queue-budget=N] [--breaker-threshold=N] "
                   "[--breaker-open-ms=MS] [--abort-grace-ms=MS] "
                   "[--chaos-seed=N] [--profile]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Config.Pool.Journal && Config.Pool.DataDir.empty()) {
    std::fprintf(stderr, "mst_serve: --journal requires --data-dir\n");
    return 2;
  }
  if (!chaos::enabled())
    chaos::enableFromEnv(); // MST_CHAOS_SEED / MST_CHAOS_*_PM
  if (Profile)
    startVmProfiler(0);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Server S(std::move(Config));
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "mst_serve: %s\n", Error.c_str());
    return 1;
  }
  std::printf("mst_serve: %u shards serving on 127.0.0.1:%u\n",
              S.pool().size(), S.port());
  std::fflush(stdout);

  // Signal handlers only set a flag; the drain itself runs on a normal
  // thread. `!drain` over the wire stops the loop the same way.
  while (!S.waitStopped(0.2)) {
    if (StopRequested) {
      std::printf("mst_serve: draining...\n");
      std::fflush(stdout);
      S.requestDrain();
      StopRequested = 0;
    }
  }
  S.stop();
  std::printf("mst_serve: drained, %llu requests served; bye\n",
              static_cast<unsigned long long>(S.stats().Requests.value()));
  return 0;
}
