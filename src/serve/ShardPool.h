//===-- serve/ShardPool.h - The multi-VM shard pool -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N independent VirtualMachine shards booted from one prewarmed base
/// image, each checkpointing to its own `shardNNN.image` (see
/// shardImagePath). The pool is deliberately dumb: it owns the shards,
/// routes by session pin (SessionId % N — a session's requests must all
/// hit the same image, since doIts mutate shard-local globals), and
/// aggregates health. Everything stateful lives in the Shard.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SHARDPOOL_H
#define MST_SERVE_SHARDPOOL_H

#include <memory>
#include <string>
#include <vector>

#include "serve/Shard.h"

namespace mst {
namespace serve {

struct PoolConfig {
  unsigned Shards = 4;
  /// Prewarmed base image every shard boots from; empty = cold
  /// bootstrap per shard (slow — prefer bench_prewarm's output).
  std::string BaseImage;
  /// Directory for per-shard checkpoints; empty disables checkpointing.
  std::string DataDir;
  unsigned KeepGenerations = 2;
  uint64_t CheckpointEveryMs = 0;
  /// Write-ahead request journaling (`shardNNN.journal` next to the
  /// checkpoint): every acknowledged request survives any crash via
  /// checkpoint + replay. Requires DataDir.
  bool Journal = false;
  /// Per-request deadline during journal replay.
  uint64_t ReplayDeadlineMs = 5000;
  size_t MaxBatch = 256;
  /// Watchdog grace before a dishonored abort escalates to a reboot.
  uint64_t AbortGraceMs = 250;
  VmConfig Vm = VmConfig::multiprocessor(1);
};

class ShardPool {
public:
  ShardPool(const PoolConfig &Config, Shard::ResponseSink Sink,
            ServeStats &Stats);

  /// Boots every shard (concurrently; each shard thread loads its own
  /// image). \returns false if any shard failed to come up in time.
  bool start(double ReadyTimeoutSec, std::string &Error);

  /// Drains and stops every shard (each takes a final checkpoint).
  void stop();

  unsigned size() const { return static_cast<unsigned>(Shards.size()); }

  /// The shard a session is pinned to.
  unsigned shardFor(uint64_t SessionId) const {
    return static_cast<unsigned>(SessionId % Shards.size());
  }

  /// Routes \p R to its session's shard (or, for Kill/Checkpoint control
  /// requests, to \p Explicit). \returns false when stopping.
  bool submit(unsigned ShardIndex, QueuedRequest R) {
    return Shards[ShardIndex]->submit(std::move(R));
  }

  std::vector<Shard::Health> health();

private:
  std::vector<std::unique_ptr<Shard>> Shards;
  bool Stopped = false;
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SHARDPOOL_H
