//===-- serve/Shard.cpp - One VM image serving requests -------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Shard.h"

#include <unistd.h>

#include "image/Bootstrap.h"
#include "image/Checkpoint.h"
#include "image/Snapshot.h"
#include "objmem/Safepoint.h"
#include "obs/Profiler.h"
#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;

namespace {
bool fileExists(const std::string &Path) {
  return !Path.empty() && ::access(Path.c_str(), F_OK) == 0;
}
} // namespace

Shard::Shard(ShardConfig Config, ResponseSink Sink, ServeStats &Stats)
    : Config(std::move(Config)), Sink(std::move(Sink)), Stats(Stats) {}

Shard::~Shard() { stop(); }

void Shard::start() {
  ShardThread = std::thread([this] { shardMain(); });
  CourierThread = std::thread([this] { courierMain(); });
  WatchdogThread = std::thread([this] { watchdogMain(); });
}

bool Shard::waitReady(double TimeoutSec) {
  std::unique_lock<std::mutex> Lock(ReadyMutex);
  if (!ReadyCv.wait_for(Lock,
                        std::chrono::duration<double>(TimeoutSec),
                        [this] { return BootDone; }))
    return false;
  std::lock_guard<std::mutex> G(StateMutex);
  return State == "serving";
}

bool Shard::submit(QueuedRequest R) {
  if (Stopping.load(std::memory_order_relaxed))
    return false;
  if (!Batcher.push(std::move(R)))
    return false;
  Stats.QueuedNow.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Shard::stop() {
  if (Stopping.exchange(true)) {
    // A racing second stop still has to wait for the joins below, which
    // only the first caller performs; Shard is stopped exactly once by
    // the Server, so just fall through when the threads are gone.
  }
  Batcher.close();
  if (CourierThread.joinable())
    CourierThread.join();
  Channel.shutdown();
  if (ShardThread.joinable())
    ShardThread.join();
  // The watchdog outlives the shard thread: drained requests with
  // deadlines may still need aborting while the shard works through its
  // final batches above.
  {
    std::lock_guard<std::mutex> G(AbortMutex);
    WatchdogStop = true;
  }
  WatchdogCv.notify_all();
  if (WatchdogThread.joinable())
    WatchdogThread.join();
}

Shard::Health Shard::health() {
  Health H;
  H.Index = Config.Index;
  H.Generation = Generation.load(std::memory_order_relaxed);
  H.Restarts = RestartCount.load(std::memory_order_relaxed);
  H.Requests = RequestCount.load(std::memory_order_relaxed);
  H.Batches = BatchCount.load(std::memory_order_relaxed);
  H.Checkpoints = CheckpointCount.load(std::memory_order_relaxed);
  H.QueueDepth = Batcher.depth();
  uint64_t Oldest = Batcher.oldestEnqueueNs();
  if (Oldest != 0) {
    uint64_t Now = Telemetry::nowNs();
    H.OldestQueuedMs = Now > Oldest ? (Now - Oldest) / 1000000 : 0;
  }
  H.DeadlineExpired =
      DeadlineExpiredCount.load(std::memory_order_relaxed);
  H.Aborts = AbortCount.load(std::memory_order_relaxed);
  H.AbortsEscalated = EscalatedCount.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(StateMutex);
  H.State = State;
  H.LastError = LastError;
  return H;
}

void Shard::setState(const char *S) {
  std::lock_guard<std::mutex> G(StateMutex);
  State = S;
}

void Shard::noteError(const std::string &E) {
  std::lock_guard<std::mutex> G(StateMutex);
  LastError = E;
}

/// Boots (or re-boots) this shard's VM on the shard thread, walking the
/// recovery ladder: own committed checkpoint -> pool base image -> cold
/// bootstrap. A candidate that fails to load may have mutated the VM
/// (materialization failures), so each rung starts from a freshly
/// constructed VirtualMachine.
void Shard::bootVm() {
  auto Fresh = [this] {
    Ck.reset();
    VM.reset();
    VM = std::make_unique<VirtualMachine>(Config.Vm);
  };
  Fresh();
  bool Booted = false;
  if (fileExists(Config.CheckpointPath)) {
    std::string Err;
    if (loadSnapshot(*VM, Config.CheckpointPath, Err)) {
      Booted = true;
    } else {
      noteError("shard checkpoint load failed: " + Err);
      Fresh();
    }
  }
  if (!Booted && !Config.BaseImage.empty()) {
    std::string Err;
    if (loadSnapshot(*VM, Config.BaseImage, Err)) {
      Booted = true;
    } else {
      noteError("base image load failed: " + Err);
      Fresh();
    }
  }
  if (!Booted)
    bootstrapImage(*VM);

  // The shard's Smalltalk-visible identity; sessions read it back to
  // verify pinning ((Smalltalk at: #ShardId) is stable per session).
  VM->evaluate("Smalltalk at: #ShardId put: " +
               std::to_string(Config.Index));

  // Rename this thread's profiler slot so state breakdowns attribute
  // samples per shard rather than to one merged "driver".
  Profiler::registerThread("shard" + std::to_string(Config.Index),
                           static_cast<int>(Config.Vm.Interpreters));

  if (!Config.CheckpointPath.empty()) {
    Checkpointer::Options O;
    O.Path = Config.CheckpointPath;
    O.EveryMs = Config.CheckpointEveryMs;
    O.KeepGenerations = Config.KeepGenerations;
    Ck = std::make_unique<Checkpointer>(*VM, O);
  }
  Generation.fetch_add(1, std::memory_order_relaxed);
  setState("serving");
}

void Shard::restartVm(const char *Why) {
  setState("restarting");
  noteError(std::string("shard crashed (") + Why +
            "); restarting from last committed snapshot");
  if (Ck)
    CkTakenBase += Ck->checkpointsTaken();
  RestartCount.fetch_add(1, std::memory_order_relaxed);
  Stats.Restarts.add();
  bootVm();
}

void Shard::teardownVm() {
  if (Ck)
    CkTakenBase += Ck->checkpointsTaken();
  Ck.reset();
  if (VM)
    VM->shutdown();
  VM.reset();
}

void Shard::processBatch(Batch &B) {
  for (size_t I = 0; I < B.size(); ++I) {
    QueuedRequest &Q = B[I];
    if (Q.Kind == Request::Kind::Kill) {
      Q.Done = true;
      Q.Ok = true;
      Q.Value = "shard " + std::to_string(Config.Index) +
                " killed; restarting from last committed checkpoint";
      failFrom(B, I + 1);
      restartVm("admin kill");
      return;
    }
    if (chaos::failPoint("serve.shard.crash")) {
      // The injected crash takes the in-flight request down with it —
      // exactly what a segfaulting shard would do to its batch.
      failFrom(B, I);
      restartVm("chaos fail point");
      return;
    }
    switch (Q.Kind) {
    case Request::Kind::Eval: {
      if (!evalRequest(Q)) {
        // The watchdog escalated a dishonored abort: this VM is stopping
        // and cannot serve another request — walk the crash ladder.
        failFrom(B, I + 1);
        restartVm("deadline abort escalated");
        return;
      }
      break;
    }
    case Request::Kind::Checkpoint: {
      Q.Done = true;
      if (!Ck) {
        Q.Ok = false;
        Q.Value = "shard " + std::to_string(Config.Index) +
                  ": checkpointing disabled";
      } else {
        std::string Err;
        Q.Ok = Ck->checkpointNow(Err);
        if (Q.Ok) {
          Q.Value = "shard " + std::to_string(Config.Index) +
                    " checkpointed to " + Config.CheckpointPath;
        } else {
          Q.Value = "shard " + std::to_string(Config.Index) +
                    " checkpoint failed: " + Err;
          noteError(Q.Value);
        }
      }
      break;
    }
    default:
      // Front-end-only kinds (Health/Drain/Quit/Bad) never reach a shard.
      Q.Done = true;
      Q.Ok = false;
      Q.Value = "request kind not servable by a shard";
      break;
    }
    chaos::point("serve.shard.request");
  }
  if (Ck)
    CheckpointCount.store(CkTakenBase + Ck->checkpointsTaken(),
                          std::memory_order_relaxed);
}

bool Shard::evalRequest(QueuedRequest &Q) {
  uint64_t Now = Telemetry::nowNs();
  Stats.QueueWait.record(Now - Q.EnqueueNs);
  if (Q.DeadlineNs != 0 && Now >= Q.DeadlineNs) {
    // Expired while queued: answer without burning VM time on it.
    Q.Done = true;
    Q.Ok = false;
    Q.TimedOut = true;
    Q.Value = "RequestTimeout: deadline expired before evaluation "
              "(queued " +
              std::to_string((Now - Q.EnqueueNs) / 1000000) + "ms)";
    Stats.DeadlineExpired.add();
    DeadlineExpiredCount.fetch_add(1, std::memory_order_relaxed);
    Stats.Requests.add();
    Stats.Errors.add();
    RequestCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  const char *Source = Q.Source.c_str();
  // Storm drills. "stall" rewrites the request into a runaway loop (the
  // infinite request a buggy client would send); "stuck" models a wedged
  // primitive: the VM never reaches a bytecode boundary, so neither the
  // in-VM deadline nor the watchdog's abort can fire — only escalation
  // gets the shard back.
  if (chaos::failPoint("serve.request.stall"))
    Source = "[true] whileTrue.";
  bool Stuck = chaos::failPoint("serve.abort.stuck");

  {
    std::lock_guard<std::mutex> G(AbortMutex);
    ++InFlightToken;
    InFlightDeadlineNs = Q.DeadlineNs;
    AbortArmed = false;
    EscalateFired = false;
    StuckSim = Stuck;
  }
  VirtualMachine::EvalResult R =
      (Q.DeadlineNs != 0 && !Stuck)
          ? VM->evalWithDeadline(Source, Q.DeadlineNs)
          : VM->evaluate(Source);
  bool Escalated;
  {
    std::lock_guard<std::mutex> G(AbortMutex);
    InFlightDeadlineNs = 0;
    Escalated = EscalateFired;
    // An abort that raced with normal completion must not leak into the
    // next request.
    VM->clearAbort();
  }

  Q.Done = true;
  Q.Ok = R.Ok;
  Q.TimedOut = R.TimedOut;
  Q.Value = std::move(R.Value);
  if (Escalated) {
    Q.Ok = false;
    Q.TimedOut = true;
    Q.Value = "RequestTimeout: abort not honored within grace; shard " +
              std::to_string(Config.Index) +
              " rebooting from its last committed checkpoint";
  }
  if (Q.TimedOut) {
    Stats.DeadlineExpired.add();
    DeadlineExpiredCount.fetch_add(1, std::memory_order_relaxed);
  }
  Stats.Requests.add();
  if (!Q.Ok)
    Stats.Errors.add();
  RequestCount.fetch_add(1, std::memory_order_relaxed);
  return !Escalated;
}

void Shard::watchdogMain() {
  std::unique_lock<std::mutex> Lock(AbortMutex);
  while (!WatchdogStop) {
    WatchdogCv.wait_for(Lock, std::chrono::milliseconds(5));
    if (WatchdogStop)
      break;
    if (InFlightDeadlineNs == 0)
      continue;
    uint64_t Now = Telemetry::nowNs();
    if (Now < InFlightDeadlineNs)
      continue;
    if (!AbortArmed) {
      AbortArmed = true;
      ArmedToken = InFlightToken;
      EscalateAtNs = Now + Config.AbortGraceMs * 1000000;
      if (!StuckSim) {
        // Normal path: the VM consumes this at its next bytecode
        // boundary and unwinds with RequestTimeout. The in-VM deadline
        // usually beats us to it; this catches evals stuck between
        // bytecodes. The stuck drill skips delivery so the grace
        // escalation below is what recovers the shard.
        VM->requestAbort();
        Stats.Aborts.add();
        AbortCount.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (!EscalateFired && ArmedToken == InFlightToken &&
               Now >= EscalateAtNs) {
      EscalateFired = true;
      Stats.AbortsEscalated.add();
      EscalatedCount.fetch_add(1, std::memory_order_relaxed);
      // Stop flag, no join: the evaluation returns at its next poll and
      // the shard thread reboots its VM on its own thread.
      VM->requestStop();
    }
  }
}

void Shard::failFrom(Batch &B, size_t First) {
  for (size_t I = First; I < B.size(); ++I) {
    QueuedRequest &Q = B[I];
    Q.Done = true;
    Q.Ok = false;
    Q.Value = "shard " + std::to_string(Config.Index) +
              " crashed; request not executed (shard restarted from its "
              "last committed checkpoint)";
    Stats.Errors.add();
  }
}

void Shard::shardMain() {
  bootVm();
  {
    std::lock_guard<std::mutex> G(ReadyMutex);
    BootDone = true;
  }
  ReadyCv.notify_all();

  for (;;) {
    uint64_t Bits = 0;
    IpcChannel::MessageHandle H;
    {
      // Parked between batches counts as safe: the periodic checkpointer
      // (or any service thread) can stop this shard's world meanwhile.
      BlockedRegion Blocked(VM->memory().safepoint());
      H = Channel.receive(Bits);
    }
    if (!H)
      break; // channel shut down: graceful exit
    Batch *B = reinterpret_cast<Batch *>(static_cast<uintptr_t>(Bits));
    processBatch(*B);
    BatchCount.fetch_add(1, std::memory_order_relaxed);
    Channel.reply(H, B->size());
  }

  // Graceful lifecycle: SIGTERM/stop() checkpoints every shard before
  // the pool goes down.
  if (Ck) {
    std::string Err;
    if (Ck->checkpointNow(Err)) {
      CheckpointCount.store(CkTakenBase + Ck->checkpointsTaken(),
                            std::memory_order_relaxed);
    } else {
      noteError("final checkpoint failed: " + Err);
    }
  }
  teardownVm();
  setState("stopped");
}

void Shard::courierMain() {
  for (;;) {
    auto B = std::make_unique<Batch>();
    if (!Batcher.takeBatch(*B, Config.MaxBatch))
      break; // closed and drained
    Stats.QueuedNow.fetch_sub(B->size(), std::memory_order_relaxed);
    Stats.Batches.add();
    Stats.BatchSize.record(B->size());
    chaos::point("serve.courier.send");
    (void)Channel.send(static_cast<uint64_t>(
        reinterpret_cast<uintptr_t>(B.get())));
    // The shard filled results in place (or the channel shut down under
    // us and nobody did — mark those, don't drop them).
    uint64_t Now = Telemetry::nowNs();
    for (QueuedRequest &Q : *B) {
      if (!Q.Done) {
        Q.Done = true;
        Q.Ok = false;
        Q.Value = "shard " + std::to_string(Config.Index) +
                  " unavailable (shutting down)";
        Stats.Errors.add();
      }
      Stats.Latency.record(Now - Q.EnqueueNs);
    }
    Sink(std::move(*B));
  }
}
