//===-- serve/Shard.cpp - One VM image serving requests -------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Shard.h"

#include <unistd.h>

#include "image/Bootstrap.h"
#include "image/Checkpoint.h"
#include "image/Snapshot.h"
#include "objmem/Safepoint.h"
#include "obs/Profiler.h"
#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;

namespace {
bool fileExists(const std::string &Path) {
  return !Path.empty() && ::access(Path.c_str(), F_OK) == 0;
}
} // namespace

Shard::Shard(ShardConfig Config, ResponseSink Sink, ServeStats &Stats)
    : Config(std::move(Config)), Sink(std::move(Sink)), Stats(Stats) {}

Shard::~Shard() { stop(); }

void Shard::start() {
  if (!Config.JournalPath.empty()) {
    // Open before either thread exists: the courier appends intents from
    // its very first batch. A journal that cannot open disables
    // journaling rather than the shard — the crash ladder then behaves
    // exactly as without one, which is degraded, not broken.
    Jrnl = std::make_unique<Journal>();
    std::string Err;
    if (!Jrnl->open(Config.JournalPath, Err)) {
      noteError("journal open failed (journaling disabled): " + Err);
      Jrnl.reset();
    } else if (Jrnl->tornRepairs() > 0) {
      Stats.JournalTorn.add(Jrnl->tornRepairs());
    }
  }
  ShardThread = std::thread([this] { shardMain(); });
  CourierThread = std::thread([this] { courierMain(); });
  WatchdogThread = std::thread([this] { watchdogMain(); });
}

bool Shard::waitReady(double TimeoutSec) {
  std::unique_lock<std::mutex> Lock(ReadyMutex);
  if (!ReadyCv.wait_for(Lock,
                        std::chrono::duration<double>(TimeoutSec),
                        [this] { return BootDone; }))
    return false;
  std::lock_guard<std::mutex> G(StateMutex);
  return State == "serving";
}

bool Shard::submit(QueuedRequest R) {
  if (Stopping.load(std::memory_order_relaxed))
    return false;
  if (!Batcher.push(std::move(R)))
    return false;
  Stats.QueuedNow.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Shard::stop() {
  if (Stopping.exchange(true)) {
    // A racing second stop still has to wait for the joins below, which
    // only the first caller performs; Shard is stopped exactly once by
    // the Server, so just fall through when the threads are gone.
  }
  Batcher.close();
  if (CourierThread.joinable())
    CourierThread.join();
  Channel.shutdown();
  if (ShardThread.joinable())
    ShardThread.join();
  // The watchdog outlives the shard thread: drained requests with
  // deadlines may still need aborting while the shard works through its
  // final batches above.
  {
    std::lock_guard<std::mutex> G(AbortMutex);
    WatchdogStop = true;
  }
  WatchdogCv.notify_all();
  if (WatchdogThread.joinable())
    WatchdogThread.join();
}

Shard::Health Shard::health() {
  Health H;
  H.Index = Config.Index;
  H.Generation = Generation.load(std::memory_order_relaxed);
  H.Restarts = RestartCount.load(std::memory_order_relaxed);
  H.Requests = RequestCount.load(std::memory_order_relaxed);
  H.Batches = BatchCount.load(std::memory_order_relaxed);
  H.Checkpoints = CheckpointCount.load(std::memory_order_relaxed);
  H.QueueDepth = Batcher.depth();
  uint64_t Oldest = Batcher.oldestEnqueueNs();
  if (Oldest != 0) {
    uint64_t Now = Telemetry::nowNs();
    H.OldestQueuedMs = Now > Oldest ? (Now - Oldest) / 1000000 : 0;
  }
  H.DeadlineExpired =
      DeadlineExpiredCount.load(std::memory_order_relaxed);
  H.Aborts = AbortCount.load(std::memory_order_relaxed);
  H.AbortsEscalated = EscalatedCount.load(std::memory_order_relaxed);
  if (Jrnl)
    H.JournalBytes = Jrnl->bytes();
  H.Replayed = ReplayedCount.load(std::memory_order_relaxed);
  H.DedupSize = Dedup.size();
  H.DedupHits = DedupHitCount.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(StateMutex);
  H.State = State;
  H.LastError = LastError;
  return H;
}

void Shard::setState(const char *S) {
  std::lock_guard<std::mutex> G(StateMutex);
  State = S;
}

void Shard::noteError(const std::string &E) {
  std::lock_guard<std::mutex> G(StateMutex);
  LastError = E;
}

/// Boots (or re-boots) this shard's VM on the shard thread, walking the
/// recovery ladder: own committed checkpoint -> pool base image -> cold
/// bootstrap. A candidate that fails to load may have mutated the VM
/// (materialization failures), so each rung starts from a freshly
/// constructed VirtualMachine.
void Shard::bootVm() {
  auto Fresh = [this] {
    Ck.reset();
    VM.reset();
    VM = std::make_unique<VirtualMachine>(Config.Vm);
  };
  Fresh();
  bool Booted = false;
  SnapshotInfo Info;
  if (fileExists(Config.CheckpointPath)) {
    std::string Err;
    if (loadSnapshot(*VM, Config.CheckpointPath, Err, &Info)) {
      Booted = true;
    } else {
      noteError("shard checkpoint load failed: " + Err);
      Info = SnapshotInfo();
      Fresh();
    }
  }
  if (!Booted && !Config.BaseImage.empty()) {
    std::string Err;
    if (loadSnapshot(*VM, Config.BaseImage, Err)) {
      Booted = true;
    } else {
      noteError("base image load failed: " + Err);
      Fresh();
    }
  }
  if (!Booted)
    bootstrapImage(*VM);

  // The shard's Smalltalk-visible identity; sessions read it back to
  // verify pinning ((Smalltalk at: #ShardId) is stable per session).
  VM->evaluate("Smalltalk at: #ShardId put: " +
               std::to_string(Config.Index));

  if (journaled()) {
    if (PrevMarks.empty())
      PrevMarks.push_back(0);
    // The image we just loaded covers the journal up to its recorded
    // mark (0 for a base image / cold bootstrap, which covers nothing):
    // everything at or past it re-applies now, before Ready.
    replayJournal(Info.HasJournalMark ? Info.JournalMark : 0);
  }

  // Rename this thread's profiler slot so state breakdowns attribute
  // samples per shard rather than to one merged "driver".
  Profiler::registerThread("shard" + std::to_string(Config.Index),
                           static_cast<int>(Config.Vm.Interpreters));

  if (!Config.CheckpointPath.empty()) {
    Checkpointer::Options O;
    O.Path = Config.CheckpointPath;
    // A journaled shard must not let the periodic thread stop the world
    // mid-eval: a checkpoint taken there would cover half a request and
    // no single journal position describes it. The shard thread
    // checkpoints between batches instead (maybeAutoCheckpoint).
    O.EveryMs = journaled() ? 0 : Config.CheckpointEveryMs;
    O.KeepGenerations = Config.KeepGenerations;
    if (journaled())
      O.JournalMark = [this](uint64_t &M) {
        M = PendingMark;
        return true;
      };
    Ck = std::make_unique<Checkpointer>(*VM, O);
  }
  // First boot only: rebooting must not push an overdue auto-checkpoint
  // further out, or a kill storm arriving faster than CheckpointEveryMs
  // starves checkpoints forever — the journal never truncates and every
  // reboot replays a longer history.
  if (journaled() && Config.CheckpointEveryMs > 0 && NextAutoCkNs == 0)
    NextAutoCkNs =
        Telemetry::nowNs() + Config.CheckpointEveryMs * 1000000;
  Generation.fetch_add(1, std::memory_order_relaxed);
  setState("serving");
}

void Shard::restartVm(const char *Why) {
  setState("restarting");
  noteError(std::string("shard crashed (") + Why +
            "); restarting from last committed snapshot");
  if (Ck)
    CkTakenBase += Ck->checkpointsTaken();
  RestartCount.fetch_add(1, std::memory_order_relaxed);
  Stats.Restarts.add();
  if (journaled() && chaos::failPoint("journal.tear")) {
    // Torn-tail drill: a real crash can lose whatever the last fsync
    // didn't cover — only *Executed* outcome records by construction:
    // intents are synced before their batch executes, and refusal
    // outcomes are synced before their ERR escapes (failFrom runs
    // before this). Replay must still converge by re-executing the
    // intents whose Executed outcomes tore off.
    uint64_t Cut = Jrnl->tearTail(256, chaos::failCount("journal.tear"));
    if (Cut > 0)
      Stats.JournalTorn.add();
  }
  bootVm();
}

void Shard::teardownVm() {
  if (Ck)
    CkTakenBase += Ck->checkpointsTaken();
  Ck.reset();
  if (VM)
    VM->shutdown();
  VM.reset();
}

void Shard::processBatch(Batch &B) {
  for (size_t I = 0; I < B.size(); ++I) {
    QueuedRequest &Q = B[I];
    if (Q.Done)
      continue; // answered by the courier (dedup hit / journal refusal)
    if (Q.Kind == Request::Kind::Kill) {
      Q.Done = true;
      Q.Ok = true;
      Q.Value = "shard " + std::to_string(Config.Index) +
                " killed; restarting from last committed checkpoint";
      failFrom(B, I + 1);
      restartVm("admin kill");
      return;
    }
    if (chaos::failPoint("serve.shard.crash")) {
      // The injected crash takes the in-flight request down with it —
      // exactly what a segfaulting shard would do to its batch.
      failFrom(B, I);
      restartVm("chaos fail point");
      return;
    }
    switch (Q.Kind) {
    case Request::Kind::Eval: {
      if (!evalRequest(Q)) {
        // The watchdog escalated a dishonored abort: this VM is stopping
        // and cannot serve another request — walk the crash ladder.
        failFrom(B, I + 1);
        restartVm("deadline abort escalated");
        return;
      }
      break;
    }
    case Request::Kind::Checkpoint: {
      Q.Done = true;
      if (!Ck) {
        Q.Ok = false;
        Q.Value = "shard " + std::to_string(Config.Index) +
                  ": checkpointing disabled";
      } else {
        if (journaled()) {
          // Mid-batch checkpoint: everything executed so far has its
          // outcome below endPos, but this batch's *unexecuted* intents
          // are below it too (the courier appends the whole batch up
          // front). Freeze the mark, then re-journal the unexecuted tail
          // above it, so replay-from-mark re-sees exactly the work this
          // image will not contain.
          PendingMark = Jrnl->endPos();
          bool ReAppended = false;
          for (size_t J = I + 1; J < B.size(); ++J) {
            QueuedRequest &T = B[J];
            if (T.Kind != Request::Kind::Eval || T.Done ||
                T.JournalId == 0)
              continue;
            std::string Err;
            // Retire the original intent first: a replay from an older
            // fallback mark must not run both it and its copy. Counts
            // toward the sync below — an unsynced retirement could tear
            // off and resurrect the original.
            if (Jrnl->appendOutcome(T.JournalId, T.ClientId, T.ClientSeq,
                                    T.HasSeq,
                                    Journal::Outcome::SkippedCrash, false,
                                    "superseded by re-journal", Err))
              ReAppended = true;
            uint64_t NewId = 0;
            if (Jrnl->appendIntent(T.ClientId, T.ClientSeq, T.HasSeq,
                                   T.Source, NewId, Err)) {
              T.JournalId = NewId;
              Stats.JournalAppends.add();
              ReAppended = true;
            } else {
              Stats.JournalAppendFailures.add();
            }
          }
          if (ReAppended) {
            std::string Err;
            if (Jrnl->sync(Err))
              Stats.JournalFsyncs.add();
            else
              Stats.JournalFsyncFailures.add();
          }
        }
        std::string Err;
        Q.Ok = Ck->checkpointNow(Err);
        if (Q.Ok) {
          Q.Value = "shard " + std::to_string(Config.Index) +
                    " checkpointed to " + Config.CheckpointPath;
          if (journaled())
            commitJournalTruncate();
        } else {
          Q.Value = "shard " + std::to_string(Config.Index) +
                    " checkpoint failed: " + Err;
          noteError(Q.Value);
        }
      }
      break;
    }
    default:
      // Front-end-only kinds (Health/Drain/Quit/Bad) never reach a shard.
      Q.Done = true;
      Q.Ok = false;
      Q.Value = "request kind not servable by a shard";
      break;
    }
    chaos::point("serve.shard.request");
  }
  if (Ck)
    CheckpointCount.store(CkTakenBase + Ck->checkpointsTaken(),
                          std::memory_order_relaxed);
}

bool Shard::evalRequest(QueuedRequest &Q) {
  uint64_t Now = Telemetry::nowNs();
  Stats.QueueWait.record(Now - Q.EnqueueNs);
  if (Q.DeadlineNs != 0 && Now >= Q.DeadlineNs) {
    // Expired while queued: answer without burning VM time on it.
    Q.Done = true;
    Q.Ok = false;
    Q.TimedOut = true;
    Q.Value = "RequestTimeout: deadline expired before evaluation "
              "(queued " +
              std::to_string((Now - Q.EnqueueNs) / 1000000) + "ms)";
    Stats.DeadlineExpired.add();
    DeadlineExpiredCount.fetch_add(1, std::memory_order_relaxed);
    Stats.Requests.add();
    Stats.Errors.add();
    RequestCount.fetch_add(1, std::memory_order_relaxed);
    // Never ran: replay must skip it, and a retry should re-execute.
    appendOutcomeFor(Q, Journal::Outcome::SkippedExpired);
    return true;
  }

  const char *Source = Q.Source.c_str();
  // Storm drills. "stall" rewrites the request into a runaway loop (the
  // infinite request a buggy client would send); "stuck" models a wedged
  // primitive: the VM never reaches a bytecode boundary, so neither the
  // in-VM deadline nor the watchdog's abort can fire — only escalation
  // gets the shard back.
  if (chaos::failPoint("serve.request.stall"))
    Source = "[true] whileTrue.";
  bool Stuck = chaos::failPoint("serve.abort.stuck");

  {
    std::lock_guard<std::mutex> G(AbortMutex);
    ++InFlightToken;
    InFlightDeadlineNs = Q.DeadlineNs;
    AbortArmed = false;
    EscalateFired = false;
    StuckSim = Stuck;
  }
  VirtualMachine::EvalResult R =
      (Q.DeadlineNs != 0 && !Stuck)
          ? VM->evalWithDeadline(Source, Q.DeadlineNs)
          : VM->evaluate(Source);
  bool Escalated;
  {
    std::lock_guard<std::mutex> G(AbortMutex);
    InFlightDeadlineNs = 0;
    Escalated = EscalateFired;
    // An abort that raced with normal completion must not leak into the
    // next request.
    VM->clearAbort();
  }

  Q.Done = true;
  Q.Ok = R.Ok;
  Q.TimedOut = R.TimedOut;
  Q.Value = std::move(R.Value);
  if (Escalated) {
    Q.Ok = false;
    Q.TimedOut = true;
    Q.Value = "RequestTimeout: abort not honored within grace; shard " +
              std::to_string(Config.Index) +
              " rebooting from its last committed checkpoint";
  }
  if (Q.TimedOut) {
    Stats.DeadlineExpired.add();
    DeadlineExpiredCount.fetch_add(1, std::memory_order_relaxed);
  }
  Stats.Requests.add();
  if (!Q.Ok)
    Stats.Errors.add();
  RequestCount.fetch_add(1, std::memory_order_relaxed);
  // TimedOut (aborted mid-run or escalated) still consumed VM state up
  // to the unwind, and re-running a runaway would wedge the reboot —
  // replay answers the recorded ERR instead of re-executing.
  appendOutcomeFor(Q, Q.TimedOut ? Journal::Outcome::TimedOut
                                 : Journal::Outcome::Executed);
  return !Escalated;
}

void Shard::watchdogMain() {
  std::unique_lock<std::mutex> Lock(AbortMutex);
  while (!WatchdogStop) {
    WatchdogCv.wait_for(Lock, std::chrono::milliseconds(5));
    if (WatchdogStop)
      break;
    if (InFlightDeadlineNs == 0)
      continue;
    uint64_t Now = Telemetry::nowNs();
    if (Now < InFlightDeadlineNs)
      continue;
    if (!AbortArmed) {
      AbortArmed = true;
      ArmedToken = InFlightToken;
      EscalateAtNs = Now + Config.AbortGraceMs * 1000000;
      if (!StuckSim) {
        // Normal path: the VM consumes this at its next bytecode
        // boundary and unwinds with RequestTimeout. The in-VM deadline
        // usually beats us to it; this catches evals stuck between
        // bytecodes. The stuck drill skips delivery so the grace
        // escalation below is what recovers the shard.
        VM->requestAbort();
        Stats.Aborts.add();
        AbortCount.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (!EscalateFired && ArmedToken == InFlightToken &&
               Now >= EscalateAtNs) {
      EscalateFired = true;
      Stats.AbortsEscalated.add();
      EscalatedCount.fetch_add(1, std::memory_order_relaxed);
      // Stop flag, no join: the evaluation returns at its next poll and
      // the shard thread reboots its VM on its own thread.
      VM->requestStop();
    }
  }
}

void Shard::failFrom(Batch &B, size_t First) {
  for (size_t I = First; I < B.size(); ++I) {
    QueuedRequest &Q = B[I];
    if (Q.Done)
      continue; // already answered (dedup hit / journal refusal)
    Q.Done = true;
    Q.Ok = false;
    Q.Value = "shard " + std::to_string(Config.Index) +
              " crashed; request not executed (shard restarted from its "
              "last committed checkpoint)";
    Stats.Errors.add();
    // Recorded *before* the reboot replays the journal: these intents
    // never executed, so replay must not execute them either — the
    // client was told "not executed" and owns the retry.
    appendOutcomeFor(Q, Journal::Outcome::SkippedCrash);
  }
  // Durable before restartVm's tear drill can run: a torn refusal would
  // make replay execute what the client was told to retry.
  syncRefusals();
}

void Shard::shardMain() {
  bootVm();
  {
    std::lock_guard<std::mutex> G(ReadyMutex);
    BootDone = true;
  }
  ReadyCv.notify_all();

  for (;;) {
    uint64_t Bits = 0;
    IpcChannel::MessageHandle H;
    {
      // Parked between batches counts as safe: the periodic checkpointer
      // (or any service thread) can stop this shard's world meanwhile.
      BlockedRegion Blocked(VM->memory().safepoint());
      H = Channel.receive(Bits);
    }
    if (!H)
      break; // channel shut down: graceful exit
    Batch *B = reinterpret_cast<Batch *>(static_cast<uintptr_t>(Bits));
    processBatch(*B);
    // Any refusal this batch produced (deadline expiries, timeouts) is
    // on disk before the reply releases its ERR to the client.
    syncRefusals();
    // Journaled shards auto-checkpoint here, before the reply releases
    // the courier: the journal is quiescent, so the recorded mark covers
    // exactly what the image contains.
    maybeAutoCheckpoint();
    BatchCount.fetch_add(1, std::memory_order_relaxed);
    Channel.reply(H, B->size());
  }

  // Graceful lifecycle: SIGTERM/stop() checkpoints every shard before
  // the pool goes down.
  if (Ck) {
    if (journaled())
      PendingMark = Jrnl->endPos();
    std::string Err;
    if (Ck->checkpointNow(Err)) {
      CheckpointCount.store(CkTakenBase + Ck->checkpointsTaken(),
                            std::memory_order_relaxed);
      if (journaled())
        commitJournalTruncate();
    } else {
      noteError("final checkpoint failed: " + Err);
    }
  }
  teardownVm();
  setState("stopped");
}

void Shard::courierMain() {
  for (;;) {
    auto B = std::make_unique<Batch>();
    if (!Batcher.takeBatch(*B, Config.MaxBatch))
      break; // closed and drained
    Stats.QueuedNow.fetch_sub(B->size(), std::memory_order_relaxed);
    Stats.Batches.add();
    Stats.BatchSize.record(B->size());
    // WAL discipline: every Eval's intent is on disk (and fsynced, once
    // for the whole batch) before the batch crosses the channel — an OK
    // can then always be re-derived from checkpoint + journal.
    if (journaled())
      prepareBatchJournal(*B);
    chaos::point("serve.courier.send");
    (void)Channel.send(static_cast<uint64_t>(
        reinterpret_cast<uintptr_t>(B.get())));
    // The shard filled results in place (or the channel shut down under
    // us and nobody did — mark those, don't drop them).
    uint64_t Now = Telemetry::nowNs();
    for (QueuedRequest &Q : *B) {
      if (!Q.Done) {
        Q.Done = true;
        Q.Ok = false;
        Q.Value = "shard " + std::to_string(Config.Index) +
                  " unavailable (shutting down)";
        Stats.Errors.add();
      }
      Stats.Latency.record(Now - Q.EnqueueNs);
    }
    if (journaled())
      finishBatchJournal(*B);
    Sink(std::move(*B));
  }
}

void Shard::prepareBatchJournal(Batch &B) {
  bool Appended = false;
  for (QueuedRequest &Q : B) {
    if (Q.Kind != Request::Kind::Eval || Q.Done)
      continue;
    if (Q.HasSeq) {
      DedupTable::Response R;
      if (Dedup.lookup(Q.ClientId, Q.ClientSeq, R)) {
        // A resend of a completed request: answer what the original was
        // told. Never journaled, never re-executed.
        Q.Done = true;
        Q.Ok = R.Ok;
        Q.TimedOut = R.TimedOut;
        Q.Value = std::move(R.Value);
        Stats.DedupHits.add();
        DedupHitCount.fetch_add(1, std::memory_order_relaxed);
        Stats.Requests.add();
        if (!Q.Ok)
          Stats.Errors.add();
        continue;
      }
      if (!Dedup.markInFlight(Q.ClientId, Q.ClientSeq)) {
        // The original is still somewhere between journal and reply;
        // executing the resend too would double-apply it.
        Q.Done = true;
        Q.Ok = false;
        Q.Value = "overloaded: request seq " +
                  std::to_string(Q.ClientSeq) +
                  " still in flight; retry later";
        Stats.Requests.add();
        Stats.Errors.add();
        continue;
      }
    }
    std::string Err;
    if (!Jrnl->appendIntent(Q.ClientId, Q.ClientSeq, Q.HasSeq, Q.Source,
                            Q.JournalId, Err)) {
      // Durable-or-refused: a request we cannot journal is answered ERR
      // without executing, so the no-acknowledged-loss invariant never
      // depends on an unjournaled execution.
      Stats.JournalAppendFailures.add();
      if (Q.HasSeq)
        Dedup.clearInFlight(Q.ClientId, Q.ClientSeq);
      Q.Done = true;
      Q.Ok = false;
      Q.Value = "journal append failed; request not executed: " + Err;
      Stats.Requests.add();
      Stats.Errors.add();
      continue;
    }
    Stats.JournalAppends.add();
    Appended = true;
  }
  if (Appended) {
    std::string Err;
    if (Jrnl->sync(Err)) {
      Stats.JournalFsyncs.add();
    } else {
      // Warn-only: the records are written, so in-process crash replay
      // still sees them; only power loss could lose the unsynced tail,
      // and the tear drill proves replay converges even then.
      Stats.JournalFsyncFailures.add();
      noteError("journal fsync failed (continuing): " + Err);
    }
  }
}

void Shard::finishBatchJournal(Batch &B) {
  for (QueuedRequest &Q : B) {
    if (Q.JournalId == 0 || !Q.HasSeq)
      continue;
    Dedup.clearInFlight(Q.ClientId, Q.ClientSeq);
    auto Out = static_cast<Journal::Outcome>(Q.JournalOutcome);
    if (Out == Journal::Outcome::Executed ||
        Out == Journal::Outcome::TimedOut) {
      // Executed (or consumed by an abort): the response is final, so a
      // retry must be answered, not re-run. Skipped outcomes stay out of
      // the cache — their retry *should* execute.
      DedupTable::Response R;
      R.Ok = Q.Ok;
      R.TimedOut = Q.TimedOut;
      R.Value = Q.Value;
      Dedup.insert(Q.ClientId, Q.ClientSeq, std::move(R));
    }
  }
}

void Shard::appendOutcomeFor(QueuedRequest &Q, Journal::Outcome Out) {
  Q.JournalOutcome = static_cast<uint8_t>(Out);
  if (!journaled() || Q.JournalId == 0)
    return;
  std::string Err;
  if (Jrnl->appendOutcome(Q.JournalId, Q.ClientId, Q.ClientSeq, Q.HasSeq,
                          Out, Q.Ok, Q.Value, Err)) {
    Stats.JournalAppends.add();
    // Refusals must reach disk before their ERR escapes (syncRefusals
    // runs before every reply and before the crash ladder's tear
    // window); Executed outcomes ride the next batch fsync.
    if (Out != Journal::Outcome::Executed)
      RefusalPending = true;
  } else {
    // A lost Executed outcome only degrades replay to re-execution (or,
    // for a skip, to one bounded re-run) — never to losing an
    // acknowledged response.
    Stats.JournalAppendFailures.add();
  }
}

void Shard::syncRefusals() {
  if (!journaled() || !RefusalPending)
    return;
  RefusalPending = false;
  std::string Err;
  if (Jrnl->sync(Err))
    Stats.JournalFsyncs.add();
  else {
    // The refusal record is written, just not fsynced: an in-process
    // reboot replays it fine, and only the tear drill / power loss can
    // cut it — at which point replay re-executes a request the client
    // was told failed. Surface it loudly; don't wedge the shard.
    Stats.JournalFsyncFailures.add();
    noteError("journal refusal fsync failed (continuing): " + Err);
  }
}

void Shard::replayJournal(uint64_t Mark) {
  std::vector<Journal::Entry> Entries;
  std::string Err;
  if (!Jrnl->scan(Mark, Entries, Err)) {
    noteError("journal replay scan failed: " + Err);
    return;
  }
  for (Journal::Entry &E : Entries) {
    DedupTable::Response R;
    bool CacheIt = E.HasSeq;
    switch (E.Out) {
    case Journal::Outcome::SkippedExpired:
    case Journal::Outcome::SkippedCrash:
      // Never executed and the client was told so; a retry re-executes.
      continue;
    case Journal::Outcome::TimedOut:
      // Re-running a runaway would wedge the reboot; the recorded ERR is
      // what the client saw, so it is what a retry must get.
      R.Ok = E.Ok;
      R.TimedOut = true;
      R.Value = std::move(E.Value);
      break;
    case Journal::Outcome::Executed:
    case Journal::Outcome::None: {
      // Deterministic re-execution against the same image state, in the
      // same order. For an intent whose outcome record tore off, this
      // bounded run *becomes* its outcome.
      uint64_t DeadlineNs =
          Telemetry::nowNs() + Config.ReplayDeadlineMs * 1000000;
      VirtualMachine::EvalResult Res =
          VM->evalWithDeadline(E.Source, DeadlineNs);
      ReplayedCount.fetch_add(1, std::memory_order_relaxed);
      Stats.Replayed.add();
      if (E.Out == Journal::Outcome::Executed) {
        // The acknowledged response is canonical — what the client was
        // already told always wins over what the re-run printed.
        R.Ok = E.Ok;
        R.TimedOut = false;
        R.Value = std::move(E.Value);
      } else {
        R.Ok = Res.Ok;
        R.TimedOut = Res.TimedOut;
        R.Value = Res.Value;
        std::string OutErr;
        (void)Jrnl->appendOutcome(E.RecordId, E.ClientId, E.Seq, E.HasSeq,
                                  Res.TimedOut
                                      ? Journal::Outcome::TimedOut
                                      : Journal::Outcome::Executed,
                                  Res.Ok, Res.Value, OutErr);
      }
      break;
    }
    }
    if (CacheIt)
      Dedup.insert(E.ClientId, E.Seq, std::move(R));
  }
}

void Shard::commitJournalTruncate() {
  // The checkpoint that just committed covers PendingMark, but a crash
  // ladder may still fall back to a rotated generation: keep everything
  // the *oldest retained* image needs. The deque is seeded with 0, so
  // truncation only starts once the rotation window has cycled.
  PrevMarks.push_back(PendingMark);
  while (PrevMarks.size() > Config.KeepGenerations + 1)
    PrevMarks.pop_front();
  std::string Err;
  if (Jrnl->truncateBelow(PrevMarks.front(), Err))
    Stats.JournalTruncations.add();
  else
    // Harmless beyond disk growth: replay skips below the mark anyway.
    noteError("journal truncation failed: " + Err);
}

void Shard::maybeAutoCheckpoint() {
  if (!journaled() || !Ck || Config.CheckpointEveryMs == 0)
    return;
  uint64_t Now = Telemetry::nowNs();
  if (Now < NextAutoCkNs)
    return;
  NextAutoCkNs = Now + Config.CheckpointEveryMs * 1000000;
  PendingMark = Jrnl->endPos();
  std::string Err;
  if (Ck->checkpointNow(Err)) {
    CheckpointCount.store(CkTakenBase + Ck->checkpointsTaken(),
                          std::memory_order_relaxed);
    commitJournalTruncate();
  } else {
    noteError("auto checkpoint failed: " + Err);
  }
}
