//===-- serve/Server.h - Socket front-end for the shard pool ----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's front door: a poll()-based event loop on one
/// thread multiplexing thousands of loopback TCP sessions onto the shard
/// pool. The loop owns every socket and Session; shard couriers deliver
/// completed batches through a locked queue plus a wake pipe, so the only
/// cross-thread traffic is enqueue/drain of finished work.
///
///   accept -> Session (pinned to SessionId % shards)
///   readable -> frame lines -> parse -> RequestBatcher[shard]
///   courier reply -> response queue -> wake pipe -> session Out -> write
///
/// Graceful lifecycle: requestDrain() (SIGTERM, or the `!drain` admin
/// command) stops accepting, stops reading, lets in-flight requests
/// finish and flush, closes each session as it empties, then stops the
/// pool — which checkpoints every shard. A drain deadline force-closes
/// stragglers so shutdown is bounded.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SERVER_H
#define MST_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/Session.h"
#include "serve/ShardPool.h"

namespace mst {
namespace serve {

struct ServerConfig {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back with port().
  uint16_t Port = 0;
  PoolConfig Pool;
  /// Longest request line accepted before the session is dropped.
  size_t MaxLine = 64 * 1024;
  /// Outstanding requests per session before its reads are parked.
  size_t MaxPipeline = 1024;
  /// Force-close deadline for a graceful drain.
  double DrainTimeoutSec = 30.0;
  /// How long to wait for the shard VMs to boot.
  double ReadyTimeoutSec = 300.0;
  /// Default per-request deadline stamped on evaluations that carry no
  /// `?deadline=MS` of their own; 0 = no default (runaways wedge their
  /// shard, as before).
  uint64_t RequestDeadlineMs = 0;
  /// Admission control: evaluations outstanding per shard before new
  /// ones fast-fail `ERR overloaded`; 0 = unbounded.
  size_t QueueBudget = 1024;
  /// Consecutive deadline expiries on one shard that open its circuit
  /// breaker; 0 disables the breaker.
  unsigned BreakerThreshold = 8;
  /// How long an open breaker sheds before letting one half-open probe
  /// through.
  uint64_t BreakerOpenMs = 1000;
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Boots the shards, binds the listener, starts the event loop.
  /// \returns false with \p Error set on failure.
  bool start(std::string &Error);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Begins a graceful drain: stop accepting, finish in-flight work,
  /// checkpoint every shard, stop. Safe from any thread; idempotent.
  /// (Signal handlers: set a flag and call this from a normal thread.)
  void requestDrain();

  /// Blocks until the event loop has fully stopped. \returns false on
  /// timeout.
  bool waitStopped(double TimeoutSec);

  /// requestDrain() + join. Also safe when start() failed half-way.
  void stop();

  ServeStats &stats() { return Stats; }
  ShardPool &pool() { return *Pool; }

  uint64_t activeSessions() const {
    return Stats.ActiveSessions.load(std::memory_order_relaxed);
  }

private:
  void loopMain();
  void acceptReady();
  void readSession(Session &S);
  void parseBuffered(Session &S);
  void handleLine(Session &S, const std::string &Line);
  void writeSession(Session &S);
  void closeSession(uint64_t Id);
  void deliverResponses();
  void wake();

  ServerConfig Config;
  ServeStats Stats;
  std::unique_ptr<ShardPool> Pool;

  int ListenFd = -1;
  int WakeRd = -1, WakeWr = -1;
  uint16_t BoundPort = 0;

  std::thread LoopThread;

  // Event-loop-owned.
  std::unordered_map<uint64_t, Session> Sessions; // by session id
  std::unordered_map<int, uint64_t> FdToSession;
  uint64_t NextSessionId = 0;
  bool Draining = false;
  uint64_t DrainDeadlineNs = 0;

  /// Per-shard admission gate (event-loop-owned, like the sessions):
  /// outstanding-request budget plus the circuit breaker. Consecutive
  /// deadline expiries open the breaker; while open every evaluation
  /// fast-fails `ERR overloaded`; after BreakerOpenMs one probe request
  /// is let through half-open — success recloses, another expiry
  /// reopens.
  struct ShardGate {
    uint64_t Outstanding = 0;
    unsigned ConsecTimeouts = 0;
    enum class Breaker : uint8_t { Closed, Open, HalfOpen };
    Breaker State = Breaker::Closed;
    uint64_t OpenUntilNs = 0;
    bool ProbeInFlight = false;
    uint64_t ProbeSession = 0;
    uint64_t ProbeSeq = 0;
  };
  std::vector<ShardGate> Gates; // indexed by shard, sized in start()

  // Cross-thread: courier-completed batches + drain request.
  std::mutex RespMutex;
  std::deque<Batch> Responses; // guarded by RespMutex
  std::atomic<bool> DrainRequested{false};

  std::mutex StopMutex;
  std::condition_variable StopCv;
  bool Started = false; // loop thread launched (guarded by StopMutex)
  bool Stopped = false; // loop thread finished (guarded by StopMutex)
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SERVER_H
