//===-- serve/Protocol.cpp - Line-delimited request protocol --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstdlib>

using namespace mst;
using namespace mst::serve;

std::string serve::escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string serve::unescapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case '\\':
      Out += '\\';
      break;
    default: // unknown escape: keep both characters
      Out += '\\';
      Out += S[I];
    }
  }
  return Out;
}

Request serve::parseRequestLine(const std::string &Line) {
  Request R;
  if (Line.empty()) {
    R.K = Request::Kind::Bad;
    R.Error = "empty request";
    return R;
  }
  std::string Rest = Line;
  if (Rest[0] == '@') {
    size_t Sp = Rest.find(' ');
    if (Sp == std::string::npos || Sp == 1) {
      R.K = Request::Kind::Bad;
      R.Error = "malformed tag: expected '@tag source'";
      return R;
    }
    R.Tag = Rest.substr(0, Sp);
    Rest = Rest.substr(Sp + 1);
    // `@tag?deadline=MS&seq=N` — options ride the tag token, separated
    // by '&'; the echoed tag is the bare prefix (empty for the anonymous
    // `@?deadline=MS`).
    size_t Qm = R.Tag.find('?');
    if (Qm != std::string::npos) {
      std::string Opts = R.Tag.substr(Qm + 1);
      R.Tag = R.Tag.substr(0, Qm);
      size_t Start = 0;
      while (Start <= Opts.size()) {
        size_t Amp = Opts.find('&', Start);
        std::string Opt = Amp == std::string::npos
                              ? Opts.substr(Start)
                              : Opts.substr(Start, Amp - Start);
        size_t Eq = Opt.find('=');
        std::string Key =
            Eq == std::string::npos ? Opt : Opt.substr(0, Eq);
        std::string Val =
            Eq == std::string::npos ? "" : Opt.substr(Eq + 1);
        bool Numeric = !Val.empty() &&
                       Val.find_first_not_of("0123456789") ==
                           std::string::npos;
        if (Key == "deadline" && Numeric) {
          R.DeadlineMs = std::strtoull(Val.c_str(), nullptr, 10);
        } else if (Key == "seq" && Numeric) {
          R.HasSeq = true;
          R.Seq = std::strtoull(Val.c_str(), nullptr, 10);
        } else {
          R.K = Request::Kind::Bad;
          R.Error = "malformed tag option: expected "
                    "'@tag?deadline=MS' and/or '&seq=N'";
          return R;
        }
        if (Amp == std::string::npos)
          break;
        Start = Amp + 1;
      }
      if (R.Tag == "@")
        R.Tag.clear();
    }
    if (Rest.empty()) {
      R.K = Request::Kind::Bad;
      R.Error = "empty source after tag";
      return R;
    }
  }
  if (Rest[0] != '!') {
    R.K = Request::Kind::Eval;
    R.Source = unescapeLine(Rest);
    return R;
  }
  // Admin commands. A tag is legal on any of them.
  size_t Sp = Rest.find(' ');
  std::string Cmd = Sp == std::string::npos ? Rest : Rest.substr(0, Sp);
  std::string Arg = Sp == std::string::npos ? "" : Rest.substr(Sp + 1);
  if (Cmd == "!health") {
    R.K = Request::Kind::Health;
  } else if (Cmd == "!session") {
    if (Arg.empty() ||
        Arg.find_first_not_of("0123456789") != std::string::npos) {
      R.K = Request::Kind::Bad;
      R.Error = "!session needs a numeric client id";
      return R;
    }
    R.K = Request::Kind::Session;
    R.SessionBind = std::strtoull(Arg.c_str(), nullptr, 10);
  } else if (Cmd == "!checkpoint") {
    R.K = Request::Kind::Checkpoint;
  } else if (Cmd == "!kill") {
    if (Arg.empty() || Arg.find_first_not_of("0123456789") !=
                           std::string::npos) {
      R.K = Request::Kind::Bad;
      R.Error = "!kill needs a shard number";
      return R;
    }
    R.K = Request::Kind::Kill;
    R.KillShard = static_cast<unsigned>(std::strtoul(Arg.c_str(),
                                                     nullptr, 10));
  } else if (Cmd == "!drain") {
    R.K = Request::Kind::Drain;
  } else if (Cmd == "!quit") {
    R.K = Request::Kind::Quit;
  } else {
    R.K = Request::Kind::Bad;
    R.Error = "unknown admin command: " + Cmd;
  }
  return R;
}

std::string serve::formatResponse(bool Ok, const std::string &Tag,
                                  const std::string &Value) {
  std::string Out = Ok ? "OK " : "ERR ";
  if (!Tag.empty())
    Out += Tag + ' ';
  Out += escapeLine(Value);
  Out += '\n';
  return Out;
}

bool serve::parseResponseLine(const std::string &Line, bool &Ok,
                              std::string &Tag, std::string &Value) {
  std::string Rest;
  if (Line.rfind("OK ", 0) == 0) {
    Ok = true;
    Rest = Line.substr(3);
  } else if (Line.rfind("ERR ", 0) == 0) {
    Ok = false;
    Rest = Line.substr(4);
  } else {
    return false;
  }
  Tag.clear();
  if (!Rest.empty() && Rest[0] == '@') {
    size_t Sp = Rest.find(' ');
    if (Sp == std::string::npos)
      return false;
    Tag = Rest.substr(0, Sp);
    Rest = Rest.substr(Sp + 1);
  }
  Value = unescapeLine(Rest);
  return true;
}

bool serve::nextLine(std::string &Buf, std::string &Line, size_t MaxLine,
                     bool &TooLong) {
  TooLong = false;
  size_t Nl = Buf.find('\n');
  if (Nl == std::string::npos) {
    if (Buf.size() > MaxLine)
      TooLong = true;
    return false;
  }
  if (Nl > MaxLine) {
    TooLong = true;
    return false;
  }
  Line = Buf.substr(0, Nl);
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  Buf.erase(0, Nl + 1);
  return true;
}
