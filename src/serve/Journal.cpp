//===-- serve/Journal.cpp - Per-shard write-ahead request journal ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Journal.h"

#include "support/Crc32.h"
#include "vkernel/Chaos.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mst {
namespace serve {

namespace {

// On-disk layout (all fields little-endian, the only byte order we target):
//
//   file header   {u32 Magic 'MSTJ', u32 Version, u64 Base, u32 Crc, u32 Pad}
//   record        {u32 Magic 'JREC', u32 Crc, u32 Len, u8 Kind, u8 Pad8,
//                  u16 Pad16} + Len payload bytes
//
//   intent payload  {u64 RecordId, u64 ClientId, u64 Seq, u8 HasSeq,
//                    u8 Pad[3], u32 SourceLen, SourceLen bytes}
//   outcome payload {u64 RecordId, u64 ClientId, u64 Seq, u8 Status, u8 Ok,
//                    u8 HasSeq, u8 Pad, u32 ValueLen, ValueLen bytes}
//
// The record Crc covers the payload only; a corrupt Len sends the scanner
// into bytes that fail the Crc, which is indistinguishable from (and
// handled as) a torn tail. Logical position of a record = Base + its
// physical offset past the file header, so truncateBelow() can drop a
// prefix without invalidating checkpoint marks.

constexpr uint32_t FileMagic = 0x4d53544a;   // "MSTJ"
constexpr uint32_t FileVersion = 1;
constexpr uint32_t RecordMagic = 0x4a524543; // "JREC"
constexpr size_t FileHeaderSize = 24;
constexpr size_t RecordHeaderSize = 16;
constexpr uint8_t KindIntent = 1;
constexpr uint8_t KindOutcome = 2;
// A payload larger than this is framing corruption, not a real record.
constexpr uint32_t MaxRecordLen = 64u << 20;

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

std::vector<uint8_t> buildFileHeader(uint64_t Base) {
  std::vector<uint8_t> H;
  H.reserve(FileHeaderSize);
  putU32(H, FileMagic);
  putU32(H, FileVersion);
  putU64(H, Base);
  putU32(H, crc32(H.data(), H.size()));
  putU32(H, 0);
  return H;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Len, std::string &Error) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Data + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("journal write failed: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Error = std::string("journal open for read failed: ") +
            std::strerror(errno);
    return false;
  }
  Out.clear();
  uint8_t Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("journal read failed: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Out.insert(Out.end(), Buf, Buf + N);
  }
  ::close(Fd);
  return true;
}

struct RawRecord {
  uint8_t Kind;
  uint64_t Pos; ///< logical position of the record header
  const uint8_t *Payload;
  uint32_t Len;
};

/// Walks records in \p Data (file bytes past the header). Stops at the
/// first torn/corrupt record and reports the physical offset of the good
/// prefix end in \p GoodBytes.
void scanRecords(const std::vector<uint8_t> &Data, uint64_t Base,
                 std::vector<RawRecord> &Out, size_t &GoodBytes) {
  size_t Off = FileHeaderSize;
  GoodBytes = Off;
  while (Off + RecordHeaderSize <= Data.size()) {
    const uint8_t *H = Data.data() + Off;
    if (getU32(H) != RecordMagic)
      break;
    uint32_t Crc = getU32(H + 4);
    uint32_t Len = getU32(H + 8);
    uint8_t Kind = H[12];
    if (Len > MaxRecordLen || Off + RecordHeaderSize + Len > Data.size())
      break;
    const uint8_t *Payload = H + RecordHeaderSize;
    if (crc32(Payload, Len) != Crc)
      break;
    if (Kind != KindIntent && Kind != KindOutcome)
      break;
    RawRecord R;
    R.Kind = Kind;
    R.Pos = Base + (Off - FileHeaderSize);
    R.Payload = Payload;
    R.Len = Len;
    Out.push_back(R);
    Off += RecordHeaderSize + Len;
    GoodBytes = Off;
  }
}

bool parseIntent(const RawRecord &R, Journal::Entry &E) {
  if (R.Len < 32)
    return false;
  E.RecordId = getU64(R.Payload);
  E.ClientId = getU64(R.Payload + 8);
  E.Seq = getU64(R.Payload + 16);
  E.HasSeq = R.Payload[24] != 0;
  uint32_t SrcLen = getU32(R.Payload + 28);
  if (32 + static_cast<uint64_t>(SrcLen) > R.Len)
    return false;
  E.Source.assign(reinterpret_cast<const char *>(R.Payload + 32), SrcLen);
  E.Pos = R.Pos;
  return true;
}

struct ParsedOutcome {
  uint64_t RecordId;
  Journal::Outcome Out;
  bool Ok;
  std::string Value;
};

bool parseOutcome(const RawRecord &R, ParsedOutcome &O) {
  if (R.Len < 32)
    return false;
  O.RecordId = getU64(R.Payload);
  uint8_t Status = R.Payload[24];
  if (Status < 1 || Status > 4)
    return false;
  O.Out = static_cast<Journal::Outcome>(Status);
  O.Ok = R.Payload[25] != 0;
  uint32_t ValLen = getU32(R.Payload + 28);
  if (32 + static_cast<uint64_t>(ValLen) > R.Len)
    return false;
  O.Value.assign(reinterpret_cast<const char *>(R.Payload + 32), ValLen);
  return true;
}

} // namespace

bool Journal::open(const std::string &P, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Path = P;

  std::vector<uint8_t> Data;
  struct stat St;
  bool Exists = ::stat(P.c_str(), &St) == 0 && St.st_size > 0;
  if (Exists && !readWholeFile(P, Data, Error))
    return false;

  if (!Exists || Data.size() < FileHeaderSize) {
    // Fresh (or unusably short) journal: write a clean header, Base 0.
    // A sub-header file can only be a torn first write — nothing in it
    // was ever synced, so starting over loses nothing.
    int NewFd = ::open(P.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    if (NewFd < 0) {
      Error = std::string("journal create failed: ") + std::strerror(errno);
      return false;
    }
    auto H = buildFileHeader(0);
    if (!writeAll(NewFd, H.data(), H.size(), Error)) {
      ::close(NewFd);
      return false;
    }
    if (::fsync(NewFd) != 0) {
      Error = std::string("journal header fsync failed: ") +
              std::strerror(errno);
      ::close(NewFd);
      return false;
    }
    Fd = NewFd;
    Base = 0;
    FileBytes = FileHeaderSize;
    SyncedBytes = FileBytes;
    NextRecordId = 1;
    if (Exists)
      ++Torn;
    return true;
  }

  if (getU32(Data.data()) != FileMagic ||
      getU32(Data.data() + 4) != FileVersion ||
      crc32(Data.data(), 16) != getU32(Data.data() + 16)) {
    Error = "journal header corrupt: " + P;
    return false;
  }
  Base = getU64(Data.data() + 8);

  std::vector<RawRecord> Records;
  size_t GoodBytes = 0;
  scanRecords(Data, Base, Records, GoodBytes);

  uint64_t MaxId = 0;
  for (const auto &R : Records)
    if (R.Len >= 8)
      MaxId = std::max(MaxId, getU64(R.Payload));

  int NewFd = ::open(P.c_str(), O_RDWR);
  if (NewFd < 0) {
    Error = std::string("journal reopen failed: ") + std::strerror(errno);
    return false;
  }
  if (GoodBytes < Data.size()) {
    // Torn tail: drop the partial record so appends resume on a clean
    // boundary. Everything below GoodBytes passed its CRC.
    if (::ftruncate(NewFd, static_cast<off_t>(GoodBytes)) != 0) {
      Error = std::string("journal tail repair failed: ") +
              std::strerror(errno);
      ::close(NewFd);
      return false;
    }
    ++Torn;
  }
  if (::lseek(NewFd, 0, SEEK_END) < 0) {
    Error = std::string("journal seek failed: ") + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  FileBytes = GoodBytes;
  SyncedBytes = GoodBytes;
  NextRecordId = MaxId + 1;
  return true;
}

void Journal::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Journal::appendRecord(uint8_t Kind, const std::vector<uint8_t> &Payload,
                           std::string &Error) {
  if (Fd < 0) {
    Error = "journal not open";
    return false;
  }
  if (chaos::failPoint("journal.append.fail")) {
    Error = "journal append failed (chaos: journal.append.fail)";
    return false;
  }
  std::vector<uint8_t> Rec;
  Rec.reserve(RecordHeaderSize + Payload.size());
  putU32(Rec, RecordMagic);
  putU32(Rec, crc32(Payload.data(), Payload.size()));
  putU32(Rec, static_cast<uint32_t>(Payload.size()));
  Rec.push_back(Kind);
  Rec.push_back(0);
  Rec.push_back(0);
  Rec.push_back(0);
  Rec.insert(Rec.end(), Payload.begin(), Payload.end());
  if (!writeAll(Fd, Rec.data(), Rec.size(), Error))
    return false;
  FileBytes += Rec.size();
  return true;
}

bool Journal::appendIntent(uint64_t ClientId, uint64_t Seq, bool HasSeq,
                           const std::string &Source, uint64_t &RecordId,
                           std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<uint8_t> P;
  P.reserve(32 + Source.size());
  uint64_t Id = NextRecordId;
  putU64(P, Id);
  putU64(P, ClientId);
  putU64(P, Seq);
  P.push_back(HasSeq ? 1 : 0);
  P.push_back(0);
  P.push_back(0);
  P.push_back(0);
  putU32(P, static_cast<uint32_t>(Source.size()));
  P.insert(P.end(), Source.begin(), Source.end());
  if (!appendRecord(KindIntent, P, Error))
    return false;
  NextRecordId = Id + 1;
  RecordId = Id;
  return true;
}

bool Journal::appendOutcome(uint64_t RecordId, uint64_t ClientId, uint64_t Seq,
                            bool HasSeq, Outcome Out, bool Ok,
                            const std::string &Value, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<uint8_t> P;
  P.reserve(32 + Value.size());
  putU64(P, RecordId);
  putU64(P, ClientId);
  putU64(P, Seq);
  P.push_back(static_cast<uint8_t>(Out));
  P.push_back(Ok ? 1 : 0);
  P.push_back(HasSeq ? 1 : 0);
  P.push_back(0);
  putU32(P, static_cast<uint32_t>(Value.size()));
  P.insert(P.end(), Value.begin(), Value.end());
  return appendRecord(KindOutcome, P, Error);
}

bool Journal::sync(std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0) {
    Error = "journal not open";
    return false;
  }
  if (chaos::failPoint("journal.fsync.fail")) {
    Error = "journal fsync failed (chaos: journal.fsync.fail)";
    return false;
  }
  // fdatasync, not fsync: an append-only log needs the data and the file
  // size durable, not timestamps — on ext4 that skips a second metadata
  // journal commit per batch, and this call sits on the courier's
  // critical path between append and execute.
  if (::fdatasync(Fd) != 0) {
    Error = std::string("journal fsync failed: ") + std::strerror(errno);
    return false;
  }
  SyncedBytes = FileBytes;
  return true;
}

bool Journal::scan(uint64_t FromPos, std::vector<Entry> &Out,
                   std::string &Error) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Out.clear();
  if (Fd < 0) {
    Error = "journal not open";
    return false;
  }
  std::vector<uint8_t> Data;
  if (!readWholeFile(Path, Data, Error))
    return false;
  if (Data.size() < FileHeaderSize) {
    Error = "journal shrank under us: " + Path;
    return false;
  }
  uint64_t FileBase = getU64(Data.data() + 8);
  std::vector<RawRecord> Records;
  size_t GoodBytes = 0;
  scanRecords(Data, FileBase, Records, GoodBytes);

  // Outcomes always land after their intent, so one ordered pass with a
  // RecordId index joins them.
  std::unordered_map<uint64_t, size_t> ByRecordId;
  for (const auto &R : Records) {
    if (R.Kind == KindIntent) {
      Entry E;
      if (!parseIntent(R, E))
        continue;
      if (E.Pos < FromPos)
        continue;
      ByRecordId[E.RecordId] = Out.size();
      Out.push_back(std::move(E));
    } else {
      ParsedOutcome O;
      if (!parseOutcome(R, O))
        continue;
      auto It = ByRecordId.find(O.RecordId);
      if (It == ByRecordId.end())
        continue; // outcome for an intent below FromPos (or compacted away)
      Entry &E = Out[It->second];
      E.Out = O.Out;
      E.Ok = O.Ok;
      E.Value = std::move(O.Value);
    }
  }
  return true;
}

bool Journal::truncateBelow(uint64_t Mark, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0) {
    Error = "journal not open";
    return false;
  }
  if (Mark <= Base)
    return true; // nothing below the mark survives in this file anyway
  uint64_t End = Base + (FileBytes - FileHeaderSize);
  if (Mark > End) {
    Error = "journal truncate mark past end";
    return false;
  }
  if (chaos::failPoint("journal.truncate.fail")) {
    Error = "journal truncate failed (chaos: journal.truncate.fail)";
    return false;
  }

  std::vector<uint8_t> Data;
  if (!readWholeFile(Path, Data, Error))
    return false;
  size_t CutOff = FileHeaderSize + static_cast<size_t>(Mark - Base);
  if (CutOff > Data.size()) {
    Error = "journal truncate cut past file end";
    return false;
  }

  // Same commit discipline as snapshots: unique tmp, fsync, rename. A
  // crash mid-compaction leaves either the old journal or the new one,
  // both of which replay correctly.
  std::string Tmp = Path + ".compact.tmp";
  int TmpFd = ::open(Tmp.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (TmpFd < 0) {
    Error = std::string("journal compact tmp open failed: ") +
            std::strerror(errno);
    return false;
  }
  auto H = buildFileHeader(Mark);
  bool WriteOk = writeAll(TmpFd, H.data(), H.size(), Error) &&
                 (CutOff == Data.size() ||
                  writeAll(TmpFd, Data.data() + CutOff, Data.size() - CutOff,
                           Error));
  if (WriteOk && ::fsync(TmpFd) != 0) {
    Error = std::string("journal compact fsync failed: ") +
            std::strerror(errno);
    WriteOk = false;
  }
  ::close(TmpFd);
  if (!WriteOk) {
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = std::string("journal compact rename failed: ") +
            std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }

  int NewFd = ::open(Path.c_str(), O_RDWR | O_APPEND);
  if (NewFd < 0) {
    Error = std::string("journal reopen after compact failed: ") +
            std::strerror(errno);
    return false;
  }
  if (::lseek(NewFd, 0, SEEK_END) < 0) {
    Error = std::string("journal seek after compact failed: ") +
            std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  ::close(Fd);
  Fd = NewFd;
  Base = Mark;
  FileBytes = FileHeaderSize + (Data.size() - CutOff);
  SyncedBytes = FileBytes;
  return true;
}

uint64_t Journal::endPos() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0)
    return 0;
  return Base + (FileBytes - FileHeaderSize);
}

uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Fd < 0 ? 0 : FileBytes;
}

uint64_t Journal::tearTail(uint64_t MaxCut, uint64_t Salt) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0 || FileBytes <= SyncedBytes)
    return 0;
  // Only the unsynced tail can tear: records below SyncedBytes survived
  // an fsync, and the drill must not model a failure mode the fsync
  // discipline already rules out.
  uint64_t Window = FileBytes - SyncedBytes;
  uint64_t Cut = 1 + (Salt * 0x9e3779b97f4a7c15ull >> 33) %
                         std::min<uint64_t>(MaxCut, Window);
  uint64_t NewSize = FileBytes - Cut;
  if (::ftruncate(Fd, static_cast<off_t>(NewSize)) != 0)
    return 0;
  // A real tear is followed by open()'s boundary repair before appends
  // resume; in-process the fd stays open, so repair here — appending
  // after a half-record would bury every later record behind a CRC
  // failure.
  std::string Err;
  std::vector<uint8_t> Data;
  if (!readWholeFile(Path, Data, Err) || Data.size() < FileHeaderSize)
    return 0;
  std::vector<RawRecord> Records;
  size_t GoodBytes = 0;
  scanRecords(Data, Base, Records, GoodBytes);
  if (GoodBytes < Data.size() &&
      ::ftruncate(Fd, static_cast<off_t>(GoodBytes)) != 0)
    return 0;
  if (::lseek(Fd, 0, SEEK_END) < 0)
    return 0;
  FileBytes = GoodBytes;
  ++Torn;
  return Cut;
}

bool DedupTable::lookup(uint64_t Client, uint64_t Seq, Response &R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Clients.find(Client);
  if (It == Clients.end())
    return false;
  auto SeqIt = It->second.BySeq.find(Seq);
  if (SeqIt == It->second.BySeq.end())
    return false;
  R = SeqIt->second;
  return true;
}

void DedupTable::insert(uint64_t Client, uint64_t Seq, Response R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Clients.find(Client);
  if (It == Clients.end()) {
    while (Clients.size() >= MaxClients && !ClientOrder.empty()) {
      uint64_t Victim = ClientOrder.front();
      ClientOrder.pop_front();
      auto VIt = Clients.find(Victim);
      if (VIt != Clients.end()) {
        Entries -= VIt->second.BySeq.size();
        Clients.erase(VIt);
      }
    }
    It = Clients.emplace(Client, ClientEntry()).first;
    ClientOrder.push_back(Client);
  }
  ClientEntry &E = It->second;
  auto SeqIt = E.BySeq.find(Seq);
  if (SeqIt != E.BySeq.end()) {
    SeqIt->second = std::move(R);
    return;
  }
  E.BySeq.emplace(Seq, std::move(R));
  E.Order.push_back(Seq);
  ++Entries;
  while (E.BySeq.size() > MaxPerClient && !E.Order.empty()) {
    uint64_t Old = E.Order.front();
    E.Order.pop_front();
    if (E.BySeq.erase(Old))
      --Entries;
  }
}

namespace {
uint64_t flightKey(uint64_t Client, uint64_t Seq) {
  // Mixed key rather than a pair-set: a client retiring seq S while
  // another client is on the same S must not collide, and golden-ratio
  // mixing of both words keeps accidental collisions vanishingly rare
  // for the bounded window of pairs in flight at once.
  return (Client * 0x9e3779b97f4a7c15ull) ^ (Seq + 0x632be59bd9b4e019ull);
}
} // namespace

bool DedupTable::markInFlight(uint64_t Client, uint64_t Seq) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return InFlight.insert(flightKey(Client, Seq)).second;
}

void DedupTable::clearInFlight(uint64_t Client, uint64_t Seq) {
  std::lock_guard<std::mutex> Lock(Mutex);
  InFlight.erase(flightKey(Client, Seq));
}

size_t DedupTable::size() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries;
}

} // namespace serve
} // namespace mst
