//===-- serve/Admin.cpp - Aggregate health/telemetry report ---------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Admin.h"

#include <map>

#include "obs/Profiler.h"

using namespace mst;
using namespace mst::serve;

namespace {
void jsonStringTo(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += C == '\n' ? "\\n" : (C == '\r' ? "\\r" : "\\t");
      continue;
    }
    Out += C;
  }
  Out += '"';
}

/// Per-slot-name sample counts by profiler state: which shards spend
/// their samples running versus lock-waiting versus collecting. Reads
/// only the sampler's accumulated tables — no oop resolution, no heap.
std::string profilerBreakdownJson() {
  Profiler::Data D = Profiler::data();
  // name -> state name -> samples (slots merge by name across restarts)
  std::map<std::string, std::map<std::string, uint64_t>> ByName;
  for (const Profiler::VprocData &V : D.Vprocs)
    for (const auto &[Key, Count] : V.Samples) {
      const char *St =
          Key.State < NumProfStates
              ? profStateName(static_cast<ProfState>(Key.State))
              : "?";
      ByName[V.Name][St] += Count;
    }
  std::string Out = "{\"ticks\":" + std::to_string(D.Ticks) +
                    ",\"states\":{";
  bool FirstName = true;
  for (const auto &[Name, States] : ByName) {
    if (!FirstName)
      Out += ',';
    FirstName = false;
    jsonStringTo(Out, Name);
    Out += ":{";
    bool FirstSt = true;
    for (const auto &[St, Count] : States) {
      if (!FirstSt)
        Out += ',';
      FirstSt = false;
      jsonStringTo(Out, St);
      Out += ':' + std::to_string(Count);
    }
    Out += '}';
  }
  Out += "}}";
  return Out;
}
} // namespace

std::string serve::buildHealthJson(ShardPool &Pool, ServeStats &Stats,
                                   const std::vector<ShardGateView>
                                       *Gates) {
  std::string Out = "{\"shards\":[";
  bool First = true;
  uint64_t QueueDepth = 0;
  for (const Shard::Health &H : Pool.health()) {
    if (!First)
      Out += ',';
    First = false;
    QueueDepth += H.QueueDepth;
    Out += "{\"id\":" + std::to_string(H.Index) + ",\"state\":";
    jsonStringTo(Out, H.State);
    Out += ",\"generation\":" + std::to_string(H.Generation) +
           ",\"restarts\":" + std::to_string(H.Restarts) +
           ",\"requests\":" + std::to_string(H.Requests) +
           ",\"batches\":" + std::to_string(H.Batches) +
           ",\"checkpoints\":" + std::to_string(H.Checkpoints) +
           ",\"queue_depth\":" + std::to_string(H.QueueDepth) +
           ",\"oldest_queued_ms\":" + std::to_string(H.OldestQueuedMs) +
           ",\"deadline_expired\":" +
           std::to_string(H.DeadlineExpired) +
           ",\"aborts\":" + std::to_string(H.Aborts) +
           ",\"aborts_escalated\":" +
           std::to_string(H.AbortsEscalated) +
           ",\"journal_bytes\":" + std::to_string(H.JournalBytes) +
           ",\"replayed\":" + std::to_string(H.Replayed) +
           ",\"dedup_size\":" + std::to_string(H.DedupSize) +
           ",\"dedup_hits\":" + std::to_string(H.DedupHits);
    if (Gates && H.Index < Gates->size()) {
      const ShardGateView &G = (*Gates)[H.Index];
      Out += ",\"breaker\":";
      jsonStringTo(Out, G.Breaker);
      Out += ",\"outstanding\":" + std::to_string(G.Outstanding) +
             ",\"consec_timeouts\":" +
             std::to_string(G.ConsecTimeouts);
    }
    Out += ",\"last_error\":";
    jsonStringTo(Out, H.LastError);
    Out += '}';
  }
  Out += "],\"sessions\":{\"active\":" +
         std::to_string(Stats.ActiveSessions.load()) +
         ",\"total\":" + std::to_string(Stats.TotalSessions.load()) +
         "},\"requests\":{\"completed\":" +
         std::to_string(Stats.Requests.value()) +
         ",\"errors\":" + std::to_string(Stats.Errors.value()) +
         ",\"batches\":" + std::to_string(Stats.Batches.value()) +
         ",\"queued\":" + std::to_string(QueueDepth) +
         "},\"profiler\":" + profilerBreakdownJson() +
         ",\"telemetry\":" + Telemetry::toJson(Telemetry::snapshot()) +
         "}";
  return Out;
}
