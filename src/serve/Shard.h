//===-- serve/Shard.h - One VM image serving requests -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard = one independent VirtualMachine image plus the two threads
/// that feed it:
///
///   courier thread: RequestBatcher::takeBatch -> IpcChannel::send(batch)
///                   -> deliver responses to the front-end sink
///   shard thread:   constructs/boots the VM (it must own its VM: a
///                   VirtualMachine is built, driven, and destroyed on
///                   its constructing thread), then loops
///                   receive -> evaluate each request -> reply
///
/// The IpcChannel crossing is the paper's V Send/Receive/Reply used as a
/// work conduit: the courier keeps one batch outstanding, so the shard
/// processes batches strictly in order while the next batch accumulates.
///
/// Recovery ladder (the serving layer's whole point of reusing the PR 5
/// snapshot machinery): a shard boots from its own last committed
/// checkpoint (`<dir>/shardNNN.image`, with rotated-generation fallback),
/// else from the pool's prewarmed base image, else from a cold bootstrap.
/// A *crash* — the `serve.shard.crash` chaos fail point or an admin
/// `!kill` — tears down the VM on the shard thread and walks the same
/// ladder again; requests already queued behind the crash are answered
/// ERR rather than silently dropped, the channel and batcher survive, and
/// every other shard keeps serving. A real panic() still aborts the
/// process (shards share one address space by design — the paper's
/// shared-memory image, multiplied); the chaos kill models the crash the
/// way the snapshot fuzz lane models torn writes.
///
/// While blocked in receive() the shard thread sits in a safepoint
/// BlockedRegion, so its periodic Checkpointer can stop that VM's world
/// between batches.
///
/// Durability (opt-in via ShardConfig::JournalPath; see serve/Journal.h):
/// the courier write-ahead-logs every Eval and fsyncs once per batch
/// before send; the shard appends an outcome record per resolved
/// request; the crash ladder, after loading a checkpoint, replays
/// journaled work past the checkpoint's covered position before
/// reporting Ready — so a journaled shard's `!kill` loses nothing that
/// was acknowledged. Journaled shards disable the *periodic* Checkpointer
/// thread and instead checkpoint on the shard thread between batches
/// (while the courier is parked in send), so the recorded journal mark
/// is exact; truncation below the oldest retained generation's mark
/// happens strictly after each checkpoint's rename lands.
///
/// Deadlines: each shard runs a watchdog thread. The shard thread
/// publishes the in-flight request's deadline (under AbortMutex) around
/// every evaluation; when the watchdog sees it expire it arms the VM's
/// asynchronous abort, and the runaway unwinds with a catchable
/// RequestTimeout error at its next bytecode boundary. If the VM does not
/// honor the abort within AbortGraceMs (a wedged primitive — simulated by
/// the `serve.abort.stuck` fail point suppressing the abort), the
/// watchdog escalates: VirtualMachine::requestStop() makes the evaluation
/// return, the shard thread observes the stop flag and walks the same
/// crash/reboot ladder as `serve.shard.crash`. Requests whose deadline
/// already expired while queued are answered ERR without evaluating. The
/// `serve.request.stall` fail point rewrites an eval into a runaway
/// `[true] whileTrue.` for storm tests.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SHARD_H
#define MST_SERVE_SHARD_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/Journal.h"
#include "serve/RequestBatcher.h"
#include "serve/ServeStats.h"
#include "vkernel/IpcChannel.h"
#include "vm/VirtualMachine.h"

namespace mst {

class Checkpointer;

namespace serve {

struct ShardConfig {
  unsigned Index = 0;
  /// Prewarmed base image to boot from; empty = cold bootstrap.
  std::string BaseImage;
  /// This shard's checkpoint target; empty disables checkpointing (the
  /// shard then restarts from BaseImage / bootstrap).
  std::string CheckpointPath;
  /// Rotated generations kept per checkpoint.
  unsigned KeepGenerations = 2;
  /// Periodic auto-checkpoint interval; 0 = only explicit checkpoints.
  uint64_t CheckpointEveryMs = 0;
  /// Largest batch one IpcChannel send may carry.
  size_t MaxBatch = 256;
  /// How long the deadline watchdog waits for the VM to honor an armed
  /// abort before escalating to a shard reboot.
  uint64_t AbortGraceMs = 250;
  /// Write-ahead request journal path; empty disables journaling (the
  /// default — a crash then rolls back to the last checkpoint exactly as
  /// before PR 10). With a journal, the courier logs every Eval before
  /// its batch crosses the channel and the crash ladder replays past the
  /// checkpoint's covered position, so acknowledged requests survive.
  std::string JournalPath;
  /// Per-request deadline for replayed intents whose outcome record was
  /// lost — bounds how long a torn-tail runaway can wedge a reboot.
  uint64_t ReplayDeadlineMs = 5000;
  VmConfig Vm = VmConfig::multiprocessor(1);
};

class Shard {
public:
  /// Called by the courier with a completed batch (every request Done or
  /// marked failed). Runs on the courier thread; must not block long.
  using ResponseSink = std::function<void(Batch &&)>;

  Shard(ShardConfig Config, ResponseSink Sink, ServeStats &Stats);

  /// stop() must have run (the Server guarantees it).
  ~Shard();

  Shard(const Shard &) = delete;
  Shard &operator=(const Shard &) = delete;

  /// Spawns the shard and courier threads; the shard thread boots the VM.
  void start();

  /// Blocks until the first boot finished (or failed terminally).
  /// \returns true when the shard is serving.
  bool waitReady(double TimeoutSec);

  /// Enqueues \p R for this shard. \returns false once stopping (the
  /// caller answers the session with an error).
  bool submit(QueuedRequest R);

  /// Graceful stop: drains the batcher (queued requests still complete),
  /// retires the courier, shuts the channel down — the shard thread takes
  /// a final checkpoint and destroys its VM — and joins both threads.
  void stop();

  /// Point-in-time health, readable from any thread.
  struct Health {
    unsigned Index = 0;
    std::string State;       ///< "booting" | "serving" | "restarting" | "stopped"
    uint64_t Generation = 0; ///< boots completed (1 = first boot)
    uint64_t Restarts = 0;   ///< crash/restart cycles
    uint64_t Requests = 0;   ///< requests this shard completed
    uint64_t Batches = 0;    ///< batches this shard replied to
    uint64_t Checkpoints = 0;
    size_t QueueDepth = 0;   ///< requests waiting in the batcher
    uint64_t OldestQueuedMs = 0; ///< age of the oldest queued request
    uint64_t DeadlineExpired = 0; ///< deadlines that expired here
    uint64_t Aborts = 0;          ///< in-VM aborts the watchdog armed
    uint64_t AbortsEscalated = 0; ///< aborts escalated to a reboot
    uint64_t JournalBytes = 0;    ///< journal file size (0 = no journal)
    uint64_t Replayed = 0;        ///< intents re-applied across reboots
    uint64_t DedupSize = 0;       ///< cached (client, seq) responses
    uint64_t DedupHits = 0;       ///< retries answered from the cache
    std::string LastError;   ///< last boot/checkpoint failure, or empty
  };
  Health health();

  unsigned index() const { return Config.Index; }

private:
  void shardMain();
  void courierMain();
  void watchdogMain();
  void bootVm();
  void restartVm(const char *Why);
  void teardownVm();
  void processBatch(Batch &B);
  /// Runs one Eval request against the VM, with deadline/abort plumbing.
  /// \returns false when the watchdog escalated and the caller must
  /// reboot the VM.
  bool evalRequest(QueuedRequest &Q);
  void failFrom(Batch &B, size_t First);
  void setState(const char *S);
  void noteError(const std::string &E);

  // --- write-ahead journal plumbing (no-ops when JournalPath is empty) ---
  bool journaled() const { return Jrnl != nullptr; }
  /// Courier side, before send: answer dedup hits, refuse in-flight
  /// duplicates, append + fsync intent records for everything else.
  void prepareBatchJournal(Batch &B);
  /// Courier side, after reply: clear in-flight marks and cache
  /// completed (client, seq) responses.
  void finishBatchJournal(Batch &B);
  /// Shard side: record how \p Q resolved (also remembered in
  /// Q.JournalOutcome for the courier's dedup insert).
  void appendOutcomeFor(QueuedRequest &Q, Journal::Outcome Out);
  /// Shard side: fsync pending refusal outcomes (SkippedCrash /
  /// SkippedExpired / TimedOut). A refusal tells the client "this did
  /// not (fully) execute", so it must be durable before the response
  /// escapes — otherwise a torn tail would make replay re-execute a
  /// request the client was told to retry. Executed outcomes stay
  /// unsynced on purpose: losing one only degrades replay to a
  /// deterministic re-run.
  void syncRefusals();
  /// Shard side, after image load: re-apply journaled intents at or past
  /// \p Mark per their outcome records.
  void replayJournal(uint64_t Mark);
  /// Shard side, after a successful checkpoint rename: compact the
  /// journal below the oldest retained generation's mark.
  void commitJournalTruncate();
  /// Shard side, between batches: periodic checkpoint for journaled
  /// shards (their Checkpointer thread is disabled so the mark is always
  /// read at a batch boundary).
  void maybeAutoCheckpoint();

  ShardConfig Config;
  ResponseSink Sink;
  ServeStats &Stats;

  RequestBatcher Batcher;
  IpcChannel Channel;
  std::thread ShardThread;
  std::thread CourierThread;
  std::thread WatchdogThread;

  /// The abort protocol between the shard thread and its watchdog. The
  /// shard thread publishes the in-flight eval's deadline before running
  /// it and clears it (plus any unconsumed VM abort) after; the watchdog
  /// wakes on a coarse tick, arms the VM abort at expiry, and escalates
  /// after the grace period. Everything below AbortMutex is guarded by
  /// it; the VM pointer is only dereferenced by the watchdog while an
  /// in-flight deadline is published, which the shard thread only does
  /// while the VM is alive and evaluating.
  std::mutex AbortMutex;
  std::condition_variable WatchdogCv;
  uint64_t InFlightDeadlineNs = 0; ///< 0 = nothing abortable in flight
  uint64_t InFlightToken = 0;      ///< increments per published eval
  uint64_t ArmedToken = 0;         ///< token the watchdog armed/escalated
  bool AbortArmed = false;
  bool EscalateFired = false;
  bool StuckSim = false; ///< serve.abort.stuck drill: don't deliver
  uint64_t EscalateAtNs = 0;
  bool WatchdogStop = false; ///< set by stop() after the shard joined

  // Shard-thread-owned; other threads only observe the atomics below.
  std::unique_ptr<VirtualMachine> VM;
  std::unique_ptr<Checkpointer> Ck;

  /// Write-ahead journal (null when disabled). Opened in start() before
  /// either thread runs; after that the courier and shard threads take
  /// strictly alternating turns on it (the courier is blocked in send()
  /// whenever the shard appends, checkpoints, or truncates), and health()
  /// only reads counters through the journal's own mutex.
  std::unique_ptr<Journal> Jrnl;
  DedupTable Dedup;
  /// Journal mark the in-progress checkpoint covers; shard thread only
  /// (set right before every checkpointNow, read by its JournalMark
  /// callback on the same thread).
  uint64_t PendingMark = 0;
  /// A non-Executed outcome was appended since the last sync; shard
  /// thread only (courier and shard strictly alternate on the journal).
  bool RefusalPending = false;
  /// Marks of the last KeepGenerations+1 committed checkpoints, oldest
  /// first: truncation must stay below what the oldest *retained* rotated
  /// image still needs. Seeded with 0 so nothing is dropped until the
  /// rotation window has cycled once. Shard thread only.
  std::deque<uint64_t> PrevMarks;
  uint64_t NextAutoCkNs = 0; ///< shard thread only

  std::mutex ReadyMutex;
  std::condition_variable ReadyCv;
  bool BootDone = false; // guarded by ReadyMutex

  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Generation{0};
  std::atomic<uint64_t> RestartCount{0};
  std::atomic<uint64_t> RequestCount{0};
  std::atomic<uint64_t> BatchCount{0};
  std::atomic<uint64_t> CheckpointCount{0};
  std::atomic<uint64_t> DeadlineExpiredCount{0};
  std::atomic<uint64_t> AbortCount{0};
  std::atomic<uint64_t> EscalatedCount{0};
  std::atomic<uint64_t> ReplayedCount{0};
  std::atomic<uint64_t> DedupHitCount{0};
  /// Checkpoints taken by Checkpointers of earlier generations (each
  /// restart builds a fresh one). Shard thread only.
  uint64_t CkTakenBase = 0;

  std::mutex StateMutex;
  std::string State = "booting";   // guarded by StateMutex
  std::string LastError;           // guarded by StateMutex
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SHARD_H
