//===-- serve/ServeStats.h - Serving-layer telemetry ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's registry entries, gathered in one struct owned by
/// the Server so every shard/courier increments the same instances. All
/// of them aggregate by name through the process-wide Telemetry registry,
/// so they appear in writeTelemetryJson, the admin health report, and the
/// BENCH_*.json artifacts without further plumbing:
///
///   serve.requests          requests completed (counter)
///   serve.errors            requests answered ERR (counter)
///   serve.batches           batches carried through IpcChannels (counter)
///   serve.shard.restarts    shard crash/restart cycles (counter)
///   serve.sessions.active   open client sessions (gauge)
///   serve.batch.size        requests per batch (histogram, unit "reqs")
///   serve.latency           enqueue-to-completion latency (histogram, ns)
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SERVESTATS_H
#define MST_SERVE_SERVESTATS_H

#include <atomic>
#include <cstdint>

#include "obs/Histogram.h"
#include "obs/Telemetry.h"

namespace mst {
namespace serve {

struct ServeStats {
  Counter Requests{"serve.requests"};
  Counter Errors{"serve.errors"};
  Counter Batches{"serve.batches"};
  Counter Restarts{"serve.shard.restarts"};
  Histogram BatchSize{"serve.batch.size", "reqs"};
  Histogram Latency{"serve.latency"};

  std::atomic<uint64_t> ActiveSessions{0};
  std::atomic<uint64_t> TotalSessions{0};
  Gauge SessionsActive{"serve.sessions.active", [this] {
                         return ActiveSessions.load(
                             std::memory_order_relaxed);
                       }};
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SERVESTATS_H
