//===-- serve/ServeStats.h - Serving-layer telemetry ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's registry entries, gathered in one struct owned by
/// the Server so every shard/courier increments the same instances. All
/// of them aggregate by name through the process-wide Telemetry registry,
/// so they appear in writeTelemetryJson, the admin health report, and the
/// BENCH_*.json artifacts without further plumbing:
///
///   serve.requests          requests completed (counter)
///   serve.errors            requests answered ERR (counter)
///   serve.batches           batches carried through IpcChannels (counter)
///   serve.shard.restarts    shard crash/restart cycles (counter)
///   serve.deadline.expired  request deadlines that expired (counter)
///   serve.aborts            in-VM aborts delivered to runaways (counter)
///   serve.aborts.escalated  aborts the VM never honored: the watchdog
///                           escalated to a shard reboot (counter)
///   serve.shed              requests fast-failed "ERR overloaded" by
///                           admission control / the breaker (counter)
///   serve.breaker.open      circuit-breaker open transitions (counter)
///   serve.dedup.hits        retries answered from the dedup table
///                           instead of re-executing (counter)
///   serve.replayed          journaled requests re-applied during
///                           replay-on-reboot (counter)
///   serve.journal.appends   journal records written (counter)
///   serve.journal.fsyncs    batch-boundary journal fsyncs (counter)
///   serve.journal.append.failures  journal appends refused — the
///                           request was answered ERR, never executed
///   serve.journal.fsync.failures   journal fsyncs that failed (warn
///                           only: records are written, replay degrades
///                           gracefully)
///   serve.journal.truncations      checkpoint-commit compactions
///   serve.journal.torn      torn tails repaired at journal open
///   serve.sessions.active   open client sessions (gauge)
///   serve.queue.depth       requests queued across all batchers (gauge)
///   serve.batch.size        requests per batch (histogram, unit "reqs")
///   serve.latency           enqueue-to-completion latency (histogram, ns)
///   serve.queue.wait        enqueue-to-eval-start wait (histogram, ns)
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SERVESTATS_H
#define MST_SERVE_SERVESTATS_H

#include <atomic>
#include <cstdint>

#include "obs/Histogram.h"
#include "obs/Telemetry.h"

namespace mst {
namespace serve {

struct ServeStats {
  Counter Requests{"serve.requests"};
  Counter Errors{"serve.errors"};
  Counter Batches{"serve.batches"};
  Counter Restarts{"serve.shard.restarts"};
  Counter DeadlineExpired{"serve.deadline.expired"};
  Counter Aborts{"serve.aborts"};
  Counter AbortsEscalated{"serve.aborts.escalated"};
  Counter Shed{"serve.shed"};
  Counter BreakerOpen{"serve.breaker.open"};
  Counter DedupHits{"serve.dedup.hits"};
  Counter Replayed{"serve.replayed"};
  Counter JournalAppends{"serve.journal.appends"};
  Counter JournalFsyncs{"serve.journal.fsyncs"};
  Counter JournalAppendFailures{"serve.journal.append.failures"};
  Counter JournalFsyncFailures{"serve.journal.fsync.failures"};
  Counter JournalTruncations{"serve.journal.truncations"};
  Counter JournalTorn{"serve.journal.torn"};
  Histogram BatchSize{"serve.batch.size", "reqs"};
  Histogram Latency{"serve.latency"};
  Histogram QueueWait{"serve.queue.wait"};

  std::atomic<uint64_t> ActiveSessions{0};
  std::atomic<uint64_t> TotalSessions{0};
  Gauge SessionsActive{"serve.sessions.active", [this] {
                         return ActiveSessions.load(
                             std::memory_order_relaxed);
                       }};
  /// Requests sitting in batchers right now (pushed, not yet taken by a
  /// courier). Shards increment on successful push; couriers subtract
  /// whole batches.
  std::atomic<uint64_t> QueuedNow{0};
  Gauge QueueDepth{"serve.queue.depth", [this] {
                     return QueuedNow.load(std::memory_order_relaxed);
                   }};
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SERVESTATS_H
