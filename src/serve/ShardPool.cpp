//===-- serve/ShardPool.cpp - The multi-VM shard pool ---------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ShardPool.h"

#include "image/Snapshot.h"

using namespace mst;
using namespace mst::serve;

ShardPool::ShardPool(const PoolConfig &Config, Shard::ResponseSink Sink,
                     ServeStats &Stats) {
  unsigned N = Config.Shards ? Config.Shards : 1;
  Shards.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    ShardConfig C;
    C.Index = I;
    C.BaseImage = Config.BaseImage;
    if (!Config.DataDir.empty()) {
      C.CheckpointPath = shardImagePath(Config.DataDir, I);
      if (Config.Journal) {
        std::string P = shardImagePath(Config.DataDir, I);
        C.JournalPath = P.substr(0, P.size() - 6) + ".journal";
      }
    }
    C.ReplayDeadlineMs = Config.ReplayDeadlineMs;
    C.KeepGenerations = Config.KeepGenerations;
    C.CheckpointEveryMs = Config.CheckpointEveryMs;
    C.MaxBatch = Config.MaxBatch;
    C.AbortGraceMs = Config.AbortGraceMs;
    C.Vm = Config.Vm;
    Shards.push_back(std::make_unique<Shard>(C, Sink, Stats));
  }
}

bool ShardPool::start(double ReadyTimeoutSec, std::string &Error) {
  for (auto &S : Shards)
    S->start();
  for (auto &S : Shards) {
    if (!S->waitReady(ReadyTimeoutSec)) {
      Error = "shard " + std::to_string(S->index()) +
              " failed to become ready within " +
              std::to_string(ReadyTimeoutSec) + "s";
      return false;
    }
  }
  return true;
}

void ShardPool::stop() {
  if (Stopped)
    return;
  Stopped = true;
  for (auto &S : Shards)
    S->stop();
}

std::vector<Shard::Health> ShardPool::health() {
  std::vector<Shard::Health> Out;
  Out.reserve(Shards.size());
  for (auto &S : Shards)
    Out.push_back(S->health());
  return Out;
}
