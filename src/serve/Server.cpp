//===-- serve/Server.cpp - Socket front-end for the shard pool ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "obs/Telemetry.h"
#include "serve/Admin.h"
#include "serve/Protocol.h"

using namespace mst;
using namespace mst::serve;

namespace {
// Same clock the couriers stamp completions with — serve.latency is the
// difference, so the two sides must share an epoch.
uint64_t nowNs() { return Telemetry::nowNs(); }

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}
} // namespace

Server::Server(ServerConfig C) : Config(std::move(C)) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  // Shard couriers publish finished batches here; the pipe write makes
  // poll() return so the loop can flush them to sockets.
  Pool = std::make_unique<ShardPool>(
      Config.Pool,
      [this](Batch &&B) {
        {
          std::lock_guard<std::mutex> Lock(RespMutex);
          Responses.push_back(std::move(B));
        }
        wake();
      },
      Stats);
  if (!Pool->start(Config.ReadyTimeoutSec, Error)) {
    Pool->stop();
    return false;
  }
  Gates.assign(Pool->size(), ShardGate{});

  int Pipe[2];
  if (pipe(Pipe) != 0) {
    Error = "pipe: " + std::string(strerror(errno));
    Pool->stop();
    return false;
  }
  WakeRd = Pipe[0];
  WakeWr = Pipe[1];
  setNonBlocking(WakeRd);
  setNonBlocking(WakeWr);

  ListenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = "socket: " + std::string(strerror(errno));
    Pool->stop();
    return false;
  }
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Config.Port);
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0 ||
      listen(ListenFd, 1024) != 0) {
    Error = "bind/listen: " + std::string(strerror(errno));
    close(ListenFd);
    ListenFd = -1;
    Pool->stop();
    return false;
  }
  socklen_t Len = sizeof Addr;
  getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  setNonBlocking(ListenFd);

  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    Started = true;
    Stopped = false;
  }
  LoopThread = std::thread([this] { loopMain(); });
  return true;
}

void Server::requestDrain() {
  DrainRequested.store(true, std::memory_order_release);
  wake();
}

bool Server::waitStopped(double TimeoutSec) {
  std::unique_lock<std::mutex> Lock(StopMutex);
  return StopCv.wait_for(Lock,
                         std::chrono::duration<double>(TimeoutSec),
                         [this] { return !Started || Stopped; });
}

void Server::stop() {
  requestDrain();
  if (LoopThread.joinable())
    LoopThread.join();
  if (Pool)
    Pool->stop(); // no-op when the loop already stopped it
  if (ListenFd >= 0) {
    close(ListenFd);
    ListenFd = -1;
  }
  if (WakeRd >= 0) {
    close(WakeRd);
    close(WakeWr);
    WakeRd = WakeWr = -1;
  }
}

void Server::wake() {
  if (WakeWr < 0)
    return;
  char C = 'w';
  // A full pipe already guarantees a pending wakeup.
  (void)!write(WakeWr, &C, 1);
}

void Server::loopMain() {
  std::vector<pollfd> Fds;
  std::vector<uint64_t> FdSession; // parallel to Fds; 0 slots are special
  while (true) {
    if (!Draining && DrainRequested.load(std::memory_order_acquire)) {
      Draining = true;
      DrainDeadlineNs =
          nowNs() + static_cast<uint64_t>(Config.DrainTimeoutSec * 1e9);
      if (ListenFd >= 0) {
        close(ListenFd);
        ListenFd = -1;
      }
    }

    if (Draining) {
      // Close every session with nothing in flight and nothing to flush.
      // Past the drain deadline a straggler's queued requests will never
      // answer: give each of them a clean ERR, flush best-effort, then
      // force the close.
      bool DeadlineHit = nowNs() > DrainDeadlineNs;
      std::vector<uint64_t> Done;
      for (auto &[Id, S] : Sessions) {
        if (S.Pending == 0 && S.Out.empty()) {
          Done.push_back(Id);
          continue;
        }
        if (DeadlineHit) {
          for (uint64_t I = 0; I < S.Pending; ++I)
            S.Out += formatResponse(false, "",
                                    "server draining: deadline expired "
                                    "before the request completed");
          S.Pending = 0;
          Done.push_back(Id);
        }
      }
      for (uint64_t Id : Done) {
        auto It = Sessions.find(Id);
        if (It == Sessions.end())
          continue;
        if (!It->second.Out.empty())
          writeSession(It->second); // may close on a write error
        closeSession(Id);
      }
      if (Sessions.empty())
        break;
    }

    Fds.clear();
    FdSession.clear();
    Fds.push_back({WakeRd, POLLIN, 0});
    FdSession.push_back(0);
    if (ListenFd >= 0) {
      Fds.push_back({ListenFd, POLLIN, 0});
      FdSession.push_back(0);
    }
    for (auto &[Id, S] : Sessions) {
      short Ev = 0;
      if (!Draining && !S.Paused && !S.CloseAfterFlush)
        Ev |= POLLIN;
      if (!S.Out.empty())
        Ev |= POLLOUT;
      if (!Ev)
        continue; // response will arrive via the wake pipe
      Fds.push_back({S.Fd, Ev, 0});
      FdSession.push_back(Id);
    }

    int N = poll(Fds.data(), Fds.size(), Draining ? 50 : 500);
    if (N < 0 && errno != EINTR)
      break;

    // Wake pipe: drain it, then flush courier responses.
    if (Fds[0].revents & POLLIN) {
      char Buf[256];
      while (read(WakeRd, Buf, sizeof Buf) > 0)
        ;
    }
    deliverResponses();

    for (size_t I = 1; I < Fds.size(); ++I) {
      if (!Fds[I].revents)
        continue;
      if (Fds[I].fd == ListenFd) {
        acceptReady();
        continue;
      }
      uint64_t Id = FdSession[I];
      auto It = Sessions.find(Id);
      if (It == Sessions.end())
        continue; // closed earlier this iteration
      Session &S = It->second;
      if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        closeSession(Id);
        continue;
      }
      if (Fds[I].revents & POLLOUT)
        writeSession(S);
      if (Sessions.count(Id) && (Fds[I].revents & POLLIN))
        readSession(S);
    }
  }

  // Loop exit: everything drained (or deadline hit). Stop the pool —
  // each shard takes its final checkpoint on the way out.
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    close(It->second.Fd);
    Stats.ActiveSessions.fetch_sub(1, std::memory_order_relaxed);
    It = Sessions.erase(It);
  }
  FdToSession.clear();
  Pool->stop();
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    Stopped = true;
  }
  StopCv.notify_all();
}

void Server::acceptReady() {
  while (true) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN / transient
    setNonBlocking(Fd);
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
    uint64_t Id = NextSessionId++;
    Session S;
    S.Fd = Fd;
    S.Id = Id;
    S.ClientId = Id;
    S.Shard = Pool->shardFor(Id);
    Sessions.emplace(Id, std::move(S));
    FdToSession[Fd] = Id;
    Stats.ActiveSessions.fetch_add(1, std::memory_order_relaxed);
    Stats.TotalSessions.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::readSession(Session &S) {
  char Buf[16 * 1024];
  while (true) {
    ssize_t N = read(S.Fd, Buf, sizeof Buf);
    if (N > 0) {
      S.In.append(Buf, static_cast<size_t>(N));
      if (N == static_cast<ssize_t>(sizeof Buf) && S.In.size() < Config.MaxLine)
        continue;
    } else if (N == 0) {
      closeSession(S.Id);
      return;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      closeSession(S.Id);
      return;
    }
    break;
  }
  parseBuffered(S);
}

void Server::parseBuffered(Session &S) {
  std::string Line;
  bool TooLong = false;
  while (!S.CloseAfterFlush && !S.Paused &&
         nextLine(S.In, Line, Config.MaxLine, TooLong))
    handleLine(S, Line);
  if (TooLong) {
    S.Out += formatResponse(false, "", "request line too long");
    S.CloseAfterFlush = true;
  }
}

void Server::handleLine(Session &S, const std::string &Line) {
  if (Line.empty())
    return;
  Request R = parseRequestLine(Line);
  switch (R.K) {
  case Request::Kind::Bad:
    S.Out += formatResponse(false, R.Tag, R.Error);
    Stats.Errors.add(1);
    return;
  case Request::Kind::Quit:
    S.Out += formatResponse(true, R.Tag, "bye");
    S.CloseAfterFlush = true;
    return;
  case Request::Kind::Drain:
    S.Out += formatResponse(true, R.Tag, "draining");
    requestDrain();
    return;
  case Request::Kind::Session:
    // Re-binding with requests still in flight would split one client's
    // responses across two identities; refuse until the pipeline drains.
    if (S.Pending != 0) {
      S.Out += formatResponse(false, R.Tag,
                              "!session refused: requests still in flight");
      Stats.Errors.add(1);
      return;
    }
    S.ClientId = R.SessionBind;
    S.Bound = true;
    S.Shard = Pool->shardFor(R.SessionBind);
    S.Out += formatResponse(true, R.Tag,
                            "session bound to client " +
                                std::to_string(R.SessionBind) + " shard " +
                                std::to_string(S.Shard));
    return;
  case Request::Kind::Health: {
    std::vector<ShardGateView> Views(Gates.size());
    for (size_t I = 0; I < Gates.size(); ++I) {
      const ShardGate &G = Gates[I];
      Views[I].Breaker =
          G.State == ShardGate::Breaker::Open
              ? "open"
              : (G.State == ShardGate::Breaker::HalfOpen ? "half-open"
                                                         : "closed");
      Views[I].Outstanding = G.Outstanding;
      Views[I].ConsecTimeouts = G.ConsecTimeouts;
    }
    S.Out += formatResponse(true, R.Tag,
                            buildHealthJson(*Pool, Stats, &Views));
    return;
  }
  case Request::Kind::Kill: {
    if (R.KillShard >= Pool->size()) {
      S.Out += formatResponse(false, R.Tag, "no such shard");
      return;
    }
    QueuedRequest Q;
    Q.SessionId = S.Id;
    Q.Seq = S.NextSeq++;
    Q.Tag = R.Tag;
    Q.Kind = Request::Kind::Kill;
    Q.Shard = R.KillShard;
    Q.EnqueueNs = nowNs();
    if (!Pool->submit(R.KillShard, std::move(Q))) {
      S.Out += formatResponse(false, R.Tag, "shard unavailable");
      return;
    }
    ++Gates[R.KillShard].Outstanding;
    ++S.Pending;
    break;
  }
  case Request::Kind::Checkpoint: {
    // One response line per shard, via each shard's own queue.
    for (unsigned I = 0; I < Pool->size(); ++I) {
      QueuedRequest Q;
      Q.SessionId = S.Id;
      Q.Seq = S.NextSeq++;
      Q.Tag = R.Tag;
      Q.Kind = Request::Kind::Checkpoint;
      Q.Shard = I;
      Q.EnqueueNs = nowNs();
      if (Pool->submit(I, std::move(Q))) {
        ++Gates[I].Outstanding;
        ++S.Pending;
      } else {
        S.Out += formatResponse(false, R.Tag,
                                "shard " + std::to_string(I) + " unavailable");
      }
    }
    break;
  }
  case Request::Kind::Eval: {
    ShardGate &G = Gates[S.Shard];
    // Breaker: open -> shed; open-long-enough -> half-open (one probe).
    if (G.State == ShardGate::Breaker::Open &&
        nowNs() >= G.OpenUntilNs) {
      G.State = ShardGate::Breaker::HalfOpen;
      G.ProbeInFlight = false;
    }
    if (G.State == ShardGate::Breaker::Open ||
        (G.State == ShardGate::Breaker::HalfOpen && G.ProbeInFlight)) {
      S.Out += formatResponse(false, R.Tag,
                              "overloaded: shard " +
                                  std::to_string(S.Shard) +
                                  " circuit breaker open; retry later");
      Stats.Shed.add();
      Stats.Errors.add();
      return;
    }
    // Admission control: a full per-shard budget fast-fails instead of
    // growing the queue without bound.
    if (Config.QueueBudget != 0 && G.Outstanding >= Config.QueueBudget) {
      S.Out += formatResponse(false, R.Tag,
                              "overloaded: shard " +
                                  std::to_string(S.Shard) +
                                  " queue budget exhausted; retry later");
      Stats.Shed.add();
      Stats.Errors.add();
      return;
    }
    if (R.HasSeq && !S.Bound) {
      S.Out += formatResponse(false, R.Tag,
                              "?seq= requires a !session-bound connection");
      Stats.Errors.add(1);
      return;
    }
    QueuedRequest Q;
    Q.SessionId = S.Id;
    Q.ClientId = S.ClientId;
    Q.Seq = S.NextSeq++;
    if (R.HasSeq) {
      Q.HasSeq = true;
      Q.ClientSeq = R.Seq;
    }
    Q.Tag = R.Tag;
    Q.Kind = Request::Kind::Eval;
    Q.Source = std::move(R.Source);
    Q.Shard = S.Shard;
    Q.EnqueueNs = nowNs();
    uint64_t DeadlineMs =
        R.DeadlineMs != 0 ? R.DeadlineMs : Config.RequestDeadlineMs;
    if (DeadlineMs != 0)
      Q.DeadlineNs = Q.EnqueueNs + DeadlineMs * 1000000;
    uint64_t Seq = Q.Seq;
    if (!Pool->submit(S.Shard, std::move(Q))) {
      S.Out += formatResponse(false, R.Tag, "shard unavailable");
      Stats.Errors.add(1);
      return;
    }
    ++G.Outstanding;
    if (G.State == ShardGate::Breaker::HalfOpen) {
      G.ProbeInFlight = true;
      G.ProbeSession = S.Id;
      G.ProbeSeq = Seq;
    }
    ++S.Pending;
    break;
  }
  }
  if (S.Pending >= Config.MaxPipeline)
    S.Paused = true;
}

void Server::writeSession(Session &S) {
  while (!S.Out.empty()) {
    ssize_t N = write(S.Fd, S.Out.data(), S.Out.size());
    if (N > 0) {
      S.Out.erase(0, static_cast<size_t>(N));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return;
    closeSession(S.Id);
    return;
  }
  // `!quit` honors pipelining: the session closes only after every
  // already-submitted request has answered and flushed.
  if (S.CloseAfterFlush && S.Pending == 0)
    closeSession(S.Id);
}

void Server::closeSession(uint64_t Id) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return;
  close(It->second.Fd);
  FdToSession.erase(It->second.Fd);
  Sessions.erase(It);
  Stats.ActiveSessions.fetch_sub(1, std::memory_order_relaxed);
}

void Server::deliverResponses() {
  std::deque<Batch> Ready;
  {
    std::lock_guard<std::mutex> Lock(RespMutex);
    Ready.swap(Responses);
  }
  for (Batch &B : Ready) {
    for (QueuedRequest &Q : B) {
      // Gate bookkeeping first — it must happen even when the session
      // already left (the shard did the work either way).
      if (Q.Shard < Gates.size()) {
        ShardGate &G = Gates[Q.Shard];
        if (G.Outstanding)
          --G.Outstanding;
        if (Q.Kind == Request::Kind::Eval) {
          bool Probe = G.ProbeInFlight && G.ProbeSession == Q.SessionId &&
                       G.ProbeSeq == Q.Seq;
          if (Probe)
            G.ProbeInFlight = false;
          if (Q.TimedOut) {
            ++G.ConsecTimeouts;
            bool Trip = G.State == ShardGate::Breaker::Closed &&
                        Config.BreakerThreshold != 0 &&
                        G.ConsecTimeouts >= Config.BreakerThreshold;
            if (Trip ||
                (Probe && G.State == ShardGate::Breaker::HalfOpen)) {
              G.State = ShardGate::Breaker::Open;
              G.OpenUntilNs =
                  nowNs() + Config.BreakerOpenMs * 1000000;
              G.ConsecTimeouts = 0;
              Stats.BreakerOpen.add();
            }
          } else {
            G.ConsecTimeouts = 0;
            if (Probe && G.State == ShardGate::Breaker::HalfOpen)
              G.State = ShardGate::Breaker::Closed;
          }
        }
      }
      auto It = Sessions.find(Q.SessionId);
      if (It == Sessions.end())
        continue; // session left before its answer arrived
      Session &S = It->second;
      S.Out += formatResponse(Q.Ok, Q.Tag, Q.Value);
      if (S.Pending)
        --S.Pending;
      if (S.Paused && S.Pending < Config.MaxPipeline / 2) {
        S.Paused = false;
        // The client may have nothing more to send: lines it pipelined
        // past the cap are sitting parsed-less in S.In. Resume here.
        parseBuffered(S);
      }
      if (!Sessions.count(Q.SessionId))
        continue;
      // Opportunistic flush; POLLOUT picks up whatever does not fit.
      writeSession(S);
    }
  }
}
