//===-- serve/Client.cpp - Blocking line-protocol client ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/Protocol.h"

using namespace mst;
using namespace mst::serve;

bool Client::connect(uint16_t Port) {
  disconnect();
  Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
    disconnect();
    return false;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  return true;
}

void Client::disconnect() {
  if (Fd >= 0)
    close(Fd);
  Fd = -1;
  In.clear();
}

bool Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = write(Fd, Out.data() + Off, Out.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool Client::recvLine(std::string &Line, double TimeoutSec) {
  if (Fd < 0)
    return false;
  bool TooLong = false;
  while (!nextLine(In, Line, ~size_t{0}, TooLong)) {
    pollfd P{Fd, POLLIN, 0};
    int R = poll(&P, 1, static_cast<int>(TimeoutSec * 1000));
    if (R <= 0)
      return false; // timeout
    char Buf[16 * 1024];
    ssize_t N = read(Fd, Buf, sizeof Buf);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false; // closed
    }
    In.append(Buf, static_cast<size_t>(N));
  }
  return true;
}

bool Client::eval(const std::string &Source, bool &Ok, std::string &Value,
                  double TimeoutSec) {
  if (!sendLine(escapeLine(Source)))
    return false;
  std::string Line, Tag;
  if (!recvLine(Line, TimeoutSec))
    return false;
  return parseResponseLine(Line, Ok, Tag, Value);
}
