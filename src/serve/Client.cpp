//===-- serve/Client.cpp - Blocking line-protocol client ------------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <thread>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/Protocol.h"

using namespace mst;
using namespace mst::serve;

bool Client::connect(uint16_t P) {
  disconnect();
  Port = P;
  Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
    disconnect();
    return false;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  return true;
}

void Client::disconnect() {
  if (Fd >= 0)
    close(Fd);
  Fd = -1;
  In.clear();
}

bool Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = write(Fd, Out.data() + Off, Out.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool Client::recvLine(std::string &Line, double TimeoutSec) {
  if (Fd < 0)
    return false;
  // One absolute deadline across the whole loop: partial reads must not
  // restart the budget, and an EINTR-interrupted poll() is a retry, not
  // a timeout.
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(TimeoutSec));
  bool TooLong = false;
  while (!nextLine(In, Line, ~size_t{0}, TooLong)) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - std::chrono::steady_clock::now());
    if (Left.count() <= 0)
      return false; // timeout
    pollfd P{Fd, POLLIN, 0};
    int R = poll(&P, 1, static_cast<int>(Left.count()));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false; // poll failure
    }
    if (R == 0)
      return false; // timeout
    char Buf[16 * 1024];
    ssize_t N = read(Fd, Buf, sizeof Buf);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false; // closed
    }
    In.append(Buf, static_cast<size_t>(N));
  }
  return true;
}

bool Client::evalSeq(const std::string &Source, bool HasSeq, uint64_t Seq,
                     bool &Ok, std::string &Value, double TimeoutSec) {
  std::string Line = HasSeq ? "@?seq=" + std::to_string(Seq) + " " +
                                  escapeLine(Source)
                            : escapeLine(Source);
  if (!sendLine(Line))
    return false;
  std::string Resp, Tag;
  if (!recvLine(Resp, TimeoutSec))
    return false;
  return parseResponseLine(Resp, Ok, Tag, Value);
}

bool Client::eval(const std::string &Source, bool &Ok, std::string &Value,
                  double TimeoutSec) {
  bool HasSeq = Bound;
  uint64_t Seq = HasSeq ? NextClientSeq++ : 0;
  return evalSeq(Source, HasSeq, Seq, Ok, Value, TimeoutSec);
}

bool Client::bindSession(uint64_t Id, double TimeoutSec) {
  if (!sendLine("!session " + std::to_string(Id)))
    return false;
  std::string Line, Tag, Value;
  bool Ok = false;
  if (!recvLine(Line, TimeoutSec) ||
      !parseResponseLine(Line, Ok, Tag, Value) || !Ok)
    return false;
  Bound = true;
  ClientId = Id;
  return true;
}

bool Client::evalRetry(const std::string &Source, bool &Ok,
                       std::string &Value, double TimeoutSec,
                       unsigned MaxAttempts, uint64_t BaseBackoffMs) {
  // Deterministic-ish jitter source: decorrelates concurrent clients
  // without needing a real RNG (splitmix on fd + attempt).
  uint64_t Seed = static_cast<uint64_t>(Fd) * 0x9e3779b97f4a7c15ULL ^
                  reinterpret_cast<uintptr_t>(this);
  // A bound client allocates the dedup key ONCE: every retry — including
  // reconnect-after-drop — resends the same seq, so a request whose ack
  // was lost in flight is answered from the shard's dedup table instead
  // of executed a second time.
  bool HasSeq = Bound;
  uint64_t Seq = HasSeq ? NextClientSeq++ : 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    if (!evalSeq(Source, HasSeq, Seq, Ok, Value, TimeoutSec)) {
      // Transport failure. Unbound, a retry could double-execute a
      // request the server already ran — surface the failure. Bound, the
      // seq makes the resend safe: reconnect, rebind, try again.
      if (!Bound || Attempt + 1 >= MaxAttempts)
        return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (!connect(Port) || !bindSession(ClientId, TimeoutSec)) {
        if (Attempt + 2 >= MaxAttempts)
          return false;
        continue; // server may still be rebooting the shard
      }
      continue;
    }
    if (Ok || Value.rfind("overloaded", 0) != 0)
      return true;
    if (Attempt + 1 >= MaxAttempts)
      return true; // shed on every attempt: surface the last ERR
    // Jittered exponential backoff in [Base/2, Base) * 2^Attempt, capped
    // so a long retry chain stays responsive to operator Ctrl-C.
    uint64_t Window = BaseBackoffMs << (Attempt < 10 ? Attempt : 10);
    if (Window > 2000)
      Window = 2000;
    Seed += 0x9e3779b97f4a7c15ULL + Attempt;
    uint64_t Z = Seed;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    uint64_t SleepMs = Window / 2 + Z % (Window / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }
}
