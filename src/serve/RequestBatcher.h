//===-- serve/RequestBatcher.h - Per-shard request batching -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-shard request queue and its batching discipline. The socket
/// front-end pushes parsed requests here from the event loop; the shard's
/// courier thread drains *everything queued* as one batch and carries it
/// through the shard's IpcChannel in a single Send. Because the courier
/// keeps exactly one batch outstanding (V's Send blocks until the shard
/// Replies), batching is self-tuning: while the shard chews on batch N,
/// new requests pile up here and become batch N+1 — light load degrades
/// to batch-of-one dispatch, heavy load amortizes the channel crossing
/// over hundreds of requests. FIFO order is preserved end to end, which
/// is what makes per-session response ordering trivial.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_REQUESTBATCHER_H
#define MST_SERVE_REQUESTBATCHER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "serve/Protocol.h"

namespace mst {
namespace serve {

/// One request in flight between the front-end and a shard. The courier
/// owns the containing batch; the shard fills in the result fields and
/// sets Done before replying.
struct QueuedRequest {
  uint64_t SessionId = 0;
  uint64_t Seq = 0;      ///< per-session sequence (FIFO check support)
  /// Durable client identity for journaling/dedup. Defaults to the
  /// connection's SessionId; a `!session ID`-bound connection carries its
  /// declared id, which survives reconnects.
  uint64_t ClientId = 0;
  /// The client stamped an explicit `?seq=N` (bound sessions only):
  /// ClientSeq keys the dedup table so a resend is answered, not re-run.
  bool HasSeq = false;
  uint64_t ClientSeq = 0;
  std::string Tag;       ///< protocol echo tag
  Request::Kind Kind = Request::Kind::Eval;
  std::string Source;
  uint64_t EnqueueNs = 0;
  /// Absolute completion deadline (Telemetry::nowNs time); 0 = none.
  /// Stamped by the front-end (per-request `?deadline=MS` or the server
  /// default); the shard fast-fails requests already past it and arms
  /// the in-VM abort for the rest.
  uint64_t DeadlineNs = 0;
  /// Which shard the front-end pinned this request to (admission
  /// bookkeeping on the response path).
  unsigned Shard = 0;

  // Journal bookkeeping (courier/shard threads; see serve/Journal.h).
  /// Intent record id assigned by the courier's WAL append; 0 = not
  /// journaled (journal off, admin request, or dedup hit).
  uint64_t JournalId = 0;
  /// Outcome as recorded in the journal (Journal::Outcome numeric value);
  /// 0 = none. The courier reads it after Reply to decide dedup inserts.
  uint8_t JournalOutcome = 0;

  // Result (written by the shard thread, read after Reply).
  bool Done = false;
  bool Ok = false;
  /// The request was unwound (or shed) by its deadline — breaker food.
  bool TimedOut = false;
  std::string Value;
};

using Batch = std::vector<QueuedRequest>;

/// MPSC queue: any thread pushes, one courier drains batches.
class RequestBatcher {
public:
  /// Enqueues \p R. \returns false (dropping the request) once closed.
  bool push(QueuedRequest R);

  /// Blocks until at least one request is queued or the batcher closes,
  /// then moves up to \p Max requests into \p Out (cleared first), oldest
  /// first. \returns false only when closed *and* drained — the courier's
  /// exit condition; every request pushed before close() is still
  /// delivered.
  bool takeBatch(Batch &Out, size_t Max);

  /// Closes the queue: push() starts refusing, takeBatch() drains what
  /// remains and then returns false. Idempotent.
  void close();

  /// \returns the current queue depth (racy; telemetry/health use only).
  size_t depth();

  /// \returns the EnqueueNs of the oldest queued request, or 0 when the
  /// queue is empty (racy; telemetry/health use only).
  uint64_t oldestEnqueueNs();

private:
  std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<QueuedRequest> Queue;
  bool Closed = false;
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_REQUESTBATCHER_H
