//===-- serve/Session.h - One client connection -----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted connection = one session, pinned to a shard for its whole
/// life (SessionId % shards): every doIt a session evaluates sees the
/// same image, so `Smalltalk at: #X put:` in request 1 is visible to
/// request 2. Sessions are owned and touched exclusively by the event-
/// loop thread; couriers hand responses over through the Server's queue,
/// never through this struct.
///
/// Flow control: a session may pipeline requests, but past MaxPipeline
/// outstanding the server parks its POLLIN (Paused) until responses
/// drain below half the cap — one slow session backs up its own socket,
/// not the shard pool.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_SESSION_H
#define MST_SERVE_SESSION_H

#include <cstdint>
#include <string>

namespace mst {
namespace serve {

struct Session {
  int Fd = -1;
  uint64_t Id = 0;
  unsigned Shard = 0;     ///< pinned shard index
  /// Durable client identity for the dedup table. Defaults to the
  /// connection's Id; `!session N` overwrites it (and re-pins Shard to
  /// N % shards) so a reconnecting client lands on the same shard with
  /// the same dedup history.
  uint64_t ClientId = 0;
  bool Bound = false;     ///< `!session` seen; `?seq=` is honored
  std::string In;         ///< bytes read, not yet framed into lines
  std::string Out;        ///< response bytes not yet written
  uint64_t NextSeq = 0;   ///< next request sequence number
  uint64_t Pending = 0;   ///< requests submitted, responses not yet queued
  bool Paused = false;    ///< POLLIN parked (pipeline cap reached)
  bool CloseAfterFlush = false; ///< !quit / fatal protocol error
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_SESSION_H
