//===-- serve/Protocol.h - Line-delimited request protocol ------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's wire protocol: newline-delimited requests and
/// responses over a byte stream, chosen so `nc localhost PORT` is a
/// fully-functional client. One request per line:
///
///   3 + 4 * 2                  evaluate an expression
///   @t7 3 + 4 * 2              same, tagged: the response echoes @t7
///   @t7?deadline=50 3 + 4 * 2  same, with a 50ms deadline: past it the
///                              request answers ERR RequestTimeout (the
///                              response echoes the bare @t7)
///   @?deadline=50 3 + 4 * 2    anonymous deadline (no tag echoed)
///   @t7?seq=12 3 + 4 * 2       same, with an explicit client sequence
///                              number (requires a `!session`-bound
///                              connection): a resend of an already
///                              completed (id, seq) is answered from the
///                              dedup table instead of re-executed.
///                              Options combine: `@t7?deadline=50&seq=12`
///   !session 41                bind this connection to durable client
///                              id 41: re-pins the session to shard
///                              41 % N, and `?seq=` evaluations become
///                              exactly-once across reconnects
///   !health                    admin: one-line aggregate JSON report
///   !checkpoint                admin: checkpoint every shard (one
///                              response line per shard)
///   !kill 2                    admin: crash shard 2 (it restarts from
///                              its last committed checkpoint)
///   !drain                     admin: begin graceful server drain
///   !quit                      close this session
///
/// Responses are `OK [@tag ]value` or `ERR [@tag ]message`. Values and
/// sources travel through escapeLine/unescapeLine (`\n` `\r` `\\`), so a
/// multi-line doIt or a result containing newlines still fits one line.
/// Responses to one session's evaluations always arrive in request order:
/// a session is pinned to a shard and batches preserve FIFO. `!health`,
/// `!drain`, and `!quit` answer out of band (immediately, on the event
/// loop — health must work even when a shard is wedged), so their
/// responses may overtake evaluations still in flight; tag requests if
/// you pipeline across the two kinds. `!quit` still closes only after
/// every pipelined response has been delivered.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_PROTOCOL_H
#define MST_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace mst {
namespace serve {

/// A parsed request line.
struct Request {
  enum class Kind : uint8_t {
    Eval,       ///< evaluate Source on the session's shard
    Session,    ///< !session ID — bind a durable client identity
    Health,     ///< !health — aggregate JSON report
    Checkpoint, ///< !checkpoint — checkpoint every shard
    Kill,       ///< !kill N — crash shard KillShard (restart from snapshot)
    Drain,      ///< !drain — begin graceful server drain
    Quit,       ///< !quit — close the session
    Bad,        ///< unparseable; Error holds the diagnostic
  };
  Kind K = Kind::Eval;
  std::string Tag;    ///< "@name" echo token, or empty
  std::string Source; ///< unescaped Smalltalk source (Eval)
  unsigned KillShard = 0;
  /// Per-request deadline from `?deadline=MS` (milliseconds from
  /// receipt); 0 = use the server default.
  uint64_t DeadlineMs = 0;
  /// Explicit client sequence from `?seq=N` (dedup key on a bound
  /// session).
  bool HasSeq = false;
  uint64_t Seq = 0;
  /// Durable client id from `!session ID`.
  uint64_t SessionBind = 0;
  std::string Error;  ///< diagnostic when K == Bad
};

/// Escapes `\\`, `\n`, `\r` so \p S fits on one protocol line.
std::string escapeLine(const std::string &S);

/// Inverse of escapeLine. Unknown escapes pass through verbatim.
std::string unescapeLine(const std::string &S);

/// Parses one request line (without its terminating newline).
Request parseRequestLine(const std::string &Line);

/// Renders a response line, newline included.
std::string formatResponse(bool Ok, const std::string &Tag,
                           const std::string &Value);

/// Parses a response line (client/test side). \returns false when the
/// line is not a well-formed response.
bool parseResponseLine(const std::string &Line, bool &Ok, std::string &Tag,
                       std::string &Value);

/// Splits the next `\n`-terminated line off the front of \p Buf into
/// \p Line (terminator removed, trailing `\r` stripped). \returns false
/// when \p Buf holds no complete line. When the unterminated tail already
/// exceeds \p MaxLine bytes, sets \p TooLong (the connection should be
/// dropped — an unframed client would otherwise grow the buffer without
/// bound).
bool nextLine(std::string &Buf, std::string &Line, size_t MaxLine,
              bool &TooLong);

} // namespace serve
} // namespace mst

#endif // MST_SERVE_PROTOCOL_H
