//===-- serve/Journal.h - Per-shard write-ahead request journal -*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's durability gap, closed: PR 8's crash ladder reboots
/// a dead shard from its last committed checkpoint, which silently drops
/// every request acknowledged after that checkpoint. The journal is a
/// per-shard append-only write-ahead log that makes acknowledged requests
/// reproducible across any crash:
///
///  - **Intent records** are appended by the courier for every Eval in a
///    batch and fsynced once per batch *before* the batch crosses the
///    IpcChannel — piggybacking the sync on the batch boundary keeps the
///    steady-state cost to one fsync per channel crossing.
///  - **Outcome records** are appended by the shard thread as each request
///    resolves (Executed / TimedOut / SkippedExpired / SkippedCrash) and
///    ride the *next* batch's fsync. A process crash can tear them off;
///    replay then re-executes the surviving intent deterministically.
///  - **Replay** (Shard::bootVm): after the crash ladder restores the
///    newest loadable checkpoint, the shard re-applies every journaled
///    intent at or past that checkpoint's covered journal position —
///    Executed intents re-execute (the checkpoint predates their
///    effects), TimedOut outcomes short-circuit to their recorded ERR
///    (never re-run a runaway), Skipped* outcomes are dropped, and
///    intents with no outcome re-execute under a bounded deadline. Only
///    then does the shard report Ready.
///  - **Truncation** is tied to checkpoint commit: a checkpoint records
///    the journal high-water mark it covers (the JPOS snapshot section),
///    and only after its rename lands is the journal compacted below the
///    oldest *retained* generation's mark — so every rotated fallback
///    image still has the journal suffix it needs.
///
/// Record framing is CRC-32 per record; open() scans to the last whole
/// record and truncates a torn tail (the `journal.tear` chaos point
/// manufactures such tails). Positions are *logical*: the file header
/// carries a base offset, so compaction preserves every surviving
/// record's position and checkpoint marks stay valid across truncations.
///
/// The DedupTable is the client-visible half of exactly-once: bound
/// sessions (`!session ID`) stamp an explicit `?seq=N` on evaluations;
/// completed (ClientId, Seq) responses are cached in a bounded table so a
/// retry after a dropped connection is answered from the cache instead of
/// re-executed (`serve.dedup.hits`).
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_JOURNAL_H
#define MST_SERVE_JOURNAL_H

#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mst {
namespace serve {

class Journal {
public:
  /// How a journaled request resolved. Replay dispatches on this.
  enum class Outcome : uint8_t {
    None = 0,           ///< no outcome record (crash before resolution)
    Executed = 1,       ///< ran to completion; replay re-executes
    SkippedExpired = 2, ///< deadline expired while queued; never ran
    SkippedCrash = 3,   ///< crashed out of its batch; never ran
    TimedOut = 4,       ///< aborted/escalated mid-run; replay answers
                        ///< the recorded ERR without re-running
  };

  /// One intent joined with its outcome (if any), as scan() returns it.
  struct Entry {
    uint64_t RecordId = 0; ///< journal-unique id tying intent to outcome
    uint64_t ClientId = 0;
    uint64_t Seq = 0;
    bool HasSeq = false; ///< explicit client seq: dedup-cache the result
    std::string Source;
    uint64_t Pos = 0; ///< logical position of the intent record
    Outcome Out = Outcome::None;
    bool Ok = false;
    std::string Value; ///< recorded response (Executed / TimedOut)
  };

  Journal() = default;
  ~Journal() { close(); }

  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens (creating if absent) the journal at \p Path, scanning every
  /// record: a torn or corrupt tail is truncated back to the last whole
  /// record (counted in tornRepairs()). \returns false with \p Error set
  /// when the file cannot be opened or its header is unusable.
  bool open(const std::string &Path, std::string &Error);

  void close();

  bool isOpen() const { return Fd >= 0; }

  /// Appends one intent record (not yet durable — call sync() at the
  /// batch boundary). \p RecordId receives the journal-unique id the
  /// outcome record must echo. The `journal.append.fail` chaos point
  /// fails this deterministically. \returns false with \p Error set.
  bool appendIntent(uint64_t ClientId, uint64_t Seq, bool HasSeq,
                    const std::string &Source, uint64_t &RecordId,
                    std::string &Error);

  /// Appends the outcome record for \p RecordId. Durable at the next
  /// sync(); a torn outcome degrades to replay-by-re-execution.
  bool appendOutcome(uint64_t RecordId, uint64_t ClientId, uint64_t Seq,
                     bool HasSeq, Outcome Out, bool Ok,
                     const std::string &Value, std::string &Error);

  /// fsyncs everything appended so far — the once-per-batch durability
  /// point. The `journal.fsync.fail` chaos point fails it; callers treat
  /// that as a warning (the records are written; only power loss can
  /// lose them, and replay re-derives what it can).
  bool sync(std::string &Error);

  /// Re-reads the file and returns every intent with logical position
  /// >= \p FromPos, joined with its outcome record (outcomes always
  /// follow their intent, so the scan window sees them). Stops cleanly
  /// at a torn tail.
  bool scan(uint64_t FromPos, std::vector<Entry> &Out,
            std::string &Error) const;

  /// Compacts away every record below logical position \p Mark via the
  /// snapshot write protocol (unique tmp + fsync + rename; a crash
  /// leaves either the old or the new file). Positions are preserved:
  /// the new file's base is \p Mark. Call only after the checkpoint
  /// covering \p Mark has committed (its rename landed), and only from
  /// the shard thread while the courier is parked. The
  /// `journal.truncate.fail` chaos point fails it; the journal then just
  /// stays longer — replay remains correct.
  bool truncateBelow(uint64_t Mark, std::string &Error);

  /// Logical end position: Base + bytes appended since. The checkpoint
  /// mark is this value, captured when every appended record's effect is
  /// in the image being saved.
  uint64_t endPos() const;

  /// Physical file size right now (health reporting).
  uint64_t bytes() const;

  /// Torn-tail repairs performed by open().
  uint64_t tornRepairs() const { return Torn; }

  /// Test hook for the `journal.tear` drill: truncates up to \p MaxCut
  /// bytes off the *unsynced* tail (seeded by \p Salt), modeling what a
  /// power cut leaves — synced records can never tear. \returns the
  /// bytes removed.
  uint64_t tearTail(uint64_t MaxCut, uint64_t Salt);

private:
  bool appendRecord(uint8_t Kind, const std::vector<uint8_t> &Payload,
                    std::string &Error);

  mutable std::mutex Mutex;
  std::string Path;
  int Fd = -1;
  uint64_t Base = 0;       ///< logical position of physical offset 0 past header
  uint64_t FileBytes = 0;  ///< current physical size
  uint64_t SyncedBytes = 0; ///< physical size at the last sync()
  uint64_t NextRecordId = 1;
  uint64_t Torn = 0;
};

/// Bounded per-client response cache keyed (ClientId, Seq): the serving
/// layer's exactly-once memory. Oldest entries per client and oldest
/// clients overall are evicted FIFO, so a runaway client cannot grow it
/// without bound. Also tracks in-flight (ClientId, Seq) pairs so a retry
/// racing its original is refused instead of double-journaled.
class DedupTable {
public:
  struct Response {
    bool Ok = false;
    bool TimedOut = false;
    std::string Value;
  };

  explicit DedupTable(size_t MaxClients = 1024, size_t MaxPerClient = 128)
      : MaxClients(MaxClients), MaxPerClient(MaxPerClient) {}

  /// \returns true and fills \p R when (Client, Seq) has a cached
  /// response.
  bool lookup(uint64_t Client, uint64_t Seq, Response &R);

  /// Caches the response for (Client, Seq), evicting per the bounds.
  void insert(uint64_t Client, uint64_t Seq, Response R);

  /// \returns false when the pair is already in flight (the caller must
  /// refuse the duplicate).
  bool markInFlight(uint64_t Client, uint64_t Seq);
  void clearInFlight(uint64_t Client, uint64_t Seq);

  /// Cached responses across all clients (health reporting).
  size_t size();

private:
  struct ClientEntry {
    std::unordered_map<uint64_t, Response> BySeq;
    std::deque<uint64_t> Order; ///< insertion order for per-client FIFO
  };

  std::mutex Mutex;
  size_t MaxClients;
  size_t MaxPerClient;
  size_t Entries = 0;
  std::unordered_map<uint64_t, ClientEntry> Clients;
  std::list<uint64_t> ClientOrder; ///< client insertion order (FIFO)
  std::unordered_set<uint64_t> InFlight; ///< (Client<<20 ^ Seq) — see .cpp
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_JOURNAL_H
