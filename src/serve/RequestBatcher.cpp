//===-- serve/RequestBatcher.cpp - Per-shard request batching -------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestBatcher.h"

#include "vkernel/Chaos.h"

using namespace mst;
using namespace mst::serve;

bool RequestBatcher::push(QueuedRequest R) {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    if (Closed)
      return false;
    Queue.push_back(std::move(R));
  }
  chaos::point("serve.batcher.push");
  Cv.notify_one();
  return true;
}

bool RequestBatcher::takeBatch(Batch &Out, size_t Max) {
  Out.clear();
  std::unique_lock<std::mutex> Lock(Mutex);
  Cv.wait(Lock, [this] { return Closed || !Queue.empty(); });
  if (Queue.empty())
    return false; // closed and drained
  size_t N = Queue.size() < Max ? Queue.size() : Max;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    Out.push_back(std::move(Queue.front()));
    Queue.pop_front();
  }
  return true;
}

void RequestBatcher::close() {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Closed = true;
  }
  Cv.notify_all();
}

size_t RequestBatcher::depth() {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Queue.size();
}

uint64_t RequestBatcher::oldestEnqueueNs() {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Queue.empty() ? 0 : Queue.front().EnqueueNs;
}
