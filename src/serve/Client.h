//===-- serve/Client.h - Blocking line-protocol client ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serving protocol, shared by the
/// serve tests and bench_serve's traffic generators. One Client = one
/// session; sendLine/recvLine speak raw protocol lines, eval() wraps a
/// round trip. Not used by the server itself — the server side is all
/// non-blocking.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_CLIENT_H
#define MST_SERVE_CLIENT_H

#include <cstdint>
#include <string>

namespace mst {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept
      : Fd(O.Fd), In(std::move(O.In)), Port(O.Port), Bound(O.Bound),
        ClientId(O.ClientId), NextClientSeq(O.NextClientSeq) {
    O.Fd = -1;
  }

  /// Connects to 127.0.0.1:\p Port. \returns false on failure.
  bool connect(uint16_t Port);

  void disconnect();

  bool connected() const { return Fd >= 0; }

  /// Sends one raw protocol line (newline appended). Blocks until
  /// written. \returns false on a broken connection.
  bool sendLine(const std::string &Line);

  /// Blocks until one full response line arrives (or the peer closes /
  /// \p TimeoutSec expires). \returns false on close or timeout.
  bool recvLine(std::string &Line, double TimeoutSec = 30.0);

  /// One eval round trip: sends \p Source, waits for the response.
  /// \returns false on transport failure; \p Ok and \p Value carry the
  /// protocol-level result.
  bool eval(const std::string &Source, bool &Ok, std::string &Value,
            double TimeoutSec = 30.0);

  /// Binds this connection to durable client identity \p Id
  /// (`!session Id`): the server re-pins the session to shard Id % N and
  /// every subsequent eval carries a `?seq=` dedup key, making
  /// evalRetry() exactly-once across crashes and reconnects. \returns
  /// false on transport or protocol failure.
  bool bindSession(uint64_t Id, double TimeoutSec = 30.0);

  bool bound() const { return Bound; }

  /// eval() with jittered exponential backoff on `ERR overloaded`
  /// responses (admission control / circuit breaker shedding). Retries
  /// up to \p MaxAttempts times, sleeping a jittered
  /// [Base/2, Base) * 2^attempt milliseconds between attempts (capped at
  /// 2s). \returns false only on transport failure; a request shed on
  /// every attempt returns true with the final ERR in \p Ok / \p Value.
  ///
  /// On a bindSession()-bound client a dropped connection mid-request is
  /// NOT fatal and NOT blindly re-executed: the client reconnects,
  /// rebinds, and resends the same `?seq=` — if the lost request was
  /// already executed (ack lost in flight, or the shard crashed after
  /// journaling it), the shard's dedup table answers with the original
  /// response instead of running it twice.
  bool evalRetry(const std::string &Source, bool &Ok, std::string &Value,
                 double TimeoutSec = 30.0, unsigned MaxAttempts = 6,
                 uint64_t BaseBackoffMs = 5);

private:
  bool evalSeq(const std::string &Source, bool HasSeq, uint64_t Seq,
               bool &Ok, std::string &Value, double TimeoutSec);

  int Fd = -1;
  std::string In; ///< bytes received past the last returned line
  uint16_t Port = 0;        ///< last connect()ed port (for reconnects)
  bool Bound = false;       ///< bindSession() succeeded
  uint64_t ClientId = 0;    ///< durable identity sent in `!session`
  uint64_t NextClientSeq = 1; ///< next `?seq=` value
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_CLIENT_H
