//===-- serve/Client.h - Blocking line-protocol client ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serving protocol, shared by the
/// serve tests and bench_serve's traffic generators. One Client = one
/// session; sendLine/recvLine speak raw protocol lines, eval() wraps a
/// round trip. Not used by the server itself — the server side is all
/// non-blocking.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SERVE_CLIENT_H
#define MST_SERVE_CLIENT_H

#include <cstdint>
#include <string>

namespace mst {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept : Fd(O.Fd), In(std::move(O.In)) { O.Fd = -1; }

  /// Connects to 127.0.0.1:\p Port. \returns false on failure.
  bool connect(uint16_t Port);

  void disconnect();

  bool connected() const { return Fd >= 0; }

  /// Sends one raw protocol line (newline appended). Blocks until
  /// written. \returns false on a broken connection.
  bool sendLine(const std::string &Line);

  /// Blocks until one full response line arrives (or the peer closes /
  /// \p TimeoutSec expires). \returns false on close or timeout.
  bool recvLine(std::string &Line, double TimeoutSec = 30.0);

  /// One eval round trip: sends \p Source, waits for the response.
  /// \returns false on transport failure; \p Ok and \p Value carry the
  /// protocol-level result.
  bool eval(const std::string &Source, bool &Ok, std::string &Value,
            double TimeoutSec = 30.0);

  /// eval() with jittered exponential backoff on `ERR overloaded`
  /// responses (admission control / circuit breaker shedding). Retries
  /// up to \p MaxAttempts times, sleeping a jittered
  /// [Base/2, Base) * 2^attempt milliseconds between attempts (capped at
  /// 2s). \returns false only on transport failure; a request shed on
  /// every attempt returns true with the final ERR in \p Ok / \p Value.
  bool evalRetry(const std::string &Source, bool &Ok, std::string &Value,
                 double TimeoutSec = 30.0, unsigned MaxAttempts = 6,
                 uint64_t BaseBackoffMs = 5);

private:
  int Fd = -1;
  std::string In; ///< bytes received past the last returned line
};

} // namespace serve
} // namespace mst

#endif // MST_SERVE_CLIENT_H
