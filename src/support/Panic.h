//===-- support/Panic.h - Fatal-path funnel and postmortem dump -*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One funnel for every fatal path in the VM — failed invariants
/// (MST_UNREACHABLE), heap-verification failures, old-space exhaustion
/// where no recovery ladder exists, bootstrap corruption, and the
/// safepoint watchdog. Instead of a bare abort() scattering its one line
/// to stderr, a panic emits a *postmortem dump*: every registered
/// subsystem section (per-VP interpreter state, safepoint mutator table,
/// lock owners/waiters, bounded heap summary) followed by a telemetry
/// counter snapshot, so a wedged or corrupted VM leaves enough evidence to
/// diagnose without a debugger attached.
///
/// Two entry points:
///  - panic(reason): [[noreturn]] — dump, then abort. For states the
///    process cannot survive.
///  - panicReport(reason): dump and *return*, telling the caller whether a
///    handler consumed it. The safepoint watchdog uses this: under test a
///    handler captures the dump and the rendezvous keeps waiting; in
///    production there is no handler and the watchdog escalates to abort
///    rather than hang forever.
///
/// Sections must be written defensively: they run on whatever thread
/// panicked, possibly mid-GC, so they may only read atomics / take locks
/// that the fatal paths provably do not hold.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_PANIC_H
#define MST_SUPPORT_PANIC_H

#include <cstdint>
#include <functional>
#include <string>

namespace mst {

/// Registers a named dump section; \p Body is invoked on every panic to
/// render the section. \returns an id for panicUnregisterSection.
int panicRegisterSection(const std::string &Title,
                         std::function<std::string()> Body);

/// Removes a section registered by panicRegisterSection. Objects owning
/// captured state (a VM, an ObjectMemory) must unregister before dying.
void panicUnregisterSection(int Id);

/// Installs \p Handler to consume panic dumps instead of stderr (tests
/// asserting on dump contents; embedders routing to their own logs).
/// Pass nullptr to restore the default stderr sink. The handler runs on
/// the panicking thread and must not itself panic.
void setPanicHandler(std::function<void(const std::string &)> Handler);

/// Builds the postmortem dump for \p Reason, bumps the vm.panic counter,
/// and delivers the dump to the installed handler (\returns true) or to
/// stderr (\returns false). Does not terminate the process — callers with
/// an unsurvivable state use panic() instead.
bool panicReport(const std::string &Reason);

/// The final rung: postmortem dump, then abort().
[[noreturn]] void panic(const std::string &Reason);

/// \returns how many panics (fatal or reported) this process has raised.
uint64_t panicCount();

/// Aborts the program after printing \p Msg with source location context.
/// Used for control flow that must never be reached if the VM's invariants
/// hold (e.g. an undefined bytecode after the compiler validated a
/// method). Routed through panic() so the postmortem dump fires.
[[noreturn]] void unreachableImpl(const char *Msg, const char *File,
                                  int Line);

} // namespace mst

/// Marks a point in code that must never execute. Unlike assert, this fires
/// in all build modes: an unknown bytecode or corrupt header is never safe to
/// run past.
#define MST_UNREACHABLE(MSG) ::mst::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // MST_SUPPORT_PANIC_H
