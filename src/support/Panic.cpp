//===-- support/Panic.cpp - Fatal-path funnel and postmortem dump ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Panic.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/Telemetry.h"
#include "obs/TraceBuffer.h"

using namespace mst;

namespace {

struct Section {
  int Id;
  std::string Title;
  std::function<std::string()> Body;
};

/// Registry state. A plain mutex is fine: registration happens at VM
/// construction, and a panic is never on a fast path. None of the fatal
/// paths hold this mutex, so the dump builder may take it.
struct PanicState {
  std::mutex Mutex;
  std::vector<Section> Sections;
  int NextId = 1;
  std::function<void(const std::string &)> Handler;
};

PanicState &state() {
  static PanicState S;
  return S;
}

Counter &panicCtr() {
  static Counter C{"vm.panic"};
  return C;
}

std::string buildDump(const std::string &Reason) {
  std::string Dump = "=== VM panic ===\nreason: " + Reason + "\n";
  {
    PanicState &S = state();
    std::lock_guard<std::mutex> Guard(S.Mutex);
    for (const Section &Sec : S.Sections) {
      Dump += "--- " + Sec.Title + " ---\n";
      Dump += Sec.Body();
      if (Dump.empty() || Dump.back() != '\n')
        Dump += '\n';
    }
  }
  Telemetry::Snapshot Snap = Telemetry::snapshot();
  Dump += "--- telemetry ---\n";
  for (const auto &[Name, V] : Snap.Counters)
    Dump += Name + " = " + std::to_string(V) + "\n";
  for (const auto &[Name, V] : Snap.Gauges)
    Dump += Name + " = " + std::to_string(V) + " (gauge)\n";
  Dump += "=== end panic dump ===\n";
  return Dump;
}

} // namespace

int mst::panicRegisterSection(const std::string &Title,
                              std::function<std::string()> Body) {
  PanicState &S = state();
  std::lock_guard<std::mutex> Guard(S.Mutex);
  int Id = S.NextId++;
  S.Sections.push_back({Id, Title, std::move(Body)});
  return Id;
}

void mst::panicUnregisterSection(int Id) {
  PanicState &S = state();
  std::lock_guard<std::mutex> Guard(S.Mutex);
  for (size_t I = 0; I < S.Sections.size(); ++I)
    if (S.Sections[I].Id == Id) {
      S.Sections.erase(S.Sections.begin() + I);
      return;
    }
}

void mst::setPanicHandler(std::function<void(const std::string &)> Handler) {
  PanicState &S = state();
  std::lock_guard<std::mutex> Guard(S.Mutex);
  S.Handler = std::move(Handler);
}

bool mst::panicReport(const std::string &Reason) {
  // A section that itself panics would recurse forever; degrade to the
  // bare abort the panic layer replaced.
  static thread_local bool InPanic = false;
  if (InPanic) {
    std::fprintf(stderr, "recursive panic: %s\n", Reason.c_str());
    std::abort();
  }
  InPanic = true;
  panicCtr().add();
  std::string Dump = buildDump(Reason);
  std::function<void(const std::string &)> Handler;
  {
    PanicState &S = state();
    std::lock_guard<std::mutex> Guard(S.Mutex);
    Handler = S.Handler;
  }
  InPanic = false;
  if (Handler) {
    Handler(Dump);
    return true;
  }
  std::fputs(Dump.c_str(), stderr);
  // Flush the trace rings too: the events leading up to the panic are the
  // most valuable part of a postmortem, but they only exist when tracing
  // was on.
  if (Telemetry::tracingEnabled() &&
      writeChromeTrace("mst-panic-trace.json"))
    std::fputs("trace flushed to mst-panic-trace.json\n", stderr);
  return false;
}

void mst::panic(const std::string &Reason) {
  panicReport(Reason);
  std::abort();
}

uint64_t mst::panicCount() {
  return panicCtr().value();
}

void mst::unreachableImpl(const char *Msg, const char *File, int Line) {
  panic("UNREACHABLE executed at " + std::string(File) + ":" +
        std::to_string(Line) + ": " + Msg);
}
