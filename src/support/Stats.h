//===-- support/Stats.h - Running statistics --------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics accumulator (Welford's algorithm) used by the
/// benchmark harnesses to report mean/min/max/stddev over repetitions, and
/// by the scavenger to report pause-time distributions.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_STATS_H
#define MST_SUPPORT_STATS_H

#include <cstdint>

#include "obs/Histogram.h"

namespace mst {

/// Accumulates samples and reports summary statistics without storing the
/// individual values. Besides the Welford moments it feeds a log-linear
/// histogram, so quantiles (p50/p95/p99) are available with bounded (~6%)
/// relative error — still O(1) memory.
class RunningStats {
public:
  /// Adds one sample.
  void add(double X);

  /// \returns the number of samples added so far.
  uint64_t count() const { return N; }

  /// \returns the arithmetic mean, or 0 if no samples were added.
  double mean() const { return N ? Mean : 0.0; }

  /// \returns the smallest sample, or 0 if no samples were added.
  double min() const { return N ? Min : 0.0; }

  /// \returns the largest sample, or 0 if no samples were added.
  double max() const { return N ? Max : 0.0; }

  /// \returns the sum of all samples.
  double sum() const { return Total; }

  /// \returns the sample standard deviation (N-1 denominator), or 0 for
  /// fewer than two samples.
  double stddev() const;

  /// \returns the approximate quantile \p P in [0,100] in the samples'
  /// unit. Backed by a fixed-point histogram (samples scaled by 1e6), so
  /// the relative error is bounded by the histogram's sub-bucket width;
  /// negative samples clamp to 0.
  double percentile(double P) const;

  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Total = 0.0;
  /// Unnamed (unregistered) histogram over round(sample * 1e6).
  Histogram Hist;
};

} // namespace mst

#endif // MST_SUPPORT_STATS_H
