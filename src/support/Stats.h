//===-- support/Stats.h - Running statistics --------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics accumulator (Welford's algorithm) used by the
/// benchmark harnesses to report mean/min/max/stddev over repetitions, and
/// by the scavenger to report pause-time distributions.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_STATS_H
#define MST_SUPPORT_STATS_H

#include <cstdint>

namespace mst {

/// Accumulates samples and reports summary statistics without storing the
/// individual values.
class RunningStats {
public:
  /// Adds one sample.
  void add(double X);

  /// \returns the number of samples added so far.
  uint64_t count() const { return N; }

  /// \returns the arithmetic mean, or 0 if no samples were added.
  double mean() const { return N ? Mean : 0.0; }

  /// \returns the smallest sample, or 0 if no samples were added.
  double min() const { return N ? Min : 0.0; }

  /// \returns the largest sample, or 0 if no samples were added.
  double max() const { return N ? Max : 0.0; }

  /// \returns the sum of all samples.
  double sum() const { return Total; }

  /// \returns the sample standard deviation (N-1 denominator), or 0 for
  /// fewer than two samples.
  double stddev() const;

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Total = 0.0;
};

} // namespace mst

#endif // MST_SUPPORT_STATS_H
