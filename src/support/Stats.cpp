//===-- support/Stats.cpp - Running statistics ------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cmath>

using namespace mst;

void RunningStats::add(double X) {
  double Scaled = X < 0.0 ? 0.0 : X * 1e6;
  Hist.record(static_cast<uint64_t>(Scaled + 0.5));
  ++N;
  Total += X;
  if (N == 1) {
    Mean = Min = Max = X;
    M2 = 0.0;
    return;
  }
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  if (X < Min)
    Min = X;
  if (X > Max)
    Max = X;
}

double RunningStats::stddev() const {
  if (N < 2)
    return 0.0;
  return std::sqrt(M2 / static_cast<double>(N - 1));
}

double RunningStats::percentile(double P) const {
  if (!N)
    return 0.0;
  return static_cast<double>(Hist.percentile(P)) / 1e6;
}
