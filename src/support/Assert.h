//===-- support/Assert.h - Assertions and unreachable markers --*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers shared by every library in the system. We follow the
/// LLVM convention of asserting liberally with a message, and of marking
/// impossible control flow with an explicit unreachable that aborts even in
/// release builds.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_ASSERT_H
#define MST_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace mst {

/// Aborts the program after printing \p Msg with source location context.
/// Used for control flow that must never be reached if the VM's invariants
/// hold (e.g. an undefined bytecode after the compiler validated a method).
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace mst

/// Marks a point in code that must never execute. Unlike assert, this fires
/// in all build modes: an unknown bytecode or corrupt header is never safe to
/// run past.
#define MST_UNREACHABLE(MSG) ::mst::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // MST_SUPPORT_ASSERT_H
