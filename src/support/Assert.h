//===-- support/Assert.h - Assertions and unreachable markers --*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers shared by every library in the system. We follow the
/// LLVM convention of asserting liberally with a message, and of marking
/// impossible control flow with an explicit unreachable that aborts even in
/// release builds. The abort itself routes through the panic funnel
/// (support/Panic.h) so invariant failures leave a postmortem dump, not a
/// single stderr line.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_ASSERT_H
#define MST_SUPPORT_ASSERT_H

#include <cassert>

#include "support/Panic.h" // unreachableImpl / MST_UNREACHABLE

#endif // MST_SUPPORT_ASSERT_H
