//===-- support/Timer.h - Wall-clock stopwatch ------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic wall-clock stopwatch used by the benchmark harnesses and by
/// the scavenger's bookkeeping (scavenge share of total time, Table 2 rows).
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_TIMER_H
#define MST_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace mst {

/// Monotonic stopwatch measuring elapsed wall-clock time.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Resets the start point to now.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// \returns nanoseconds elapsed since construction or the last reset().
  uint64_t nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// \returns the calling thread's consumed CPU time in microseconds.
/// Excludes time the thread was descheduled — on a uniprocessor host this
/// is the per-thread "processor time" the benchmark attribution needs.
uint64_t threadCpuMicros();

} // namespace mst

#endif // MST_SUPPORT_TIMER_H
