//===-- support/SplitMix64.h - Deterministic PRNG ---------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, deterministic pseudo-random generator used by
/// workload generators and property tests. Determinism matters: benchmark
/// workloads must be identical across the configurations being compared.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_SPLITMIX64_H
#define MST_SUPPORT_SPLITMIX64_H

#include <cstdint>

namespace mst {

/// Deterministic 64-bit PRNG (Steele, Lea & Flood's SplitMix64).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a value uniformly distributed in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// \returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace mst

#endif // MST_SUPPORT_SPLITMIX64_H
