//===-- support/Crc32.h - CRC-32 (IEEE 802.3) checksums ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CRC-32 used by the snapshot format: polynomial 0xEDB88320
/// (reflected IEEE), the same checksum zlib/PNG/gzip use, so images can be
/// cross-checked with standard tools (`python3 -c 'import zlib, ...'`).
/// Table-driven, one 1 KB table built on first use. Not a hot path — the
/// writer checksums each section once per snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_CRC32_H
#define MST_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace mst {

namespace crcdetail {
inline const std::array<uint32_t, 256> &table() {
  static const std::array<uint32_t, 256> T = [] {
    std::array<uint32_t, 256> Tbl{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Tbl[I] = C;
    }
    return Tbl;
  }();
  return T;
}
} // namespace crcdetail

/// Continues a CRC-32 over \p Len bytes at \p Data. Chain calls by feeding
/// the previous return value back as \p Crc; start (and finish) at 0.
inline uint32_t crc32(uint32_t Crc, const void *Data, size_t Len) {
  const auto &T = crcdetail::table();
  const auto *P = static_cast<const uint8_t *>(Data);
  uint32_t C = Crc ^ 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = T[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of \p Len bytes at \p Data.
inline uint32_t crc32(const void *Data, size_t Len) {
  return crc32(0, Data, Len);
}

} // namespace mst

#endif // MST_SUPPORT_CRC32_H
