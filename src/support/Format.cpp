//===-- support/Format.cpp - Text table formatting --------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace mst;

std::string mst::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string mst::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string mst::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  // Compute the width of every column over the header and all rows.
  std::vector<size_t> Widths;
  auto Absorb = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Absorb(Header);
  for (const auto &Row : Rows)
    Absorb(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I)
        Out += "  ";
      // Left-align the first column (labels), right-align the numbers.
      Out += I == 0 ? padRight(Cells[I], Widths[I])
                    : padLeft(Cells[I], Widths[I]);
    }
    Out += '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    size_t Total = 0;
    for (size_t I = 0; I < Widths.size(); ++I)
      Total += Widths[I] + (I ? 2 : 0);
    Out += std::string(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

std::string mst::asciiBar(double Value, double MaxValue, size_t MaxWidth) {
  if (MaxValue <= 0.0 || Value <= 0.0)
    return "";
  double Frac = Value / MaxValue;
  if (Frac > 1.0)
    Frac = 1.0;
  size_t Len = static_cast<size_t>(Frac * static_cast<double>(MaxWidth) + 0.5);
  return std::string(Len, '#');
}
