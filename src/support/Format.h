//===-- support/Format.h - Text table formatting ----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small text-formatting helpers used by the benchmark harnesses to print
/// the paper's Table 2 / Figure 2 style output: fixed-width columns, and
/// ASCII bar charts for the normalized-overhead figure.
///
//===----------------------------------------------------------------------===//

#ifndef MST_SUPPORT_FORMAT_H
#define MST_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace mst {

/// Formats \p Value with \p Decimals fractional digits.
std::string formatDouble(double Value, int Decimals);

/// Pads \p S with spaces on the left to width \p Width.
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S with spaces on the right to width \p Width.
std::string padRight(const std::string &S, size_t Width);

/// A simple fixed-width text table. Rows are added as string cells; render()
/// sizes every column to its widest cell and returns the whole table.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row.
  void addRow(std::vector<std::string> Cells);

  /// \returns the formatted table, one '\n'-terminated line per row.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Renders a horizontal ASCII bar of length proportional to
/// \p Value / \p MaxValue, at most \p MaxWidth characters.
std::string asciiBar(double Value, double MaxValue, size_t MaxWidth);

} // namespace mst

#endif // MST_SUPPORT_FORMAT_H
