//===-- support/Timer.cpp - Wall-clock and thread-CPU time ----------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <ctime>

using namespace mst;

uint64_t mst::threadCpuMicros() {
  timespec Ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts) != 0)
    return 0;
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000u +
         static_cast<uint64_t>(Ts.tv_nsec) / 1000u;
}
