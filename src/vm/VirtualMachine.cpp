//===-- vm/VirtualMachine.cpp - The MS virtual machine ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"

#include <chrono>
#include <fstream>

#include "obs/Profiler.h"
#include "obs/Telemetry.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"
#include "support/Format.h"
#include "support/Panic.h"
#include "vm/Compiler.h"

using namespace mst;

VmConfig VmConfig::baselineBS() {
  VmConfig C;
  C.Interpreters = 1;
  C.MpSupport = false;
  C.CacheKind = MethodCacheKind::Replicated;
  C.FreeCtxKind = FreeContextKind::Replicated;
  C.Memory.MpSupport = false;
  return C;
}

VmConfig VmConfig::multiprocessor(unsigned K) {
  VmConfig C;
  C.Interpreters = K;
  C.MpSupport = true;
  C.CacheKind = MethodCacheKind::Replicated;
  C.FreeCtxKind = FreeContextKind::Replicated;
  C.Memory.MpSupport = true;
  return C;
}

namespace {
MemoryConfig withMpSupport(MemoryConfig M, bool Mp) {
  M.MpSupport = Mp;
  return M;
}
} // namespace

VirtualMachine::VirtualMachine(const VmConfig &Config)
    : Config(Config),
      OM(std::make_unique<ObjectMemory>(
          withMpSupport(Config.Memory, Config.MpSupport))),
      Om(std::make_unique<ObjectModel>(*OM)), Disp(Config.MpSupport),
      Events(Config.MpSupport), Kernel(Config.Processors) {
  OM->registerMutator("driver");
  Profiler::registerThread("driver", static_cast<int>(Config.Interpreters));
  Om->initCore();

  Sched = std::make_unique<Scheduler>(*Om, OM->safepoint());
  Cache = std::make_unique<MethodCache>(
      Config.CacheKind, Config.Interpreters + 1, Config.MpSupport);
  CtxPool = std::make_unique<FreeContextPool>(
      Config.FreeCtxKind, Config.Interpreters + 1, Config.MpSupport);

  // Scavenge hooks: caches hold oops of (young, movable) objects; free
  // context lists hold dead objects. Both must empty before objects move.
  OM->addPreScavengeHook([this] { Cache->flushAll(); });
  OM->addPreScavengeHook([this] { CtxPool->flushAll(); });

  for (unsigned I = 0; I < Config.Interpreters; ++I)
    Workers.push_back(std::make_unique<Interpreter>(*this, I));
  Driver = std::make_unique<Interpreter>(*this, Config.Interpreters);

  OM->addRootWalker([this](const ObjectMemory::OopVisitor &V) {
    auto VisitRoots = [&V](Interpreter &I) {
      V(&I.roots().ActiveProcess);
      V(&I.roots().ActiveContext);
      V(&I.roots().PendingResult);
    };
    for (auto &W : Workers)
      VisitRoots(*W);
    VisitRoots(*Driver);
    V(&LowSpaceSem);
  });

  // The memory's low-space notification: signal the registered Smalltalk
  // semaphore. Runs with the world stopped — semaphoreSignal never
  // allocates, so this is a legal callback.
  OM->setLowSpaceCallback([this] {
    if (LowSpaceSem.isPointer())
      Sched->semaphoreSignal(LowSpaceSem);
  });

  VmPanicSection = panicRegisterSection("vm", [this] {
    std::string Out;
    auto Describe = [&Out](const char *Kind, Interpreter &I) {
      Out += std::string(Kind) + " " + std::to_string(I.id()) + ": " +
             std::to_string(I.bytecodesExecuted()) + " bytecodes, " +
             std::to_string(I.sendsExecuted()) + " sends\n";
    };
    for (auto &W : Workers)
      Describe("worker", *W);
    Describe("driver", *Driver);
    std::lock_guard<std::mutex> Guard(ErrorMutex);
    Out += "logged errors: " + std::to_string(ErrorLog.size()) + "\n";
    for (const auto &E : ErrorLog)
      Out += "  " + E + "\n";
    return Out;
  });
}

VirtualMachine::~VirtualMachine() {
  panicUnregisterSection(VmPanicSection);
  shutdown();
  // The callback captures this; the memory outlives the scheduler in the
  // member order, so clear it before teardown begins.
  OM->setLowSpaceCallback(nullptr);
  Profiler::retireThread();
  OM->unregisterMutator();
}

void VirtualMachine::setLowSpaceSemaphore(Oop Sem) {
  std::lock_guard<std::mutex> Guard(LowSpaceMutex);
  LowSpaceSem = Sem;
}

void VirtualMachine::startInterpreters() {
  assert(!WorkersStarted && "interpreters already started");
  WorkersStarted = true;
  for (auto &W : Workers) {
    Interpreter *I = W.get();
    Kernel.createProcess("interpreter-" + std::to_string(I->id()),
                         [I] { I->runLoop(); });
  }
}

void VirtualMachine::shutdown() {
  // No early-out on an already-set flag: requestStop() sets it without
  // joining, and this call must still join the workers (joinAll is
  // idempotent — already-joined threads are skipped).
  StopFlag.store(true, std::memory_order_relaxed);
  Sched->notifyWork();
  Kernel.joinAll();
}

void VirtualMachine::requestStop() {
  StopFlag.store(true, std::memory_order_relaxed);
  Sched->notifyWork();
}

void VirtualMachine::requestAbort() { Driver->requestAbort(); }

void VirtualMachine::clearAbort() { Driver->clearAbort(); }

/// --- execution front door ----------------------------------------------

Oop VirtualMachine::buildBottomContext(Oop Method, Oop Receiver) {
  assert(Method.object()->isOld() && "methods are compiled into old space");
  Handle RecvHandle(OM->handles(), Receiver);
  intptr_t NumTemps =
      ObjectMemory::fetchPointer(Method, MthNumTemps).smallInt();
  intptr_t Frame =
      ObjectMemory::fetchPointer(Method, MthFrameSize).smallInt();
  uint32_t Slots = CtxFixedSlots + static_cast<uint32_t>(Frame);
  // Round small frames up to the standard small-context size, matching the
  // interpreter's own activations (and giving perform: headroom).
  if (Slots < SmallContextSlots)
    Slots = SmallContextSlots;
  Oop Ctx = OM->allocateContextObject(Om->known().ClassMethodContext,
                                      Slots);
  if (Ctx.isNull())
    return Oop(); // Out of memory; the caller reports the failure.
  ObjectHeader *N = Ctx.object();
  Oop *NS = N->slots();
  NS[CtxSender] = Om->nil();
  NS[CtxIp] = Oop::fromSmallInt(0);
  NS[CtxMethod] = Method;
  NS[CtxReceiver] = RecvHandle.get();
  OM->writeBarrier(N, RecvHandle.get());
  NS[CtxSp] = Oop::fromSmallInt(CtxFixedSlots + NumTemps - 1);
  return Ctx;
}

Oop VirtualMachine::compileAndRun(const std::string &Source) {
  CompileResult R = compileDoItSource(
      *Om, Om->known().ClassUndefinedObject, Source);
  if (!R.ok()) {
    logError("doIt compile error: " + R.Error);
    return Oop();
  }
  Oop Ctx = buildBottomContext(R.Method, Om->nil());
  if (Ctx.isNull()) {
    logError("doIt failed: out of memory building the bottom context");
    return Oop();
  }
  return Driver->runToCompletion(Ctx);
}

VirtualMachine::EvalResult
VirtualMachine::evaluate(const std::string &Source) {
  return evalWithDeadline(Source, 0);
}

VirtualMachine::EvalResult
VirtualMachine::evalWithDeadline(const std::string &Source,
                                 uint64_t DeadlineNs) {
  if (Source.empty())
    return {false, "empty source", false};
  std::string Src = Source;
  // Tolerate a trailing statement period ("[true] whileTrue.") — the doIt
  // wrapper parenthesizes the source, where that period would turn the
  // client's runaway into a parse error.
  while (!Src.empty() && (Src.back() == ' ' || Src.back() == '\t' ||
                          Src.back() == '\r' || Src.back() == '\n'))
    Src.pop_back();
  if (!Src.empty() && Src.back() == '.')
    Src.pop_back();
  if (Src.empty())
    return {false, "empty source", false};
  if (Src[0] != '^' && Src[0] != '|')
    Src = "^(" + Src + ") printString";
  size_t Mark;
  {
    std::lock_guard<std::mutex> Guard(ErrorMutex);
    Mark = ErrorLog.size();
  }
  (void)Driver->takeAborted(); // drop stale state from non-evaluate runs
  Driver->setDeadlineNs(DeadlineNs);
  Oop R = compileAndRun(Src);
  Driver->setDeadlineNs(0);
  bool TimedOut = Driver->takeAborted();
  if (R.isNull()) {
    // Collect (and drop) the diagnostics this evaluation appended. Only
    // the driver thread runs evaluate, so entries past Mark are ours —
    // a worker interpreter could interleave one of its own, which we
    // would then attribute here; harmless for a diagnostics string.
    std::lock_guard<std::mutex> Guard(ErrorMutex);
    std::string Msg;
    for (size_t I = Mark; I < ErrorLog.size(); ++I) {
      if (!Msg.empty())
        Msg += "; ";
      Msg += ErrorLog[I];
    }
    ErrorLog.resize(Mark);
    return {false, Msg.empty() ? "evaluation failed" : Msg, TimedOut};
  }
  if (R.isPointer() && R.object()->Format == ObjectFormat::Bytes)
    return {true, ObjectModel::stringValue(R), false};
  return {true, Om->describe(R), false};
}

Oop VirtualMachine::forkDoIt(const std::string &Source, int Priority,
                             const std::string &Name) {
  CompileResult R = compileDoItSource(
      *Om, Om->known().ClassUndefinedObject, Source);
  if (!R.ok()) {
    logError("forkDoIt compile error: " + R.Error);
    return Oop();
  }
  Oop Ctx = buildBottomContext(R.Method, Om->nil());
  if (Ctx.isNull()) {
    logError("forkDoIt failed: out of memory building the bottom context");
    return Oop();
  }
  Oop Proc = Sched->createProcess(Ctx, Priority, Name);
  if (Proc.isNull()) {
    logError("forkDoIt failed: out of memory creating the Process");
    return Oop();
  }
  Sched->addReadyProcess(Proc);
  return Proc;
}

/// --- host signals ------------------------------------------------------

unsigned VirtualMachine::createHostSignal() {
  std::lock_guard<std::mutex> Guard(SignalMutex);
  SignalCounts.push_back(0);
  return static_cast<unsigned>(SignalCounts.size() - 1);
}

void VirtualMachine::hostSignal(unsigned Id) {
  std::lock_guard<std::mutex> Guard(SignalMutex);
  if (Id < SignalCounts.size()) {
    ++SignalCounts[Id];
    SignalCv.notify_all();
  }
}

bool VirtualMachine::waitHostSignal(unsigned Id, uint64_t Count,
                                    double TimeoutSec) {
  // The waiter holds no heap references; let scavenges proceed.
  BlockedRegion Region(OM->safepoint());
  std::unique_lock<std::mutex> Lock(SignalMutex);
  return SignalCv.wait_for(
      Lock, std::chrono::duration<double>(TimeoutSec), [this, Id, Count] {
        return Id < SignalCounts.size() && SignalCounts[Id] >= Count;
      });
}

/// --- diagnostics -------------------------------------------------------

void VirtualMachine::logError(const std::string &Msg) {
  std::lock_guard<std::mutex> Guard(ErrorMutex);
  ErrorLog.push_back(Msg);
}

std::vector<std::string> VirtualMachine::errors() {
  std::lock_guard<std::mutex> Guard(ErrorMutex);
  return ErrorLog;
}

std::string VirtualMachine::statisticsReport() {
  TextTable Locks;
  Locks.setHeader({"serialized resource", "acquisitions", "contended",
                   "delays"});
  auto LockRow = [&Locks](const char *Name, SpinLock &L) {
    Locks.addRow({Name, std::to_string(L.acquisitions()),
                  std::to_string(L.contendedAcquisitions()),
                  std::to_string(L.delays())});
  };
  LockRow("allocation (new space)", OM->allocationLock());
  LockRow("scheduling (ready queue)", Sched->lock());
  LockRow("entry table (remembered set)", OM->rememberedSet().lock());
  LockRow("display output queue", Disp.lock());
  LockRow("input event queue", Events.lock());

  std::string Out = "=== MS instrumentation report (paper SS6) ===\n";
  Out += Locks.render();

  uint64_t Hits = Cache->hits(), Misses = Cache->misses();
  double HitRate = Hits + Misses
                       ? 100.0 * static_cast<double>(Hits) /
                             static_cast<double>(Hits + Misses)
                       : 0.0;
  Out += "method cache (";
  Out += Config.CacheKind == MethodCacheKind::Replicated
             ? "replicated"
             : "global, two-level locked";
  Out += "): " + std::to_string(Hits) + " hits, " +
         std::to_string(Misses) + " misses (" + formatDouble(HitRate, 1) +
         "% hit rate)\n";
  Out += "free contexts (";
  Out += Config.FreeCtxKind == FreeContextKind::Replicated ? "replicated"
                                                           : "shared";
  Out += "): " + std::to_string(CtxPool->reuses()) + " reuses, " +
         std::to_string(CtxPool->returns()) + " returns\n";

  ScavengeStats S = OM->statsSnapshot();
  Out += "scavenges: " + std::to_string(S.Scavenges) + ", total pause " +
         formatDouble(S.TotalPauseSec * 1000.0, 3) + " ms, copied " +
         std::to_string(S.BytesCopied) + " B, tenured " +
         std::to_string(S.BytesTenured) + " B\n";
  FullGcStats F = OM->fullGcStatsSnapshot();
  Out += "full collections: " + std::to_string(F.Collections) +
         ", total pause " + formatDouble(F.TotalPauseSec * 1000.0, 3) +
         " ms, swept " + std::to_string(F.SweptBytes) + " B, old live " +
         std::to_string(F.LastLiveBytes) + " B (used " +
         std::to_string(OM->oldSpaceUsed()) + " B, free " +
         std::to_string(OM->oldSpaceFree()) + " B)\n";
  Out += "display commands: " + std::to_string(Disp.submittedCount()) +
         "\n";

  TextTable Interp;
  Interp.setHeader({"interpreter", "bytecodes", "sends"});
  for (const auto &W : Workers)
    Interp.addRow({"worker " + std::to_string(W->id()),
                   std::to_string(W->bytecodesExecuted()),
                   std::to_string(W->sendsExecuted())});
  Interp.addRow({"driver", std::to_string(Driver->bytecodesExecuted()),
                 std::to_string(Driver->sendsExecuted())});
  Out += Interp.render();
  return Out;
}

std::string VirtualMachine::telemetryReport() {
  Telemetry::Snapshot S = Telemetry::snapshot();
  std::string Out = "=== telemetry report ===\n";

  TextTable Counters;
  Counters.setHeader({"counter", "value"});
  for (const auto &[Name, V] : S.Counters)
    Counters.addRow({Name, std::to_string(V)});
  Out += Counters.render();

  if (!S.Gauges.empty()) {
    TextTable Gauges;
    Gauges.setHeader({"gauge", "value"});
    for (const auto &[Name, V] : S.Gauges)
      Gauges.addRow({Name, std::to_string(V)});
    Out += Gauges.render();
  }

  TextTable Hists;
  Hists.setHeader({"histogram", "count", "p50 (us)", "p95 (us)",
                   "p99 (us)", "max (us)"});
  auto Us = [](uint64_t Ns) {
    return formatDouble(static_cast<double>(Ns) / 1000.0, 1);
  };
  for (const auto &H : S.Histograms)
    Hists.addRow({H.Name, std::to_string(H.Count), Us(H.P50), Us(H.P95),
                  Us(H.P99), Us(H.Max)});
  Out += Hists.render();
  return Out;
}

bool VirtualMachine::writeTelemetryJson(const std::string &Path) {
  std::string Json = Telemetry::toJson(Telemetry::snapshot());
  // Splice the resolved profile in as a sibling of counters/gauges when
  // there is one; the document stays a single JSON object either way.
  if (Profiler::enabled() || Profiler::ticks() > 0) {
    ProfileReport Report = buildProfileReport();
    if (!Report.empty() && !Json.empty() && Json.back() == '}') {
      Json.pop_back();
      Json += ",\"profile\":" + Report.toJson() + "}";
    }
  }
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os << Json;
  return static_cast<bool>(Os);
}

/// --- profiling -----------------------------------------------------------

namespace {

/// \returns the header for \p Bits when they still name a plausible live
/// old-space object of \p WantFormat; nullptr otherwise. Old space never
/// moves objects, and a swept header is rewritten as a Free block (with
/// its body zap-filled), so the checks below turn "sampled bits went
/// stale" into a resolution failure instead of a wild dereference.
ObjectHeader *validOldObject(ObjectMemory &M, uintptr_t Bits,
                             ObjectFormat WantFormat) {
  Oop O = Oop::fromBits(Bits);
  if (!O.isPointer())
    return nullptr;
  ObjectHeader *H = O.object();
  if (!M.oldContains(H))
    return nullptr;
  if (H->Format != WantFormat)
    return nullptr;
  return H;
}

/// Byte contents of an old-space byte object (Symbol/String), or "".
std::string safeBytes(ObjectMemory &M, Oop S) {
  ObjectHeader *H = validOldObject(M, S.bits(), ObjectFormat::Bytes);
  if (!H || H->ByteLength == 0)
    return {};
  return std::string(reinterpret_cast<const char *>(H->bytes()),
                     H->ByteLength);
}

std::string safeClassName(ObjectMemory &M, uintptr_t Bits) {
  ObjectHeader *H = validOldObject(M, Bits, ObjectFormat::Pointers);
  if (!H || H->SlotCount < ClassSlotCount)
    return {};
  return safeBytes(M, H->slots()[ClsName]);
}

} // namespace

ProfileResolver VirtualMachine::profileResolver() {
  ObjectMemory *M = OM.get();
  Oop MethodClass = Om->known().ClassCompiledMethod;
  ProfileResolver R;
  R.SelectorName = [M](uintptr_t Bits) {
    return safeBytes(*M, Oop::fromBits(Bits));
  };
  R.ClassName = [M](uintptr_t Bits) { return safeClassName(*M, Bits); };
  R.MethodName = [M, MethodClass](uintptr_t Bits) -> std::string {
    ObjectHeader *H = validOldObject(*M, Bits, ObjectFormat::Pointers);
    if (!H || H->classOop() != MethodClass ||
        H->SlotCount < MethodSlotCount)
      return {};
    std::string Sel = safeBytes(*M, H->slots()[MthSelector]);
    if (Sel.empty())
      return {};
    std::string Cls = safeClassName(*M, H->slots()[MthClass].bits());
    return (Cls.empty() ? "?" : Cls) + ">>" + Sel;
  };
  return R;
}

ProfileReport VirtualMachine::buildProfileReport() {
  return resolveProfile(Profiler::data(), profileResolver());
}

std::string VirtualMachine::profileReport() {
  return buildProfileReport().render();
}

bool mst::startVmProfiler(uint32_t Hz) {
  ProfilerOptions O;
  if (Hz)
    O.SampleHz = Hz;
  O.TickHook = [] { chaos::point("profiler.sample"); };
  return Profiler::start(O);
}

void mst::stopVmProfiler() { Profiler::stop(); }

uint64_t VirtualMachine::totalBytecodes() const {
  uint64_t N = Driver->bytecodesExecuted();
  for (const auto &W : Workers)
    N += W->bytecodesExecuted();
  return N;
}
