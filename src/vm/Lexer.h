//===-- vm/Lexer.h - Smalltalk tokenizer ------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Smalltalk method syntax accepted by the compiler:
/// identifiers, keywords (trailing colon), binary selectors, integer /
/// string / character / symbol / array literals, assignment, returns,
/// blocks, cascades and primitive pragmas.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_LEXER_H
#define MST_VM_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace mst {

/// Token kinds produced by the lexer.
enum class TokenKind : uint8_t {
  End,
  Identifier, ///< foo
  Keyword,    ///< foo:
  BinarySel,  ///< + - * <= ~= , @ ... (single '|' is VBar)
  Integer,    ///< 123, -7, 16r1F
  String,     ///< 'abc'
  CharLit,    ///< $a
  SymbolLit,  ///< #foo, #foo:bar:, #+
  ArrayStart, ///< #(
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Period,
  Caret,
  Assign, ///< :=
  VBar,   ///< |
  Colon,  ///< : (block parameter marker)
  Lt,     ///< < at pragma position (otherwise BinarySel)
  Gt,     ///< > at pragma position (otherwise BinarySel)
  Error,
};

/// One token.
struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text;   ///< spelling (selector text, identifier, ...)
  intptr_t IntValue = 0;
  uint32_t Offset = 0; ///< byte offset in the source, for diagnostics
};

/// Tokenizes a whole method source. '<' and '>' are emitted as BinarySel;
/// the parser treats them as pragma brackets where the grammar requires.
class Lexer {
public:
  explicit Lexer(const std::string &Source);

  /// \returns the current token without consuming it.
  const Token &peek(unsigned Ahead = 0) const;

  /// Consumes and returns the current token.
  Token next();

  /// \returns true if tokenization failed; the message describes why.
  bool hadError() const { return !ErrorMessage.empty(); }
  const std::string &errorMessage() const { return ErrorMessage; }

private:
  void tokenize(const std::string &Source);
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string ErrorMessage;
};

/// \returns true when \p C can appear in a binary selector.
bool isBinarySelectorChar(char C);

} // namespace mst

#endif // MST_VM_LEXER_H
