//===-- vm/Bytecode.h - The bytecode set ------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte codes executed by the interpreter. The set is blue-book
/// flavoured but encoded plainly (explicit operand bytes) for clarity.
///
/// The compiler inlines the control-flow selectors (ifTrue:, whileTrue:,
/// and:, to:do:, ...) into jumps, so the paper's idle Process —
/// `[true] whileTrue` — compiles to code that neither looks up messages
/// nor allocates memory (paper §4).
///
/// Arithmetic and comparison use *special sends*: one bytecode that tries
/// the SmallInteger fast path inline and falls back to a real message send,
/// so simple loops do not hammer the method cache.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_BYTECODE_H
#define MST_VM_BYTECODE_H

#include <cstdint>
#include <string>

namespace mst {

/// Opcode values. Multi-byte instructions document their operands.
enum class Op : uint8_t {
  // --- pushes
  PushSelf,        ///< push receiver
  PushNil,
  PushTrue,
  PushFalse,
  PushThisContext, ///< push the active context (escapes it)
  PushTemp,        ///< u8 index: push temporary/argument
  PushInstVar,     ///< u8 index: push receiver instance variable
  PushLiteral,     ///< u8 literal index: push literal value
  PushGlobal,      ///< u8 literal index of an Association: push its value
  PushSmallInt,    ///< s8 immediate: push a SmallInteger constant

  // --- stores (leave the value on the stack; pair with Pop)
  StoreTemp,       ///< u8 index
  StoreInstVar,    ///< u8 index
  StoreGlobal,     ///< u8 literal index of an Association

  // --- stack shuffling
  Pop,
  Dup,

  // --- control flow (offsets are signed 16-bit, relative to the byte
  //     after the operand)
  Jump,            ///< s16 offset
  JumpIfTrue,      ///< s16 offset; pops the condition (must be a Boolean)
  JumpIfFalse,     ///< s16 offset; pops the condition (must be a Boolean)

  // --- message sends
  Send,            ///< u8 selector literal index, u8 argument count
  SendSuper,       ///< u8 selector literal index, u8 argument count
  SendSpecial,     ///< u8 SpecialSelector code: inline SmallInteger fast
                   ///< path, else a normal send of the mapped selector

  // --- blocks
  BlockCopy,       ///< u8 numArgs, u8 frameSlots, u16 skip: create a
                   ///< BlockContext whose initial IP is the byte after the
                   ///< operands, then jump forward by skip (past the body)

  // --- returns
  ReturnTop,       ///< ^expr: method return (non-local when in a block)
  ReturnSelf,      ///< implicit method return of the receiver
  BlockReturn,     ///< end of block body: return top of stack to caller
};

/// Special-send codes: selectors with an inline SmallInteger fast path.
enum class SpecialSelector : uint8_t {
  Add,        // +
  Subtract,   // -
  Multiply,   // *
  IntDivide,  // //
  Modulo,     // \\ (floored)
  Less,       // <
  Greater,    // >
  LessEq,     // <=
  GreaterEq,  // >=
  Equal,      // =
  NotEqual,   // ~=
  IdentityEq, // ==
  BitAnd,     // bitAnd:
  BitOr,      // bitOr:
  BitShift,   // bitShift:
  NumSpecialSelectors,
};

/// \returns the selector text for \p S (e.g. "+", "bitShift:").
const char *specialSelectorName(SpecialSelector S);

/// \returns the argument count of special selector \p S (always 1 in the
/// current set; kept explicit for future growth).
inline unsigned specialSelectorArgc(SpecialSelector) { return 1; }

/// \returns a human-readable opcode name.
const char *opName(Op O);

/// \returns the total instruction length in bytes for the opcode at
/// \p Code[Ip] (opcode byte included).
unsigned instructionLength(const uint8_t *Code, uint32_t Ip);

/// Disassembles one instruction for debugging / the decompiler tests.
/// \returns e.g. "12: Send lit3 argc2".
std::string disassembleOne(const uint8_t *Code, uint32_t Ip);

} // namespace mst

#endif // MST_VM_BYTECODE_H
