//===-- vm/FreeContextList.cpp - Free stack-frame lists ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/FreeContextList.h"

#include "objmem/ObjectHeader.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"
#include "vm/ObjectModel.h"

using namespace mst;

FreeContextPool::FreeContextPool(FreeContextKind Kind,
                                 unsigned NumInterpreters,
                                 bool LocksEnabled)
    : Kind(Kind) {
  unsigned N = Kind == FreeContextKind::Replicated ? NumInterpreters : 1;
  assert(N > 0 && "need at least one free list");
  for (unsigned I = 0; I < N; ++I)
    PerInterp.push_back(std::make_unique<Bins>(LocksEnabled));
}

Oop FreeContextPool::take(unsigned InterpId, uint32_t Slots) {
  assert(Slots <= LargeContextSlots && "oversized context request");
  chaos::point("freectx.take");
  Bins &B = binsFor(InterpId);
  std::vector<Oop> &List = Slots <= SmallContextSlots ? B.Small : B.Large;
  SpinLockGuard Guard(B.Lock);
  if (List.empty())
    return Oop();
  Oop Ctx = List.back();
  List.pop_back();
  Reuses.add();
  return Ctx;
}

void FreeContextPool::give(unsigned InterpId, Oop Ctx) {
  ObjectHeader *H = Ctx.object();
  assert(H->Format == ObjectFormat::Context && "recycling a non-context");
  assert(!H->isEscaped() && "recycling an escaped context");
  // Old (tenured) contexts stay out of the pool: reusing them would demand
  // remembered-set maintenance on every reuse for no benefit.
  if (H->isOld())
    return;
  chaos::point("freectx.give");
  Bins &B = binsFor(InterpId);
  std::vector<Oop> &List =
      H->SlotCount <= SmallContextSlots ? B.Small : B.Large;
  SpinLockGuard Guard(B.Lock);
  List.push_back(Ctx);
  Returns.add();
}

void FreeContextPool::flushAll() {
  for (auto &B : PerInterp) {
    SpinLockGuard Guard(B->Lock);
    B->Small.clear();
    B->Large.clear();
  }
}
