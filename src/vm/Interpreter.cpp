//===-- vm/Interpreter.cpp - The replicated interpreter ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include <atomic>
#include <cstdlib>

#include "obs/Profiler.h"
#include "obs/Telemetry.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "support/Timer.h"
#include "vkernel/Chaos.h"
#include "vm/Primitives.h"
#include "vm/VirtualMachine.h"

using namespace mst;

Interpreter::Interpreter(VirtualMachine &VM, unsigned Id)
    : VM(VM), Om(VM.model()), OM(VM.memory()), Id(Id) {}

/// --- frame cache ----------------------------------------------------------

void Interpreter::reloadFrame() {
  Oop C = Roots.ActiveContext;
  assert(C.isPointer() && "no active context");
  CtxH = C.object();
  IsBlock = CtxH->classOop() == Om.known().ClassBlockContext;
  HomeH = IsBlock ? CtxH->slots()[BlkHome].object() : CtxH;
  CurMethod = HomeH->slots()[CtxMethod];
  Oop Bytes = ObjectMemory::fetchPointer(CurMethod, MthBytecodes);
  // Compiled code lives in old space and never moves; caching the raw
  // byte pointer across GC points is safe.
  assert(Bytes.object()->isOld() && "method bytecodes must be old-space");
  Code = Bytes.object()->bytes();
  Ip = static_cast<uint32_t>(CtxH->slots()[CtxIp].smallInt());
  SpVal = CtxH->slots()[CtxSp].smallInt();

  // Profile-slot publication. Every activation, return, and GC point
  // passes through here, so the slot always names the method now on top.
  // Disabled cost: one relaxed store. The richer tuple (receiver class,
  // pc, state) is published only while sampling; the tear chaos point
  // sits between the stores so the stress lanes shake out mixed tuples.
  if (ProfileSlot *PS = Profiler::slot()) {
    PS->Method.store(CurMethod.bits(), std::memory_order_relaxed);
    if (Profiler::enabled()) {
      chaos::point("profiler.slot.tear");
      PS->RecvClass.store(Om.classOf(HomeH->slots()[CtxReceiver]).bits(),
                          std::memory_order_relaxed);
      PS->Pc.store(Ip, std::memory_order_relaxed);
      PS->State.store(static_cast<uint8_t>(ProfState::Running),
                      std::memory_order_relaxed);
    }
  }
}

void Interpreter::writeBackIp() {
  CtxH->slots()[CtxIp] = Oop::fromSmallInt(static_cast<intptr_t>(Ip));
}

void Interpreter::pushValue(Oop V) {
  ++SpVal;
  assert(SpVal >= 0 &&
         static_cast<uint32_t>(SpVal) < CtxH->SlotCount &&
         "operand stack overflow");
  CtxH->slots()[SpVal] = V;
  CtxH->slots()[CtxSp] = Oop::fromSmallInt(SpVal);
  OM.writeBarrier(CtxH, V);
}

Oop Interpreter::popValue() {
  Oop V = CtxH->slots()[SpVal];
  --SpVal;
  CtxH->slots()[CtxSp] = Oop::fromSmallInt(SpVal);
  return V;
}

Oop Interpreter::topValue(unsigned Down) {
  return CtxH->slots()[SpVal - static_cast<intptr_t>(Down)];
}

void Interpreter::dropValues(unsigned N) {
  SpVal -= static_cast<intptr_t>(N);
  CtxH->slots()[CtxSp] = Oop::fromSmallInt(SpVal);
}

/// --- variable access --------------------------------------------------

/// Home-context temps and receiver ivars are shared between interpreters
/// (a forked block and its enclosing method run concurrently against the
/// same home context) with no lock, by the paper's design. Acquire/release
/// cell access keeps the words untorn and orders a freshly allocated
/// object's header initialization before use by whoever observes its oop
/// through a shared slot; on x86 both compile to plain moves.
static Oop loadSlotAcquire(const ObjectHeader *H, uint32_t Idx) {
  const uintptr_t &Cell =
      reinterpret_cast<const uintptr_t *>(H->slots())[Idx];
  return Oop::fromBits(std::atomic_ref<const uintptr_t>(Cell).load(
      std::memory_order_acquire));
}

static void storeSlotRelease(ObjectHeader *H, uint32_t Idx, Oop V) {
  uintptr_t &Cell = reinterpret_cast<uintptr_t *>(H->slots())[Idx];
  std::atomic_ref<uintptr_t>(Cell).store(V.bits(), std::memory_order_release);
}

Oop Interpreter::fetchTemp(unsigned Idx) {
  return loadSlotAcquire(HomeH, CtxFixedSlots + Idx);
}

void Interpreter::storeTempValue(unsigned Idx, Oop V) {
  storeSlotRelease(HomeH, CtxFixedSlots + Idx, V);
  OM.writeBarrier(HomeH, V);
}

Oop Interpreter::receiver() {
  return loadSlotAcquire(HomeH, CtxReceiver);
}

Oop Interpreter::fetchIvar(unsigned Idx) {
  Oop R = receiver();
  assert(R.isPointer() && Idx < R.object()->SlotCount &&
         "instance variable access out of range");
  return loadSlotAcquire(R.object(), Idx);
}

void Interpreter::storeIvar(unsigned Idx, Oop V) {
  Oop R = receiver();
  assert(R.isPointer() && Idx < R.object()->SlotCount &&
         "instance variable store out of range");
  OM.storePointer(R, Idx, V);
}

/// --- context allocation ----------------------------------------------

Oop Interpreter::allocateContext(uint32_t SlotsNeeded, Oop Cls) {
  uint32_t SlotAlloc = SlotsNeeded <= SmallContextSlots ? SmallContextSlots
                       : SlotsNeeded <= LargeContextSlots
                           ? LargeContextSlots
                           : SlotsNeeded;
  if (SlotAlloc <= LargeContextSlots) {
    Oop Recycled = VM.contextPool().take(Id, SlotAlloc);
    if (!Recycled.isNull()) {
      Recycled.object()->setClassOop(Cls);
      return Recycled;
    }
  }
  writeBackIp();
  TraceSpan RefillSpan("ctx.refill", "vm");
  Oop Fresh = OM.allocateContextObject(Cls, SlotAlloc);
  reloadFrame();
  return Fresh;
}

/// --- sends -----------------------------------------------------------

void Interpreter::doSend(Oop Selector, unsigned Argc, bool Super) {
  ++SendCount;
  Oop Recv = topValue(Argc);
  Oop StartCls;
  if (Super) {
    Oop MethodClass = ObjectMemory::fetchPointer(CurMethod, MthClass);
    StartCls = ObjectMemory::fetchPointer(MethodClass, ClsSuperclass);
  } else {
    StartCls = Om.classOf(Recv);
  }

  Oop Method, DefCls;
  if (!VM.cache().lookup(Id, StartCls, Selector, Method, DefCls)) {
    ProfStateScope ProfMiss(ProfState::LookupMiss);
    if (Profiler::enabled())
      profNoteCacheMiss(CurMethod.bits(), Selector.bits());
    TraceSpan MissSpan("lookup.miss", "vm");
    ObjectModel::LookupResult R = Om.lookupMethod(StartCls, Selector);
    if (R.Method.isNull()) {
      doesNotUnderstand(Selector, Argc);
      return;
    }
    Method = R.Method;
    DefCls = R.DefiningClass;
    VM.cache().insert(Id, StartCls, Selector, Method, DefCls);
  }

  intptr_t Prim = ObjectMemory::fetchPointer(Method, MthPrimitive).smallInt();
  if (Prim != PrimNone &&
      dispatchPrimitive(static_cast<int>(Prim), Argc) == PrimResult::Success)
    return;
  activateMethod(Method, Argc);
}

void Interpreter::doSpecialSend(SpecialSelector S) {
  Oop B = topValue(0);
  Oop A = topValue(1);

  // Identity never involves a real send.
  if (S == SpecialSelector::IdentityEq) {
    dropValues(2);
    pushValue(Om.boolFor(A == B));
    return;
  }

  if (A.isSmallInt() && B.isSmallInt()) {
    intptr_t X = A.smallInt(), Y = B.smallInt();
    bool Ok = true;
    Oop Result;
    switch (S) {
    case SpecialSelector::Add: {
      intptr_t R = X + Y;
      Ok = fitsSmallInt(R);
      Result = Oop::fromSmallInt(R);
      break;
    }
    case SpecialSelector::Subtract: {
      intptr_t R = X - Y;
      Ok = fitsSmallInt(R);
      Result = Oop::fromSmallInt(R);
      break;
    }
    case SpecialSelector::Multiply: {
      // Conservative overflow guard for the immediate multiply.
      if (X != 0 && (std::abs(X) > (SmallIntMax / std::abs(Y ? Y : 1))))
        Ok = false;
      else
        Result = Oop::fromSmallInt(X * Y);
      break;
    }
    case SpecialSelector::IntDivide: {
      if (Y == 0) {
        Ok = false;
        break;
      }
      // Floored division.
      intptr_t Q = X / Y;
      if ((X % Y != 0) && ((X < 0) != (Y < 0)))
        --Q;
      Result = Oop::fromSmallInt(Q);
      break;
    }
    case SpecialSelector::Modulo: {
      if (Y == 0) {
        Ok = false;
        break;
      }
      intptr_t R = X % Y;
      if (R != 0 && ((R < 0) != (Y < 0)))
        R += Y;
      Result = Oop::fromSmallInt(R);
      break;
    }
    case SpecialSelector::Less:
      Result = Om.boolFor(X < Y);
      break;
    case SpecialSelector::Greater:
      Result = Om.boolFor(X > Y);
      break;
    case SpecialSelector::LessEq:
      Result = Om.boolFor(X <= Y);
      break;
    case SpecialSelector::GreaterEq:
      Result = Om.boolFor(X >= Y);
      break;
    case SpecialSelector::Equal:
      Result = Om.boolFor(X == Y);
      break;
    case SpecialSelector::NotEqual:
      Result = Om.boolFor(X != Y);
      break;
    case SpecialSelector::BitAnd:
      Result = Oop::fromSmallInt(X & Y);
      break;
    case SpecialSelector::BitOr:
      Result = Oop::fromSmallInt(X | Y);
      break;
    case SpecialSelector::BitShift:
      if (Y >= 0 && Y < 48) {
        intptr_t R = X << Y;
        Ok = fitsSmallInt(R) && (R >> Y) == X;
        Result = Oop::fromSmallInt(R);
      } else if (Y < 0 && Y > -64) {
        Result = Oop::fromSmallInt(X >> -Y);
      } else {
        Ok = false;
      }
      break;
    case SpecialSelector::IdentityEq:
    case SpecialSelector::NumSpecialSelectors:
      MST_UNREACHABLE("handled above");
    }
    if (Ok) {
      dropValues(2);
      pushValue(Result);
      return;
    }
  }
  // Fall back to a real send of the mapped selector.
  doSend(Om.known().SpecialSelectors[static_cast<size_t>(S)],
         specialSelectorArgc(S), /*Super=*/false);
}

void Interpreter::activateMethod(Oop Method, unsigned Argc) {
  intptr_t NumTemps =
      ObjectMemory::fetchPointer(Method, MthNumTemps).smallInt();
  intptr_t Frame =
      ObjectMemory::fetchPointer(Method, MthFrameSize).smallInt();
  assert(ObjectMemory::fetchPointer(Method, MthNumArgs).smallInt() ==
             static_cast<intptr_t>(Argc) &&
         "send argument count disagrees with the method");

  uint32_t SlotsNeeded =
      CtxFixedSlots + static_cast<uint32_t>(Frame);
  // Method is an old-space oop: safe to hold across the GC point below.
  Oop NewCtx = allocateContext(SlotsNeeded, Om.known().ClassMethodContext);
  if (NewCtx.isNull()) {
    vmError("OutOfMemoryError: cannot allocate a method context (heap "
            "ceiling reached)");
    return;
  }

  ObjectHeader *N = NewCtx.object();
  N->setClassOop(Om.known().ClassMethodContext);
  Oop *NS = N->slots();
  Oop *CS = CtxH->slots();

  NS[CtxSender] = Roots.ActiveContext;
  OM.writeBarrier(N, Roots.ActiveContext);
  NS[CtxIp] = Oop::fromSmallInt(0);
  NS[CtxMethod] = Method;
  Oop Recv = CS[SpVal - static_cast<intptr_t>(Argc)];
  NS[CtxReceiver] = Recv;
  OM.writeBarrier(N, Recv);
  for (unsigned I = 0; I < Argc; ++I) {
    Oop Arg = CS[SpVal - static_cast<intptr_t>(Argc) + 1 + I];
    NS[CtxFixedSlots + I] = Arg;
    OM.writeBarrier(N, Arg);
  }
  for (intptr_t I = Argc; I < NumTemps; ++I)
    NS[CtxFixedSlots + I] = Om.nil();
  intptr_t NewSp = CtxFixedSlots + NumTemps - 1;
  NS[CtxSp] = Oop::fromSmallInt(NewSp);

  // Pop receiver and arguments from the caller.
  dropValues(Argc + 1);
  writeBackIp();

  Roots.ActiveContext = NewCtx;
  reloadFrame();
}

void Interpreter::doesNotUnderstand(Oop Selector, unsigned Argc) {
  if (Selector == Om.known().SelDoesNotUnderstand) {
    vmError("message not understood (and no doesNotUnderstand: handler)");
    return;
  }
  KnownObjects &K = Om.known();
  writeBackIp();
  HandleStack &HS = OM.handles();
  {
    Oop ArrRaw = OM.allocatePointers(K.ClassArray, Argc);
    reloadFrame();
    if (ArrRaw.isNull()) {
      vmError("OutOfMemoryError: cannot build the doesNotUnderstand: "
              "message (heap ceiling reached)");
      return;
    }
    Handle Arr(HS, ArrRaw);
    for (unsigned I = 0; I < Argc; ++I)
      OM.storePointer(Arr.get(), I,
                      CtxH->slots()[SpVal - static_cast<intptr_t>(Argc) +
                                    1 + I]);
    Oop MsgRaw = OM.allocatePointers(K.ClassMessage, MessageSlotCount);
    reloadFrame();
    if (MsgRaw.isNull()) {
      vmError("OutOfMemoryError: cannot build the doesNotUnderstand: "
              "message (heap ceiling reached)");
      return;
    }
    Handle Msg(HS, MsgRaw);
    OM.storePointer(Msg.get(), MsgSelector, Selector);
    OM.storePointer(Msg.get(), MsgArguments, Arr.get());
    dropValues(Argc);
    pushValue(Msg.get());
  }
  doSend(K.SelDoesNotUnderstand, 1, /*Super=*/false);
}

void Interpreter::doReturn(Oop Value, bool BlockReturn) {
  Oop Nil = Om.nil();
  Oop Target;
  if (BlockReturn) {
    Target = CtxH->slots()[BlkCaller];
  } else if (IsBlock) {
    // ^ inside a block: non-local return to the home method's sender.
    Oop Home = CtxH->slots()[BlkHome];
    Target = Home.object()->slots()[CtxSender];
    if (Target == Nil) {
      vmError("block cannot return: home context already returned");
      return;
    }
  } else {
    Target = CtxH->slots()[CtxSender];
  }

  if (Target == Nil || Target.isNull()) {
    Roots.PendingResult = Value;
    Finished = true;
    return;
  }

  bool Recycle = !IsBlock && !BlockReturn && !CtxH->isEscaped();
  Oop Dead = Roots.ActiveContext;
  // Sever the dead frame's sender link so stale non-local returns through
  // it are detectable.
  if (!IsBlock)
    CtxH->slots()[CtxSender] = Nil;

  Roots.ActiveContext = Target;
  reloadFrame();
  pushValue(Value);
  if (Recycle)
    VM.contextPool().give(Id, Dead);
}

void Interpreter::doBlockCopy(unsigned NumArgs, unsigned Frame) {
  uint32_t SlotsNeeded = BlkFixedSlots + Frame;
  Oop B = allocateContext(SlotsNeeded, Om.known().ClassBlockContext);
  if (B.isNull()) {
    vmError("OutOfMemoryError: cannot allocate a block context (heap "
            "ceiling reached)");
    return;
  }
  ObjectHeader *N = B.object();
  N->setClassOop(Om.known().ClassBlockContext);

  // Recompute home after the GC point and mark it escaped: the block will
  // reference its temps for as long as the block lives.
  Oop HomeOop = IsBlock ? CtxH->slots()[BlkHome] : Roots.ActiveContext;
  HomeH->setEscaped();

  Oop *NS = N->slots();
  NS[BlkCaller] = Om.nil();
  NS[BlkIp] = Oop::fromSmallInt(0);
  NS[BlkSp] = Oop::fromSmallInt(BlkFixedSlots - 1);
  NS[BlkNumArgs] = Oop::fromSmallInt(NumArgs);
  NS[BlkInitialIp] = Oop::fromSmallInt(static_cast<intptr_t>(Ip));
  NS[BlkHome] = HomeOop;
  OM.writeBarrier(N, HomeOop);

  pushValue(B);
}

/// --- errors -----------------------------------------------------------

void Interpreter::vmError(const std::string &Msg) {
  // Build a Smalltalk backtrace by walking the sender/caller chain, the
  // way a debugger would show it.
  std::string Trace;
  Oop Nil = Om.nil();
  Oop Ctx = Roots.ActiveContext;
  for (int Depth = 0; Depth < 12 && Ctx.isPointer() && Ctx != Nil;
       ++Depth) {
    ObjectHeader *H = Ctx.object();
    bool Block = H->classOop() == Om.known().ClassBlockContext;
    Oop Home = Block ? H->slots()[BlkHome] : Ctx;
    Oop Method = Home.isPointer() && Home != Nil
                     ? Home.object()->slots()[CtxMethod]
                     : Oop();
    Trace += "\n    ";
    if (Block)
      Trace += "[] in ";
    if (Method.isPointer()) {
      Oop Sel = ObjectMemory::fetchPointer(Method, MthSelector);
      Oop MthCls = ObjectMemory::fetchPointer(Method, MthClass);
      Trace += Om.className(MthCls) + ">>" +
               ObjectModel::stringValue(Sel);
    } else {
      Trace += "(no method)";
    }
    Ctx = Block ? H->slots()[BlkCaller] : H->slots()[CtxSender];
  }
  VM.logError(Msg + Trace);
  Errored = true;
  Finished = true;
  Roots.PendingResult = Oop();
}

/// --- the bytecode loop ------------------------------------------------

namespace {
/// Set MST_TRACE=1 in the environment to stream executed bytecodes to
/// stderr (driver + workers; slow, debugging only).
bool traceEnabled() {
  static bool Enabled = std::getenv("MST_TRACE") != nullptr;
  return Enabled;
}
} // namespace

RunResult Interpreter::interpretSlice(uint64_t MaxBytecodes) {
  reloadFrame();
  Safepoint &Sp = OM.safepoint();
  uint64_t Executed = 0;
  // Time-based preemption: a Process that buries its slice inside long
  // primitives still yields within TimesliceMicros of processor time
  // (the timer interrupt of real hardware). Only armed for real slices.
  const bool TimedSlice = MaxBytecodes != UINT64_MAX;
  const uint64_t SliceBudgetUs = VM.config().TimesliceMicros;
  const uint64_t SliceStartUs = TimedSlice ? threadCpuMicros() : 0;

  for (;;) {
    if (traceEnabled()) {
      Oop Sel = ObjectMemory::fetchPointer(CurMethod, MthSelector);
      std::fprintf(stderr, "[i%u] %s sp=%ld %s\n", Id,
                   ObjectModel::stringValue(Sel).c_str(),
                   static_cast<long>(SpVal),
                   disassembleOne(Code, Ip).c_str());
    }
    if (Sp.pollNeeded()) {
      writeBackIp();
      Sp.pollSlow();
      reloadFrame();
    }
    if (VM.stopping()) {
      writeBackIp();
      return RunResult::Stopping;
    }
    if (AbortFlag.load(std::memory_order_acquire)) {
      AbortFlag.store(false, std::memory_order_relaxed);
      Aborted = true;
      writeBackIp();
      vmError("RequestTimeout: execution aborted by watchdog");
      return RunResult::Terminated;
    }
    if (++Executed > MaxBytecodes) {
      writeBackIp();
      return RunResult::Yielded;
    }
    if ((Executed & 511) == 0) {
      // The deadline is armed even for untimed (driver) slices: a serve
      // request runs as one runToCompletion call, and this is the only
      // place a runaway `[true] whileTrue.` can be caught in-VM.
      if (DeadlineNs != 0 && Telemetry::nowNs() >= DeadlineNs) {
        Aborted = true;
        writeBackIp();
        vmError("RequestTimeout: request exceeded its deadline");
        return RunResult::Terminated;
      }
      if (TimedSlice &&
          threadCpuMicros() - SliceStartUs > SliceBudgetUs) {
        writeBackIp();
        return RunResult::Yielded;
      }
    }
    ++BytecodeCount;

    Op O = static_cast<Op>(Code[Ip++]);
    switch (O) {
    case Op::PushSelf:
      pushValue(receiver());
      break;
    case Op::PushNil:
      pushValue(Om.nil());
      break;
    case Op::PushTrue:
      pushValue(Om.known().TrueObj);
      break;
    case Op::PushFalse:
      pushValue(Om.known().FalseObj);
      break;
    case Op::PushThisContext:
      CtxH->setEscaped();
      pushValue(Roots.ActiveContext);
      break;
    case Op::PushTemp:
      pushValue(fetchTemp(Code[Ip++]));
      break;
    case Op::PushInstVar:
      pushValue(fetchIvar(Code[Ip++]));
      break;
    case Op::PushLiteral: {
      Oop Lits = ObjectMemory::fetchPointer(CurMethod, MthLiterals);
      pushValue(Lits.object()->slots()[Code[Ip++]]);
      break;
    }
    case Op::PushGlobal: {
      Oop Lits = ObjectMemory::fetchPointer(CurMethod, MthLiterals);
      Oop Assoc = Lits.object()->slots()[Code[Ip++]];
      pushValue(ObjectMemory::fetchPointer(Assoc, AssocValue));
      break;
    }
    case Op::PushSmallInt:
      pushValue(Oop::fromSmallInt(static_cast<int8_t>(Code[Ip++])));
      break;
    case Op::StoreTemp:
      storeTempValue(Code[Ip++], topValue());
      break;
    case Op::StoreInstVar:
      storeIvar(Code[Ip++], topValue());
      break;
    case Op::StoreGlobal: {
      Oop Lits = ObjectMemory::fetchPointer(CurMethod, MthLiterals);
      Oop Assoc = Lits.object()->slots()[Code[Ip++]];
      OM.storePointer(Assoc, AssocValue, topValue());
      break;
    }
    case Op::Pop:
      dropValues(1);
      break;
    case Op::Dup:
      pushValue(topValue());
      break;
    case Op::Jump: {
      int16_t Off = static_cast<int16_t>(Code[Ip] | (Code[Ip + 1] << 8));
      Ip = static_cast<uint32_t>(static_cast<intptr_t>(Ip) + 2 + Off);
      break;
    }
    case Op::JumpIfTrue:
    case Op::JumpIfFalse: {
      int16_t Off = static_cast<int16_t>(Code[Ip] | (Code[Ip + 1] << 8));
      Ip += 2;
      Oop Cond = popValue();
      bool Taken;
      if (Cond == Om.known().TrueObj)
        Taken = O == Op::JumpIfTrue;
      else if (Cond == Om.known().FalseObj)
        Taken = O == Op::JumpIfFalse;
      else {
        vmError("mustBeBoolean: conditional jump on " + Om.describe(Cond));
        break;
      }
      if (Taken)
        Ip = static_cast<uint32_t>(static_cast<intptr_t>(Ip) + Off);
      break;
    }
    case Op::Send: {
      uint8_t LitIdx = Code[Ip++];
      uint8_t Argc = Code[Ip++];
      Oop Lits = ObjectMemory::fetchPointer(CurMethod, MthLiterals);
      Oop Selector = Lits.object()->slots()[LitIdx];
      doSend(Selector, Argc, /*Super=*/false);
      break;
    }
    case Op::SendSuper: {
      uint8_t LitIdx = Code[Ip++];
      uint8_t Argc = Code[Ip++];
      Oop Lits = ObjectMemory::fetchPointer(CurMethod, MthLiterals);
      Oop Selector = Lits.object()->slots()[LitIdx];
      doSend(Selector, Argc, /*Super=*/true);
      break;
    }
    case Op::SendSpecial:
      doSpecialSend(static_cast<SpecialSelector>(Code[Ip++]));
      break;
    case Op::BlockCopy: {
      uint8_t NumArgs = Code[Ip];
      uint8_t Frame = Code[Ip + 1];
      uint16_t Skip =
          static_cast<uint16_t>(Code[Ip + 2] | (Code[Ip + 3] << 8));
      Ip += 4;
      uint32_t BodyStart = Ip;
      doBlockCopy(NumArgs, Frame);
      Ip = BodyStart + Skip;
      break;
    }
    case Op::ReturnTop:
      doReturn(popValue(), /*BlockReturn=*/false);
      break;
    case Op::ReturnSelf:
      doReturn(receiver(), /*BlockReturn=*/false);
      break;
    case Op::BlockReturn:
      doReturn(popValue(), /*BlockReturn=*/true);
      break;
    }

    if (Finished)
      return RunResult::Terminated;
    if (FlagBlocked) {
      FlagBlocked = false;
      return RunResult::Blocked;
    }
    if (FlagYield) {
      FlagYield = false;
      writeBackIp();
      return RunResult::Yielded;
    }
  }
}

/// --- process plumbing -------------------------------------------------

bool Interpreter::activateProcess(Oop Proc) {
  Roots.ActiveProcess = Proc;
  Oop Ctx = ObjectMemory::fetchPointer(Proc, ProcSuspendedContext);
  if (Ctx == Om.nil() || Ctx.isNull())
    return false;
  Roots.ActiveContext = Ctx;
  return true;
}

void Interpreter::saveProcessState() {
  writeBackIp();
  OM.storePointer(Roots.ActiveProcess, ProcSuspendedContext,
                  Roots.ActiveContext);
}

void Interpreter::runLoop() {
  OM.registerMutator("interpreter-" + std::to_string(Id));
  Profiler::registerThread("vp" + std::to_string(Id),
                           static_cast<int>(Id));
  Safepoint &Sp = OM.safepoint();

  while (!VM.stopping()) {
    if (Sp.pollNeeded())
      Sp.pollSlow();

    Oop P = VM.scheduler().pickProcessToRun();
    if (P.isNull()) {
      BlockedRegion Region(Sp);
      VM.scheduler().waitForWork();
      continue;
    }
    if (!activateProcess(P)) {
      VM.scheduler().terminateProcess(P);
      Roots.ActiveProcess = Oop();
      continue;
    }

    Finished = Errored = FlagBlocked = FlagYield = false;
    uint64_t CpuBefore = threadCpuMicros();
    RunResult R = interpretSlice(VM.config().TimesliceBytecodes);

    // The process oop may have moved during the slice; use the root.
    Oop Proc = Roots.ActiveProcess;

    // Attribute the slice's processor time to the Smalltalk Process (see
    // ProcAccumUs). Thread-CPU time excludes descheduled periods, so the
    // attribution stays meaningful when interpreters outnumber host CPUs.
    {
      uint64_t CpuDelta = threadCpuMicros() - CpuBefore;
      intptr_t Prev =
          ObjectMemory::fetchPointer(Proc, ProcAccumUs).isSmallInt()
              ? ObjectMemory::fetchPointer(Proc, ProcAccumUs).smallInt()
              : 0;
      OM.storePointer(Proc, ProcAccumUs,
                      Oop::fromSmallInt(Prev +
                                        static_cast<intptr_t>(CpuDelta)));
    }
    switch (R) {
    case RunResult::Yielded:
      saveProcessState();
      VM.scheduler().yieldProcess(Proc);
      break;
    case RunResult::Blocked:
      // State already saved by the blocking primitive.
      break;
    case RunResult::Terminated:
      VM.scheduler().terminateProcess(Proc);
      break;
    case RunResult::Stopping:
      saveProcessState();
      VM.scheduler().yieldProcess(Proc);
      break;
    }
    Roots.ActiveProcess = Oop();
    Roots.ActiveContext = Oop();
    if (R == RunResult::Stopping)
      break;
  }
  Profiler::retireThread();
  OM.unregisterMutator();
}

Oop Interpreter::runToCompletion(Oop Ctx) {
  Roots.ActiveProcess = Oop();
  Roots.ActiveContext = Ctx;
  Roots.PendingResult = Oop();
  Finished = Errored = FlagBlocked = FlagYield = false;
  Aborted = false;

  for (;;) {
    RunResult R = interpretSlice(UINT64_MAX);
    if (R == RunResult::Terminated)
      break;
    if (R == RunResult::Stopping) {
      Roots.ActiveContext = Oop();
      return Oop();
    }
    // Yielded (explicit Processor yield in a doIt): just keep going.
    if (R == RunResult::Blocked) {
      // Cannot happen: blocking primitives error out without a process.
      MST_UNREACHABLE("driver execution blocked");
    }
  }
  Roots.ActiveContext = Oop();
  Oop Result = Roots.PendingResult;
  Roots.PendingResult = Oop();
  return Errored ? Oop() : Result;
}
