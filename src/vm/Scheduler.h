//===-- vm/Scheduler.h - Smalltalk Process scheduling -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling of Smalltalk Processes onto interpreter processes.
///
/// Structure follows the paper faithfully:
///  - **Serialization** (§3.1): one lock guards the single priority queue;
///    scheduling events (signals, suspends, resumes) are infrequent.
///  - **Single ready queue** (§3.2): although the interpreter is
///    replicated, the ProcessorScheduler is not — one queue, so Smalltalk
///    Processes are *dynamically* assigned to interpreter processes and
///    never need moving between queues.
///  - **Reorganization** (§3.3): the VM ignores the activeProcess slot;
///    `thisProcess` and `canRun:` replace `activeProcess`; a running
///    Process is NOT removed from the ready queue, so "the ready queue
///    contains all Processes which are ready to run including those
///    running". The activeProcess slot is only filled in before a snapshot
///    and emptied afterwards.
///
/// The queue itself is made of Smalltalk objects (Process links inside
/// LinkedLists hanging off the Processor object), fully visible at the
/// user level, exactly as in Smalltalk-80.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_SCHEDULER_H
#define MST_VM_SCHEDULER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "objmem/Safepoint.h"
#include "obs/Telemetry.h"
#include "vkernel/SpinLock.h"
#include "vm/ObjectModel.h"

namespace mst {

/// C++ face of the (single) ProcessorScheduler.
class Scheduler {
public:
  Scheduler(ObjectModel &Om, Safepoint &Sp);

  /// Creates a new suspended Process (new space: the caller must treat
  /// this as a GC point). \p InitialContext is its suspended context.
  Oop createProcess(Oop InitialContext, int Priority,
                    const std::string &Name);

  /// Puts \p Proc on the ready queue (resume / initial schedule) and wakes
  /// an idle interpreter.
  void addReadyProcess(Oop Proc);

  /// Picks the highest-priority ready Process not already running and
  /// marks it running. The Process **stays in the queue** (reorganized
  /// canRun: semantics). \returns null when nothing is runnable.
  Oop pickProcessToRun();

  /// Ends \p Proc's turn: moves it to the back of its priority list and
  /// clears its running flag (timeslice round-robin / Processor yield).
  void yieldProcess(Oop Proc);

  /// Semaphore wait on behalf of the running \p Proc. \returns true when
  /// the process blocked (caller must reschedule); false when an excess
  /// signal was consumed and the process continues.
  bool semaphoreWait(Oop Sem, Oop Proc);

  /// Semaphore signal: unblocks the longest-waiting process, or banks an
  /// excess signal.
  void semaphoreSignal(Oop Sem);

  /// Removes \p Proc from whatever list it is on (ready or semaphore).
  /// A process running on another interpreter keeps executing until its
  /// slice ends; that interpreter then notices the empty myList and drops
  /// it (the §3.3 concurrency caveat: manipulating an active Process is
  /// inherently racy at user level).
  void suspendProcess(Oop Proc);

  /// Puts a suspended \p Proc back on the ready queue.
  void resumeProcess(Oop Proc);

  /// Terminates \p Proc: removes it from its list and clears its context.
  void terminateProcess(Oop Proc);

  /// \returns true when \p Proc is on the ready queue (running included) —
  /// the reorganized replacement for "is Process x active?".
  bool canRun(Oop Proc);

  /// Clears the running flag after a slice; re-queues nothing (the process
  /// never left the queue). \returns false when the process was suspended
  /// or terminated meanwhile and must not continue.
  bool releaseAfterSlice(Oop Proc);

  /// Blocks the calling interpreter until work may be available. The
  /// caller must hold no heap references (blocked region).
  void waitForWork();

  /// Wakes idle interpreters.
  void notifyWork();

  /// §3.3 snapshot compatibility: fill in the activeProcess slot before a
  /// snapshot and empty it afterwards.
  void fillActiveProcessSlot(Oop Proc);
  void emptyActiveProcessSlot();

  /// \returns the number of ready (runnable or running) processes.
  unsigned readyCount();

  /// Lock instrumentation for the contention benches.
  SpinLock &lock() { return Lock; }

private:
  /// Linked-list helpers over the Smalltalk objects; callers hold Lock.
  void llAppend(Oop List, Oop Proc);
  bool llRemove(Oop List, Oop Proc);
  Oop llRemoveFirst(Oop List);

  Oop readyListFor(Oop Proc);

  ObjectModel &Om;
  Safepoint &Sp;
  SpinLock Lock;
  Counter Picks{"sched.picks"};
  Counter Yields{"sched.yields"};

  std::mutex IdleMutex;
  std::condition_variable IdleCv;
  uint64_t WorkEpoch = 0;
};

} // namespace mst

#endif // MST_VM_SCHEDULER_H
