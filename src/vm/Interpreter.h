//===-- vm/Interpreter.h - The replicated interpreter -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode interpreter. MS obtains parallelism by replicating the
/// interpretation process (paper §3.2): each Interpreter instance runs as
/// one lightweight V process, and all of them execute Smalltalk Processes
/// drawn dynamically from the single shared ready queue.
///
/// Resources used continuously by an interpreter are replicated with it
/// (method cache, free context list — policy-dependent); everything shared
/// (allocation, scheduling, entry table, I/O queues) is serialized; and
/// the interpreter's "notion of the active process" lives here, not in the
/// ProcessorScheduler (§3.3 reorganization).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_INTERPRETER_H
#define MST_VM_INTERPRETER_H

#include <atomic>
#include <cstdint>
#include <string>

#include "objmem/ObjectMemory.h"
#include "vm/Bytecode.h"
#include "vm/ObjectModel.h"

namespace mst {

class VirtualMachine;

/// The per-interpreter oop roots, updated by the scavenger.
struct InterpreterRoots {
  Oop ActiveProcess;
  Oop ActiveContext;
  Oop PendingResult; ///< result of a finished bottom context
};

/// Why a slice of interpretation ended.
enum class RunResult : uint8_t {
  Yielded,    ///< timeslice expired or Processor yield
  Blocked,    ///< active process blocked (semaphore wait / suspend)
  Terminated, ///< active process finished or was terminated / errored
  Stopping,   ///< the VM is shutting down
};

/// One interpretation process.
class Interpreter {
public:
  Interpreter(VirtualMachine &VM, unsigned Id);

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  unsigned id() const { return Id; }

  /// Thread body for a worker interpreter: pick runnable Smalltalk
  /// Processes from the shared queue and run them until VM shutdown.
  /// Registers itself as a mutator.
  void runLoop();

  /// Runs \p Ctx (a bottom context: nil sender) to completion on the
  /// calling thread, which must be a registered mutator. Used by the
  /// driver for doIts and by tests. \returns the returned value, or the
  /// null oop when the execution errored (see VirtualMachine::errors()).
  Oop runToCompletion(Oop Ctx);

  InterpreterRoots &roots() { return Roots; }

  uint64_t bytecodesExecuted() const { return BytecodeCount; }
  uint64_t sendsExecuted() const { return SendCount; }

  /// --- asynchronous abort / deadlines -----------------------------------
  ///
  /// A watchdog on another thread can abort whatever this interpreter is
  /// running: requestAbort() arms a flag the bytecode loop checks at the
  /// same per-bytecode poll as the safepoint/stopping checks. The next
  /// poll unwinds the running execution with a catchable RequestTimeout
  /// error (heap and scheduler stay consistent — the abort only ever
  /// fires at a bytecode boundary). The release store pairs with the
  /// loop's acquire load; no other ordering is required because the abort
  /// carries no payload, only the edge.
  void requestAbort() {
    AbortFlag.store(true, std::memory_order_release);
  }

  /// Drops any abort that is still pending (it arrived after the victim
  /// finished on its own). Called between requests by the owner of the
  /// abort protocol; never concurrently with the loop consuming it.
  void clearAbort() {
    AbortFlag.store(false, std::memory_order_relaxed);
  }

  /// Arms (non-zero) or disarms (0) an absolute deadline, in
  /// Telemetry::nowNs time. Checked every 512 bytecodes even in untimed
  /// driver slices; on expiry the execution unwinds exactly like
  /// requestAbort(). Owner-thread only (the driver arms its own deadline
  /// before running a request).
  void setDeadlineNs(uint64_t Ns) { DeadlineNs = Ns; }

  /// True — and self-clearing — when the last execution was unwound by
  /// requestAbort() or a deadline expiry. Owner-thread only.
  bool takeAborted() {
    bool A = Aborted;
    Aborted = false;
    return A;
  }

private:
  // --- frame cache (refreshed after every GC point)
  void reloadFrame();
  void writeBackIp();

  Oop *ctxSlots() { return CtxH->slots(); }
  void pushValue(Oop V);
  Oop popValue();
  Oop topValue(unsigned Down = 0);
  void dropValues(unsigned N);

  // --- temp / receiver / instvar access (blue-book home indirection)
  Oop fetchTemp(unsigned Idx);
  void storeTempValue(unsigned Idx, Oop V);
  Oop receiver();
  Oop fetchIvar(unsigned Idx);
  void storeIvar(unsigned Idx, Oop V);

  // --- execution
  RunResult interpretSlice(uint64_t MaxBytecodes);
  void doSend(Oop Selector, unsigned Argc, bool Super);
  void doSpecialSend(SpecialSelector S);
  void activateMethod(Oop Method, unsigned Argc);
  void doesNotUnderstand(Oop Selector, unsigned Argc);
  void doReturn(Oop Value, bool BlockReturn);
  void doBlockCopy(unsigned NumArgs, unsigned Frame);

  /// Allocates (or recycles) a context with \p SlotsNeeded body slots of
  /// class \p Cls. A GC point; the frame cache is refreshed.
  Oop allocateContext(uint32_t SlotsNeeded, Oop Cls);

  // --- primitives (Primitives.cpp)
  enum class PrimResult : uint8_t { Success, Fail };
  PrimResult dispatchPrimitive(int Index, unsigned Argc);

  /// Reports a VM-level error: logs it and terminates the active process.
  void vmError(const std::string &Msg);

  // --- process plumbing for runLoop
  bool activateProcess(Oop Proc);
  void saveProcessState();

  VirtualMachine &VM;
  ObjectModel &Om;
  ObjectMemory &OM;
  unsigned Id;

  InterpreterRoots Roots;

  // Frame cache. Code points into an old-space ByteArray (compiled code is
  // permanent), so it survives scavenges; CtxH and HomeH do not and are
  // reloaded at GC points.
  ObjectHeader *CtxH = nullptr;
  ObjectHeader *HomeH = nullptr; // == CtxH for method contexts
  bool IsBlock = false;
  Oop CurMethod;
  const uint8_t *Code = nullptr;
  uint32_t Ip = 0;
  intptr_t SpVal = 0;

  // Slice control flags set by sends/primitives.
  bool Finished = false;
  bool Errored = false;
  bool FlagBlocked = false;
  bool FlagYield = false;

  // Asynchronous abort (set by any thread, consumed by the loop) and the
  // owner-thread deadline/result bookkeeping around it.
  std::atomic<bool> AbortFlag{false};
  uint64_t DeadlineNs = 0;
  bool Aborted = false;

  uint64_t BytecodeCount = 0;
  uint64_t SendCount = 0;
};

} // namespace mst

#endif // MST_VM_INTERPRETER_H
