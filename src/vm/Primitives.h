//===-- vm/Primitives.h - Primitive operation indices -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numbered primitive operations, referenced from method source with the
/// <primitive: N> pragma. Failure of a primitive falls through to the
/// method's Smalltalk body, exactly as in Smalltalk-80 — the mechanism MS
/// uses for image compatibility (paper §3.3: a new primitive that fails on
/// an old interpreter falls back to the old code).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_PRIMITIVES_H
#define MST_VM_PRIMITIVES_H

namespace mst {

enum Primitive : int {
  PrimNone = 0,

  // Object access.
  PrimAt = 1,
  PrimAtPut = 2,
  PrimSize = 3,
  PrimBasicNew = 4,
  PrimBasicNewSize = 5,
  PrimClass = 6,
  PrimIdentityHash = 7,
  PrimShallowCopy = 8,
  PrimReplaceFromTo = 9, ///< replaceFrom:to:with:startingAt:
  PrimAsSymbol = 10,
  PrimSymbolAsString = 11,
  PrimCharFromValue = 13,
  PrimIdentical = 14,
  PrimInstVarAt = 16,
  PrimInstVarAtPut = 17,
  PrimStringEqual = 18,

  // Blocks.
  PrimBlockValue = 20, ///< value, value:, value:value:, ...

  // Processes.
  PrimNewProcess = 25, ///< aBlock newProcessAt: priority
  PrimResumeProcess = 26,
  PrimSuspendProcess = 27,
  PrimTerminateProcess = 28,
  PrimYield = 29,

  // Semaphores.
  PrimSemaphoreSignal = 30,
  PrimSemaphoreWait = 31,

  // Reorganized scheduler queries (paper §3.3).
  PrimCanRun = 35,     ///< Processor canRun: aProcess
  PrimThisProcess = 36,///< Processor thisProcess

  // I/O and clock.
  PrimDisplayShow = 40,
  PrimNextEvent = 41,
  PrimMillisecondClock = 42,

  // Tools.
  PrimCompileInto = 50, ///< Compiler compile: source into: class
  PrimDecompile = 51,   ///< Decompiler decompile: method
  PrimSubclass = 55,    ///< super subclass: #Name instanceVariableNames:
                        ///< 'a b' category: 'Cat' — creates and installs
                        ///< a class, the browser's accept action

  // Host coupling and VM services.
  PrimHostSignal = 60,
  PrimForceScavenge = 62,
  PrimErrorReport = 63,
  PrimFullGC = 64, ///< fullCollect — scavenge + mark-sweep of old space
  PrimLowSpaceSemaphore = 65, ///< registers the low-space Semaphore
                              ///< (Smalltalk-80's lowSpaceSemaphore:)
  PrimPerformWith = 70, ///< perform: selector withArguments: array
};

} // namespace mst

#endif // MST_VM_PRIMITIVES_H
