//===-- vm/ObjectModel.h - Classes, layouts, well-known objects -*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Smalltalk object model: slot layouts for the kernel classes the VM
/// must understand (classes, method dictionaries, compiled methods,
/// contexts, processes, semaphores), the table of well-known objects, and
/// helpers for constructing and inspecting them from C++.
///
/// Only layouts the *interpreter* depends on are fixed here; collection
/// classes (OrderedCollection, Dictionary, streams) are defined purely in
/// Smalltalk by the bootstrap image — with the single exception of the
/// SystemDictionary probe sequence, which C++ and Smalltalk both implement
/// and must agree on.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_OBJECTMODEL_H
#define MST_VM_OBJECTMODEL_H

#include <string>
#include <vector>

#include "objmem/ObjectMemory.h"
#include "vm/Bytecode.h"
#include "vm/SymbolTable.h"

namespace mst {

/// --- Slot layouts ----------------------------------------------------------

/// Behavior/Class/Metaclass instances (8 slots).
enum ClassSlot : uint32_t {
  ClsSuperclass = 0,
  ClsMethodDict = 1,
  ClsInstSpec = 2,   // SmallInt; see ClassKind / instSpec helpers
  ClsName = 3,       // Symbol
  ClsInstVarNames = 4, // Array of Symbols (inherited names included)
  ClsOrganization = 5, // category string -> selectors; built by the image
  ClsCategory = 6,   // String: the class's own system category
  ClsComment = 7,    // String or nil
  ClassSlotCount = 8,
};

/// How instances of a class are laid out.
enum class ClassKind : uint8_t {
  Fixed = 0,       ///< named fields only
  IdxPointers = 1, ///< named fields then indexable oop fields (Array)
  IdxBytes = 2,    ///< indexable bytes (String, Symbol, ByteArray)
};

/// \returns the InstSpec SmallInteger payload for \p Kind / \p Fixed.
inline intptr_t encodeInstSpec(ClassKind Kind, uint32_t Fixed) {
  return static_cast<intptr_t>(Fixed) << 2 | static_cast<intptr_t>(Kind);
}
inline ClassKind instSpecKind(intptr_t Spec) {
  return static_cast<ClassKind>(Spec & 3);
}
inline uint32_t instSpecFixed(intptr_t Spec) {
  return static_cast<uint32_t>(Spec >> 2);
}

/// MethodDictionary instances.
enum MethodDictSlot : uint32_t {
  MdTally = 0,
  MdTable = 1, // Array of interleaved [selector, method] pairs; capacity is
               // a power of two; a null-oop... (nil) selector marks empty.
  MethodDictSlotCount = 2,
};

/// CompiledMethod instances.
enum MethodSlot : uint32_t {
  MthNumArgs = 0,
  MthNumTemps = 1, // arguments included
  MthPrimitive = 2, // SmallInt primitive index; 0 = none
  MthFrameSize = 3, // stack slots needed beyond the fixed context fields
  MthSelector = 4,
  MthLiterals = 5,  // Array
  MthBytecodes = 6, // ByteArray
  MthSource = 7,    // String or nil
  MthClass = 8,     // class the method was compiled for (super sends)
  MethodSlotCount = 9,
};

/// MethodContext instances (Format::Context). Slot 2 must be the stack
/// pointer (ContextSpSlotIndex) — the scavenger depends on it.
enum MethodContextSlot : uint32_t {
  CtxSender = 0,
  CtxIp = 1,
  CtxSp = 2,
  CtxMethod = 3,
  CtxReceiver = 4,
  CtxFixedSlots = 5, // temps then stack follow
};

/// BlockContext instances (Format::Context).
enum BlockContextSlot : uint32_t {
  BlkCaller = 0,
  BlkIp = 1,
  BlkSp = 2,
  BlkNumArgs = 3,
  BlkInitialIp = 4,
  BlkHome = 5,
  BlkFixedSlots = 6, // stack follows
};

/// Context allocation size classes; BS kept a free list of stack frames
/// because reuse beats allocate-and-initialize (paper §3.2).
enum : uint32_t {
  SmallContextSlots = 32,
  LargeContextSlots = 96,
};

/// Process instances.
enum ProcessSlot : uint32_t {
  ProcNextLink = 0,
  ProcSuspendedContext = 1,
  ProcPriority = 2, // SmallInt 1..8
  ProcMyList = 3,   // the LinkedList/Semaphore it waits or runs on, or nil
  ProcName = 4,     // String or nil
  ProcRunning = 5,  // SmallInt: 0 idle, 1 running on some interpreter
  ProcAccumUs = 6,  // SmallInt: attributed processor time (microseconds).
                    // On a uniprocessor host the Firefly's parallelism
                    // degenerates to time-sharing; this per-Process
                    // thread-CPU attribution recovers the "processor
                    // time per benchmark" quantity Table 2 reports.
  ProcessSlotCount = 7,
};

/// LinkedList instances (also the first two slots of Semaphore).
enum LinkedListSlot : uint32_t {
  LlFirstLink = 0,
  LlLastLink = 1,
  LinkedListSlotCount = 2,
};

/// Semaphore instances: a LinkedList plus excess signals.
enum SemaphoreSlot : uint32_t {
  SemFirstLink = 0,
  SemLastLink = 1,
  SemExcessSignals = 2,
  SemaphoreSlotCount = 3,
};

/// ProcessorScheduler: the Smalltalk-visible face of scheduling. There is
/// exactly one; MS keeps a single ready queue of Processes rather than one
/// per interpreter (paper §3.2), and *ignores* the activeProcess slot — it
/// is only filled in around snapshots (paper §3.3, reorganization).
enum SchedulerSlot : uint32_t {
  SchedQuiescentProcessLists = 0, // Array of NumPriorities LinkedLists
  SchedActiveProcess = 1,
  SchedulerSlotCount = 2,
};

constexpr unsigned NumPriorities = 8;

/// Association instances (globals are Associations in the system dict).
enum AssociationSlot : uint32_t {
  AssocKey = 0,
  AssocValue = 1,
  AssociationSlotCount = 2,
};

/// SystemDictionary instances. The probe sequence is mirrored by the
/// Smalltalk implementation in the bootstrap image.
enum SystemDictSlot : uint32_t {
  SysTally = 0,
  SysTable = 1, // Array of Associations; nil = empty slot; linear probe
  SystemDictSlotCount = 2,
};

/// Character instances.
enum CharacterSlot : uint32_t {
  CharValue = 0,
  CharacterSlotCount = 1,
};

/// Message instances (doesNotUnderstand: argument).
enum MessageSlot : uint32_t {
  MsgSelector = 0,
  MsgArguments = 1,
  MessageSlotCount = 2,
};

/// --- Well-known objects ------------------------------------------------

/// Every object the VM needs a direct handle on.
struct KnownObjects {
  Oop NilObj, TrueObj, FalseObj;

  // The metaclass kernel.
  Oop ClassObject;     // Object
  Oop ClassBehavior;   // Behavior
  Oop ClassClass;      // Class
  Oop ClassMetaclass;  // Metaclass
  Oop ClassUndefinedObject;
  Oop ClassBoolean, ClassTrue, ClassFalse;
  Oop ClassMagnitude, ClassNumber, ClassInteger, ClassSmallInteger;
  Oop ClassCharacter;
  Oop ClassCollection, ClassSequenceableCollection, ClassArrayedCollection;
  Oop ClassString, ClassSymbol, ClassArray, ClassByteArray;
  Oop ClassMethodDictionary, ClassCompiledMethod;
  Oop ClassMethodContext, ClassBlockContext;
  Oop ClassLink, ClassProcess, ClassLinkedList, ClassSemaphore;
  Oop ClassProcessorScheduler;
  Oop ClassAssociation, ClassSystemDictionary;
  Oop ClassMessage;

  // Singletons.
  Oop SmalltalkDict; // the system dictionary of globals
  Oop Processor;     // the ProcessorScheduler instance

  // The character table: 256 interned Character instances.
  Oop CharacterTable;

  // Selector oops the VM sends itself.
  Oop SelDoesNotUnderstand; // #doesNotUnderstand:

  // Special-send fallback selectors, indexed by SpecialSelector.
  Oop SpecialSelectors[static_cast<size_t>(
      SpecialSelector::NumSpecialSelectors)];

  /// Visits every oop cell for root walking.
  template <typename Visitor> void visitRoots(const Visitor &V) {
    for (Oop *P : {&NilObj, &TrueObj, &FalseObj, &ClassObject,
                   &ClassBehavior, &ClassClass, &ClassMetaclass,
                   &ClassUndefinedObject, &ClassBoolean, &ClassTrue,
                   &ClassFalse, &ClassMagnitude, &ClassNumber,
                   &ClassInteger, &ClassSmallInteger, &ClassCharacter,
                   &ClassCollection, &ClassSequenceableCollection,
                   &ClassArrayedCollection, &ClassString, &ClassSymbol,
                   &ClassArray, &ClassByteArray, &ClassMethodDictionary,
                   &ClassCompiledMethod, &ClassMethodContext,
                   &ClassBlockContext, &ClassLink, &ClassProcess,
                   &ClassLinkedList, &ClassSemaphore,
                   &ClassProcessorScheduler, &ClassAssociation,
                   &ClassSystemDictionary, &ClassMessage, &SmalltalkDict,
                   &Processor, &CharacterTable, &SelDoesNotUnderstand})
      V(P);
    for (Oop &S : SpecialSelectors)
      V(&S);
  }
};

/// --- The object model facade ---------------------------------------------

/// Construction and inspection helpers over ObjectMemory, plus the known
/// objects and the symbol table. One per VirtualMachine.
class ObjectModel {
public:
  explicit ObjectModel(ObjectMemory &OM);

  ObjectModel(const ObjectModel &) = delete;
  ObjectModel &operator=(const ObjectModel &) = delete;

  /// Builds nil/true/false, the metaclass kernel, the core class skeletons,
  /// the character table, the system dictionary, the scheduler instance,
  /// and the special-selector table. Registers the root walker. Must be
  /// called once, from a registered mutator, before anything else.
  void initCore();

  ObjectMemory &memory() { return OM; }
  KnownObjects &known() { return K; }
  SymbolTable &symbols() { return Symbols; }

  Oop nil() const { return K.NilObj; }

  /// \returns the class of any oop (SmallIntegers included).
  Oop classOf(Oop O) const {
    return O.isSmallInt() ? K.ClassSmallInteger : O.object()->classOop();
  }

  /// \returns true when \p O is \p Cls or a subclass instance.
  bool isKindOf(Oop O, Oop Cls) const;

  /// \returns the identity hash the image sees (value for SmallIntegers,
  /// header hash otherwise).
  static intptr_t identityHash(Oop O) {
    return O.isSmallInt() ? O.smallInt()
                          : static_cast<intptr_t>(O.object()->Hash);
  }

  /// --- Classes ---------------------------------------------------------

  /// Creates a class (and its metaclass) in old space. \p InstVarNames are
  /// this class's *own* instance variables; inherited ones are prepended
  /// automatically. Does not install the class in the system dictionary.
  Oop makeClass(Oop Superclass, const std::string &Name, ClassKind Kind,
                const std::vector<std::string> &InstVarNames,
                const std::string &Category);

  /// \returns the class's name as a C++ string.
  std::string className(Oop Cls) const;

  /// \returns total named fields of instances of \p Cls.
  uint32_t fixedFieldsOf(Oop Cls) const {
    return instSpecFixed(ObjectMemory::fetchPointer(Cls, ClsInstSpec)
                             .smallInt());
  }

  ClassKind kindOf(Oop Cls) const {
    return instSpecKind(ObjectMemory::fetchPointer(Cls, ClsInstSpec)
                            .smallInt());
  }

  /// Creates an instance of \p Cls with \p IndexableSize indexable fields
  /// (0 for Fixed classes). New-space unless \p Old.
  Oop instantiate(Oop Cls, uint32_t IndexableSize, bool Old = false);

  /// --- Strings, symbols, characters -------------------------------------

  Oop makeString(const std::string &S, bool Old = false);
  Oop makeByteArray(const std::vector<uint8_t> &Bytes, bool Old = false);

  /// \returns the contents of a String/Symbol/ByteArray as a C++ string.
  static std::string stringValue(Oop S);

  /// \returns the unique Symbol for \p Name.
  Oop intern(const std::string &Name) { return Symbols.intern(OM, Name); }

  /// \returns the Character for byte \p C (from the character table).
  Oop characterFor(uint8_t C) const {
    return ObjectMemory::fetchPointer(K.CharacterTable, C);
  }

  /// --- Arrays and associations ------------------------------------------

  /// Creates an Array holding \p Elements. With Old=false this is a GC
  /// point; the caller's oops in \p Elements are raw copies that would go
  /// stale, so new-space arrays must be built element-wise by the caller
  /// with handles instead — this overload asserts Old for safety.
  Oop makeArray(const std::vector<Oop> &Elements, bool Old);

  Oop makeAssociation(Oop Key, Oop Value, bool Old);

  /// --- Method dictionaries ----------------------------------------------

  Oop mdNew(uint32_t Capacity = 8);

  /// \returns the method for \p Selector in \p Md, or null oop.
  Oop mdLookup(Oop Md, Oop Selector) const;

  /// Installs \p Method under \p Selector in \p Cls's dictionary,
  /// rebuilding the table when load demands. Thread-safe against readers:
  /// a new table array is published with a single pointer store.
  void mdAddMethod(Oop Cls, Oop Selector, Oop Method);

  /// Calls \p Fn for every (selector, method) pair in \p Md.
  void mdForEach(Oop Md,
                 const std::function<void(Oop Sel, Oop Mth)> &Fn) const;

  /// --- Method lookup -----------------------------------------------------

  struct LookupResult {
    Oop Method;         // null when not understood
    Oop DefiningClass;  // class whose dictionary supplied the method
  };

  /// Looks \p Selector up in \p Cls and its superclass chain.
  LookupResult lookupMethod(Oop Cls, Oop Selector) const;

  /// --- Globals -----------------------------------------------------------

  /// \returns the Association for \p Name in the system dictionary,
  /// creating it (with nil value) when \p CreateIfAbsent.
  Oop globalAssociation(const std::string &Name, bool CreateIfAbsent);

  /// \returns the value of global \p Name, or null oop when absent.
  Oop globalAt(const std::string &Name);

  /// Binds global \p Name to \p Value (creating the Association).
  void globalPut(const std::string &Name, Oop Value);

  /// Calls \p Fn for every Association in the system dictionary.
  void globalsForEach(const std::function<void(Oop Assoc)> &Fn);

  /// --- Booleans ----------------------------------------------------------

  Oop boolFor(bool B) const { return B ? K.TrueObj : K.FalseObj; }

  /// --- Debug -------------------------------------------------------------

  /// \returns a short description like "a Point", "42", "#foo", "'abc'".
  std::string describe(Oop O) const;

private:
  /// Allocates a raw 8-slot class object in old space.
  Oop allocClassShell(Oop Metaclass);
  void fillClass(Oop Cls, Oop Superclass, Oop NameSym, intptr_t InstSpec,
                 Oop InstVarNames, const std::string &Category);

  ObjectMemory &OM;
  KnownObjects K;
  SymbolTable Symbols;
  /// Serializes method-dictionary and system-dictionary *writes*; reads are
  /// lock-free (tables are published by pointer store).
  SpinLock DictWriteLock;
};

} // namespace mst

#endif // MST_VM_OBJECTMODEL_H
