//===-- vm/CodeGen.cpp - Bytecode generation --------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeGen.h"

#include <cstring>

#include "support/Assert.h"

using namespace mst;

CodeGen::CodeGen(ObjectModel &Om, Oop Cls) : Om(Om), Cls(Cls) {}

bool CodeGen::failGen(const std::string &Msg) {
  if (!HadError) {
    HadError = true;
    Error = Msg;
  }
  return false;
}

void CodeGen::patchJumpToHere(size_t Pos) {
  intptr_t Off = static_cast<intptr_t>(Code.size()) -
                 static_cast<intptr_t>(Pos) - 2;
  assert(Off >= INT16_MIN && Off <= INT16_MAX && "jump out of range");
  Code[Pos] = static_cast<uint8_t>(Off & 0xff);
  Code[Pos + 1] = static_cast<uint8_t>((Off >> 8) & 0xff);
}

void CodeGen::emitJumpTo(Op O, size_t Target) {
  emitOp(O);
  intptr_t Off = static_cast<intptr_t>(Target) -
                 (static_cast<intptr_t>(Code.size()) + 2);
  assert(Off >= INT16_MIN && Off <= INT16_MAX && "jump out of range");
  emitS16(static_cast<int16_t>(Off));
}

unsigned CodeGen::addLiteral(Oop Lit) {
  for (size_t I = 0; I < Literals.size(); ++I)
    if (Literals[I] == Lit)
      return static_cast<unsigned>(I);
  Literals.push_back(Lit);
  return static_cast<unsigned>(Literals.size() - 1);
}

uint8_t CodeGen::addTemp(const std::string &Name) {
  TempNames.push_back(Name);
  return static_cast<uint8_t>(TempNames.size() - 1);
}

int CodeGen::findTemp(const std::string &Name) const {
  // Innermost (most recently added) binding wins.
  for (int I = static_cast<int>(TempNames.size()) - 1; I >= 0; --I)
    if (TempNames[static_cast<size_t>(I)] == Name)
      return I;
  return -1;
}

int CodeGen::findIvar(const std::string &Name) const {
  Oop Names = ObjectMemory::fetchPointer(Cls, ClsInstVarNames);
  if (Names == Om.nil() || Names.isNull())
    return -1;
  ObjectHeader *H = Names.object();
  for (uint32_t I = 0; I < H->SlotCount; ++I)
    if (ObjectModel::stringValue(H->slots()[I]) == Name)
      return static_cast<int>(I);
  return -1;
}

/// --- literals ------------------------------------------------------------

Oop CodeGen::literalFor(const ExprNode &E) {
  switch (E.K) {
  case ExprNode::Kind::IntLit:
    return Oop::fromSmallInt(E.IntValue);
  case ExprNode::Kind::CharLit:
    return Om.characterFor(static_cast<uint8_t>(E.CharValue));
  case ExprNode::Kind::StrLit:
    return Om.makeString(E.Text, /*Old=*/true);
  case ExprNode::Kind::SymLit:
    return Om.intern(E.Text);
  case ExprNode::Kind::Ident:
    if (E.Text == "nil")
      return Om.nil();
    if (E.Text == "true")
      return Om.known().TrueObj;
    if (E.Text == "false")
      return Om.known().FalseObj;
    return Oop();
  case ExprNode::Kind::ArrayLit: {
    std::vector<Oop> Elems;
    for (const ExprPtr &El : E.Elements) {
      Oop V = literalFor(*El);
      if (V.isNull() && El->K != ExprNode::Kind::Ident)
        return Oop();
      if (V.isNull())
        return Oop();
      Elems.push_back(V);
    }
    return Om.makeArray(Elems, /*Old=*/true);
  }
  default:
    return Oop();
  }
}

bool CodeGen::genLiteralPush(const ExprNode &E) {
  if (E.K == ExprNode::Kind::IntLit && E.IntValue >= -128 &&
      E.IntValue <= 127) {
    emitOp(Op::PushSmallInt);
    emitU8(static_cast<uint8_t>(static_cast<int8_t>(E.IntValue)));
    push();
    return true;
  }
  Oop Lit = literalFor(E);
  if (Lit.isNull())
    return failGen("unsupported literal");
  emitOp(Op::PushLiteral);
  unsigned Idx = addLiteral(Lit);
  if (Idx > 255)
    return failGen("too many literals");
  emitU8(static_cast<uint8_t>(Idx));
  push();
  return true;
}

/// --- identifiers ---------------------------------------------------------

bool CodeGen::genIdent(const std::string &Name) {
  if (Name == "self") {
    emitOp(Op::PushSelf);
    push();
    return true;
  }
  if (Name == "nil") {
    emitOp(Op::PushNil);
    push();
    return true;
  }
  if (Name == "true") {
    emitOp(Op::PushTrue);
    push();
    return true;
  }
  if (Name == "false") {
    emitOp(Op::PushFalse);
    push();
    return true;
  }
  if (Name == "thisContext") {
    emitOp(Op::PushThisContext);
    push();
    return true;
  }
  if (Name == "super")
    return failGen("'super' is only valid as a message receiver");

  if (int T = findTemp(Name); T >= 0) {
    emitOp(Op::PushTemp);
    emitU8(static_cast<uint8_t>(T));
    push();
    return true;
  }
  if (int V = findIvar(Name); V >= 0) {
    emitOp(Op::PushInstVar);
    emitU8(static_cast<uint8_t>(V));
    push();
    return true;
  }
  // Globals: capitalized names resolve through the system dictionary. An
  // unknown global is an error (silent creation hides typos).
  Oop Assoc = Om.globalAssociation(Name, /*CreateIfAbsent=*/false);
  if (Assoc.isNull())
    return failGen("undeclared variable '" + Name + "'");
  emitOp(Op::PushGlobal);
  unsigned Idx = addLiteral(Assoc);
  if (Idx > 255)
    return failGen("too many literals");
  emitU8(static_cast<uint8_t>(Idx));
  push();
  return true;
}

bool CodeGen::genAssign(const ExprNode &E) {
  if (!genExpr(*E.Args[0]))
    return false;
  const std::string &Name = E.Text;
  if (int T = findTemp(Name); T >= 0) {
    emitOp(Op::StoreTemp);
    emitU8(static_cast<uint8_t>(T));
    return true;
  }
  if (int V = findIvar(Name); V >= 0) {
    emitOp(Op::StoreInstVar);
    emitU8(static_cast<uint8_t>(V));
    return true;
  }
  Oop Assoc = Om.globalAssociation(Name, /*CreateIfAbsent=*/false);
  if (Assoc.isNull())
    return failGen("cannot assign to undeclared variable '" + Name + "'");
  emitOp(Op::StoreGlobal);
  unsigned Idx = addLiteral(Assoc);
  if (Idx > 255)
    return failGen("too many literals");
  emitU8(static_cast<uint8_t>(Idx));
  return true;
}

/// --- sends, cascades, blocks ------------------------------------------

/// \returns the SpecialSelector for \p Sel, or NumSpecialSelectors.
static SpecialSelector specialFor(const std::string &Sel) {
  for (size_t I = 0;
       I < static_cast<size_t>(SpecialSelector::NumSpecialSelectors); ++I) {
    auto S = static_cast<SpecialSelector>(I);
    if (Sel == specialSelectorName(S))
      return S;
  }
  return SpecialSelector::NumSpecialSelectors;
}

bool CodeGen::genMessage(const MessagePart &M, bool SuperSend) {
  for (const ExprPtr &A : M.Args)
    if (!genExpr(*A))
      return false;
  unsigned Argc = static_cast<unsigned>(M.Args.size());
  if (!SuperSend) {
    SpecialSelector S = specialFor(M.Selector);
    if (S != SpecialSelector::NumSpecialSelectors &&
        Argc == specialSelectorArgc(S)) {
      emitOp(Op::SendSpecial);
      emitU8(static_cast<uint8_t>(S));
      pop(static_cast<int>(Argc)); // receiver replaced by result
      return true;
    }
  }
  unsigned SelIdx = addLiteral(Om.intern(M.Selector));
  if (SelIdx > 255 || Argc > 255)
    return failGen("too many literals or arguments");
  emitOp(SuperSend ? Op::SendSuper : Op::Send);
  emitU8(static_cast<uint8_t>(SelIdx));
  emitU8(static_cast<uint8_t>(Argc));
  pop(static_cast<int>(Argc));
  return true;
}

bool CodeGen::genSend(const ExprNode &E) {
  bool Handled = false;
  if (!tryInline(E, Handled))
    return false;
  if (Handled)
    return true;

  bool SuperSend = E.Receiver->K == ExprNode::Kind::Ident &&
                   E.Receiver->Text == "super";
  if (SuperSend) {
    emitOp(Op::PushSelf);
    push();
  } else if (!genExpr(*E.Receiver)) {
    return false;
  }
  return genMessage(E.Message, SuperSend);
}

bool CodeGen::genCascade(const ExprNode &E) {
  if (!genExpr(*E.Receiver))
    return false;
  for (size_t I = 0; I < E.Cascades.size(); ++I) {
    bool Last = I + 1 == E.Cascades.size();
    if (!Last) {
      emitOp(Op::Dup);
      push();
    }
    if (!genMessage(E.Cascades[I], /*SuperSend=*/false))
      return false;
    if (!Last) {
      emitOp(Op::Pop);
      pop();
    }
  }
  return true;
}

bool CodeGen::genBlock(const ExprNode &E) {
  // Allocate frame slots for parameters and block temporaries in the home
  // method's frame (blue-book blocks share the home context's temps).
  std::vector<uint8_t> ParamSlots;
  for (const std::string &P : E.BlockParams)
    ParamSlots.push_back(addTemp(P));
  for (const std::string &T : E.BlockTemps)
    addTemp(T);

  emitOp(Op::BlockCopy);
  emitU8(static_cast<uint8_t>(E.BlockParams.size()));
  size_t FramePos = Code.size();
  emitU8(0); // frame size, patched below
  size_t SkipPos = Code.size();
  emitS16(0); // skip offset, patched below
  push();     // the BlockContext the send leaves on the home stack

  // The block body runs on the *block* context's stack: fresh tracker.
  Depths.push_back(Depth());
  // Arguments were pushed onto the block's stack by value:...; store them
  // into the home frame slots, last argument first.
  Depths.back().Cur = static_cast<int>(ParamSlots.size());
  if (Depths.back().Cur > Depths.back().Max)
    Depths.back().Max = Depths.back().Cur;
  for (size_t I = ParamSlots.size(); I > 0; --I) {
    emitOp(Op::StoreTemp);
    emitU8(ParamSlots[I - 1]);
    emitOp(Op::Pop);
    pop();
  }

  if (E.Body.empty()) {
    emitOp(Op::PushNil);
    push();
    emitOp(Op::BlockReturn);
    pop();
  } else {
    if (!genStatements(E.Body, /*ValueOfLast=*/true))
      return false;
    if (E.Body.back()->K != ExprNode::Kind::Return) {
      emitOp(Op::BlockReturn);
      pop();
    }
  }

  int Frame = Depths.back().Max;
  Depths.pop_back();
  if (Frame > 255)
    return failGen("block frame too large");
  Code[FramePos] = static_cast<uint8_t>(Frame);
  patchJumpToHere(SkipPos);
  return true;
}

/// --- control-flow inlining ----------------------------------------------

/// \returns true when \p E is a literal block with \p NumParams params.
static bool isLiteralBlock(const ExprPtr &E, unsigned NumParams) {
  return E && E->K == ExprNode::Kind::Block &&
         E->BlockParams.size() == NumParams && E->BlockTemps.empty();
}

/// Generates the body of an inlined block: statements in the *current*
/// context, leaving the value of the last statement on the stack.
bool CodeGen::genInlineBlockValue(const ExprNode &Block) {
  assert(Block.K == ExprNode::Kind::Block && "inlining a non-block");
  if (Block.Body.empty()) {
    emitOp(Op::PushNil);
    push();
    return true;
  }
  return genStatements(Block.Body, /*ValueOfLast=*/true);
}

bool CodeGen::tryInline(const ExprNode &E, bool &Handled) {
  Handled = false;
  const std::string &Sel = E.Message.Selector;
  const std::vector<ExprPtr> &Args = E.Message.Args;

  // --- conditionals: receiver is the condition expression.
  auto GenCond = [&]() { return genExpr(*E.Receiver); };

  if ((Sel == "ifTrue:" || Sel == "ifFalse:") && Args.size() == 1 &&
      isLiteralBlock(Args[0], 0)) {
    Handled = true;
    if (!GenCond())
      return false;
    size_t Skip =
        emitJump(Sel == "ifTrue:" ? Op::JumpIfFalse : Op::JumpIfTrue);
    pop(); // condition consumed
    if (!genInlineBlockValue(*Args[0]))
      return false;
    size_t End = emitJump(Op::Jump);
    patchJumpToHere(Skip);
    pop(); // merge: one value on either path
    emitOp(Op::PushNil);
    push();
    patchJumpToHere(End);
    return true;
  }

  if ((Sel == "ifTrue:ifFalse:" || Sel == "ifFalse:ifTrue:") &&
      Args.size() == 2 && isLiteralBlock(Args[0], 0) &&
      isLiteralBlock(Args[1], 0)) {
    Handled = true;
    if (!GenCond())
      return false;
    bool TrueFirst = Sel == "ifTrue:ifFalse:";
    size_t Skip = emitJump(TrueFirst ? Op::JumpIfFalse : Op::JumpIfTrue);
    pop();
    if (!genInlineBlockValue(*Args[0]))
      return false;
    size_t End = emitJump(Op::Jump);
    patchJumpToHere(Skip);
    pop(); // merge
    if (!genInlineBlockValue(*Args[1]))
      return false;
    patchJumpToHere(End);
    return true;
  }

  if ((Sel == "and:" || Sel == "or:") && Args.size() == 1 &&
      isLiteralBlock(Args[0], 0)) {
    Handled = true;
    if (!GenCond())
      return false;
    size_t Short = emitJump(Sel == "and:" ? Op::JumpIfFalse : Op::JumpIfTrue);
    pop();
    if (!genInlineBlockValue(*Args[0]))
      return false;
    size_t End = emitJump(Op::Jump);
    patchJumpToHere(Short);
    pop(); // merge
    emitOp(Sel == "and:" ? Op::PushFalse : Op::PushTrue);
    push();
    patchJumpToHere(End);
    return true;
  }

  // --- loops: receiver is a literal condition block.
  bool WhileWithBody = (Sel == "whileTrue:" || Sel == "whileFalse:") &&
                       Args.size() == 1 && isLiteralBlock(Args[0], 0);
  bool WhileNoBody =
      (Sel == "whileTrue" || Sel == "whileFalse") && Args.empty();
  if ((WhileWithBody || WhileNoBody) && isLiteralBlock(E.Receiver, 0)) {
    Handled = true;
    bool UntilFalse = Sel == "whileTrue:" || Sel == "whileTrue";
    size_t LoopTop = Code.size();
    if (!genInlineBlockValue(*E.Receiver))
      return false;
    size_t Exit = emitJump(UntilFalse ? Op::JumpIfFalse : Op::JumpIfTrue);
    pop();
    if (WhileWithBody) {
      if (!genInlineBlockValue(*Args[0]))
        return false;
      emitOp(Op::Pop);
      pop();
    }
    emitJumpTo(Op::Jump, LoopTop);
    patchJumpToHere(Exit);
    emitOp(Op::PushNil); // whileTrue: answers nil
    push();
    return true;
  }

  // --- counting loop: start to: limit do: [:i | ...]
  if (Sel == "to:do:" && Args.size() == 2 && isLiteralBlock(Args[1], 1)) {
    Handled = true;
    // Result of to:do: is the receiver (the start value): keep a copy.
    if (!genExpr(*E.Receiver))
      return false;
    uint8_t IVar = addTemp("(to:do: index '" + Args[1]->BlockParams[0] +
                           "')");
    // Bind the loop variable name to the slot for the body's scope.
    TempNames.back() = Args[1]->BlockParams[0];
    emitOp(Op::Dup);
    push();
    emitOp(Op::StoreTemp);
    emitU8(IVar);
    emitOp(Op::Pop);
    pop();
    uint8_t LimitVar = addTemp("(to:do: limit)");
    if (!genExpr(*Args[0]))
      return false;
    emitOp(Op::StoreTemp);
    emitU8(LimitVar);
    emitOp(Op::Pop);
    pop();
    size_t LoopTop = Code.size();
    emitOp(Op::PushTemp);
    emitU8(IVar);
    push();
    emitOp(Op::PushTemp);
    emitU8(LimitVar);
    push();
    emitOp(Op::SendSpecial);
    emitU8(static_cast<uint8_t>(SpecialSelector::LessEq));
    pop();
    size_t Exit = emitJump(Op::JumpIfFalse);
    pop();
    if (!genInlineBlockValue(*Args[1]))
      return false;
    emitOp(Op::Pop);
    pop();
    emitOp(Op::PushTemp);
    emitU8(IVar);
    push();
    emitOp(Op::PushSmallInt);
    emitU8(1);
    push();
    emitOp(Op::SendSpecial);
    emitU8(static_cast<uint8_t>(SpecialSelector::Add));
    pop();
    emitOp(Op::StoreTemp);
    emitU8(IVar);
    emitOp(Op::Pop);
    pop();
    emitJumpTo(Op::Jump, LoopTop);
    patchJumpToHere(Exit);
    // Unbind the loop variable (leave the slot allocated).
    TempNames[IVar] = "(dead to:do: index)";
    return true; // receiver copy is the expression value
  }

  return true; // not an inlinable pattern; caller emits a real send
}

/// --- statements and expressions -----------------------------------------

bool CodeGen::genStatements(const std::vector<ExprPtr> &Body,
                            bool ValueOfLast) {
  for (size_t I = 0; I < Body.size(); ++I) {
    const ExprNode &S = *Body[I];
    bool Last = I + 1 == Body.size();
    if (S.K == ExprNode::Kind::Return) {
      if (!genExpr(*S.Args[0]))
        return false;
      emitOp(Op::ReturnTop);
      pop();
      if (!Last)
        return failGen("statements after a return");
      return true;
    }
    if (!genExpr(S))
      return false;
    if (!Last || !ValueOfLast) {
      emitOp(Op::Pop);
      pop();
    }
  }
  if (Body.empty() && ValueOfLast)
    MST_UNREACHABLE("caller must handle empty bodies");
  return true;
}

bool CodeGen::genExpr(const ExprNode &E) {
  if (HadError)
    return false;
  switch (E.K) {
  case ExprNode::Kind::IntLit:
  case ExprNode::Kind::CharLit:
  case ExprNode::Kind::StrLit:
  case ExprNode::Kind::SymLit:
  case ExprNode::Kind::ArrayLit:
    return genLiteralPush(E);
  case ExprNode::Kind::Ident:
    return genIdent(E.Text);
  case ExprNode::Kind::Assign:
    return genAssign(E);
  case ExprNode::Kind::Send:
    return genSend(E);
  case ExprNode::Kind::Cascade:
    return genCascade(E);
  case ExprNode::Kind::Block:
    return genBlock(E);
  case ExprNode::Kind::Return:
    MST_UNREACHABLE("returns are handled by genStatements");
  }
  MST_UNREACHABLE("bad AST node kind");
}

/// --- driver ---------------------------------------------------------------

Oop CodeGen::generate(const MethodNode &M, std::string &OutError) {
  Depths.push_back(Depth());
  for (const std::string &P : M.Params)
    addTemp(P);
  for (const std::string &T : M.Temps)
    addTemp(T);

  bool Ok = true;
  if (!M.Body.empty())
    Ok = genStatements(M.Body, /*ValueOfLast=*/false);
  if (Ok && (M.Body.empty() ||
             M.Body.back()->K != ExprNode::Kind::Return))
    emitOp(Op::ReturnSelf);

  if (!Ok || HadError) {
    OutError = Error.empty() ? "code generation failed" : Error;
    return Oop();
  }
  if (TempNames.size() > 255) {
    OutError = "too many temporaries";
    return Oop();
  }

  ObjectMemory &OM = Om.memory();
  KnownObjects &K = Om.known();

  Oop Method =
      OM.allocateOldPointers(K.ClassCompiledMethod, MethodSlotCount);
  OM.storePointer(Method, MthNumArgs,
                  Oop::fromSmallInt(static_cast<intptr_t>(M.Params.size())));
  OM.storePointer(Method, MthNumTemps,
                  Oop::fromSmallInt(static_cast<intptr_t>(TempNames.size())));
  OM.storePointer(Method, MthPrimitive,
                  Oop::fromSmallInt(M.PrimitiveIndex));
  int Frame = static_cast<int>(TempNames.size()) + Depths[0].Max;
  OM.storePointer(Method, MthFrameSize, Oop::fromSmallInt(Frame));
  OM.storePointer(Method, MthSelector, Om.intern(M.Selector));
  OM.storePointer(Method, MthLiterals, Om.makeArray(Literals, /*Old=*/true));
  Oop Bytes = OM.allocateOldBytes(K.ClassByteArray,
                                  static_cast<uint32_t>(Code.size()));
  std::memcpy(Bytes.object()->bytes(), Code.data(), Code.size());
  OM.storePointer(Method, MthBytecodes, Bytes);
  OM.storePointer(Method, MthSource, Om.makeString(M.Source, /*Old=*/true));
  OM.storePointer(Method, MthClass, Cls);
  return Method;
}
