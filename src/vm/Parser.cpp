//===-- vm/Parser.cpp - Smalltalk method parser -----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Parser.h"

using namespace mst;

Parser::Parser(const std::string &Source) : Source(Source), Lex(Source) {
  if (Lex.hadError())
    ErrorMessage = Lex.errorMessage();
}

ExprPtr Parser::fail(const std::string &Msg) {
  if (ErrorMessage.empty())
    ErrorMessage =
        Msg + " near offset " + std::to_string(Lex.peek().Offset);
  return nullptr;
}

bool Parser::parseMethod(MethodNode &Out) {
  if (!ErrorMessage.empty())
    return false;
  Out.Source = Source;
  if (!parsePattern(Out))
    return false;
  if (!parsePragma(Out))
    return false;
  if (!parseTemporaries(Out.Temps))
    return false;
  if (!parseStatements(Out.Body, /*InBlock=*/false))
    return false;
  if (Lex.peek().Kind != TokenKind::End) {
    fail("junk after method body");
    return false;
  }
  return true;
}

bool Parser::parseDoIt(MethodNode &Out) {
  if (!ErrorMessage.empty())
    return false;
  Out.Source = Source;
  Out.Selector = "doIt";
  if (!parseTemporaries(Out.Temps))
    return false;
  if (!parseStatements(Out.Body, /*InBlock=*/false))
    return false;
  if (Lex.peek().Kind != TokenKind::End) {
    fail("junk after doIt body");
    return false;
  }
  // A doIt answers its final expression: turn the last statement into a
  // return unless it already is one.
  if (!Out.Body.empty() && Out.Body.back()->K != ExprNode::Kind::Return) {
    auto Ret = std::make_unique<ExprNode>(ExprNode::Kind::Return);
    Ret->Args.push_back(std::move(Out.Body.back()));
    Out.Body.back() = std::move(Ret);
  }
  return true;
}

bool Parser::parsePattern(MethodNode &Out) {
  const Token &T = Lex.peek();
  if (T.Kind == TokenKind::Identifier) {
    Out.Selector = Lex.next().Text;
    return true;
  }
  if (T.Kind == TokenKind::BinarySel || T.Kind == TokenKind::VBar) {
    Out.Selector = Lex.next().Text;
    if (Lex.peek().Kind != TokenKind::Identifier) {
      fail("binary selector pattern needs a parameter");
      return false;
    }
    Out.Params.push_back(Lex.next().Text);
    return true;
  }
  if (T.Kind == TokenKind::Keyword) {
    while (Lex.peek().Kind == TokenKind::Keyword) {
      Out.Selector += Lex.next().Text;
      if (Lex.peek().Kind != TokenKind::Identifier) {
        fail("keyword pattern needs a parameter");
        return false;
      }
      Out.Params.push_back(Lex.next().Text);
    }
    return true;
  }
  fail("expected a method pattern");
  return false;
}

bool Parser::parsePragma(MethodNode &Out) {
  if (Lex.peek().Kind != TokenKind::BinarySel || Lex.peek().Text != "<")
    return true;
  Lex.next(); // <
  if (Lex.peek().Kind != TokenKind::Keyword ||
      Lex.peek().Text != "primitive:") {
    fail("only <primitive: N> pragmas are supported");
    return false;
  }
  Lex.next();
  if (Lex.peek().Kind != TokenKind::Integer) {
    fail("primitive pragma needs an integer");
    return false;
  }
  Out.PrimitiveIndex = static_cast<int>(Lex.next().IntValue);
  if (Lex.peek().Kind != TokenKind::BinarySel || Lex.peek().Text != ">") {
    fail("unterminated primitive pragma");
    return false;
  }
  Lex.next();
  return true;
}

bool Parser::parseTemporaries(std::vector<std::string> &Temps) {
  if (Lex.peek().Kind != TokenKind::VBar)
    return true;
  Lex.next();
  while (Lex.peek().Kind == TokenKind::Identifier)
    Temps.push_back(Lex.next().Text);
  if (Lex.peek().Kind != TokenKind::VBar) {
    fail("unterminated temporary declaration");
    return false;
  }
  Lex.next();
  return true;
}

bool Parser::parseStatements(std::vector<ExprPtr> &Body, bool InBlock) {
  for (;;) {
    const Token &T = Lex.peek();
    if (T.Kind == TokenKind::End)
      return true;
    if (InBlock && T.Kind == TokenKind::RBracket)
      return true;
    if (T.Kind == TokenKind::Caret) {
      Lex.next();
      ExprPtr Value = parseExpression();
      if (!Value)
        return false;
      auto Ret = std::make_unique<ExprNode>(ExprNode::Kind::Return);
      Ret->Args.push_back(std::move(Value));
      Body.push_back(std::move(Ret));
      if (Lex.peek().Kind == TokenKind::Period)
        Lex.next();
      continue;
    }
    ExprPtr E = parseExpression();
    if (!E)
      return false;
    Body.push_back(std::move(E));
    if (Lex.peek().Kind == TokenKind::Period) {
      Lex.next();
      continue;
    }
    // No period: this must be the last statement.
    const Token &After = Lex.peek();
    if (After.Kind == TokenKind::End ||
        (InBlock && After.Kind == TokenKind::RBracket))
      return true;
    fail("expected '.' between statements");
    return false;
  }
}

ExprPtr Parser::parseExpression() {
  // Assignment: ident ':=' expression.
  if (Lex.peek(0).Kind == TokenKind::Identifier &&
      Lex.peek(1).Kind == TokenKind::Assign) {
    std::string Name = Lex.next().Text;
    Lex.next(); // :=
    ExprPtr Value = parseExpression();
    if (!Value)
      return nullptr;
    auto A = std::make_unique<ExprNode>(ExprNode::Kind::Assign);
    A->Text = std::move(Name);
    A->Args.push_back(std::move(Value));
    return A;
  }
  return parseCascade();
}

ExprPtr Parser::parseCascade() {
  ExprPtr First = parseKeywordExpr();
  if (!First)
    return nullptr;
  if (Lex.peek().Kind != TokenKind::Semicolon)
    return First;

  // A cascade re-sends to the receiver of the *last* message of the first
  // expression, which must therefore be a send.
  if (First->K != ExprNode::Kind::Send)
    return fail("cascade must follow a message send");

  auto C = std::make_unique<ExprNode>(ExprNode::Kind::Cascade);
  C->Receiver = std::move(First->Receiver);
  C->Cascades.push_back(std::move(First->Message));

  while (Lex.peek().Kind == TokenKind::Semicolon) {
    Lex.next();
    // message := keyword-message | binary-message | unary-message
    MessagePart M;
    const Token &T = Lex.peek();
    if (T.Kind == TokenKind::Keyword) {
      while (Lex.peek().Kind == TokenKind::Keyword) {
        M.Selector += Lex.next().Text;
        ExprPtr Arg = parseBinaryExpr();
        if (!Arg)
          return nullptr;
        M.Args.push_back(std::move(Arg));
      }
    } else if (T.Kind == TokenKind::BinarySel || T.Kind == TokenKind::VBar) {
      M.Selector = Lex.next().Text;
      ExprPtr Arg = parseUnaryExpr();
      if (!Arg)
        return nullptr;
      M.Args.push_back(std::move(Arg));
    } else if (T.Kind == TokenKind::Identifier) {
      M.Selector = Lex.next().Text;
    } else {
      return fail("expected a message after ';'");
    }
    C->Cascades.push_back(std::move(M));
  }
  return C;
}

ExprPtr Parser::parseKeywordExpr() {
  ExprPtr Recv = parseBinaryExpr();
  if (!Recv)
    return nullptr;
  if (Lex.peek().Kind != TokenKind::Keyword)
    return Recv;
  auto S = std::make_unique<ExprNode>(ExprNode::Kind::Send);
  S->Receiver = std::move(Recv);
  while (Lex.peek().Kind == TokenKind::Keyword) {
    S->Message.Selector += Lex.next().Text;
    ExprPtr Arg = parseBinaryExpr();
    if (!Arg)
      return nullptr;
    S->Message.Args.push_back(std::move(Arg));
  }
  return S;
}

ExprPtr Parser::parseBinaryExpr() {
  ExprPtr Left = parseUnaryExpr();
  if (!Left)
    return nullptr;
  while (Lex.peek().Kind == TokenKind::BinarySel ||
         Lex.peek().Kind == TokenKind::VBar) {
    // '<' begins a pragma only at method top; in expressions it is less-than.
    std::string Sel = Lex.next().Text;
    ExprPtr Right = parseUnaryExpr();
    if (!Right)
      return nullptr;
    auto S = std::make_unique<ExprNode>(ExprNode::Kind::Send);
    S->Receiver = std::move(Left);
    S->Message.Selector = std::move(Sel);
    S->Message.Args.push_back(std::move(Right));
    Left = std::move(S);
  }
  return Left;
}

ExprPtr Parser::parseUnaryExpr() {
  ExprPtr Recv = parsePrimary();
  if (!Recv)
    return nullptr;
  while (Lex.peek().Kind == TokenKind::Identifier &&
         Lex.peek(1).Kind != TokenKind::Assign) {
    auto S = std::make_unique<ExprNode>(ExprNode::Kind::Send);
    S->Receiver = std::move(Recv);
    S->Message.Selector = Lex.next().Text;
    Recv = std::move(S);
  }
  return Recv;
}

ExprPtr Parser::parsePrimary() {
  const Token &T = Lex.peek();
  switch (T.Kind) {
  case TokenKind::Integer: {
    auto E = std::make_unique<ExprNode>(ExprNode::Kind::IntLit);
    E->IntValue = Lex.next().IntValue;
    return E;
  }
  case TokenKind::String: {
    auto E = std::make_unique<ExprNode>(ExprNode::Kind::StrLit);
    E->Text = Lex.next().Text;
    return E;
  }
  case TokenKind::CharLit: {
    auto E = std::make_unique<ExprNode>(ExprNode::Kind::CharLit);
    E->CharValue = Lex.next().Text[0];
    return E;
  }
  case TokenKind::SymbolLit: {
    auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
    E->Text = Lex.next().Text;
    return E;
  }
  case TokenKind::Identifier: {
    auto E = std::make_unique<ExprNode>(ExprNode::Kind::Ident);
    E->Text = Lex.next().Text;
    return E;
  }
  case TokenKind::LParen: {
    Lex.next();
    ExprPtr E = parseExpression();
    if (!E)
      return nullptr;
    if (Lex.peek().Kind != TokenKind::RParen)
      return fail("expected ')'");
    Lex.next();
    return E;
  }
  case TokenKind::LBracket:
    return parseBlock();
  case TokenKind::ArrayStart:
    return parseArrayLiteral();
  default:
    return fail("expected an expression");
  }
}

ExprPtr Parser::parseBlock() {
  Lex.next(); // [
  auto B = std::make_unique<ExprNode>(ExprNode::Kind::Block);
  // Parameters: ':' ident ... then '|'.
  while (Lex.peek().Kind == TokenKind::Colon) {
    Lex.next();
    if (Lex.peek().Kind != TokenKind::Identifier)
      return fail("expected a block parameter name");
    B->BlockParams.push_back(Lex.next().Text);
  }
  if (!B->BlockParams.empty()) {
    if (Lex.peek().Kind != TokenKind::VBar)
      return fail("expected '|' after block parameters");
    Lex.next();
  }
  if (!parseTemporaries(B->BlockTemps))
    return nullptr;
  if (!parseStatements(B->Body, /*InBlock=*/true))
    return nullptr;
  if (Lex.peek().Kind != TokenKind::RBracket)
    return fail("expected ']'");
  Lex.next();
  return B;
}

ExprPtr Parser::parseArrayLiteral() {
  Lex.next(); // #(
  auto A = std::make_unique<ExprNode>(ExprNode::Kind::ArrayLit);
  for (;;) {
    const Token &T = Lex.peek();
    if (T.Kind == TokenKind::RParen) {
      Lex.next();
      return A;
    }
    switch (T.Kind) {
    case TokenKind::Integer: {
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::IntLit);
      E->IntValue = Lex.next().IntValue;
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::String: {
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::StrLit);
      E->Text = Lex.next().Text;
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::CharLit: {
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::CharLit);
      E->CharValue = Lex.next().Text[0];
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::SymbolLit: {
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
      E->Text = Lex.next().Text;
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::Identifier: {
      // Bare words inside #( ) are symbols; true/false/nil keep meaning.
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
      Token W = Lex.next();
      if (W.Text == "true" || W.Text == "false" || W.Text == "nil") {
        auto I = std::make_unique<ExprNode>(ExprNode::Kind::Ident);
        I->Text = W.Text;
        A->Elements.push_back(std::move(I));
      } else {
        E->Text = W.Text;
        A->Elements.push_back(std::move(E));
      }
      break;
    }
    case TokenKind::Keyword: {
      // Keyword runs are symbols too: #(at:put:) etc.
      std::string S;
      while (Lex.peek().Kind == TokenKind::Keyword)
        S += Lex.next().Text;
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
      E->Text = std::move(S);
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::BinarySel:
    case TokenKind::VBar: {
      auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
      E->Text = Lex.next().Text;
      A->Elements.push_back(std::move(E));
      break;
    }
    case TokenKind::ArrayStart:
    case TokenKind::LParen: {
      // Nested literal array: #( ... ( ... ) ... ).
      if (T.Kind == TokenKind::LParen) {
        // Consume '(' and reuse the element loop by faking ArrayStart.
        Lex.next();
        auto Nested = std::make_unique<ExprNode>(ExprNode::Kind::ArrayLit);
        // Re-enter manually: simplest is recursion on a synthetic source;
        // instead we inline a small loop supporting one nesting level by
        // calling parseArrayLiteral-like logic. To keep it simple and
        // fully recursive, we rewind: treat '(' exactly like '#('.
        // (Implemented below by falling through to the recursive call.)
        // NOTE: we already consumed '('; emulate the recursive body:
        for (;;) {
          if (Lex.peek().Kind == TokenKind::RParen) {
            Lex.next();
            break;
          }
          if (Lex.peek().Kind == TokenKind::End)
            return fail("unterminated nested literal array");
          // Reuse the outer loop's logic by a recursive trick: nested
          // arrays beyond depth 2 are rare in practice; support scalars
          // here.
          const Token &NT = Lex.peek();
          auto Scalar = [&]() -> ExprPtr {
            switch (NT.Kind) {
            case TokenKind::Integer: {
              auto E = std::make_unique<ExprNode>(ExprNode::Kind::IntLit);
              E->IntValue = Lex.next().IntValue;
              return E;
            }
            case TokenKind::String: {
              auto E = std::make_unique<ExprNode>(ExprNode::Kind::StrLit);
              E->Text = Lex.next().Text;
              return E;
            }
            case TokenKind::SymbolLit:
            case TokenKind::Identifier:
            case TokenKind::Keyword:
            case TokenKind::BinarySel: {
              auto E = std::make_unique<ExprNode>(ExprNode::Kind::SymLit);
              E->Text = Lex.next().Text;
              return E;
            }
            case TokenKind::CharLit: {
              auto E = std::make_unique<ExprNode>(ExprNode::Kind::CharLit);
              E->CharValue = Lex.next().Text[0];
              return E;
            }
            default:
              return nullptr;
            }
          }();
          if (!Scalar)
            return fail("unsupported element in nested literal array");
          Nested->Elements.push_back(std::move(Scalar));
        }
        A->Elements.push_back(std::move(Nested));
      } else {
        ExprPtr Nested = parseArrayLiteral();
        if (!Nested)
          return nullptr;
        A->Elements.push_back(std::move(Nested));
      }
      break;
    }
    case TokenKind::End:
      return fail("unterminated literal array");
    default:
      return fail("unsupported element in literal array");
    }
  }
}
