//===-- vm/Bytecode.cpp - The bytecode set ----------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <cstdio>

#include "support/Assert.h"

using namespace mst;

const char *mst::specialSelectorName(SpecialSelector S) {
  switch (S) {
  case SpecialSelector::Add:
    return "+";
  case SpecialSelector::Subtract:
    return "-";
  case SpecialSelector::Multiply:
    return "*";
  case SpecialSelector::IntDivide:
    return "//";
  case SpecialSelector::Modulo:
    return "\\\\";
  case SpecialSelector::Less:
    return "<";
  case SpecialSelector::Greater:
    return ">";
  case SpecialSelector::LessEq:
    return "<=";
  case SpecialSelector::GreaterEq:
    return ">=";
  case SpecialSelector::Equal:
    return "=";
  case SpecialSelector::NotEqual:
    return "~=";
  case SpecialSelector::IdentityEq:
    return "==";
  case SpecialSelector::BitAnd:
    return "bitAnd:";
  case SpecialSelector::BitOr:
    return "bitOr:";
  case SpecialSelector::BitShift:
    return "bitShift:";
  case SpecialSelector::NumSpecialSelectors:
    break;
  }
  MST_UNREACHABLE("bad special selector");
}

const char *mst::opName(Op O) {
  switch (O) {
  case Op::PushSelf:
    return "PushSelf";
  case Op::PushNil:
    return "PushNil";
  case Op::PushTrue:
    return "PushTrue";
  case Op::PushFalse:
    return "PushFalse";
  case Op::PushThisContext:
    return "PushThisContext";
  case Op::PushTemp:
    return "PushTemp";
  case Op::PushInstVar:
    return "PushInstVar";
  case Op::PushLiteral:
    return "PushLiteral";
  case Op::PushGlobal:
    return "PushGlobal";
  case Op::PushSmallInt:
    return "PushSmallInt";
  case Op::StoreTemp:
    return "StoreTemp";
  case Op::StoreInstVar:
    return "StoreInstVar";
  case Op::StoreGlobal:
    return "StoreGlobal";
  case Op::Pop:
    return "Pop";
  case Op::Dup:
    return "Dup";
  case Op::Jump:
    return "Jump";
  case Op::JumpIfTrue:
    return "JumpIfTrue";
  case Op::JumpIfFalse:
    return "JumpIfFalse";
  case Op::Send:
    return "Send";
  case Op::SendSuper:
    return "SendSuper";
  case Op::SendSpecial:
    return "SendSpecial";
  case Op::BlockCopy:
    return "BlockCopy";
  case Op::ReturnTop:
    return "ReturnTop";
  case Op::ReturnSelf:
    return "ReturnSelf";
  case Op::BlockReturn:
    return "BlockReturn";
  }
  MST_UNREACHABLE("bad opcode");
}

unsigned mst::instructionLength(const uint8_t *Code, uint32_t Ip) {
  switch (static_cast<Op>(Code[Ip])) {
  case Op::PushSelf:
  case Op::PushNil:
  case Op::PushTrue:
  case Op::PushFalse:
  case Op::PushThisContext:
  case Op::Pop:
  case Op::Dup:
  case Op::ReturnTop:
  case Op::ReturnSelf:
  case Op::BlockReturn:
    return 1;
  case Op::PushTemp:
  case Op::PushInstVar:
  case Op::PushLiteral:
  case Op::PushGlobal:
  case Op::PushSmallInt:
  case Op::StoreTemp:
  case Op::StoreInstVar:
  case Op::StoreGlobal:
  case Op::SendSpecial:
    return 2;
  case Op::Jump:
  case Op::JumpIfTrue:
  case Op::JumpIfFalse:
  case Op::Send:
  case Op::SendSuper:
    return 3;
  case Op::BlockCopy:
    return 5;
  }
  MST_UNREACHABLE("bad opcode in instructionLength");
}

std::string mst::disassembleOne(const uint8_t *Code, uint32_t Ip) {
  char Buf[96];
  Op O = static_cast<Op>(Code[Ip]);
  switch (instructionLength(Code, Ip)) {
  case 1:
    std::snprintf(Buf, sizeof(Buf), "%4u: %s", Ip, opName(O));
    break;
  case 2:
    if (O == Op::SendSpecial)
      std::snprintf(Buf, sizeof(Buf), "%4u: %s %s", Ip, opName(O),
                    specialSelectorName(
                        static_cast<SpecialSelector>(Code[Ip + 1])));
    else if (O == Op::PushSmallInt)
      std::snprintf(Buf, sizeof(Buf), "%4u: %s %d", Ip, opName(O),
                    static_cast<int8_t>(Code[Ip + 1]));
    else
      std::snprintf(Buf, sizeof(Buf), "%4u: %s %u", Ip, opName(O),
                    Code[Ip + 1]);
    break;
  case 3:
    if (O == Op::Send || O == Op::SendSuper) {
      std::snprintf(Buf, sizeof(Buf), "%4u: %s lit%u argc%u", Ip, opName(O),
                    Code[Ip + 1], Code[Ip + 2]);
    } else {
      int16_t Off = static_cast<int16_t>(Code[Ip + 1] |
                                         (Code[Ip + 2] << 8));
      std::snprintf(Buf, sizeof(Buf), "%4u: %s %+d (-> %u)", Ip, opName(O),
                    Off, Ip + 3 + Off);
    }
    break;
  case 5: {
    uint16_t Skip = static_cast<uint16_t>(Code[Ip + 3] | (Code[Ip + 4] << 8));
    std::snprintf(Buf, sizeof(Buf), "%4u: %s nargs%u frame%u skip%u", Ip,
                  opName(O), Code[Ip + 1], Code[Ip + 2], Skip);
    break;
  }
  default:
    MST_UNREACHABLE("bad instruction length");
  }
  return Buf;
}
