//===-- vm/VirtualMachine.h - The MS virtual machine ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Multiprocessor Smalltalk virtual machine: object memory, object
/// model, scheduler, caches, I/O, and k replicated interpreter processes
/// on a V-kernel substrate. The configuration matrix covers every cell of
/// the paper's Table 3:
///
///   serialization: allocation, GC, entry table, scheduling, I/O queues
///   replication:   interpreters, method caches, free contexts, (TLABs)
///   reorganization: activeProcess / canRun: / thisProcess
///
/// `MpSupport = false` with one interpreter is "baseline BS" — the
/// interpreter ported to the Firefly *before* any multiprocessor support,
/// the reference point of Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_VIRTUALMACHINE_H
#define MST_VM_VIRTUALMACHINE_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/Display.h"
#include "io/EventQueue.h"
#include "objmem/ObjectMemory.h"
#include "obs/ProfileReport.h"
#include "support/Timer.h"
#include "vkernel/VKernel.h"
#include "vm/FreeContextList.h"
#include "vm/Interpreter.h"
#include "vm/MethodCache.h"
#include "vm/ObjectModel.h"
#include "vm/Scheduler.h"

namespace mst {

/// Complete VM configuration.
struct VmConfig {
  /// Number of worker interpreter processes (the Firefly ran up to 5).
  unsigned Interpreters = 1;
  /// Virtual processors in the V kernel.
  unsigned Processors = 5;
  /// Master switch for every lock in the system; false = baseline BS.
  bool MpSupport = true;
  MethodCacheKind CacheKind = MethodCacheKind::Replicated;
  FreeContextKind FreeCtxKind = FreeContextKind::Replicated;
  MemoryConfig Memory;
  /// Bytecodes per scheduling slice.
  uint64_t TimesliceBytecodes = 10000;
  /// Processor-time cap per slice (microseconds): preempts Processes that
  /// spend their slice inside long-running primitives (compiler,
  /// decompiler), the way the timer interrupt did on real hardware.
  uint64_t TimesliceMicros = 2000;

  /// Canonical "baseline BS" configuration (Table 2, row 1).
  static VmConfig baselineBS();
  /// Canonical MS configuration with \p K interpreters.
  static VmConfig multiprocessor(unsigned K);
};

/// The virtual machine.
class VirtualMachine {
public:
  /// Builds the VM core (no image methods yet — see image/Bootstrap). The
  /// calling thread is registered as a mutator and becomes the driver.
  explicit VirtualMachine(const VmConfig &Config);

  /// Stops interpreters and unregisters the driver thread (which must be
  /// the constructing thread).
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine &) = delete;
  VirtualMachine &operator=(const VirtualMachine &) = delete;

  const VmConfig &config() const { return Config; }

  ObjectMemory &memory() { return *OM; }
  ObjectModel &model() { return *Om; }
  Scheduler &scheduler() { return *Sched; }
  MethodCache &cache() { return *Cache; }
  FreeContextPool &contextPool() { return *CtxPool; }
  Display &display() { return Disp; }
  EventQueue &events() { return Events; }
  VKernel &kernel() { return Kernel; }

  /// The driver interpreter, bound to the constructing thread.
  Interpreter &driver() { return *Driver; }

  /// --- Interpreter lifecycle ---------------------------------------------

  /// Spawns the worker interpreter processes.
  void startInterpreters();

  /// Requests shutdown and joins every worker.
  void shutdown();

  /// Requests shutdown without joining — safe from any thread (a shard
  /// watchdog escalating a dishonored abort). The owning thread still
  /// calls shutdown()/the destructor to join; both are idempotent.
  void requestStop();

  bool stopping() const {
    return StopFlag.load(std::memory_order_relaxed);
  }

  /// --- Execution front door ----------------------------------------------

  /// Compiles \p Source as a doIt and runs it to completion on the calling
  /// (driver) thread. \returns the result, or null oop on error.
  Oop compileAndRun(const std::string &Source);

  /// One evaluated request/response exchange (VirtualMachine::evaluate).
  struct EvalResult {
    bool Ok = false;
    /// The result's printString (strings render verbatim, everything else
    /// via ObjectModel::describe) on success; the compile/runtime
    /// diagnostics on failure.
    std::string Value;
    /// True when the evaluation was unwound by a deadline expiry or an
    /// asynchronous abort (the RequestTimeout error); Ok is then false.
    bool TimedOut = false;
  };

  /// The serving layer's reentrant front door: evaluates \p Source as an
  /// expression on the calling (driver) thread and renders the answer.
  /// Sources not starting with `^` or `|` are wrapped as
  /// `^(...) printString`, REPL-style. Unlike compileAndRun, failures are
  /// *consumed*: the error-log entries this evaluation produced are
  /// returned in EvalResult::Value and removed from the log, so a shard
  /// serving millions of requests neither leaks error state nor
  /// interleaves one session's diagnostics into another's. Callable any
  /// number of times; each call is independent.
  EvalResult evaluate(const std::string &Source);

  /// evaluate() with an absolute deadline (Telemetry::nowNs time, 0 =
  /// none). When the deadline expires mid-run the execution unwinds with
  /// a RequestTimeout error at the next bytecode boundary and the result
  /// reports TimedOut. Driver-thread only, like evaluate().
  EvalResult evalWithDeadline(const std::string &Source,
                              uint64_t DeadlineNs);

  /// Arms the driver interpreter's asynchronous abort: whatever the
  /// driver is evaluating unwinds with a RequestTimeout error at its
  /// next poll. Safe from any thread (the shard deadline watchdog).
  void requestAbort();

  /// Drops a pending driver abort that was never consumed (the victim
  /// request finished first). Callers serialize this against their own
  /// requestAbort() — the serve shard does both under its abort mutex.
  void clearAbort();

  /// Compiles \p Source as a doIt and forks it as a Smalltalk Process at
  /// \p Priority. \returns the Process oop (already scheduled).
  Oop forkDoIt(const std::string &Source, int Priority,
               const std::string &Name);

  /// Builds a bottom MethodContext activating \p Method on \p Receiver
  /// with no arguments. GC point.
  Oop buildBottomContext(Oop Method, Oop Receiver);

  /// The Process to record in the ProcessorScheduler's activeProcess slot
  /// while a snapshot is on disk (§3.3): the driver's current Process, or
  /// nil when the driver is idle. Only meaningful with the world stopped
  /// or quiescent — image/Snapshot is the intended caller.
  Oop snapshotActiveProcess() {
    Oop P = Driver->roots().ActiveProcess;
    return P.isNull() ? Om->nil() : P;
  }

  /// --- Low-space notification ---------------------------------------------

  /// Registers \p Sem (a Semaphore, or nil to clear) as the low-space
  /// semaphore, mirroring Smalltalk-80's `lowSpaceSemaphore`. The memory
  /// signals it when free headroom first drops below the configured
  /// watermark; a Smalltalk process waiting on it can release caches or
  /// warn the user before the OutOfMemoryError rung is reached.
  void setLowSpaceSemaphore(Oop Sem);

  Oop lowSpaceSemaphore() const { return LowSpaceSem; }

  /// --- Host signals (benchmark completion notification) -------------------

  /// Creates a host signal slot. Smalltalk signals it via
  /// <primitive: 60> with the slot id.
  unsigned createHostSignal();

  /// Signals slot \p Id (called from a primitive).
  void hostSignal(unsigned Id);

  /// Waits until slot \p Id has been signalled at least \p Count times.
  /// Enters a blocked region (GC-safe). \returns false on timeout.
  bool waitHostSignal(unsigned Id, uint64_t Count, double TimeoutSec);

  /// --- Diagnostics ---------------------------------------------------------

  void logError(const std::string &Msg);
  std::vector<std::string> errors();

  /// Milliseconds since VM construction (primitive 42).
  intptr_t millisecondClock() const {
    return static_cast<intptr_t>(Uptime.seconds() * 1000.0);
  }

  /// Total bytecodes executed across all interpreters (approximate while
  /// running).
  uint64_t totalBytecodes() const;

  /// The instrumentation the paper plans in §6: a report of contention
  /// and activity per shared resource — lock acquisitions and contended
  /// acquisitions for allocation, scheduling, the entry table and the
  /// display; method-cache hit rates; free-context reuse; scavenger
  /// totals; per-interpreter bytecode and send counts.
  std::string statisticsReport();

  /// The registry view of the same instrumentation: every named counter,
  /// gauge, and pause-time histogram in the process, aggregated — lock
  /// contention by lock, cache hit rates, scavenge pause p50/p95/p99.
  std::string telemetryReport();

  /// Writes Telemetry::toJson(Telemetry::snapshot()) to \p Path, with a
  /// "profile" object spliced in when the sampling profiler has data.
  /// \returns false on I/O failure.
  bool writeTelemetryJson(const std::string &Path);

  /// --- Profiling -----------------------------------------------------------

  /// A resolver that turns sampled oop bits into names against this VM's
  /// heap: bits are validated (pointer, old space, live CompiledMethod
  /// header) before any slot is read, so methods swept by a full
  /// collection since the sample resolve to "" rather than crashing.
  ProfileResolver profileResolver();

  /// Resolves everything the sampling profiler has accumulated so far
  /// against this VM's heap. Call from a registered mutator thread.
  ProfileReport buildProfileReport();

  /// buildProfileReport().render() — the human-readable profile.
  std::string profileReport();

private:
  VmConfig Config;
  std::unique_ptr<ObjectMemory> OM;
  std::unique_ptr<ObjectModel> Om;
  std::unique_ptr<Scheduler> Sched;
  std::unique_ptr<MethodCache> Cache;
  std::unique_ptr<FreeContextPool> CtxPool;
  Display Disp;
  EventQueue Events;
  VKernel Kernel;

  std::vector<std::unique_ptr<Interpreter>> Workers;
  std::unique_ptr<Interpreter> Driver;
  std::atomic<bool> StopFlag{false};
  bool WorkersStarted = false;

  std::mutex SignalMutex;
  std::condition_variable SignalCv;
  std::vector<uint64_t> SignalCounts;

  std::mutex ErrorMutex;
  std::vector<std::string> ErrorLog;

  /// The registered low-space Semaphore (nil when none). A GC root; the
  /// mutex serializes rival registrations — the GC-time read and in-place
  /// update happen with every mutator parked, which the safepoint protocol
  /// already orders after any registration.
  std::mutex LowSpaceMutex;
  Oop LowSpaceSem;

  /// Panic-dump section describing the interpreters; unregistered in the
  /// destructor.
  int VmPanicSection = -1;

  Stopwatch Uptime;
};

/// Starts the process-wide sampling profiler with the VM's chaos hook
/// installed on the sampler tick. \p Hz == 0 uses the default rate.
/// \returns false if the sampler was already running.
bool startVmProfiler(uint32_t Hz = 0);

/// Stops and joins the sampler thread (accumulated data survives).
void stopVmProfiler();

} // namespace mst

#endif // MST_VM_VIRTUALMACHINE_H
