//===-- vm/Parser.h - Smalltalk method parser -------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for method definitions:
///
///   method     := pattern pragma? temporaries? statements
///   pattern    := unarySel | binarySel ident | (keyword ident)+
///   pragma     := '<' 'primitive:' INTEGER '>'
///   temporaries:= '|' ident* '|'
///   statements := (statement '.')* statement? ;  '^' expr returns
///   expression := assignment | cascade
///   cascade    := keywordExpr (';' message)*
///   keywordExpr:= binaryExpr (keyword binaryExpr)*
///   binaryExpr := unaryExpr (binarySel unaryExpr)*
///   unaryExpr  := primary unarySel*
///   primary    := ident | literal | block | '(' expression ')' | '#(...)'
///   block      := '[' (':' ident)* '|'? temporaries? statements ']'
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_PARSER_H
#define MST_VM_PARSER_H

#include <string>

#include "vm/Ast.h"
#include "vm/Lexer.h"

namespace mst {

/// Parses one method definition.
class Parser {
public:
  explicit Parser(const std::string &Source);

  /// Parses the whole method. \returns false on error (see errorMessage()).
  bool parseMethod(MethodNode &Out);

  /// Parses a bare expression sequence (a "doIt"): no pattern, optional
  /// temporaries, statements. Used for compiling evaluation snippets; the
  /// result method answers the value of the final expression.
  bool parseDoIt(MethodNode &Out);

  const std::string &errorMessage() const { return ErrorMessage; }

private:
  bool parsePattern(MethodNode &Out);
  bool parsePragma(MethodNode &Out);
  bool parseTemporaries(std::vector<std::string> &Temps);
  bool parseStatements(std::vector<ExprPtr> &Body, bool InBlock);
  ExprPtr parseExpression();
  ExprPtr parseCascade();
  ExprPtr parseKeywordExpr();
  ExprPtr parseBinaryExpr();
  ExprPtr parseUnaryExpr();
  ExprPtr parsePrimary();
  ExprPtr parseBlock();
  ExprPtr parseArrayLiteral();

  ExprPtr fail(const std::string &Msg);

  std::string Source;
  Lexer Lex;
  std::string ErrorMessage;
};

} // namespace mst

#endif // MST_VM_PARSER_H
